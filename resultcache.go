package drbw

// Result caching.
//
// Re-analysis dominates fleet-scale profiling: CI reruns the same
// recordings, time-window drill-downs follow full-trace verdicts, and
// optimizer invocations repeat detections an earlier analyze already
// computed. Every one of those results is a pure function of (input
// content, tool configuration) — the run ledger proved reruns byte-
// identical — so they are safe to serve from a content-addressed cache.
//
// Keys are SHA-256 over three ingredients: a trace content fingerprint
// (O(index bytes) for checksummed indexed recordings, a full streaming hash
// otherwise — see profiledata.FileFingerprint), a config fingerprint
// (obs.HashConfig — the ledger's deterministic-section hash — over the
// machine, the trained tree, detection thresholds, and for simulation
// results the full engine config), and the cache schema version. Nothing is
// ever invalidated in place: a different input, model or schema simply
// hashes to a different key, and orphaned entries age out of the LRU
// budgets.
//
// Payloads are JSON for reports and optimizations (every field is exported
// and finite) and gob for cached search baselines (engine.Result holds a
// struct-keyed channel map JSON cannot express). Decoding always happens
// into fresh values, so cached results never alias between callers.

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"

	"drbw/internal/engine"
	"drbw/internal/obs"
	"drbw/internal/profiledata"
	"drbw/internal/rcache"
)

// CacheOptions tunes OpenCache's tier budgets.
type CacheOptions struct {
	// MemBytes budgets the in-process LRU tier (<= 0: 64 MiB).
	MemBytes int64
	// DiskBytes budgets the on-disk tier (<= 0: 1 GiB). Least recently
	// used entries are evicted when a write exceeds it.
	DiskBytes int64
}

// CacheStats is a point-in-time snapshot of a cache's counters.
type CacheStats struct {
	// Hits counts lookups served from either tier; Shared counts callers
	// that piggybacked on a concurrent identical computation.
	Hits, Misses, Shared int64
	// Corrupt counts disk entries dropped for failing verification — each
	// was a silent miss followed by a recompute, never a wrong result.
	Corrupt int64
	// MemEvictions / DiskEvictions count entries pushed out by the budgets.
	MemEvictions, DiskEvictions int64
	// MemBytes / DiskBytes are the tiers' current footprints.
	MemBytes, DiskBytes int64
}

// Cache is a content-addressed result cache shared by any number of Tools
// (Tool.SetCache). Safe for concurrent use.
type Cache struct {
	c *rcache.Cache
}

// OpenCache opens a two-tier result cache backed by dir; an empty dir keeps
// the cache purely in-process. The directory is created if missing and may
// be shared across runs and processes — entries are checksummed on load and
// any damaged file reads as a miss.
func OpenCache(dir string, opt CacheOptions) (*Cache, error) {
	c, err := rcache.Open(rcache.Options{Dir: dir, MemBytes: opt.MemBytes, DiskBytes: opt.DiskBytes})
	if err != nil {
		return nil, fmt.Errorf("drbw: %w", err)
	}
	return &Cache{c: c}, nil
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	st := c.c.Stats()
	return CacheStats{
		Hits: st.Hits, Misses: st.Misses, Shared: st.Shared,
		Corrupt:      st.Corrupt,
		MemEvictions: st.MemEvictions, DiskEvictions: st.DiskEvictions,
		MemBytes: st.MemBytes, DiskBytes: st.DiskBytes,
	}
}

// Clear drops every entry from both tiers.
func (c *Cache) Clear() error { return c.c.Clear() }

// SetCache attaches a result cache to the tool. All trace-analysis entry
// points (AnalyzeTraceFile, AnalyzeTraceFiles, AnalyzeTraceFileRange,
// AnalyzeTraceShards) and AutoOptimize consult it; nil detaches. Tools
// sharing one cache share its entries — the tool's trained model is part of
// every key, so differently-trained tools never collide.
func (t *Tool) SetCache(c *Cache) { t.cache = c }

// toolFingerprints lazily derives the tool's two config fingerprints.
type toolFingerprints struct {
	analysis string // trace analysis: machine + tree + thresholds
	sim      string // live simulation: analysis + full engine config
	err      error
}

// fingerprints returns the config fingerprints, computing them once. The
// analysis fingerprint covers exactly what determines a trace report:
// machine topology, trained tree, detection thresholds, timeline geometry.
// It deliberately excludes worker counts (bit-identical at any setting) and
// simulation parameters (a recording on disk is already past sampling), so
// re-analysis with different parallelism still hits. The simulation
// fingerprint adds the full engine config — seed included — for results
// that are produced by simulating (AutoOptimize).
func (t *Tool) fingerprints() (analysis, sim string, err error) {
	t.fpOnce.Do(func() {
		treeJSON, jerr := json.Marshal(t.tree)
		if jerr != nil {
			t.fp = toolFingerprints{err: jerr}
			return
		}
		treeHash := sha256.Sum256(treeJSON)
		cfg := map[string]string{
			"schema":           rcache.SchemaVersion,
			"machine":          t.machine.Name(),
			"tree":             hex.EncodeToString(treeHash[:]),
			"min_samples":      strconv.Itoa(t.detector.MinSamples),
			"timeline_buckets": strconv.Itoa(timelineBuckets),
		}
		t.fp.analysis = obs.HashConfig(cfg)
		ecfg := t.cfg.engineConfig()
		ecfg.Collector = nil // per-run state, not configuration
		ecfg.Workers = 0     // bit-identical at any setting
		ecfg.CycleBudget = 0 // overwritten by the search's bound
		cfg["engine"] = fmt.Sprintf("%+v", ecfg)
		t.fp.sim = obs.HashConfig(cfg)
	})
	return t.fp.analysis, t.fp.sim, t.fp.err
}

// rangeToken encodes a time window into key material: exact float bits, so
// distinct windows — even ones selecting the same blocks — never collide.
func rangeToken(tr timeRange) string {
	if !tr.limited {
		return "full"
	}
	return fmt.Sprintf("range:%016x:%016x", math.Float64bits(tr.lo), math.Float64bits(tr.hi))
}

// caseToken encodes a benchmark case into key material.
func caseToken(c Case) string {
	return fmt.Sprintf("input=%s,threads=%d,nodes=%d,seed=%d", c.Input, c.Threads, c.Nodes, c.Seed)
}

// optsToken encodes the search options that shape the outcome. Workers is
// excluded: the chosen placement is identical at any setting.
func optsToken(o SearchOptions) string {
	return fmt.Sprintf("topk=%d,frontier=%d,exhaustive=%v", o.TopObjects, o.Frontier, o.Exhaustive)
}

// analyzeFileKey derives the cache key for one recording + window. The
// samples fingerprint is O(index bytes) on checksummed indexed recordings
// and a full hash otherwise; the objects table (tiny) is always hashed in
// full.
func (t *Tool) analyzeFileKey(samplesPath, objectsPath string, tr timeRange) (rcache.Key, error) {
	afp, _, err := t.fingerprints()
	if err != nil {
		return rcache.Key{}, err
	}
	sfp, err := profiledata.FileFingerprint(samplesPath)
	if err != nil {
		return rcache.Key{}, err
	}
	ofp, err := profiledata.FileFingerprint(objectsPath)
	if err != nil {
		return rcache.Key{}, err
	}
	return rcache.KeyOf("analyze", afp, sfp, ofp, rangeToken(tr)), nil
}

// shardsKey derives the cache key for a sharded recording: every shard's
// fingerprint, in order — shard order changes the merged timeline, so it is
// part of the identity.
func (t *Tool) shardsKey(samplePaths []string, objectsPath string) (rcache.Key, error) {
	afp, _, err := t.fingerprints()
	if err != nil {
		return rcache.Key{}, err
	}
	parts := make([]string, 0, len(samplePaths)+3)
	parts = append(parts, "shards", afp)
	for _, p := range samplePaths {
		sfp, err := profiledata.FileFingerprint(p)
		if err != nil {
			return rcache.Key{}, err
		}
		parts = append(parts, sfp)
	}
	ofp, err := profiledata.FileFingerprint(objectsPath)
	if err != nil {
		return rcache.Key{}, err
	}
	parts = append(parts, ofp)
	return rcache.KeyOf(parts...), nil
}

// errNotCacheable marks a computed result that could not be serialized; the
// result itself is still valid and returned to the caller.
var errNotCacheable = errors.New("drbw: result not cacheable")

// cachedReport runs compute through the cache: a hit decodes a fresh
// Report, a miss computes, stores and returns the live one. Concurrent
// identical analyses share one computation (singleflight). A cache entry
// that fails to decode falls back to recomputing — never to an error the
// uncached path would not produce.
func (t *Tool) cachedReport(key rcache.Key, compute func() (*Report, error)) (*Report, error) {
	var computed *Report
	val, _, err := t.cache.c.Do(key, func() ([]byte, error) {
		rep, cerr := compute()
		if cerr != nil {
			return nil, cerr
		}
		computed = rep
		b, merr := json.Marshal(rep)
		if merr != nil {
			return nil, errNotCacheable
		}
		return b, nil
	})
	if computed != nil {
		return computed, nil
	}
	if err != nil {
		if errors.Is(err, errNotCacheable) {
			// Another caller computed a result this schema cannot carry;
			// compute our own copy.
			return compute()
		}
		return nil, err
	}
	rep := new(Report)
	if uerr := json.Unmarshal(val, rep); uerr != nil {
		return compute()
	}
	return rep, nil
}

// detectKey / baselineKey address AutoOptimize's intermediate products:
// the detection report and the unmodified case's baseline measurement,
// cached separately from the search result so a rerun with different
// search options still skips the expensive parts it can.
func detectKey(simFP, bench string, c Case) rcache.Key {
	return rcache.KeyOf("detect", simFP, bench, caseToken(c))
}

func baselineKey(simFP, bench string, c Case) rcache.Key {
	return rcache.KeyOf("baseline", simFP, bench, caseToken(c))
}

// cachedDetectReport returns the cached detection report for the case.
func (t *Tool) cachedDetectReport(simFP, bench string, c Case) (*Report, bool) {
	val, ok := t.cache.c.Get(detectKey(simFP, bench, c))
	if !ok {
		return nil, false
	}
	rep := new(Report)
	if err := json.Unmarshal(val, rep); err != nil {
		return nil, false
	}
	return rep, true
}

func (t *Tool) putDetectReport(simFP, bench string, c Case, rep *Report) {
	if b, err := json.Marshal(rep); err == nil {
		t.cache.c.Put(detectKey(simFP, bench, c), b)
	}
}

// cachedBaseline returns the cached baseline measurement for the case.
// engine.Result is gob-encoded: its per-phase channel stats are keyed by
// topology.Channel structs, which gob round-trips exactly (float64 bits
// included) and JSON cannot.
func (t *Tool) cachedBaseline(simFP, bench string, c Case) (*engine.Result, bool) {
	val, ok := t.cache.c.Get(baselineKey(simFP, bench, c))
	if !ok {
		return nil, false
	}
	res := new(engine.Result)
	if err := gob.NewDecoder(bytes.NewReader(val)).Decode(res); err != nil {
		return nil, false
	}
	return res, true
}

func (t *Tool) putBaseline(simFP, bench string, c Case, res *engine.Result) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err == nil {
		t.cache.c.Put(baselineKey(simFP, bench, c), buf.Bytes())
	}
}
