// Package drbw reproduces DR-BW (Xu, Wen, Gimenez, Gamblin, Liu — IPDPS
// 2017): a profiler that identifies remote-memory bandwidth contention on
// NUMA machines with a supervised classifier and attributes it to the data
// objects responsible.
//
// Because PEBS address sampling and a 4-socket testbed cannot be driven
// portably from Go, the library runs the complete DR-BW pipeline on a
// faithful software simulation of the paper's platform (see DESIGN.md for
// the substitution table): a NUMA machine model with asymmetric
// interconnects, a cache hierarchy with line fill buffers and a stream
// prefetcher, OS page placement with first-touch/bind/interleave/replicate
// policies, a bandwidth-contention execution engine, and a PEBS-like
// sampler. On top of that substrate the tool is exactly the paper's:
// micro-benchmark training (Table II), a CART decision tree on the Table I
// features, per-channel detection, Contribution-Fraction diagnosis, and the
// co-locate / interleave / replicate fixes.
//
// Typical use:
//
//	tool, err := drbw.Train(drbw.Config{})        // train the classifier
//	rep, err := tool.Analyze("Streamcluster", drbw.Case{
//	    Input: "native", Threads: 32, Nodes: 4,
//	})
//	if rep.Contended() {
//	    fmt.Println(rep)                           // channels + ranked objects
//	    cmp, _ := tool.Optimize("Streamcluster", drbw.Case{...},
//	        drbw.Replicate, rep.TopObjects(1)...)
//	    fmt.Printf("%.2fx\n", cmp.Speedup())
//	}
//
// Custom workloads are described with WorkloadSpec and analyzed with
// Tool.AnalyzeWorkload.
package drbw

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"drbw/internal/core"
	"drbw/internal/diagnose"
	"drbw/internal/dtree"
	"drbw/internal/engine"
	"drbw/internal/features"
	"drbw/internal/micro"
	"drbw/internal/optimize"
	"drbw/internal/pebs"
	"drbw/internal/program"
	"drbw/internal/rcache"
	"drbw/internal/search"
	"drbw/internal/topology"
	"drbw/internal/workloads"
)

// Machine names a built-in machine model.
type Machine string

// Built-in machine models.
const (
	// XeonE5_4650 is the paper's evaluation platform: 4 sockets, 8 cores +
	// HT each, 20 MB L3 per socket, fully connected QPI with asymmetric
	// link bandwidths.
	XeonE5_4650 Machine = "xeon-e5-4650"
	// TwoSocket is a generic 2-socket server without Hyper-Threading.
	TwoSocket Machine = "two-socket"
	// Opteron6276 is a 4-socket AMD Interlagos box — the AMD platform the
	// paper names for future work; its IBS sampling is interchangeable
	// with PEBS for this pipeline.
	Opteron6276 Machine = "opteron-6276"
)

// Machines lists the available machine models.
func Machines() []Machine { return []Machine{XeonE5_4650, TwoSocket, Opteron6276} }

func (m Machine) build() (*topology.Machine, error) {
	switch m {
	case XeonE5_4650, "":
		return topology.XeonE5_4650(), nil
	case TwoSocket:
		return topology.TwoSocket(), nil
	case Opteron6276:
		return topology.Opteron6276(), nil
	default:
		return nil, fmt.Errorf("drbw: unknown machine %q", string(m))
	}
}

// Config controls training and analysis fidelity. The zero value selects
// the paper's setup on the paper's machine.
type Config struct {
	// Machine selects the simulated platform (default XeonE5_4650).
	Machine Machine
	// Window/Warmup set the per-thread cache-simulation window (defaults
	// 24576/6144). Smaller is faster and less faithful. A negative Warmup
	// requests a zero-warmup run (samples include the cold-cache ramp).
	Window, Warmup int
	// Quick trains on a quarter of the 192-run training set. Accuracy drops
	// a little; collection runs ~4x faster.
	Quick bool
	// TreeMaxDepth bounds the decision tree (default 4).
	TreeMaxDepth int
	// Sampling selects the modeled sampling hardware: "pebs" (default,
	// Intel) or "ibs" (AMD instruction-based sampling — micro-op counting,
	// noisier latencies; pair it with the Opteron6276 machine).
	Sampling string
	// Seed makes everything deterministic (default 1).
	Seed uint64
	// Workers bounds the goroutines each simulation run uses for its window
	// stage (see engine.Config.Workers): 0 uses GOMAXPROCS, 1 forces the
	// serial path. Any value produces bit-identical results. The batch APIs'
	// case-level fan-out is governed separately by core.SetPoolWorkers
	// (the CLIs' -workers flags set both).
	Workers int
}

func (c Config) engineConfig() engine.Config {
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	ecfg := core.DefaultEngineConfig(seed)
	if c.Window > 0 {
		ecfg.Window = c.Window
	}
	if c.Warmup != 0 {
		ecfg.Warmup = c.Warmup
	}
	if c.Sampling == "ibs" {
		ecfg.SamplerFlavor = pebs.IBS
	}
	ecfg.Workers = c.Workers
	return ecfg
}

// validate rejects unknown sampling names early.
func (c Config) validate() error {
	switch c.Sampling {
	case "", "pebs", "ibs":
		return nil
	default:
		return fmt.Errorf("drbw: unknown sampling flavor %q (pebs, ibs)", c.Sampling)
	}
}

func (c Config) treeConfig() dtree.Config {
	tc := core.DefaultTreeConfig()
	if c.TreeMaxDepth > 0 {
		tc.MaxDepth = c.TreeMaxDepth
	}
	return tc
}

// Case selects one run configuration of a benchmark: the paper's Tt-Nn
// notation plus the input-size name.
type Case struct {
	Input   string // benchmark-specific; empty selects the smallest
	Threads int    // total threads (default 16)
	Nodes   int    // NUMA nodes used (default 2)
	Seed    uint64
}

func (c Case) config() program.Config {
	return program.Config{Threads: c.Threads, Nodes: c.Nodes, Input: c.Input, Seed: c.Seed}
}

// StandardCases returns the paper's eight Tt-Nn configurations with the
// given input.
func StandardCases(input string) []Case {
	var out []Case
	for _, cfg := range program.StandardConfigs() {
		out = append(out, Case{Input: input, Threads: cfg.Threads, Nodes: cfg.Nodes})
	}
	return out
}

// Tool is a trained DR-BW instance. A Tool is safe for concurrent use:
// every analysis builds its own simulated program and collector, and the
// trained tree is read-only after Train.
type Tool struct {
	cfg      Config
	machine  *topology.Machine
	training *core.TrainingData // nil when loaded from a saved model
	tree     *dtree.Tree
	detector *core.Detector
	summary  map[string]map[string]int // persisted training summary

	cache  *Cache // optional result cache (SetCache)
	fpOnce sync.Once
	fp     toolFingerprints
}

// Train collects the micro-benchmark training set on the configured machine
// and fits the decision-tree classifier — the paper's Sections IV and V in
// one call. Expect a few tens of seconds for the full 192-run set; use
// Config.Quick for interactive work.
func Train(cfg Config) (*Tool, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m, err := cfg.Machine.build()
	if err != nil {
		return nil, err
	}
	return trainOnMachine(m, cfg)
}

func trainOnMachine(m *topology.Machine, cfg Config) (*Tool, error) {
	set := micro.TrainingSet()
	if cfg.Quick {
		var reduced []micro.Instance
		for i := 0; i < len(set); i += 4 {
			reduced = append(reduced, set[i])
		}
		set = reduced
	}
	// Skip instances the machine cannot run (a small custom machine has no
	// T64-N4); what remains still spans both classes.
	var feasible []micro.Instance
	for _, inst := range set {
		if _, err := inst.Builder.New(m, inst.Cfg); err == nil {
			feasible = append(feasible, inst)
		}
	}
	if len(feasible) < 20 {
		return nil, fmt.Errorf("drbw: machine %q can run only %d of %d training instances; too small to train on", m.Name(), len(feasible), len(set))
	}
	ecfg := cfg.engineConfig()
	td, err := core.CollectTraining(m, ecfg, feasible)
	if err != nil {
		return nil, err
	}
	tree, err := core.TrainClassifier(td, cfg.treeConfig())
	if err != nil {
		return nil, err
	}
	return &Tool{
		cfg: cfg, machine: m, training: td, tree: tree,
		detector: core.NewDetector(tree, ecfg),
	}, nil
}

// TrainingSummary reports runs per mini-program and mode (Table II). For a
// tool loaded from a saved model it returns the persisted summary.
func (t *Tool) TrainingSummary() map[string]map[string]int {
	if t.training == nil {
		return t.summary
	}
	out := map[string]map[string]int{}
	for prog, counts := range t.training.Summary() {
		out[prog] = map[string]int{}
		for label, n := range counts {
			out[prog][label.String()] = n
		}
	}
	return out
}

// TrainingRuns returns the number of collected training runs (0 for a tool
// loaded from a saved model).
func (t *Tool) TrainingRuns() int {
	if t.training == nil {
		return 0
	}
	return len(t.training.Runs)
}

// Tree renders the trained decision tree (Figure 3).
func (t *Tool) Tree() string { return t.tree.String() }

// TreeFeatures lists the Table I features (1-based indices) the trained
// tree actually splits on; the paper's tree uses features 6 and 7.
func (t *Tool) TreeFeatures() []int {
	var out []int
	for _, f := range t.tree.UsedFeatures() {
		out = append(out, f+1)
	}
	return out
}

// FeatureName returns the description of a 1-based Table I feature index.
func FeatureName(i int) string {
	if i < 1 || i > features.NumFeatures {
		return fmt.Sprintf("feature %d", i)
	}
	return features.Names[i-1]
}

// CrossValidate runs stratified 10-fold cross validation on the training
// data and returns the pooled confusion matrix (Table III).
func (t *Tool) CrossValidate() (*Confusion, error) {
	if t.training == nil {
		return nil, errNoTrainingData
	}
	cm, err := core.CrossValidate(t.training, t.cfg.treeConfig())
	if err != nil {
		return nil, err
	}
	return newConfusion(cm), nil
}

// SelectedCandidates reruns the paper's feature-selection filter over the
// full candidate statistics of the training runs (the Table I experiment)
// and returns the kept feature names. Empty for a loaded tool.
func (t *Tool) SelectedCandidates() []string {
	if t.training == nil {
		return nil
	}
	return t.training.SelectionExperiment()
}

// Benchmarks lists the names of the built-in benchmark proxies (the
// paper's 23 evaluation benchmarks).
func Benchmarks() []string { return workloads.Names() }

// BenchmarkInputs lists the input sizes a benchmark accepts, smallest
// first.
func BenchmarkInputs(name string) ([]string, error) {
	e, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("drbw: unknown benchmark %q", name)
	}
	return append([]string(nil), e.Builder.Inputs...), nil
}

func (t *Tool) builder(bench string) (program.Builder, error) {
	e, ok := workloads.ByName(bench)
	if !ok {
		return program.Builder{}, fmt.Errorf("drbw: unknown benchmark %q (see drbw.Benchmarks())", bench)
	}
	return e.Builder, nil
}

// timelineBuckets is the resolution of Report.Timeline.
const timelineBuckets = 32

// reportFromDetection turns a single-pass detection into the public report:
// diagnosis of the contended channels (from the retained samples, without
// re-simulating) plus the remote-pressure timeline.
func reportFromDetection(dn *core.Detection) *Report {
	var rep *diagnose.Report
	if dn.Detected {
		rep = dn.Diagnose()
	}
	out := newReport(dn.CaseResult, rep)
	out.Samples = int64(len(dn.Samples))
	out.attachTimeline(diagnose.Timeline(dn.Samples, timelineBuckets, dn.Weight))
	return out
}

// Analyze profiles one case of a built-in benchmark and runs the full
// DR-BW pipeline: per-channel classification, then — if contention is
// detected — Contribution-Fraction diagnosis of the contended channels,
// plus a remote-pressure timeline. The case is simulated exactly once;
// diagnosis reuses the retained samples.
func (t *Tool) Analyze(bench string, c Case) (*Report, error) {
	b, err := t.builder(bench)
	if err != nil {
		return nil, err
	}
	dn, err := t.detector.Detect(b, t.machine, c.config())
	if err != nil {
		return nil, err
	}
	return reportFromDetection(dn), nil
}

// Evaluate runs Analyze plus the paper's ground-truth probe (whole-program
// interleaving; ≥10% speedup means the case is actually contended). The
// profiled run happens once; only the probe's interleaved variant is
// simulated on top.
func (t *Tool) Evaluate(bench string, c Case) (*Report, error) {
	b, err := t.builder(bench)
	if err != nil {
		return nil, err
	}
	dn, err := t.detector.Evaluate(b, t.machine, c.config())
	if err != nil {
		return nil, err
	}
	return reportFromDetection(dn), nil
}

// Strategy is a placement fix.
type Strategy int

// The paper's placement fixes.
const (
	// Interleave spreads pages round-robin over all nodes (the baseline).
	Interleave Strategy = iota
	// Colocate places each thread's share of an object on that thread's
	// node (the AMG/IRSmk/LULESH/NW fix).
	Colocate
	// Replicate duplicates a read-only object per node (the streamcluster
	// fix).
	Replicate
)

func (s Strategy) internal() (optimize.Strategy, error) {
	switch s {
	case Interleave:
		return optimize.Interleave, nil
	case Colocate:
		return optimize.Colocate, nil
	case Replicate:
		return optimize.Replicate, nil
	default:
		return 0, fmt.Errorf("drbw: unknown strategy %d", int(s))
	}
}

// String names the strategy.
func (s Strategy) String() string {
	if o, err := s.internal(); err == nil {
		return o.String()
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Comparison reports a base-vs-optimized measurement.
type Comparison struct {
	BaseCycles, OptCycles float64
	// PhaseSpeedups holds per-phase speedups in phase order.
	PhaseSpeedups []float64
	// RemoteReduction / LatencyReduction are fractional improvements
	// (0.878 means remote accesses dropped 87.8%).
	RemoteReduction, LatencyReduction float64
}

// Speedup is BaseCycles/OptCycles.
func (c Comparison) Speedup() float64 {
	if c.OptCycles == 0 {
		return 0
	}
	return c.BaseCycles / c.OptCycles
}

// Optimize measures a placement fix on one benchmark case. With no object
// names the fix applies to every heap object (the whole-program variant the
// paper uses for interleave); otherwise only the named objects move —
// normally the top-CF objects from a Report.
func (t *Tool) Optimize(bench string, c Case, s Strategy, objects ...string) (Comparison, error) {
	b, err := t.builder(bench)
	if err != nil {
		return Comparison{}, err
	}
	strat, err := s.internal()
	if err != nil {
		return Comparison{}, err
	}
	var tr optimize.Transform
	if len(objects) == 0 {
		tr = optimize.WholeProgram(strat)
	} else {
		tr = optimize.Objects(strat, objects...)
	}
	cmp, err := optimize.Measure(b, t.machine, c.config(), t.cfg.engineConfig(), tr)
	if err != nil {
		return Comparison{}, err
	}
	return publicComparison(cmp), nil
}

func publicComparison(cmp optimize.Comparison) Comparison {
	return Comparison{
		BaseCycles: cmp.BaseCycles, OptCycles: cmp.OptCycles,
		PhaseSpeedups:   append([]float64(nil), cmp.PhaseSpeedups...),
		RemoteReduction: cmp.RemoteReduction, LatencyReduction: cmp.LatencyReduction,
	}
}

// SearchOptions tunes AutoOptimize's placement search. The zero value uses
// the defaults (top 3 objects, frontier of 12, branch-and-bound pruning on,
// GOMAXPROCS workers).
type SearchOptions struct {
	// TopObjects caps how many top-CF objects the search combines (<= 0: 3).
	TopObjects int
	// Frontier is how many top-scoring candidates are simulated (0: 12;
	// negative: all — exhaustive).
	Frontier int
	// Workers bounds the candidate-simulation fan-out (0: GOMAXPROCS).
	// The chosen placement is identical at any setting.
	Workers int
	// Exhaustive disables both the frontier cut and the cycle-budget bound.
	Exhaustive bool
}

// Optimization is AutoOptimize's outcome: the detection report plus — when
// contention was detected — the placement the search chose.
type Optimization struct {
	// Report is the detection + diagnosis of the profiled case.
	Report *Report
	// Detected mirrors Report.Detected.
	Detected bool
	// Placement is the chosen fix in canonical "obj=strategy,..." form
	// ("*=interleave" for the whole-program probe); empty when nothing was
	// detected or no candidate completed.
	Placement string
	// Speedup is the baseline-to-chosen cycle ratio.
	Speedup float64
	// Comparison details the chosen placement against the baseline.
	Comparison Comparison
	// Candidates, Explored, Pruned and AbortedRuns describe the search:
	// how many placements were enumerated, simulated, cut by the analytic
	// frontier, and cut short by the cycle budget.
	Candidates, Explored, Pruned, AbortedRuns int
}

// AutoOptimize closes the paper's loop: profile and classify one case
// (exactly as Analyze), and — when contention is detected — search the
// placement space over the diagnosed objects for the best fix. Candidates
// are ranked by an analytic cost model; only the top-scoring frontier is
// simulated, in parallel, under a branch-and-bound cycle budget. The chosen
// placement is deterministic at any worker count.
//
// With a cache attached (SetCache) the whole outcome is served from cache
// on a repeat run; a rerun with different search options reuses the cached
// detection verdict and baseline measurement, re-simulating only the
// candidate placements.
func (t *Tool) AutoOptimize(bench string, c Case, opts SearchOptions) (*Optimization, error) {
	if t.cache == nil {
		return t.autoOptimize(bench, c, opts, "")
	}
	_, simFP, err := t.fingerprints()
	if err != nil {
		return nil, err
	}
	key := rcache.KeyOf("optimize", simFP, bench, caseToken(c), optsToken(opts))
	var computed *Optimization
	val, _, err := t.cache.c.Do(key, func() ([]byte, error) {
		o, cerr := t.autoOptimize(bench, c, opts, simFP)
		if cerr != nil {
			return nil, cerr
		}
		computed = o
		b, merr := json.Marshal(o)
		if merr != nil {
			return nil, errNotCacheable
		}
		return b, nil
	})
	if computed != nil {
		return computed, nil
	}
	if err != nil {
		if errors.Is(err, errNotCacheable) {
			return t.autoOptimize(bench, c, opts, simFP)
		}
		return nil, err
	}
	o := new(Optimization)
	if uerr := json.Unmarshal(val, o); uerr != nil {
		return t.autoOptimize(bench, c, opts, simFP)
	}
	return o, nil
}

// autoOptimize is the uncached body. A non-empty simFP enables the
// sub-result caches: a cached clean verdict skips the profiling run
// entirely, and a cached baseline spares the search its most expensive
// single simulation. A cached *contended* verdict cannot short-circuit —
// the search needs the detection's retained samples and heap, which are
// deliberately not persisted.
func (t *Tool) autoOptimize(bench string, c Case, opts SearchOptions, simFP string) (*Optimization, error) {
	b, err := t.builder(bench)
	if err != nil {
		return nil, err
	}
	if simFP != "" {
		if rep, ok := t.cachedDetectReport(simFP, bench, c); ok && !rep.Detected {
			return &Optimization{Report: rep, Detected: false}, nil
		}
	}
	dn, err := t.detector.Detect(b, t.machine, c.config())
	if err != nil {
		return nil, err
	}
	out := &Optimization{Report: reportFromDetection(dn), Detected: dn.Detected}
	if simFP != "" {
		t.putDetectReport(simFP, bench, c, out.Report)
	}
	if !dn.Detected {
		return out, nil
	}
	scfg := search.Config{
		TopObjects: opts.TopObjects,
		Frontier:   opts.Frontier,
		Workers:    opts.Workers,
	}
	if opts.Exhaustive {
		scfg.Frontier = -1
		scfg.DisableBudget = true
	}
	var baseCached bool
	if simFP != "" {
		scfg.Baseline, baseCached = t.cachedBaseline(simFP, bench, c)
	}
	res, err := search.FromDetection(dn, t.cfg.engineConfig(), scfg)
	if err != nil {
		return nil, err
	}
	if simFP != "" && !baseCached && res.Baseline != nil {
		t.putBaseline(simFP, bench, c, res.Baseline)
	}
	out.Candidates = len(res.Outcomes)
	out.Explored = res.Explored
	out.Pruned = res.Pruned
	out.AbortedRuns = res.AbortedRuns
	if res.Best != nil {
		out.Placement = res.Best.Candidate.Key()
		out.Speedup = res.Speedup()
		out.Comparison = publicComparison(res.Best.Comparison)
	}
	return out, nil
}
