package drbw_test

import (
	"testing"

	"drbw"
)

// TestIBSOnOpteron trains with AMD IBS-op sampling semantics on the
// Opteron preset — the paper's named future-work platform — and verifies
// the pipeline transfers: detection, diagnosis and the fix all work.
func TestIBSOnOpteron(t *testing.T) {
	tool, err := drbw.Train(drbw.Config{
		Machine:  drbw.Opteron6276,
		Sampling: "ibs",
		Quick:    true,
		Window:   4096, Warmup: 2048,
		Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The Opteron has 32 hardware threads (no SMT), so T64 configurations
	// were skipped; both classes must survive the filter.
	sum := tool.TrainingSummary()
	good, rmc := 0, 0
	for _, s := range sum {
		good += s["good"]
		rmc += s["rmc"]
	}
	if good == 0 || rmc == 0 {
		t.Fatalf("training lost a class: %d good / %d rmc", good, rmc)
	}

	w := drbw.WorkloadSpec{
		Name: "hot",
		Arrays: []drbw.ArraySpec{
			{Name: "shared", MB: 96, Placement: drbw.Master, Pattern: drbw.SharedRandom, Weight: 3},
			{Name: "mine", MB: 16, Placement: drbw.Parallel, Pattern: drbw.Scan},
		},
		MLP: 6, WorkCycles: 1,
	}
	c := drbw.Case{Threads: 16, Nodes: 4, Seed: 13}
	rep, err := tool.AnalyzeWorkload(w, c)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Contended() {
		t.Fatal("IBS-sampled contention not detected on the Opteron")
	}
	if top := rep.TopObjects(1); len(top) == 0 || top[0] != "shared" {
		t.Errorf("IBS diagnosis top = %v, want shared", top)
	}
	cmp, err := tool.OptimizeWorkload(w, c, drbw.Replicate, "shared")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Speedup() < 1.2 {
		t.Errorf("replicate on the Opteron gained only %.2fx", cmp.Speedup())
	}
}

func TestUnknownSamplingRejected(t *testing.T) {
	if _, err := drbw.Train(drbw.Config{Sampling: "oprofile"}); err == nil {
		t.Error("unknown sampling flavor accepted")
	}
}
