package drbw

import "drbw/internal/obs"

// ReportLedgerResult converts one report — or its failure — into a run
// ledger entry. name identifies the input (a trace path, a bench label);
// a nil report with a nil error records a generic failure, matching the
// batch analyzers' partial-result convention.
func ReportLedgerResult(name string, rep *Report, err error) obs.LedgerResult {
	lr := obs.LedgerResult{Name: name, Kind: "analysis"}
	if err != nil {
		lr.Error = err.Error()
		return lr
	}
	if rep == nil {
		lr.Error = "analysis failed"
		return lr
	}
	det := rep.Detected
	lr.Detected = &det
	lr.Channels = append([]string(nil), rep.Channels...)
	lr.Samples = rep.Samples
	for _, o := range rep.Objects {
		lr.Objects = append(lr.Objects, obs.LedgerObject{Name: o.Name, CF: o.CF})
	}
	return lr
}
