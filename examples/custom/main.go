// Custom workload: describe your own program's arrays and access patterns
// with drbw.WorkloadSpec, let DR-BW find the contended one, and verify the
// fix — without porting the program into the simulator by hand.
package main

import (
	"fmt"
	"log"

	"drbw"
)

func main() {
	tool, err := drbw.Train(drbw.Config{Quick: true})
	if err != nil {
		log.Fatal(err)
	}

	// A program with three arrays: a big lookup table the main thread
	// built (every page on node 0), a co-located output array, and a small
	// shared index. The table is the bug.
	w := drbw.WorkloadSpec{
		Name: "lookup-service",
		Arrays: []drbw.ArraySpec{
			{Name: "table", MB: 128, Placement: drbw.Master, Pattern: drbw.SharedRandom, Weight: 4},
			{Name: "output", MB: 32, Placement: drbw.Parallel, Pattern: drbw.Scan, WriteEvery: 2},
			{Name: "index", MB: 2, Placement: drbw.Parallel, Pattern: drbw.SharedRandom},
		},
		MLP:        6,
		WorkCycles: 2,
	}

	c := drbw.Case{Threads: 32, Nodes: 4}
	rep, err := tool.EvaluateWorkload(w, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	if !rep.Contended() {
		return
	}
	fmt.Println()
	for _, s := range []drbw.Strategy{drbw.Interleave, drbw.Colocate, drbw.Replicate} {
		cmp, err := tool.OptimizeWorkload(w, c, s, rep.TopObjects(1)...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s on %v: %.2fx speedup, remote -%5.1f%%\n",
			s, rep.TopObjects(1), cmp.Speedup(), 100*cmp.RemoteReduction)
	}
}
