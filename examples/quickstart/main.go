// Quickstart: train DR-BW's classifier and analyze one benchmark case
// end-to-end — detection, contended channels, and the data objects to
// blame.
package main

import (
	"fmt"
	"log"

	"drbw"
)

func main() {
	fmt.Println("training DR-BW on the micro-benchmark suite (quick mode)...")
	tool, err := drbw.Train(drbw.Config{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d runs; decision tree splits on Table I features %v\n\n",
		tool.TrainingRuns(), tool.TreeFeatures())

	// Streamcluster with the native input on 32 threads across all four
	// sockets: the paper's flagship contention case.
	rep, err := tool.Analyze("Streamcluster", drbw.Case{
		Input: "native", Threads: 32, Nodes: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	if rep.Contended() {
		// Fix the top-CF object the way the paper does (replication) and
		// measure the gain.
		cmp, err := tool.Optimize("Streamcluster",
			drbw.Case{Input: "native", Threads: 32, Nodes: 4},
			drbw.Replicate, rep.TopObjects(1)...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nreplicating %v: %.2fx speedup, remote accesses -%.0f%%, DRAM latency -%.0f%%\n",
			rep.TopObjects(1), cmp.Speedup(),
			100*cmp.RemoteReduction, 100*cmp.LatencyReduction)
	}
}
