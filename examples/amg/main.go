// AMG2006 case study (paper Section VIII-A, Figures 4(a) and 5): diagnose
// the four operator arrays behind the contention, then compare co-locating
// exactly those arrays against whole-program interleaving — per phase.
// The paper's point: interleave helps the solve phase but hurts init and
// setup; the targeted co-locate fix gets the solve speedup without the
// collateral damage.
package main

import (
	"fmt"
	"log"

	"drbw"
)

func main() {
	tool, err := drbw.Train(drbw.Config{Quick: true})
	if err != nil {
		log.Fatal(err)
	}

	c := drbw.Case{Input: "30x30x30", Threads: 64, Nodes: 4}
	rep, err := tool.Analyze("AMG2006", c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
	fmt.Println()

	// Fix the top four objects (Figure 4(a)) by co-location.
	targets := rep.TopObjects(4)
	fmt.Printf("co-locating %v vs interleaving everything:\n\n", targets)
	fmt.Printf("%-8s %-12s %8s %8s %8s %8s\n", "config", "strategy", "init", "setup", "solve", "total")
	phases := []string{"init", "setup", "solve"}
	_ = phases
	for _, cs := range []drbw.Case{
		{Input: "30x30x30", Threads: 16, Nodes: 4},
		{Input: "30x30x30", Threads: 32, Nodes: 4},
		{Input: "30x30x30", Threads: 64, Nodes: 4},
	} {
		colo, err := tool.Optimize("AMG2006", cs, drbw.Colocate, targets...)
		if err != nil {
			log.Fatal(err)
		}
		inter, err := tool.Optimize("AMG2006", cs, drbw.Interleave)
		if err != nil {
			log.Fatal(err)
		}
		printRow(cs, "co-locate", colo)
		printRow(cs, "interleave", inter)
	}
}

func printRow(cs drbw.Case, strategy string, cmp drbw.Comparison) {
	fmt.Printf("T%d-N%d %-12s", cs.Threads, cs.Nodes, strategy)
	for _, s := range cmp.PhaseSpeedups {
		fmt.Printf(" %7.2fx", s)
	}
	fmt.Printf(" %7.2fx\n", cmp.Speedup())
}
