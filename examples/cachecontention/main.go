// Cache-contention extension (the paper's Section IX future work): train
// the shared-LLC contention detector and use it to find working sets that
// evict each other — the resource DR-BW's bandwidth classifier deliberately
// ignores.
package main

import (
	"fmt"
	"log"

	"drbw"
)

func main() {
	fmt.Println("training the shared-cache contention detector...")
	ct, err := drbw.TrainCacheContention(drbw.Config{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	cm, err := ct.CrossValidate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-validation accuracy: %.1f%%\n\n", 100*cm.Accuracy())
	fmt.Println("learned tree:")
	fmt.Print(ct.Tree())
	fmt.Println()

	// A service whose per-thread state collectively overflows the shared
	// cache: each thread is fine alone; together they thrash.
	w := drbw.WorkloadSpec{
		Name: "session-cache",
		Arrays: []drbw.ArraySpec{
			{Name: "sessions", MB: 24, Placement: drbw.Parallel, Pattern: drbw.Scan},
			{Name: "config", MB: 1, Placement: drbw.Parallel, Pattern: drbw.SharedRandom},
		},
		MLP: 4, WorkCycles: 3,
	}
	for _, c := range []drbw.Case{
		{Threads: 8, Nodes: 4},  // 2 threads per socket: fits
		{Threads: 32, Nodes: 2}, // 16 per socket: thrashes
	} {
		rep, err := ct.AnalyzeWorkload(w, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("T%d-N%d: %s", c.Threads, c.Nodes, rep)
	}
}
