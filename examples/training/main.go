// Training walkthrough: collect the paper's Table II training set, inspect
// the learned decision tree (Figure 3), and validate it with stratified
// 10-fold cross validation (Table III).
package main

import (
	"flag"
	"fmt"
	"log"

	"drbw"
)

func main() {
	full := flag.Bool("full", false, "collect the full 192-run training set (slower)")
	flag.Parse()

	cfg := drbw.Config{Quick: !*full}
	fmt.Printf("collecting training runs (quick=%v)...\n", cfg.Quick)
	tool, err := drbw.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nTable II — training set:")
	fmt.Printf("%-10s %6s %6s\n", "program", "good", "rmc")
	total := 0
	for _, prog := range []string{"sumv", "dotv", "countv", "bandit"} {
		s := tool.TrainingSummary()[prog]
		fmt.Printf("%-10s %6d %6d\n", prog, s["good"], s["rmc"])
		total += s["good"] + s["rmc"]
	}
	fmt.Printf("%-10s %13d\n", "total", total)

	fmt.Println("\nFigure 3 — the learned decision tree:")
	fmt.Print(tool.Tree())
	fmt.Print("splits on Table I features: ")
	for i, f := range tool.TreeFeatures() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("#%d (%s)", f, drbw.FeatureName(f))
	}
	fmt.Println()

	fmt.Println("\nTable III — stratified 10-fold cross validation:")
	cm, err := tool.CrossValidate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cm)

	fmt.Println("\nTable I — features kept by the selection filter:")
	for _, name := range tool.SelectedCandidates() {
		fmt.Println("  " + name)
	}
}
