// Streamcluster case study (paper Section VIII-C, Figures 4(b) and 7):
// detect the remote-bandwidth contention caused by the shared `block`
// array, diagnose it, and compare the replicate fix against whole-program
// interleaving across execution configurations.
package main

import (
	"fmt"
	"log"

	"drbw"
)

func main() {
	tool, err := drbw.Train(drbw.Config{Quick: true})
	if err != nil {
		log.Fatal(err)
	}

	// Diagnose one contended case in detail.
	c := drbw.Case{Input: "native", Threads: 64, Nodes: 4}
	rep, err := tool.Analyze("Streamcluster", c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
	fmt.Println()

	// Figure 7: replicate vs interleave across Tt-Nn configurations. The
	// paper's observation: with many nodes both help similarly; with few
	// nodes and threads, replicate wins because interleaving adds remote
	// accesses.
	fmt.Printf("%-8s %6s %12s %12s\n", "config", "input", "interleave", "replicate")
	for _, cs := range drbw.StandardCases("native") {
		inter, err := tool.Optimize("Streamcluster", cs, drbw.Interleave)
		if err != nil {
			log.Fatal(err)
		}
		replicate, err := tool.Optimize("Streamcluster", cs, drbw.Replicate, "block", "point.p")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("T%d-N%d %8s %11.2fx %11.2fx\n",
			cs.Threads, cs.Nodes, cs.Input, inter.Speedup(), replicate.Speedup())
	}
}
