// Custom machine: describe your own NUMA box with drbw.MachineSpec (or a
// JSON file via drbw.LoadMachineSpec), train DR-BW for it, and analyze a
// workload — the learned thresholds reflect that machine's link bandwidths
// and latencies, not the paper's Xeon.
package main

import (
	"fmt"
	"log"

	"drbw"
)

func main() {
	// A 2-socket EPYC-flavoured box: wider local controllers, one
	// asymmetric return link.
	spec := drbw.MachineSpec{
		Name:         "epyc-like 2-socket",
		Nodes:        2,
		CoresPerNode: 16,
		LocalBW:      20, // bytes/cycle (~46 GB/s at 2.3 GHz)
		RemoteBW:     6,  // inter-socket
		LinkOverrides: map[string]float64{
			"1->0": 5, // the return path is narrower
		},
		LocalDRAMLatency:  200,
		RemoteDRAMLatency: 330,
	}

	fmt.Printf("training DR-BW for %q...\n", spec.Name)
	tool, err := drbw.TrainOn(spec, drbw.Config{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d runs (configurations the machine cannot run were skipped)\n\n",
		tool.TrainingRuns())

	w := drbw.WorkloadSpec{
		Name: "ingest",
		Arrays: []drbw.ArraySpec{
			{Name: "staging", MB: 96, Placement: drbw.Master, Pattern: drbw.Scan, Weight: 2},
			{Name: "index", MB: 2, Placement: drbw.Parallel, Pattern: drbw.SharedRandom},
		},
		MLP: 8, WorkCycles: 1,
	}
	c := drbw.Case{Threads: 32, Nodes: 2}
	rep, err := tool.AnalyzeWorkload(w, c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	if rep.Contended() {
		cmp, err := tool.OptimizeWorkload(w, c, drbw.Colocate, rep.TopObjects(1)...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nco-locating %v on this machine: %.2fx\n", rep.TopObjects(1), cmp.Speedup())
	}
}
