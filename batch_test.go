package drbw_test

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"drbw"
	"drbw/internal/core"
)

// TestAnalyzeAllMatchesSerial checks the determinism guarantee: batch
// analysis over the worker pool renders byte-identical reports to serial
// Analyze calls, because each case's randomness derives only from its own
// seed.
func TestAnalyzeAllMatchesSerial(t *testing.T) {
	tl := sharedTool(t)
	cases := drbw.StandardCases("native")[:4]
	for i := range cases {
		cases[i].Seed = uint64(300 + i*17)
	}

	serial := make([]string, len(cases))
	for i, c := range cases {
		rep, err := tl.Analyze("Streamcluster", c)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = rep.String()
	}

	reports, err := tl.AnalyzeAll("Streamcluster", cases)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(cases) {
		t.Fatalf("%d reports for %d cases", len(reports), len(cases))
	}
	for i, rep := range reports {
		if rep == nil {
			t.Fatalf("case %d: nil report without error", i)
		}
		if rep.String() != serial[i] {
			t.Errorf("case %d: batch report differs from serial:\n--- batch ---\n%s--- serial ---\n%s",
				i, rep.String(), serial[i])
		}
	}
}

// TestBatchPartialFailure checks a failing case does not take the batch
// down: the other cases' reports come back, and the error names exactly
// the failed case.
func TestBatchPartialFailure(t *testing.T) {
	tl := sharedTool(t)
	cases := []drbw.Case{
		{Input: "native", Threads: 16, Nodes: 4, Seed: 400},
		{Input: "native", Threads: 7, Nodes: 2, Seed: 401}, // 7 threads do not divide over 2 nodes
		{Input: "native", Threads: 32, Nodes: 4, Seed: 402},
	}
	reports, err := tl.AnalyzeAll("Streamcluster", cases)
	if err == nil {
		t.Fatal("invalid case accepted")
	}
	var be *drbw.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want *drbw.BatchError", err)
	}
	if len(be.Cases) != 1 || be.Cases[0].Index != 1 {
		t.Fatalf("failed cases: %+v, want exactly index 1", be.Cases)
	}
	if reports[0] == nil || reports[2] == nil {
		t.Error("successful cases lost their reports")
	}
	if reports[1] != nil {
		t.Error("failed case produced a report")
	}
}

// TestEvaluateAllCarriesGroundTruth checks the batch evaluate path runs
// the interleave probe per case.
func TestEvaluateAllCarriesGroundTruth(t *testing.T) {
	tl := sharedTool(t)
	cases := []drbw.Case{
		{Input: "native", Threads: 32, Nodes: 4, Seed: 410},
		{Input: "native", Threads: 16, Nodes: 2, Seed: 411},
	}
	reports, err := tl.EvaluateAll("Streamcluster", cases)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if !rep.Evaluated {
			t.Errorf("case %d: ground truth missing", i)
		}
	}
	if !reports[0].Actual {
		t.Error("dense streamcluster case should be actually contended")
	}
}

func TestAnalyzeAllUnknownBenchmark(t *testing.T) {
	tl := sharedTool(t)
	if _, err := tl.AnalyzeAll("nope", []drbw.Case{{Threads: 16, Nodes: 2}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestBatchParallelNotSlower is the batch-scaling smoke test: with the
// worker pool enabled, EvaluateAll over several cases must not be
// meaningfully slower than the same sweep forced serial. On a multi-core
// host it should be a large speedup (the bench gate checks the ratio); here
// we only pin that parallel dispatch costs nothing, so the test stays
// meaningful on one core too.
func TestBatchParallelNotSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	tl := sharedTool(t)
	cases := drbw.StandardCases("native")[:4]
	for i := range cases {
		cases[i].Seed = uint64(500 + i*13)
	}
	sweep := func(workers int) time.Duration {
		core.SetPoolWorkers(workers)
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 2; trial++ {
			start := time.Now()
			if _, err := tl.EvaluateAll("Streamcluster", cases); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	defer core.SetPoolWorkers(0)
	serial := sweep(1)
	parallel := sweep(0)
	t.Logf("serial %v, parallel %v (GOMAXPROCS=%d)", serial, parallel, runtime.GOMAXPROCS(0))
	// 1.5x tolerance absorbs scheduler noise on single-core CI boxes, while
	// still catching a pool that serializes behind a lock (which showed up
	// as parallel >> serial before the atomic-dispatch rewrite).
	if parallel > serial+serial/2 {
		t.Errorf("parallel sweep %v is slower than serial %v beyond tolerance", parallel, serial)
	}
}
