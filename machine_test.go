package drbw_test

import (
	"os"
	"path/filepath"
	"testing"

	"drbw"
)

// epycLike is a plausible custom 2-socket machine.
func epycLike() drbw.MachineSpec {
	return drbw.MachineSpec{
		Name:         "epyc-like 2-socket",
		Nodes:        2,
		CoresPerNode: 16,
		LocalBW:      20,
		RemoteBW:     6,
		LinkOverrides: map[string]float64{
			"1->0": 5,
		},
		LocalDRAMLatency:  200,
		RemoteDRAMLatency: 330,
	}
}

func TestTrainOnCustomMachine(t *testing.T) {
	tool, err := drbw.TrainOn(epycLike(), drbw.Config{Quick: true, Window: 4096, Warmup: 2048, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tool.MachineName() != "epyc-like 2-socket" {
		t.Errorf("machine name %q", tool.MachineName())
	}
	// The 2-node machine skips N3/N4 configurations but keeps both classes.
	if tool.TrainingRuns() == 0 {
		t.Fatal("no training runs")
	}
	sum := tool.TrainingSummary()
	good, rmc := 0, 0
	for _, s := range sum {
		good += s["good"]
		rmc += s["rmc"]
	}
	if good == 0 || rmc == 0 {
		t.Fatalf("training lost a class: %d good / %d rmc", good, rmc)
	}
	// A custom workload analysis works end to end on the custom machine.
	w := drbw.WorkloadSpec{
		Name: "hot",
		Arrays: []drbw.ArraySpec{
			{Name: "shared", MB: 64, Placement: drbw.Master, Pattern: drbw.Scan},
		},
		MLP: 8, WorkCycles: 1,
	}
	rep, err := tool.AnalyzeWorkload(w, drbw.Case{Threads: 16, Nodes: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Contended() {
		t.Error("centralized scan on custom machine not detected")
	}
}

func TestTrainOnTooSmallMachine(t *testing.T) {
	tiny := drbw.MachineSpec{Nodes: 1, CoresPerNode: 2, LocalBW: 10, RemoteBW: 5}
	if _, err := drbw.TrainOn(tiny, drbw.Config{Quick: true}); err == nil {
		t.Error("single-node machine accepted for training")
	}
}

func TestMachineSpecValidation(t *testing.T) {
	bad := epycLike()
	bad.LinkOverrides = map[string]float64{"nonsense": 5}
	if _, err := drbw.TrainOn(bad, drbw.Config{Quick: true}); err == nil {
		t.Error("bad link override key accepted")
	}
	zero := drbw.MachineSpec{}
	if _, err := drbw.TrainOn(zero, drbw.Config{Quick: true}); err == nil {
		t.Error("zero spec accepted")
	}
}

func TestLoadMachineSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "machine.json")
	body := `{
		"name": "test box", "nodes": 2, "cores_per_node": 8,
		"local_bw": 16, "remote_bw": 5,
		"link_overrides": {"0->1": 4.5}
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := drbw.LoadMachineSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "test box" || spec.Nodes != 2 || spec.LinkOverrides["0->1"] != 4.5 {
		t.Errorf("spec parsed wrong: %+v", spec)
	}
	if _, err := drbw.LoadMachineSpec(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(badPath, []byte("{"), 0o644)
	if _, err := drbw.LoadMachineSpec(badPath); err == nil {
		t.Error("truncated json accepted")
	}
}
