package drbw_test

// Tests for the result cache at the Tool level: cached results must be
// indistinguishable from recomputation (same reports, same ledger bytes),
// corruption must read as a miss, and concurrent identical analyses must
// share one computation.

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"drbw"
	"drbw/internal/obs"
)

// withCache attaches a fresh disk-backed cache to the shared tool and
// detaches it when the test ends (the tool is shared across tests).
func withCache(t *testing.T, tl *drbw.Tool, dir string) *drbw.Cache {
	t.Helper()
	cache, err := drbw.OpenCache(dir, drbw.CacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tl.SetCache(cache)
	t.Cleanup(func() { tl.SetCache(nil) })
	return cache
}

// ledgerBytes renders a report the way the CLIs' run ledgers do, reduced to
// the deterministic (fingerprinted) section.
func ledgerBytes(t *testing.T, name string, rep *drbw.Report) []byte {
	t.Helper()
	led := obs.NewLedger("test", map[string]string{"case": name})
	led.AddResult(drbw.ReportLedgerResult(name, rep, nil))
	b, err := led.DeterministicBytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCacheMatchesRecompute pins the cache's core contract across every
// cached analysis path: a warm hit returns a report deep-equal to an
// uncached recomputation, with identical ledger bytes — whether the hit
// comes from the memory tier, the disk tier (a fresh cache instance on the
// same directory), a windowed range query, or the shard merger.
func TestCacheMatchesRecompute(t *testing.T) {
	tl := sharedTool(t)
	td, sPath, oPath := recordTo(t, tl, 71, drbw.FormatBinary)
	dir := t.TempDir()

	// The uncached reference.
	want, err := tl.AnalyzeTraceFile(sPath, oPath)
	if err != nil {
		t.Fatal(err)
	}

	cache := withCache(t, tl, dir)

	cold, err := tl.AnalyzeTraceFile(sPath, oPath)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("cold run: stats %+v, want exactly one miss", st)
	}
	warm, err := tl.AnalyzeTraceFile(sPath, oPath)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Fatalf("warm run: stats %+v, want exactly one hit", st)
	}
	for name, rep := range map[string]*drbw.Report{"cold": cold, "warm": warm} {
		if !reflect.DeepEqual(rep, want) {
			t.Fatalf("%s cached report differs from uncached recomputation:\n%v\nvs\n%v", name, rep, want)
		}
	}
	if got, ref := ledgerBytes(t, "case", warm), ledgerBytes(t, "case", want); string(got) != string(ref) {
		t.Fatalf("warm hit changes the ledger's deterministic bytes:\n%s\nvs\n%s", got, ref)
	}

	t.Run("disk tier", func(t *testing.T) {
		// A fresh cache instance on the same directory has an empty memory
		// tier; the hit must come from disk.
		fresh := withCache(t, tl, dir)
		rep, err := tl.AnalyzeTraceFile(sPath, oPath)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, want) {
			t.Fatal("disk-tier hit differs from recomputation")
		}
		if st := fresh.Stats(); st.Hits != 1 || st.Misses != 0 {
			t.Fatalf("disk-tier stats %+v, want one hit and no misses", st)
		}
	})

	t.Run("range", func(t *testing.T) {
		lo, hi := td.Samples[0].Time, td.Samples[0].Time
		for _, s := range td.Samples {
			if s.Time < lo {
				lo = s.Time
			}
			if s.Time > hi {
				hi = s.Time
			}
		}
		tl.SetCache(nil)
		want, err := tl.AnalyzeTraceFileRange(sPath, oPath, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		tl.SetCache(cache)
		for pass := 0; pass < 2; pass++ {
			rep, err := tl.AnalyzeTraceFileRange(sPath, oPath, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rep, want) {
				t.Fatalf("pass %d: cached range report differs from recomputation", pass)
			}
		}
		// A different window must be a different key, not a stale hit.
		if rep, err := tl.AnalyzeTraceFileRange(sPath, oPath, lo, lo+(hi-lo)/4); err == nil && reflect.DeepEqual(rep, want) {
			t.Fatal("a narrower window returned the full window's report")
		}
	})

	t.Run("shards", func(t *testing.T) {
		// Split the recording into two shards sharing the objects table.
		sdir := t.TempDir()
		half := len(td.Samples) / 2
		shards := []string{filepath.Join(sdir, "a.bin"), filepath.Join(sdir, "b.bin")}
		for i, part := range [][]drbw.SampleRecord{td.Samples[:half], td.Samples[half:]} {
			sub := &drbw.TraceData{Samples: part, Objects: td.Objects, Weight: td.Weight}
			if err := sub.SaveAs(shards[i], filepath.Join(sdir, "objects.csv"), drbw.FormatBinary); err != nil {
				t.Fatal(err)
			}
		}
		objects := filepath.Join(sdir, "objects.csv")
		tl.SetCache(nil)
		want, err := tl.AnalyzeTraceShards(shards, objects)
		if err != nil {
			t.Fatal(err)
		}
		tl.SetCache(cache)
		before := cache.Stats()
		for pass := 0; pass < 2; pass++ {
			rep, err := tl.AnalyzeTraceShards(shards, objects)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rep, want) {
				t.Fatalf("pass %d: cached shard report differs from recomputation", pass)
			}
		}
		after := cache.Stats()
		if after.Misses != before.Misses+1 || after.Hits != before.Hits+1 {
			t.Fatalf("shard stats went %+v -> %+v, want one new miss and one new hit", before, after)
		}
	})
}

// TestCacheCorruptEntryRecomputes flips bits in a persisted entry and
// proves the damage surfaces as a silent miss plus a correct recompute —
// never as a wrong or truncated report.
func TestCacheCorruptEntryRecomputes(t *testing.T) {
	tl := sharedTool(t)
	_, sPath, oPath := recordTo(t, tl, 73, drbw.FormatBinary)
	dir := t.TempDir()

	withCache(t, tl, dir)
	want, err := tl.AnalyzeTraceFile(sPath, oPath)
	if err != nil {
		t.Fatal(err)
	}

	entries, err := filepath.Glob(filepath.Join(dir, "*.rc"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly one cache entry on disk, got %v (err %v)", entries, err)
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh instance on the same directory must see the damage (the old
	// instance would serve the memory tier and never touch the file).
	fresh := withCache(t, tl, dir)
	rep, err := tl.AnalyzeTraceFile(sPath, oPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, want) {
		t.Fatal("report after corruption differs from the original computation")
	}
	st := fresh.Stats()
	if st.Corrupt != 1 || st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats %+v, want the corrupt entry counted and a recompute", st)
	}
	if _, err := os.Stat(entries[0]); err == nil {
		// The recompute rewrites the entry; it must now verify.
		fresh2 := withCache(t, tl, dir)
		if _, err := tl.AnalyzeTraceFile(sPath, oPath); err != nil {
			t.Fatal(err)
		}
		if st := fresh2.Stats(); st.Hits != 1 || st.Corrupt != 0 {
			t.Fatalf("rewritten entry stats %+v, want a clean hit", st)
		}
	}
}

// TestAnalyzeTraceFilesDedup lists one recording four times in a batch: the
// cache's singleflight must collapse the duplicates into one computation.
func TestAnalyzeTraceFilesDedup(t *testing.T) {
	tl := sharedTool(t)
	_, sPath, oPath := recordTo(t, tl, 79, drbw.FormatBinary)
	cache := withCache(t, tl, t.TempDir())

	paths := make([]drbw.TracePaths, 4)
	for i := range paths {
		paths[i] = drbw.TracePaths{Samples: sPath, Objects: oPath}
	}
	reports, err := tl.AnalyzeTraceFiles(paths)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if rep == nil {
			t.Fatalf("report %d is nil", i)
		}
		if !reflect.DeepEqual(rep, reports[0]) {
			t.Fatalf("report %d differs from report 0", i)
		}
	}
	st := cache.Stats()
	if st.Misses != 1 {
		t.Fatalf("stats %+v, want the four duplicates to compute exactly once", st)
	}
	if st.Hits+st.Shared != 3 {
		t.Fatalf("stats %+v, want the three duplicates served as hits or shared flights", st)
	}
}

// TestCacheConcurrentSingleflight hammers one key from many goroutines.
// Run under -race this also proves the decoded reports don't alias.
func TestCacheConcurrentSingleflight(t *testing.T) {
	tl := sharedTool(t)
	_, sPath, oPath := recordTo(t, tl, 83, drbw.FormatBinary)
	cache := withCache(t, tl, t.TempDir())

	const n = 8
	reports := make([]*drbw.Report, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = tl.AnalyzeTraceFile(sPath, oPath)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(reports[i], reports[0]) {
			t.Fatalf("concurrent report %d differs", i)
		}
	}
	if st := cache.Stats(); st.Misses != 1 {
		t.Fatalf("stats %+v, want one computation for %d concurrent callers", st, n)
	}
}

// TestAutoOptimizeCache proves the optimizer's cache tiers: a repeat run is
// a whole-result hit, and a rerun with different search options reuses the
// cached baseline measurement (visible as extra hits) while still producing
// a live search result.
func TestAutoOptimizeCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a placement search")
	}
	tl := sharedTool(t)
	cache := withCache(t, tl, t.TempDir())
	c := drbw.Case{Input: "native", Threads: 32, Nodes: 4, Seed: 7}
	opts := drbw.SearchOptions{TopObjects: 1, Frontier: 2}

	first, err := tl.AutoOptimize("Streamcluster", c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Detected {
		t.Fatal("expected the contended case to be detected")
	}
	afterFirst := cache.Stats()
	second, err := tl.AutoOptimize("Streamcluster", c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second, first) {
		t.Fatalf("cached optimization differs from the original:\n%+v\nvs\n%+v", second, first)
	}
	if st := cache.Stats(); st.Hits != afterFirst.Hits+1 {
		t.Fatalf("stats %+v after repeat run, want one more hit than %+v", st, afterFirst)
	}

	// Different search options: the full-result key misses, but the cached
	// baseline (and detection verdict) are reused.
	afterSecond := cache.Stats()
	third, err := tl.AutoOptimize("Streamcluster", c, drbw.SearchOptions{TopObjects: 1, Frontier: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !third.Detected {
		t.Fatal("rerun with new options lost the detection")
	}
	if !reflect.DeepEqual(third.Report, first.Report) {
		t.Fatal("rerun with new options produced a different detection report")
	}
	st := cache.Stats()
	if st.Misses <= afterSecond.Misses {
		t.Fatalf("stats %+v, want the new options to miss the full-result key", st)
	}
	if st.Hits <= afterSecond.Hits {
		t.Fatalf("stats %+v, want the baseline measurement served from cache", st)
	}
}
