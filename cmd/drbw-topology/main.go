// drbw-topology prints the simulated machine models: nodes, cores,
// hardware threads, and the bandwidth of every directed channel (including
// the asymmetric inter-socket links).
//
// Usage:
//
//	drbw-topology [-machine xeon-e5-4650|two-socket]
package main

import (
	"flag"
	"fmt"
	"log"

	"drbw/internal/topology"
)

func main() {
	machine := flag.String("machine", "xeon-e5-4650", "machine model")
	flag.Parse()

	var m *topology.Machine
	switch *machine {
	case "xeon-e5-4650":
		m = topology.XeonE5_4650()
	case "two-socket":
		m = topology.TwoSocket()
	case "opteron-6276":
		m = topology.Opteron6276()
	default:
		log.Fatalf("unknown machine %q (xeon-e5-4650, two-socket, opteron-6276)", *machine)
	}

	fmt.Printf("%s\n", m.Name())
	fmt.Printf("nodes: %d   cores: %d   hardware threads: %d\n",
		m.Nodes(), m.NumCores(), m.NumCPUs())
	lat := m.Latencies()
	fmt.Printf("latencies (cycles): L1 %.0f  L2 %.0f  L3 %.0f  LFB %.0f  local DRAM %.0f  remote DRAM %.0f\n",
		lat.L1, lat.L2, lat.L3, lat.LFB, lat.LocalDRAM, lat.RemoteDRAM)
	fmt.Printf("line %dB  page %dB  huge page %dB\n\n",
		m.LineSize(), m.PageSize(), m.HugePageSize())

	fmt.Println("channels (bytes/cycle):")
	for _, ch := range m.Channels() {
		kind := "QPI link"
		if ch.Local() {
			kind = "memory controller"
		}
		fmt.Printf("  %-12s %6.1f   %s\n", ch, m.Bandwidth(ch), kind)
	}

	fmt.Println("\nnode -> hardware threads:")
	for n := 0; n < m.Nodes(); n++ {
		fmt.Printf("  N%d: %v\n", n, m.CPUsOfNode(topology.NodeID(n)))
	}
}
