// drbw-workload analyzes a user-defined workload described in a JSON spec
// file: bandwidth-contention detection, CF diagnosis, optional placement
// fixes, and the shared-cache contention extension.
//
// Usage:
//
//	drbw-workload -spec workload.json [-threads 32] [-nodes 4]
//	              [-machine machine.json] [-model model.json]
//	              [-fix interleave|colocate|replicate] [-cache]
//	              [-truth] [-quick] [-metrics] [-log level]
//
// Observability: -metrics appends the final registry snapshot to stdout,
// -log sets the structured-log level (debug, info, warn, error), and
// training/analysis progress reports on stderr. SIGQUIT dumps the flight
// recorder and all goroutine stacks.
//
// Spec file example:
//
//	{
//	  "name": "lookup-service",
//	  "arrays": [
//	    {"name": "table",  "mb": 128, "placement": "master",   "pattern": "shared-random", "weight": 4},
//	    {"name": "output", "mb": 32,  "placement": "parallel", "pattern": "scan", "write_every": 2}
//	  ],
//	  "mlp": 6,
//	  "work_cycles": 2
//	}
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"drbw"
	"drbw/internal/obs"
)

func main() {
	spec := flag.String("spec", "", "workload spec JSON (required)")
	threads := flag.Int("threads", 32, "total threads")
	nodes := flag.Int("nodes", 4, "NUMA nodes")
	machineFile := flag.String("machine", "", "custom machine spec JSON (trains on that machine)")
	model := flag.String("model", "", "saved classifier (skips training; incompatible with -machine)")
	fix := flag.String("fix", "", "measure a fix: interleave, colocate or replicate")
	truth := flag.Bool("truth", false, "run the interleave ground-truth probe")
	cacheToo := flag.Bool("cache", false, "also run the shared-cache contention detector")
	quick := flag.Bool("quick", false, "quick training")
	metrics := flag.Bool("metrics", false, "append a JSON metrics snapshot to the output")
	logLevel := flag.String("log", "warn", "log level: debug, info, warn, error")
	flag.Parse()

	obs.SetProgressWriter(os.Stderr)
	obs.SetFlightSink(os.Stderr)
	obs.FlightDumpOnSignal()
	if err := obs.ConfigureLogging(os.Stderr, *logLevel); err != nil {
		log.Fatal(err)
	}
	if *spec == "" {
		flag.Usage()
		os.Exit(2)
	}
	w, err := drbw.LoadWorkloadSpec(*spec)
	if err != nil {
		log.Fatal(err)
	}

	var tool *drbw.Tool
	start := time.Now()
	switch {
	case *model != "":
		tool, err = drbw.Load(*model)
	case *machineFile != "":
		var ms drbw.MachineSpec
		if ms, err = drbw.LoadMachineSpec(*machineFile); err == nil {
			fmt.Fprintf(os.Stderr, "training on %s (quick=%v)...\n", ms.Name, *quick)
			tool, err = drbw.TrainOn(ms, drbw.Config{Quick: *quick})
		}
	default:
		fmt.Fprintf(os.Stderr, "training classifier (quick=%v)...\n", *quick)
		tool, err = drbw.Train(drbw.Config{Quick: *quick})
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ready in %.1fs\n\n", time.Since(start).Seconds())

	c := drbw.Case{Threads: *threads, Nodes: *nodes}
	var rep *drbw.Report
	if *truth {
		rep, err = tool.EvaluateWorkload(w, c)
	} else {
		rep, err = tool.AnalyzeWorkload(w, c)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	if *fix != "" {
		var strategy drbw.Strategy
		switch strings.ToLower(*fix) {
		case "interleave":
			strategy = drbw.Interleave
		case "colocate", "co-locate":
			strategy = drbw.Colocate
		case "replicate":
			strategy = drbw.Replicate
		default:
			log.Fatalf("unknown fix %q", *fix)
		}
		objs := rep.TopObjects(1)
		if strategy == drbw.Interleave {
			objs = nil
		}
		cmp, err := tool.OptimizeWorkload(w, c, strategy, objs...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s", strategy)
		if len(objs) > 0 {
			fmt.Printf(" on %s", strings.Join(objs, ", "))
		}
		fmt.Printf(": %.2fx speedup, remote accesses %+.1f%%\n",
			cmp.Speedup(), -100*cmp.RemoteReduction)
	}

	if *cacheToo {
		fmt.Fprintf(os.Stderr, "\ntraining shared-cache detector...\n")
		ct, err := drbw.TrainCacheContention(drbw.Config{Quick: *quick})
		if err != nil {
			log.Fatal(err)
		}
		crep, err := ct.AnalyzeWorkload(w, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Print(crep)
	}

	if *metrics {
		if b, err := obs.SnapshotJSON(); err == nil {
			fmt.Printf("== metrics ==\n%s\n", b)
		} else {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}
