// drbw-profile runs the full DR-BW pipeline on one benchmark case:
// per-channel contention detection, Contribution-Fraction diagnosis, and —
// on request — a placement fix with measured speedup.
//
// Usage:
//
//	drbw-profile -bench Streamcluster [-input native] [-threads 32]
//	             [-nodes 4] [-fix replicate|colocate|interleave]
//	             [-objects block,point.p] [-quick] [-truth]
//	             [-record run [-format csv|binary]]
//	             [-metrics] [-log level]
//	drbw-profile -list
//
// -record writes the raw profile for offline analysis; -format picks the
// samples encoding (csv is greppable text, binary is the compact columnar
// format — drbw-analyze reads both).
//
// Observability: -metrics appends the final registry snapshot to stdout,
// -log sets the structured-log level (debug, info, warn, error), and
// training/analysis progress reports on stderr. SIGQUIT dumps the flight
// recorder and all goroutine stacks.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"drbw"
	"drbw/internal/obs"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (see -list)")
	list := flag.Bool("list", false, "list benchmarks and inputs")
	input := flag.String("input", "", "input size (default: smallest)")
	threads := flag.Int("threads", 32, "total threads")
	nodes := flag.Int("nodes", 4, "NUMA nodes")
	fix := flag.String("fix", "", "measure a fix: interleave, colocate or replicate")
	objects := flag.String("objects", "", "comma-separated object names for -fix (default: top-CF object)")
	truth := flag.Bool("truth", false, "also run the interleave ground-truth probe")
	quick := flag.Bool("quick", false, "quick training")
	model := flag.String("model", "", "load a saved classifier instead of training")
	record := flag.String("record", "", "record the profile to <prefix>.samples.{csv,bin} and <prefix>.objects.csv")
	format := flag.String("format", "csv", "recording format for -record: csv (text, greppable) or binary (columnar, compact)")
	metrics := flag.Bool("metrics", false, "append a JSON metrics snapshot to the output")
	logLevel := flag.String("log", "warn", "log level: debug, info, warn, error")
	flag.Parse()

	obs.SetProgressWriter(os.Stderr)
	obs.SetFlightSink(os.Stderr)
	obs.FlightDumpOnSignal()
	if err := obs.ConfigureLogging(os.Stderr, *logLevel); err != nil {
		log.Fatal(err)
	}

	if *list {
		for _, name := range drbw.Benchmarks() {
			inputs, _ := drbw.BenchmarkInputs(name)
			fmt.Printf("%-14s inputs: %s\n", name, strings.Join(inputs, ", "))
		}
		return
	}
	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}

	var tool *drbw.Tool
	var err error
	if *model != "" {
		tool, err = drbw.Load(*model)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "training classifier (quick=%v)...\n", *quick)
		tool, err = drbw.Train(drbw.Config{Quick: *quick})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trained in %.1fs\n\n", time.Since(start).Seconds())
	}

	c := drbw.Case{Input: *input, Threads: *threads, Nodes: *nodes}

	if *record != "" {
		var tf drbw.TraceFormat
		ext := ".csv"
		switch strings.ToLower(*format) {
		case "csv":
			tf = drbw.FormatCSV
		case "binary", "bin":
			tf = drbw.FormatBinary
			ext = ".bin"
		default:
			log.Fatalf("unknown -format %q (want csv or binary)", *format)
		}
		td, err := tool.Record(*bench, c)
		if err != nil {
			log.Fatal(err)
		}
		sPath, oPath := *record+".samples"+ext, *record+".objects.csv"
		if err := td.SaveAs(sPath, oPath, tf); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "recorded %d samples to %s, %d objects to %s\n",
			len(td.Samples), sPath, len(td.Objects), oPath)
	}

	var rep *drbw.Report
	if *truth {
		rep, err = tool.Evaluate(*bench, c)
	} else {
		rep, err = tool.Analyze(*bench, c)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	if *fix == "" {
		printMetrics(*metrics)
		return
	}
	var strategy drbw.Strategy
	switch strings.ToLower(*fix) {
	case "interleave":
		strategy = drbw.Interleave
	case "colocate", "co-locate":
		strategy = drbw.Colocate
	case "replicate":
		strategy = drbw.Replicate
	default:
		log.Fatalf("unknown fix %q", *fix)
	}
	var objs []string
	if *objects != "" {
		objs = strings.Split(*objects, ",")
	} else if strategy != drbw.Interleave {
		objs = rep.TopObjects(1)
	}
	cmp, err := tool.Optimize(*bench, c, strategy, objs...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", strategy)
	if len(objs) > 0 {
		fmt.Printf(" on %s", strings.Join(objs, ", "))
	}
	fmt.Printf(": %.2fx speedup", cmp.Speedup())
	if len(cmp.PhaseSpeedups) > 1 {
		fmt.Printf(" (per phase:")
		for _, s := range cmp.PhaseSpeedups {
			fmt.Printf(" %.2fx", s)
		}
		fmt.Printf(")")
	}
	fmt.Printf("\nremote accesses %+.1f%%, avg DRAM latency %+.1f%%\n",
		-100*cmp.RemoteReduction, -100*cmp.LatencyReduction)
	printMetrics(*metrics)
}

// printMetrics appends the registry snapshot to the tool output when on.
func printMetrics(on bool) {
	if !on {
		return
	}
	b, err := obs.SnapshotJSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Printf("== metrics ==\n%s\n", b)
}
