// drbw-bench regenerates the paper's tables and figures on the simulated
// platform.
//
// Usage:
//
//	drbw-bench [-quick] [-exp all|tableI|tableII|tableIII|fig3|tableIV|
//	            tableV|tableVI|tableVII|fig4|fig5|fig6|fig7|fig8|sp|
//	            blackscholes|llc|baselines|ablations]
//	           [-cpuprofile f] [-memprofile f] [-trace f]
//	           [-http addr] [-metrics] [-log level]
//
// -quick reduces the training set, simulation window and sweeps (roughly
// 10x faster, same qualitative shapes). The full run regenerates the
// 512-case Table V sweep and takes several minutes; the sweep fans out
// over GOMAXPROCS workers through the detector's batch API, with seeds
// fixed per case so the tables match a serial run exactly. Sweep progress
// (N/M cases, elapsed, ETA) reports on stderr.
//
// The profiling flags capture the run for `go tool pprof` / `go tool trace`:
// -cpuprofile and -trace cover everything between flag parsing and exit,
// -memprofile writes an allocation profile at exit. They exist so hot-path
// regressions in the simulator can be diagnosed on the real workload rather
// than microbenchmarks. For long sweeps, -http serves the same profiles
// live (/debug/pprof) next to /metrics and /debug/vars, and -metrics
// appends the final registry snapshot to the output.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"drbw/internal/core"
	"drbw/internal/experiments"
	"drbw/internal/obs"
)

func main() {
	os.Exit(mainImpl())
}

// mainImpl exists so the profiling defers flush before the process exits;
// os.Exit directly in main would skip them.
func mainImpl() int {
	quick := flag.Bool("quick", false, "reduced sweeps and training set")
	exp := flag.String("exp", "all", "experiment to run (comma separated)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "worker goroutines for the batch pool and each run's window stage (0 = GOMAXPROCS, 1 = serial); never changes results")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	httpAddr := flag.String("http", "", "serve /metrics and /debug/pprof on this address")
	metrics := flag.Bool("metrics", false, "append a JSON metrics snapshot to the output")
	logLevel := flag.String("log", "warn", "log level: debug, info, warn, error")
	traceOut := flag.String("trace-out", "", "record a causal trace of the run and write it to this file")
	traceFormat := flag.String("trace-format", "chrome", "trace export format: chrome (trace-event JSON) or tree (nested spans)")
	ledgerPath := flag.String("ledger", "", "write a machine-readable run ledger (JSON) to this file")
	flag.Parse()

	tfmt, err := obs.ParseTraceFormat(*traceFormat)
	if err != nil {
		log.Print(err)
		return 2
	}
	obs.SetProgressWriter(os.Stderr)
	obs.SetFlightSink(os.Stderr)
	obs.FlightDumpOnSignal()
	if err := obs.ConfigureLogging(os.Stderr, *logLevel); err != nil {
		log.Print(err)
		return 2
	}
	if *traceOut != "" {
		obs.StartTracing()
	}
	runStart := time.Now()
	led := obs.NewLedger("drbw-bench", flagConfig())
	defer func() {
		if tr := obs.StopTracing(); tr != nil && *traceOut != "" {
			if werr := obs.WriteTraceExport(tr, *traceOut, tfmt); werr != nil {
				fmt.Fprintln(os.Stderr, werr)
			} else {
				fmt.Fprintf(os.Stderr, "trace (%d spans) -> %s\n", tr.SpanCount(), *traceOut)
			}
		}
		if *ledgerPath != "" {
			led.AddTiming("total", time.Since(runStart).Seconds())
			led.AttachMetrics()
			if werr := led.Write(*ledgerPath); werr != nil {
				fmt.Fprintln(os.Stderr, werr)
			} else {
				fmt.Fprintf(os.Stderr, "ledger -> %s\n", *ledgerPath)
			}
		}
	}()
	if *httpAddr != "" {
		srv, err := obs.StartServer(*httpAddr)
		if err != nil {
			log.Print(err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /debug/pprof)\n", srv.Addr())
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Printf("cpuprofile: %v", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Printf("cpuprofile: %v", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Printf("trace: %v", err)
			return 1
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			log.Printf("trace: %v", err)
			return 1
		}
		defer rtrace.Stop()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	// The work runs through run() so the profiling defers above flush even
	// on failure (log.Fatal would bypass them).
	core.SetPoolWorkers(*workers)
	err = run(*quick, *exp, *seed, *workers)
	lr := obs.LedgerResult{Name: *exp, Kind: "bench"}
	if err != nil {
		lr.Error = err.Error()
	}
	led.AddResult(lr)
	if *metrics {
		if b, merr := obs.SnapshotJSON(); merr == nil {
			fmt.Printf("== metrics ==\n%s\n", b)
		} else {
			fmt.Fprintln(os.Stderr, merr)
		}
	}
	if err != nil {
		obs.FlightFailure("bench.run", err)
		log.Print(err)
		return 1
	}
	return 0
}

// flagConfig captures the effective flag set for the run ledger.
func flagConfig() map[string]string {
	cfg := map[string]string{}
	flag.VisitAll(func(f *flag.Flag) { cfg[f.Name] = f.Value.String() })
	return cfg
}

func run(quick bool, exp string, seed uint64, workers int) error {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "training classifier (quick=%v)...\n", quick)
	ctx, err := experiments.NewContextWorkers(quick, seed, workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trained in %.1fs\n\n", time.Since(start).Seconds())

	want := map[string]bool{}
	for _, e := range strings.Split(exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[strings.ToLower(name)] }

	// section prints each successful table; the first error latches and
	// suppresses the rest, and run returns it at the end.
	var secErr error
	section := func(body string, err error) {
		if secErr != nil {
			return
		}
		if err != nil {
			secErr = err
			return
		}
		fmt.Println(body)
		fmt.Println(strings.Repeat("-", 78))
	}

	if sel("tableI") {
		section(ctx.TableI(), nil)
	}
	if sel("tableII") {
		section(ctx.TableII(), nil)
	}
	if sel("tableIII") {
		body, _, err := ctx.TableIII()
		section(body, err)
	}
	if sel("fig3") {
		section(ctx.Fig3(), nil)
	}

	var ev *experiments.Evaluation
	needEval := sel("tableIV") || sel("tableV") || sel("tableVI")
	if needEval {
		fmt.Fprintf(os.Stderr, "sweeping benchmark cases in parallel (this is the long part)...\n")
		ev, err = ctx.Evaluate()
		if err != nil {
			// Evaluate aggregates per-case errors and keeps every case that
			// succeeded; render the tables from the partial sweep.
			if ev == nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "warning: some cases failed, tables reflect the remainder:\n%v\n", err)
		}
	}
	if sel("tableIV") {
		body, err := ctx.TableIV(ev)
		section(body, err)
	}
	if sel("tableV") {
		section(ctx.TableV(ev), nil)
	}
	if sel("tableVI") {
		body, _ := ctx.TableVI(ev)
		section(body, nil)
	}
	if sel("tableVII") {
		body, _, err := ctx.TableVII()
		section(body, err)
	}
	if sel("fig4") {
		section(ctx.Fig4())
	}
	if sel("fig5") {
		section(ctx.Fig5())
	}
	if sel("fig6") {
		section(ctx.Fig6())
	}
	if sel("fig7") {
		section(ctx.Fig7())
	}
	if sel("fig8") {
		section(ctx.Fig8())
	}
	if sel("sp") {
		section(ctx.SPStudy())
	}
	if sel("blackscholes") {
		section(ctx.BlackscholesStudy())
	}
	if sel("llc") {
		section(ctx.LLCStudy())
	}
	if sel("baselines") {
		section(ctx.BaselineStudy())
	}
	if sel("ablations") {
		section(ctx.AblationFeatures())
		section(ctx.AblationTreeDepth())
		section(ctx.AblationSamplingPeriod())
		section(ctx.AblationChannelGranularity())
		section(ctx.AblationPrefetcher())
		section(ctx.AblationLatencyModel())
	}

	fmt.Fprintf(os.Stderr, "total %.1fs\n", time.Since(start).Seconds())
	return secErr
}
