// drbw-bench regenerates the paper's tables and figures on the simulated
// platform.
//
// Usage:
//
//	drbw-bench [-quick] [-exp all|tableI|tableII|tableIII|fig3|tableIV|
//	            tableV|tableVI|tableVII|fig4|fig5|fig6|fig7|fig8|sp|
//	            blackscholes|llc|baselines|ablations]
//
// -quick reduces the training set, simulation window and sweeps (roughly
// 10x faster, same qualitative shapes). The full run regenerates the
// 512-case Table V sweep and takes several minutes; the sweep fans out
// over GOMAXPROCS workers through the detector's batch API, with seeds
// fixed per case so the tables match a serial run exactly.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"drbw/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps and training set")
	exp := flag.String("exp", "all", "experiment to run (comma separated)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	start := time.Now()
	fmt.Fprintf(os.Stderr, "training classifier (quick=%v)...\n", *quick)
	ctx, err := experiments.NewContext(*quick, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trained in %.1fs\n\n", time.Since(start).Seconds())

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[strings.ToLower(name)] }

	section := func(body string, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(body)
		fmt.Println(strings.Repeat("-", 78))
	}

	if sel("tableI") {
		section(ctx.TableI(), nil)
	}
	if sel("tableII") {
		section(ctx.TableII(), nil)
	}
	if sel("tableIII") {
		body, _, err := ctx.TableIII()
		section(body, err)
	}
	if sel("fig3") {
		section(ctx.Fig3(), nil)
	}

	var ev *experiments.Evaluation
	needEval := sel("tableIV") || sel("tableV") || sel("tableVI")
	if needEval {
		fmt.Fprintf(os.Stderr, "sweeping benchmark cases in parallel (this is the long part)...\n")
		ev, err = ctx.Evaluate()
		if err != nil {
			// Evaluate aggregates per-case errors and keeps every case that
			// succeeded; render the tables from the partial sweep.
			if ev == nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "warning: some cases failed, tables reflect the remainder:\n%v\n", err)
		}
	}
	if sel("tableIV") {
		body, err := ctx.TableIV(ev)
		section(body, err)
	}
	if sel("tableV") {
		section(ctx.TableV(ev), nil)
	}
	if sel("tableVI") {
		body, _ := ctx.TableVI(ev)
		section(body, nil)
	}
	if sel("tableVII") {
		body, _, err := ctx.TableVII()
		section(body, err)
	}
	if sel("fig4") {
		section(ctx.Fig4())
	}
	if sel("fig5") {
		section(ctx.Fig5())
	}
	if sel("fig6") {
		section(ctx.Fig6())
	}
	if sel("fig7") {
		section(ctx.Fig7())
	}
	if sel("fig8") {
		section(ctx.Fig8())
	}
	if sel("sp") {
		section(ctx.SPStudy())
	}
	if sel("blackscholes") {
		section(ctx.BlackscholesStudy())
	}
	if sel("llc") {
		section(ctx.LLCStudy())
	}
	if sel("baselines") {
		section(ctx.BaselineStudy())
	}
	if sel("ablations") {
		section(ctx.AblationFeatures())
		section(ctx.AblationTreeDepth())
		section(ctx.AblationSamplingPeriod())
		section(ctx.AblationChannelGranularity())
		section(ctx.AblationPrefetcher())
		section(ctx.AblationLatencyModel())
	}

	fmt.Fprintf(os.Stderr, "total %.1fs\n", time.Since(start).Seconds())
}
