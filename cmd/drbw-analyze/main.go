// drbw-analyze runs DR-BW's classification and diagnosis offline, on one
// or more recorded profiles: a samples file (CSV or binary columnar,
// autodetected) plus an allocation-table CSV (produced by drbw-profile
// -record, TraceData.Save/SaveAs, or any tool emitting the same schema —
// see internal/profiledata).
//
// Usage:
//
//	drbw-analyze -samples run.samples.csv -objects run.objects.csv
//	             [-model model.json] [-quick] [-range lo:hi]
//	             [-http addr] [-metrics] [-log level]
//	drbw-analyze -shards dir/ [-model model.json] [-quick]
//	drbw-analyze -samples run.samples.csv -objects run.objects.csv
//	             -convert out [-format csv|binary]
//
// Both file flags accept comma-separated lists (paired positionally);
// multiple recordings are analyzed in parallel via Tool.AnalyzeTraceFiles
// with per-trace progress on stderr, and a recording that fails to analyze
// does not abort the others. Samples files may be CSV or the binary
// columnar format; the reader autodetects. Analysis streams recordings
// block by block, so memory stays bounded however large the trace is;
// indexed binary recordings additionally fan block ranges across the
// worker pool, with a merged report bit-identical to the serial one.
//
// -shards analyzes a directory holding one recording split across several
// samples files (named *.samples.*) plus a single *.objects.csv, merging
// them into one report as if the shards had been one file. -range
// restricts the analysis to samples with lo <= time <= hi (two floats
// separated by a colon); on indexed recordings whole blocks outside the
// window are never read.
//
// -convert transcodes the recordings to <prefix>.samples.{csv,bin} and
// <prefix>.objects.csv in the format chosen by -format (default binary)
// instead of analyzing; with multiple recordings, -convert takes a
// comma-separated prefix list paired positionally. No classifier is
// trained in convert mode.
//
// Without -model a classifier is trained first; with it, the saved model
// from drbw-train -o is used and no simulation runs at all.
//
// -cache names a result-cache directory: repeat analyses of a recording
// already analyzed with the same model are served from the cache instead of
// being recomputed, with bit-identical reports (keys are content hashes of
// the recording and the model, so editing either is automatically a miss).
// The run's hit/miss counts are reported on stderr.
//
// Observability: -http serves /metrics (JSON registry snapshot, or
// Prometheus text with ?format=prom), /debug/vars (expvar), /debug/pprof
// and /debug/flight (recent-event dump) on the given address for the
// lifetime of the run; -metrics appends the final snapshot to stdout;
// -log sets the structured-log level (debug, info, warn, error);
// -trace-out records the run's causal span tree and writes it as Chrome
// trace-event JSON (or a deterministic nested tree with -trace-format
// tree); -ledger writes a machine-readable run ledger (config hash, build
// info, timings, metrics, per-recording verdicts). Trace and ledger are
// written even when the analysis fails, so failed runs still leave an
// audit trail; a failure also dumps the flight recorder to stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"drbw"
	"drbw/internal/core"
	"drbw/internal/obs"
)

func main() {
	samples := flag.String("samples", "", "samples file (CSV or binary, autodetected), or a comma-separated list (required unless -shards)")
	objects := flag.String("objects", "", "allocation-table CSV, or a comma-separated list (required unless -shards)")
	shards := flag.String("shards", "", "directory holding one recording sharded across *.samples.* files plus one *.objects.csv")
	timeRange := flag.String("range", "", "restrict analysis to the lo:hi time window (two floats)")
	convert := flag.String("convert", "", "transcode the recordings to this output prefix (or comma-separated prefix list) instead of analyzing")
	format := flag.String("format", "binary", "target format for -convert: csv or binary")
	model := flag.String("model", "", "saved classifier from drbw-train -o")
	cacheDir := flag.String("cache", "", "result-cache directory; repeat analyses with the same model and recordings are served from it")
	quick := flag.Bool("quick", false, "quick training when no -model is given")
	workers := flag.Int("workers", 0, "worker goroutines for multi-trace analysis and each training run's window stage (0 = GOMAXPROCS, 1 = serial); never changes results")
	httpAddr := flag.String("http", "", "serve /metrics and /debug/pprof on this address")
	metrics := flag.Bool("metrics", false, "append a JSON metrics snapshot to the output")
	logLevel := flag.String("log", "warn", "log level: debug, info, warn, error")
	traceOut := flag.String("trace-out", "", "record a causal trace of the run and write it to this file")
	traceFormat := flag.String("trace-format", "chrome", "trace export format: chrome (trace-event JSON) or tree (nested spans)")
	ledgerPath := flag.String("ledger", "", "write a machine-readable run ledger (JSON) to this file")
	flag.Parse()

	tfmt, err := obs.ParseTraceFormat(*traceFormat)
	if err != nil {
		log.Fatal(err)
	}
	core.SetPoolWorkers(*workers)
	obs.SetProgressWriter(os.Stderr)
	obs.SetFlightSink(os.Stderr)
	obs.FlightDumpOnSignal()
	if err := obs.ConfigureLogging(os.Stderr, *logLevel); err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		obs.StartTracing()
	}
	ledCfg := map[string]string{}
	flag.VisitAll(func(f *flag.Flag) { ledCfg[f.Name] = f.Value.String() })
	led := obs.NewLedger("drbw-analyze", ledCfg)
	runStart := time.Now()
	// writeArtifacts flushes the trace and ledger; it runs on success and
	// failure alike so an aborted analysis still leaves its audit trail.
	writeArtifacts := func() {
		if tr := obs.StopTracing(); tr != nil && *traceOut != "" {
			if werr := obs.WriteTraceExport(tr, *traceOut, tfmt); werr != nil {
				fmt.Fprintln(os.Stderr, werr)
			} else {
				fmt.Fprintf(os.Stderr, "trace (%d spans) -> %s\n", tr.SpanCount(), *traceOut)
			}
		}
		if *ledgerPath != "" {
			led.AddTiming("total", time.Since(runStart).Seconds())
			led.AttachMetrics()
			if werr := led.Write(*ledgerPath); werr != nil {
				fmt.Fprintln(os.Stderr, werr)
			} else {
				fmt.Fprintf(os.Stderr, "ledger -> %s\n", *ledgerPath)
			}
		}
	}
	die := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		writeArtifacts()
		os.Exit(1)
	}
	if *httpAddr != "" {
		srv, err := obs.StartServer(*httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /debug/pprof)\n", srv.Addr())
	}

	sampleFiles := splitList(*samples)
	objectFiles := splitList(*objects)
	if *shards != "" {
		if *convert != "" || len(sampleFiles) > 0 || *timeRange != "" {
			log.Fatal("drbw-analyze: -shards replaces -samples/-objects and combines with neither -convert nor -range")
		}
	} else {
		if len(sampleFiles) == 0 || len(objectFiles) == 0 {
			flag.Usage()
			os.Exit(2)
		}
		if len(sampleFiles) != len(objectFiles) {
			log.Fatalf("drbw-analyze: %d sample files but %d object files; the lists pair positionally",
				len(sampleFiles), len(objectFiles))
		}
	}
	lo, hi, haveRange, err := parseRange(*timeRange)
	if err != nil {
		log.Fatal(err)
	}

	if *convert != "" {
		convertTraces(sampleFiles, objectFiles, splitList(*convert), *format)
		return
	}

	var tool *drbw.Tool
	if *model != "" {
		tool, err = drbw.Load(*model)
	} else {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "no -model given; training classifier (quick=%v)...\n", *quick)
		tool, err = drbw.Train(drbw.Config{Quick: *quick, Workers: *workers})
		if err == nil {
			led.AddTiming("train", time.Since(start).Seconds())
			fmt.Fprintf(os.Stderr, "trained in %.1fs\n", time.Since(start).Seconds())
		}
	}
	if err != nil {
		die(err)
	}
	var cache *drbw.Cache
	if *cacheDir != "" {
		if cache, err = drbw.OpenCache(*cacheDir, drbw.CacheOptions{}); err != nil {
			die(err)
		}
		tool.SetCache(cache)
	}

	analyzeStart := time.Now()
	if *shards != "" {
		rep, err := tool.AnalyzeTraceShardDir(*shards)
		led.AddTiming("analyze", time.Since(analyzeStart).Seconds())
		led.AddResult(drbw.ReportLedgerResult(*shards, rep, err))
		if err != nil {
			die(err)
		}
		fmt.Print(rep)
		if *metrics {
			printMetrics()
		}
		printCacheStats(cache)
		writeArtifacts()
		return
	}

	var reports []*drbw.Report
	ferrs := make([]error, len(sampleFiles))
	if haveRange {
		// The batch runner has no windowed form; ranged recordings are
		// analyzed one at a time (each still fans out internally when the
		// recording is indexed).
		reports = make([]*drbw.Report, len(sampleFiles))
		for i := range sampleFiles {
			rep, rerr := tool.AnalyzeTraceFileRange(sampleFiles[i], objectFiles[i], lo, hi)
			if rerr != nil {
				ferrs[i] = rerr
				fmt.Fprintf(os.Stderr, "%s: %v\n", sampleFiles[i], rerr)
				if err == nil {
					err = rerr
				}
				continue
			}
			reports[i] = rep
		}
	} else {
		paths := make([]drbw.TracePaths, len(sampleFiles))
		for i := range sampleFiles {
			paths[i] = drbw.TracePaths{Samples: sampleFiles[i], Objects: objectFiles[i]}
		}
		reports, err = tool.AnalyzeTraceFiles(paths)
		var be *drbw.BatchError
		if errors.As(err, &be) {
			for _, c := range be.Cases {
				if c.Index >= 0 && c.Index < len(ferrs) {
					ferrs[c.Index] = c.Err
				}
			}
		}
	}
	led.AddTiming("analyze", time.Since(analyzeStart).Seconds())
	for i, rep := range reports {
		led.AddResult(drbw.ReportLedgerResult(sampleFiles[i], rep, ferrs[i]))
		if len(reports) > 1 {
			fmt.Printf("== %s ==\n", sampleFiles[i])
		}
		if rep == nil {
			fmt.Printf("analysis failed (see stderr)\n\n")
			continue
		}
		fmt.Print(rep)
		if len(reports) > 1 {
			fmt.Println()
		}
	}
	if *metrics {
		printMetrics()
	}
	printCacheStats(cache)
	writeArtifacts()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// printCacheStats reports the run's result-cache traffic on stderr.
func printCacheStats(cache *drbw.Cache) {
	if cache == nil {
		return
	}
	st := cache.Stats()
	fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d shared, %d corrupt\n",
		st.Hits, st.Misses, st.Shared, st.Corrupt)
}

// convertTraces transcodes each recording to the target format under its
// paired output prefix.
func convertTraces(sampleFiles, objectFiles, prefixes []string, format string) {
	var tf drbw.TraceFormat
	ext := ".csv"
	switch strings.ToLower(format) {
	case "csv":
		tf = drbw.FormatCSV
	case "binary", "bin":
		tf = drbw.FormatBinary
		ext = ".bin"
	default:
		log.Fatalf("drbw-analyze: unknown -format %q (want csv or binary)", format)
	}
	if len(prefixes) != len(sampleFiles) {
		log.Fatalf("drbw-analyze: %d recordings but %d -convert prefixes; the lists pair positionally",
			len(sampleFiles), len(prefixes))
	}
	for i := range sampleFiles {
		td, err := drbw.LoadTrace(sampleFiles[i], objectFiles[i])
		if err != nil {
			log.Fatal(err)
		}
		sPath, oPath := prefixes[i]+".samples"+ext, prefixes[i]+".objects.csv"
		if err := td.SaveAs(sPath, oPath, tf); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "converted %s (%d samples, weight %g) -> %s\n",
			sampleFiles[i], len(td.Samples), td.Weight, sPath)
	}
}

// printMetrics appends the registry snapshot to the tool output.
func printMetrics() {
	b, err := obs.SnapshotJSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Printf("== metrics ==\n%s\n", b)
}

// parseRange parses a -range value of the form "lo:hi" into a time window.
func parseRange(s string) (lo, hi float64, have bool, err error) {
	if s == "" {
		return 0, 0, false, nil
	}
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0, 0, false, fmt.Errorf("drbw-analyze: -range %q is not lo:hi", s)
	}
	if lo, err = strconv.ParseFloat(s[:i], 64); err != nil {
		return 0, 0, false, fmt.Errorf("drbw-analyze: -range lower bound %q: %v", s[:i], err)
	}
	if hi, err = strconv.ParseFloat(s[i+1:], 64); err != nil {
		return 0, 0, false, fmt.Errorf("drbw-analyze: -range upper bound %q: %v", s[i+1:], err)
	}
	if lo != lo || hi != hi {
		return 0, 0, false, fmt.Errorf("drbw-analyze: -range %q has a NaN bound, which selects no samples (want numbers with lo <= hi)", s)
	}
	if lo > hi {
		return 0, 0, false, fmt.Errorf("drbw-analyze: -range %q is inverted (want lo <= hi)", s)
	}
	return lo, hi, true, nil
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
