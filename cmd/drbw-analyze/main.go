// drbw-analyze runs DR-BW's classification and diagnosis offline, on one
// or more recorded profiles: a samples file (CSV or binary columnar,
// autodetected) plus an allocation-table CSV (produced by drbw-profile
// -record, TraceData.Save/SaveAs, or any tool emitting the same schema —
// see internal/profiledata).
//
// Usage:
//
//	drbw-analyze -samples run.samples.csv -objects run.objects.csv
//	             [-model model.json] [-quick] [-range lo:hi]
//	             [-http addr] [-metrics] [-log level]
//	drbw-analyze -shards dir/ [-model model.json] [-quick]
//	drbw-analyze -samples run.samples.csv -objects run.objects.csv
//	             -convert out [-format csv|binary]
//
// Both file flags accept comma-separated lists (paired positionally);
// multiple recordings are analyzed in parallel via Tool.AnalyzeTraceFiles
// with per-trace progress on stderr, and a recording that fails to analyze
// does not abort the others. Samples files may be CSV or the binary
// columnar format; the reader autodetects. Analysis streams recordings
// block by block, so memory stays bounded however large the trace is;
// indexed binary recordings additionally fan block ranges across the
// worker pool, with a merged report bit-identical to the serial one.
//
// -shards analyzes a directory holding one recording split across several
// samples files (named *.samples.*) plus a single *.objects.csv, merging
// them into one report as if the shards had been one file. -range
// restricts the analysis to samples with lo <= time <= hi (two floats
// separated by a colon); on indexed recordings whole blocks outside the
// window are never read.
//
// -convert transcodes the recordings to <prefix>.samples.{csv,bin} and
// <prefix>.objects.csv in the format chosen by -format (default binary)
// instead of analyzing; with multiple recordings, -convert takes a
// comma-separated prefix list paired positionally. No classifier is
// trained in convert mode.
//
// Without -model a classifier is trained first; with it, the saved model
// from drbw-train -o is used and no simulation runs at all.
//
// Observability: -http serves /metrics (JSON registry snapshot),
// /debug/vars (expvar) and /debug/pprof on the given address for the
// lifetime of the run; -metrics appends the final snapshot to stdout;
// -log sets the structured-log level (debug, info, warn, error).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"drbw"
	"drbw/internal/core"
	"drbw/internal/obs"
)

func main() {
	samples := flag.String("samples", "", "samples file (CSV or binary, autodetected), or a comma-separated list (required unless -shards)")
	objects := flag.String("objects", "", "allocation-table CSV, or a comma-separated list (required unless -shards)")
	shards := flag.String("shards", "", "directory holding one recording sharded across *.samples.* files plus one *.objects.csv")
	timeRange := flag.String("range", "", "restrict analysis to the lo:hi time window (two floats)")
	convert := flag.String("convert", "", "transcode the recordings to this output prefix (or comma-separated prefix list) instead of analyzing")
	format := flag.String("format", "binary", "target format for -convert: csv or binary")
	model := flag.String("model", "", "saved classifier from drbw-train -o")
	quick := flag.Bool("quick", false, "quick training when no -model is given")
	workers := flag.Int("workers", 0, "worker goroutines for multi-trace analysis and each training run's window stage (0 = GOMAXPROCS, 1 = serial); never changes results")
	httpAddr := flag.String("http", "", "serve /metrics and /debug/pprof on this address")
	metrics := flag.Bool("metrics", false, "append a JSON metrics snapshot to the output")
	logLevel := flag.String("log", "warn", "log level: debug, info, warn, error")
	flag.Parse()

	core.SetPoolWorkers(*workers)
	obs.SetProgressWriter(os.Stderr)
	if err := obs.ConfigureLogging(os.Stderr, *logLevel); err != nil {
		log.Fatal(err)
	}
	if *httpAddr != "" {
		srv, err := obs.StartServer(*httpAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /debug/pprof)\n", srv.Addr())
	}

	sampleFiles := splitList(*samples)
	objectFiles := splitList(*objects)
	if *shards != "" {
		if *convert != "" || len(sampleFiles) > 0 || *timeRange != "" {
			log.Fatal("drbw-analyze: -shards replaces -samples/-objects and combines with neither -convert nor -range")
		}
	} else {
		if len(sampleFiles) == 0 || len(objectFiles) == 0 {
			flag.Usage()
			os.Exit(2)
		}
		if len(sampleFiles) != len(objectFiles) {
			log.Fatalf("drbw-analyze: %d sample files but %d object files; the lists pair positionally",
				len(sampleFiles), len(objectFiles))
		}
	}
	lo, hi, haveRange, err := parseRange(*timeRange)
	if err != nil {
		log.Fatal(err)
	}

	if *convert != "" {
		convertTraces(sampleFiles, objectFiles, splitList(*convert), *format)
		return
	}

	var tool *drbw.Tool
	if *model != "" {
		tool, err = drbw.Load(*model)
	} else {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "no -model given; training classifier (quick=%v)...\n", *quick)
		tool, err = drbw.Train(drbw.Config{Quick: *quick, Workers: *workers})
		if err == nil {
			fmt.Fprintf(os.Stderr, "trained in %.1fs\n", time.Since(start).Seconds())
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	if *shards != "" {
		rep, err := tool.AnalyzeTraceShardDir(*shards)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep)
		if *metrics {
			printMetrics()
		}
		return
	}

	var reports []*drbw.Report
	if haveRange {
		// The batch runner has no windowed form; ranged recordings are
		// analyzed one at a time (each still fans out internally when the
		// recording is indexed).
		reports = make([]*drbw.Report, len(sampleFiles))
		for i := range sampleFiles {
			rep, rerr := tool.AnalyzeTraceFileRange(sampleFiles[i], objectFiles[i], lo, hi)
			if rerr != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", sampleFiles[i], rerr)
				if err == nil {
					err = rerr
				}
				continue
			}
			reports[i] = rep
		}
	} else {
		paths := make([]drbw.TracePaths, len(sampleFiles))
		for i := range sampleFiles {
			paths[i] = drbw.TracePaths{Samples: sampleFiles[i], Objects: objectFiles[i]}
		}
		reports, err = tool.AnalyzeTraceFiles(paths)
	}
	for i, rep := range reports {
		if len(reports) > 1 {
			fmt.Printf("== %s ==\n", sampleFiles[i])
		}
		if rep == nil {
			fmt.Printf("analysis failed (see stderr)\n\n")
			continue
		}
		fmt.Print(rep)
		if len(reports) > 1 {
			fmt.Println()
		}
	}
	if *metrics {
		printMetrics()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// convertTraces transcodes each recording to the target format under its
// paired output prefix.
func convertTraces(sampleFiles, objectFiles, prefixes []string, format string) {
	var tf drbw.TraceFormat
	ext := ".csv"
	switch strings.ToLower(format) {
	case "csv":
		tf = drbw.FormatCSV
	case "binary", "bin":
		tf = drbw.FormatBinary
		ext = ".bin"
	default:
		log.Fatalf("drbw-analyze: unknown -format %q (want csv or binary)", format)
	}
	if len(prefixes) != len(sampleFiles) {
		log.Fatalf("drbw-analyze: %d recordings but %d -convert prefixes; the lists pair positionally",
			len(sampleFiles), len(prefixes))
	}
	for i := range sampleFiles {
		td, err := drbw.LoadTrace(sampleFiles[i], objectFiles[i])
		if err != nil {
			log.Fatal(err)
		}
		sPath, oPath := prefixes[i]+".samples"+ext, prefixes[i]+".objects.csv"
		if err := td.SaveAs(sPath, oPath, tf); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "converted %s (%d samples, weight %g) -> %s\n",
			sampleFiles[i], len(td.Samples), td.Weight, sPath)
	}
}

// printMetrics appends the registry snapshot to the tool output.
func printMetrics() {
	b, err := obs.SnapshotJSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Printf("== metrics ==\n%s\n", b)
}

// parseRange parses a -range value of the form "lo:hi" into a time window.
func parseRange(s string) (lo, hi float64, have bool, err error) {
	if s == "" {
		return 0, 0, false, nil
	}
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0, 0, false, fmt.Errorf("drbw-analyze: -range %q is not lo:hi", s)
	}
	if lo, err = strconv.ParseFloat(s[:i], 64); err != nil {
		return 0, 0, false, fmt.Errorf("drbw-analyze: -range lower bound %q: %v", s[:i], err)
	}
	if hi, err = strconv.ParseFloat(s[i+1:], 64); err != nil {
		return 0, 0, false, fmt.Errorf("drbw-analyze: -range upper bound %q: %v", s[i+1:], err)
	}
	if !(lo <= hi) {
		return 0, 0, false, fmt.Errorf("drbw-analyze: -range %q is empty (want lo <= hi)", s)
	}
	return lo, hi, true, nil
}

// splitList splits a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
