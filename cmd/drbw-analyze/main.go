// drbw-analyze runs DR-BW's classification and diagnosis offline, on a
// recorded profile: a sample CSV plus an allocation-table CSV (produced by
// drbw-profile -record, TraceData.Save, or any tool emitting the same
// schema — see internal/profiledata).
//
// Usage:
//
//	drbw-analyze -samples run.samples.csv -objects run.objects.csv
//	             [-model model.json] [-quick]
//
// Without -model a classifier is trained first; with it, the saved model
// from drbw-train -o is used and no simulation runs at all.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"drbw"
)

func main() {
	samples := flag.String("samples", "", "sample CSV (required)")
	objects := flag.String("objects", "", "allocation-table CSV (required)")
	model := flag.String("model", "", "saved classifier from drbw-train -o")
	quick := flag.Bool("quick", false, "quick training when no -model is given")
	flag.Parse()

	if *samples == "" || *objects == "" {
		flag.Usage()
		os.Exit(2)
	}

	var tool *drbw.Tool
	var err error
	if *model != "" {
		tool, err = drbw.Load(*model)
	} else {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "no -model given; training classifier (quick=%v)...\n", *quick)
		tool, err = drbw.Train(drbw.Config{Quick: *quick})
		if err == nil {
			fmt.Fprintf(os.Stderr, "trained in %.1fs\n", time.Since(start).Seconds())
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	td, err := drbw.LoadTrace(*samples, *objects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %d samples, %d objects\n\n", len(td.Samples), len(td.Objects))

	rep, err := tool.AnalyzeTrace(td)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
}
