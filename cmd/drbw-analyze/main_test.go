package main

import (
	"math"
	"strings"
	"testing"
)

func TestParseRange(t *testing.T) {
	valid := []struct {
		in     string
		lo, hi float64
	}{
		{"0:100", 0, 100},
		{"-5:5", -5, 5},
		{"7:7", 7, 7},
		{"1e3:2e3", 1e3, 2e3},
		{"-Inf:+Inf", math.Inf(-1), math.Inf(1)},
	}
	for _, tc := range valid {
		lo, hi, have, err := parseRange(tc.in)
		if err != nil || !have || lo != tc.lo || hi != tc.hi {
			t.Errorf("parseRange(%q) = %v, %v, %v, %v; want %v, %v, true, nil", tc.in, lo, hi, have, err, tc.lo, tc.hi)
		}
	}

	if lo, hi, have, err := parseRange(""); err != nil || have || lo != 0 || hi != 0 {
		t.Errorf("parseRange(\"\") = %v, %v, %v, %v; want no range, no error", lo, hi, have, err)
	}

	invalid := []struct {
		in   string
		want string // substring the error must carry
	}{
		{"100", "not lo:hi"},
		{"abc:5", "lower bound"},
		{"5:xyz", "upper bound"},
		{"100:0", "inverted"},
		{"5:-5", "inverted"},
		{"NaN:100", "NaN"},
		{"0:NaN", "NaN"},
		{"NaN:NaN", "NaN"},
	}
	for _, tc := range invalid {
		_, _, _, err := parseRange(tc.in)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parseRange(%q) error = %v, want mention of %q", tc.in, err, tc.want)
		}
	}
}
