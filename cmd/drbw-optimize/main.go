// drbw-optimize runs DR-BW's closed loop on built-in benchmark cases:
// profile, classify, diagnose — and, when contention is detected, search
// the placement space over the diagnosed objects for the best fix.
//
// Usage:
//
//	drbw-optimize -bench NW[,Streamcluster,...] [-threads 32] [-nodes 4]
//	              [-input name] [-seed n] [-model model.json] [-quick]
//	              [-topk 3] [-frontier 12] [-exhaustive] [-workers n]
//	              [-metrics] [-log level]
//
// For each case the tool prints the detection verdict, the diagnosed
// objects, the search statistics (candidates enumerated / simulated /
// pruned by the analytic frontier / cut short by the cycle budget), the
// chosen placement and its measured comparison against the baseline run
// (speedup, remote-access and latency reductions).
//
// Candidate placements are ranked by an analytic cost model computed from
// the detection's retained samples; only the top -frontier candidates are
// simulated, in parallel, each wave bounded by the best cycle count seen so
// far (a losing run aborts at the first epoch past the incumbent).
// -exhaustive disables both cuts and simulates every candidate to
// completion. The chosen placement is identical either way on the cases the
// analytic ranking orders correctly, and identical at any -workers setting
// always.
//
// Without -model a classifier is trained first; -quick trains on the
// reduced set.
//
// -cache names a result-cache directory: a case already optimized with the
// same model and engine configuration is served from the cache, and a rerun
// with different search options still reuses its cached detection verdict
// and baseline measurement. Hit/miss counts are reported on stderr.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"drbw"
	"drbw/internal/core"
	"drbw/internal/obs"
)

func main() {
	bench := flag.String("bench", "", "comma-separated benchmark names (required; see drbw-workload for the list)")
	input := flag.String("input", "", "benchmark input size (default: smallest)")
	threads := flag.Int("threads", 32, "total threads")
	nodes := flag.Int("nodes", 4, "NUMA nodes used")
	seed := flag.Uint64("seed", 1, "base seed; benchmarks are decorrelated from it")
	model := flag.String("model", "", "saved classifier from drbw-train -o")
	cacheDir := flag.String("cache", "", "result-cache directory; repeat optimizations with the same model are served from it")
	quick := flag.Bool("quick", false, "quick training when no -model is given")
	topk := flag.Int("topk", 0, "top-CF objects the search combines (0 = default 3)")
	frontier := flag.Int("frontier", 0, "candidates simulated after analytic ranking (0 = default 12, negative = all)")
	exhaustive := flag.Bool("exhaustive", false, "simulate every candidate to completion (no frontier cut, no cycle budget)")
	workers := flag.Int("workers", 0, "worker goroutines for candidate simulation and training (0 = GOMAXPROCS, 1 = serial); never changes the chosen placement")
	metrics := flag.Bool("metrics", false, "append a JSON metrics snapshot to the output")
	logLevel := flag.String("log", "warn", "log level: debug, info, warn, error")
	traceOut := flag.String("trace-out", "", "record a causal trace of the run and write it to this file")
	traceFormat := flag.String("trace-format", "chrome", "trace export format: chrome (trace-event JSON) or tree (nested spans)")
	ledgerPath := flag.String("ledger", "", "write a machine-readable run ledger (JSON) to this file")
	flag.Parse()

	tfmt, ferr := obs.ParseTraceFormat(*traceFormat)
	if ferr != nil {
		log.Fatal(ferr)
	}
	core.SetPoolWorkers(*workers)
	obs.SetProgressWriter(os.Stderr)
	obs.SetFlightSink(os.Stderr)
	obs.FlightDumpOnSignal()
	if err := obs.ConfigureLogging(os.Stderr, *logLevel); err != nil {
		log.Fatal(err)
	}
	if *bench == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *traceOut != "" {
		obs.StartTracing()
	}
	ledCfg := map[string]string{}
	flag.VisitAll(func(f *flag.Flag) { ledCfg[f.Name] = f.Value.String() })
	led := obs.NewLedger("drbw-optimize", ledCfg)
	runStart := time.Now()
	writeArtifacts := func() {
		if tr := obs.StopTracing(); tr != nil && *traceOut != "" {
			if werr := obs.WriteTraceExport(tr, *traceOut, tfmt); werr != nil {
				fmt.Fprintln(os.Stderr, werr)
			} else {
				fmt.Fprintf(os.Stderr, "trace (%d spans) -> %s\n", tr.SpanCount(), *traceOut)
			}
		}
		if *ledgerPath != "" {
			led.AddTiming("total", time.Since(runStart).Seconds())
			led.AttachMetrics()
			if werr := led.Write(*ledgerPath); werr != nil {
				fmt.Fprintln(os.Stderr, werr)
			} else {
				fmt.Fprintf(os.Stderr, "ledger -> %s\n", *ledgerPath)
			}
		}
	}

	var tool *drbw.Tool
	var err error
	if *model != "" {
		tool, err = drbw.Load(*model)
	} else {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "no -model given; training classifier (quick=%v)...\n", *quick)
		tool, err = drbw.Train(drbw.Config{Quick: *quick, Workers: *workers})
		if err == nil {
			fmt.Fprintf(os.Stderr, "trained in %.1fs\n", time.Since(start).Seconds())
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	var cache *drbw.Cache
	if *cacheDir != "" {
		if cache, err = drbw.OpenCache(*cacheDir, drbw.CacheOptions{}); err != nil {
			log.Fatal(err)
		}
		tool.SetCache(cache)
	}

	opts := drbw.SearchOptions{
		TopObjects: *topk,
		Frontier:   *frontier,
		Workers:    *workers,
		Exhaustive: *exhaustive,
	}
	failed := 0
	caseSeed := *seed
	for _, name := range strings.Split(*bench, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c := drbw.Case{Input: *input, Threads: *threads, Nodes: *nodes, Seed: caseSeed}
		caseSeed += 1009
		start := time.Now()
		opt, err := tool.AutoOptimize(name, c, opts)
		if err != nil {
			obs.FlightFailure("optimize."+name, err)
			led.AddResult(obs.LedgerResult{Name: name, Kind: "optimization", Error: err.Error()})
			fmt.Fprintf(os.Stderr, "drbw-optimize: %s: %v\n", name, err)
			failed++
			continue
		}
		lr := drbw.ReportLedgerResult(name, opt.Report, nil)
		lr.Kind = "optimization"
		lr.Placement = opt.Placement
		lr.Speedup = opt.Speedup
		led.AddResult(lr)
		printOptimization(name, opt, time.Since(start))
	}
	if *metrics {
		if b, err := obs.SnapshotJSON(); err == nil {
			fmt.Printf("== metrics ==\n%s\n", b)
		} else {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	if cache != nil {
		st := cache.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d shared, %d corrupt\n",
			st.Hits, st.Misses, st.Shared, st.Corrupt)
	}
	writeArtifacts()
	if failed > 0 {
		os.Exit(1)
	}
}

func printOptimization(name string, opt *drbw.Optimization, elapsed time.Duration) {
	fmt.Printf("=== %s %s", name, opt.Report.Config)
	if opt.Report.Input != "" {
		fmt.Printf(" input=%s", opt.Report.Input)
	}
	fmt.Printf(" (%.1fs)\n", elapsed.Seconds())
	if !opt.Detected {
		fmt.Printf("  no remote bandwidth contention detected; nothing to optimize\n\n")
		return
	}
	fmt.Printf("  contended channels: %s\n", strings.Join(opt.Report.Channels, ", "))
	for _, o := range opt.Report.Objects {
		fmt.Printf("  CF %5.1f%%  %s\n", 100*o.CF, o.Name)
	}
	fmt.Printf("  search: %d candidates, %d simulated, %d pruned, %d budget-aborted\n",
		opt.Candidates, opt.Explored, opt.Pruned, opt.AbortedRuns)
	if opt.Placement == "" {
		fmt.Printf("  no candidate completed\n\n")
		return
	}
	cmp := opt.Comparison
	fmt.Printf("  chosen placement: %s\n", opt.Placement)
	fmt.Printf("  speedup %.2fx (%.0f -> %.0f cycles), remote accesses %+.1f%%, DRAM latency %+.1f%%\n\n",
		opt.Speedup, cmp.BaseCycles, cmp.OptCycles,
		-100*cmp.RemoteReduction, -100*cmp.LatencyReduction)
}
