// drbw-train collects the paper's 192-run micro-benchmark training set,
// fits the decision-tree classifier, and prints Table II, Table III and
// Figure 3. With -o the trained classifier is also saved for drbw-profile
// and drbw-analyze.
//
// Usage:
//
//	drbw-train [-quick] [-seed n] [-o model.json] [-metrics] [-log level]
//
// Training-collection progress (N/M runs, elapsed, ETA) reports on stderr;
// -metrics appends a JSON metrics snapshot to the output. SIGQUIT dumps
// the flight recorder and all goroutine stacks.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"drbw"
	"drbw/internal/experiments"
	"drbw/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "quarter training set, reduced window")
	seed := flag.Uint64("seed", 1, "simulation seed")
	out := flag.String("o", "", "save the trained classifier to this path")
	metrics := flag.Bool("metrics", false, "append a JSON metrics snapshot to the output")
	logLevel := flag.String("log", "warn", "log level: debug, info, warn, error")
	flag.Parse()

	obs.SetProgressWriter(os.Stderr)
	obs.SetFlightSink(os.Stderr)
	obs.FlightDumpOnSignal()
	if err := obs.ConfigureLogging(os.Stderr, *logLevel); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "collecting training runs (quick=%v)...\n", *quick)
	ctx, err := experiments.NewContext(*quick, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "collected in %.1fs\n\n", time.Since(start).Seconds())

	fmt.Println(ctx.TableII())
	body, _, err := ctx.TableIII()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(body)
	fmt.Println(ctx.Fig3())
	fmt.Println(ctx.TableI())

	if *out != "" {
		// Retrain through the public API so the saved model records its
		// configuration; the simulation is deterministic, so the result
		// matches the context above.
		tool, err := drbw.Train(drbw.Config{Quick: *quick, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		if err := tool.Save(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "model saved to %s\n", *out)
	}

	if *metrics {
		b, err := obs.SnapshotJSON()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== metrics ==\n%s\n", b)
	}
}
