package drbw_test

import (
	"os"
	"path/filepath"
	"testing"

	"drbw"
)

func TestLoadWorkloadSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wl.json")
	body := `{
		"name": "svc",
		"arrays": [
			{"name": "table", "mb": 64, "placement": "master", "pattern": "shared-random", "weight": 3},
			{"name": "out", "mb": 16, "placement": "parallel", "pattern": "scan", "write_every": 2}
		],
		"mlp": 6,
		"work_cycles": 2,
		"ops_per_thread": 1500000
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := drbw.LoadWorkloadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "svc" || len(w.Arrays) != 2 {
		t.Fatalf("spec parsed wrong: %+v", w)
	}
	if w.Arrays[0].Placement != drbw.Master || w.Arrays[0].Pattern != drbw.SharedRandom ||
		w.Arrays[0].Weight != 3 {
		t.Errorf("array 0: %+v", w.Arrays[0])
	}
	if w.Arrays[1].WriteEvery != 2 {
		t.Errorf("array 1: %+v", w.Arrays[1])
	}
	if w.MLP != 6 || w.WorkCycles != 2 || w.OpsPerThread != 1.5e6 {
		t.Errorf("scalars: %+v", w)
	}

	// The loaded spec runs through the pipeline.
	tl := sharedTool(t)
	rep, err := tl.AnalyzeWorkload(w, drbw.Case{Threads: 32, Nodes: 4, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Contended() {
		t.Error("master-placed table workload not detected")
	}
}

func TestLoadWorkloadSpecErrors(t *testing.T) {
	if _, err := drbw.LoadWorkloadSpec(filepath.Join(t.TempDir(), "none.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := drbw.LoadWorkloadSpec(bad); err == nil {
		t.Error("truncated json accepted")
	}
}
