package drbw

// SetCollectorMaxKept shrinks the detector's per-run sample cap so tests
// can force the collector's reservoir to overflow (Weight > 1) without a
// full-length run. It returns a restore function for the previous cap.
func SetCollectorMaxKept(t *Tool, n int) (restore func()) {
	prev := t.detector.Ccfg.MaxKept
	t.detector.Ccfg.MaxKept = n
	return func() { t.detector.Ccfg.MaxKept = prev }
}

// SetTestHookBetweenPasses installs a hook that runs between the serial
// streaming analysis' two passes, so tests can mutate the recording
// mid-analysis. It returns a restore function for the previous hook.
func SetTestHookBetweenPasses(f func()) (restore func()) {
	prev := testHookBetweenPasses
	testHookBetweenPasses = f
	return func() { testHookBetweenPasses = prev }
}

// SetForceTwoPass disables the fused single-pass path, routing every
// analysis through the two-pass pipeline. Tests use it to compare the two
// paths bit for bit and to exercise the two-pass consistency checks on
// recordings that would otherwise qualify for the single pass; the
// benchmark harness uses it as the speedup baseline. It returns a restore
// function for the previous setting.
func SetForceTwoPass(v bool) (restore func()) {
	prev := testHookForceTwoPass
	testHookForceTwoPass = v
	return func() { testHookForceTwoPass = prev }
}

// SetTestHookSinglePassOpened installs a hook that runs after the fused
// single-pass analysis has opened a recording's index, before any block
// decodes — the single-pass analogue of SetTestHookBetweenPasses, used to
// mutate the recording mid-analysis and prove the per-block checksum
// verification fires. It returns a restore function for the previous hook.
func SetTestHookSinglePassOpened(f func()) (restore func()) {
	prev := testHookSinglePassOpened
	testHookSinglePassOpened = f
	return func() { testHookSinglePassOpened = prev }
}
