package drbw

// SetCollectorMaxKept shrinks the detector's per-run sample cap so tests
// can force the collector's reservoir to overflow (Weight > 1) without a
// full-length run. It returns a restore function for the previous cap.
func SetCollectorMaxKept(t *Tool, n int) (restore func()) {
	prev := t.detector.Ccfg.MaxKept
	t.detector.Ccfg.MaxKept = n
	return func() { t.detector.Ccfg.MaxKept = prev }
}

// SetTestHookBetweenPasses installs a hook that runs between the serial
// streaming analysis' two passes, so tests can mutate the recording
// mid-analysis. It returns a restore function for the previous hook.
func SetTestHookBetweenPasses(f func()) (restore func()) {
	prev := testHookBetweenPasses
	testHookBetweenPasses = f
	return func() { testHookBetweenPasses = prev }
}
