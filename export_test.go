package drbw

// SetCollectorMaxKept shrinks the detector's per-run sample cap so tests
// can force the collector's reservoir to overflow (Weight > 1) without a
// full-length run. It returns a restore function for the previous cap.
func SetCollectorMaxKept(t *Tool, n int) (restore func()) {
	prev := t.detector.Ccfg.MaxKept
	t.detector.Ccfg.MaxKept = n
	return func() { t.detector.Ccfg.MaxKept = prev }
}
