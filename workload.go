package drbw

import (
	"encoding/json"
	"fmt"
	"os"

	"drbw/internal/alloc"
	"drbw/internal/core"
	"drbw/internal/engine"
	"drbw/internal/memsim"
	"drbw/internal/optimize"
	"drbw/internal/program"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

// Placement selects how an array's pages are placed at allocation time.
type Placement string

// Array placements.
const (
	// Master: the master thread initializes the array serially, so
	// first-touch concentrates every page on node 0 — the contention
	// pathology DR-BW diagnoses.
	Master Placement = "master"
	// Parallel: a blocked parallel loop initializes the array, co-locating
	// each share with the threads that use it.
	Parallel Placement = "parallel"
	// Interleaved: pages spread round-robin over all nodes.
	Interleaved Placement = "interleaved"
)

// Pattern selects how threads access an array.
type Pattern string

// Access patterns.
const (
	// Scan: each thread sweeps its own contiguous share.
	Scan Pattern = "scan"
	// SharedRandom: every thread reads random elements of the whole array.
	SharedRandom Pattern = "shared-random"
)

// ArraySpec declares one heap array of a custom workload.
type ArraySpec struct {
	Name      string    `json:"name"`
	MB        int       `json:"mb"` // size in MiB
	Placement Placement `json:"placement,omitempty"`
	Pattern   Pattern   `json:"pattern,omitempty"`
	// Weight is the array's relative share of the thread's accesses
	// (default 1).
	Weight int `json:"weight,omitempty"`
	// WriteEvery makes every k-th access to this array a store (0 = reads
	// only). Only meaningful for Scan.
	WriteEvery int `json:"write_every,omitempty"`
}

// WorkloadSpec describes a custom workload for Tool.AnalyzeWorkload: a set
// of arrays plus the execution character of its (identical) threads. The
// JSON form is what cmd/drbw-workload reads.
type WorkloadSpec struct {
	Name   string      `json:"name"`
	Arrays []ArraySpec `json:"arrays"`
	// OpsPerThread is the total memory accesses each thread performs
	// (default 2e6).
	OpsPerThread float64 `json:"ops_per_thread,omitempty"`
	// MLP is the sustained memory-level parallelism (default 8 — streaming
	// vector code; use 1 for dependent pointer chasing).
	MLP float64 `json:"mlp,omitempty"`
	// WorkCycles is the compute time per access in cycles (default 1).
	WorkCycles float64 `json:"work_cycles,omitempty"`
}

// LoadWorkloadSpec reads a WorkloadSpec from a JSON file.
func LoadWorkloadSpec(path string) (WorkloadSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return WorkloadSpec{}, fmt.Errorf("drbw: %w", err)
	}
	var w WorkloadSpec
	if err := json.Unmarshal(data, &w); err != nil {
		return WorkloadSpec{}, fmt.Errorf("drbw: parsing workload spec %s: %w", path, err)
	}
	return w, nil
}

// builder converts the spec into an internal program builder.
func (w WorkloadSpec) builder() (program.Builder, error) {
	if len(w.Arrays) == 0 {
		return program.Builder{}, fmt.Errorf("drbw: workload %q has no arrays", w.Name)
	}
	for _, a := range w.Arrays {
		if a.MB <= 0 {
			return program.Builder{}, fmt.Errorf("drbw: array %q has non-positive size", a.Name)
		}
		if a.Name == "" {
			return program.Builder{}, fmt.Errorf("drbw: workload %q has an unnamed array", w.Name)
		}
	}
	name := w.Name
	if name == "" {
		name = "custom"
	}
	spec := w
	return program.Builder{
		Name:   name,
		Inputs: []string{"default"},
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			bind, err := engine.EvenBinding(m, cfg.Threads, cfg.Nodes)
			if err != nil {
				return nil, err
			}
			as := memsim.NewAddressSpace(m)
			heap := alloc.NewHeap(as, 0x10000000)
			p := &program.Program{Machine: m, Space: as, Heap: heap, Binding: bind}

			type placed struct {
				spec ArraySpec
				obj  alloc.Object
			}
			var arrays []placed
			for i, a := range spec.Arrays {
				id, err := heap.Malloc(a.Name, uint64(a.MB)<<20,
					alloc.Site{Func: "main", File: name + ".go", Line: 10 + i},
					memsim.FirstTouchPolicy())
				if err != nil {
					return nil, err
				}
				switch a.Placement {
				case Master, "":
					heap.TouchAll(id, 0)
				case Parallel:
					nodes := make([]topology.NodeID, cfg.Nodes)
					for n := range nodes {
						nodes[n] = topology.NodeID(n)
					}
					heap.TouchPartitioned(id, nodes)
				case Interleaved:
					if err := heap.SetPolicy(id, memsim.InterleaveAll()); err != nil {
						return nil, err
					}
				default:
					return nil, fmt.Errorf("unknown placement %q", a.Placement)
				}
				arrays = append(arrays, placed{spec: a, obj: heap.Object(id)})
			}

			ops := spec.OpsPerThread
			if ops <= 0 {
				ops = 2e6
			}
			mlp := spec.MLP
			if mlp <= 0 {
				mlp = 8
			}
			work := spec.WorkCycles
			if work <= 0 {
				work = 1
			}

			ph := trace.Phase{Name: "compute"}
			for t := 0; t < cfg.Threads; t++ {
				var streams []trace.Stream
				var weights []int
				for _, a := range arrays {
					weight := a.spec.Weight
					if weight <= 0 {
						weight = 1
					}
					switch a.spec.Pattern {
					case SharedRandom:
						streams = append(streams, &trace.Rand{
							Base: a.obj.Base, Len: a.obj.Size, Elem: 8,
						})
					case Scan, "":
						parts := program.PartitionSeq(a.obj.Size, cfg.Threads)
						streams = append(streams, &trace.Seq{
							Base: a.obj.Base + parts[t].Off, Len: parts[t].Len,
							Elem: 8, WriteEvery: a.spec.WriteEvery,
						})
					default:
						return nil, fmt.Errorf("unknown pattern %q", a.spec.Pattern)
					}
					weights = append(weights, weight)
				}
				var s trace.Stream
				if len(streams) == 1 {
					s = streams[0]
				} else {
					s = &trace.Mix{Streams: streams, Weights: weights}
				}
				ph.Threads = append(ph.Threads, trace.ThreadSpec{
					Stream: s, Ops: ops, MLP: mlp, WorkCycles: work,
				})
			}
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}, nil
}

// AnalyzeWorkload runs the DR-BW pipeline on a custom workload. Like
// Analyze, the workload is simulated exactly once.
func (t *Tool) AnalyzeWorkload(w WorkloadSpec, c Case) (*Report, error) {
	b, err := w.builder()
	if err != nil {
		return nil, err
	}
	dn, err := t.detector.Detect(b, t.machine, c.config())
	if err != nil {
		return nil, err
	}
	return reportFromDetection(dn), nil
}

// EvaluateWorkload adds the interleave ground-truth probe to
// AnalyzeWorkload.
func (t *Tool) EvaluateWorkload(w WorkloadSpec, c Case) (*Report, error) {
	b, err := w.builder()
	if err != nil {
		return nil, err
	}
	dn, err := t.detector.Evaluate(b, t.machine, c.config())
	if err != nil {
		return nil, err
	}
	return reportFromDetection(dn), nil
}

// OptimizeWorkload measures a placement fix on a custom workload.
func (t *Tool) OptimizeWorkload(w WorkloadSpec, c Case, s Strategy, objects ...string) (Comparison, error) {
	b, err := w.builder()
	if err != nil {
		return Comparison{}, err
	}
	strat, err := s.internal()
	if err != nil {
		return Comparison{}, err
	}
	var tr optimize.Transform
	if len(objects) == 0 {
		tr = optimize.WholeProgram(strat)
	} else {
		tr = optimize.Objects(strat, objects...)
	}
	cmp, err := optimize.Measure(b, t.machine, c.config(), t.cfg.engineConfig(), tr)
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		BaseCycles: cmp.BaseCycles, OptCycles: cmp.OptCycles,
		PhaseSpeedups:   append([]float64(nil), cmp.PhaseSpeedups...),
		RemoteReduction: cmp.RemoteReduction, LatencyReduction: cmp.LatencyReduction,
	}, nil
}

// Detector exposes the trained detector for the experiment harness in
// bench_test.go and cmd/drbw-bench; library users normally stay with
// Analyze/Evaluate.
func (t *Tool) Detector() *core.Detector { return t.detector }

// TrainingData exposes the collected training set for the experiment
// harness.
func (t *Tool) TrainingData() *core.TrainingData { return t.training }

// MachineModel exposes the simulated machine for the experiment harness.
func (t *Tool) MachineModel() *topology.Machine { return t.machine }
