package drbw_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"drbw"
	"drbw/internal/core"
	"drbw/internal/pebs"
	"drbw/internal/profiledata"
)

// countSinglePass installs the single-pass hook as a counter, returning the
// counter and a cleanup the test must defer.
func countSinglePass() (*int, func()) {
	n := new(int)
	restore := drbw.SetTestHookSinglePassOpened(func() { *n++ })
	return n, restore
}

// TestSinglePassMatchesTwoPassMatrix is the fused-pass equivalence matrix:
// for every recording variant and worker count, the report must be
// bit-identical to both the slice path and the forced two-pass path — and
// the fused pass must actually engage exactly on the checksummed indexed
// variants, falling back everywhere else.
func TestSinglePassMatchesTwoPassMatrix(t *testing.T) {
	tl := sharedTool(t)
	// Record to CSV first so every variant holds identical grid-quantized
	// samples and the slice-path report carries no Record-only metadata.
	_, csvPath, oPath := recordTo(t, tl, 73, drbw.FormatCSV)
	td, err := drbw.LoadTrace(csvPath, oPath)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	indexed := filepath.Join(dir, "samples.bin")
	if err := td.SaveAs(indexed, filepath.Join(dir, "o.csv"), drbw.FormatBinary); err != nil {
		t.Fatal(err)
	}
	reblocked := reblock(t, indexed, 64)
	// Flate-compressed recordings carry no index; they must fall back.
	samples, weight, err := readSamplesFile(t, indexed)
	if err != nil {
		t.Fatal(err)
	}
	compressed := filepath.Join(dir, "samples.z.bin")
	cf, err := os.Create(compressed)
	if err != nil {
		t.Fatal(err)
	}
	if err := profiledata.WriteSamplesBinary(cf, samples, weight, profiledata.BinaryOptions{Compress: true}); err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}

	want, err := tl.AnalyzeTrace(td)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		path       string
		singlePass bool
	}{
		{"indexed", indexed, true},
		{"reblocked", reblocked, true},
		{"compressed", compressed, false},
		{"csv", csvPath, false},
	}
	defer core.SetPoolWorkers(0)
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		core.SetPoolWorkers(workers)
		for _, tc := range cases {
			fused, restoreHook := countSinglePass()
			got, err := tl.AnalyzeTraceFile(tc.path, oPath)
			restoreHook()
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, tc.name, err)
			}
			if tc.singlePass != (*fused > 0) {
				t.Fatalf("workers=%d %s: single pass ran %d times, want engaged=%v", workers, tc.name, *fused, tc.singlePass)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d %s: report differs from the slice path\n got %+v\nwant %+v", workers, tc.name, got, want)
			}
			restore := drbw.SetForceTwoPass(true)
			twoPass, err := tl.AnalyzeTraceFile(tc.path, oPath)
			restore()
			if err != nil {
				t.Fatalf("workers=%d %s two-pass: %v", workers, tc.name, err)
			}
			if !reflect.DeepEqual(got, twoPass) {
				t.Fatalf("workers=%d %s: single-pass report differs from two-pass\n got %+v\nwant %+v", workers, tc.name, got, twoPass)
			}
		}

		// A time-windowed range keeps the two-pass path (the kept samples'
		// exact time range is not knowable from block bounds) and still
		// matches the forced two-pass report.
		lo, hi := timeWindow(td)
		fused, restoreHook := countSinglePass()
		got, err := tl.AnalyzeTraceFileRange(indexed, oPath, lo, hi)
		restoreHook()
		if err != nil {
			t.Fatalf("workers=%d range: %v", workers, err)
		}
		if *fused != 0 {
			t.Fatalf("workers=%d range: single pass engaged on a time-windowed analysis", workers)
		}
		restore := drbw.SetForceTwoPass(true)
		twoPass, err := tl.AnalyzeTraceFileRange(indexed, oPath, lo, hi)
		restore()
		if err != nil {
			t.Fatalf("workers=%d range two-pass: %v", workers, err)
		}
		if !reflect.DeepEqual(got, twoPass) {
			t.Fatalf("workers=%d range: report differs from two-pass", workers)
		}
	}
}

// timeWindow picks a [lo, hi] window spanning the middle half of td's
// samples.
func timeWindow(td *drbw.TraceData) (lo, hi float64) {
	minT, maxT := td.Samples[0].Time, td.Samples[0].Time
	for _, s := range td.Samples {
		if s.Time < minT {
			minT = s.Time
		}
		if s.Time > maxT {
			maxT = s.Time
		}
	}
	span := maxT - minT
	return minT + span/4, maxT - span/4
}

// readSamplesFile loads a recording's samples and weight.
func readSamplesFile(t *testing.T, path string) ([]pebs.Sample, float64, error) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	return profiledata.ReadSamples(f)
}

// TestSinglePassShardsMatchWhole: the fused shard path engages when every
// shard carries a checksummed index, and its merged report is bit-identical
// to the whole-trace slice analysis and to the two-pass shard path.
func TestSinglePassShardsMatchWhole(t *testing.T) {
	tl := sharedTool(t)
	_, sPath, objPath := recordTo(t, tl, 74, drbw.FormatBinary)
	td, err := drbw.LoadTrace(sPath, objPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tl.AnalyzeTrace(td)
	if err != nil {
		t.Fatal(err)
	}
	shards, oPath := splitTrace(t, td, 3)

	defer core.SetPoolWorkers(0)
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		core.SetPoolWorkers(workers)
		fused, restoreHook := countSinglePass()
		got, err := tl.AnalyzeTraceShards(shards, oPath)
		restoreHook()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if *fused == 0 {
			t.Fatalf("workers=%d: single pass did not engage on indexed shards", workers)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: sharded report differs from the slice path\n got %+v\nwant %+v", workers, got, want)
		}
		restore := drbw.SetForceTwoPass(true)
		twoPass, err := tl.AnalyzeTraceShards(shards, oPath)
		restore()
		if err != nil {
			t.Fatalf("workers=%d two-pass: %v", workers, err)
		}
		if !reflect.DeepEqual(got, twoPass) {
			t.Fatalf("workers=%d: single-pass shard report differs from two-pass", workers)
		}
	}
}

// TestSinglePassRecordingMutatedDuringAnalysis proves the fused pass's
// consistency check: with no second read to compare raw counts against,
// corruption that lands after the index was read must be caught by the
// per-block checksums.
func TestSinglePassRecordingMutatedDuringAnalysis(t *testing.T) {
	tl := sharedTool(t)
	_, sPath, oPath := recordTo(t, tl, 75, drbw.FormatBinary)

	data, err := os.ReadFile(sPath)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := profiledata.ReadBlockIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in the middle of the first block — well past
	// its two header uvarints, well before the next block — once the
	// analysis has already read and validated the footer.
	end := idx.DataEnd
	if len(idx.Entries) > 1 {
		end = idx.Entries[1].Offset
	}
	mid := (idx.Entries[0].Offset + end) / 2
	restore := drbw.SetTestHookSinglePassOpened(func() {
		mutated := append([]byte(nil), data...)
		mutated[mid] ^= 0x40
		if err := os.WriteFile(sPath, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	_, err = tl.AnalyzeTraceFile(sPath, oPath)
	restore()
	if err == nil || !strings.Contains(err.Error(), "index checksum") {
		t.Fatalf("error = %v, want per-block checksum failure", err)
	}

	// Restored, the recording analyzes cleanly again.
	if err := os.WriteFile(sPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.AnalyzeTraceFile(sPath, oPath); err != nil {
		t.Fatal(err)
	}
}

// forgeFooterTimes rewrites path's index footer with modified entry times.
// The entry times live in the footer, which no block checksum covers — so a
// forged footer passes every checksum and must be caught by the single-pass
// index-honesty check instead.
func forgeFooterTimes(t *testing.T, path string, mutate func(entries []profiledata.IndexEntry)) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := profiledata.ReadBlockIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	mutate(idx.Entries)
	out := filepath.Join(t.TempDir(), "forged.bin")
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	// Body plus its zero-count terminator at DataEnd, then the new footer.
	if _, err := f.Write(data[:idx.DataEnd+1]); err != nil {
		t.Fatal(err)
	}
	if err := profiledata.WriteBlockIndex(f, idx.Entries); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSinglePassRejectsLyingIndexFooter: a footer whose time claims
// disagree with the decoded samples — narrower, so real samples fall
// outside the claimed range, or wider, so the observed range never reaches
// the claim — must fail loudly, never panic or silently mis-bucket the
// timeline.
func TestSinglePassRejectsLyingIndexFooter(t *testing.T) {
	tl := sharedTool(t)
	_, sPath, oPath := recordTo(t, tl, 76, drbw.FormatBinary)

	forged := map[string]string{
		"narrower": forgeFooterTimes(t, sPath, func(entries []profiledata.IndexEntry) {
			// Claim the recording starts later than it does: the samples at
			// the true global minimum land outside the claimed range.
			g := entries[0].MinTime
			for _, e := range entries {
				if e.MinTime < g {
					g = e.MinTime
				}
			}
			for i := range entries {
				if entries[i].MinTime == g {
					entries[i].MinTime = g + 1
				}
			}
		}),
		"wider": forgeFooterTimes(t, sPath, func(entries []profiledata.IndexEntry) {
			// Claim more trailing span than any sample occupies: the
			// observed range never reaches the claim.
			entries[len(entries)-1].MaxTime += 1e6
		}),
	}
	defer core.SetPoolWorkers(0)
	for _, workers := range []int{1, 2} {
		core.SetPoolWorkers(workers)
		for name, path := range forged {
			fused, restoreHook := countSinglePass()
			_, err := tl.AnalyzeTraceFile(path, oPath)
			restoreHook()
			if *fused == 0 {
				t.Fatalf("workers=%d %s: single pass did not engage on the forged recording", workers, name)
			}
			if err == nil || !strings.Contains(err.Error(), "index disagrees with recording") {
				t.Fatalf("workers=%d %s: error = %v, want index-disagrees", workers, name, err)
			}
		}
	}
}
