module drbw

go 1.22
