package drbw

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"drbw/internal/alloc"
	"drbw/internal/core"
	"drbw/internal/diagnose"
	"drbw/internal/features"
	"drbw/internal/obs"
	"drbw/internal/pebs"
	"drbw/internal/profiledata"
	"drbw/internal/topology"
)

// TraceFormat selects the on-disk samples encoding.
type TraceFormat string

// Supported trace formats. Reading always autodetects; the format only
// matters when writing.
const (
	// FormatCSV is the line-oriented text format (v2 with the weight meta
	// row) — greppable, produced and consumed by shell tooling.
	FormatCSV TraceFormat = "csv"
	// FormatBinary is the binary columnar format (v3) — several times
	// smaller and faster to decode, the right choice for large traces.
	// Written with the block index footer, so AnalyzeTraceFile can fan the
	// blocks across the worker pool.
	FormatBinary TraceFormat = "binary"
)

// SaveAs is Save with an explicit samples format. The objects table is
// always CSV (it is tiny and hand-editable either way).
func (td *TraceData) SaveAs(samplesPath, objectsPath string, format TraceFormat) error {
	samples := make([]pebs.Sample, 0, len(td.Samples))
	for _, r := range td.Samples {
		s, err := fromRecord(r)
		if err != nil {
			return err
		}
		samples = append(samples, s)
	}
	weight := td.Weight
	if weight <= 0 {
		weight = 1
	}
	var writeSamples func(io.Writer) error
	switch format {
	case FormatCSV:
		writeSamples = func(w io.Writer) error {
			return profiledata.WriteSamples(w, samples, weight)
		}
	case FormatBinary:
		writeSamples = func(w io.Writer) error {
			return profiledata.WriteSamplesBinary(w, samples, weight, profiledata.BinaryOptions{Index: true})
		}
	default:
		return fmt.Errorf("drbw: unknown trace format %q (want %q or %q)", format, FormatCSV, FormatBinary)
	}
	if err := writeFile(samplesPath, writeSamples); err != nil {
		return err
	}
	return writeFile(objectsPath, func(w io.Writer) error {
		return profiledata.WriteObjects(w, td.internalObjects())
	})
}

// TracePaths names one recording's two files.
type TracePaths struct {
	Samples string
	Objects string
}

// traceScratch is one worker's reusable analysis state: decode buffers for
// the block reader plus the feature accumulator. Reused across files, it
// keeps a batch's allocation count proportional to the worker count, not
// the trace count or length.
type traceScratch struct {
	bufs profiledata.Buffers
	acc  *features.Accumulator
}

// testHookBetweenPasses, when non-nil, runs between the serial path's two
// streaming passes. Tests use it to mutate the recording mid-analysis and
// prove the pass-two consistency check fires.
var testHookBetweenPasses func()

// timeRange restricts an analysis to samples with Time in [lo, hi]
// (inclusive). The zero value keeps everything.
type timeRange struct {
	lo, hi  float64
	limited bool
}

func fullRange() timeRange { return timeRange{} }

// filter compacts block, in place, down to the samples inside the range.
func (tr timeRange) filter(block []pebs.Sample) []pebs.Sample {
	if !tr.limited {
		return block
	}
	out := block[:0]
	for i := range block {
		if s := &block[i]; s.Time >= tr.lo && s.Time <= tr.hi {
			out = append(out, *s)
		}
	}
	return out
}

// skipBlock prunes an indexed block whose whole time range misses tr.
func (tr timeRange) skipBlock(e profiledata.IndexEntry) bool {
	return tr.limited && (e.MaxTime < tr.lo || e.MinTime > tr.hi)
}

// AnalyzeTraceFile runs the AnalyzeTrace pipeline directly off a recording
// on disk. When the samples file carries a block index (binary recordings
// written by this tool), the blocks are fanned across the shared worker
// pool: each worker streams its own block range with its own decode
// scratch into mergeable accumulators, and the merged result is
// bit-identical to the serial analysis at any worker count. Unindexed
// recordings (CSV, compressed, foreign) stream serially block by block;
// either way peak memory is bounded by block size × workers, never by the
// recording length, and the report is bit-identical to LoadTrace +
// AnalyzeTrace on the same files.
func (t *Tool) AnalyzeTraceFile(samplesPath, objectsPath string) (*Report, error) {
	rep, err := t.analyzeTraceFileRange(samplesPath, objectsPath, fullRange())
	return rep, obs.FlightFailure("analyze.trace_file", err)
}

// AnalyzeTraceFileRange is AnalyzeTraceFile restricted to samples with
// Time in [lo, hi] (inclusive): the report is exactly AnalyzeTrace over
// the recording with every other sample dropped. On an indexed recording,
// blocks whose time range misses the window are never read at all.
func (t *Tool) AnalyzeTraceFileRange(samplesPath, objectsPath string, lo, hi float64) (*Report, error) {
	if !(lo <= hi) {
		return nil, fmt.Errorf("drbw: invalid time range [%v, %v]", lo, hi)
	}
	rep, err := t.analyzeTraceFileRange(samplesPath, objectsPath, timeRange{lo: lo, hi: hi, limited: true})
	return rep, obs.FlightFailure("analyze.trace_file_range", err)
}

func (t *Tool) analyzeTraceFileRange(samplesPath, objectsPath string, tr timeRange) (*Report, error) {
	if t.cache != nil {
		if key, err := t.analyzeFileKey(samplesPath, objectsPath, tr); err == nil {
			return t.cachedReport(key, func() (*Report, error) {
				return t.analyzeTraceFileRangeUncached(samplesPath, objectsPath, tr)
			})
		}
		// Fingerprinting failed — missing file, unreadable bytes. Fall
		// through uncached so the analysis itself surfaces the real error.
	}
	return t.analyzeTraceFileRangeUncached(samplesPath, objectsPath, tr)
}

func (t *Tool) analyzeTraceFileRangeUncached(samplesPath, objectsPath string, tr timeRange) (*Report, error) {
	sp := obs.BeginSpan("analyze.trace_file")
	sp.SetStr("samples", samplesPath)
	defer sp.End()
	objects, err := readObjectsFile(objectsPath)
	if err != nil {
		return nil, err
	}
	// Checksummed indexed recordings take the fused single pass: the index
	// footer supplies the time range and total upfront, so features,
	// timeline, and CF accumulate in one decode sweep. A time-limited range
	// keeps the two-pass path — the filtered samples' exact time range is
	// not knowable from block-level bounds, and the timeline geometry must
	// come from the samples actually kept.
	if !tr.limited {
		if rep, ok, err := t.analyzeSinglePassFile(samplesPath, objects, nil, sp); ok {
			return rep, err
		}
	}
	// With one worker the block fan-out buys nothing and still pays for the
	// index open, chunking and two merge steps; the serial reader is
	// measurably faster and bit-identical. A time-limited range stays on the
	// indexed path even then, for the block pruning.
	if core.PoolWorkers() == 1 && !tr.limited {
		return t.analyzeTraceFileSerial(samplesPath, objects, &traceScratch{acc: features.NewAccumulator(t.machine)}, tr)
	}
	if it, err := profiledata.OpenIndexedTrace(samplesPath); err == nil {
		defer it.Close()
		return t.analyzeIndexed(it, objects, tr, sp)
	}
	// No usable index — CSV, compressed, foreign, or a damaged footer. The
	// streaming path ignores trailing footers entirely, so it analyzes
	// everything the serial reader can; a genuinely missing or unreadable
	// file resurfaces through the streaming open below.
	return t.analyzeTraceFileSerial(samplesPath, objects, &traceScratch{acc: features.NewAccumulator(t.machine)}, tr)
}

// AnalyzeTraceFiles is AnalyzeTraceFile over a batch of recordings on the
// shared worker pool, with the AnalyzeTraces partial-result semantics:
// reports[i] is nil exactly when recording i failed, and a *BatchError
// aggregates the failures. Each recording is analyzed serially — the batch
// itself is the parallelism — with per-worker decode buffers and
// accumulators, so the batch allocates like a handful of serial analyses.
func (t *Tool) AnalyzeTraceFiles(paths []TracePaths) ([]*Report, error) {
	if len(paths) == 1 {
		// A one-recording batch has no cross-file parallelism to exploit;
		// route it through AnalyzeTraceFile so an indexed recording fans
		// its block ranges across the pool instead of streaming serially.
		// The reports are bit-identical either way.
		rep, err := t.AnalyzeTraceFile(paths[0].Samples, paths[0].Objects)
		if err != nil {
			return []*Report{nil}, &BatchError{Cases: []CaseError{{Index: 0, Err: err}}}
		}
		return []*Report{rep}, nil
	}
	reports := make([]*Report, len(paths))
	errs := make([]error, len(paths))
	scratch := make([]*traceScratch, core.PoolWorkers())
	sp := obs.BeginSpan("analyze.tracefiles")
	core.ParallelForLabeledSpans(len(paths), "analyze.tracefiles", sp, func(i, w int, cs obs.SpanHandle) {
		cs.SetStr("samples", paths[i].Samples)
		if w >= len(scratch) {
			// The pool width changed mid-call; fall back to fresh scratch.
			fresh := &traceScratch{acc: features.NewAccumulator(t.machine)}
			reports[i], errs[i] = t.analyzeTraceFileBatch(paths[i].Samples, paths[i].Objects, fresh)
			return
		}
		if scratch[w] == nil {
			scratch[w] = &traceScratch{acc: features.NewAccumulator(t.machine)}
		}
		reports[i], errs[i] = t.analyzeTraceFileBatch(paths[i].Samples, paths[i].Objects, scratch[w])
	})
	sp.End()
	var be BatchError
	for i, err := range errs {
		if err != nil {
			be.Cases = append(be.Cases, CaseError{Index: i, Err: err})
		}
	}
	if len(be.Cases) > 0 {
		obs.FlightFailure("analyze.tracefiles", &be)
		return reports, &be
	}
	return reports, nil
}

// AnalyzeTraceShards analyzes one logical recording that was captured as
// several sample files — shards — sharing a single objects table. All
// shards must carry the same collector weight. Shards are analyzed
// concurrently on the worker pool and the merged report is bit-identical
// to analyzing the concatenation of the shards in order.
func (t *Tool) AnalyzeTraceShards(samplePaths []string, objectsPath string) (*Report, error) {
	rep, err := t.analyzeTraceShards(samplePaths, objectsPath)
	return rep, obs.FlightFailure("analyze.shards", err)
}

func (t *Tool) analyzeTraceShards(samplePaths []string, objectsPath string) (*Report, error) {
	if len(samplePaths) == 0 {
		return nil, fmt.Errorf("drbw: no sample shards given")
	}
	if t.cache != nil {
		if key, err := t.shardsKey(samplePaths, objectsPath); err == nil {
			return t.cachedReport(key, func() (*Report, error) {
				return t.analyzeTraceShardsUncached(samplePaths, objectsPath)
			})
		}
	}
	return t.analyzeTraceShardsUncached(samplePaths, objectsPath)
}

func (t *Tool) analyzeTraceShardsUncached(samplePaths []string, objectsPath string) (*Report, error) {
	sp := obs.BeginSpan("analyze.shards")
	sp.SetInt("shards", int64(len(samplePaths)))
	defer sp.End()
	objects, err := readObjectsFile(objectsPath)
	if err != nil {
		return nil, err
	}
	// When every shard carries a checksummed index, the whole logical
	// recording fuses to one decode sweep per shard.
	if rep, ok, err := t.analyzeShardsSinglePass(samplePaths, objects, sp); ok {
		return rep, err
	}
	// The timeline and the merge checks need the weight before the fan-out;
	// take it from the first shard and hold every other shard to it.
	weight, err := readTraceWeight(samplePaths[0])
	if err != nil {
		return nil, err
	}
	jobs := make([]shardJob, len(samplePaths))
	for i, path := range samplePaths {
		i, path := i, path
		jobs[i] = shardJob{
			name: path,
			from: i,
			to:   i + 1,
			run: func(bufs *profiledata.Buffers, emit func([]pebs.Sample) error) error {
				f, err := os.Open(path)
				if err != nil {
					return fmt.Errorf("drbw: %w", err)
				}
				defer f.Close()
				sr, err := profiledata.NewSampleReaderBuffers(f, bufs)
				if err != nil {
					return err
				}
				if sr.Weight() != weight {
					return fmt.Errorf("drbw: shard %s has weight %v, the first shard has %v", path, sr.Weight(), weight)
				}
				return drainReader(sr, emit)
			},
		}
	}
	return t.analyzeJobs(jobs, weight, objects, fullRange(), "analyze.shards", sp)
}

// AnalyzeTraceShardDir is AnalyzeTraceShards over a directory: every
// "*.samples.*" file (sorted by name) is a shard, and the single
// "*.objects.csv" file is the shared objects table.
func (t *Tool) AnalyzeTraceShardDir(dir string) (*Report, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, obs.FlightFailure("analyze.shard_dir", fmt.Errorf("drbw: %w", err))
	}
	var shards []string
	var objects []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.Contains(name, ".samples."):
			shards = append(shards, filepath.Join(dir, name))
		case strings.HasSuffix(name, ".objects.csv"):
			objects = append(objects, filepath.Join(dir, name))
		}
	}
	if len(shards) == 0 {
		return nil, obs.FlightFailure("analyze.shard_dir", fmt.Errorf("drbw: no *.samples.* shards in %s", dir))
	}
	if len(objects) != 1 {
		return nil, obs.FlightFailure("analyze.shard_dir", fmt.Errorf("drbw: %s holds %d *.objects.csv files, want exactly one", dir, len(objects)))
	}
	sort.Strings(shards)
	return t.AnalyzeTraceShards(shards, objects[0])
}

// shardJob streams one independently decodable portion of a recording — a
// block range of an indexed trace, or one whole shard file — through run,
// using the worker's decode scratch. A job must yield the same samples
// every time it runs (both passes replay it). name and [from, to) identify
// the portion for trace spans and error messages: the shard path and shard
// index for shard jobs, or the block range for indexed block-range jobs.
type shardJob struct {
	name     string
	from, to int
	run      func(bufs *profiledata.Buffers, emit func([]pebs.Sample) error) error
}

// analyzeIndexed fans the blocks of one indexed recording across the
// worker pool as contiguous block-range jobs.
func (t *Tool) analyzeIndexed(it *profiledata.IndexedTrace, objects []alloc.Object, tr timeRange, sp obs.SpanHandle) (*Report, error) {
	// Keep only blocks whose time range intersects tr, grouped into maximal
	// contiguous runs (block time ranges need not be sorted, so pruning can
	// split the keep-set).
	type run struct{ from, to int }
	var runs []run
	kept := 0
	for b := 0; b < it.Blocks(); b++ {
		if tr.skipBlock(it.Entry(b)) {
			continue
		}
		kept++
		if n := len(runs); n > 0 && runs[n-1].to == b {
			runs[n-1].to = b + 1
		} else {
			runs = append(runs, run{from: b, to: b + 1})
		}
	}
	if kept == 0 {
		return nil, errNoSamples(tr, it.TotalSamples())
	}
	// Split the runs into ~4 chunks per worker so stragglers rebalance,
	// without degenerating into per-block jobs on small traces.
	blocksPerChunk := kept / (core.PoolWorkers() * 4)
	if blocksPerChunk < 1 {
		blocksPerChunk = 1
	}
	var jobs []shardJob
	for _, r := range runs {
		for from := r.from; from < r.to; from += blocksPerChunk {
			to := from + blocksPerChunk
			if to > r.to {
				to = r.to
			}
			from, to := from, to
			jobs = append(jobs, shardJob{
				name: "blocks",
				from: from,
				to:   to,
				run: func(bufs *profiledata.Buffers, emit func([]pebs.Sample) error) error {
					sr, err := it.RangeReader(from, to, bufs)
					if err != nil {
						return err
					}
					return drainReader(sr, emit)
				},
			})
		}
	}
	return t.analyzeJobs(jobs, it.Weight(), objects, tr, "analyze.blocks", sp)
}

// drainReader feeds every remaining block of sr to emit.
func drainReader(sr *profiledata.SampleReader, emit func([]pebs.Sample) error) error {
	for {
		block, err := sr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := emit(block); err != nil {
			return err
		}
	}
}

// shardState is one worker's mergeable accumulator set. The two-pass path
// fills bufs/acc/tl/raw in pass one and reuses bufs for tlf/cf/raw in pass
// two; the fused single-pass path fills bufs/acc/tlf/dcf and the
// index-honesty fields in its only pass.
type shardState struct {
	bufs profiledata.Buffers
	acc  *features.Accumulator
	tl   *diagnose.TimelineAccumulator
	tlf  *diagnose.TimelineAccumulator
	cf   *diagnose.CFAccumulator
	dcf  *diagnose.DenseCF // single-pass: all-channels CF attribution
	raw  int64             // samples streamed, before time filtering
	kept int64             // samples analyzed, after time filtering
	oob  int64             // single-pass: samples outside the index's claimed time range
	// obsMin and obsMax track the observed time range of in-range samples,
	// cross-checked against the index's claim after the merge.
	obsMin, obsMax float64
}

// shardStates hands out per-worker state under a lock, growing the slice
// if the pool width changes mid-call — a dropped worker state would
// silently lose that worker's samples from the merge.
type shardStates struct {
	mu     sync.Mutex
	states []*shardState
	make   func() *shardState
}

func (ss *shardStates) get(w int) *shardState {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for len(ss.states) <= w {
		ss.states = append(ss.states, nil)
	}
	if ss.states[w] == nil {
		ss.states[w] = ss.make()
	}
	return ss.states[w]
}

// annotate attaches a job's portion identity to its trace span.
func (j *shardJob) annotate(cs obs.SpanHandle, pass int64) {
	cs.SetStr("portion", j.name)
	cs.SetInt("from", int64(j.from))
	cs.SetInt("to", int64(j.to))
	cs.SetInt("pass", pass)
}

// analyzeJobs is the shared two-pass shard runner: every job is streamed
// once to build features and the timeline range, and once more to bucket
// the timeline and attribute CF. Per-worker accumulators merge in worker
// order; counts are integers and sums are exact, so the merged report is
// bit-identical to the serial pipeline over the jobs' concatenated samples
// regardless of worker count or scheduling. Errors surface from the
// lowest-indexed failing job so reruns are deterministic. When a tracer is
// installed every job becomes a child span of parent carrying the portion
// name, [from, to) range, pass number, and worker id.
func (t *Tool) analyzeJobs(jobs []shardJob, weight float64, objects []alloc.Object, tr timeRange, label string, parent obs.SpanHandle) (*Report, error) {
	// Pass one: validate, extract features, find the time range.
	ss := &shardStates{make: func() *shardState {
		return &shardState{
			acc: features.NewAccumulator(t.machine),
			tl:  diagnose.NewTimelineAccumulator(timelineBuckets, weight),
		}
	}}
	rawPass1 := make([]int64, len(jobs))
	errs := make([]error, len(jobs))
	core.ParallelForLabeledSpans(len(jobs), label, parent, func(i, w int, cs obs.SpanHandle) {
		jobs[i].annotate(cs, 1)
		st := ss.get(w)
		start := st.raw
		errs[i] = jobs[i].run(&st.bufs, func(block []pebs.Sample) error {
			st.raw += int64(len(block))
			block = tr.filter(block)
			st.kept += int64(len(block))
			for j := range block {
				s := &block[j]
				if s.SrcNode < 0 || int(s.SrcNode) >= t.machine.Nodes() ||
					s.HomeNode < 0 || int(s.HomeNode) >= t.machine.Nodes() {
					return fmt.Errorf("drbw: sample references node outside the %d-node machine", t.machine.Nodes())
				}
			}
			st.acc.Add(block)
			st.tl.Observe(block)
			return nil
		})
		rawPass1[i] = st.raw - start
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}

	acc := features.NewAccumulator(t.machine)
	tl := diagnose.NewTimelineAccumulator(timelineBuckets, weight)
	var total int64
	for _, st := range ss.states {
		if st == nil {
			continue
		}
		if err := acc.Merge(st.acc); err != nil {
			return nil, err
		}
		if err := tl.Merge(st.tl); err != nil {
			return nil, err
		}
		total += st.kept
	}
	if total == 0 {
		raw := 0
		for i := range rawPass1 {
			raw += int(rawPass1[i])
		}
		return nil, errNoSamples(tr, raw)
	}

	rep := &Report{Samples: total}
	contended := t.classify(acc, weight, rep)

	// Pass two: bucket the timeline and, when contended, attribute CF
	// through the recorded allocation table. Fork clones share tl's frozen
	// geometry; each worker counts alone and merges back exactly.
	var table *profiledata.Table
	if rep.Detected {
		var err error
		if table, err = profiledata.NewTable(objects); err != nil {
			return nil, err
		}
	}
	ss2 := &shardStates{make: func() *shardState {
		st := &shardState{tlf: tl.Fork()}
		if table != nil {
			st.cf = diagnose.NewCFAccumulator(table, contended, weight)
		}
		return st
	}}
	// Reuse pass-one decode buffers where the worker indices line up.
	ss2.states = make([]*shardState, len(ss.states))
	for w, st := range ss.states {
		if st == nil {
			continue
		}
		s2 := ss2.make()
		s2.bufs = st.bufs
		ss2.states[w] = s2
	}
	rawPass2 := make([]int64, len(jobs))
	core.ParallelForLabeledSpans(len(jobs), label, parent, func(i, w int, cs obs.SpanHandle) {
		jobs[i].annotate(cs, 2)
		st := ss2.get(w)
		start := st.raw
		errs[i] = jobs[i].run(&st.bufs, func(block []pebs.Sample) error {
			st.raw += int64(len(block))
			block = tr.filter(block)
			st.tlf.Add(block)
			if st.cf != nil {
				st.cf.Add(block)
			}
			return nil
		})
		rawPass2[i] = st.raw - start
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	for i := range jobs {
		if rawPass1[i] != rawPass2[i] {
			return nil, fmt.Errorf("drbw: recording changed during analysis (portion %d held %d samples, then %d)", i, rawPass1[i], rawPass2[i])
		}
	}
	var cf *diagnose.CFAccumulator
	if table != nil {
		cf = diagnose.NewCFAccumulator(table, contended, weight)
	}
	for _, st := range ss2.states {
		if st == nil {
			continue
		}
		if err := tl.Merge(st.tlf); err != nil {
			return nil, err
		}
		if cf != nil {
			if err := cf.Merge(st.cf); err != nil {
				return nil, err
			}
		}
	}
	return t.finishReport(rep, tl, cf)
}

// analyzeTraceFileBatch is the batch path's per-recording unit: the serial
// streaming analysis, through the cache when one is attached. The cache's
// singleflight also dedups a recording listed more than once in a batch —
// the duplicates decode once and every slot gets the report.
func (t *Tool) analyzeTraceFileBatch(samplesPath, objectsPath string, sc *traceScratch) (*Report, error) {
	if t.cache != nil {
		if key, err := t.analyzeFileKey(samplesPath, objectsPath, fullRange()); err == nil {
			return t.cachedReport(key, func() (*Report, error) {
				return t.analyzeTraceFile(samplesPath, objectsPath, sc)
			})
		}
	}
	return t.analyzeTraceFile(samplesPath, objectsPath, sc)
}

// analyzeTraceFile is the serial streaming analysis used by the batch path
// (which parallelizes across recordings, not within them).
func (t *Tool) analyzeTraceFile(samplesPath, objectsPath string, sc *traceScratch) (*Report, error) {
	objects, err := readObjectsFile(objectsPath)
	if err != nil {
		return nil, err
	}
	// A checksummed indexed recording fuses to one decode sweep even here;
	// passing sc keeps the sweep serial (the batch is the parallelism) and
	// reuses this worker's scratch.
	if rep, ok, err := t.analyzeSinglePassFile(samplesPath, objects, sc, obs.SpanHandle{}); ok {
		return rep, err
	}
	return t.analyzeTraceFileSerial(samplesPath, objects, sc, fullRange())
}

func (t *Tool) analyzeTraceFileSerial(samplesPath string, objects []alloc.Object, sc *traceScratch, tr timeRange) (*Report, error) {
	// Pass one: validate, extract features, find the time range.
	sc.acc.Reset()
	var (
		weight float64
		tl     *diagnose.TimelineAccumulator
		raw1   int64
		kept   int64
	)
	err := t.streamSamples(samplesPath, sc, func(w float64) {
		weight = w
		tl = diagnose.NewTimelineAccumulator(timelineBuckets, w)
	}, func(block []pebs.Sample) error {
		raw1 += int64(len(block))
		block = tr.filter(block)
		kept += int64(len(block))
		for i := range block {
			s := &block[i]
			if s.SrcNode < 0 || int(s.SrcNode) >= t.machine.Nodes() ||
				s.HomeNode < 0 || int(s.HomeNode) >= t.machine.Nodes() {
				return fmt.Errorf("drbw: sample references node outside the %d-node machine", t.machine.Nodes())
			}
		}
		sc.acc.Add(block)
		tl.Observe(block)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if kept == 0 {
		return nil, errNoSamples(tr, int(raw1))
	}

	rep := &Report{Samples: kept}
	contended := t.classify(sc.acc, weight, rep)

	// Pass two: bucket the timeline and, when contended, attribute CF
	// through the recorded allocation table. The recording is re-read from
	// disk, so before trusting it the pass re-checks what pass one
	// established: same weight, same sample count. A recording that was
	// swapped or appended to between the passes would otherwise be
	// classified from one set of samples and diagnosed from another.
	if testHookBetweenPasses != nil {
		testHookBetweenPasses()
	}
	var cf *diagnose.CFAccumulator
	if rep.Detected {
		table, err := profiledata.NewTable(objects)
		if err != nil {
			return nil, err
		}
		cf = diagnose.NewCFAccumulator(table, contended, weight)
	}
	var raw2 int64
	var weight2 float64
	err = t.streamSamples(samplesPath, sc, func(w float64) {
		weight2 = w
	}, func(block []pebs.Sample) error {
		raw2 += int64(len(block))
		block = tr.filter(block)
		tl.Add(block)
		if cf != nil {
			cf.Add(block)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if weight2 != weight || raw2 != raw1 {
		return nil, fmt.Errorf("drbw: recording changed during analysis (weight %v then %v, %d then %d samples)", weight, weight2, raw1, raw2)
	}
	return t.finishReport(rep, tl, cf)
}

// classify runs the trained tree over the accumulated per-channel vectors,
// marks the report, and returns the contended channels in stable order.
func (t *Tool) classify(acc *features.Accumulator, weight float64, rep *Report) []topology.Channel {
	var contended []topology.Channel
	for ch, vec := range acc.Vectors(weight, t.detector.MinSamples) {
		v := vec
		label := features.Label(t.tree.Predict(v[:]))
		core.CountPrediction(label)
		if label == features.RMC {
			rep.Detected = true
			contended = append(contended, ch)
		}
	}
	sortChannelsStable(contended)
	core.CountDetectCase(rep.Detected)
	for _, ch := range contended {
		rep.Channels = append(rep.Channels, ch.String())
	}
	return contended
}

// finishReport attaches the timeline and, when a CF accumulator ran, the
// object attribution.
func (t *Tool) finishReport(rep *Report, tl *diagnose.TimelineAccumulator, cf *diagnose.CFAccumulator) (*Report, error) {
	rep.attachTimeline(tl.Buckets())
	if cf == nil {
		return rep, nil
	}
	diag := cf.Report()
	for _, o := range diag.Overall {
		rep.Objects = append(rep.Objects, ObjectCF{
			Name: o.Object.Name, Site: o.Object.Site.String(),
			CF: o.CF, Samples: o.Samples,
		})
	}
	rep.UnattributedCF = diag.UnattributedCF
	return rep, nil
}

// errNoSamples distinguishes an empty recording from a time window that
// excluded everything.
func errNoSamples(tr timeRange, rawSamples int) error {
	if tr.limited && rawSamples > 0 {
		return fmt.Errorf("drbw: no samples in time range [%v, %v]", tr.lo, tr.hi)
	}
	return fmt.Errorf("drbw: recording has no samples")
}

// firstError returns the error of the lowest-indexed failing job.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// readObjectsFile loads a recorded objects table.
func readObjectsFile(path string) ([]alloc.Object, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("drbw: %w", err)
	}
	defer f.Close()
	return profiledata.ReadObjects(f)
}

// readTraceWeight opens a recording just long enough to read its weight.
func readTraceWeight(path string) (float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("drbw: %w", err)
	}
	defer f.Close()
	sr, err := profiledata.NewSampleReader(f)
	if err != nil {
		return 0, err
	}
	return sr.Weight(), nil
}

// streamSamples opens the samples file and feeds every decoded block to
// fn, reusing the scratch buffers. onWeight, when non-nil, receives the
// recording weight before the first block.
func (t *Tool) streamSamples(path string, sc *traceScratch, onWeight func(float64), fn func([]pebs.Sample) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("drbw: %w", err)
	}
	defer f.Close()
	sr, err := profiledata.NewSampleReaderBuffers(f, &sc.bufs)
	if err != nil {
		return err
	}
	if onWeight != nil {
		onWeight(sr.Weight())
	}
	for {
		block, err := sr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(block); err != nil {
			return err
		}
	}
}
