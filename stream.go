package drbw

import (
	"fmt"
	"io"
	"os"

	"drbw/internal/core"
	"drbw/internal/diagnose"
	"drbw/internal/features"
	"drbw/internal/pebs"
	"drbw/internal/profiledata"
	"drbw/internal/topology"
)

// TraceFormat selects the on-disk samples encoding.
type TraceFormat string

// Supported trace formats. Reading always autodetects; the format only
// matters when writing.
const (
	// FormatCSV is the line-oriented text format (v2 with the weight meta
	// row) — greppable, produced and consumed by shell tooling.
	FormatCSV TraceFormat = "csv"
	// FormatBinary is the binary columnar format (v3) — several times
	// smaller and faster to decode, the right choice for large traces.
	FormatBinary TraceFormat = "binary"
)

// SaveAs is Save with an explicit samples format. The objects table is
// always CSV (it is tiny and hand-editable either way).
func (td *TraceData) SaveAs(samplesPath, objectsPath string, format TraceFormat) error {
	samples := make([]pebs.Sample, 0, len(td.Samples))
	for _, r := range td.Samples {
		s, err := fromRecord(r)
		if err != nil {
			return err
		}
		samples = append(samples, s)
	}
	weight := td.Weight
	if weight <= 0 {
		weight = 1
	}
	var writeSamples func(io.Writer) error
	switch format {
	case FormatCSV:
		writeSamples = func(w io.Writer) error {
			return profiledata.WriteSamples(w, samples, weight)
		}
	case FormatBinary:
		writeSamples = func(w io.Writer) error {
			return profiledata.WriteSamplesBinary(w, samples, weight, profiledata.BinaryOptions{})
		}
	default:
		return fmt.Errorf("drbw: unknown trace format %q (want %q or %q)", format, FormatCSV, FormatBinary)
	}
	if err := writeFile(samplesPath, writeSamples); err != nil {
		return err
	}
	return writeFile(objectsPath, func(w io.Writer) error {
		return profiledata.WriteObjects(w, td.internalObjects())
	})
}

// TracePaths names one recording's two files.
type TracePaths struct {
	Samples string
	Objects string
}

// traceScratch is one worker's reusable analysis state: decode buffers for
// the block reader plus the feature accumulator. Reused across files, it
// keeps a batch's allocation count proportional to the worker count, not
// the trace count or length.
type traceScratch struct {
	bufs profiledata.Buffers
	acc  *features.Accumulator
}

// AnalyzeTraceFile runs the AnalyzeTrace pipeline directly off a recording
// on disk, streaming the samples file block by block instead of
// materializing the trace: peak memory is bounded by the decode block
// size regardless of recording length. Both formats are autodetected. The
// report is bit-identical to LoadTrace + AnalyzeTrace on the same files.
func (t *Tool) AnalyzeTraceFile(samplesPath, objectsPath string) (*Report, error) {
	return t.analyzeTraceFile(samplesPath, objectsPath, &traceScratch{acc: features.NewAccumulator(t.machine)})
}

// AnalyzeTraceFiles is AnalyzeTraceFile over a batch of recordings on the
// shared worker pool, with the AnalyzeTraces partial-result semantics:
// reports[i] is nil exactly when recording i failed, and a *BatchError
// aggregates the failures. Decode buffers and accumulators are per-worker,
// so the batch allocates like a handful of serial analyses.
func (t *Tool) AnalyzeTraceFiles(paths []TracePaths) ([]*Report, error) {
	reports := make([]*Report, len(paths))
	errs := make([]error, len(paths))
	scratch := make([]*traceScratch, core.PoolWorkers())
	core.ParallelForLabeledWorker(len(paths), "analyze.tracefiles", func(i, w int) {
		if w >= len(scratch) {
			// The pool width changed mid-call; fall back to fresh scratch.
			reports[i], errs[i] = t.AnalyzeTraceFile(paths[i].Samples, paths[i].Objects)
			return
		}
		if scratch[w] == nil {
			scratch[w] = &traceScratch{acc: features.NewAccumulator(t.machine)}
		}
		reports[i], errs[i] = t.analyzeTraceFile(paths[i].Samples, paths[i].Objects, scratch[w])
	})
	var be BatchError
	for i, err := range errs {
		if err != nil {
			be.Cases = append(be.Cases, CaseError{Index: i, Err: err})
		}
	}
	if len(be.Cases) > 0 {
		return reports, &be
	}
	return reports, nil
}

func (t *Tool) analyzeTraceFile(samplesPath, objectsPath string, sc *traceScratch) (*Report, error) {
	of, err := os.Open(objectsPath)
	if err != nil {
		return nil, fmt.Errorf("drbw: %w", err)
	}
	objects, err := profiledata.ReadObjects(of)
	of.Close()
	if err != nil {
		return nil, err
	}

	// Pass one: validate, extract features, find the time range.
	sc.acc.Reset()
	var (
		weight float64
		tl     *diagnose.TimelineAccumulator
		total  int
	)
	err = t.streamSamples(samplesPath, sc, func(w float64) {
		weight = w
		tl = diagnose.NewTimelineAccumulator(timelineBuckets, w)
	}, func(block []pebs.Sample) error {
		for i := range block {
			s := &block[i]
			if s.SrcNode < 0 || int(s.SrcNode) >= t.machine.Nodes() ||
				s.HomeNode < 0 || int(s.HomeNode) >= t.machine.Nodes() {
				return fmt.Errorf("drbw: sample references node outside the %d-node machine", t.machine.Nodes())
			}
		}
		sc.acc.Add(block)
		tl.Observe(block)
		total += len(block)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if total == 0 {
		return nil, fmt.Errorf("drbw: recording has no samples")
	}

	rep := &Report{}
	var contended []topology.Channel
	for ch, vec := range sc.acc.Vectors(weight, t.detector.MinSamples) {
		v := vec
		label := features.Label(t.tree.Predict(v[:]))
		core.CountPrediction(label)
		if label == features.RMC {
			rep.Detected = true
			contended = append(contended, ch)
		}
	}
	sortChannelsStable(contended)
	core.CountDetectCase(rep.Detected)
	for _, ch := range contended {
		rep.Channels = append(rep.Channels, ch.String())
	}

	// Pass two: bucket the timeline and, when contended, attribute CF
	// through the recorded allocation table.
	var cf *diagnose.CFAccumulator
	if rep.Detected {
		table, err := profiledata.NewTable(objects)
		if err != nil {
			return nil, err
		}
		cf = diagnose.NewCFAccumulator(table, contended, weight)
	}
	err = t.streamSamples(samplesPath, sc, nil, func(block []pebs.Sample) error {
		tl.Add(block)
		if cf != nil {
			cf.Add(block)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.attachTimeline(tl.Buckets())
	if !rep.Detected {
		return rep, nil
	}
	diag := cf.Report()
	for _, o := range diag.Overall {
		rep.Objects = append(rep.Objects, ObjectCF{
			Name: o.Object.Name, Site: o.Object.Site.String(),
			CF: o.CF, Samples: o.Samples,
		})
	}
	rep.UnattributedCF = diag.UnattributedCF
	return rep, nil
}

// streamSamples opens the samples file and feeds every decoded block to
// fn, reusing the scratch buffers. onWeight, when non-nil, receives the
// recording weight before the first block.
func (t *Tool) streamSamples(path string, sc *traceScratch, onWeight func(float64), fn func([]pebs.Sample) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("drbw: %w", err)
	}
	defer f.Close()
	sr, err := profiledata.NewSampleReaderBuffers(f, &sc.bufs)
	if err != nil {
		return err
	}
	if onWeight != nil {
		onWeight(sr.Weight())
	}
	for {
		block, err := sr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(block); err != nil {
			return err
		}
	}
}
