package drbw

import (
	"fmt"
	"strings"

	"drbw/internal/core"
)

// CaseError records one failed case of a batch run.
type CaseError struct {
	Index int // position in the submitted case slice
	Case  Case
	Err   error
}

// Error describes the failed case.
func (e CaseError) Error() string {
	if e.Case == (Case{}) {
		return fmt.Sprintf("case %d: %v", e.Index, e.Err)
	}
	return fmt.Sprintf("case %d (T%d-N%d %q): %v", e.Index, e.Case.Threads, e.Case.Nodes, e.Case.Input, e.Err)
}

// Unwrap exposes the underlying cause for errors.Is/As.
func (e CaseError) Unwrap() error { return e.Err }

// BatchError aggregates the failed cases of a batch run. When a batch
// method returns a *BatchError, the report slice still carries every
// successful case (failed indices are nil): partial results survive
// individual failures.
type BatchError struct {
	Cases []CaseError
}

// Error summarizes every failed case.
func (e *BatchError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "drbw: %d of the batch's cases failed:", len(e.Cases))
	for _, c := range e.Cases {
		b.WriteString("\n  ")
		b.WriteString(c.Error())
	}
	return b.String()
}

// Unwrap exposes the per-case errors for errors.Is/As.
func (e *BatchError) Unwrap() []error {
	out := make([]error, len(e.Cases))
	for i, c := range e.Cases {
		out[i] = c
	}
	return out
}

// AnalyzeAll runs Analyze over every case on a bounded GOMAXPROCS worker
// pool. Per-case seeding is deterministic (each simulation's randomness
// derives only from its own Case.Seed), so the reports are byte-identical
// to serial Analyze calls in case order. On per-case failure the other
// cases' reports are still returned, with a *BatchError aggregating the
// failures; reports[i] is nil exactly when case i failed.
func (t *Tool) AnalyzeAll(bench string, cases []Case) ([]*Report, error) {
	return t.batch(bench, cases, false)
}

// EvaluateAll is AnalyzeAll with the interleave ground-truth probe per
// case (the batch form of Evaluate).
func (t *Tool) EvaluateAll(bench string, cases []Case) ([]*Report, error) {
	return t.batch(bench, cases, true)
}

func (t *Tool) batch(bench string, cases []Case, evaluate bool) ([]*Report, error) {
	b, err := t.builder(bench)
	if err != nil {
		return nil, err
	}
	jobs := make([]core.BatchJob, len(cases))
	for i, c := range cases {
		jobs[i] = core.BatchJob{Builder: b, Cfg: c.config()}
	}
	var results []core.BatchResult
	if evaluate {
		results = t.detector.EvaluateAll(t.machine, jobs)
	} else {
		results = t.detector.DetectAll(t.machine, jobs)
	}
	reports := make([]*Report, len(cases))
	var be BatchError
	for i, r := range results {
		if r.Err != nil {
			be.Cases = append(be.Cases, CaseError{Index: i, Case: cases[i], Err: r.Err})
			continue
		}
		reports[i] = reportFromDetection(r.Detection)
	}
	if len(be.Cases) > 0 {
		return reports, &be
	}
	return reports, nil
}

// AnalyzeTraces runs AnalyzeTrace over every recording on a bounded
// GOMAXPROCS worker pool — the offline counterpart of AnalyzeAll, with the
// same partial-result semantics: reports[i] is nil exactly when recording
// i failed, and a *BatchError aggregates the failures.
func (t *Tool) AnalyzeTraces(tds []*TraceData) ([]*Report, error) {
	reports := make([]*Report, len(tds))
	errs := make([]error, len(tds))
	core.ParallelForLabeled(len(tds), "analyze.traces", func(i int) {
		reports[i], errs[i] = t.AnalyzeTrace(tds[i])
	})
	var be BatchError
	for i, err := range errs {
		if err != nil {
			be.Cases = append(be.Cases, CaseError{Index: i, Err: err})
		}
	}
	if len(be.Cases) > 0 {
		return reports, &be
	}
	return reports, nil
}
