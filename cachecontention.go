package drbw

import (
	"fmt"
	"strings"

	"drbw/internal/llc"
)

// CacheReport is the outcome of a shared-cache contention analysis.
type CacheReport struct {
	// Detected reports thrashing on at least one socket.
	Detected bool
	// Sockets lists the thrashing sockets ("N0").
	Sockets []string
	// Objects ranks data objects by their Contribution Fraction to the
	// misses on the thrashing sockets.
	Objects []ObjectCF
}

// String renders the report.
func (r *CacheReport) String() string {
	var b strings.Builder
	if !r.Detected {
		b.WriteString("no shared-cache contention detected\n")
		return b.String()
	}
	fmt.Fprintf(&b, "SHARED-CACHE CONTENTION on socket(s) %s\n", strings.Join(r.Sockets, ", "))
	for _, o := range r.Objects {
		fmt.Fprintf(&b, "  CF %5.1f%%  %-20s %s\n", 100*o.CF, o.Name, o.Site)
	}
	return b.String()
}

// TopObjects returns the n highest-CF object names.
func (r *CacheReport) TopObjects(n int) []string {
	var out []string
	for i := 0; i < n && i < len(r.Objects); i++ {
		out = append(out, r.Objects[i].Name)
	}
	return out
}

// CacheTool detects shared last-level-cache contention — the extension the
// paper lists as future work (Section IX). It is trained like the
// bandwidth detector, on working-set micro benchmarks whose per-socket
// footprints either fit or overflow the shared L3, and classifies each
// socket of a run from the same PEBS samples.
//
// Cache-contention analysis runs against a scaled LLC model (2 MB per
// socket) so working-set sweeps fit in the simulation window; the
// contention physics — co-running threads evicting each other under LRU —
// are unchanged.
type CacheTool struct {
	det     *llc.Detector
	machine Machine
}

// TrainCacheContention trains the shared-cache contention detector.
func TrainCacheContention(cfg Config) (*CacheTool, error) {
	m, err := cfg.Machine.build()
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	det, err := llc.Train(m, cfg.Quick, seed)
	if err != nil {
		return nil, err
	}
	return &CacheTool{det: det, machine: cfg.Machine}, nil
}

// CrossValidate reports the detector's 5-fold accuracy on its training set.
func (t *CacheTool) CrossValidate() (*Confusion, error) {
	cm, err := t.det.CrossValidate(5)
	if err != nil {
		return nil, err
	}
	return newConfusion(cm), nil
}

// Tree renders the trained cache-contention decision tree.
func (t *CacheTool) Tree() string { return t.det.Tree.String() }

// AnalyzeWorkload classifies each socket of a custom workload run and
// attributes the misses of thrashing sockets to data objects.
func (t *CacheTool) AnalyzeWorkload(w WorkloadSpec, c Case) (*CacheReport, error) {
	b, err := w.builder()
	if err != nil {
		return nil, err
	}
	m, err := t.machine.build()
	if err != nil {
		return nil, err
	}
	res, err := t.det.Analyze(m, b, c.config())
	if err != nil {
		return nil, err
	}
	rep := &CacheReport{Detected: res.Detected()}
	for _, n := range res.Contended {
		rep.Sockets = append(rep.Sockets, fmt.Sprintf("N%d", int(n)))
	}
	if res.Report != nil {
		for _, o := range res.Report.Overall {
			rep.Objects = append(rep.Objects, ObjectCF{
				Name: o.Object.Name, Site: o.Object.Site.String(),
				CF: o.CF, Samples: o.Samples,
			})
		}
	}
	return rep, nil
}
