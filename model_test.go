package drbw_test

import (
	"os"
	"path/filepath"
	"testing"

	"drbw"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	tl := sharedTool(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := tl.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := drbw.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	// The loaded tool renders the same tree and detects the same cases.
	if loaded.Tree() != tl.Tree() {
		t.Errorf("tree changed across save/load:\n%s\nvs\n%s", tl.Tree(), loaded.Tree())
	}
	c := drbw.Case{Input: "native", Threads: 32, Nodes: 4, Seed: 33}
	orig, err := tl.Analyze("Streamcluster", c)
	if err != nil {
		t.Fatal(err)
	}
	again, err := loaded.Analyze("Streamcluster", c)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Detected != again.Detected {
		t.Error("detection changed across save/load")
	}
	if len(orig.Objects) > 0 && len(again.Objects) > 0 &&
		orig.Objects[0].Name != again.Objects[0].Name {
		t.Error("diagnosis changed across save/load")
	}

	// Persisted summary survives; raw training data does not.
	if loaded.TrainingRuns() != 0 {
		t.Error("loaded tool claims training runs")
	}
	if loaded.TrainingSummary()["bandit"]["good"] == 0 {
		t.Error("training summary lost")
	}
	if _, err := loaded.CrossValidate(); err == nil {
		t.Error("cross validation without training data accepted")
	}
	if loaded.SelectedCandidates() != nil {
		t.Error("selection experiment without training data returned data")
	}
	// Optimization still works.
	cmp, err := loaded.Optimize("Streamcluster", c, drbw.Replicate, "block")
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Speedup() < 1.2 {
		t.Errorf("loaded tool optimize speedup %.2f", cmp.Speedup())
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := drbw.Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := drbw.Load(bad); err == nil {
		t.Error("garbage model accepted")
	}
	wrongVersion := filepath.Join(t.TempDir(), "v99.json")
	if err := os.WriteFile(wrongVersion, []byte(`{"version":99,"tree":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := drbw.Load(wrongVersion); err == nil {
		t.Error("future version accepted")
	}
	badMachine := filepath.Join(t.TempDir(), "machine.json")
	if err := os.WriteFile(badMachine, []byte(`{"version":1,"machine":"vax","tree":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := drbw.Load(badMachine); err == nil {
		t.Error("unknown machine accepted")
	}
}
