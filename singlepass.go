package drbw

// Fused single-pass streaming analysis.
//
// The two-pass pipeline exists because two pieces of global state are only
// known after reading the whole trace: the time range (timeline bucket
// geometry) and the contended channels (which CF to attribute). A
// checksummed indexed recording removes both obstacles without touching a
// sample: the DRBWIDX2 footer yields the global time range and total count
// in O(index bytes), so the timeline pre-bounds its geometry, and the
// dense CF accumulator counts attribution for every channel as samples
// stream, restricting to the contended set after classification. Features,
// timeline, and CF all accumulate in one decode sweep — half the decode
// work of the two-pass path.
//
// Trust moves accordingly. The two-pass path catches a recording swapped
// mid-analysis by comparing raw counts between its passes; a single pass
// has no second read to compare against, so it leans on the DRBWIDX2
// per-block checksums instead — every decoded block is verified against
// the checksum recorded at encode time — plus an index-honesty check: the
// decoded sample count and observed time range must agree exactly with
// what the footer claimed, or the analysis fails loudly rather than
// silently mis-bucketing the timeline. Recordings without a checksummed
// index (CSV, compressed, DRBWIDX1, foreign) keep the two-pass path and
// its raw-count consistency check.

import (
	"fmt"
	"math"

	"drbw/internal/alloc"
	"drbw/internal/core"
	"drbw/internal/diagnose"
	"drbw/internal/features"
	"drbw/internal/obs"
	"drbw/internal/pebs"
	"drbw/internal/profiledata"
)

// testHookForceTwoPass, when set, disables the fused single-pass path so
// tests and benchmarks can drive the two-pass path on recordings that
// would otherwise qualify, and compare the two bit for bit.
var testHookForceTwoPass bool

// testHookSinglePassOpened, when non-nil, runs after the single-pass path
// has opened the recording's index and before any block decodes. Tests use
// it to mutate the recording mid-analysis and prove the per-block checksum
// verification fires.
var testHookSinglePassOpened func()

// analyzeSinglePassFile tries the fused single-pass analysis on one
// recording. ok is false when the recording does not qualify — no index,
// no per-block checksums, or an objects table that does not form valid
// ranges (the two-pass path builds the table only after detection, so a
// bad table must not change when its error surfaces) — and the caller
// falls back to the two-pass path. A non-nil sc forces the serial sweep
// (the batch path parallelizes across recordings, not within them).
func (t *Tool) analyzeSinglePassFile(samplesPath string, objects []alloc.Object, sc *traceScratch, sp obs.SpanHandle) (*Report, bool, error) {
	if testHookForceTwoPass {
		return nil, false, nil
	}
	table, err := profiledata.NewTable(objects)
	if err != nil {
		return nil, false, nil
	}
	it, err := profiledata.OpenIndexedTrace(samplesPath)
	if err != nil {
		return nil, false, nil
	}
	if !it.HasChecksums() {
		it.Close()
		return nil, false, nil
	}
	defer it.Close()
	if testHookSinglePassOpened != nil {
		testHookSinglePassOpened()
	}
	total := it.TotalSamples()
	minT, maxT, okRange := it.TimeBounds()
	if total == 0 || !okRange {
		return nil, true, errNoSamples(fullRange(), 0)
	}
	if sc != nil || core.PoolWorkers() == 1 {
		rep, err := t.analyzeSinglePassSerial(it, table, sc, minT, maxT, total)
		return rep, true, err
	}
	jobs := blockRangeJobs(it, core.PoolWorkers())
	rep, err := t.analyzeSinglePassJobs(jobs, table, it.Weight(), total, minT, maxT, "analyze.blocks", sp)
	return rep, true, err
}

// analyzeSinglePassSerial is the one-worker fused sweep: features,
// timeline, and dense CF accumulate block by block off a single range
// reader over the whole recording.
func (t *Tool) analyzeSinglePassSerial(it *profiledata.IndexedTrace, table *profiledata.Table, sc *traceScratch, minT, maxT float64, total int) (*Report, error) {
	if sc == nil {
		sc = &traceScratch{acc: features.NewAccumulator(t.machine)}
	}
	sc.acc.Reset()
	weight := it.Weight()
	tl := diagnose.NewTimelineAccumulator(timelineBuckets, weight)
	tl.ObserveRange(minT, maxT, total)
	nodes := t.machine.Nodes()
	dcf := diagnose.NewDenseCF(table, nodes, weight)
	sr, err := it.RangeReader(0, it.Blocks(), &sc.bufs)
	if err != nil {
		return nil, err
	}
	var kept, oob int64
	obsMin, obsMax := math.Inf(1), math.Inf(-1)
	err = drainReader(sr, func(block []pebs.Sample) error {
		kept += int64(len(block))
		for i := range block {
			s := &block[i]
			if s.SrcNode < 0 || int(s.SrcNode) >= nodes ||
				s.HomeNode < 0 || int(s.HomeNode) >= nodes {
				return fmt.Errorf("drbw: sample references node outside the %d-node machine", nodes)
			}
			if s.Time >= minT && s.Time <= maxT {
				if s.Time < obsMin {
					obsMin = s.Time
				}
				if s.Time > obsMax {
					obsMax = s.Time
				}
			} else {
				oob++
			}
		}
		sc.acc.Add(block)
		tl.Add(block)
		dcf.Add(block)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := checkIndexAgrees(minT, maxT, total, kept, oob, obsMin, obsMax); err != nil {
		return nil, err
	}
	rep := &Report{Samples: kept}
	contended := t.classify(sc.acc, weight, rep)
	var cf *diagnose.CFAccumulator
	if rep.Detected {
		cf = dcf.Restrict(contended)
	}
	return t.finishReport(rep, tl, cf)
}

// blockRangeJobs splits one indexed recording's full block range into ~4
// chunks per worker, the same rebalancing granularity the two-pass indexed
// path uses.
func blockRangeJobs(it *profiledata.IndexedTrace, workers int) []shardJob {
	blocksPerChunk := it.Blocks() / (workers * 4)
	if blocksPerChunk < 1 {
		blocksPerChunk = 1
	}
	var jobs []shardJob
	for from := 0; from < it.Blocks(); from += blocksPerChunk {
		to := from + blocksPerChunk
		if to > it.Blocks() {
			to = it.Blocks()
		}
		from, to := from, to
		jobs = append(jobs, shardJob{
			name: "blocks",
			from: from,
			to:   to,
			run: func(bufs *profiledata.Buffers, emit func([]pebs.Sample) error) error {
				sr, err := it.RangeReader(from, to, bufs)
				if err != nil {
					return err
				}
				return drainReader(sr, emit)
			},
		})
	}
	return jobs
}

// analyzeSinglePassJobs is the fused counterpart of analyzeJobs: every job
// streams exactly once, each worker accumulating features, pre-bounded
// timeline buckets, and dense CF together. Per-worker accumulators merge
// in worker order with integer counts and exact sums, so the merged report
// is bit-identical to the serial fused sweep — and, through the
// index-honesty check, to the two-pass analysis — at any worker count.
func (t *Tool) analyzeSinglePassJobs(jobs []shardJob, table *profiledata.Table, weight float64, total int, minT, maxT float64, label string, parent obs.SpanHandle) (*Report, error) {
	tl := diagnose.NewTimelineAccumulator(timelineBuckets, weight)
	tl.ObserveRange(minT, maxT, total)
	nodes := t.machine.Nodes()
	ss := &shardStates{make: func() *shardState {
		return &shardState{
			acc:    features.NewAccumulator(t.machine),
			tlf:    tl.Fork(),
			dcf:    diagnose.NewDenseCF(table, nodes, weight),
			obsMin: math.Inf(1),
			obsMax: math.Inf(-1),
		}
	}}
	errs := make([]error, len(jobs))
	core.ParallelForLabeledSpans(len(jobs), label, parent, func(i, w int, cs obs.SpanHandle) {
		jobs[i].annotate(cs, 1)
		st := ss.get(w)
		errs[i] = jobs[i].run(&st.bufs, func(block []pebs.Sample) error {
			st.kept += int64(len(block))
			for j := range block {
				s := &block[j]
				if s.SrcNode < 0 || int(s.SrcNode) >= nodes ||
					s.HomeNode < 0 || int(s.HomeNode) >= nodes {
					return fmt.Errorf("drbw: sample references node outside the %d-node machine", nodes)
				}
				if s.Time >= minT && s.Time <= maxT {
					if s.Time < st.obsMin {
						st.obsMin = s.Time
					}
					if s.Time > st.obsMax {
						st.obsMax = s.Time
					}
				} else {
					st.oob++
				}
			}
			st.acc.Add(block)
			st.tlf.Add(block)
			st.dcf.Add(block)
			return nil
		})
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	acc := features.NewAccumulator(t.machine)
	dcf := diagnose.NewDenseCF(table, nodes, weight)
	var kept, oob int64
	obsMin, obsMax := math.Inf(1), math.Inf(-1)
	for _, st := range ss.states {
		if st == nil {
			continue
		}
		if err := acc.Merge(st.acc); err != nil {
			return nil, err
		}
		if err := tl.Merge(st.tlf); err != nil {
			return nil, err
		}
		if err := dcf.Merge(st.dcf); err != nil {
			return nil, err
		}
		kept += st.kept
		oob += st.oob
		if st.obsMin < obsMin {
			obsMin = st.obsMin
		}
		if st.obsMax > obsMax {
			obsMax = st.obsMax
		}
	}
	if err := checkIndexAgrees(minT, maxT, total, kept, oob, obsMin, obsMax); err != nil {
		return nil, err
	}
	rep := &Report{Samples: kept}
	contended := t.classify(acc, weight, rep)
	var cf *diagnose.CFAccumulator
	if rep.Detected {
		cf = dcf.Restrict(contended)
	}
	return t.finishReport(rep, tl, cf)
}

// analyzeShardsSinglePass tries the fused single-pass analysis across one
// logical recording's shards. Every shard must carry a checksummed index;
// otherwise ok is false and the caller falls back to the two-pass shard
// path. The global time range and total count come from the union of the
// shard indexes, so the merged report is bit-identical to analyzing the
// concatenation of the shards.
func (t *Tool) analyzeShardsSinglePass(samplePaths []string, objects []alloc.Object, sp obs.SpanHandle) (*Report, bool, error) {
	if testHookForceTwoPass {
		return nil, false, nil
	}
	table, err := profiledata.NewTable(objects)
	if err != nil {
		return nil, false, nil
	}
	its := make([]*profiledata.IndexedTrace, 0, len(samplePaths))
	defer func() {
		for _, it := range its {
			it.Close()
		}
	}()
	for _, path := range samplePaths {
		it, err := profiledata.OpenIndexedTrace(path)
		if err != nil {
			return nil, false, nil
		}
		its = append(its, it)
		if !it.HasChecksums() {
			return nil, false, nil
		}
	}
	if testHookSinglePassOpened != nil {
		testHookSinglePassOpened()
	}
	weight := its[0].Weight()
	total, blocks := 0, 0
	minT, maxT := math.Inf(1), math.Inf(-1)
	for i, it := range its {
		if it.Weight() != weight {
			return nil, true, fmt.Errorf("drbw: shard %s has weight %v, the first shard has %v", samplePaths[i], it.Weight(), weight)
		}
		total += it.TotalSamples()
		blocks += it.Blocks()
		if lo, hi, ok := it.TimeBounds(); ok {
			if lo < minT {
				minT = lo
			}
			if hi > maxT {
				maxT = hi
			}
		}
	}
	if total == 0 {
		return nil, true, errNoSamples(fullRange(), 0)
	}
	// One global chunk size across all shards so small shards do not
	// degenerate into per-shard serial jobs.
	blocksPerChunk := blocks / (core.PoolWorkers() * 4)
	if blocksPerChunk < 1 {
		blocksPerChunk = 1
	}
	var jobs []shardJob
	for si, it := range its {
		it := it
		for from := 0; from < it.Blocks(); from += blocksPerChunk {
			to := from + blocksPerChunk
			if to > it.Blocks() {
				to = it.Blocks()
			}
			from, to := from, to
			jobs = append(jobs, shardJob{
				name: samplePaths[si],
				from: from,
				to:   to,
				run: func(bufs *profiledata.Buffers, emit func([]pebs.Sample) error) error {
					sr, err := it.RangeReader(from, to, bufs)
					if err != nil {
						return err
					}
					return drainReader(sr, emit)
				},
			})
		}
	}
	rep, err := t.analyzeSinglePassJobs(jobs, table, weight, total, minT, maxT, "analyze.shards", sp)
	return rep, true, err
}

// checkIndexAgrees is the single-pass honesty check: the decoded samples
// must match the block index's claims exactly — same count, same global
// time range, nothing outside it. The block checksums guarantee the
// payload bytes are the ones the encoder summed; this closes the remaining
// gap, a footer whose counts or times (which no checksum covers) disagree
// with the blocks they describe. A NaN sample time compares false against
// both bounds and lands in oob, so it can never silently skew bucketing.
func checkIndexAgrees(minT, maxT float64, total int, kept, oob int64, obsMin, obsMax float64) error {
	if oob == 0 && kept == int64(total) && obsMin == minT && obsMax == maxT {
		return nil
	}
	return fmt.Errorf("drbw: index disagrees with recording (index claims %d samples in [%v, %v]; decoded %d samples in [%v, %v], %d outside the claimed range)",
		total, minT, maxT, kept, obsMin, obsMax, oob)
}
