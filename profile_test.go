package drbw_test

import (
	"os"
	"path/filepath"
	"testing"

	"drbw"
)

func TestRecordAndAnalyzeTrace(t *testing.T) {
	tl := sharedTool(t)
	c := drbw.Case{Input: "native", Threads: 32, Nodes: 4, Seed: 51}
	td, err := tl.Record("Streamcluster", c)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Samples) == 0 || len(td.Objects) == 0 {
		t.Fatalf("recording empty: %d samples %d objects", len(td.Samples), len(td.Objects))
	}
	if td.Bench != "Streamcluster" || td.Config == "" {
		t.Errorf("recording metadata: %q %q", td.Bench, td.Config)
	}

	// Offline analysis agrees with the live pipeline.
	rep, err := tl.AnalyzeTrace(td)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Contended() {
		t.Fatal("offline analysis missed the contention")
	}
	if top := rep.TopObjects(1); len(top) == 0 || top[0] != "block" {
		t.Errorf("offline diagnosis top = %v", top)
	}
}

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	tl := sharedTool(t)
	c := drbw.Case{Input: "native", Threads: 16, Nodes: 2, Seed: 52}
	td, err := tl.Record("Streamcluster", c)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sPath := filepath.Join(dir, "samples.csv")
	oPath := filepath.Join(dir, "objects.csv")
	if err := td.Save(sPath, oPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := drbw.LoadTrace(sPath, oPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Samples) != len(td.Samples) {
		t.Fatalf("samples %d -> %d", len(td.Samples), len(loaded.Samples))
	}
	if len(loaded.Objects) != len(td.Objects) {
		t.Fatalf("objects %d -> %d", len(td.Objects), len(loaded.Objects))
	}
	if loaded.Weight != td.Weight {
		t.Errorf("weight %v -> %v across save/load", td.Weight, loaded.Weight)
	}

	orig, err := tl.AnalyzeTrace(td)
	if err != nil {
		t.Fatal(err)
	}
	again, err := tl.AnalyzeTrace(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Detected != again.Detected {
		t.Error("detection changed across trace save/load")
	}
	if len(orig.Objects) != len(again.Objects) {
		t.Errorf("diagnosis size changed: %d -> %d", len(orig.Objects), len(again.Objects))
	}
}

// TestTraceWeightRoundTrip forces the collector's reservoir to overflow so
// the recording carries Weight > 1, then checks the offline pipeline
// reproduces the live verdict: the weight survives Save/LoadTrace, and the
// reloaded trace classifies exactly like Analyze on the same case. Before
// the weight was persisted, reloaded traces silently under-counted every
// count feature by the reservoir factor.
func TestTraceWeightRoundTrip(t *testing.T) {
	tl := sharedTool(t)
	restore := drbw.SetCollectorMaxKept(tl, 200)
	defer restore()

	c := drbw.Case{Input: "native", Threads: 32, Nodes: 4, Seed: 53}
	td, err := tl.Record("Streamcluster", c)
	if err != nil {
		t.Fatal(err)
	}
	if td.Weight <= 1 {
		t.Fatalf("weight = %v; the 200-sample cap should overflow", td.Weight)
	}
	if len(td.Samples) > 200 {
		t.Fatalf("kept %d samples with a 200-sample cap", len(td.Samples))
	}

	dir := t.TempDir()
	sPath := filepath.Join(dir, "samples.csv")
	oPath := filepath.Join(dir, "objects.csv")
	if err := td.Save(sPath, oPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := drbw.LoadTrace(sPath, oPath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Weight != td.Weight {
		t.Fatalf("weight %v -> %v across save/load", td.Weight, loaded.Weight)
	}

	live, err := tl.Analyze("Streamcluster", c)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := tl.AnalyzeTrace(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if offline.Detected != live.Detected {
		t.Errorf("offline detected=%v, live detected=%v", offline.Detected, live.Detected)
	}
	if len(offline.Channels) != len(live.Channels) {
		t.Fatalf("offline channels %v, live channels %v", offline.Channels, live.Channels)
	}
	for i := range live.Channels {
		if offline.Channels[i] != live.Channels[i] {
			t.Errorf("channel %d: offline %q, live %q", i, offline.Channels[i], live.Channels[i])
		}
	}
}

// TestSaveValidatesBeforeWrite checks a bad record never leaves a truncated
// CSV behind: validation runs before any file is created.
func TestSaveValidatesBeforeWrite(t *testing.T) {
	td := &drbw.TraceData{
		Samples: []drbw.SampleRecord{{Level: "L9"}},
		Objects: []drbw.ObjectRecord{{Name: "a", Base: 0x1000, Size: 64}},
	}
	dir := t.TempDir()
	sPath := filepath.Join(dir, "samples.csv")
	oPath := filepath.Join(dir, "objects.csv")
	if err := td.Save(sPath, oPath); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := os.Stat(sPath); !os.IsNotExist(err) {
		t.Errorf("truncated samples file left behind: %v", err)
	}
	if _, err := os.Stat(oPath); !os.IsNotExist(err) {
		t.Errorf("objects file written despite the bad recording: %v", err)
	}
}

func TestAnalyzeTraceValidation(t *testing.T) {
	tl := sharedTool(t)
	if _, err := tl.AnalyzeTrace(&drbw.TraceData{}); err == nil {
		t.Error("empty recording accepted")
	}
	bad := &drbw.TraceData{Samples: []drbw.SampleRecord{{Level: "L9", SrcNode: 0, HomeNode: 0}}}
	if _, err := tl.AnalyzeTrace(bad); err == nil {
		t.Error("unknown level accepted")
	}
	outOfRange := &drbw.TraceData{Samples: []drbw.SampleRecord{{Level: "MEM", SrcNode: 9, HomeNode: 0}}}
	if _, err := tl.AnalyzeTrace(outOfRange); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestLoadTraceMissingFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := drbw.LoadTrace(filepath.Join(dir, "a.csv"), filepath.Join(dir, "b.csv")); err == nil {
		t.Error("missing sample file accepted")
	}
}
