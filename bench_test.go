package drbw_test

// The benchmark harness: one testing.B per table and figure of the paper,
// backed by internal/experiments (the same code cmd/drbw-bench runs in
// full). Benchmarks run the quick variants so `go test -bench=.` completes
// in minutes; regenerate the full sweeps with `go run ./cmd/drbw-bench`.
//
// Reported custom metrics carry the experiment's headline number (accuracy,
// speedup, CF, overhead) so a bench run doubles as a regression check on
// the reproduced results.

import (
	"sync"
	"testing"
	"time"

	"drbw/internal/alloc"
	"drbw/internal/cache"
	"drbw/internal/core"
	"drbw/internal/dtree"
	"drbw/internal/engine"
	"drbw/internal/experiments"
	"drbw/internal/memsim"
	"drbw/internal/micro"
	"drbw/internal/optimize"
	"drbw/internal/pebs"
	"drbw/internal/program"
	"drbw/internal/search"
	"drbw/internal/topology"
	"drbw/internal/trace"
	"drbw/internal/workloads"
)

var (
	ctxOnce sync.Once
	ctx     *experiments.Context
	ctxErr  error
)

func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	ctxOnce.Do(func() {
		ctx, ctxErr = experiments.NewContext(true, 1)
	})
	if ctxErr != nil {
		b.Fatal(ctxErr)
	}
	return ctx
}

// --- Experiment benchmarks: one per table/figure ---

func BenchmarkTableI_FeatureSelection(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.TableI()
	}
}

func BenchmarkTableII_TrainingCollection(b *testing.B) {
	// Collects a 12-run slice of the Table II training set per iteration.
	set := micro.TrainingSet()
	var reduced []micro.Instance
	for i := 0; i < len(set); i += 16 {
		reduced = append(reduced, set[i])
	}
	m := topology.XeonE5_4650()
	ecfg := engine.Config{Window: 8192, Warmup: 4096, ReservoirSize: 1024, Seed: 11}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		td, err := core.CollectTraining(m, ecfg, reduced)
		if err != nil {
			b.Fatal(err)
		}
		if len(td.Runs) != len(reduced) {
			b.Fatalf("collected %d runs", len(td.Runs))
		}
	}
	b.ReportMetric(float64(len(reduced)), "runs/op")
}

func BenchmarkTableIII_CrossValidation(b *testing.B) {
	c := benchContext(b)
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm, err := c.CrossValidate()
		if err != nil {
			b.Fatal(err)
		}
		acc = cm.Accuracy()
	}
	b.ReportMetric(100*acc, "cv-accuracy-%")
}

func BenchmarkFig3_TreeTraining(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := dtree.Train(c.Training.Dataset, dtree.Config{MaxDepth: 4, MinLeaf: 3})
		if err != nil {
			b.Fatal(err)
		}
		if tree.Leaves() == 0 {
			b.Fatal("empty tree")
		}
	}
}

func BenchmarkTableIV_V_VI_Evaluation(b *testing.B) {
	c := benchContext(b)
	var correctness float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev, err := c.Evaluate()
		if err != nil {
			b.Fatal(err)
		}
		_, stats := c.TableVI(ev)
		correctness = stats.Correctness
		if stats.FNR > 0.05 {
			b.Fatalf("false negative rate %.1f%%; the paper reports 0%%", 100*stats.FNR)
		}
	}
	b.ReportMetric(100*correctness, "correctness-%")
}

// BenchmarkBatchEvaluation pits the detector's parallel batch API against
// a serial loop over the paper's eight standard configurations. The
// speedup-x metric is the wall-clock ratio of one serial sweep to one
// batch sweep; on a multi-core host it should track GOMAXPROCS up to the
// case count.
func BenchmarkBatchEvaluation(b *testing.B) {
	c := benchContext(b)
	e, ok := workloads.ByName("Streamcluster")
	if !ok {
		b.Fatal("missing Streamcluster")
	}
	var jobs []core.BatchJob
	for i, cfg := range program.StandardConfigs() {
		cc := cfg
		cc.Input = "native"
		cc.Seed = uint64(120000 + i*7)
		jobs = append(jobs, core.BatchJob{Builder: e.Builder, Cfg: cc})
	}
	serialSweep := func() {
		for _, j := range jobs {
			if _, err := c.Detector.Evaluate(j.Builder, c.Machine, j.Cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	parallelSweep := func() {
		for _, r := range c.Detector.EvaluateAll(c.Machine, jobs) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			serialSweep()
		}
		b.ReportMetric(float64(len(jobs)), "cases/op")
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			parallelSweep()
		}
		b.StopTimer()
		start := time.Now()
		serialSweep()
		serialD := time.Since(start)
		start = time.Now()
		parallelSweep()
		parallelD := time.Since(start)
		b.ReportMetric(float64(len(jobs)), "cases/op")
		b.ReportMetric(serialD.Seconds()/parallelD.Seconds(), "speedup-x")
	})
}

func BenchmarkTableVII_ProfilingOverhead(b *testing.B) {
	c := benchContext(b)
	var avg float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, a, err := c.TableVII()
		if err != nil {
			b.Fatal(err)
		}
		avg = a
	}
	b.ReportMetric(100*avg, "avg-overhead-%")
}

func BenchmarkFig4_ContributionFractions(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_AMGPhases(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_IRSmk(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_Streamcluster(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_LULESH(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCaseStudySP(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SPStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCaseStudyBlackscholes(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.BlackscholesStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineStudy(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.BaselineStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLLCStudy(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.LLCStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md section 5) ---

func BenchmarkAblationFeatures(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.AblationFeatures(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTreeDepth(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.AblationTreeDepth(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSamplingPeriod(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.AblationSamplingPeriod(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationChannelGranularity(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.AblationChannelGranularity(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPrefetcher(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.AblationPrefetcher(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLatencyModel(b *testing.B) {
	c := benchContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.AblationLatencyModel(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkCacheHierarchyAccess(b *testing.B) {
	m := topology.XeonE5_4650()
	h, err := cache.NewHierarchy(m, cache.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(topology.CPUID(i&31), uint64(i)*64)
	}
}

func BenchmarkHeapLookup(b *testing.B) {
	as := memsim.NewAddressSpace(topology.XeonE5_4650())
	h := alloc.NewHeap(as, 0x10000000)
	var addrs []uint64
	for i := 0; i < 256; i++ {
		id, err := h.Malloc("o", 1<<20, alloc.Site{Func: "f"}, memsim.BindTo(0))
		if err != nil {
			b.Fatal(err)
		}
		addrs = append(addrs, h.Object(id).Base+512)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := h.Lookup(addrs[i&255]); !ok {
			b.Fatal("lookup miss")
		}
	}
}

// BenchmarkEngineContendedRun times one full contended simulation at three
// worker settings: workers=1 is the exact serial interleave (the historical
// number and the allocation gate's subject), workers=2 always takes the
// parallel window path regardless of host core count, and workers=max uses
// GOMAXPROCS. All three produce bit-identical Results; only wall clock may
// differ. scripts/bench.sh derives window_speedup from 1 vs max.
func BenchmarkEngineContendedRun(b *testing.B) {
	m := topology.XeonE5_4650()
	run := func(b *testing.B, workers int) {
		bld := micro.Sumv(micro.BigCentralized, 0)
		cfg := program.Config{Threads: 32, Nodes: 4, Input: "default", Seed: 3}
		ecfg := engine.Config{Window: 8192, Warmup: 2048, ReservoirSize: 512, Seed: 3, Workers: workers}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := bld.New(m, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.Run(ecfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	b.Run("workers=2", func(b *testing.B) { run(b, 2) })
	b.Run("workers=max", func(b *testing.B) { run(b, 0) })
}

// BenchmarkOptimizerSearch times the closed-loop placement search on a
// two-hot-object contended case (16 candidate placements) at three
// settings: serial exhaustive (every candidate simulated to completion,
// one at a time — the naive baseline), parallel exhaustive (same work over
// the worker pool), and pruned (the default branch-and-bound: analytic
// frontier cut plus incumbent cycle budget, in parallel). All three choose
// the same placement; scripts/bench.sh gates serial/pruned wall clock via
// MIN_OPTIMIZER_SPEEDUP on hosts with >= 4 cores.
func BenchmarkOptimizerSearch(b *testing.B) {
	m := topology.XeonE5_4650()
	bld := micro.Dotv(micro.BigCentralized, 0)
	cfg := program.Config{Threads: 32, Nodes: 4, Input: "default", Seed: 71}
	ecfg := engine.Config{Window: 2048, Warmup: 512, ReservoirSize: 256, Seed: 21}

	// Profile once; every search variant reuses the same detection state,
	// so the benchmark isolates the search itself.
	p, err := bld.New(m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	col := pebs.NewCollector(core.DefaultCollectorConfig(), 72)
	prof := ecfg
	prof.Collector = col
	prof.Seed = 73
	if _, err := p.Run(prof); err != nil {
		b.Fatal(err)
	}
	in := search.Input{
		Builder: bld, Machine: m, Cfg: cfg,
		Heap: p.Heap, Samples: col.Samples(), Weight: col.Weight(),
	}

	var bestKey string
	run := func(b *testing.B, scfg search.Config) {
		b.ReportAllocs()
		var res *search.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, err = search.Run(in, ecfg, scfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Best == nil {
				b.Fatal("search found no placement")
			}
		}
		b.StopTimer()
		if bestKey == "" {
			bestKey = res.Best.Candidate.Key()
		} else if got := res.Best.Candidate.Key(); got != bestKey {
			b.Fatalf("variants disagree on the placement: %q vs %q", got, bestKey)
		}
		b.ReportMetric(res.Speedup(), "placement-speedup-x")
		b.ReportMetric(float64(res.Explored), "explored/op")
	}
	b.Run("serial", func(b *testing.B) {
		run(b, search.Config{Frontier: -1, DisableBudget: true, Workers: 1})
	})
	b.Run("parallel", func(b *testing.B) {
		run(b, search.Config{Frontier: -1, DisableBudget: true})
	})
	b.Run("pruned", func(b *testing.B) {
		run(b, search.Config{})
	})
}

func BenchmarkInterleaveGroundTruthProbe(b *testing.B) {
	m := topology.XeonE5_4650()
	bld := micro.Sumv(micro.BigCentralized, 0)
	cfg := program.Config{Threads: 16, Nodes: 2, Input: "default", Seed: 5}
	ecfg := engine.Config{Window: 4096, Warmup: 1024, ReservoirSize: 256, Seed: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := optimize.ActualRMC(bld, m, cfg, ecfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamGeneration(b *testing.B) {
	s := &trace.Seq{Base: 0x10000000, Len: 1 << 24, Elem: 8}
	s.Reset(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			s.Reset(uint64(i))
		}
	}
}

// BenchmarkStreamFill measures the batched refill path the engine window
// actually uses (per-access cost of Fill over a 256-entry buffer).
func BenchmarkStreamFill(b *testing.B) {
	s := &trace.Seq{Base: 0x10000000, Len: 1 << 24, Elem: 8}
	s.Reset(1)
	buf := make([]trace.Access, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 256 {
		if n := trace.Fill(s, buf); n < len(buf) {
			s.Reset(uint64(i))
		}
	}
}
