package drbw

import (
	"fmt"
	"io"
	"os"
	"sort"

	"drbw/internal/alloc"
	"drbw/internal/cache"
	"drbw/internal/core"
	"drbw/internal/diagnose"
	"drbw/internal/features"
	"drbw/internal/pebs"
	"drbw/internal/profiledata"
	"drbw/internal/topology"
)

// SampleRecord is one recorded address sample — the public face of a PEBS
// sample, with node resolution already applied (the collector resolves
// source and home while the process is alive).
type SampleRecord struct {
	Time     float64 // cycles since run start
	CPU      int
	Thread   int
	Addr     uint64
	Level    string // "L1", "L2", "L3", "LFB" or "MEM"
	Latency  float64
	Write    bool
	SrcNode  int
	HomeNode int
}

// ObjectRecord is one entry of the recorded allocation range table.
type ObjectRecord struct {
	ID   int
	Name string
	Func string
	File string
	Line int
	Base uint64
	Size uint64
}

// TraceData is a complete recorded profile: samples plus the allocation
// table, ready to save, reload and analyze offline.
type TraceData struct {
	Bench   string
	Config  string
	Samples []SampleRecord
	Objects []ObjectRecord
	// Weight scales kept samples to true counts when the collector bounded
	// its memory. 1 when everything was kept.
	Weight float64
}

func toRecord(s pebs.Sample) SampleRecord {
	return SampleRecord{
		Time: s.Time, CPU: int(s.CPU), Thread: s.Thread, Addr: s.Addr,
		Level: s.Level.String(), Latency: s.Latency, Write: s.Write,
		SrcNode: int(s.SrcNode), HomeNode: int(s.HomeNode),
	}
}

func fromRecord(r SampleRecord) (pebs.Sample, error) {
	var lvl cache.Level
	switch r.Level {
	case "L1":
		lvl = cache.L1
	case "L2":
		lvl = cache.L2
	case "L3":
		lvl = cache.L3
	case "LFB":
		lvl = cache.LFB
	case "MEM":
		lvl = cache.MEM
	default:
		return pebs.Sample{}, fmt.Errorf("drbw: unknown memory level %q", r.Level)
	}
	return pebs.Sample{
		Time: r.Time, CPU: topology.CPUID(r.CPU), Thread: r.Thread, Addr: r.Addr,
		Level: lvl, Latency: r.Latency, Write: r.Write,
		SrcNode: topology.NodeID(r.SrcNode), HomeNode: topology.NodeID(r.HomeNode),
	}, nil
}

// Record profiles one case of a built-in benchmark and returns the raw
// recording instead of an analysis — the collection half of the offline
// workflow.
func (t *Tool) Record(bench string, c Case) (*TraceData, error) {
	b, err := t.builder(bench)
	if err != nil {
		return nil, err
	}
	p, err := b.New(t.machine, c.config())
	if err != nil {
		return nil, err
	}
	// Same collector configuration and seeds as Detector.Detect, so a
	// recording reproduces exactly the samples the live pipeline would see.
	ccfg := t.detector.Ccfg
	ccfg.Flavor = t.detector.Ecfg.SamplerFlavor
	col := pebs.NewCollector(ccfg, c.Seed+101)
	run := t.cfg.engineConfig()
	run.Collector = col
	run.Seed = c.Seed + 103
	if _, err := p.Run(run); err != nil {
		return nil, err
	}
	td := &TraceData{
		Bench:  bench,
		Config: c.config().String(),
		Weight: col.Weight(),
	}
	for _, s := range col.Samples() {
		td.Samples = append(td.Samples, toRecord(s))
	}
	for _, o := range p.Heap.Live() {
		td.Objects = append(td.Objects, ObjectRecord{
			ID: int(o.ID), Name: o.Name,
			Func: o.Site.Func, File: o.Site.File, Line: o.Site.Line,
			Base: o.Base, Size: o.Size,
		})
	}
	return td, nil
}

// Save writes the recording as two CSV files (see internal/profiledata for
// the exact format). Every record is validated before any file is created,
// and a file that fails mid-write is removed, so a bad recording never
// leaves a truncated CSV behind.
func (td *TraceData) Save(samplesPath, objectsPath string) error {
	samples := make([]pebs.Sample, 0, len(td.Samples))
	for _, r := range td.Samples {
		s, err := fromRecord(r)
		if err != nil {
			return err
		}
		samples = append(samples, s)
	}
	weight := td.Weight
	if weight <= 0 {
		weight = 1
	}
	if err := writeFile(samplesPath, func(w io.Writer) error {
		return profiledata.WriteSamples(w, samples, weight)
	}); err != nil {
		return err
	}
	return writeFile(objectsPath, func(w io.Writer) error {
		return profiledata.WriteObjects(w, td.internalObjects())
	})
}

// writeFile creates path, runs write, and removes the file again if
// anything fails, so readers never see a partial CSV.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("drbw: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return fmt.Errorf("drbw: %w", err)
	}
	return nil
}

func (td *TraceData) internalObjects() []alloc.Object {
	var out []alloc.Object
	for _, o := range td.Objects {
		out = append(out, alloc.Object{
			ID: alloc.ObjectID(o.ID), Name: o.Name,
			Site: alloc.Site{Func: o.Func, File: o.File, Line: o.Line},
			Base: o.Base, Size: o.Size,
		})
	}
	return out
}

// LoadTrace reads a recording saved by TraceData.Save (or produced by any
// other tool emitting the same CSV schema). The collector weight persisted
// in the samples file is restored; weightless files from older versions of
// the format (or foreign tools) load with weight 1.
func LoadTrace(samplesPath, objectsPath string) (*TraceData, error) {
	sf, err := os.Open(samplesPath)
	if err != nil {
		return nil, fmt.Errorf("drbw: %w", err)
	}
	defer sf.Close()
	samples, weight, err := profiledata.ReadSamples(sf)
	if err != nil {
		return nil, err
	}
	of, err := os.Open(objectsPath)
	if err != nil {
		return nil, fmt.Errorf("drbw: %w", err)
	}
	defer of.Close()
	objects, err := profiledata.ReadObjects(of)
	if err != nil {
		return nil, err
	}
	td := &TraceData{Weight: weight}
	for _, s := range samples {
		td.Samples = append(td.Samples, toRecord(s))
	}
	for _, o := range objects {
		td.Objects = append(td.Objects, ObjectRecord{
			ID: int(o.ID), Name: o.Name,
			Func: o.Site.Func, File: o.Site.File, Line: o.Site.Line,
			Base: o.Base, Size: o.Size,
		})
	}
	return td, nil
}

// AnalyzeTrace runs the classification and diagnosis pipeline on a
// recording: per-channel feature extraction, the trained tree, and CF
// attribution through the recorded allocation table. The recording must
// come from (or describe) the machine the tool was trained for.
func (t *Tool) AnalyzeTrace(td *TraceData) (*Report, error) {
	if len(td.Samples) == 0 {
		return nil, fmt.Errorf("drbw: recording has no samples")
	}
	weight := td.Weight
	if weight <= 0 {
		weight = 1
	}
	var samples []pebs.Sample
	for _, r := range td.Samples {
		s, err := fromRecord(r)
		if err != nil {
			return nil, err
		}
		if s.SrcNode < 0 || int(s.SrcNode) >= t.machine.Nodes() ||
			s.HomeNode < 0 || int(s.HomeNode) >= t.machine.Nodes() {
			return nil, fmt.Errorf("drbw: sample references node outside the %d-node machine", t.machine.Nodes())
		}
		samples = append(samples, s)
	}

	rep := &Report{Bench: td.Bench, Config: td.Config, Samples: int64(len(samples))}
	var contended []topology.Channel
	for ch, vec := range features.ChannelVectors(t.machine, samples, weight, t.detector.MinSamples) {
		v := vec
		label := features.Label(t.tree.Predict(v[:]))
		core.CountPrediction(label)
		if label == features.RMC {
			rep.Detected = true
			contended = append(contended, ch)
		}
	}
	sortChannelsStable(contended)
	core.CountDetectCase(rep.Detected)
	for _, ch := range contended {
		rep.Channels = append(rep.Channels, ch.String())
	}
	rep.attachTimeline(diagnose.Timeline(samples, timelineBuckets, weight))
	if !rep.Detected {
		return rep, nil
	}
	table, err := profiledata.NewTable(td.internalObjects())
	if err != nil {
		return nil, err
	}
	diag := diagnose.Analyze(table, samples, contended, weight)
	for _, o := range diag.Overall {
		rep.Objects = append(rep.Objects, ObjectCF{
			Name: o.Object.Name, Site: o.Object.Site.String(),
			CF: o.CF, Samples: o.Samples,
		})
	}
	rep.UnattributedCF = diag.UnattributedCF
	return rep, nil
}

func sortChannelsStable(chs []topology.Channel) {
	sort.Slice(chs, func(i, j int) bool {
		return chs[i].Src < chs[j].Src ||
			(chs[i].Src == chs[j].Src && chs[i].Dst < chs[j].Dst)
	})
}
