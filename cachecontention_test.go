package drbw_test

import (
	"strings"
	"sync"
	"testing"

	"drbw"
)

var (
	cacheToolOnce sync.Once
	cacheTool     *drbw.CacheTool
	cacheToolErr  error
)

func sharedCacheTool(t *testing.T) *drbw.CacheTool {
	t.Helper()
	cacheToolOnce.Do(func() {
		cacheTool, cacheToolErr = drbw.TrainCacheContention(drbw.Config{Quick: true, Seed: 4})
	})
	if cacheToolErr != nil {
		t.Fatal(cacheToolErr)
	}
	return cacheTool
}

func TestCacheContentionDetection(t *testing.T) {
	ct := sharedCacheTool(t)
	cm, err := ct.CrossValidate()
	if err != nil {
		t.Fatal(err)
	}
	if cm.Accuracy() < 0.85 {
		t.Errorf("cache-contention CV accuracy %.2f", cm.Accuracy())
	}
	if !strings.Contains(ct.Tree(), "<=") {
		t.Error("cache tree rendering empty")
	}

	// A workload whose per-thread tables overflow the socket's shared L3.
	hot := drbw.WorkloadSpec{
		Name: "overflow",
		Arrays: []drbw.ArraySpec{
			// 1 MB per thread, 8 MB per socket: 4x the scaled L3.
			{Name: "table", MB: 16, Placement: drbw.Parallel, Pattern: drbw.Scan},
		},
		MLP: 4, WorkCycles: 2,
	}
	rep, err := ct.AnalyzeWorkload(hot, drbw.Case{Threads: 16, Nodes: 2, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Fatal("overflowing workload not detected")
	}
	if len(rep.Sockets) == 0 {
		t.Error("no sockets reported")
	}
	if len(rep.TopObjects(1)) == 0 {
		t.Error("no objects blamed")
	}
	if !strings.Contains(rep.String(), "SHARED-CACHE CONTENTION") {
		t.Errorf("report rendering:\n%s", rep)
	}

	// Tiny footprint: clean.
	cold := drbw.WorkloadSpec{
		Name: "resident",
		Arrays: []drbw.ArraySpec{
			{Name: "small", MB: 1, Placement: drbw.Parallel, Pattern: drbw.Scan},
		},
		MLP: 4, WorkCycles: 2,
	}
	repCold, err := ct.AnalyzeWorkload(cold, drbw.Case{Threads: 16, Nodes: 4, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	if repCold.Detected {
		t.Errorf("cache-resident workload flagged: %s", repCold)
	}
	if !strings.Contains(repCold.String(), "no shared-cache contention") {
		t.Errorf("clean rendering:\n%s", repCold)
	}
}

func TestCacheContentionBadWorkload(t *testing.T) {
	ct := sharedCacheTool(t)
	if _, err := ct.AnalyzeWorkload(drbw.WorkloadSpec{}, drbw.Case{Threads: 8, Nodes: 2}); err == nil {
		t.Error("empty workload accepted")
	}
}
