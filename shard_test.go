package drbw_test

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"drbw"
	"drbw/internal/core"
	"drbw/internal/profiledata"
)

// reblock rewrites a saved binary recording with small indexed blocks so a
// modest test trace still spans enough blocks to exercise the fan-out.
func reblock(t *testing.T, samplesPath string, blockSize int) string {
	t.Helper()
	f, err := os.Open(samplesPath)
	if err != nil {
		t.Fatal(err)
	}
	samples, weight, err := profiledata.ReadSamples(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "reblocked.bin")
	g, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := profiledata.WriteSamplesBinary(g, samples, weight, profiledata.BinaryOptions{BlockSize: blockSize, Index: true}); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestAnalyzeTraceFileWorkerCountInvariance is the shard contract at the
// top of the pipeline: the block-parallel analysis of an indexed recording
// is bit-identical to the slice path at every worker count, and the CSV
// serial fallback agrees too.
func TestAnalyzeTraceFileWorkerCountInvariance(t *testing.T) {
	tl := sharedTool(t)
	// Record to CSV first so every format below holds the identical
	// grid-quantized samples (and the slice-path report carries no
	// Record-only metadata).
	_, csvPath, oPath := recordTo(t, tl, 71, drbw.FormatCSV)
	td, err := drbw.LoadTrace(csvPath, oPath)
	if err != nil {
		t.Fatal(err)
	}
	sPath := filepath.Join(t.TempDir(), "samples.bin")
	if err := td.SaveAs(sPath, filepath.Join(t.TempDir(), "o.csv"), drbw.FormatBinary); err != nil {
		t.Fatal(err)
	}
	small := reblock(t, sPath, 64)
	want, err := tl.AnalyzeTrace(td)
	if err != nil {
		t.Fatal(err)
	}

	defer core.SetPoolWorkers(0)
	for _, workers := range []int{1, 2, 3, runtime.GOMAXPROCS(0)} {
		core.SetPoolWorkers(workers)
		// sPath and small fan block ranges out; csvPath takes the serial
		// fallback. All three must match the slice path bit for bit.
		for _, path := range []string{sPath, small, csvPath} {
			got, err := tl.AnalyzeTraceFile(path, oPath)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, path, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d %s: sharded report differs from the slice path\n got %+v\nwant %+v", workers, path, got, want)
			}
		}
	}
}

// splitTrace saves td's samples as n shard files (same weight, shared
// objects table) and returns the shard paths plus the objects path.
func splitTrace(t *testing.T, td *drbw.TraceData, n int) ([]string, string) {
	t.Helper()
	dir := t.TempDir()
	oPath := filepath.Join(dir, "trace.objects.csv")
	var shards []string
	per := (len(td.Samples) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(td.Samples) {
			lo = len(td.Samples)
		}
		if hi > len(td.Samples) {
			hi = len(td.Samples)
		}
		part := &drbw.TraceData{Weight: td.Weight, Samples: td.Samples[lo:hi], Objects: td.Objects}
		sPath := filepath.Join(dir, "trace.samples."+string(rune('0'+i))+".bin")
		if err := part.SaveAs(sPath, oPath, drbw.FormatBinary); err != nil {
			t.Fatal(err)
		}
		shards = append(shards, sPath)
	}
	return shards, oPath
}

// TestAnalyzeTraceShardsMatchesWhole: a recording split across shard files
// analyzes bit-identically to the whole trace, at several worker counts.
func TestAnalyzeTraceShardsMatchesWhole(t *testing.T) {
	tl := sharedTool(t)
	_, sPath, objPath := recordTo(t, tl, 72, drbw.FormatBinary)
	td, err := drbw.LoadTrace(sPath, objPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tl.AnalyzeTrace(td)
	if err != nil {
		t.Fatal(err)
	}
	shards, oPath := splitTrace(t, td, 3)

	defer core.SetPoolWorkers(0)
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		core.SetPoolWorkers(workers)
		got, err := tl.AnalyzeTraceShards(shards, oPath)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: shard-merged report differs from the whole-trace analysis", workers)
		}
	}

	// The directory form discovers the same shards.
	core.SetPoolWorkers(0)
	got, err := tl.AnalyzeTraceShardDir(filepath.Dir(shards[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("shard-dir report differs from the whole-trace analysis")
	}
}

// TestAnalyzeTraceShardsErrors: weight mismatches and malformed shard
// directories fail loudly instead of merging inconsistent recordings.
func TestAnalyzeTraceShardsErrors(t *testing.T) {
	tl := sharedTool(t)
	_, sPath, objPath := recordTo(t, tl, 73, drbw.FormatBinary)
	td, err := drbw.LoadTrace(sPath, objPath)
	if err != nil {
		t.Fatal(err)
	}
	shards, oPath := splitTrace(t, td, 2)

	// A shard recorded at a different weight must be rejected.
	heavier := &drbw.TraceData{Weight: td.Weight + 1, Samples: td.Samples[:4], Objects: td.Objects}
	badPath := filepath.Join(t.TempDir(), "bad.samples.0.bin")
	if err := heavier.SaveAs(badPath, filepath.Join(t.TempDir(), "o.csv"), drbw.FormatBinary); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.AnalyzeTraceShards([]string{shards[0], badPath}, oPath); err == nil || !strings.Contains(err.Error(), "weight") {
		t.Fatalf("weight mismatch error = %v", err)
	}

	if _, err := tl.AnalyzeTraceShards(nil, oPath); err == nil {
		t.Error("empty shard list accepted")
	}
	if _, err := tl.AnalyzeTraceShardDir(t.TempDir()); err == nil {
		t.Error("empty shard dir accepted")
	}
}

// TestAnalyzeTraceFileRange: a time window analyzes exactly like the
// manually filtered trace, on both the indexed and the serial path.
func TestAnalyzeTraceFileRange(t *testing.T) {
	tl := sharedTool(t)
	_, csvFile, oPath := recordTo(t, tl, 74, drbw.FormatCSV)
	td, err := drbw.LoadTrace(csvFile, oPath)
	if err != nil {
		t.Fatal(err)
	}
	sPath := filepath.Join(t.TempDir(), "samples.bin")
	if err := td.SaveAs(sPath, filepath.Join(t.TempDir(), "o.csv"), drbw.FormatBinary); err != nil {
		t.Fatal(err)
	}
	small := reblock(t, sPath, 64)

	times := make([]float64, len(td.Samples))
	for i, s := range td.Samples {
		times[i] = s.Time
	}
	lo, hi := times[len(times)/4], times[3*len(times)/4]
	want := &drbw.TraceData{Weight: td.Weight, Objects: td.Objects}
	for _, s := range td.Samples {
		if s.Time >= lo && s.Time <= hi {
			want.Samples = append(want.Samples, s)
		}
	}
	wantRep, err := tl.AnalyzeTrace(want)
	if err != nil {
		t.Fatal(err)
	}

	defer core.SetPoolWorkers(0)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		core.SetPoolWorkers(workers)
		for _, path := range []string{sPath, small, csvFile} {
			got, err := tl.AnalyzeTraceFileRange(path, oPath, lo, hi)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, path, err)
			}
			if !reflect.DeepEqual(got, wantRep) {
				t.Fatalf("workers=%d %s: ranged report differs from the filtered slice path", workers, path)
			}
		}
	}

	// An inverted window is rejected; an empty window errors distinctly.
	if _, err := tl.AnalyzeTraceFileRange(sPath, oPath, hi, lo); err == nil {
		t.Error("inverted time range accepted")
	}
	if _, err := tl.AnalyzeTraceFileRange(sPath, oPath, -2, -1); err == nil || !strings.Contains(err.Error(), "time range") {
		t.Errorf("empty window error = %v", err)
	}
}

// TestRecordingChangedBetweenPasses is the regression test for the
// pass-two trust gap: the serial streaming analysis reads the file twice
// and used to accept whatever the second read returned. If the recording
// changes between the passes — different sample count or weight — the
// analysis must fail instead of classifying one trace and diagnosing
// another.
func TestRecordingChangedBetweenPasses(t *testing.T) {
	tl := sharedTool(t)
	td, _, _ := recordTo(t, tl, 75, drbw.FormatBinary)

	cases := map[string]*drbw.TraceData{
		"fewer samples":  {Weight: td.Weight, Samples: td.Samples[:len(td.Samples)-1], Objects: td.Objects},
		"changed weight": {Weight: td.Weight + 1, Samples: td.Samples, Objects: td.Objects},
	}
	for name, swapped := range cases {
		dir := t.TempDir()
		sPath := filepath.Join(dir, "samples.csv")
		oPath := filepath.Join(dir, "objects.csv")
		// CSV keeps the analysis on the two-pass serial path.
		if err := td.SaveAs(sPath, oPath, drbw.FormatCSV); err != nil {
			t.Fatal(err)
		}
		restore := drbw.SetTestHookBetweenPasses(func() {
			if err := swapped.SaveAs(sPath, oPath, drbw.FormatCSV); err != nil {
				t.Fatal(err)
			}
		})
		_, err := tl.AnalyzeTraceFile(sPath, oPath)
		restore()
		if err == nil || !strings.Contains(err.Error(), "changed during analysis") {
			t.Errorf("%s: error = %v, want recording-changed", name, err)
		}
	}

	// With no interference the same recording still analyzes fine.
	dir := t.TempDir()
	sPath := filepath.Join(dir, "samples.csv")
	oPath := filepath.Join(dir, "objects.csv")
	if err := td.SaveAs(sPath, oPath, drbw.FormatCSV); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.AnalyzeTraceFile(sPath, oPath); err != nil {
		t.Fatal(err)
	}
}
