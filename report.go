package drbw

import (
	"fmt"
	"strings"

	"drbw/internal/core"
	"drbw/internal/diagnose"
	"drbw/internal/dtree"
)

// ObjectCF is one data object's Contribution Fraction to the detected
// contention (Section VI of the paper).
type ObjectCF struct {
	Name    string  // programmer-visible object name
	Site    string  // allocation site, "func (file:line)"
	CF      float64 // fraction of contended-channel samples on this object
	Samples float64 // estimated true sample count behind the CF
}

// Report is the outcome of analyzing one benchmark case.
type Report struct {
	Bench  string
	Input  string
	Config string // Tt-Nn label

	// Detected is the classifier's verdict: remote memory bandwidth
	// contention on at least one channel.
	Detected bool
	// Channels lists the contended directed channels ("N1->N0").
	Channels []string
	// Objects ranks heap objects by CF across the contended channels.
	Objects []ObjectCF
	// UnattributedCF is the CF share on static/stack data the profiler
	// cannot attribute.
	UnattributedCF float64

	// Samples counts the PEBS samples the verdict was computed from (after
	// any time-range filtering). The run ledger uses it as the audit link
	// between a recording and its report.
	Samples int64

	// Timeline slices the run into equal time windows and tracks remote
	// pressure per window — when the contention happened, not just whether.
	Timeline []TimelinePoint

	// Ground truth, present when the report came from Evaluate.
	Evaluated         bool
	Actual            bool
	InterleaveSpeedup float64
}

// TimelinePoint is one time slice of the profiled run.
type TimelinePoint struct {
	RemoteSamples    float64
	AvgRemoteLatency float64
}

// TimelineSparkline renders the remote-latency-over-time sparkline (one
// rune per slice; blank slices had no remote samples).
func (r *Report) TimelineSparkline() string {
	buckets := make([]diagnose.Bucket, len(r.Timeline))
	for i, p := range r.Timeline {
		buckets[i] = diagnose.Bucket{RemoteSamples: p.RemoteSamples, AvgRemoteLatency: p.AvgRemoteLatency}
	}
	return diagnose.Sparkline(buckets, diagnose.RemoteLatencyMetric)
}

func (r *Report) attachTimeline(buckets []diagnose.Bucket) {
	for _, b := range buckets {
		r.Timeline = append(r.Timeline, TimelinePoint{
			RemoteSamples: b.RemoteSamples, AvgRemoteLatency: b.AvgRemoteLatency,
		})
	}
}

func newReport(cr core.CaseResult, rep *diagnose.Report) *Report {
	r := &Report{
		Bench:             cr.Bench,
		Input:             cr.Cfg.Input,
		Config:            cr.Cfg.Label(),
		Detected:          cr.Detected,
		Evaluated:         cr.Evaluated,
		Actual:            cr.Actual,
		InterleaveSpeedup: cr.InterleaveSpeedup,
	}
	for _, ch := range cr.Contended {
		r.Channels = append(r.Channels, ch.String())
	}
	if rep != nil {
		for _, o := range rep.Overall {
			r.Objects = append(r.Objects, ObjectCF{
				Name: o.Object.Name, Site: o.Object.Site.String(),
				CF: o.CF, Samples: o.Samples,
			})
		}
		r.UnattributedCF = rep.UnattributedCF
	}
	return r
}

// Contended reports the classifier's verdict.
func (r *Report) Contended() bool { return r.Detected }

// TopObjects returns the names of the n highest-CF objects (fewer if the
// ranking is shorter) — the arguments to pass to Tool.Optimize.
func (r *Report) TopObjects(n int) []string {
	var out []string
	for i := 0; i < n && i < len(r.Objects); i++ {
		out = append(out, r.Objects[i].Name)
	}
	return out
}

// String renders the report for terminals.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s: ", r.Bench, r.Input, r.Config)
	if !r.Detected {
		b.WriteString("no remote memory bandwidth contention detected\n")
	} else {
		fmt.Fprintf(&b, "REMOTE BANDWIDTH CONTENTION on %s\n", strings.Join(r.Channels, ", "))
		for _, o := range r.Objects {
			fmt.Fprintf(&b, "  CF %5.1f%%  %-20s %s\n", 100*o.CF, o.Name, o.Site)
		}
		if r.UnattributedCF > 0.005 {
			fmt.Fprintf(&b, "  CF %5.1f%%  %-20s (static/stack, not tracked)\n",
				100*r.UnattributedCF, "<unattributed>")
		}
		if len(r.Timeline) > 0 {
			fmt.Fprintf(&b, "  remote latency over time: [%s]\n", r.TimelineSparkline())
		}
	}
	if r.Evaluated {
		fmt.Fprintf(&b, "  ground truth: actual=%v (interleave speedup %.2fx)\n",
			r.Actual, r.InterleaveSpeedup)
	}
	return b.String()
}

// Confusion is a 2-class confusion matrix with the paper's accuracy
// metrics (rmc is the positive class).
type Confusion struct {
	// GoodGood etc. count (actual, predicted) pairs.
	GoodGood, GoodRMC int
	RMCGood, RMCRMC   int
}

func newConfusion(cm *dtree.ConfusionMatrix) *Confusion {
	return &Confusion{
		GoodGood: cm.Counts[0][0], GoodRMC: cm.Counts[0][1],
		RMCGood: cm.Counts[1][0], RMCRMC: cm.Counts[1][1],
	}
}

// Total is the number of classified instances.
func (c *Confusion) Total() int { return c.GoodGood + c.GoodRMC + c.RMCGood + c.RMCRMC }

// Accuracy is the fraction classified correctly.
func (c *Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.GoodGood+c.RMCRMC) / float64(t)
}

// FalsePositiveRate is the fraction of actual-good instances flagged rmc.
func (c *Confusion) FalsePositiveRate() float64 {
	n := c.GoodGood + c.GoodRMC
	if n == 0 {
		return 0
	}
	return float64(c.GoodRMC) / float64(n)
}

// FalseNegativeRate is the fraction of actual-rmc instances missed.
func (c *Confusion) FalseNegativeRate() float64 {
	n := c.RMCGood + c.RMCRMC
	if n == 0 {
		return 0
	}
	return float64(c.RMCGood) / float64(n)
}

// String renders the matrix like the paper's Table III.
func (c *Confusion) String() string {
	return fmt.Sprintf(
		"actual\\pred      good       rmc\ngood        %9d %9d\nrmc         %9d %9d\naccuracy %.1f%%  FPR %.1f%%  FNR %.1f%%",
		c.GoodGood, c.GoodRMC, c.RMCGood, c.RMCRMC,
		100*c.Accuracy(), 100*c.FalsePositiveRate(), 100*c.FalseNegativeRate())
}
