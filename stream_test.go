package drbw_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"drbw"
)

// recordTo records one contended case and saves it in the given format,
// returning the recording and its file paths.
func recordTo(t *testing.T, tl *drbw.Tool, seed uint64, format drbw.TraceFormat) (*drbw.TraceData, string, string) {
	t.Helper()
	c := drbw.Case{Input: "native", Threads: 32, Nodes: 4, Seed: seed}
	td, err := tl.Record("Streamcluster", c)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ext := ".csv"
	if format == drbw.FormatBinary {
		ext = ".bin"
	}
	sPath := filepath.Join(dir, "samples"+ext)
	oPath := filepath.Join(dir, "objects.csv")
	if err := td.SaveAs(sPath, oPath, format); err != nil {
		t.Fatal(err)
	}
	return td, sPath, oPath
}

// TestSaveAsFormatsLoadIdentically pins the cross-format guarantees:
// binary saves are lossless (a recording loads back bit-identical, where
// CSV quantizes latencies to the 0.1-cycle grid), the two formats agree
// exactly on CSV-representable data, and the binary file is smaller.
func TestSaveAsFormatsLoadIdentically(t *testing.T) {
	tl := sharedTool(t)
	td, csvPath, csvObjects := recordTo(t, tl, 61, drbw.FormatCSV)
	dir := t.TempDir()

	// Binary is lossless: the raw recording survives bit for bit.
	rawBin := filepath.Join(dir, "raw.bin")
	rawObjects := filepath.Join(dir, "raw-objects.csv")
	if err := td.SaveAs(rawBin, rawObjects, drbw.FormatBinary); err != nil {
		t.Fatal(err)
	}
	fromRaw, err := drbw.LoadTrace(rawBin, rawObjects)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromRaw.Samples, td.Samples) {
		t.Fatal("binary save is not lossless")
	}
	if fromRaw.Weight != td.Weight {
		t.Fatalf("weight %v -> %v across binary save", td.Weight, fromRaw.Weight)
	}

	// On CSV-grid data the formats load identically.
	fromCSV, err := drbw.LoadTrace(csvPath, csvObjects)
	if err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "samples.bin")
	binObjects := filepath.Join(dir, "objects.csv")
	if err := fromCSV.SaveAs(binPath, binObjects, drbw.FormatBinary); err != nil {
		t.Fatal(err)
	}
	fromBin, err := drbw.LoadTrace(binPath, binObjects)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromCSV, fromBin) {
		t.Fatal("CSV and binary recordings load differently on grid data")
	}

	ci, err := os.Stat(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := os.Stat(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if bi.Size()*2 > ci.Size() {
		t.Fatalf("binary recording %d bytes vs CSV %d bytes: less than 2x smaller", bi.Size(), ci.Size())
	}

	if err := td.SaveAs(filepath.Join(dir, "x"), filepath.Join(dir, "y"), "parquet"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestAnalyzeTraceFileMatchesSlicePath pins the tentpole equivalence: the
// streaming analysis of a recording on disk — in either format — produces
// a report identical to LoadTrace + AnalyzeTrace, verdicts, features, CF
// ranking, timeline and all.
func TestAnalyzeTraceFileMatchesSlicePath(t *testing.T) {
	tl := sharedTool(t)
	for _, format := range []drbw.TraceFormat{drbw.FormatCSV, drbw.FormatBinary} {
		_, sPath, oPath := recordTo(t, tl, 62, format)

		td, err := drbw.LoadTrace(sPath, oPath)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tl.AnalyzeTrace(td)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tl.AnalyzeTraceFile(sPath, oPath)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: streamed report differs from the slice path\n got %+v\nwant %+v", format, got, want)
		}
		if !got.Contended() {
			t.Fatalf("%s: streaming analysis missed the contention", format)
		}
		if top := got.TopObjects(1); len(top) == 0 || top[0] != "block" {
			t.Errorf("%s: top object = %v, want block", format, top)
		}
	}
}

// TestAnalyzeTraceFilesBatch pins the batch wrapper: per-worker scratch
// reuse must not leak state between recordings, and failures surface as
// a BatchError with partial results.
func TestAnalyzeTraceFilesBatch(t *testing.T) {
	tl := sharedTool(t)
	_, s1, o1 := recordTo(t, tl, 63, drbw.FormatBinary)
	_, s2, o2 := recordTo(t, tl, 64, drbw.FormatCSV)

	paths := []drbw.TracePaths{
		{Samples: s1, Objects: o1},
		{Samples: filepath.Join(t.TempDir(), "missing.bin"), Objects: o1},
		{Samples: s2, Objects: o2},
	}
	reports, err := tl.AnalyzeTraceFiles(paths)
	if err == nil {
		t.Fatal("missing file did not surface an error")
	}
	be, ok := err.(*drbw.BatchError)
	if !ok {
		t.Fatalf("error type %T, want *BatchError", err)
	}
	if len(be.Cases) != 1 || be.Cases[0].Index != 1 {
		t.Fatalf("failed cases = %+v, want exactly index 1", be.Cases)
	}
	if reports[0] == nil || reports[2] == nil || reports[1] != nil {
		t.Fatal("partial results wrong: want reports 0 and 2, nil report 1")
	}

	// Each batch report matches its serial streaming analysis.
	for _, i := range []int{0, 2} {
		want, err := tl.AnalyzeTraceFile(paths[i].Samples, paths[i].Objects)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reports[i], want) {
			t.Fatalf("batch report %d differs from serial streaming analysis", i)
		}
	}
}

// TestAnalyzeTraceFileErrors mirrors AnalyzeTrace's validation on the
// streaming path.
func TestAnalyzeTraceFileErrors(t *testing.T) {
	tl := sharedTool(t)
	dir := t.TempDir()

	// Empty recording.
	empty := &drbw.TraceData{Weight: 1}
	sPath := filepath.Join(dir, "empty.bin")
	oPath := filepath.Join(dir, "empty-objects.csv")
	if err := empty.SaveAs(sPath, oPath, drbw.FormatBinary); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.AnalyzeTraceFile(sPath, oPath); err == nil || err.Error() != "drbw: recording has no samples" {
		t.Fatalf("empty recording error = %v", err)
	}

	// Sample outside the machine's nodes.
	bad := &drbw.TraceData{Weight: 1, Samples: []drbw.SampleRecord{
		{Time: 1, Level: "MEM", Latency: 100, SrcNode: 9, HomeNode: 0},
	}}
	sPath2 := filepath.Join(dir, "bad.bin")
	oPath2 := filepath.Join(dir, "bad-objects.csv")
	if err := bad.SaveAs(sPath2, oPath2, drbw.FormatBinary); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.AnalyzeTraceFile(sPath2, oPath2); err == nil {
		t.Fatal("out-of-range node accepted")
	}

	// Missing files.
	if _, err := tl.AnalyzeTraceFile(filepath.Join(dir, "nope"), oPath); err == nil {
		t.Fatal("missing samples file accepted")
	}
	if _, err := tl.AnalyzeTraceFile(sPath, filepath.Join(dir, "nope")); err == nil {
		t.Fatal("missing objects file accepted")
	}
}
