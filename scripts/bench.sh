#!/usr/bin/env bash
# bench.sh — run the engine-critical benchmarks and snapshot the results.
#
# Usage:
#   scripts/bench.sh [output.json]        # default output: BENCH_engine.json
#
# Environment:
#   BENCHTIME         go test -benchtime value (default 2s; CI uses 1x)
#   MAX_ENGINE_ALLOCS when set, fail if any BenchmarkEngineContendedRun
#                     variant exceeds this many allocs/op (the
#                     allocation-regression gate: allocations must stay O(1)
#                     per window, not per access, with or without workers)
#   MIN_BATCH_SPEEDUP when set, fail if BenchmarkBatchEvaluation's
#                     serial/parallel wall-clock ratio falls below this
#                     value; skipped with a warning on hosts with fewer
#                     than 4 cores, where no speedup is physically possible
#   MAX_BATCH_ALLOC_RATIO when set, fail if BenchmarkBatchEvaluation's
#                     parallel variant allocates more than this multiple of
#                     the serial variant's allocs/op (the per-worker scratch
#                     reuse gate; core-count independent)
#   MIN_DECODE_SPEEDUP when set, fail if the binary trace codec decodes the
#                     1M-sample bench trace less than this many times faster
#                     than CSV (BenchmarkTraceDecode csv/binary ns ratio;
#                     core-count independent)
#   MIN_SHARD_SPEEDUP when set, fail if BenchmarkShardAnalyze's
#                     serial/parallel wall-clock ratio falls below this
#                     value (block-parallel analysis of one indexed
#                     recording); skipped with a warning on hosts with
#                     fewer than 4 cores
#   MIN_CACHE_SPEEDUP when set, fail if a warm result-cache hit on the
#                     1M-sample analysis (BenchmarkAnalyzeCached cold/warm
#                     ns ratio) is less than this many times faster than the
#                     cold compute-and-store run; core-count independent
#   MIN_OPTIMIZER_SPEEDUP when set, fail if the pruned placement search
#                     (BenchmarkOptimizerSearch pruned: analytic frontier +
#                     branch-and-bound cycle budget, parallel waves) is less
#                     than this many times faster than the serial exhaustive
#                     search; skipped with a warning on hosts with fewer
#                     than 4 cores, where the parallel waves degenerate
#   MIN_SINGLEPASS_SPEEDUP when set, fail if the fused single-pass analysis
#                     of the 1M-sample indexed recording is less than this
#                     many times faster than the retained two-pass path
#                     (BenchmarkAnalyzeSinglePass twopass/singlepass ns
#                     ratio; both variants run in one process, so the ratio
#                     is core-count independent and never skipped)
#   LEDGER_OUT        when set, also run a quick drbw-bench pass with
#                     -ledger here, stamping the bench host with a
#                     machine-readable drbw.ledger/1 audit record (config
#                     hash, build info, timings, metrics snapshot) next to
#                     the benchmark numbers
#
# The benchmarks tracked here cover the simulation hot path end to end plus
# the offline trace pipeline: a full contended engine run, the batch
# evaluation sweep built on it, the raw cache-hierarchy access loop, trace
# generation, the CSV-vs-binary trace decode pair, the slice-vs-stream
# analysis of a 1M-sample recording, and the fused single-pass vs two-pass
# analysis pair. The committed BENCH_engine.json records the trajectory;
# the "baseline" block holds the pre-fast-path numbers the 2x acceptance
# bar is measured against. Every speedup block carries the host's core
# count and a "gated" flag saying whether its gate enforces on that host
# (core-dependent ratios degenerate below 4 cores and are skipped there).
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_engine.json}
benchtime=${BENCHTIME:-2s}
pattern='^(BenchmarkEngineContendedRun|BenchmarkBatchEvaluation|BenchmarkCacheHierarchyAccess|BenchmarkStreamGeneration|BenchmarkTraceDecode|BenchmarkAnalyzeTrace|BenchmarkAnalyzeSinglePass|BenchmarkAnalyzeCached|BenchmarkShardAnalyze|BenchmarkOptimizerSearch)$'

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem . | tee "$raw"

cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

awk -v out="$out" -v cores="$cores" '
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")      ns = $(i-1)
        if ($i == "B/op")       bytes = $(i-1)
        if ($i == "allocs/op")  allocs = $(i-1)
        if ($i == "csv-size-x") sizeratio = $(i-1)
        if ($i == "placement-speedup-x") placement = $(i-1)
    }
    names[++n] = name
    nsv[name] = ns; bv[name] = bytes; av[name] = allocs
}
END {
    printf "{\n" > out
    printf "  \"cores\": %d,\n", cores >> out
    printf "  \"baseline\": {\n" >> out
    printf "    \"comment\": \"pre-fast-path numbers (map-keyed accounting, per-access allocation); 2.10GHz Xeon\",\n" >> out
    printf "    \"BenchmarkEngineContendedRun\": {\"ns_per_op\": 17740826, \"bytes_per_op\": 24712849, \"allocs_per_op\": 1364},\n" >> out
    printf "    \"BenchmarkCacheHierarchyAccess\": {\"ns_per_op\": 108.3},\n" >> out
    printf "    \"BenchmarkStreamGeneration\": {\"ns_per_op\": 2.423}\n" >> out
    printf "  },\n" >> out
    # Every speedup block records the core count it was measured on and a
    # "gated" flag: true when the matching MIN_* gate enforces on this
    # host, false when the ratio is core-dependent and the host has too
    # few cores for the gate to be meaningful (the gate skips there).
    coregated = (cores >= 4) ? "true" : "false"
    # parallel_speedup: serial/parallel wall-clock ratios. batch is the
    # cross-run pool (BenchmarkBatchEvaluation), window is one run sharded
    # across workers (BenchmarkEngineContendedRun workers=1 vs workers=max),
    # shard is the block-parallel analysis of one indexed recording
    # (BenchmarkShardAnalyze). All degenerate to ~1.0 on a single-core host.
    bs = nsv["BenchmarkBatchEvaluation/serial"]
    bp = nsv["BenchmarkBatchEvaluation/parallel"]
    w1 = nsv["BenchmarkEngineContendedRun/workers=1"]
    wm = nsv["BenchmarkEngineContendedRun/workers=max"]
    ss = nsv["BenchmarkShardAnalyze/serial"]
    sp = nsv["BenchmarkShardAnalyze/parallel"]
    printf "  \"parallel_speedup\": {\"cores\": %d, \"gated\": %s", cores, coregated >> out
    if (bs != "" && bp != "" && bp + 0 > 0) {
        printf ", \"batch\": %.2f", bs / bp >> out
    }
    if (w1 != "" && wm != "" && wm + 0 > 0) {
        printf ", \"window\": %.2f", w1 / wm >> out
    }
    if (ss != "" && sp != "" && sp + 0 > 0) {
        printf ", \"shard\": %.2f", ss / sp >> out
    }
    printf "},\n" >> out
    # trace_codec: binary-vs-CSV decode speedup and file-size ratio on the
    # 1M-sample bench trace, plus the slice-vs-stream analysis ratio.
    # Core-count independent, so the gate always enforces.
    dc = nsv["BenchmarkTraceDecode/csv"]
    db = nsv["BenchmarkTraceDecode/binary"]
    as = nsv["BenchmarkAnalyzeTrace/slice"]
    at = nsv["BenchmarkAnalyzeTrace/stream"]
    printf "  \"trace_codec\": {\"cores\": %d, \"gated\": true", cores >> out
    if (dc != "" && db != "" && db + 0 > 0) {
        printf ", \"decode_speedup\": %.2f", dc / db >> out
    }
    if (sizeratio != "") {
        printf ", \"csv_size_ratio\": %s", sizeratio >> out
    }
    if (as != "" && at != "" && at + 0 > 0) {
        printf ", \"stream_vs_slice\": %.2f", as / at >> out
    }
    printf "},\n" >> out
    # optimizer: the closed-loop placement search. pruned_speedup is the
    # serial-exhaustive/pruned wall-clock ratio (frontier + cycle budget +
    # parallel waves); parallel_speedup isolates the wave parallelism
    # (exhaustive serial vs exhaustive parallel); placement_speedup is the
    # simulated gain of the placement the search chose. cores is recorded
    # beside the ratios because both collapse toward the pruning-only
    # fraction on few-core hosts.
    os = nsv["BenchmarkOptimizerSearch/serial"]
    op = nsv["BenchmarkOptimizerSearch/parallel"]
    og = nsv["BenchmarkOptimizerSearch/pruned"]
    printf "  \"optimizer\": {\"cores\": %d, \"gated\": %s", cores, coregated >> out
    if (os != "" && og != "" && og + 0 > 0) {
        printf ", \"pruned_speedup\": %.2f", os / og >> out
    }
    if (os != "" && op != "" && op + 0 > 0) {
        printf ", \"parallel_speedup\": %.2f", os / op >> out
    }
    if (placement != "") {
        printf ", \"placement_speedup\": %s", placement >> out
    }
    printf "},\n" >> out
    # cache: the content-addressed result cache on the 1M-sample analysis.
    # warm_speedup is the cold (compute + store) over warm (fingerprint +
    # hit) wall-clock ratio; core-count independent, so always gated.
    cc = nsv["BenchmarkAnalyzeCached/cold"]
    cw = nsv["BenchmarkAnalyzeCached/warm"]
    printf "  \"cache\": {\"cores\": %d, \"gated\": true", cores >> out
    if (cc != "") { printf ", \"cold_ns\": %s", cc >> out }
    if (cw != "") { printf ", \"warm_ns\": %s", cw >> out }
    if (cc != "" && cw != "" && cw + 0 > 0) {
        printf ", \"warm_speedup\": %.2f", cc / cw >> out
    }
    printf "},\n" >> out
    # singlepass: the fused single-pass analysis of the indexed 1M-sample
    # recording against the retained two-pass path. Both variants run in
    # one process, so the ratio is core-count independent and always
    # gated; the reports are bit-identical.
    f1 = nsv["BenchmarkAnalyzeSinglePass/singlepass"]
    f2 = nsv["BenchmarkAnalyzeSinglePass/twopass"]
    printf "  \"singlepass\": {\"cores\": %d, \"gated\": true", cores >> out
    if (f1 != "") { printf ", \"singlepass_ns\": %s", f1 >> out }
    if (f2 != "") { printf ", \"twopass_ns\": %s", f2 >> out }
    if (f1 != "" && f2 != "" && f1 + 0 > 0) {
        printf ", \"speedup\": %.2f", f2 / f1 >> out
    }
    printf "},\n" >> out
    printf "  \"benchmarks\": {\n" >> out
    for (i = 1; i <= n; i++) {
        name = names[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, nsv[name] >> out
        if (bv[name] != "") printf ", \"bytes_per_op\": %s", bv[name] >> out
        if (av[name] != "") printf ", \"allocs_per_op\": %s", av[name] >> out
        printf "}%s\n", (i < n ? "," : "") >> out
    }
    printf "  }\n}\n" >> out
}
' "$raw"

echo "wrote $out"

if [ -n "${LEDGER_OUT:-}" ]; then
    go run ./cmd/drbw-bench -quick -exp tableI -ledger "$LEDGER_OUT" >/dev/null
    echo "wrote $LEDGER_OUT"
fi

if [ -n "${MAX_ENGINE_ALLOCS:-}" ]; then
    # Worst variant across worker settings: the gate must hold for the
    # serial path AND with the parallel window's extra bookkeeping.
    allocs=$(awk '/^BenchmarkEngineContendedRun/ {
        for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
    }' "$raw" | sort -n | tail -1)
    if [ -z "$allocs" ]; then
        echo "allocation gate: BenchmarkEngineContendedRun not found in output" >&2
        exit 1
    fi
    if [ "$allocs" -gt "$MAX_ENGINE_ALLOCS" ]; then
        echo "allocation gate: BenchmarkEngineContendedRun at $allocs allocs/op (limit $MAX_ENGINE_ALLOCS)" >&2
        exit 1
    fi
    echo "allocation gate: $allocs allocs/op <= $MAX_ENGINE_ALLOCS (worst worker variant)"
fi

if [ -n "${MIN_BATCH_SPEEDUP:-}" ]; then
    if [ "$cores" -lt 4 ]; then
        echo "speedup gate: skipped ($cores cores; needs >= 4 for a meaningful ratio)" >&2
    else
        speedup=$(awk '
        /^BenchmarkBatchEvaluation\/serial/   { for (i = 2; i <= NF; i++) if ($i == "ns/op") s = $(i-1) }
        /^BenchmarkBatchEvaluation\/parallel/ { for (i = 2; i <= NF; i++) if ($i == "ns/op") p = $(i-1) }
        END { if (s != "" && p != "" && p + 0 > 0) printf "%.2f", s / p }
        ' "$raw")
        if [ -z "$speedup" ]; then
            echo "speedup gate: BenchmarkBatchEvaluation serial/parallel not found in output" >&2
            exit 1
        fi
        if awk -v s="$speedup" -v min="$MIN_BATCH_SPEEDUP" 'BEGIN { exit !(s < min) }'; then
            echo "speedup gate: batch speedup ${speedup}x below minimum ${MIN_BATCH_SPEEDUP}x on $cores cores" >&2
            exit 1
        fi
        echo "speedup gate: batch speedup ${speedup}x >= ${MIN_BATCH_SPEEDUP}x"
    fi
fi

if [ -n "${MAX_BATCH_ALLOC_RATIO:-}" ]; then
    ratio=$(awk '
    /^BenchmarkBatchEvaluation\/serial/   { for (i = 2; i <= NF; i++) if ($i == "allocs/op") s = $(i-1) }
    /^BenchmarkBatchEvaluation\/parallel/ { for (i = 2; i <= NF; i++) if ($i == "allocs/op") p = $(i-1) }
    END { if (s != "" && p != "" && s + 0 > 0) printf "%.3f", p / s }
    ' "$raw")
    if [ -z "$ratio" ]; then
        echo "alloc-ratio gate: BenchmarkBatchEvaluation serial/parallel allocs not found in output" >&2
        exit 1
    fi
    if awk -v r="$ratio" -v max="$MAX_BATCH_ALLOC_RATIO" 'BEGIN { exit !(r > max) }'; then
        echo "alloc-ratio gate: parallel batch allocates ${ratio}x the serial sweep (limit ${MAX_BATCH_ALLOC_RATIO}x)" >&2
        exit 1
    fi
    echo "alloc-ratio gate: parallel/serial allocs ${ratio}x <= ${MAX_BATCH_ALLOC_RATIO}x"
fi

if [ -n "${MIN_DECODE_SPEEDUP:-}" ]; then
    dspeed=$(awk '
    /^BenchmarkTraceDecode\/csv/    { for (i = 2; i <= NF; i++) if ($i == "ns/op") c = $(i-1) }
    /^BenchmarkTraceDecode\/binary/ { for (i = 2; i <= NF; i++) if ($i == "ns/op") b = $(i-1) }
    END { if (c != "" && b != "" && b + 0 > 0) printf "%.2f", c / b }
    ' "$raw")
    if [ -z "$dspeed" ]; then
        echo "decode gate: BenchmarkTraceDecode csv/binary not found in output" >&2
        exit 1
    fi
    if awk -v s="$dspeed" -v min="$MIN_DECODE_SPEEDUP" 'BEGIN { exit !(s < min) }'; then
        echo "decode gate: binary decode ${dspeed}x faster than CSV, below minimum ${MIN_DECODE_SPEEDUP}x" >&2
        exit 1
    fi
    echo "decode gate: binary decode ${dspeed}x >= ${MIN_DECODE_SPEEDUP}x faster than CSV"
fi

if [ -n "${MIN_SHARD_SPEEDUP:-}" ]; then
    if [ "$cores" -lt 4 ]; then
        echo "shard gate: skipped ($cores cores; needs >= 4 for a meaningful ratio)" >&2
    else
        sspeed=$(awk '
        /^BenchmarkShardAnalyze\/serial/   { for (i = 2; i <= NF; i++) if ($i == "ns/op") s = $(i-1) }
        /^BenchmarkShardAnalyze\/parallel/ { for (i = 2; i <= NF; i++) if ($i == "ns/op") p = $(i-1) }
        END { if (s != "" && p != "" && p + 0 > 0) printf "%.2f", s / p }
        ' "$raw")
        if [ -z "$sspeed" ]; then
            echo "shard gate: BenchmarkShardAnalyze serial/parallel not found in output" >&2
            exit 1
        fi
        if awk -v s="$sspeed" -v min="$MIN_SHARD_SPEEDUP" 'BEGIN { exit !(s < min) }'; then
            echo "shard gate: shard speedup ${sspeed}x below minimum ${MIN_SHARD_SPEEDUP}x on $cores cores" >&2
            exit 1
        fi
        echo "shard gate: shard speedup ${sspeed}x >= ${MIN_SHARD_SPEEDUP}x"
    fi
fi

if [ -n "${MIN_CACHE_SPEEDUP:-}" ]; then
    # No core-count skip: a cache hit beats recomputation on any host.
    cspeed=$(awk '
    /^BenchmarkAnalyzeCached\/cold/ { for (i = 2; i <= NF; i++) if ($i == "ns/op") c = $(i-1) }
    /^BenchmarkAnalyzeCached\/warm/ { for (i = 2; i <= NF; i++) if ($i == "ns/op") w = $(i-1) }
    END { if (c != "" && w != "" && w + 0 > 0) printf "%.2f", c / w }
    ' "$raw")
    if [ -z "$cspeed" ]; then
        echo "cache gate: BenchmarkAnalyzeCached cold/warm not found in output" >&2
        exit 1
    fi
    if awk -v s="$cspeed" -v min="$MIN_CACHE_SPEEDUP" 'BEGIN { exit !(s < min) }'; then
        echo "cache gate: warm hit ${cspeed}x faster than cold, below minimum ${MIN_CACHE_SPEEDUP}x" >&2
        exit 1
    fi
    echo "cache gate: warm hit ${cspeed}x >= ${MIN_CACHE_SPEEDUP}x faster than cold"
fi

if [ -n "${MIN_SINGLEPASS_SPEEDUP:-}" ]; then
    # No core-count skip: both variants run in the same process on the same
    # host, so the ratio is meaningful on any core count.
    fspeed=$(awk '
    /^BenchmarkAnalyzeSinglePass\/singlepass/ { for (i = 2; i <= NF; i++) if ($i == "ns/op") f = $(i-1) }
    /^BenchmarkAnalyzeSinglePass\/twopass/    { for (i = 2; i <= NF; i++) if ($i == "ns/op") t = $(i-1) }
    END { if (f != "" && t != "" && f + 0 > 0) printf "%.2f", t / f }
    ' "$raw")
    if [ -z "$fspeed" ]; then
        echo "singlepass gate: BenchmarkAnalyzeSinglePass singlepass/twopass not found in output" >&2
        exit 1
    fi
    if awk -v s="$fspeed" -v min="$MIN_SINGLEPASS_SPEEDUP" 'BEGIN { exit !(s < min) }'; then
        echo "singlepass gate: fused analysis ${fspeed}x faster than two-pass, below minimum ${MIN_SINGLEPASS_SPEEDUP}x" >&2
        exit 1
    fi
    echo "singlepass gate: fused analysis ${fspeed}x >= ${MIN_SINGLEPASS_SPEEDUP}x faster than two-pass"
fi

if [ -n "${MIN_OPTIMIZER_SPEEDUP:-}" ]; then
    if [ "$cores" -lt 4 ]; then
        echo "optimizer gate: skipped ($cores cores; needs >= 4 for a meaningful ratio)" >&2
    else
        ospeed=$(awk '
        /^BenchmarkOptimizerSearch\/serial/ { for (i = 2; i <= NF; i++) if ($i == "ns/op") s = $(i-1) }
        /^BenchmarkOptimizerSearch\/pruned/ { for (i = 2; i <= NF; i++) if ($i == "ns/op") p = $(i-1) }
        END { if (s != "" && p != "" && p + 0 > 0) printf "%.2f", s / p }
        ' "$raw")
        if [ -z "$ospeed" ]; then
            echo "optimizer gate: BenchmarkOptimizerSearch serial/pruned not found in output" >&2
            exit 1
        fi
        if awk -v s="$ospeed" -v min="$MIN_OPTIMIZER_SPEEDUP" 'BEGIN { exit !(s < min) }'; then
            echo "optimizer gate: pruned search ${ospeed}x faster than exhaustive serial, below minimum ${MIN_OPTIMIZER_SPEEDUP}x on $cores cores" >&2
            exit 1
        fi
        echo "optimizer gate: pruned search ${ospeed}x >= ${MIN_OPTIMIZER_SPEEDUP}x faster than exhaustive serial"
    fi
fi
