#!/usr/bin/env bash
# bench.sh — run the engine-critical benchmarks and snapshot the results.
#
# Usage:
#   scripts/bench.sh [output.json]        # default output: BENCH_engine.json
#
# Environment:
#   BENCHTIME         go test -benchtime value (default 2s; CI uses 1x)
#   MAX_ENGINE_ALLOCS when set, fail if BenchmarkEngineContendedRun exceeds
#                     this many allocs/op (the allocation-regression gate:
#                     allocations must stay O(1) per window, not per access)
#
# The four benchmarks tracked here cover the simulation hot path end to end:
# a full contended engine run, the batch evaluation sweep built on it, the
# raw cache-hierarchy access loop, and trace generation. The committed
# BENCH_engine.json records the trajectory; the "baseline" block holds the
# pre-fast-path numbers the 2x acceptance bar is measured against.
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_engine.json}
benchtime=${BENCHTIME:-2s}
pattern='^(BenchmarkEngineContendedRun|BenchmarkBatchEvaluation|BenchmarkCacheHierarchyAccess|BenchmarkStreamGeneration)$'

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem . | tee "$raw"

awk -v out="$out" '
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    names[++n] = name
    nsv[name] = ns; bv[name] = bytes; av[name] = allocs
}
END {
    printf "{\n" > out
    printf "  \"baseline\": {\n" >> out
    printf "    \"comment\": \"pre-fast-path numbers (map-keyed accounting, per-access allocation); 2.10GHz Xeon\",\n" >> out
    printf "    \"BenchmarkEngineContendedRun\": {\"ns_per_op\": 17740826, \"bytes_per_op\": 24712849, \"allocs_per_op\": 1364},\n" >> out
    printf "    \"BenchmarkCacheHierarchyAccess\": {\"ns_per_op\": 108.3},\n" >> out
    printf "    \"BenchmarkStreamGeneration\": {\"ns_per_op\": 2.423}\n" >> out
    printf "  },\n" >> out
    printf "  \"benchmarks\": {\n" >> out
    for (i = 1; i <= n; i++) {
        name = names[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, nsv[name] >> out
        if (bv[name] != "") printf ", \"bytes_per_op\": %s", bv[name] >> out
        if (av[name] != "") printf ", \"allocs_per_op\": %s", av[name] >> out
        printf "}%s\n", (i < n ? "," : "") >> out
    }
    printf "  }\n}\n" >> out
}
' "$raw"

echo "wrote $out"

if [ -n "${MAX_ENGINE_ALLOCS:-}" ]; then
    allocs=$(awk '/^BenchmarkEngineContendedRun/ {
        for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
    }' "$raw" | head -1)
    if [ -z "$allocs" ]; then
        echo "allocation gate: BenchmarkEngineContendedRun not found in output" >&2
        exit 1
    fi
    if [ "$allocs" -gt "$MAX_ENGINE_ALLOCS" ]; then
        echo "allocation gate: BenchmarkEngineContendedRun at $allocs allocs/op (limit $MAX_ENGINE_ALLOCS)" >&2
        exit 1
    fi
    echo "allocation gate: $allocs allocs/op <= $MAX_ENGINE_ALLOCS"
fi
