package drbw

import (
	"encoding/json"
	"fmt"
	"os"

	"drbw/internal/topology"
)

// MachineSpec describes a custom NUMA machine for TrainOn. It mirrors what
// `lscpu`, `numactl --hardware` and vendor datasheets provide; bandwidths
// are bytes per CPU cycle (GB/s divided by core GHz) and latencies are
// core cycles.
type MachineSpec struct {
	Name           string  `json:"name"`
	Nodes          int     `json:"nodes"`
	CoresPerNode   int     `json:"cores_per_node"`
	ThreadsPerCore int     `json:"threads_per_core"` // 1 or 2
	LocalBW        float64 `json:"local_bw"`         // memory controller, bytes/cycle
	RemoteBW       float64 `json:"remote_bw"`        // default inter-socket link, bytes/cycle
	// LinkOverrides sets asymmetric per-direction link bandwidths, keyed
	// "src->dst" (e.g. "1->0").
	LinkOverrides map[string]float64 `json:"link_overrides,omitempty"`
	// Latencies in cycles; zero fields take E5-4650-like defaults.
	L1Latency         float64 `json:"l1_latency,omitempty"`
	L2Latency         float64 `json:"l2_latency,omitempty"`
	L3Latency         float64 `json:"l3_latency,omitempty"`
	LFBLatency        float64 `json:"lfb_latency,omitempty"`
	LocalDRAMLatency  float64 `json:"local_dram_latency,omitempty"`
	RemoteDRAMLatency float64 `json:"remote_dram_latency,omitempty"`
}

func (s MachineSpec) build() (*topology.Machine, error) {
	lat := topology.Latencies{
		L1: s.L1Latency, L2: s.L2Latency, L3: s.L3Latency, LFB: s.LFBLatency,
		LocalDRAM: s.LocalDRAMLatency, RemoteDRAM: s.RemoteDRAMLatency,
	}
	if lat.L1 == 0 {
		lat.L1 = 4
	}
	if lat.L2 == 0 {
		lat.L2 = 12
	}
	if lat.L3 == 0 {
		lat.L3 = 38
	}
	if lat.LFB == 0 {
		lat.LFB = 120
	}
	if lat.LocalDRAM == 0 {
		lat.LocalDRAM = 230
	}
	if lat.RemoteDRAM == 0 {
		lat.RemoteDRAM = 360
	}
	overrides := map[topology.Channel]float64{}
	for key, bw := range s.LinkOverrides {
		var src, dst int
		if _, err := fmt.Sscanf(key, "%d->%d", &src, &dst); err != nil {
			return nil, fmt.Errorf("drbw: link override key %q, want \"src->dst\"", key)
		}
		overrides[topology.Channel{Src: topology.NodeID(src), Dst: topology.NodeID(dst)}] = bw
	}
	threadsPerCore := s.ThreadsPerCore
	if threadsPerCore == 0 {
		threadsPerCore = 1
	}
	name := s.Name
	if name == "" {
		name = fmt.Sprintf("custom %d-node machine", s.Nodes)
	}
	return topology.New(topology.Config{
		Name:             name,
		Nodes:            s.Nodes,
		CoresPerNode:     s.CoresPerNode,
		ThreadsPerCore:   threadsPerCore,
		LocalBW:          s.LocalBW,
		RemoteBW:         s.RemoteBW,
		RemoteBWOverride: overrides,
		Latencies:        lat,
		LineSize:         64,
		PageSize:         4096,
		HugePageSize:     2 << 20,
	})
}

// LoadMachineSpec reads a MachineSpec from a JSON file.
func LoadMachineSpec(path string) (MachineSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return MachineSpec{}, fmt.Errorf("drbw: %w", err)
	}
	var s MachineSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return MachineSpec{}, fmt.Errorf("drbw: parsing machine spec %s: %w", path, err)
	}
	return s, nil
}

// TrainOn is Train for a custom machine described by spec: the training
// micro benchmarks run on that machine, so the learned thresholds reflect
// its link bandwidths and latencies. Training configurations that exceed
// the machine's thread count are skipped (a 2-node machine cannot run
// T64-N4), so small machines train on fewer runs.
func TrainOn(spec MachineSpec, cfg Config) (*Tool, error) {
	m, err := spec.build()
	if err != nil {
		return nil, err
	}
	return trainOnMachine(m, cfg)
}

// AnalyzeOn runs one custom workload on a custom machine with a tool
// trained for that machine.
func (t *Tool) MachineName() string { return t.machine.Name() }
