package engine

import (
	"testing"

	"drbw/internal/memsim"
	"drbw/internal/obs"
	"drbw/internal/pebs"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

// snapDelta reads the change in a named counter between two snapshots.
func snapDelta(before, after obs.Snapshot, name string) int64 {
	return after.Counters[name] - before.Counters[name]
}

// TestMetricsReconcileWithResult runs one profiled simulation and checks
// that the observability counters merged at the phase boundary reconcile
// exactly with the run's ground truth: window accesses against the
// configured window, per-level hits against the access total, and emitted
// samples against the collector's own kept/dropped accounting.
func TestMetricsReconcileWithResult(t *testing.T) {
	m := topology.XeonE5_4650()
	const threads, nodes = 8, 2
	cfg := testConfig(7)
	col := pebs.NewCollector(pebs.Config{Period: 200}, 7)
	cfg.Collector = col

	as, ph, _, _ := scanWorkload(t, m, threads, memsim.BindTo(0), 2e6)
	e, err := New(m, as, smallCaches(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	bind, err := EvenBinding(m, threads, nodes)
	if err != nil {
		t.Fatal(err)
	}

	before := obs.Default.Snapshot()
	res, err := e.Run([]trace.Phase{ph}, bind)
	if err != nil {
		t.Fatal(err)
	}
	after := obs.Default.Snapshot()

	if d := snapDelta(before, after, "engine.runs"); d != 1 {
		t.Fatalf("engine.runs delta = %d, want 1", d)
	}
	if d := snapDelta(before, after, "engine.phases"); d != int64(len(res.Phases)) {
		t.Fatalf("engine.phases delta = %d, want %d", d, len(res.Phases))
	}
	// Every active thread is profiled for exactly Window accesses per phase
	// (and driven through Warmup more that are not profiled).
	wantAcc := int64(threads) * int64(cfg.Window) * int64(len(res.Phases))
	if d := snapDelta(before, after, "engine.window.accesses"); d != wantAcc {
		t.Fatalf("engine.window.accesses delta = %d, want %d", d, wantAcc)
	}
	wantWarm := int64(threads) * int64(cfg.Warmup) * int64(len(res.Phases))
	if d := snapDelta(before, after, "engine.window.warmup_accesses"); d != wantWarm {
		t.Fatalf("engine.window.warmup_accesses delta = %d, want %d", d, wantWarm)
	}
	// The per-level hit counters partition the access total.
	var levels int64
	for _, name := range []string{
		"engine.window.hits.l1", "engine.window.hits.l2", "engine.window.hits.l3",
		"engine.window.hits.lfb", "engine.window.hits.mem",
	} {
		levels += snapDelta(before, after, name)
	}
	if levels != wantAcc {
		t.Fatalf("per-level hits sum to %d, want %d", levels, wantAcc)
	}
	// Every emitted sample reached the collector, which either kept it or
	// dropped it below the latency threshold.
	st := col.Stats()
	if d := snapDelta(before, after, "engine.samples.emitted"); d != int64(st.Total+st.DroppedThreshold) {
		t.Fatalf("engine.samples.emitted delta = %d, want total %d + dropped %d",
			d, st.Total, st.DroppedThreshold)
	}
	if st.Kept+st.Evicted != st.Total {
		t.Fatalf("collector stats inconsistent: %+v", st)
	}
	if d := snapDelta(before, after, "engine.integrate.epochs"); d <= 0 {
		t.Fatal("engine.integrate.epochs did not advance")
	}
	// Phase-boundary utilization gauges: the process-wide peak gauge must
	// be at least this run's peak on every channel that carried traffic.
	for ch, stats := range res.Phases[0].Channels {
		g := after.Gauges["engine.channel.peak_util."+ch.String()]
		if g+1e-12 < stats.PeakUtil {
			t.Fatalf("peak_util gauge %s = %g below run peak %g", ch, g, stats.PeakUtil)
		}
	}
}

// TestReferencePathRecordsNoMetrics pins the contract that the map-based
// equivalence oracle stays un-instrumented.
func TestReferencePathRecordsNoMetrics(t *testing.T) {
	m := topology.XeonE5_4650()
	cfg := testConfig(3)
	cfg.Reference = true
	as, ph, _, _ := scanWorkload(t, m, 4, memsim.BindTo(0), 1e6)
	e, err := New(m, as, smallCaches(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	bind, err := EvenBinding(m, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := obs.Default.Snapshot()
	if _, err := e.Run([]trace.Phase{ph}, bind); err != nil {
		t.Fatal(err)
	}
	after := obs.Default.Snapshot()
	for _, name := range []string{"engine.runs", "engine.phases", "engine.window.accesses"} {
		if d := snapDelta(before, after, name); d != 0 {
			t.Fatalf("%s delta = %d on the reference path, want 0", name, d)
		}
	}
}
