// Parallel window execution.
//
// The serial window (windowSerial) interleaves every active thread
// round-robin through one goroutine. This file runs the same window on
// multiple cores while staying bit-identical to that interleave, which is
// possible because of how the simulated state partitions:
//
//   - L1/L2/LFB/prefetcher state is per core, the L3 per node, and a core
//     belongs to exactly one node — so threads bound to different nodes
//     share no cache state at all. Restricted to one node, the serial
//     interleave order equals the node-group's own round-robin order, so a
//     group replaying its threads in act order reproduces the exact access
//     sequence every one of its caches saw.
//   - Streams, reservoirs and the per-channel counters are per thread.
//   - The only cross-node coupling is first-touch page resolution in
//     memsim: the first MEM/LFB access to an untouched page claims it for
//     the accessor's node, and later accesses from any node observe that
//     choice.
//
// So the window shards into per-node thread groups that run concurrently
// against a read-only memsim.Reader. A group that would first-touch a page
// instead records a claim carrying the access's global interleave position
// (step*len(act) + thread position) and provisionally homes the page on its
// own node. After the groups join, claims are arbitrated: the globally
// earliest claim is exactly the access that first-touches the page in the
// serial interleave, so it wins and is committed through Touch. Losing
// groups are patched: every one of their accesses to a lost page happened
// after their own first claim, which happened after the winner's — so in
// the serial order all of them would have seen the winner's home. The
// patch re-homes the affected per-channel integer counts and reservoir
// records; nothing else in the window depends on homes, and no floating
// point is accumulated before the (serial) profile-building tail, so the
// result is bit-identical to windowSerial at any worker count.
package engine

import (
	"runtime"
	"sort"
	"sync"

	"drbw/internal/cache"
	"drbw/internal/topology"
)

// windowWorkers resolves Config.Workers (0 = GOMAXPROCS, 1 = serial).
func (e *Engine) windowWorkers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// windowGroups partitions the active threads of one window by bound node,
// preserving act order inside each group. It returns nil when the serial
// path should run instead: one worker requested, or all threads on one
// node (a single group would just replay windowSerial with extra setup).
func (e *Engine) windowGroups(act []winThread) [][]int {
	if e.windowWorkers() <= 1 || len(act) < 2 {
		return nil
	}
	byNode := make([][]int, e.nn)
	for i := range act {
		n := int(act[i].node)
		byNode[n] = append(byNode[n], i)
	}
	groups := byNode[:0]
	for _, g := range byNode {
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}
	if len(groups) < 2 {
		return nil
	}
	return groups
}

// ftRisk accumulates the post-warmup accounting one thread charged against
// a provisionally claimed page, so a lost arbitration can re-home exactly
// those counts.
type ftRisk struct {
	mem, lfb, traf int32
}

// ftClaim is one group's provisional first touch of a page.
type ftClaim struct {
	// order is the global interleave position of the group's first access
	// to the page: step*len(act) + position in act. The minimum across
	// groups identifies the access that first-touches the page serially.
	order      uint64
	start, end uint64 // page bounds
	risk       []ftRisk
}

// winGroup is the per-node execution state of one parallel window.
type winGroup struct {
	node     topology.NodeID
	threads  []int // indices into act, in act order
	claims   map[uint64]*ftClaim
	err      error
	panicked any
}

// claim returns the group's claim for the page starting at start, creating
// it with the given order on first access.
func (g *winGroup) claim(start, end, order uint64) *ftClaim {
	if g.claims == nil {
		g.claims = make(map[uint64]*ftClaim, 8)
	}
	c := g.claims[start]
	if c == nil {
		c = &ftClaim{order: order, start: start, end: end, risk: make([]ftRisk, len(g.threads))}
		g.claims[start] = c
	}
	return c
}

// windowParallel executes one window across per-node thread groups and
// merges the first-touch claims. It produces exactly the state windowSerial
// would leave in act and in the address space.
func (e *Engine) windowParallel(act []winThread, groups [][]int) error {
	gs := make([]winGroup, len(groups))
	for gi, th := range groups {
		gs[gi] = winGroup{node: act[th[0]].node, threads: th}
	}
	workers := e.windowWorkers()
	if workers > len(gs) {
		workers = len(gs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for gi := w; gi < len(gs); gi += workers {
				gs[gi].run(e, act)
			}
		}(w)
	}
	wg.Wait()
	for gi := range gs {
		if gs[gi].panicked != nil {
			panic(gs[gi].panicked)
		}
	}
	for gi := range gs {
		if gs[gi].err != nil {
			return gs[gi].err
		}
	}
	e.mergeFirstTouch(act, gs)
	return nil
}

// run drives one group's threads through the whole window. It mirrors
// windowSerial line for line, with HomeFor replaced by the read-only
// Resolve plus group-local claims.
func (g *winGroup) run(e *Engine, act []winThread) {
	defer func() {
		if p := recover(); p != nil {
			g.panicked = p
		}
	}()
	warmup := e.cfg.Warmup
	total := warmup + e.cfg.Window
	hier, seed := e.hier, e.cfg.Seed
	rsz := e.cfg.ReservoirSize
	nn := e.nn
	rd := e.space.NewReader()
	stride := uint64(len(act))
	// Per-thread last-claim memo: sequential streams hit the same page many
	// times in a row, so the map lookup is nearly always redundant.
	lastStart := make([]uint64, len(g.threads))
	lastClaim := make([]*ftClaim, len(g.threads))

	for step := 0; step < warmup; step++ {
		for li, ti := range g.threads {
			t := &act[ti]
			if t.bpos == t.blen {
				if err := t.refill(seed, step); err != nil {
					g.err = err
					return
				}
			}
			a := &t.buf[t.bpos]
			t.bpos++
			r := hier.AccessOn(t.core, t.node, a.Addr)
			if r.Level == cache.MEM || r.Level == cache.LFB {
				h, start, end := rd.Resolve(a.Addr, t.node)
				if h == topology.InvalidNode && end != 0 {
					// Would-be first touch; no accounting during warmup, but
					// the claim order must be registered.
					if lastClaim[li] == nil || start != lastStart[li] {
						lastClaim[li] = g.claim(start, end, uint64(step)*stride+uint64(ti))
						lastStart[li] = start
					}
				}
			}
		}
	}
	for step := warmup; step < total; step++ {
		for li, ti := range g.threads {
			t := &act[ti]
			if t.bpos == t.blen {
				if err := t.refill(seed, step); err != nil {
					g.err = err
					return
				}
			}
			a := &t.buf[t.bpos]
			t.bpos++
			r := hier.AccessOn(t.core, t.node, a.Addr)
			home := t.node
			if r.Level == cache.MEM || r.Level == cache.LFB {
				h, start, end := rd.Resolve(a.Addr, t.node)
				if h != topology.InvalidNode {
					home = h
				} else if end != 0 {
					// Untouched first-touch page: provisionally home it here
					// (home stays t.node) and track the at-risk counts.
					c := lastClaim[li]
					if c == nil || start != lastStart[li] {
						c = g.claim(start, end, uint64(step)*stride+uint64(ti))
						lastClaim[li] = c
						lastStart[li] = start
					}
					rc := &c.risk[li]
					switch r.Level {
					case cache.MEM:
						rc.mem++
					case cache.LFB:
						rc.lfb++
					}
					if r.DRAMTraffic {
						rc.traf++
					}
				}
			}
			t.total++
			t.level[r.Level]++
			ci := int(t.node)*nn + int(home)
			switch r.Level {
			case cache.MEM:
				t.mem[ci]++
			case cache.LFB:
				t.lfb[ci]++
			}
			if r.DRAMTraffic {
				t.traf[ci]++
				if t.node != home {
					t.traf[int(home)*nn+int(home)]++
				}
			}
			t.seen++
			if len(t.res) < rsz {
				t.res = append(t.res, packRecord(a.Addr, r.Level, home, a.Write))
			} else {
				x := xorshift64(t.rstate)
				t.rstate = x
				if j := int(x % uint64(t.seen)); j < rsz {
					t.res[j] = packRecord(a.Addr, r.Level, home, a.Write)
				}
			}
		}
	}
}

// ftWinner is the arbitration result for one claimed page.
type ftWinner struct {
	order      uint64
	node       topology.NodeID
	start, end uint64
}

// mergeFirstTouch arbitrates the groups' first-touch claims, commits the
// winners to the address space, and patches the losing groups' accounting
// and reservoirs to the homes the serial interleave would have produced.
func (e *Engine) mergeFirstTouch(act []winThread, gs []winGroup) {
	var wins map[uint64]ftWinner
	for gi := range gs {
		g := &gs[gi]
		for pg, c := range g.claims {
			if wins == nil {
				wins = make(map[uint64]ftWinner, len(g.claims))
			}
			if w, ok := wins[pg]; !ok || c.order < w.order {
				wins[pg] = ftWinner{order: c.order, node: g.node, start: c.start, end: c.end}
			}
		}
	}
	if wins == nil {
		return
	}
	// Commit in ascending page order so the address space's own memo and
	// generation counter evolve deterministically.
	pages := make([]uint64, 0, len(wins))
	for pg := range wins {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, pg := range pages {
		e.space.Touch(pg, wins[pg].node)
	}

	nn := e.nn
	for gi := range gs {
		g := &gs[gi]
		// Every group access to a lost page happened after the group's own
		// claim, which the winner's first touch precedes globally — so the
		// serial interleave would have served all of them from the winner's
		// node. Move the counts: local (src,src) becomes remote (src,win)
		// plus the winner's controller leg for DRAM traffic.
		var lost []ftWinner
		src := int(g.node)
		oldCi := src*nn + src
		for pg, c := range g.claims {
			w := wins[pg]
			if w.node == g.node {
				continue // this group's claim won
			}
			lost = append(lost, w)
			newCi := src*nn + int(w.node)
			dstLoc := int(w.node)*nn + int(w.node)
			for li := range c.risk {
				rc := &c.risk[li]
				if rc.mem == 0 && rc.lfb == 0 && rc.traf == 0 {
					continue
				}
				t := &act[g.threads[li]]
				t.mem[oldCi] -= int(rc.mem)
				t.mem[newCi] += int(rc.mem)
				t.lfb[oldCi] -= int(rc.lfb)
				t.lfb[newCi] += int(rc.lfb)
				t.traf[oldCi] -= int(rc.traf)
				t.traf[newCi] += int(rc.traf)
				t.traf[dstLoc] += int(rc.traf)
			}
		}
		if len(lost) == 0 {
			continue
		}
		// Re-home the group's MEM/LFB reservoir records falling in a lost
		// page. Only those levels carry overlay homes — cache-served records
		// were packed with the thread's own node, same as serial.
		sort.Slice(lost, func(i, j int) bool { return lost[i].start < lost[j].start })
		for _, ti := range g.threads {
			t := &act[ti]
			for ri, rec := range t.res {
				lv := rec.level()
				if lv != cache.MEM && lv != cache.LFB {
					continue
				}
				addr := rec.addr()
				k := sort.Search(len(lost), func(i int) bool { return lost[i].end > addr })
				if k < len(lost) && addr >= lost[k].start {
					t.res[ri] = packRecord(addr, lv, lost[k].node, rec.write())
				}
			}
		}
	}
}
