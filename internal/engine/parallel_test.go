package engine

import (
	"reflect"
	"runtime"
	"testing"

	"drbw/internal/alloc"
	"drbw/internal/memsim"
	"drbw/internal/pebs"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

// sharedScanWorkload builds threads that all stream over the SAME address
// range. Under a first-touch policy every page is claimed concurrently by
// threads on every bound node, which makes it the worst case for the
// parallel window's claim arbitration: each page's home is decided by which
// thread's access comes first in the serial interleave order.
func sharedScanWorkload(t *testing.T, m *topology.Machine, threads int, pol memsim.Policy) (*memsim.AddressSpace, []trace.Phase) {
	t.Helper()
	as := memsim.NewAddressSpace(m)
	h := alloc.NewHeap(as, 0x10000000)
	size := uint64(4 * mb)
	obj, err := h.Malloc("shared", size, alloc.Site{Func: "init"}, pol)
	if err != nil {
		t.Fatal(err)
	}
	base := h.Object(obj).Base
	mk := func(name string) trace.Phase {
		ph := trace.Phase{Name: name}
		for i := 0; i < threads; i++ {
			ph.Threads = append(ph.Threads, trace.ThreadSpec{
				Stream:     &trace.Seq{Base: base, Len: size, Elem: 8},
				Ops:        1e6,
				MLP:        8,
				WorkCycles: 1,
			})
		}
		return ph
	}
	// Two phases: the second revisits pages the first already resolved, so
	// the parallel path also proves it observes committed first touches.
	return as, []trace.Phase{mk("touch"), mk("revisit")}
}

type workerRun struct {
	res     *Result
	samples []pebs.Sample
	pages   map[topology.NodeID]int
}

func runShared(t *testing.T, m *topology.Machine, threads, nodes, workers int, reference bool) workerRun {
	t.Helper()
	as, phases := sharedScanWorkload(t, m, threads, memsim.FirstTouchPolicy())
	cfg := testConfig(77)
	cfg.Workers = workers
	cfg.Reference = reference
	col := pebs.NewCollector(pebs.Config{Period: 1500, OverheadCycles: 900}, 77)
	cfg.Collector = col
	e, err := New(m, as, smallCaches(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	bind, err := EvenBinding(m, threads, nodes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(phases, bind)
	if err != nil {
		t.Fatal(err)
	}
	return workerRun{res: res, samples: col.Samples(), pages: as.ResidencyHistogram()}
}

// TestWindowWorkerDeterminism pins the tentpole guarantee: for a fixed
// seed, every worker count produces bit-identical Results, samples, and
// first-touch placements — Workers=1 (the exact serial path), explicit
// parallel counts, and Workers=0 (GOMAXPROCS, whatever the host has).
func TestWindowWorkerDeterminism(t *testing.T) {
	m := topology.XeonE5_4650()
	base := runShared(t, m, 16, 4, 1, false)
	if len(base.samples) == 0 {
		t.Fatal("no samples collected; the comparison would be vacuous")
	}
	for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0), 0} {
		got := runShared(t, m, 16, 4, workers, false)
		if !reflect.DeepEqual(got.res, base.res) {
			t.Errorf("workers=%d: Result diverges from serial", workers)
		}
		if !reflect.DeepEqual(got.pages, base.pages) {
			t.Errorf("workers=%d: first-touch placement diverges: %v vs %v", workers, got.pages, base.pages)
		}
		if len(got.samples) != len(base.samples) {
			t.Fatalf("workers=%d: %d samples, serial %d", workers, len(got.samples), len(base.samples))
		}
		for i := range got.samples {
			if got.samples[i] != base.samples[i] {
				t.Fatalf("workers=%d: sample %d diverges:\nparallel %+v\nserial   %+v",
					workers, i, got.samples[i], base.samples[i])
			}
		}
	}
}

// TestParallelMatchesReferenceFirstTouch checks the parallel window against
// the Config.Reference oracle on the arbitration-heavy shared first-touch
// scenario, independent of how many cores the host actually has.
func TestParallelMatchesReferenceFirstTouch(t *testing.T) {
	m := topology.XeonE5_4650()
	par := runShared(t, m, 16, 4, 4, false)
	ref := runShared(t, m, 16, 4, 1, true)
	if !reflect.DeepEqual(par.res, ref.res) {
		t.Error("parallel Result diverges from the reference oracle")
	}
	if !reflect.DeepEqual(par.pages, ref.pages) {
		t.Errorf("parallel first-touch placement diverges from reference: %v vs %v", par.pages, ref.pages)
	}
	if len(par.samples) != len(ref.samples) {
		t.Fatalf("%d parallel samples, reference %d", len(par.samples), len(ref.samples))
	}
	for i := range par.samples {
		if par.samples[i] != ref.samples[i] {
			t.Fatalf("sample %d diverges:\nparallel  %+v\nreference %+v", i, par.samples[i], ref.samples[i])
		}
	}
}

// TestWorkersSingleNodeFallsBackSerial checks the grouping heuristic: all
// threads on one node leaves nothing to shard, and results still match.
func TestWorkersSingleNodeFallsBackSerial(t *testing.T) {
	m := topology.XeonE5_4650()
	a := runShared(t, m, 8, 1, 4, false)
	b := runShared(t, m, 8, 1, 1, false)
	if !reflect.DeepEqual(a.res, b.res) {
		t.Error("single-node run diverges between Workers=4 and Workers=1")
	}
}
