package engine

import (
	"math"
	"testing"

	"drbw/internal/alloc"
	"drbw/internal/cache"
	"drbw/internal/memsim"
	"drbw/internal/pebs"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

const mb = 1 << 20

// smallCaches keeps window simulation fast and guarantees that multi-MB
// scans miss.
func smallCaches() cache.Config {
	return cache.Config{
		L1Size: 8 << 10, L1Assoc: 2,
		L2Size: 32 << 10, L2Assoc: 4,
		L3Size: 1 << 20, L3Assoc: 8,
		LFBEntries:    10,
		PrefetchDepth: 4, PrefetchStreams: 8,
	}
}

func testConfig(seed uint64) Config {
	return Config{Window: 3072, Warmup: 768, ReservoirSize: 512, Seed: seed}
}

// scanWorkload builds t threads, each streaming over its own sliceMB
// megabytes of a shared array, with the array placed by pol.
func scanWorkload(t *testing.T, m *topology.Machine, threads int, pol memsim.Policy, ops float64) (*memsim.AddressSpace, trace.Phase, *alloc.Heap, alloc.ObjectID) {
	t.Helper()
	as := memsim.NewAddressSpace(m)
	h := alloc.NewHeap(as, 0x10000000)
	slice := uint64(2 * mb)
	obj, err := h.Malloc("data", uint64(threads)*slice, alloc.Site{Func: "init"}, pol)
	if err != nil {
		t.Fatal(err)
	}
	base := h.Object(obj).Base
	ph := trace.Phase{Name: "scan"}
	for i := 0; i < threads; i++ {
		ph.Threads = append(ph.Threads, trace.ThreadSpec{
			Stream:     &trace.Seq{Base: base + uint64(i)*slice, Len: slice, Elem: 8},
			Ops:        ops,
			MLP:        8,
			WorkCycles: 1,
		})
	}
	return as, ph, h, obj
}

func runScan(t *testing.T, m *topology.Machine, threads, nodes int, pol memsim.Policy, cfg Config) (*Result, *memsim.AddressSpace) {
	t.Helper()
	as, ph, _, _ := scanWorkload(t, m, threads, pol, 2e6)
	e, err := New(m, as, smallCaches(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	bind, err := EvenBinding(m, threads, nodes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run([]trace.Phase{ph}, bind)
	if err != nil {
		t.Fatal(err)
	}
	return res, as
}

func TestEvenBinding(t *testing.T) {
	m := topology.XeonE5_4650()
	bind, err := EvenBinding(m, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bind) != 16 {
		t.Fatalf("len = %d", len(bind))
	}
	// Threads 0-3 on node 0, 4-7 on node 1, etc.
	for i, cpu := range bind {
		if want := topology.NodeID(i / 4); m.NodeOfCPU(cpu) != want {
			t.Fatalf("thread %d on node %d, want %d", i, m.NodeOfCPU(cpu), want)
		}
	}
	// Physical cores are preferred before hyper-threads.
	if bind[0] != 0 || bind[4] != 8 {
		t.Errorf("unexpected CPU choice: %v", bind[:8])
	}
	// T64-N4 uses the HT siblings too.
	bind64, err := EvenBinding(m, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	cores := map[topology.CoreID]int{}
	for _, cpu := range bind64 {
		cores[m.CoreOfCPU(cpu)]++
	}
	for c, n := range cores {
		if n != 2 {
			t.Fatalf("core %d has %d threads in T64-N4, want 2", c, n)
		}
	}

	for _, bad := range []struct{ t, n int }{{16, 0}, {16, 5}, {15, 4}, {0, 2}, {200, 4}} {
		if _, err := EvenBinding(m, bad.t, bad.n); err == nil {
			t.Errorf("EvenBinding(%d,%d) accepted", bad.t, bad.n)
		}
	}
}

func TestLocalStreamingIsUncontended(t *testing.T) {
	m := topology.Uniform(4, 4)
	// 4 threads on node 0 scanning node-0 data: local, below capacity.
	res, _ := runScan(t, m, 4, 1, memsim.BindTo(0), testConfig(1))
	p := res.Phases[0]
	if p.Cycles <= 0 {
		t.Fatal("no cycles simulated")
	}
	if p.RemoteDRAMAccesses > 0.02*p.LocalDRAMAccesses {
		t.Errorf("local run has %.0f remote vs %.0f local DRAM accesses",
			p.RemoteDRAMAccesses, p.LocalDRAMAccesses)
	}
	local := topology.Channel{Src: 0, Dst: 0}
	if u := p.Channels[local].PeakUtil; u >= 1 {
		t.Errorf("local channel saturated (%.2f) by 4 threads", u)
	}
	base := m.Latencies().LocalDRAM
	if p.AvgDRAMLatency > 1.6*base {
		t.Errorf("uncontended latency %.0f vs base %.0f", p.AvgDRAMLatency, base)
	}
}

func TestRemoteContentionEmerges(t *testing.T) {
	m := topology.Uniform(4, 4)
	cfg := testConfig(2)
	// 16 threads across 4 nodes, all data on node 0: the classic first-touch
	// pathology.
	contended, _ := runScan(t, m, 16, 4, memsim.BindTo(0), cfg)
	// Fix: each thread's slice local to its node (co-location by interleave
	// of the same total footprint across the nodes the threads use).
	fixed, _ := runScan(t, m, 16, 4, memsim.InterleaveAll(), cfg)

	pc := contended.Phases[0]
	ctrl0 := topology.Channel{Src: 0, Dst: 0}
	if u := pc.Channels[ctrl0].PeakUtil; u < 1.2 {
		t.Errorf("node-0 controller util %.2f, want saturation > 1.2", u)
	}
	baseRemote := m.Latencies().RemoteDRAM
	if pc.AvgDRAMLatency < 1.5*baseRemote {
		t.Errorf("contended DRAM latency %.0f, want > %.0f", pc.AvgDRAMLatency, 1.5*baseRemote)
	}
	if pc.RemoteDRAMAccesses < pc.LocalDRAMAccesses {
		t.Errorf("expected mostly remote accesses, got %.0f remote vs %.0f local",
			pc.RemoteDRAMAccesses, pc.LocalDRAMAccesses)
	}
	speedup := pc.Cycles / fixed.Phases[0].Cycles
	if speedup < 1.5 {
		t.Errorf("interleave speedup %.2f, want > 1.5 under saturation", speedup)
	}
}

func TestColocationBeatsCentralized(t *testing.T) {
	m := topology.Uniform(4, 4)
	cfg := testConfig(3)
	as, ph, h, obj := scanWorkload(t, m, 16, memsim.FirstTouchPolicy(), 2e6)
	// Co-located: pages first-touched in a blocked partition matching the
	// threads' slices (4 threads per node, consecutive slices).
	h.TouchPartitioned(obj, []topology.NodeID{0, 1, 2, 3})
	e, _ := New(m, as, smallCaches(), cfg)
	bind, _ := EvenBinding(m, 16, 4)
	colocated, err := e.Run([]trace.Phase{ph}, bind)
	if err != nil {
		t.Fatal(err)
	}

	central, _ := runScan(t, m, 16, 4, memsim.BindTo(0), cfg)
	if speedup := central.Phases[0].Cycles / colocated.Phases[0].Cycles; speedup < 1.5 {
		t.Errorf("co-location speedup %.2f, want > 1.5", speedup)
	}
	// Co-location eliminates nearly all remote traffic.
	pc := colocated.Phases[0]
	if pc.RemoteDRAMAccesses > 0.1*(pc.RemoteDRAMAccesses+pc.LocalDRAMAccesses) {
		t.Errorf("co-located run still %.0f%% remote",
			100*pc.RemoteDRAMAccesses/(pc.RemoteDRAMAccesses+pc.LocalDRAMAccesses))
	}
}

// chaseWorkload: every thread pointer-chases addresses mapping to one cache
// set of a node-0 region — all accesses reach remote DRAM but MLP is 1.
func TestPointerChaseHighRemoteNoContention(t *testing.T) {
	m := topology.Uniform(4, 4)
	as := memsim.NewAddressSpace(m)
	h := alloc.NewHeap(as, 0x10000000)
	obj, err := h.MallocHuge("bandit", 128*mb, alloc.Site{Func: "bandit"}, memsim.BindTo(0))
	if err != nil {
		t.Fatal(err)
	}
	base := h.Object(obj).Base
	hcfg := smallCaches()
	e, err := New(m, as, hcfg, testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	// Conflict stride: L3 is 1MB 8-way -> 2048 sets * 64B = 128KB.
	stride := uint64(128 << 10)
	ph := trace.Phase{Name: "chase"}
	threads := 12
	for i := 0; i < threads; i++ {
		addrs := make([]uint64, 64)
		for j := range addrs {
			addrs[j] = base + uint64(j)*stride + uint64(i)*64 // same sets, distinct lines
		}
		ph.Threads = append(ph.Threads, trace.ThreadSpec{
			Stream: &trace.Chase{Addrs: addrs},
			Ops:    3e5,
			MLP:    1,
		})
	}
	// Threads on nodes 1..3 (12 threads over 3 nodes would need binding
	// support; use 4 nodes with 12 threads = 3 per node... EvenBinding needs
	// divisibility, 12/4=3).
	bind, err := EvenBinding(m, threads, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run([]trace.Phase{ph}, bind)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Phases[0]
	totalDRAM := p.LocalDRAMAccesses + p.RemoteDRAMAccesses
	if totalDRAM < 0.5*3e5*float64(threads) {
		t.Fatalf("chase should always reach DRAM; only %.0f of %.0f accesses did",
			totalDRAM, 3e5*float64(threads))
	}
	if p.RemoteDRAMAccesses < 0.6*totalDRAM {
		t.Errorf("chase should be mostly remote, got %.0f/%.0f", p.RemoteDRAMAccesses, totalDRAM)
	}
	// The crucial property: latency-bound traffic does not contend.
	ctrl0 := topology.Channel{Src: 0, Dst: 0}
	if u := p.Channels[ctrl0].PeakUtil; u > 0.7 {
		t.Errorf("pointer chase saturated the controller (%.2f); MLP=1 must not", u)
	}
	base0 := m.Latencies().RemoteDRAM
	if p.AvgDRAMLatency > 1.35*base0 {
		t.Errorf("chase latency %.0f should stay near base %.0f", p.AvgDRAMLatency, base0)
	}
}

func TestSamplingProducesPlausibleSamples(t *testing.T) {
	m := topology.Uniform(4, 4)
	col := pebs.NewCollector(pebs.Config{Period: 500}, 9)
	cfg := testConfig(5)
	cfg.Collector = col
	res, as := runScan(t, m, 8, 2, memsim.BindTo(0), cfg)

	samples := col.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	totalOps := 8 * 2e6
	expect := totalOps / 500
	if f := float64(col.Total()); f < 0.7*expect || f > 1.3*expect {
		t.Errorf("sample count %.0f, want about %.0f", f, expect)
	}
	var remote, mem int
	for _, s := range samples {
		if m.NodeOfCPU(s.CPU) != s.SrcNode {
			t.Fatal("sample SrcNode inconsistent with CPU")
		}
		if !as.Mapped(s.Addr) {
			t.Fatalf("sample address %#x not mapped", s.Addr)
		}
		if s.Latency < pebs.DefaultLatencyThreshold {
			t.Fatalf("sample below latency threshold: %f", s.Latency)
		}
		if s.Time < 0 || s.Time > res.Cycles*1.01 {
			t.Fatalf("sample time %.0f outside run [0,%.0f]", s.Time, res.Cycles)
		}
		if s.RemoteDRAM() {
			remote++
		}
		if s.Level == cache.MEM {
			mem++
		}
	}
	if mem == 0 {
		t.Error("no DRAM-sourced samples despite streaming workload")
	}
	if remote == 0 {
		t.Error("no remote samples despite node-0 placement with threads on 2 nodes")
	}
}

func TestDeterminism(t *testing.T) {
	m := topology.Uniform(2, 4)
	run := func() (float64, int) {
		col := pebs.NewCollector(pebs.Config{Period: 1000}, 11)
		cfg := testConfig(7)
		cfg.Collector = col
		res, _ := runScan(t, m, 8, 2, memsim.BindTo(0), cfg)
		return res.Cycles, col.Total()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Errorf("same seed diverged: cycles %.0f vs %.0f, samples %d vs %d", c1, c2, s1, s2)
	}
}

func TestProfilingOverheadBounded(t *testing.T) {
	m := topology.Uniform(2, 4)
	cfg := testConfig(8)
	plain, _ := runScan(t, m, 4, 1, memsim.BindTo(0), cfg)

	col := pebs.NewCollector(pebs.Config{Period: 2000, OverheadCycles: 400}, 8)
	cfgP := testConfig(8)
	cfgP.Collector = col
	profiled, _ := runScan(t, m, 4, 1, memsim.BindTo(0), cfgP)

	over := profiled.Phases[0].Cycles/plain.Phases[0].Cycles - 1
	if over < 0 {
		t.Errorf("profiling made the uncontended run faster (%.1f%%)", 100*over)
	}
	if over > 0.12 {
		t.Errorf("profiling overhead %.1f%%, want <= 12%% like the paper", 100*over)
	}
}

func TestMultiPhaseSequencing(t *testing.T) {
	m := topology.Uniform(2, 2)
	as := memsim.NewAddressSpace(m)
	h := alloc.NewHeap(as, 0x10000000)
	obj, _ := h.Malloc("d", 4*mb, alloc.Site{Func: "f"}, memsim.BindTo(0))
	base := h.Object(obj).Base
	mk := func(name string, ops float64) trace.Phase {
		ph := trace.Phase{Name: name}
		for i := 0; i < 2; i++ {
			ph.Threads = append(ph.Threads, trace.ThreadSpec{
				Stream: &trace.Seq{Base: base + uint64(i)*2*mb, Len: 2 * mb, Elem: 8},
				Ops:    ops, MLP: 4, WorkCycles: 2,
			})
		}
		return ph
	}
	e, _ := New(m, as, smallCaches(), testConfig(10))
	bind, _ := EvenBinding(m, 2, 1)
	res, err := e.Run([]trace.Phase{mk("a", 1e5), mk("b", 2e5)}, bind)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 || res.Phases[0].Name != "a" || res.Phases[1].Name != "b" {
		t.Fatalf("phases wrong: %+v", res.Phases)
	}
	sum := res.Phases[0].Cycles + res.Phases[1].Cycles
	if math.Abs(sum-res.Cycles) > 1e-6*res.Cycles {
		t.Errorf("total %.0f != phase sum %.0f", res.Cycles, sum)
	}
	r := res.Phases[1].Cycles / res.Phases[0].Cycles
	if r < 1.6 || r > 2.4 {
		t.Errorf("2x ops took %.2fx cycles, want ~2x", r)
	}
}

func TestSMTSharingSlowsComputeBound(t *testing.T) {
	m := topology.XeonE5_4650() // has hyper-threading
	as := memsim.NewAddressSpace(m)
	h := alloc.NewHeap(as, 0x10000000)
	obj, _ := h.Malloc("d", 1*mb, alloc.Site{Func: "f"}, memsim.BindTo(0))
	base := h.Object(obj).Base
	phase := func(n int) trace.Phase {
		ph := trace.Phase{Name: "w"}
		for i := 0; i < n; i++ {
			ph.Threads = append(ph.Threads, trace.ThreadSpec{
				Stream:     &trace.Seq{Base: base, Len: 8 << 10, Elem: 8}, // cache resident
				Ops:        1e6,
				MLP:        1,
				WorkCycles: 20, // compute bound
			})
		}
		return ph
	}
	e, _ := New(m, as, smallCaches(), testConfig(12))

	// 16 threads on one node = every core doubly occupied.
	bindHT, _ := EvenBinding(m, 16, 1)
	ht, err := e.Run([]trace.Phase{phase(16)}, bindHT)
	if err != nil {
		t.Fatal(err)
	}
	// 8 threads = one per physical core.
	bind8, _ := EvenBinding(m, 8, 1)
	solo, err := e.Run([]trace.Phase{phase(8)}, bind8)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ht.Cycles / solo.Cycles
	if ratio < 1.5 {
		t.Errorf("SMT-shared compute-bound run only %.2fx slower; want ~2x", ratio)
	}
}

func TestRunValidation(t *testing.T) {
	m := topology.Uniform(2, 2)
	as := memsim.NewAddressSpace(m)
	e, _ := New(m, as, smallCaches(), testConfig(1))
	if _, err := e.Run([]trace.Phase{{Name: "x"}}, nil); err == nil {
		t.Error("empty binding accepted")
	}
	if _, err := e.Run([]trace.Phase{{Name: "x", Threads: make([]trace.ThreadSpec, 3)}}, Binding{0, 1}); err == nil {
		t.Error("mismatched thread count accepted")
	}
	if _, err := e.Run([]trace.Phase{{Name: "x", Threads: make([]trace.ThreadSpec, 1)}}, Binding{99}); err == nil {
		t.Error("invalid CPU accepted")
	}
	bad := trace.Phase{Name: "x", Threads: []trace.ThreadSpec{{
		Stream: &trace.Seq{Base: 0x10000000, Len: 4096, Elem: 8}, Ops: 10, MLP: 0.5,
	}}}
	if err := as.Map(0x10000000, 4096, memsim.BindTo(0), false); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run([]trace.Phase{bad}, Binding{0}); err == nil {
		t.Error("MLP < 1 accepted")
	}
}

func TestEmptyPhaseRuns(t *testing.T) {
	m := topology.Uniform(2, 2)
	as := memsim.NewAddressSpace(m)
	e, _ := New(m, as, smallCaches(), testConfig(1))
	res, err := e.Run([]trace.Phase{{Name: "idle", Threads: make([]trace.ThreadSpec, 2)}}, Binding{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 {
		t.Errorf("idle phase took %.0f cycles", res.Cycles)
	}
}

func TestResultAggregation(t *testing.T) {
	m := topology.Uniform(2, 4)
	res, _ := runScan(t, m, 8, 2, memsim.BindTo(0), testConfig(13))
	ch := topology.Channel{Src: 1, Dst: 0}
	merged := res.Channel(ch)
	if merged.Bytes != res.Phases[0].Channels[ch].Bytes {
		t.Error("single-phase merge should equal the phase stats")
	}
	if res.RemoteDRAMAccesses() != res.Phases[0].RemoteDRAMAccesses {
		t.Error("remote access aggregation mismatch")
	}
	if res.AvgDRAMLatency() <= 0 {
		t.Error("aggregate DRAM latency missing")
	}
}

func TestConfigWarmupDefaults(t *testing.T) {
	unset := Config{Window: 8192}.withDefaults()
	if unset.Warmup != 8192/4 {
		t.Errorf("unset Warmup = %d, want Window/4 = %d", unset.Warmup, 8192/4)
	}
	zero := Config{Window: 8192, Warmup: -1}.withDefaults()
	if zero.Warmup != 0 {
		t.Errorf("negative Warmup = %d, want 0 (true zero-warmup run)", zero.Warmup)
	}
	explicit := Config{Window: 8192, Warmup: 512}.withDefaults()
	if explicit.Warmup != 512 {
		t.Errorf("explicit Warmup = %d, want 512", explicit.Warmup)
	}
}
