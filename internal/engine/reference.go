package engine

// The reference path preserves the original map-based implementation of the
// window and integration stages. It exists to prove the dense-indexed fast
// path in engine.go is a pure refactor: Config.Reference routes a run through
// this file, and the equivalence tests require bit-identical Results and PEBS
// samples from both paths.
//
// Two disciplines are shared with the fast path so "bit-identical" is
// achievable at all:
//
//   - The window reservoir draws from the same per-thread xorshift state
//     (reservoirSeed/xorshift64), not the run-level *rand.Rand.
//   - Float accumulations that cross channels iterate channels in ascending
//     dense-index (ChannelIndex) order. Go randomizes map iteration, and
//     float addition does not reassociate, so unsorted map walks would change
//     low-order bits run to run.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"drbw/internal/cache"
	"drbw/internal/pebs"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

// refProfile is a thread's steady-state access profile in the original
// map-keyed form.
type refProfile struct {
	total  float64
	fLevel [5]float64
	// memFrac[pair] is the fraction of accesses served by DRAM of pair.Dst
	// issued from pair.Src (always the thread's node).
	memFrac map[topology.Channel]float64
	// lfbFrac[pair] is the fraction of LFB-served accesses whose line homes
	// on pair.Dst.
	lfbFrac map[topology.Channel]float64
	// traffic[ch] is lines-per-access crossing physical channel ch.
	traffic   map[topology.Channel]float64
	reservoir []record
}

// sortedChannels returns m's keys in ascending dense-index order, the
// iteration order the fast path uses for its accumulations.
func (e *Engine) sortedChannels(m map[topology.Channel]float64) []topology.Channel {
	keys := make([]topology.Channel, 0, len(m))
	for ch := range m {
		keys = append(keys, ch)
	}
	sort.Slice(keys, func(a, b int) bool {
		return e.machine.ChannelIndex(keys[a]) < e.machine.ChannelIndex(keys[b])
	})
	return keys
}

// windowRef drives every thread's stream through the caches one access at a
// time and builds map-keyed profiles.
func (e *Engine) windowRef(ph trace.Phase, bind Binding, phaseIdx uint64) ([]*refProfile, error) {
	e.hier.Flush()
	n := len(bind)
	profiles := make([]*refProfile, n)
	streams := make([]trace.Stream, n)
	active := make([]bool, n)
	rstate := make([]uint64, n)
	for i, spec := range ph.Threads {
		profiles[i] = &refProfile{
			memFrac: make(map[topology.Channel]float64),
			lfbFrac: make(map[topology.Channel]float64),
			traffic: make(map[topology.Channel]float64),
		}
		if spec.Stream != nil && spec.Ops > 0 {
			streams[i] = spec.Stream
			streams[i].Reset(e.cfg.Seed + phaseIdx*1315423911 + uint64(i))
			active[i] = true
			rstate[i] = e.reservoirSeed(phaseIdx, i)
		}
	}

	total := e.cfg.Warmup + e.cfg.Window
	// counts are accumulated as integers during the walk.
	type counts struct {
		total    int
		level    [5]int
		mem, lfb map[topology.Channel]int
		traffic  map[topology.Channel]int
		seen     int // post-warmup accesses observed (reservoir index)
	}
	cs := make([]*counts, n)
	for i := range cs {
		cs[i] = &counts{
			mem:     make(map[topology.Channel]int),
			lfb:     make(map[topology.Channel]int),
			traffic: make(map[topology.Channel]int),
		}
	}

	// Round-robin interleave so the shared L3 and first-touch resolution see
	// concurrent access. Each turn advances one access per active thread.
	for step := 0; step < total; step++ {
		warm := step < e.cfg.Warmup
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			a, ok := streams[i].Next()
			if !ok {
				streams[i].Reset(e.cfg.Seed ^ (uint64(step+1) * 2654435761) ^ uint64(i))
				a, ok = streams[i].Next()
				if !ok {
					return nil, fmt.Errorf("thread %d stream produced no accesses", i)
				}
			}
			cpu := bind[i]
			node := e.machine.NodeOfCPU(cpu)
			r := e.hier.Access(cpu, a.Addr)
			home := node
			if r.Level == cache.MEM || r.Level == cache.LFB {
				home = e.space.HomeFor(a.Addr, node)
				if home == topology.InvalidNode {
					home = node
				}
			}
			if warm {
				continue
			}
			c := cs[i]
			c.total++
			c.level[r.Level]++
			pair := topology.Channel{Src: node, Dst: home}
			switch r.Level {
			case cache.MEM:
				c.mem[pair]++
			case cache.LFB:
				c.lfb[pair]++
			}
			if r.DRAMTraffic {
				if pair.Local() {
					c.traffic[pair]++
				} else {
					c.traffic[pair]++
					c.traffic[topology.Channel{Src: home, Dst: home}]++
				}
			}
			// Uniform reservoir of concrete records.
			p := profiles[i]
			c.seen++
			rec := packRecord(a.Addr, r.Level, home, a.Write)
			if len(p.reservoir) < e.cfg.ReservoirSize {
				p.reservoir = append(p.reservoir, rec)
			} else {
				x := xorshift64(rstate[i])
				rstate[i] = x
				if j := int(x % uint64(c.seen)); j < e.cfg.ReservoirSize {
					p.reservoir[j] = rec
				}
			}
		}
	}

	for i, c := range cs {
		p := profiles[i]
		if c.total == 0 {
			continue
		}
		tf := float64(c.total)
		p.total = tf
		for l := 0; l < 5; l++ {
			p.fLevel[l] = float64(c.level[l]) / tf
		}
		for ch, v := range c.mem {
			p.memFrac[ch] = float64(v) / tf
		}
		for ch, v := range c.lfb {
			p.lfbFrac[ch] = float64(v) / tf
		}
		for ch, v := range c.traffic {
			p.traffic[ch] = float64(v) / tf
		}
	}
	return profiles, nil
}

// integrateRef advances the phase over time epochs until every thread
// finishes, with map-keyed channel accounting.
func (e *Engine) integrateRef(ph trace.Phase, bind Binding, profiles []*refProfile, start float64, rng *rand.Rand) (*PhaseResult, error) {
	n := len(bind)
	lat := e.machine.Latencies()
	remaining := make([]float64, n)
	finish := make([]float64, n)
	sampleAcc := make([]float64, n)
	anyWork := false
	mlp := make([]float64, n)
	for i, spec := range ph.Threads {
		remaining[i] = spec.Ops
		if spec.Ops > 0 && profiles[i].total > 0 {
			anyWork = true
		}
		switch {
		case spec.MLP == 0:
			mlp[i] = 1 // unset: a single outstanding miss
		case spec.MLP < 1:
			return nil, fmt.Errorf("thread %d MLP %g < 1", i, spec.MLP)
		default:
			mlp[i] = spec.MLP
		}
	}
	pr := &PhaseResult{
		Name:         ph.Name,
		ThreadCycles: make([]float64, n),
		Channels:     make(map[topology.Channel]ChannelStats),
	}
	if !anyWork {
		return pr, nil
	}

	lineSize := float64(e.machine.LineSize())
	perSampleOverhead := 0.0
	period := 0.0
	ibs := false
	if e.cfg.Collector != nil {
		period = float64(e.cfg.Collector.Period())
		perSampleOverhead = e.cfg.Collector.OverheadCycles()
		ibs = e.cfg.Collector.Flavor() == pebs.IBS
	}

	// Threads sharing a physical core contend for issue slots.
	coreLoad := make(map[topology.CoreID]float64)
	for i := range bind {
		if ph.Threads[i].Ops > 0 && profiles[i].total > 0 {
			coreLoad[e.machine.CoreOfCPU(bind[i])]++
		}
	}

	// Pre-sorted channel key lists: the accumulations below must add floats
	// in the same ascending-ci order as the fast path.
	memKeys := make([][]topology.Channel, n)
	lfbKeys := make([][]topology.Channel, n)
	trafKeys := make([][]topology.Channel, n)
	for i, p := range profiles {
		memKeys[i] = e.sortedChannels(p.memFrac)
		lfbKeys[i] = e.sortedChannels(p.lfbFrac)
		trafKeys[i] = e.sortedChannels(p.traffic)
	}

	// Unloaded issue rate of each thread (accesses/cycle).
	r0 := make([]float64, n)
	for i := range r0 {
		if remaining[i] <= 0 || profiles[i].total == 0 {
			continue
		}
		p := profiles[i]
		spec := ph.Threads[i]
		memLat := 0.0
		for _, pair := range memKeys[i] {
			memLat += p.memFrac[pair] * e.pairBaseLatency(pair)
		}
		for _, pair := range lfbKeys[i] {
			memLat += p.lfbFrac[pair] * e.lfbBaseLatency(pair)
		}
		cacheLat := p.fLevel[cache.L1]*lat.L1 + p.fLevel[cache.L2]*lat.L2 + p.fLevel[cache.L3]*lat.L3
		per := spec.WorkCycles*coreLoad[e.machine.CoreOfCPU(bind[i])] + (cacheLat+memLat)/mlp[i]
		if per <= 0 {
			per = 0.1
		}
		r0[i] = 1 / per
	}

	now := 0.0
	var dramAccAcc, dramLatAcc float64
	util := make(map[topology.Channel]float64)

	for epoch := 0; epoch < e.cfg.MaxEpochs; epoch++ {
		// Offered utilization from the unthrottled rates of running threads.
		for ch := range util {
			delete(util, ch)
		}
		running := false
		for i := range r0 {
			if remaining[i] <= 0 || r0[i] == 0 {
				continue
			}
			running = true
			p := profiles[i]
			for _, ch := range trafKeys[i] {
				util[ch] += r0[i] * p.traffic[ch] * lineSize / e.machine.Bandwidth(ch)
			}
		}
		if !running {
			break
		}
		// Fair-share throughput cap.
		eff := make([]float64, n)
		for i := range r0 {
			if remaining[i] <= 0 || r0[i] == 0 {
				continue
			}
			worst := 1.0
			p := profiles[i]
			for _, ch := range trafKeys[i] {
				if p.traffic[ch] <= 1e-9 {
					continue
				}
				if u := util[ch]; u > worst {
					worst = u
				}
			}
			eff[i] = r0[i] / worst
			if period > 0 && perSampleOverhead > 0 {
				opsPerAccess := 1.0
				if ibs {
					opsPerAccess += ph.Threads[i].WorkCycles
				}
				stall := perSampleOverhead * opsPerAccess * eff[i] / period
				if stall > 0.5 {
					stall = 0.5
				}
				eff[i] *= 1 - stall
			}
		}

		// Run until the next thread completes.
		dt := math.Inf(1)
		for i := range eff {
			if eff[i] > 0 && remaining[i] > 0 {
				if est := remaining[i] / eff[i]; est < dt {
					dt = est
				}
			}
		}
		if math.IsInf(dt, 1) {
			break
		}

		// Advance and account.
		for i := range eff {
			if eff[i] == 0 || remaining[i] <= 0 {
				continue
			}
			done := eff[i] * dt
			if done >= remaining[i]-1e-9 {
				done = remaining[i]
				finish[i] = now + dt
			}
			remaining[i] -= done
			p := profiles[i]
			for _, ch := range trafKeys[i] {
				s := pr.Channels[ch]
				s.Bytes += done * p.traffic[ch] * lineSize
				pr.Channels[ch] = s
			}
			for _, pair := range memKeys[i] {
				cnt := done * p.memFrac[pair]
				l := e.pairLatency(pair, util)
				dramAccAcc += cnt
				dramLatAcc += cnt * l
				if pair.Local() {
					pr.LocalDRAMAccesses += cnt
				} else {
					pr.RemoteDRAMAccesses += cnt
				}
			}
			// PEBS sampling for this thread.
			if period > 0 && len(p.reservoir) > 0 {
				sampleAcc[i] += done
				for sampleAcc[i] >= period {
					sampleAcc[i] -= period
					rec := p.reservoir[rng.Intn(len(p.reservoir))]
					e.emitSampleRef(i, bind[i], rec, start+now+rng.Float64()*dt, util, rng)
				}
			}
		}
		for ch, u := range util {
			s := pr.Channels[ch]
			if u > s.PeakUtil {
				s.PeakUtil = u
			}
			s.AvgUtil += u * dt // normalized at the end
			pr.Channels[ch] = s
		}
		now += dt
		if e.cfg.CycleBudget > 0 && start+now >= e.cfg.CycleBudget {
			pr.Aborted = true
			break
		}
	}

	pr.Cycles = 0.0
	for i := range finish {
		if finish[i] == 0 && ph.Threads[i].Ops > 0 && profiles[i].total > 0 {
			finish[i] = now // ran until the epoch guard
		}
		pr.ThreadCycles[i] = finish[i]
		if finish[i] > pr.Cycles {
			pr.Cycles = finish[i]
		}
	}
	if pr.Cycles > 0 {
		for ch, s := range pr.Channels {
			s.AvgUtil /= pr.Cycles
			pr.Channels[ch] = s
		}
	}
	if dramAccAcc > 0 {
		pr.AvgDRAMLatency = dramLatAcc / dramAccAcc
	}
	return pr, nil
}

// emitSampleRef synthesizes one PEBS sample with map-keyed utilizations.
func (e *Engine) emitSampleRef(thread int, cpu topology.CPUID, rec record, t float64, util map[topology.Channel]float64, rng *rand.Rand) {
	lat := e.machine.Latencies()
	node := e.machine.NodeOfCPU(cpu)
	pair := topology.Channel{Src: node, Dst: rec.home()}
	var l float64
	switch rec.level() {
	case cache.L1:
		l = lat.L1
	case cache.L2:
		l = lat.L2
	case cache.L3:
		l = lat.L3
	case cache.LFB:
		l = e.lfbBaseLatency(pair) * e.pairInflation(pair, util)
	case cache.MEM:
		l = e.pairLatency(pair, util)
	}
	// Measurement noise: PEBS's dedicated latency counter carries ±20%
	// pipeline-induced spread; IBS derives load timing from tagged-op
	// retirement and spreads wider.
	if e.cfg.Collector.Flavor() == pebs.IBS {
		l *= 0.65 + 0.7*rng.Float64()
	} else {
		l *= 0.8 + 0.4*rng.Float64()
	}
	s := pebs.Sample{
		Time:    t,
		CPU:     cpu,
		Thread:  thread,
		Addr:    rec.addr(),
		Level:   rec.level(),
		Latency: l,
		Write:   rec.write(),
	}
	pebs.Resolve(&s, e.machine, e.space)
	// The engine knows the true serving node (replicas resolve locally); the
	// profiler's page-table view may disagree for replicated regions, which
	// is faithful to the real tool. Keep the profiler's view.
	e.cfg.Collector.Add(s)
}
