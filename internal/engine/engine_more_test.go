package engine

import (
	"testing"

	"drbw/internal/alloc"
	"drbw/internal/memsim"
	"drbw/internal/pebs"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

// remoteScanFromNode builds n threads on one specific node scanning node-0
// data and returns the run result.
func remoteScanFromNode(t *testing.T, m *topology.Machine, node topology.NodeID, threads int, seed uint64) *Result {
	t.Helper()
	as := memsim.NewAddressSpace(m)
	h := alloc.NewHeap(as, 0x10000000)
	slice := uint64(2 * mb)
	obj, err := h.Malloc("data", uint64(threads)*slice, alloc.Site{Func: "init"}, memsim.BindTo(0))
	if err != nil {
		t.Fatal(err)
	}
	base := h.Object(obj).Base
	cpus := m.CPUsOfNode(node)
	if threads > len(cpus) {
		t.Fatalf("node %d has %d CPUs, need %d", node, len(cpus), threads)
	}
	ph := trace.Phase{Name: "scan"}
	var bind Binding
	for i := 0; i < threads; i++ {
		bind = append(bind, cpus[i])
		ph.Threads = append(ph.Threads, trace.ThreadSpec{
			Stream:     &trace.Seq{Base: base + uint64(i)*slice, Len: slice, Elem: 8},
			Ops:        1e6,
			MLP:        8,
			WorkCycles: 1,
		})
	}
	e, err := New(m, as, smallCaches(), testConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run([]trace.Phase{ph}, bind)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestLatencyMonotoneInPressure: adding threads to a contended channel
// never lowers the effective DRAM latency.
func TestLatencyMonotoneInPressure(t *testing.T) {
	m := topology.XeonE5_4650()
	var prev float64
	for _, threads := range []int{1, 2, 4, 8} {
		res := remoteScanFromNode(t, m, 1, threads, 50)
		lat := res.AvgDRAMLatency()
		if lat < prev-1 { // -1: tolerate numerical wiggle
			t.Errorf("latency dropped from %.0f to %.0f going to %d threads", prev, lat, threads)
		}
		prev = lat
	}
	// And it genuinely inflates at the high end.
	if prev < 1.3*m.Latencies().RemoteDRAM {
		t.Errorf("8 remote streamers latency %.0f; expected inflation", prev)
	}
}

// TestAsymmetricLinksMatter: the E5 preset's 1->0 link is narrower than
// 2->0; the same pressure from node 1 contends harder.
func TestAsymmetricLinksMatter(t *testing.T) {
	m := topology.XeonE5_4650()
	if m.Bandwidth(topology.Channel{Src: 1, Dst: 0}) >= m.Bandwidth(topology.Channel{Src: 2, Dst: 0}) {
		t.Skip("preset no longer asymmetric on 1->0 vs 2->0")
	}
	from1 := remoteScanFromNode(t, m, 1, 4, 51)
	from2 := remoteScanFromNode(t, m, 2, 4, 51)
	u1 := from1.Channel(topology.Channel{Src: 1, Dst: 0}).PeakUtil
	u2 := from2.Channel(topology.Channel{Src: 2, Dst: 0}).PeakUtil
	if u1 <= u2 {
		t.Errorf("narrow link utilization %.2f should exceed wide link %.2f", u1, u2)
	}
	if from1.Cycles <= from2.Cycles {
		t.Errorf("same work over the narrow link (%.0f cycles) should run slower than the wide one (%.0f)",
			from1.Cycles, from2.Cycles)
	}
}

// TestThroughputConservation: bytes carried over the node-0 controller must
// equal the workload's total DRAM traffic regardless of contention.
func TestThroughputConservation(t *testing.T) {
	m := topology.XeonE5_4650()
	res := remoteScanFromNode(t, m, 1, 8, 52)
	ctrl := res.Channel(topology.Channel{Src: 0, Dst: 0})
	link := res.Channel(topology.Channel{Src: 1, Dst: 0})
	// Remote traffic crosses both resources: byte counts match.
	if diff := ctrl.Bytes - link.Bytes; diff > 0.01*ctrl.Bytes || diff < -0.01*ctrl.Bytes {
		t.Errorf("controller carried %.0f bytes, link %.0f; remote flows must cross both", ctrl.Bytes, link.Bytes)
	}
	if ctrl.Bytes <= 0 {
		t.Fatal("no traffic accounted")
	}
	// 8 threads x 1e6 ops x ~1/8 line per op x 64B ~= 64 MB; allow a wide
	// band for prefetcher effects.
	total := 8.0 * 1e6 / 8 * 64
	if ctrl.Bytes < 0.5*total || ctrl.Bytes > 1.5*total {
		t.Errorf("controller bytes %.0f outside the plausible band around %.0f", ctrl.Bytes, total)
	}
}

// TestFasterLinkFasterFinish: with no contention, execution time equals
// ops/rate and is independent of which remote node runs the thread.
func TestSingleThreadRemoteIndependence(t *testing.T) {
	m := topology.XeonE5_4650()
	a := remoteScanFromNode(t, m, 1, 1, 53)
	b := remoteScanFromNode(t, m, 3, 1, 53)
	ratio := a.Cycles / b.Cycles
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("single uncontended thread timing differs by %.2fx across nodes", ratio)
	}
}

// TestIBSOverheadScalesWithComputeWork: IBS interrupts fire per micro-op,
// so a compute-heavy thread pays more profiling overhead than under PEBS.
func TestIBSOverheadScalesWithComputeWork(t *testing.T) {
	m := topology.Uniform(2, 4)
	overheadFor := func(flavor pebs.Flavor) float64 {
		as := memsim.NewAddressSpace(m)
		h := alloc.NewHeap(as, 0x10000000)
		obj, err := h.Malloc("d", 2*mb, alloc.Site{Func: "f"}, memsim.BindTo(0))
		if err != nil {
			t.Fatal(err)
		}
		base := h.Object(obj).Base
		mk := func(col *pebs.Collector) float64 {
			ph := trace.Phase{Name: "w", Threads: []trace.ThreadSpec{{
				Stream:     &trace.Seq{Base: base, Len: 2 * mb, Elem: 8},
				Ops:        1e6,
				MLP:        4,
				WorkCycles: 12, // compute heavy
			}}}
			cfg := testConfig(91)
			cfg.Collector = col
			e, err := New(m, as, smallCaches(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run([]trace.Phase{ph}, Binding{0})
			if err != nil {
				t.Fatal(err)
			}
			return res.Cycles
		}
		base0 := mk(nil)
		prof := mk(pebs.NewCollector(pebs.Config{Period: 2000, OverheadCycles: 1200, Flavor: flavor}, 9))
		return prof/base0 - 1
	}
	pebsOver := overheadFor(pebs.PEBS)
	ibsOver := overheadFor(pebs.IBS)
	if ibsOver <= pebsOver {
		t.Errorf("IBS overhead %.3f should exceed PEBS %.3f on compute-heavy code", ibsOver, pebsOver)
	}
}
