// Package engine executes simulated workloads on a simulated NUMA machine
// and produces execution times, channel traffic and PEBS samples.
//
// The engine uses a two-stage hybrid simulation:
//
//  1. Window simulation. For each phase, every thread's access stream is
//     driven through the cache hierarchy for a bounded, representative
//     window (threads interleaved round-robin, so the shared L3 and the
//     first-touch page resolution see concurrent behaviour). The window
//     yields each thread's steady-state access profile: the fraction of
//     accesses served by each memory layer, and the DRAM traffic it pushes
//     over each directed channel. A uniform reservoir of concrete access
//     records is kept per thread for sample generation.
//
//  2. Closed-loop integration. Each thread has an unloaded issue rate set
//     by its profile, compute work and memory-level parallelism. The offered
//     load on each directed channel follows from those rates; a channel
//     oversubscribed by a factor u > 1 caps the throughput of every flow
//     crossing it at 1/u (fair share), and — by Little's law for a closed
//     system with fixed MLP — inflates the effective DRAM latency of those
//     flows by ~u. Integration is event-driven over thread completions,
//     since the contention state only changes when a thread finishes. This
//     is where bandwidth contention lives: a saturated channel inflates the
//     latency of every remote access travelling it — the exact signal
//     (features 6/7 of the paper) DR-BW's classifier learns.
//
// A remote access consumes two resources in series — the inter-socket link
// S→T and the target node's memory controller T — so both utilizations
// throttle it and both queueing terms add to its latency. This reproduces
// the paper's observation that contention can arise in any interconnect
// channel or controller, and that interleaving helps by spreading controller
// load even though it adds link hops.
package engine

import (
	"fmt"
	"math"
	"math/rand"

	"drbw/internal/cache"
	"drbw/internal/memsim"
	"drbw/internal/obs"
	"drbw/internal/pebs"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

// Config tunes the simulation fidelity.
type Config struct {
	// Window is the number of representative accesses simulated per thread
	// per phase (after warmup). <= 0 uses 24576.
	Window int
	// Warmup accesses are driven through the caches but not profiled.
	// 0 (unset) uses Window/4; a negative value requests a true zero-warmup
	// run, profiling from the first access.
	Warmup int
	// ReservoirSize is the number of concrete access records kept per
	// thread for sample generation. <= 0 uses 2048.
	ReservoirSize int
	// QueueCoeff scales the sub-saturation queueing-delay ramp. <= 0 uses 1.
	QueueCoeff float64
	// MaxEpochs guards against non-termination. <= 0 uses 200000.
	MaxEpochs int
	// Seed drives all randomness (window interleaving jitter, reservoirs,
	// sample noise).
	Seed uint64
	// Collector, when non-nil, enables profiling: PEBS samples are emitted
	// and the per-sample overhead is charged to the sampled thread.
	Collector *pebs.Collector
	// SamplerFlavor is advisory: pipelines that construct their own
	// collectors per run (training collection, detection) copy it into
	// their collector configs. The engine itself reads the flavor from the
	// Collector.
	SamplerFlavor pebs.Flavor
	// CycleBudget, when positive, aborts the run once its accumulated
	// cycles reach the budget: the integration stops at the next epoch
	// boundary and any remaining phases — their window simulations
	// included — are skipped, with Result.Aborted set. The placement
	// search uses this as its branch-and-bound cutoff: a candidate run
	// that already exceeds the incumbent's cycle count cannot win, so
	// finishing it buys nothing. Abort points depend only on the budget
	// and the (deterministic) simulation state, never on wall-clock time
	// or scheduling, so budgeted runs stay bit-reproducible. 0 disables.
	CycleBudget float64
	// Workers bounds the goroutines that execute the window simulation.
	// Threads are sharded by the NUMA node they are bound to (cores — and so
	// L1/L2/LFB/prefetcher state — belong to exactly one node, and the L3 is
	// per node, so groups share no cache state); would-be first touches of
	// unresolved pages are recorded per group and arbitrated by global
	// interleave order when the groups join, which makes the parallel window
	// bit-identical to the serial interleave at any worker count. 0 uses
	// GOMAXPROCS; 1 forces the serial path. Values above the bound-node
	// count add nothing. The integration stage is serial either way.
	Workers int
	// Reference selects the slow map-based reference implementation of the
	// window and integration stages instead of the dense-indexed fast path.
	// Both paths share the same randomness discipline and must produce
	// bit-identical results; equivalence tests run every scenario through
	// both. Production callers leave this false.
	Reference bool
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 24576
	}
	if c.Warmup == 0 {
		c.Warmup = c.Window / 4
	} else if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.ReservoirSize <= 0 {
		c.ReservoirSize = 2048
	}
	if c.QueueCoeff <= 0 {
		c.QueueCoeff = 1
	}
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = 200000
	}
	return c
}

// Binding maps thread IDs to the hardware threads they are pinned on.
type Binding []topology.CPUID

// EvenBinding pins t threads across n nodes the way the paper's Tt-Nn
// configurations do: threads are divided evenly among the first n nodes and
// bound to consecutive cores of their node; hardware threads of a core are
// used only after every core of the node has one thread.
func EvenBinding(m *topology.Machine, threads, nodes int) (Binding, error) {
	if nodes <= 0 || nodes > m.Nodes() {
		return nil, fmt.Errorf("engine: %d nodes requested on a %d-node machine", nodes, m.Nodes())
	}
	if threads <= 0 || threads%nodes != 0 {
		return nil, fmt.Errorf("engine: %d threads do not divide evenly among %d nodes", threads, nodes)
	}
	per := threads / nodes
	bind := make(Binding, 0, threads)
	for n := 0; n < nodes; n++ {
		cpus := m.CPUsOfNode(topology.NodeID(n))
		if per > len(cpus) {
			return nil, fmt.Errorf("engine: %d threads per node exceed %d hardware threads", per, len(cpus))
		}
		// CPUsOfNode is sorted: physical cores first, then HT siblings.
		for i := 0; i < per; i++ {
			bind = append(bind, cpus[i])
		}
	}
	return bind, nil
}

// ChannelStats aggregates one channel over a phase.
type ChannelStats struct {
	Bytes    float64 // total bytes carried
	PeakUtil float64 // highest epoch utilization
	AvgUtil  float64 // time-weighted mean utilization
}

// PhaseResult reports one executed phase.
type PhaseResult struct {
	Name   string
	Cycles float64 // wall-clock cycles (slowest thread)
	// Aborted reports that the phase stopped at an epoch boundary because
	// the run's CycleBudget was exhausted; Cycles then holds the elapsed
	// time at the abort, not a completion time.
	Aborted bool
	// ThreadCycles is each thread's completion time.
	ThreadCycles []float64
	Channels     map[topology.Channel]ChannelStats
	// LocalDRAMAccesses / RemoteDRAMAccesses are estimated true totals (not
	// sample counts).
	LocalDRAMAccesses  float64
	RemoteDRAMAccesses float64
	// AvgDRAMLatency is the demand-weighted mean effective DRAM latency.
	AvgDRAMLatency float64
}

// Result reports a full run.
type Result struct {
	Phases []PhaseResult
	Cycles float64
	// Aborted reports that the run was cut off by Config.CycleBudget:
	// Cycles is at least the budget but not a completion time, and phases
	// after the aborted one were never simulated.
	Aborted bool
}

// Channel returns merged stats for ch across all phases.
func (r *Result) Channel(ch topology.Channel) ChannelStats {
	var out ChannelStats
	var cycles float64
	for _, p := range r.Phases {
		s := p.Channels[ch]
		out.Bytes += s.Bytes
		if s.PeakUtil > out.PeakUtil {
			out.PeakUtil = s.PeakUtil
		}
		out.AvgUtil += s.AvgUtil * p.Cycles
		cycles += p.Cycles
	}
	if cycles > 0 {
		out.AvgUtil /= cycles
	}
	return out
}

// RemoteDRAMAccesses sums the estimated remote access totals of all phases.
func (r *Result) RemoteDRAMAccesses() float64 {
	var t float64
	for _, p := range r.Phases {
		t += p.RemoteDRAMAccesses
	}
	return t
}

// LocalDRAMAccesses sums the estimated local access totals of all phases.
func (r *Result) LocalDRAMAccesses() float64 {
	var t float64
	for _, p := range r.Phases {
		t += p.LocalDRAMAccesses
	}
	return t
}

// AvgDRAMLatency returns the demand-weighted mean DRAM latency of the run.
func (r *Result) AvgDRAMLatency() float64 {
	var w, acc float64
	for _, p := range r.Phases {
		d := p.LocalDRAMAccesses + p.RemoteDRAMAccesses
		acc += p.AvgDRAMLatency * d
		w += d
	}
	if w == 0 {
		return 0
	}
	return acc / w
}

// Engine runs workloads on one machine + address space.
type Engine struct {
	machine *topology.Machine
	space   *memsim.AddressSpace
	hier    *cache.Hierarchy
	cfg     Config

	// Dense per-channel tables indexed by ci = src*nn+dst (the layout of
	// topology.ChannelIndex), precomputed once so the hot loops never touch a
	// map or recompute an unloaded latency.
	nn      int                // nodes
	nch     int                // nn*nn directed channels
	chans   []topology.Channel // ci -> Channel
	bw      []float64          // ci -> bytes/cycle
	baseLat []float64          // ci -> unloaded DRAM latency
	lfbLat  []float64          // ci -> unloaded LFB-served latency
	dstLoc  []int              // ci -> index of {Dst,Dst}, the target controller
	nodeOf  []topology.NodeID  // cpu -> node
	coreOf  []topology.CoreID  // cpu -> core

	// gauges are the cached per-channel utilization gauges (metrics.go),
	// published at phase boundaries.
	gauges *chanGauges
}

// New builds an engine. hcfg selects the cache geometry (zero value =
// E5-4650 defaults).
func New(m *topology.Machine, as *memsim.AddressSpace, hcfg cache.Config, cfg Config) (*Engine, error) {
	h, err := cache.NewHierarchy(m, hcfg)
	if err != nil {
		return nil, err
	}
	e := &Engine{machine: m, space: as, hier: h, cfg: cfg.withDefaults()}
	e.nn = m.Nodes()
	e.nch = m.NumChannels()
	e.bw = m.BandwidthTable()
	e.nodeOf = m.CPUNodeTable()
	e.coreOf = m.CPUCoreTable()
	e.chans = make([]topology.Channel, e.nch)
	e.baseLat = make([]float64, e.nch)
	e.lfbLat = make([]float64, e.nch)
	e.dstLoc = make([]int, e.nch)
	for ci := 0; ci < e.nch; ci++ {
		ch := m.ChannelAt(ci)
		e.chans[ci] = ch
		e.baseLat[ci] = e.pairBaseLatency(ch)
		e.lfbLat[ci] = e.lfbBaseLatency(ch)
		e.dstLoc[ci] = int(ch.Dst)*e.nn + int(ch.Dst)
	}
	e.gauges = channelGauges(e.nn)
	return e, nil
}

// Machine returns the engine's machine.
func (e *Engine) Machine() *topology.Machine { return e.machine }

// Close releases the engine's cache hierarchy back to the build pool so the
// next engine on the same machine and cache configuration skips the
// construction cost. The engine must not be used after Close.
func (e *Engine) Close() {
	if e.hier != nil {
		e.hier.Release()
		e.hier = nil
	}
}

// Space returns the engine's address space.
func (e *Engine) Space() *memsim.AddressSpace { return e.space }

// record is one reservoir entry from the window simulation, packed into a
// single word so the reservoir-sampling hot path builds and stores 8 bytes
// per draw instead of a multi-word struct: bits 0..46 hold the address (the
// cache layer rejects anything wider), bits 47..49 the serving level, bits
// 50..57 the home node, and bit 58 the write flag.
type record uint64

const (
	recAddrBits   = 47
	recAddrMask   = 1<<recAddrBits - 1
	recLevelShift = recAddrBits
	recHomeShift  = recLevelShift + 3
	recWriteShift = recHomeShift + 8
)

// packRecord builds a record. home must already be normalized (never
// InvalidNode) and below 256; level fits the three bits by construction.
func packRecord(addr uint64, level cache.Level, home topology.NodeID, write bool) record {
	r := record(addr&recAddrMask) |
		record(level)<<recLevelShift |
		record(uint8(home))<<recHomeShift
	if write {
		r |= 1 << recWriteShift
	}
	return r
}

func (r record) addr() uint64          { return uint64(r) & recAddrMask }
func (r record) level() cache.Level    { return cache.Level(r >> recLevelShift & 7) }
func (r record) home() topology.NodeID { return topology.NodeID(r >> recHomeShift & 0xff) }
func (r record) write() bool           { return r>>recWriteShift&1 != 0 }

// profile is a thread's steady-state access profile. The per-channel tables
// are dense, indexed by ci = src*nn+dst; the *Cis lists hold the ascending
// indices of the nonzero entries so the integration loops touch only live
// channels, in a deterministic order.
type profile struct {
	total float64
	// fLevel[cache.L1..] are fractions of accesses served per layer
	// (prefetched accesses count under LFB).
	fLevel [5]float64
	// memFrac[ci] is the fraction of accesses served by DRAM of dst issued
	// from src (always the thread's node).
	memFrac []float64
	// lfbFrac[ci] is the fraction of LFB-served accesses whose line homes
	// on dst.
	lfbFrac []float64
	// traffic[ci] is lines-per-access crossing physical channel ci (remote
	// accesses contribute to both the link and the target controller).
	traffic                 []float64
	memCis, lfbCis, trafCis []int32
	reservoir               []record
}

// splitmix64 is the standard 64-bit seed mixer; it turns structured seeds
// (seed ^ phase ^ thread) into well-distributed xorshift states.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// reservoirSeed derives the per-thread xorshift state for the window
// reservoir. Shared by the fast and reference paths.
func (e *Engine) reservoirSeed(phaseIdx uint64, thread int) uint64 {
	s := splitmix64(e.cfg.Seed ^ phaseIdx*1315423911 ^ uint64(thread)*0x9e3779b97f4a7c15)
	if s == 0 {
		s = 0x9e3779b97f4a7c15 // xorshift must not start at zero
	}
	return s
}

// xorshift64 advances the reservoir RNG state; callers keep the returned
// state. One multiply-free step is all the reservoir draw needs.
func xorshift64(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

// Run executes phases with the given thread binding. Every phase must have
// exactly len(bind) thread specs.
func (e *Engine) Run(phases []trace.Phase, bind Binding) (*Result, error) {
	if len(bind) == 0 {
		return nil, fmt.Errorf("engine: empty binding")
	}
	for _, cpu := range bind {
		if e.machine.NodeOfCPU(cpu) == topology.InvalidNode {
			return nil, fmt.Errorf("engine: binding references invalid CPU %d", cpu)
		}
	}
	res := &Result{}
	now := 0.0
	var st runStats
	// Causal tracing at phase granularity only: the span handles are no-ops
	// unless an exporter is installed, so the window and integration loops
	// stay untouched and the allocation gate holds. The reference oracle
	// stays silent, mirroring the metrics policy.
	var sp obs.SpanHandle
	if !e.cfg.Reference {
		sp = obs.BeginSpan("engine.run")
		sp.SetInt("phases", int64(len(phases)))
	}
	rng := rand.New(rand.NewSource(int64(e.cfg.Seed) ^ 0x51ed2701))
	for pi, ph := range phases {
		if len(ph.Threads) != len(bind) {
			sp.End()
			return nil, fmt.Errorf("engine: phase %q has %d threads, binding has %d", ph.Name, len(ph.Threads), len(bind))
		}
		if e.cfg.CycleBudget > 0 && now >= e.cfg.CycleBudget {
			// Budget already spent: skip the remaining phases entirely,
			// window simulations included.
			res.Aborted = true
			break
		}
		ps := sp.Child("engine.phase")
		ps.SetInt("phase", int64(pi))
		pr, err := e.runPhase(ph, bind, now, rng, uint64(pi), &st)
		if err != nil {
			ps.End()
			sp.End()
			return nil, fmt.Errorf("engine: phase %q: %w", ph.Name, err)
		}
		ps.SetFloat("cycles", pr.Cycles)
		ps.End()
		now += pr.Cycles
		res.Phases = append(res.Phases, *pr)
		if pr.Aborted {
			res.Aborted = true
			break
		}
	}
	res.Cycles = now
	if !e.cfg.Reference {
		sp.SetFloat("cycles", now)
		sp.End()
		st.merge()
	}
	return res, nil
}

func (e *Engine) runPhase(ph trace.Phase, bind Binding, start float64, rng *rand.Rand, phaseIdx uint64, st *runStats) (*PhaseResult, error) {
	if e.cfg.Reference {
		profiles, err := e.windowRef(ph, bind, phaseIdx)
		if err != nil {
			return nil, err
		}
		return e.integrateRef(ph, bind, profiles, start, rng)
	}
	st.phases++
	profiles, err := e.window(ph, bind, phaseIdx, st)
	if err != nil {
		return nil, err
	}
	return e.integrate(ph, bind, profiles, start, rng, st)
}

// streamBatch is how many accesses each thread's stream refill pulls at once;
// it amortizes the per-access interface dispatch of Stream.Next.
const streamBatch = 256

// winThread is the per-thread state of one simulation window, gathered into
// one struct so the hot loop does a single indexed load per thread per step
// instead of touching a dozen parallel slices.
type winThread struct {
	idx  int // thread index (seeds, profiles)
	node topology.NodeID
	core topology.CoreID

	// Batched stream refill. A short refill means the stream hit its window
	// boundary; the Reset the per-access path performed at the boundary step
	// is deferred to the step that actually needs the next access, with the
	// same step-derived seed.
	stream trace.Stream
	buf    []trace.Access
	bpos   int
	blen   int
	bshort bool

	rstate uint64   // reservoir xorshift state
	seen   int      // post-warmup accesses observed (reservoir index)
	res    []record // reservoir, handed to prof after the loop
	total  int
	level  [5]int
	mem    []int // per-channel counters, indexed by ci = src*nn+dst
	lfb    []int
	traf   []int
	prof   *profile
}

// refill loads the next batch from the thread's stream, applying the
// deferred window-boundary Reset with the seed of the step that consumes
// the first access.
func (t *winThread) refill(seed uint64, step int) error {
	t.buf = t.buf[:cap(t.buf)]
	stepSeed := seed ^ (uint64(step+1) * 2654435761) ^ uint64(t.idx)
	var m int
	if t.bshort {
		// The previous refill ended at the stream's window boundary; this
		// step is where Next would have returned ok=false.
		t.stream.Reset(stepSeed)
		m = trace.Fill(t.stream, t.buf)
		if m == 0 {
			return fmt.Errorf("thread %d stream produced no accesses", t.idx)
		}
	} else {
		m = trace.Fill(t.stream, t.buf)
		if m == 0 {
			// Boundary landed exactly on the refill point.
			t.stream.Reset(stepSeed)
			m = trace.Fill(t.stream, t.buf)
			if m == 0 {
				return fmt.Errorf("thread %d stream produced no accesses", t.idx)
			}
		}
	}
	t.bshort = m < streamBatch
	t.bpos, t.blen = 0, m
	return nil
}

// window drives every thread's stream through the caches and builds
// profiles. Per-channel accounting is dense (indexed by ci = src*nn+dst) in
// flat integer tables; map/struct forms exist only at phase boundaries.
func (e *Engine) window(ph trace.Phase, bind Binding, phaseIdx uint64, st *runStats) ([]*profile, error) {
	e.hier.Flush()
	n := len(bind)
	nch := e.nch
	profiles := make([]*profile, n)
	// act holds the running threads in thread order; the interleave visits
	// them exactly as the per-access path visited the active subset.
	act := make([]winThread, 0, n)
	for i, spec := range ph.Threads {
		profiles[i] = &profile{}
		if spec.Stream == nil || spec.Ops <= 0 {
			continue
		}
		spec.Stream.Reset(e.cfg.Seed + phaseIdx*1315423911 + uint64(i))
		act = append(act, winThread{
			idx:    i,
			node:   e.nodeOf[bind[i]],
			core:   e.coreOf[bind[i]],
			stream: spec.Stream,
			buf:    make([]trace.Access, 0, streamBatch),
			rstate: e.reservoirSeed(phaseIdx, i),
			res:    make([]record, 0, e.cfg.ReservoirSize),
			mem:    make([]int, nch),
			lfb:    make([]int, nch),
			traf:   make([]int, nch),
			prof:   profiles[i],
		})
	}

	if groups := e.windowGroups(act); groups != nil {
		if err := e.windowParallel(act, groups); err != nil {
			return nil, err
		}
	} else if err := e.windowSerial(act); err != nil {
		return nil, err
	}

	st.warmup += uint64(e.cfg.Warmup) * uint64(len(act))
	for ti := range act {
		t := &act[ti]
		t.prof.reservoir = t.res
		if t.total == 0 {
			continue
		}
		st.accesses += uint64(t.total)
		for l := 0; l < 5; l++ {
			st.level[l] += uint64(t.level[l])
		}
		p := t.prof
		tf := float64(t.total)
		p.total = tf
		for l := 0; l < 5; l++ {
			p.fLevel[l] = float64(t.level[l]) / tf
		}
		p.memFrac = make([]float64, nch)
		p.lfbFrac = make([]float64, nch)
		p.traffic = make([]float64, nch)
		for ci := 0; ci < nch; ci++ {
			if v := t.mem[ci]; v > 0 {
				p.memFrac[ci] = float64(v) / tf
				p.memCis = append(p.memCis, int32(ci))
			}
			if v := t.lfb[ci]; v > 0 {
				p.lfbFrac[ci] = float64(v) / tf
				p.lfbCis = append(p.lfbCis, int32(ci))
			}
			if v := t.traf[ci]; v > 0 {
				p.traffic[ci] = float64(v) / tf
				p.trafCis = append(p.trafCis, int32(ci))
			}
		}
	}
	return profiles, nil
}

// windowSerial is the single-goroutine interleave: each turn advances one
// access per active thread, in thread order, so the shared L3 and
// first-touch resolution see concurrent access. It defines the reference
// ordering the parallel path (parallel.go) must reproduce bit-for-bit.
func (e *Engine) windowSerial(act []winThread) error {
	total := e.cfg.Warmup + e.cfg.Window
	hier, space, seed := e.hier, e.space, e.cfg.Seed
	rsz := e.cfg.ReservoirSize
	nn := e.nn

	// The warmup steps run as their own loop: they exist to populate the
	// caches and trigger first-touch placement (HomeFor's side effect), so
	// they skip the accounting and the per-access warm check entirely.
	warmup := e.cfg.Warmup
	for step := 0; step < warmup; step++ {
		for ti := range act {
			t := &act[ti]
			if t.bpos == t.blen {
				if err := t.refill(seed, step); err != nil {
					return err
				}
			}
			a := &t.buf[t.bpos]
			t.bpos++
			r := hier.AccessOn(t.core, t.node, a.Addr)
			if r.Level == cache.MEM || r.Level == cache.LFB {
				space.HomeFor(a.Addr, t.node)
			}
		}
	}
	for step := warmup; step < total; step++ {
		for ti := range act {
			t := &act[ti]
			if t.bpos == t.blen {
				if err := t.refill(seed, step); err != nil {
					return err
				}
			}
			a := &t.buf[t.bpos]
			t.bpos++
			r := hier.AccessOn(t.core, t.node, a.Addr)
			home := t.node
			if r.Level == cache.MEM || r.Level == cache.LFB {
				home = space.HomeFor(a.Addr, t.node)
				if home == topology.InvalidNode {
					home = t.node
				}
			}
			t.total++
			t.level[r.Level]++
			ci := int(t.node)*nn + int(home)
			switch r.Level {
			case cache.MEM:
				t.mem[ci]++
			case cache.LFB:
				t.lfb[ci]++
			}
			if r.DRAMTraffic {
				t.traf[ci]++
				if t.node != home {
					t.traf[int(home)*nn+int(home)]++
				}
			}
			// Uniform reservoir of concrete records; the record is only
			// materialized on the paths that store it.
			t.seen++
			if len(t.res) < rsz {
				t.res = append(t.res, packRecord(a.Addr, r.Level, home, a.Write))
			} else {
				x := xorshift64(t.rstate)
				t.rstate = x
				if j := int(x % uint64(t.seen)); j < rsz {
					t.res[j] = packRecord(a.Addr, r.Level, home, a.Write)
				}
			}
		}
	}
	return nil
}

// pairBaseLatency returns the unloaded DRAM latency for a (src,dst) pair.
func (e *Engine) pairBaseLatency(pair topology.Channel) float64 {
	lat := e.machine.Latencies()
	if pair.Local() {
		return lat.LocalDRAM
	}
	return lat.RemoteDRAM
}

// lfbBaseLatency is the unloaded cost of an access served by a line fill
// buffer whose line is in flight from pair's DRAM: the configured LFB wait,
// scaled up when the line crosses a socket — a remote fill takes longer to
// arrive, so the buffered demand load waits proportionally longer.
func (e *Engine) lfbBaseLatency(pair topology.Channel) float64 {
	lat := e.machine.Latencies()
	return lat.LFB * e.pairBaseLatency(pair) / lat.LocalDRAM
}

// inflation maps a channel's offered utilization to a latency multiplier.
// Below saturation it is a gentle queueing ramp; past saturation the queue
// grows with the oversubscription factor (a closed system with fixed MLP has
// latency proportional to offered/serviced load — Little's law). QueueCoeff
// scales the sub-saturation ramp.
func (e *Engine) inflation(u float64) float64 {
	k := e.cfg.QueueCoeff
	switch {
	case u <= 0:
		return 1
	case u <= 0.7:
		return 1 + k*0.45*u
	case u <= 1:
		d := u - 0.7
		return 1 + k*(0.45*u+5.5*d*d)
	default:
		return 1 + k*(0.45+5.5*0.09) + (u - 1)
	}
}

// pairInflation combines the link and target-controller pressure of a
// (src,dst) pair: the binding (most loaded) resource dominates the queue.
func (e *Engine) pairInflation(pair topology.Channel, util map[topology.Channel]float64) float64 {
	u := util[topology.Channel{Src: pair.Dst, Dst: pair.Dst}]
	if !pair.Local() {
		if lu := util[pair]; lu > u {
			u = lu
		}
	}
	return e.inflation(u)
}

// pairLatency is the effective DRAM latency of a pair under the current
// offered utilizations.
func (e *Engine) pairLatency(pair topology.Channel, util map[topology.Channel]float64) float64 {
	return e.pairBaseLatency(pair) * e.pairInflation(pair, util)
}

// pairInflationCi is pairInflation over the dense utilization table.
func (e *Engine) pairInflationCi(ci int, util []float64) float64 {
	dl := e.dstLoc[ci]
	u := util[dl]
	if ci != dl {
		if lu := util[ci]; lu > u {
			u = lu
		}
	}
	return e.inflation(u)
}

// integrate advances the phase over time epochs until every thread finishes.
func (e *Engine) integrate(ph trace.Phase, bind Binding, profiles []*profile, start float64, rng *rand.Rand, st *runStats) (*PhaseResult, error) {
	n := len(bind)
	lat := e.machine.Latencies()
	remaining := make([]float64, n)
	finish := make([]float64, n)
	sampleAcc := make([]float64, n)
	anyWork := false
	mlp := make([]float64, n)
	for i, spec := range ph.Threads {
		remaining[i] = spec.Ops
		if spec.Ops > 0 && profiles[i].total > 0 {
			anyWork = true
		}
		switch {
		case spec.MLP == 0:
			mlp[i] = 1 // unset: a single outstanding miss
		case spec.MLP < 1:
			return nil, fmt.Errorf("thread %d MLP %g < 1", i, spec.MLP)
		default:
			mlp[i] = spec.MLP
		}
	}
	pr := &PhaseResult{
		Name:         ph.Name,
		ThreadCycles: make([]float64, n),
		Channels:     make(map[topology.Channel]ChannelStats),
	}
	if !anyWork {
		return pr, nil
	}

	lineSize := float64(e.machine.LineSize())
	perSampleOverhead := 0.0
	period := 0.0
	ibs := false
	if e.cfg.Collector != nil {
		period = float64(e.cfg.Collector.Period())
		perSampleOverhead = e.cfg.Collector.OverheadCycles()
		ibs = e.cfg.Collector.Flavor() == pebs.IBS
	}

	// Threads sharing a physical core contend for issue slots; compute-bound
	// work degrades with SMT sharing while memory stalls overlap freely.
	coreLoad := make([]float64, e.machine.NumCores())
	for i := range bind {
		if ph.Threads[i].Ops > 0 && profiles[i].total > 0 {
			coreLoad[e.coreOf[bind[i]]]++
		}
	}

	// Unloaded issue rate of each thread (accesses/cycle): constant per
	// phase because the profile is steady-state. Channel sums iterate the
	// nonzero-index lists in ascending ci order, so float accumulation order
	// is deterministic (maps would reassociate the sums run to run).
	r0 := make([]float64, n)
	for i := range r0 {
		if remaining[i] <= 0 || profiles[i].total == 0 {
			continue
		}
		p := profiles[i]
		spec := ph.Threads[i]
		memLat := 0.0
		for _, ci := range p.memCis {
			memLat += p.memFrac[ci] * e.baseLat[ci]
		}
		for _, ci := range p.lfbCis {
			memLat += p.lfbFrac[ci] * e.lfbLat[ci]
		}
		cacheLat := p.fLevel[cache.L1]*lat.L1 + p.fLevel[cache.L2]*lat.L2 + p.fLevel[cache.L3]*lat.L3
		per := spec.WorkCycles*coreLoad[e.coreOf[bind[i]]] + (cacheLat+memLat)/mlp[i]
		if per <= 0 {
			per = 0.1
		}
		r0[i] = 1 / per
	}

	now := 0.0
	var dramAccAcc, dramLatAcc float64
	nch := e.nch
	util := make([]float64, nch)
	bytesAcc := make([]float64, nch)
	peakUtil := make([]float64, nch)
	avgUtilAcc := make([]float64, nch)
	eff := make([]float64, n)
	nodes := make([]topology.NodeID, n)
	for i := range bind {
		nodes[i] = e.nodeOf[bind[i]]
	}

	for epoch := 0; epoch < e.cfg.MaxEpochs; epoch++ {
		// Offered utilization from the unthrottled rates of running threads.
		for ci := range util {
			util[ci] = 0
		}
		running := false
		for i := range r0 {
			if remaining[i] <= 0 || r0[i] == 0 {
				continue
			}
			running = true
			p := profiles[i]
			for _, ci := range p.trafCis {
				util[ci] += r0[i] * p.traffic[ci] * lineSize / e.bw[ci]
			}
		}
		if !running {
			break
		}
		// Fair-share throughput: every flow crossing an oversubscribed
		// channel is scaled by the worst oversubscription it crosses, which
		// brings each channel to at most its capacity.
		for i := range r0 {
			eff[i] = 0
			if remaining[i] <= 0 || r0[i] == 0 {
				continue
			}
			worst := 1.0
			p := profiles[i]
			for _, ci := range p.trafCis {
				if p.traffic[ci] <= 1e-9 {
					continue
				}
				if u := util[ci]; u > worst {
					worst = u
				}
			}
			eff[i] = r0[i] / worst
			// A sample stalls the core for the assist+drain cost; the
			// stall steals wall-clock time even from bandwidth-capped
			// threads (the channel idles while the core is stopped), so it
			// applies after the throughput cap. IBS counts micro-ops, so
			// compute-heavy threads take proportionally more interrupts
			// than PEBS would for the same memory traffic.
			if period > 0 && perSampleOverhead > 0 {
				opsPerAccess := 1.0
				if ibs {
					opsPerAccess += ph.Threads[i].WorkCycles
				}
				stall := perSampleOverhead * opsPerAccess * eff[i] / period
				if stall > 0.5 {
					stall = 0.5
				}
				eff[i] *= 1 - stall
			}
		}

		// Run until the next thread completes (contention state is constant
		// in between).
		dt := math.Inf(1)
		for i := range eff {
			if eff[i] > 0 && remaining[i] > 0 {
				if est := remaining[i] / eff[i]; est < dt {
					dt = est
				}
			}
		}
		if math.IsInf(dt, 1) {
			break
		}

		// Advance and account.
		for i := range eff {
			if eff[i] == 0 || remaining[i] <= 0 {
				continue
			}
			done := eff[i] * dt
			if done >= remaining[i]-1e-9 {
				done = remaining[i]
				finish[i] = now + dt
			}
			remaining[i] -= done
			p := profiles[i]
			for _, ci := range p.trafCis {
				bytesAcc[ci] += done * p.traffic[ci] * lineSize
			}
			for _, ci := range p.memCis {
				cnt := done * p.memFrac[ci]
				l := e.baseLat[ci] * e.pairInflationCi(int(ci), util)
				dramAccAcc += cnt
				dramLatAcc += cnt * l
				if int(ci) == e.dstLoc[ci] {
					pr.LocalDRAMAccesses += cnt
				} else {
					pr.RemoteDRAMAccesses += cnt
				}
			}
			// PEBS sampling for this thread.
			if period > 0 && len(p.reservoir) > 0 {
				sampleAcc[i] += done
				for sampleAcc[i] >= period {
					sampleAcc[i] -= period
					rec := p.reservoir[rng.Intn(len(p.reservoir))]
					e.emitSample(i, bind[i], nodes[i], rec, start+now+rng.Float64()*dt, util, rng)
					st.samples++
				}
			}
		}
		for ci := 0; ci < nch; ci++ {
			u := util[ci]
			if u == 0 {
				continue
			}
			if u > peakUtil[ci] {
				peakUtil[ci] = u
			}
			avgUtilAcc[ci] += u * dt // normalized at the end
		}
		now += dt
		st.epochs++
		if e.cfg.CycleBudget > 0 && start+now >= e.cfg.CycleBudget {
			pr.Aborted = true
			break
		}
	}

	pr.Cycles = 0.0
	for i := range finish {
		if finish[i] == 0 && ph.Threads[i].Ops > 0 && profiles[i].total > 0 {
			finish[i] = now // ran until the epoch guard
		}
		pr.ThreadCycles[i] = finish[i]
		if finish[i] > pr.Cycles {
			pr.Cycles = finish[i]
		}
	}
	// Dense accumulators convert to the public map form only here, at the
	// phase boundary; channels that never carried traffic or utilization get
	// no entry, matching the map-based accounting.
	for ci := 0; ci < nch; ci++ {
		if bytesAcc[ci] == 0 && peakUtil[ci] == 0 && avgUtilAcc[ci] == 0 {
			continue
		}
		s := ChannelStats{Bytes: bytesAcc[ci], PeakUtil: peakUtil[ci], AvgUtil: avgUtilAcc[ci]}
		if pr.Cycles > 0 {
			s.AvgUtil /= pr.Cycles
		}
		// Phase-boundary utilization snapshot for the metrics endpoints.
		e.gauges.peak[ci].Max(s.PeakUtil)
		e.gauges.avg[ci].Set(s.AvgUtil)
		pr.Channels[e.chans[ci]] = s
	}
	if dramAccAcc > 0 {
		pr.AvgDRAMLatency = dramLatAcc / dramAccAcc
	}
	return pr, nil
}

// emitSample synthesizes one PEBS sample from a reservoir record under the
// current contention state.
func (e *Engine) emitSample(thread int, cpu topology.CPUID, node topology.NodeID, rec record, t float64, util []float64, rng *rand.Rand) {
	lat := e.machine.Latencies()
	ci := int(node)*e.nn + int(rec.home())
	var l float64
	switch rec.level() {
	case cache.L1:
		l = lat.L1
	case cache.L2:
		l = lat.L2
	case cache.L3:
		l = lat.L3
	case cache.LFB:
		l = e.lfbLat[ci] * e.pairInflationCi(ci, util)
	case cache.MEM:
		l = e.baseLat[ci] * e.pairInflationCi(ci, util)
	}
	// Measurement noise: PEBS's dedicated latency counter carries ±20%
	// pipeline-induced spread; IBS derives load timing from tagged-op
	// retirement and spreads wider.
	if e.cfg.Collector.Flavor() == pebs.IBS {
		l *= 0.65 + 0.7*rng.Float64()
	} else {
		l *= 0.8 + 0.4*rng.Float64()
	}
	s := pebs.Sample{
		Time:    t,
		CPU:     cpu,
		Thread:  thread,
		Addr:    rec.addr(),
		Level:   rec.level(),
		Latency: l,
		Write:   rec.write(),
	}
	pebs.Resolve(&s, e.machine, e.space)
	// The engine knows the true serving node (replicas resolve locally); the
	// profiler's page-table view may disagree for replicated regions, which
	// is faithful to the real tool. Keep the profiler's view.
	e.cfg.Collector.Add(s)
}
