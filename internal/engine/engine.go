// Package engine executes simulated workloads on a simulated NUMA machine
// and produces execution times, channel traffic and PEBS samples.
//
// The engine uses a two-stage hybrid simulation:
//
//  1. Window simulation. For each phase, every thread's access stream is
//     driven through the cache hierarchy for a bounded, representative
//     window (threads interleaved round-robin, so the shared L3 and the
//     first-touch page resolution see concurrent behaviour). The window
//     yields each thread's steady-state access profile: the fraction of
//     accesses served by each memory layer, and the DRAM traffic it pushes
//     over each directed channel. A uniform reservoir of concrete access
//     records is kept per thread for sample generation.
//
//  2. Closed-loop integration. Each thread has an unloaded issue rate set
//     by its profile, compute work and memory-level parallelism. The offered
//     load on each directed channel follows from those rates; a channel
//     oversubscribed by a factor u > 1 caps the throughput of every flow
//     crossing it at 1/u (fair share), and — by Little's law for a closed
//     system with fixed MLP — inflates the effective DRAM latency of those
//     flows by ~u. Integration is event-driven over thread completions,
//     since the contention state only changes when a thread finishes. This
//     is where bandwidth contention lives: a saturated channel inflates the
//     latency of every remote access travelling it — the exact signal
//     (features 6/7 of the paper) DR-BW's classifier learns.
//
// A remote access consumes two resources in series — the inter-socket link
// S→T and the target node's memory controller T — so both utilizations
// throttle it and both queueing terms add to its latency. This reproduces
// the paper's observation that contention can arise in any interconnect
// channel or controller, and that interleaving helps by spreading controller
// load even though it adds link hops.
package engine

import (
	"fmt"
	"math"
	"math/rand"

	"drbw/internal/cache"
	"drbw/internal/memsim"
	"drbw/internal/pebs"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

// Config tunes the simulation fidelity.
type Config struct {
	// Window is the number of representative accesses simulated per thread
	// per phase (after warmup). <= 0 uses 24576.
	Window int
	// Warmup accesses are driven through the caches but not profiled.
	// 0 (unset) uses Window/4; a negative value requests a true zero-warmup
	// run, profiling from the first access.
	Warmup int
	// ReservoirSize is the number of concrete access records kept per
	// thread for sample generation. <= 0 uses 2048.
	ReservoirSize int
	// QueueCoeff scales the sub-saturation queueing-delay ramp. <= 0 uses 1.
	QueueCoeff float64
	// MaxEpochs guards against non-termination. <= 0 uses 200000.
	MaxEpochs int
	// Seed drives all randomness (window interleaving jitter, reservoirs,
	// sample noise).
	Seed uint64
	// Collector, when non-nil, enables profiling: PEBS samples are emitted
	// and the per-sample overhead is charged to the sampled thread.
	Collector *pebs.Collector
	// SamplerFlavor is advisory: pipelines that construct their own
	// collectors per run (training collection, detection) copy it into
	// their collector configs. The engine itself reads the flavor from the
	// Collector.
	SamplerFlavor pebs.Flavor
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 24576
	}
	if c.Warmup == 0 {
		c.Warmup = c.Window / 4
	} else if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.ReservoirSize <= 0 {
		c.ReservoirSize = 2048
	}
	if c.QueueCoeff <= 0 {
		c.QueueCoeff = 1
	}
	if c.MaxEpochs <= 0 {
		c.MaxEpochs = 200000
	}
	return c
}

// Binding maps thread IDs to the hardware threads they are pinned on.
type Binding []topology.CPUID

// EvenBinding pins t threads across n nodes the way the paper's Tt-Nn
// configurations do: threads are divided evenly among the first n nodes and
// bound to consecutive cores of their node; hardware threads of a core are
// used only after every core of the node has one thread.
func EvenBinding(m *topology.Machine, threads, nodes int) (Binding, error) {
	if nodes <= 0 || nodes > m.Nodes() {
		return nil, fmt.Errorf("engine: %d nodes requested on a %d-node machine", nodes, m.Nodes())
	}
	if threads <= 0 || threads%nodes != 0 {
		return nil, fmt.Errorf("engine: %d threads do not divide evenly among %d nodes", threads, nodes)
	}
	per := threads / nodes
	bind := make(Binding, 0, threads)
	for n := 0; n < nodes; n++ {
		cpus := m.CPUsOfNode(topology.NodeID(n))
		if per > len(cpus) {
			return nil, fmt.Errorf("engine: %d threads per node exceed %d hardware threads", per, len(cpus))
		}
		// CPUsOfNode is sorted: physical cores first, then HT siblings.
		for i := 0; i < per; i++ {
			bind = append(bind, cpus[i])
		}
	}
	return bind, nil
}

// ChannelStats aggregates one channel over a phase.
type ChannelStats struct {
	Bytes    float64 // total bytes carried
	PeakUtil float64 // highest epoch utilization
	AvgUtil  float64 // time-weighted mean utilization
}

// PhaseResult reports one executed phase.
type PhaseResult struct {
	Name   string
	Cycles float64 // wall-clock cycles (slowest thread)
	// ThreadCycles is each thread's completion time.
	ThreadCycles []float64
	Channels     map[topology.Channel]ChannelStats
	// LocalDRAMAccesses / RemoteDRAMAccesses are estimated true totals (not
	// sample counts).
	LocalDRAMAccesses  float64
	RemoteDRAMAccesses float64
	// AvgDRAMLatency is the demand-weighted mean effective DRAM latency.
	AvgDRAMLatency float64
}

// Result reports a full run.
type Result struct {
	Phases []PhaseResult
	Cycles float64
}

// Channel returns merged stats for ch across all phases.
func (r *Result) Channel(ch topology.Channel) ChannelStats {
	var out ChannelStats
	var cycles float64
	for _, p := range r.Phases {
		s := p.Channels[ch]
		out.Bytes += s.Bytes
		if s.PeakUtil > out.PeakUtil {
			out.PeakUtil = s.PeakUtil
		}
		out.AvgUtil += s.AvgUtil * p.Cycles
		cycles += p.Cycles
	}
	if cycles > 0 {
		out.AvgUtil /= cycles
	}
	return out
}

// RemoteDRAMAccesses sums the estimated remote access totals of all phases.
func (r *Result) RemoteDRAMAccesses() float64 {
	var t float64
	for _, p := range r.Phases {
		t += p.RemoteDRAMAccesses
	}
	return t
}

// LocalDRAMAccesses sums the estimated local access totals of all phases.
func (r *Result) LocalDRAMAccesses() float64 {
	var t float64
	for _, p := range r.Phases {
		t += p.LocalDRAMAccesses
	}
	return t
}

// AvgDRAMLatency returns the demand-weighted mean DRAM latency of the run.
func (r *Result) AvgDRAMLatency() float64 {
	var w, acc float64
	for _, p := range r.Phases {
		d := p.LocalDRAMAccesses + p.RemoteDRAMAccesses
		acc += p.AvgDRAMLatency * d
		w += d
	}
	if w == 0 {
		return 0
	}
	return acc / w
}

// Engine runs workloads on one machine + address space.
type Engine struct {
	machine *topology.Machine
	space   *memsim.AddressSpace
	hier    *cache.Hierarchy
	cfg     Config
}

// New builds an engine. hcfg selects the cache geometry (zero value =
// E5-4650 defaults).
func New(m *topology.Machine, as *memsim.AddressSpace, hcfg cache.Config, cfg Config) (*Engine, error) {
	h, err := cache.NewHierarchy(m, hcfg)
	if err != nil {
		return nil, err
	}
	return &Engine{machine: m, space: as, hier: h, cfg: cfg.withDefaults()}, nil
}

// Machine returns the engine's machine.
func (e *Engine) Machine() *topology.Machine { return e.machine }

// Space returns the engine's address space.
func (e *Engine) Space() *memsim.AddressSpace { return e.space }

// record is one reservoir entry from the window simulation.
type record struct {
	addr  uint64
	level cache.Level
	home  topology.NodeID
	write bool
}

// profile is a thread's steady-state access profile.
type profile struct {
	total float64
	// fLevel[cache.L1..] are fractions of accesses served per layer
	// (prefetched accesses count under LFB).
	fLevel [5]float64
	// memFrac[pair] is the fraction of accesses served by DRAM of pair.Dst
	// issued from pair.Src (always the thread's node).
	memFrac map[topology.Channel]float64
	// lfbFrac[pair] is the fraction of LFB-served accesses whose line homes
	// on pair.Dst.
	lfbFrac map[topology.Channel]float64
	// traffic[ch] is lines-per-access crossing physical channel ch (remote
	// accesses contribute to both the link and the target controller).
	traffic   map[topology.Channel]float64
	reservoir []record
}

// Run executes phases with the given thread binding. Every phase must have
// exactly len(bind) thread specs.
func (e *Engine) Run(phases []trace.Phase, bind Binding) (*Result, error) {
	if len(bind) == 0 {
		return nil, fmt.Errorf("engine: empty binding")
	}
	for _, cpu := range bind {
		if e.machine.NodeOfCPU(cpu) == topology.InvalidNode {
			return nil, fmt.Errorf("engine: binding references invalid CPU %d", cpu)
		}
	}
	res := &Result{}
	now := 0.0
	rng := rand.New(rand.NewSource(int64(e.cfg.Seed) ^ 0x51ed2701))
	for pi, ph := range phases {
		if len(ph.Threads) != len(bind) {
			return nil, fmt.Errorf("engine: phase %q has %d threads, binding has %d", ph.Name, len(ph.Threads), len(bind))
		}
		pr, err := e.runPhase(ph, bind, now, rng, uint64(pi))
		if err != nil {
			return nil, fmt.Errorf("engine: phase %q: %w", ph.Name, err)
		}
		now += pr.Cycles
		res.Phases = append(res.Phases, *pr)
	}
	res.Cycles = now
	return res, nil
}

func (e *Engine) runPhase(ph trace.Phase, bind Binding, start float64, rng *rand.Rand, phaseIdx uint64) (*PhaseResult, error) {
	profiles, err := e.window(ph, bind, rng, phaseIdx)
	if err != nil {
		return nil, err
	}
	return e.integrate(ph, bind, profiles, start, rng)
}

// window drives every thread's stream through the caches and builds
// profiles.
func (e *Engine) window(ph trace.Phase, bind Binding, rng *rand.Rand, phaseIdx uint64) ([]*profile, error) {
	e.hier.Flush()
	n := len(bind)
	profiles := make([]*profile, n)
	streams := make([]trace.Stream, n)
	active := make([]bool, n)
	for i, spec := range ph.Threads {
		profiles[i] = &profile{
			memFrac: make(map[topology.Channel]float64),
			lfbFrac: make(map[topology.Channel]float64),
			traffic: make(map[topology.Channel]float64),
		}
		if spec.Stream != nil && spec.Ops > 0 {
			streams[i] = spec.Stream
			streams[i].Reset(e.cfg.Seed + phaseIdx*1315423911 + uint64(i))
			active[i] = true
		}
	}

	total := e.cfg.Warmup + e.cfg.Window
	// counts are accumulated as integers during the walk for speed.
	type counts struct {
		total    int
		level    [5]int
		mem, lfb map[topology.Channel]int
		traffic  map[topology.Channel]int
		seen     int // post-warmup accesses observed (reservoir index)
	}
	cs := make([]*counts, n)
	for i := range cs {
		cs[i] = &counts{
			mem:     make(map[topology.Channel]int),
			lfb:     make(map[topology.Channel]int),
			traffic: make(map[topology.Channel]int),
		}
	}

	// Round-robin interleave so the shared L3 and first-touch resolution see
	// concurrent access. Each turn advances one access per active thread.
	for step := 0; step < total; step++ {
		warm := step < e.cfg.Warmup
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			a, ok := streams[i].Next()
			if !ok {
				streams[i].Reset(e.cfg.Seed ^ (uint64(step+1) * 2654435761) ^ uint64(i))
				a, ok = streams[i].Next()
				if !ok {
					return nil, fmt.Errorf("thread %d stream produced no accesses", i)
				}
			}
			cpu := bind[i]
			node := e.machine.NodeOfCPU(cpu)
			r := e.hier.Access(cpu, a.Addr)
			home := node
			if r.Level == cache.MEM || r.Level == cache.LFB {
				home = e.space.HomeFor(a.Addr, node)
				if home == topology.InvalidNode {
					home = node
				}
			}
			if warm {
				continue
			}
			c := cs[i]
			c.total++
			c.level[r.Level]++
			pair := topology.Channel{Src: node, Dst: home}
			switch r.Level {
			case cache.MEM:
				c.mem[pair]++
			case cache.LFB:
				c.lfb[pair]++
			}
			if r.DRAMTraffic {
				if pair.Local() {
					c.traffic[pair]++
				} else {
					c.traffic[pair]++
					c.traffic[topology.Channel{Src: home, Dst: home}]++
				}
			}
			// Uniform reservoir of concrete records.
			p := profiles[i]
			c.seen++
			rec := record{addr: a.Addr, level: r.Level, home: home, write: a.Write}
			if len(p.reservoir) < e.cfg.ReservoirSize {
				p.reservoir = append(p.reservoir, rec)
			} else if j := rng.Intn(c.seen); j < e.cfg.ReservoirSize {
				p.reservoir[j] = rec
			}
		}
	}

	for i, c := range cs {
		p := profiles[i]
		if c.total == 0 {
			continue
		}
		tf := float64(c.total)
		p.total = tf
		for l := 0; l < 5; l++ {
			p.fLevel[l] = float64(c.level[l]) / tf
		}
		for ch, v := range c.mem {
			p.memFrac[ch] = float64(v) / tf
		}
		for ch, v := range c.lfb {
			p.lfbFrac[ch] = float64(v) / tf
		}
		for ch, v := range c.traffic {
			p.traffic[ch] = float64(v) / tf
		}
	}
	return profiles, nil
}

// pairBaseLatency returns the unloaded DRAM latency for a (src,dst) pair.
func (e *Engine) pairBaseLatency(pair topology.Channel) float64 {
	lat := e.machine.Latencies()
	if pair.Local() {
		return lat.LocalDRAM
	}
	return lat.RemoteDRAM
}

// lfbBaseLatency is the unloaded cost of an access served by a line fill
// buffer whose line is in flight from pair's DRAM: the configured LFB wait,
// scaled up when the line crosses a socket — a remote fill takes longer to
// arrive, so the buffered demand load waits proportionally longer.
func (e *Engine) lfbBaseLatency(pair topology.Channel) float64 {
	lat := e.machine.Latencies()
	return lat.LFB * e.pairBaseLatency(pair) / lat.LocalDRAM
}

// inflation maps a channel's offered utilization to a latency multiplier.
// Below saturation it is a gentle queueing ramp; past saturation the queue
// grows with the oversubscription factor (a closed system with fixed MLP has
// latency proportional to offered/serviced load — Little's law). QueueCoeff
// scales the sub-saturation ramp.
func (e *Engine) inflation(u float64) float64 {
	k := e.cfg.QueueCoeff
	switch {
	case u <= 0:
		return 1
	case u <= 0.7:
		return 1 + k*0.45*u
	case u <= 1:
		d := u - 0.7
		return 1 + k*(0.45*u+5.5*d*d)
	default:
		return 1 + k*(0.45+5.5*0.09) + (u - 1)
	}
}

// pairInflation combines the link and target-controller pressure of a
// (src,dst) pair: the binding (most loaded) resource dominates the queue.
func (e *Engine) pairInflation(pair topology.Channel, util map[topology.Channel]float64) float64 {
	u := util[topology.Channel{Src: pair.Dst, Dst: pair.Dst}]
	if !pair.Local() {
		if lu := util[pair]; lu > u {
			u = lu
		}
	}
	return e.inflation(u)
}

// pairLatency is the effective DRAM latency of a pair under the current
// offered utilizations.
func (e *Engine) pairLatency(pair topology.Channel, util map[topology.Channel]float64) float64 {
	return e.pairBaseLatency(pair) * e.pairInflation(pair, util)
}

// integrate advances the phase over time epochs until every thread finishes.
func (e *Engine) integrate(ph trace.Phase, bind Binding, profiles []*profile, start float64, rng *rand.Rand) (*PhaseResult, error) {
	n := len(bind)
	lat := e.machine.Latencies()
	remaining := make([]float64, n)
	finish := make([]float64, n)
	sampleAcc := make([]float64, n)
	anyWork := false
	mlp := make([]float64, n)
	for i, spec := range ph.Threads {
		remaining[i] = spec.Ops
		if spec.Ops > 0 && profiles[i].total > 0 {
			anyWork = true
		}
		switch {
		case spec.MLP == 0:
			mlp[i] = 1 // unset: a single outstanding miss
		case spec.MLP < 1:
			return nil, fmt.Errorf("thread %d MLP %g < 1", i, spec.MLP)
		default:
			mlp[i] = spec.MLP
		}
	}
	pr := &PhaseResult{
		Name:         ph.Name,
		ThreadCycles: make([]float64, n),
		Channels:     make(map[topology.Channel]ChannelStats),
	}
	if !anyWork {
		return pr, nil
	}

	lineSize := float64(e.machine.LineSize())
	perSampleOverhead := 0.0
	period := 0.0
	ibs := false
	if e.cfg.Collector != nil {
		period = float64(e.cfg.Collector.Period())
		perSampleOverhead = e.cfg.Collector.OverheadCycles()
		ibs = e.cfg.Collector.Flavor() == pebs.IBS
	}

	// Threads sharing a physical core contend for issue slots; compute-bound
	// work degrades with SMT sharing while memory stalls overlap freely.
	coreLoad := make(map[topology.CoreID]float64)
	for i := range bind {
		if ph.Threads[i].Ops > 0 && profiles[i].total > 0 {
			coreLoad[e.machine.CoreOfCPU(bind[i])]++
		}
	}

	// Unloaded issue rate of each thread (accesses/cycle): constant per
	// phase because the profile is steady-state.
	r0 := make([]float64, n)
	for i := range r0 {
		if remaining[i] <= 0 || profiles[i].total == 0 {
			continue
		}
		p := profiles[i]
		spec := ph.Threads[i]
		memLat := 0.0
		for pair, f := range p.memFrac {
			memLat += f * e.pairBaseLatency(pair)
		}
		for pair, f := range p.lfbFrac {
			memLat += f * e.lfbBaseLatency(pair)
		}
		cacheLat := p.fLevel[cache.L1]*lat.L1 + p.fLevel[cache.L2]*lat.L2 + p.fLevel[cache.L3]*lat.L3
		per := spec.WorkCycles*coreLoad[e.machine.CoreOfCPU(bind[i])] + (cacheLat+memLat)/mlp[i]
		if per <= 0 {
			per = 0.1
		}
		r0[i] = 1 / per
	}

	now := 0.0
	var dramAccAcc, dramLatAcc float64
	util := make(map[topology.Channel]float64)

	for epoch := 0; epoch < e.cfg.MaxEpochs; epoch++ {
		// Offered utilization from the unthrottled rates of running threads.
		for ch := range util {
			delete(util, ch)
		}
		running := false
		for i := range r0 {
			if remaining[i] <= 0 || r0[i] == 0 {
				continue
			}
			running = true
			for ch, f := range profiles[i].traffic {
				util[ch] += r0[i] * f * lineSize / e.machine.Bandwidth(ch)
			}
		}
		if !running {
			break
		}
		// Fair-share throughput: every flow crossing an oversubscribed
		// channel is scaled by the worst oversubscription it crosses, which
		// brings each channel to at most its capacity.
		eff := make([]float64, n)
		for i := range r0 {
			if remaining[i] <= 0 || r0[i] == 0 {
				continue
			}
			worst := 1.0
			for ch, f := range profiles[i].traffic {
				if f <= 1e-9 {
					continue
				}
				if u := util[ch]; u > worst {
					worst = u
				}
			}
			eff[i] = r0[i] / worst
			// A sample stalls the core for the assist+drain cost; the
			// stall steals wall-clock time even from bandwidth-capped
			// threads (the channel idles while the core is stopped), so it
			// applies after the throughput cap. IBS counts micro-ops, so
			// compute-heavy threads take proportionally more interrupts
			// than PEBS would for the same memory traffic.
			if period > 0 && perSampleOverhead > 0 {
				opsPerAccess := 1.0
				if ibs {
					opsPerAccess += ph.Threads[i].WorkCycles
				}
				stall := perSampleOverhead * opsPerAccess * eff[i] / period
				if stall > 0.5 {
					stall = 0.5
				}
				eff[i] *= 1 - stall
			}
		}

		// Run until the next thread completes (contention state is constant
		// in between).
		dt := math.Inf(1)
		for i := range eff {
			if eff[i] > 0 && remaining[i] > 0 {
				if est := remaining[i] / eff[i]; est < dt {
					dt = est
				}
			}
		}
		if math.IsInf(dt, 1) {
			break
		}

		// Advance and account.
		for i := range eff {
			if eff[i] == 0 || remaining[i] <= 0 {
				continue
			}
			done := eff[i] * dt
			if done >= remaining[i]-1e-9 {
				done = remaining[i]
				finish[i] = now + dt
			}
			remaining[i] -= done
			p := profiles[i]
			for ch, f := range p.traffic {
				s := pr.Channels[ch]
				s.Bytes += done * f * lineSize
				pr.Channels[ch] = s
			}
			for pair, f := range p.memFrac {
				cnt := done * f
				l := e.pairLatency(pair, util)
				dramAccAcc += cnt
				dramLatAcc += cnt * l
				if pair.Local() {
					pr.LocalDRAMAccesses += cnt
				} else {
					pr.RemoteDRAMAccesses += cnt
				}
			}
			// PEBS sampling for this thread.
			if period > 0 && len(p.reservoir) > 0 {
				sampleAcc[i] += done
				for sampleAcc[i] >= period {
					sampleAcc[i] -= period
					rec := p.reservoir[rng.Intn(len(p.reservoir))]
					e.emitSample(i, bind[i], rec, start+now+rng.Float64()*dt, util, rng)
				}
			}
		}
		for ch, u := range util {
			s := pr.Channels[ch]
			if u > s.PeakUtil {
				s.PeakUtil = u
			}
			s.AvgUtil += u * dt // normalized at the end
			pr.Channels[ch] = s
		}
		now += dt
	}

	pr.Cycles = 0.0
	for i := range finish {
		if finish[i] == 0 && ph.Threads[i].Ops > 0 && profiles[i].total > 0 {
			finish[i] = now // ran until the epoch guard
		}
		pr.ThreadCycles[i] = finish[i]
		if finish[i] > pr.Cycles {
			pr.Cycles = finish[i]
		}
	}
	if pr.Cycles > 0 {
		for ch, s := range pr.Channels {
			s.AvgUtil /= pr.Cycles
			pr.Channels[ch] = s
		}
	}
	if dramAccAcc > 0 {
		pr.AvgDRAMLatency = dramLatAcc / dramAccAcc
	}
	return pr, nil
}

// emitSample synthesizes one PEBS sample from a reservoir record under the
// current contention state.
func (e *Engine) emitSample(thread int, cpu topology.CPUID, rec record, t float64, util map[topology.Channel]float64, rng *rand.Rand) {
	lat := e.machine.Latencies()
	node := e.machine.NodeOfCPU(cpu)
	pair := topology.Channel{Src: node, Dst: rec.home}
	var l float64
	switch rec.level {
	case cache.L1:
		l = lat.L1
	case cache.L2:
		l = lat.L2
	case cache.L3:
		l = lat.L3
	case cache.LFB:
		l = e.lfbBaseLatency(pair) * e.pairInflation(pair, util)
	case cache.MEM:
		l = e.pairLatency(pair, util)
	}
	// Measurement noise: PEBS's dedicated latency counter carries ±20%
	// pipeline-induced spread; IBS derives load timing from tagged-op
	// retirement and spreads wider.
	if e.cfg.Collector.Flavor() == pebs.IBS {
		l *= 0.65 + 0.7*rng.Float64()
	} else {
		l *= 0.8 + 0.4*rng.Float64()
	}
	s := pebs.Sample{
		Time:    t,
		CPU:     cpu,
		Thread:  thread,
		Addr:    rec.addr,
		Level:   rec.level,
		Latency: l,
		Write:   rec.write,
	}
	pebs.Resolve(&s, e.machine, e.space)
	// The engine knows the true serving node (replicas resolve locally); the
	// profiler's page-table view may disagree for replicated regions, which
	// is faithful to the real tool. Keep the profiler's view.
	e.cfg.Collector.Add(s)
}
