package engine

import (
	"reflect"
	"testing"

	"drbw/internal/memsim"
	"drbw/internal/pebs"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

// equivScenario builds one workload twice (fresh address space and streams
// each time, so cache/page state cannot leak between runs) and runs it through
// the dense fast path and the map-based reference path.
type equivScenario struct {
	name    string
	threads int
	nodes   int
	pol     memsim.Policy
	flavor  pebs.Flavor
	collect bool
	seed    uint64
}

// TestReferenceEquivalence requires the dense fast path and the reference
// path to produce bit-identical Results and PEBS sample streams. This is the
// strong form of the golden pin: not "close enough", but the same floats.
func TestReferenceEquivalence(t *testing.T) {
	m := topology.XeonE5_4650()
	scenarios := []equivScenario{
		{name: "centralized-pebs", threads: 16, nodes: 4, pol: memsim.BindTo(0), collect: true, seed: 41},
		{name: "interleaved-ibs", threads: 16, nodes: 4, pol: memsim.InterleaveAll(), flavor: pebs.IBS, collect: true, seed: 42},
		{name: "first-touch-nocollect", threads: 8, nodes: 2, pol: memsim.FirstTouchPolicy(), seed: 43},
		{name: "replicated", threads: 8, nodes: 2, pol: memsim.ReplicateAll(), collect: true, seed: 44},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			run := func(ref bool) (*Result, []pebs.Sample) {
				as, ph, _, _ := scanWorkload(t, m, sc.threads, sc.pol, 2e6)
				cfg := testConfig(sc.seed)
				cfg.Reference = ref
				var col *pebs.Collector
				if sc.collect {
					col = pebs.NewCollector(pebs.Config{Flavor: sc.flavor, Period: 1500, OverheadCycles: 900}, sc.seed)
					cfg.Collector = col
				}
				e, err := New(m, as, smallCaches(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				bind, err := EvenBinding(m, sc.threads, sc.nodes)
				if err != nil {
					t.Fatal(err)
				}
				res, err := e.Run([]trace.Phase{ph}, bind)
				if err != nil {
					t.Fatal(err)
				}
				if col != nil {
					return res, col.Samples()
				}
				return res, nil
			}
			fastRes, fastSamples := run(false)
			refRes, refSamples := run(true)
			if !reflect.DeepEqual(fastRes, refRes) {
				t.Errorf("Result diverges between fast and reference paths")
				for pi := range fastRes.Phases {
					f, r := fastRes.Phases[pi], refRes.Phases[pi]
					if f.Cycles != r.Cycles {
						t.Errorf("phase %d Cycles: fast %v ref %v", pi, f.Cycles, r.Cycles)
					}
					if !reflect.DeepEqual(f.Channels, r.Channels) {
						t.Errorf("phase %d Channels: fast %v ref %v", pi, f.Channels, r.Channels)
					}
					if f.AvgDRAMLatency != r.AvgDRAMLatency {
						t.Errorf("phase %d AvgDRAMLatency: fast %v ref %v", pi, f.AvgDRAMLatency, r.AvgDRAMLatency)
					}
				}
			}
			if len(fastSamples) != len(refSamples) {
				t.Fatalf("sample count: fast %d ref %d", len(fastSamples), len(refSamples))
			}
			for i := range fastSamples {
				if fastSamples[i] != refSamples[i] {
					t.Fatalf("sample %d diverges:\nfast %+v\nref  %+v", i, fastSamples[i], refSamples[i])
				}
			}
		})
	}
}

// TestReferenceEquivalenceMultiStream covers the stream implementations that
// exercise the generic Fill fallback and multi-phase runs: the batched refill
// must reset streams at exactly the same steps as the per-access path.
func TestReferenceEquivalenceMultiStream(t *testing.T) {
	m := topology.XeonE5_4650()
	run := func(ref bool) *Result {
		as := memsim.NewAddressSpace(m)
		const base = 0x10000000
		if err := as.Map(base, 8<<20, memsim.BindTo(0), false); err != nil {
			t.Fatal(err)
		}
		mkThreads := func() []trace.ThreadSpec {
			var specs []trace.ThreadSpec
			for i := 0; i < 8; i++ {
				off := uint64(i) * (1 << 20)
				var s trace.Stream
				switch i % 4 {
				case 0: // short window: many boundary resets per window sim
					s = &trace.Seq{Base: base + off, Len: 13 * 8, Elem: 8, WriteEvery: 3}
				case 1:
					s = &trace.Rand{Base: base + off, Len: 1 << 18, Elem: 8, WriteFrac: 0.2}
				case 2:
					s = &trace.Gather{IndexBase: base + off, IndexLen: 37 * 4, IndexElem: 4,
						DataBase: base + off + (1 << 19), DataLen: 1 << 18, DataElem: 8}
				default:
					s = &trace.Stencil{InBase: base + off, OutBase: base + off + (1 << 19), X: 7, Y: 5, Z: 3, Elem: 8}
				}
				specs = append(specs, trace.ThreadSpec{Stream: s, Ops: 5e5, MLP: 4, WorkCycles: 2})
			}
			return specs
		}
		phases := []trace.Phase{
			{Name: "a", Threads: mkThreads()},
			{Name: "b", Threads: mkThreads()},
		}
		cfg := testConfig(77)
		cfg.Reference = ref
		e, err := New(m, as, smallCaches(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		bind, err := EvenBinding(m, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(phases, bind)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(false)
	ref := run(true)
	if !reflect.DeepEqual(fast, ref) {
		t.Errorf("multi-stream Result diverges between fast and reference paths:\nfast %+v\nref  %+v", fast, ref)
	}
}
