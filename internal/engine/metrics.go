package engine

import (
	"sync"

	"drbw/internal/cache"
	"drbw/internal/obs"
	"drbw/internal/topology"
)

// Engine observability. The per-access hot loops record nothing: the
// window loop already keeps exact per-thread integer tallies (total
// accesses, per-level hits) for profile construction, and runStats just
// sums those at the phase boundary; the integration loop adds one integer
// field increment per epoch and per emitted sample. The global registry is
// touched exactly once per Run (a handful of striped atomic adds), so
// concurrent batch workers never contend inside a simulation and
// BenchmarkEngineContendedRun's allocation profile is unchanged.
//
// The reference implementation (Config.Reference) is a test-only
// equivalence oracle and records no metrics.
var (
	mRuns     = obs.Default.Counter("engine.runs")
	mPhases   = obs.Default.Counter("engine.phases")
	mWarmup   = obs.Default.Counter("engine.window.warmup_accesses")
	mAccesses = obs.Default.Counter("engine.window.accesses")
	mSamples  = obs.Default.Counter("engine.samples.emitted")
	mEpochs   = obs.Default.Counter("engine.integrate.epochs")

	// Per-layer window hit counters, indexed by cache.Level.
	mLevel = [5]*obs.Counter{
		cache.L1:  obs.Default.Counter("engine.window.hits.l1"),
		cache.L2:  obs.Default.Counter("engine.window.hits.l2"),
		cache.L3:  obs.Default.Counter("engine.window.hits.l3"),
		cache.LFB: obs.Default.Counter("engine.window.hits.lfb"),
		cache.MEM: obs.Default.Counter("engine.window.hits.mem"),
	}
)

// runStats accumulates one Run's tallies in plain (non-atomic) fields —
// each simulation is single-goroutine — and merges them into the default
// registry once, when the run completes.
type runStats struct {
	warmup   uint64
	accesses uint64
	level    [5]uint64
	samples  uint64
	epochs   uint64
	phases   uint64
}

// merge publishes the run's tallies.
func (st *runStats) merge() {
	obs.RecordEvent(obs.EventMetric, "engine.run", int64(st.accesses), int64(st.samples))
	mRuns.Inc()
	if st.phases > 0 {
		mPhases.Add(int64(st.phases))
	}
	if st.warmup > 0 {
		mWarmup.Add(int64(st.warmup))
	}
	if st.accesses > 0 {
		mAccesses.Add(int64(st.accesses))
	}
	for l, n := range st.level {
		if n > 0 {
			mLevel[l].Add(int64(n))
		}
	}
	if st.samples > 0 {
		mSamples.Add(int64(st.samples))
	}
	if st.epochs > 0 {
		mEpochs.Add(int64(st.epochs))
	}
}

// Channel-utilization gauges, published at every phase (window) boundary:
// engine.channel.peak_util.<ch> carries the highest epoch utilization seen
// on the channel across the process lifetime (Max), and
// engine.channel.avg_util.<ch> the most recent phase's time-weighted mean
// (Set). Gauge handles are cached per node count — two machines with the
// same node count share channel names — so Engine construction does not
// re-render names or re-lock the registry maps.
var (
	chanGaugeMu  sync.Mutex
	chanGaugeTab = map[int]*chanGauges{}
)

type chanGauges struct {
	peak []*obs.Gauge
	avg  []*obs.Gauge
}

// channelGauges returns the cached gauge tables for an nn-node machine,
// indexed by ci = src*nn+dst.
func channelGauges(nn int) *chanGauges {
	chanGaugeMu.Lock()
	defer chanGaugeMu.Unlock()
	if g := chanGaugeTab[nn]; g != nil {
		return g
	}
	g := &chanGauges{
		peak: make([]*obs.Gauge, nn*nn),
		avg:  make([]*obs.Gauge, nn*nn),
	}
	for ci := 0; ci < nn*nn; ci++ {
		ch := topology.Channel{Src: topology.NodeID(ci / nn), Dst: topology.NodeID(ci % nn)}
		g.peak[ci] = obs.Default.Gauge("engine.channel.peak_util." + ch.String())
		g.avg[ci] = obs.Default.Gauge("engine.channel.avg_util." + ch.String())
	}
	chanGaugeTab[nn] = g
	return g
}
