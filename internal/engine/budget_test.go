package engine

import (
	"reflect"
	"testing"

	"drbw/internal/memsim"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

// budgetScan runs the standard contended scan with the given config.
func budgetScan(t *testing.T, cfg Config) *Result {
	t.Helper()
	m := topology.XeonE5_4650()
	res, _ := runScan(t, m, 16, 4, memsim.BindTo(0), cfg)
	return res
}

func TestCycleBudgetAbortsRun(t *testing.T) {
	full := budgetScan(t, testConfig(5))
	if full.Aborted {
		t.Fatal("unbudgeted run reported aborted")
	}
	cfg := testConfig(5)
	cfg.CycleBudget = full.Cycles / 2
	cut := budgetScan(t, cfg)
	if !cut.Aborted {
		t.Fatalf("run under budget %.0f (full %.0f) not aborted", cfg.CycleBudget, full.Cycles)
	}
	if cut.Cycles < cfg.CycleBudget {
		t.Errorf("aborted run reports %.0f cycles, below the %.0f budget", cut.Cycles, cfg.CycleBudget)
	}
	if cut.Cycles >= full.Cycles {
		t.Errorf("aborted run reports %.0f cycles, not cut short of %.0f", cut.Cycles, full.Cycles)
	}
	if len(cut.Phases) != 1 || !cut.Phases[0].Aborted {
		t.Errorf("aborted phase not marked: %+v", cut.Phases)
	}
}

func TestCycleBudgetAboveRunIsNoop(t *testing.T) {
	full := budgetScan(t, testConfig(6))
	cfg := testConfig(6)
	cfg.CycleBudget = full.Cycles * 2
	loose := budgetScan(t, cfg)
	if loose.Aborted {
		t.Fatal("budget above the full run aborted it")
	}
	if !reflect.DeepEqual(full, loose) {
		t.Error("an unexercised budget changed the result")
	}
}

func TestCycleBudgetMatchesReference(t *testing.T) {
	base := testConfig(7)
	full := budgetScan(t, base)
	for _, budget := range []float64{full.Cycles / 3, full.Cycles / 2, full.Cycles * 0.9} {
		fast := base
		fast.CycleBudget = budget
		ref := fast
		ref.Reference = true
		fr := budgetScan(t, fast)
		rr := budgetScan(t, ref)
		if !reflect.DeepEqual(fr, rr) {
			t.Errorf("budget %.0f: fast and reference paths disagree\nfast: %+v\nref:  %+v", budget, fr, rr)
		}
	}
}

// TestCycleBudgetSkipsLaterPhases pins the cross-phase saving: once the
// budget is spent, remaining phases are never simulated — windows included.
func TestCycleBudgetSkipsLaterPhases(t *testing.T) {
	m := topology.XeonE5_4650()
	as, ph, _, _ := scanWorkload(t, m, 16, memsim.BindTo(0), 2e6)
	ph2 := ph
	ph2.Name = "again"
	bind, err := EvenBinding(m, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg Config) *Result {
		e, err := New(m, as, smallCaches(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run([]trace.Phase{ph, ph2}, bind)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(testConfig(8))
	if len(full.Phases) != 2 {
		t.Fatalf("full run executed %d phases", len(full.Phases))
	}
	cfg := testConfig(8)
	cfg.CycleBudget = full.Phases[0].Cycles * 1.01
	cut := run(cfg)
	if !cut.Aborted {
		t.Fatal("budgeted two-phase run not aborted")
	}
	if len(cut.Phases) >= 2 && !cut.Phases[1].Aborted {
		t.Errorf("second phase completed under a budget inside it: %+v", cut.Phases)
	}
}
