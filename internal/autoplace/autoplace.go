// Package autoplace implements the heuristic page-placement baseline the
// paper positions DR-BW against (Section II-B): traffic-management systems
// in the style of Carrefour (Dashti et al., ASPLOS'13) that watch memory
// accesses and re-place data by fixed rules, without a contention model:
//
//   - data used (almost) exclusively from one node migrates to that node;
//   - read-shared data replicates;
//   - write-shared data interleaves.
//
// Two granularities are provided. Object granularity applies the rules to
// whole allocations (what the sample→range table supports directly). Page
// granularity is closer to the original systems — but at DR-BW's sampling
// rate (1/2000) most pages receive no samples at all, so page decisions
// cover only a sliver of the footprint. That coverage gap, and object
// rules misfiring on arrays that are block-partitioned *within* (every
// node touches the object, each page belongs to one node), are exactly the
// failure modes the paper's data-object + classifier design avoids.
package autoplace

import (
	"fmt"
	"sort"
	"strings"

	"drbw/internal/alloc"
	"drbw/internal/memsim"
	"drbw/internal/pebs"
	"drbw/internal/program"
	"drbw/internal/topology"
)

// Rule names the decision taken for one object or page.
type Rule int

// Placement rules.
const (
	Keep Rule = iota
	Migrate
	Replicate
	Interleave
)

// String names the rule.
func (r Rule) String() string {
	switch r {
	case Keep:
		return "keep"
	case Migrate:
		return "migrate"
	case Replicate:
		return "replicate"
	case Interleave:
		return "interleave"
	default:
		return fmt.Sprintf("Rule(%d)", int(r))
	}
}

// Config tunes the heuristic thresholds (defaults follow the published
// systems' spirit: act only on observably remote, clearly classified data).
type Config struct {
	// MinSamples is the minimum observed samples before a decision is made.
	// <= 0 uses 16 for objects and 1 for pages.
	MinSamples int
	// RemoteFraction is the minimum share of remote samples that makes data
	// a candidate at all. <= 0 uses 0.3.
	RemoteFraction float64
	// DominantShare is the single-node access share above which data
	// migrates to that node. <= 0 uses 0.8.
	DominantShare float64
	// WriteFraction is the maximum write share for replication. < 0
	// disables replication; 0 uses 0.05.
	WriteFraction float64
}

func (c Config) withDefaults(page bool) Config {
	if c.MinSamples <= 0 {
		if page {
			c.MinSamples = 1
		} else {
			c.MinSamples = 16
		}
	}
	if c.RemoteFraction <= 0 {
		c.RemoteFraction = 0.3
	}
	if c.DominantShare <= 0 {
		c.DominantShare = 0.8
	}
	if c.WriteFraction == 0 {
		c.WriteFraction = 0.05
	}
	return c
}

// ObjectAction is one object-granularity decision.
type ObjectAction struct {
	Object alloc.Object
	Rule   Rule
	Target topology.NodeID // for Migrate
	// Samples and RemoteFraction record the evidence.
	Samples        int
	RemoteFraction float64
}

// access tallies per-object or per-page observations. byNode is a flat
// per-node counter slice sized by the machine's node count: the per-sample
// hot path indexes it directly instead of allocating and probing a map,
// which dominates PlanObjects/PlanPages on large traces.
type access struct {
	total, remote, writes int
	byNode                []int
}

func tally(a *access, s pebs.Sample) {
	a.total++
	if s.SrcNode != s.HomeNode {
		a.remote++
	}
	if s.Write {
		a.writes++
	}
	if n := int(s.SrcNode); n >= 0 && n < len(a.byNode) {
		a.byNode[n]++
	}
}

func decide(a *access, cfg Config) (Rule, topology.NodeID) {
	if a.total < cfg.MinSamples {
		return Keep, topology.InvalidNode
	}
	if float64(a.remote)/float64(a.total) < cfg.RemoteFraction {
		return Keep, topology.InvalidNode
	}
	// Dominant single accessor: migrate to it. The ascending scan with a
	// strict comparison breaks equal-count ties toward the lowest node ID,
	// so the decision is stable run to run.
	bestNode, best := topology.InvalidNode, 0
	for n, c := range a.byNode {
		if c > best {
			bestNode, best = topology.NodeID(n), c
		}
	}
	if float64(best)/float64(a.total) >= cfg.DominantShare {
		return Migrate, bestNode
	}
	// Shared: replicate if read-only enough, else interleave.
	if cfg.WriteFraction >= 0 && float64(a.writes)/float64(a.total) <= cfg.WriteFraction {
		return Replicate, topology.InvalidNode
	}
	return Interleave, topology.InvalidNode
}

// PlanObjects applies the rules at data-object granularity.
func PlanObjects(heap *alloc.Heap, samples []pebs.Sample, cfg Config) []ObjectAction {
	cfg = cfg.withDefaults(false)
	nn := heap.Space().Machine().Nodes()
	stats := map[alloc.ObjectID]*access{}
	for _, s := range samples {
		id, ok := heap.Lookup(s.Addr)
		if !ok {
			continue
		}
		a := stats[id]
		if a == nil {
			a = &access{byNode: make([]int, nn)}
			stats[id] = a
		}
		tally(a, s)
	}
	var out []ObjectAction
	for id, a := range stats {
		rule, target := decide(a, cfg)
		out = append(out, ObjectAction{
			Object: heap.Object(id), Rule: rule, Target: target,
			Samples:        a.total,
			RemoteFraction: float64(a.remote) / float64(a.total),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.ID < out[j].Object.ID })
	return out
}

// ApplyObjects executes object decisions on a program.
func ApplyObjects(p *program.Program, actions []ObjectAction) error {
	nodes := p.NodesUsed()
	for _, a := range actions {
		var err error
		switch a.Rule {
		case Keep:
			continue
		case Migrate:
			err = p.Heap.SetPolicy(a.Object.ID, memsim.BindTo(a.Target))
		case Replicate:
			err = p.Heap.SetPolicy(a.Object.ID, memsim.Policy{Kind: memsim.Replicate, Nodes: nodes})
		case Interleave:
			err = p.Heap.SetPolicy(a.Object.ID, memsim.InterleaveAll())
		}
		if err != nil {
			return fmt.Errorf("autoplace: %s %s: %w", a.Rule, a.Object.Name, err)
		}
	}
	return nil
}

// PageAction is one page-granularity decision.
type PageAction struct {
	Page   uint64 // page base address
	Rule   Rule
	Target topology.NodeID
}

// PlanPages applies the rules per page — the published systems' granularity.
// Coverage tracks how much of the sampled footprint received any decision:
// at profiler sampling rates most pages are never observed.
func PlanPages(m *topology.Machine, heap *alloc.Heap, samples []pebs.Sample, cfg Config) (actions []PageAction, coverage float64) {
	cfg = cfg.withDefaults(true)
	nn := m.Nodes()
	pageSize := uint64(m.PageSize())
	stats := map[uint64]*access{}
	for _, s := range samples {
		if _, ok := heap.Lookup(s.Addr); !ok {
			continue
		}
		page := s.Addr &^ (pageSize - 1)
		a := stats[page]
		if a == nil {
			a = &access{byNode: make([]int, nn)}
			stats[page] = a
		}
		tally(a, s)
	}
	var decided int
	for page, a := range stats {
		rule, target := decide(a, cfg)
		if rule == Keep {
			continue
		}
		decided++
		actions = append(actions, PageAction{Page: page, Rule: rule, Target: target})
	}
	sort.Slice(actions, func(i, j int) bool { return actions[i].Page < actions[j].Page })

	// Coverage: decided pages vs the total pages of live heap objects.
	var totalPages uint64
	for _, o := range heap.Live() {
		totalPages += (o.Size + pageSize - 1) / pageSize
	}
	if totalPages > 0 {
		coverage = float64(decided) / float64(totalPages)
	}
	return actions, coverage
}

// ApplyPages executes page decisions. The memsim substrate places whole
// regions, so page migration is modeled by first-touching the page on its
// target node after resetting the object to first-touch — which moves the
// decided pages and leaves the rest where a fresh run's first toucher puts
// them. Replicate/interleave at page granularity degrade to migrate-to-
// round-robin since a region policy cannot split pages; this matches the
// published systems' per-page interleave behaviour.
func ApplyPages(p *program.Program, actions []PageAction) error {
	if len(actions) == 0 {
		return nil
	}
	// Group pages by object.
	byObject := map[alloc.ObjectID][]PageAction{}
	for _, a := range actions {
		id, ok := p.Heap.Lookup(a.Page)
		if !ok {
			continue
		}
		byObject[id] = append(byObject[id], a)
	}
	nodes := p.NodesUsed()
	for id, acts := range byObject {
		o := p.Heap.Object(id)
		// Snapshot current residency so undecided pages stay put.
		pageSize := uint64(p.Machine.PageSize())
		pages := (o.Size + pageSize - 1) / pageSize
		current := make([]topology.NodeID, pages)
		for i := uint64(0); i < pages; i++ {
			current[i] = p.Space.NodeOf(o.Base + i*pageSize)
		}
		if err := p.Heap.SetPolicy(id, memsim.FirstTouchPolicy()); err != nil {
			return fmt.Errorf("autoplace: page reset %s: %w", o.Name, err)
		}
		// Re-touch decided pages on their targets.
		for k, a := range acts {
			idx := (a.Page - o.Base) / pageSize
			var target topology.NodeID
			switch a.Rule {
			case Migrate:
				target = a.Target
			default: // Replicate/Interleave per page: spread round-robin
				target = nodes[k%len(nodes)]
			}
			current[idx] = target
		}
		for i := uint64(0); i < pages; i++ {
			if current[i] != topology.InvalidNode {
				p.Space.Touch(o.Base+i*pageSize, current[i])
			}
		}
	}
	return nil
}

// Summary renders object actions for reports.
func Summary(actions []ObjectAction) string {
	var b strings.Builder
	for _, a := range actions {
		if a.Rule == Keep {
			continue
		}
		fmt.Fprintf(&b, "  %-10s %-20s (%d samples, %.0f%% remote",
			a.Rule, a.Object.Name, a.Samples, 100*a.RemoteFraction)
		if a.Rule == Migrate {
			fmt.Fprintf(&b, ", -> N%d", int(a.Target))
		}
		b.WriteString(")\n")
	}
	if b.Len() == 0 {
		return "  (no actions)\n"
	}
	return b.String()
}
