package autoplace

import (
	"fmt"
	"strings"
	"testing"

	"drbw/internal/alloc"
	"drbw/internal/cache"
	"drbw/internal/memsim"
	"drbw/internal/micro"
	"drbw/internal/pebs"
	"drbw/internal/program"
	"drbw/internal/topology"
)

func heapWith(t *testing.T, names ...string) (*alloc.Heap, map[string]alloc.ObjectID) {
	t.Helper()
	as := memsim.NewAddressSpace(topology.Uniform(4, 4))
	h := alloc.NewHeap(as, 0x10000000)
	ids := map[string]alloc.ObjectID{}
	for _, n := range names {
		id, err := h.Malloc(n, 1<<20, alloc.Site{Func: "f"}, memsim.BindTo(0))
		if err != nil {
			t.Fatal(err)
		}
		ids[n] = id
	}
	return h, ids
}

func s(h *alloc.Heap, id alloc.ObjectID, off uint64, src topology.NodeID, write bool) pebs.Sample {
	return pebs.Sample{
		Addr: h.Addr(id, off), Level: cache.MEM, Latency: 400,
		SrcNode: src, HomeNode: 0, Write: write,
	}
}

func TestPlanObjectsRules(t *testing.T) {
	h, ids := heapWith(t, "single", "readshared", "writeshared", "local", "sparse")
	var samples []pebs.Sample
	// single: 20 remote reads, all from node 2 -> migrate to 2.
	for i := 0; i < 20; i++ {
		samples = append(samples, s(h, ids["single"], uint64(i*64), 2, false))
	}
	// readshared: reads from nodes 1,2,3 evenly -> replicate.
	for i := 0; i < 30; i++ {
		samples = append(samples, s(h, ids["readshared"], uint64(i*64), topology.NodeID(1+i%3), false))
	}
	// writeshared: multi-node with many writes -> interleave.
	for i := 0; i < 30; i++ {
		samples = append(samples, s(h, ids["writeshared"], uint64(i*64), topology.NodeID(1+i%3), i%2 == 0))
	}
	// local: accessed from its home node only -> keep.
	for i := 0; i < 20; i++ {
		samples = append(samples, s(h, ids["local"], uint64(i*64), 0, false))
	}
	// sparse: too few samples -> keep.
	samples = append(samples, s(h, ids["sparse"], 0, 1, false))

	actions := PlanObjects(h, samples, Config{})
	got := map[string]ObjectAction{}
	for _, a := range actions {
		got[a.Object.Name] = a
	}
	if got["single"].Rule != Migrate || got["single"].Target != 2 {
		t.Errorf("single: %+v", got["single"])
	}
	if got["readshared"].Rule != Replicate {
		t.Errorf("readshared: %+v", got["readshared"])
	}
	if got["writeshared"].Rule != Interleave {
		t.Errorf("writeshared: %+v", got["writeshared"])
	}
	if got["local"].Rule != Keep {
		t.Errorf("local: %+v", got["local"])
	}
	if got["sparse"].Rule != Keep {
		t.Errorf("sparse: %+v", got["sparse"])
	}

	sum := Summary(actions)
	if !strings.Contains(sum, "migrate") || !strings.Contains(sum, "single") {
		t.Errorf("summary:\n%s", sum)
	}
}

func TestPlanObjectsBlockPartitionedMisfire(t *testing.T) {
	// The failure mode the paper's design avoids: an array block-partitioned
	// across nodes is touched by every node (each in its own range), so the
	// object-granularity rule sees "write-shared" and interleaves — even
	// though per-page migration (or DR-BW's co-locate) is the right call.
	h, ids := heapWith(t, "blocked")
	var samples []pebs.Sample
	for i := 0; i < 40; i++ {
		node := topology.NodeID(i / 10) // each node its own quarter
		samples = append(samples, s(h, ids["blocked"], uint64(i)*16384, node, i%3 == 0))
	}
	actions := PlanObjects(h, samples, Config{})
	if actions[0].Rule != Interleave {
		t.Errorf("blocked array: %v (the heuristic should misfire to interleave)", actions[0].Rule)
	}
}

func TestPlanPagesCoverage(t *testing.T) {
	h, ids := heapWith(t, "big")
	m := topology.Uniform(4, 4)
	// Samples touch only 3 of 256 pages.
	var samples []pebs.Sample
	for _, page := range []uint64{0, 5, 9} {
		for i := 0; i < 4; i++ {
			samples = append(samples, s(h, ids["big"], page*4096+uint64(i*64), 2, false))
		}
	}
	actions, coverage := PlanPages(m, h, samples, Config{})
	if len(actions) != 3 {
		t.Fatalf("%d page actions, want 3", len(actions))
	}
	for _, a := range actions {
		if a.Rule != Migrate || a.Target != 2 {
			t.Errorf("page %#x: %v -> %d", a.Page, a.Rule, a.Target)
		}
	}
	want := 3.0 / 256.0
	if coverage < want*0.99 || coverage > want*1.01 {
		t.Errorf("coverage %.4f, want %.4f", coverage, want)
	}
}

func TestDecideThresholds(t *testing.T) {
	cfg := Config{}.withDefaults(false)
	// Below remote fraction: keep.
	a := &access{total: 100, remote: 10, byNode: []int{0, 100, 0, 0}}
	if r, _ := decide(a, cfg); r != Keep {
		t.Errorf("mostly-local data got %v", r)
	}
	// Replication disabled.
	cfgNoRep := Config{WriteFraction: -1}.withDefaults(false)
	b := &access{total: 100, remote: 100, byNode: []int{0, 50, 50, 0}}
	if r, _ := decide(b, cfgNoRep); r != Interleave {
		t.Errorf("read-shared with replication disabled got %v", r)
	}
}

// TestDecideTieBreaksLowestNode pins the deterministic tie-break: when two
// nodes account for exactly the same sample count, the migration target is
// the lowest node ID — regression for the old map-iteration nondeterminism.
func TestDecideTieBreaksLowestNode(t *testing.T) {
	cfg := Config{DominantShare: 0.5}.withDefaults(false)
	for i := 0; i < 50; i++ {
		a := &access{total: 100, remote: 100, byNode: []int{0, 50, 50, 0}}
		r, target := decide(a, cfg)
		if r != Migrate || target != 1 {
			t.Fatalf("iteration %d: tie decided %v -> N%d, want migrate -> N1", i, r, target)
		}
	}
	// Same tie at the end of the node range.
	a := &access{total: 100, remote: 100, byNode: []int{0, 0, 50, 50}}
	if r, target := decide(a, cfg); r != Migrate || target != 2 {
		t.Errorf("tie on nodes 2/3 decided %v -> N%d, want migrate -> N2", r, target)
	}
}

// TestPlanObjectsTieDeterministic drives the same tie through the public
// entry point repeatedly: equal access counts from two nodes must always
// pick the same target.
func TestPlanObjectsTieDeterministic(t *testing.T) {
	cfg := Config{DominantShare: 0.5}
	for i := 0; i < 20; i++ {
		h, ids := heapWith(t, "tied")
		var samples []pebs.Sample
		for j := 0; j < 20; j++ {
			samples = append(samples, s(h, ids["tied"], uint64(j*64), topology.NodeID(2+j%2), false))
		}
		actions := PlanObjects(h, samples, cfg)
		if len(actions) != 1 || actions[0].Rule != Migrate || actions[0].Target != 2 {
			t.Fatalf("iteration %d: %+v, want migrate -> N2", i, actions)
		}
	}
}

// TestApplyPagesDegradePaths pins the documented degrade behaviour: per-page
// Replicate and Interleave decisions cannot split a region policy, so they
// degrade to migrate-to-round-robin over the program's used nodes, while
// pages with no decision keep whatever residency they had before the call.
func TestApplyPagesDegradePaths(t *testing.T) {
	m := topology.XeonE5_4650()
	p, err := micro.Sumv(micro.BigCentralized, 0).New(m, program.Config{Threads: 8, Nodes: 2, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	o, ok := p.Object("vec_a")
	if !ok {
		t.Fatal("no vec_a object")
	}
	pageSize := uint64(m.PageSize())
	undecided := o.Base + 3*pageSize
	before := p.Space.NodeOf(undecided)

	actions := []PageAction{
		{Page: o.Base, Rule: Migrate, Target: 1},
		{Page: o.Base + pageSize, Rule: Replicate},
		{Page: o.Base + 2*pageSize, Rule: Interleave},
	}
	if err := ApplyPages(p, actions); err != nil {
		t.Fatal(err)
	}
	nodes := p.NodesUsed()
	if len(nodes) < 2 {
		t.Fatalf("program uses %d nodes, need >= 2 for round-robin", len(nodes))
	}
	if got := p.Space.NodeOf(o.Base); got != 1 {
		t.Errorf("migrated page on N%d, want N1", got)
	}
	// Replicate was action index 1, Interleave index 2: round-robin targets.
	if got, want := p.Space.NodeOf(o.Base+pageSize), nodes[1%len(nodes)]; got != want {
		t.Errorf("replicate page degraded to N%d, want round-robin N%d", got, want)
	}
	if got, want := p.Space.NodeOf(o.Base+2*pageSize), nodes[2%len(nodes)]; got != want {
		t.Errorf("interleave page degraded to N%d, want round-robin N%d", got, want)
	}
	if got := p.Space.NodeOf(undecided); got != before {
		t.Errorf("undecided page moved N%d -> N%d; must keep prior residency", before, got)
	}
}

func TestApplyPagesNoActions(t *testing.T) {
	m := topology.XeonE5_4650()
	p, err := micro.Sumv(micro.BigCentralized, 0).New(m, program.Config{Threads: 8, Nodes: 2, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := p.Object("vec_a")
	before := p.Space.NodeOf(o.Base)
	if err := ApplyPages(p, nil); err != nil {
		t.Fatal(err)
	}
	if got := p.Space.NodeOf(o.Base); got != before {
		t.Errorf("no-op ApplyPages moved a page N%d -> N%d", before, got)
	}
}

// BenchmarkPlanObjects reports the per-plan allocation cost of the flat
// per-node counters (previously a map per object).
func BenchmarkPlanObjects(b *testing.B) {
	as := memsim.NewAddressSpace(topology.Uniform(4, 4))
	h := alloc.NewHeap(as, 0x10000000)
	var ids []alloc.ObjectID
	for i := 0; i < 8; i++ {
		id, err := h.Malloc(fmt.Sprintf("obj%d", i), 1<<20, alloc.Site{Func: "f"}, memsim.BindTo(0))
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, id)
	}
	samples := make([]pebs.Sample, 0, 8192)
	for i := 0; i < 8192; i++ {
		samples = append(samples, pebs.Sample{
			Addr: h.Addr(ids[i%len(ids)], uint64(i%1024)*64), Level: cache.MEM,
			Latency: 400, SrcNode: topology.NodeID(i % 4), HomeNode: 0, Write: i%7 == 0,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PlanObjects(h, samples, Config{})
	}
}

func TestRuleString(t *testing.T) {
	for r, want := range map[Rule]string{
		Keep: "keep", Migrate: "migrate", Replicate: "replicate",
		Interleave: "interleave", Rule(9): "Rule(9)",
	} {
		if got := r.String(); got != want {
			t.Errorf("%d = %q", int(r), got)
		}
	}
}
