package autoplace

import (
	"strings"
	"testing"

	"drbw/internal/alloc"
	"drbw/internal/cache"
	"drbw/internal/memsim"
	"drbw/internal/pebs"
	"drbw/internal/topology"
)

func heapWith(t *testing.T, names ...string) (*alloc.Heap, map[string]alloc.ObjectID) {
	t.Helper()
	as := memsim.NewAddressSpace(topology.Uniform(4, 4))
	h := alloc.NewHeap(as, 0x10000000)
	ids := map[string]alloc.ObjectID{}
	for _, n := range names {
		id, err := h.Malloc(n, 1<<20, alloc.Site{Func: "f"}, memsim.BindTo(0))
		if err != nil {
			t.Fatal(err)
		}
		ids[n] = id
	}
	return h, ids
}

func s(h *alloc.Heap, id alloc.ObjectID, off uint64, src topology.NodeID, write bool) pebs.Sample {
	return pebs.Sample{
		Addr: h.Addr(id, off), Level: cache.MEM, Latency: 400,
		SrcNode: src, HomeNode: 0, Write: write,
	}
}

func TestPlanObjectsRules(t *testing.T) {
	h, ids := heapWith(t, "single", "readshared", "writeshared", "local", "sparse")
	var samples []pebs.Sample
	// single: 20 remote reads, all from node 2 -> migrate to 2.
	for i := 0; i < 20; i++ {
		samples = append(samples, s(h, ids["single"], uint64(i*64), 2, false))
	}
	// readshared: reads from nodes 1,2,3 evenly -> replicate.
	for i := 0; i < 30; i++ {
		samples = append(samples, s(h, ids["readshared"], uint64(i*64), topology.NodeID(1+i%3), false))
	}
	// writeshared: multi-node with many writes -> interleave.
	for i := 0; i < 30; i++ {
		samples = append(samples, s(h, ids["writeshared"], uint64(i*64), topology.NodeID(1+i%3), i%2 == 0))
	}
	// local: accessed from its home node only -> keep.
	for i := 0; i < 20; i++ {
		samples = append(samples, s(h, ids["local"], uint64(i*64), 0, false))
	}
	// sparse: too few samples -> keep.
	samples = append(samples, s(h, ids["sparse"], 0, 1, false))

	actions := PlanObjects(h, samples, Config{})
	got := map[string]ObjectAction{}
	for _, a := range actions {
		got[a.Object.Name] = a
	}
	if got["single"].Rule != Migrate || got["single"].Target != 2 {
		t.Errorf("single: %+v", got["single"])
	}
	if got["readshared"].Rule != Replicate {
		t.Errorf("readshared: %+v", got["readshared"])
	}
	if got["writeshared"].Rule != Interleave {
		t.Errorf("writeshared: %+v", got["writeshared"])
	}
	if got["local"].Rule != Keep {
		t.Errorf("local: %+v", got["local"])
	}
	if got["sparse"].Rule != Keep {
		t.Errorf("sparse: %+v", got["sparse"])
	}

	sum := Summary(actions)
	if !strings.Contains(sum, "migrate") || !strings.Contains(sum, "single") {
		t.Errorf("summary:\n%s", sum)
	}
}

func TestPlanObjectsBlockPartitionedMisfire(t *testing.T) {
	// The failure mode the paper's design avoids: an array block-partitioned
	// across nodes is touched by every node (each in its own range), so the
	// object-granularity rule sees "write-shared" and interleaves — even
	// though per-page migration (or DR-BW's co-locate) is the right call.
	h, ids := heapWith(t, "blocked")
	var samples []pebs.Sample
	for i := 0; i < 40; i++ {
		node := topology.NodeID(i / 10) // each node its own quarter
		samples = append(samples, s(h, ids["blocked"], uint64(i)*16384, node, i%3 == 0))
	}
	actions := PlanObjects(h, samples, Config{})
	if actions[0].Rule != Interleave {
		t.Errorf("blocked array: %v (the heuristic should misfire to interleave)", actions[0].Rule)
	}
}

func TestPlanPagesCoverage(t *testing.T) {
	h, ids := heapWith(t, "big")
	m := topology.Uniform(4, 4)
	// Samples touch only 3 of 256 pages.
	var samples []pebs.Sample
	for _, page := range []uint64{0, 5, 9} {
		for i := 0; i < 4; i++ {
			samples = append(samples, s(h, ids["big"], page*4096+uint64(i*64), 2, false))
		}
	}
	actions, coverage := PlanPages(m, h, samples, Config{})
	if len(actions) != 3 {
		t.Fatalf("%d page actions, want 3", len(actions))
	}
	for _, a := range actions {
		if a.Rule != Migrate || a.Target != 2 {
			t.Errorf("page %#x: %v -> %d", a.Page, a.Rule, a.Target)
		}
	}
	want := 3.0 / 256.0
	if coverage < want*0.99 || coverage > want*1.01 {
		t.Errorf("coverage %.4f, want %.4f", coverage, want)
	}
}

func TestDecideThresholds(t *testing.T) {
	cfg := Config{}.withDefaults(false)
	// Below remote fraction: keep.
	a := &access{total: 100, remote: 10, byNode: map[topology.NodeID]int{1: 100}}
	if r, _ := decide(a, cfg); r != Keep {
		t.Errorf("mostly-local data got %v", r)
	}
	// Replication disabled.
	cfgNoRep := Config{WriteFraction: -1}.withDefaults(false)
	b := &access{total: 100, remote: 100, byNode: map[topology.NodeID]int{1: 50, 2: 50}}
	if r, _ := decide(b, cfgNoRep); r != Interleave {
		t.Errorf("read-shared with replication disabled got %v", r)
	}
}

func TestRuleString(t *testing.T) {
	for r, want := range map[Rule]string{
		Keep: "keep", Migrate: "migrate", Replicate: "replicate",
		Interleave: "interleave", Rule(9): "Rule(9)",
	} {
		if got := r.String(); got != want {
			t.Errorf("%d = %q", int(r), got)
		}
	}
}
