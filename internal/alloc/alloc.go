// Package alloc simulates the heap of a profiled program together with the
// allocation-site table DR-BW's profiler maintains.
//
// The paper's profiler interposes on the malloc family (malloc, calloc,
// realloc) and records, for each allocation, the instruction pointer of the
// call site and the allocated address range. When a PEBS sample fires, the
// sampled effective address is looked up in that range table to attribute
// the access to a data object. Heap.Lookup is that query.
//
// The heap is a bump allocator over a simulated address space: addresses are
// never recycled, which keeps attribution unambiguous even for short-lived
// objects (a real implementation handles recycling by generation-tagging;
// the simulation sidesteps it without changing observable behaviour).
package alloc

import (
	"fmt"
	"sort"

	"drbw/internal/memsim"
	"drbw/internal/topology"
)

// ObjectID identifies one heap allocation.
type ObjectID int

// NoObject is returned when an address does not fall in any live object.
const NoObject ObjectID = -1

// Site describes an allocation call site — what the real profiler derives
// from the instruction pointer via the symbol table.
type Site struct {
	Func string // allocating function, e.g. "hypre_CSRMatrixInitialize"
	File string // source file
	Line int    // source line
}

// String renders the site as "func (file:line)".
func (s Site) String() string {
	if s.File == "" {
		return s.Func
	}
	return fmt.Sprintf("%s (%s:%d)", s.Func, s.File, s.Line)
}

// Kind records which allocator entry point created an object.
type Kind int

// Allocation entry points intercepted by the profiler.
const (
	Malloc Kind = iota
	Calloc
	Realloc
)

// String names the allocation kind.
func (k Kind) String() string {
	switch k {
	case Malloc:
		return "malloc"
	case Calloc:
		return "calloc"
	case Realloc:
		return "realloc"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Object is one live heap allocation.
type Object struct {
	ID    ObjectID
	Name  string // programmer-meaningful name, e.g. "RAP_diag_j"
	Site  Site
	Kind  Kind
	Base  uint64
	Size  uint64
	Huge  bool
	Freed bool
}

// Contains reports whether addr falls inside the object.
func (o Object) Contains(addr uint64) bool {
	return !o.Freed && addr >= o.Base && addr < o.Base+o.Size
}

// Heap is the simulated heap plus the profiler's range table.
type Heap struct {
	as   *memsim.AddressSpace
	next uint64
	objs []Object // indexed by ObjectID; Base strictly increasing
}

// NewHeap creates a heap whose first allocation starts at base (rounded up
// to the address space's page size internally as needed).
func NewHeap(as *memsim.AddressSpace, base uint64) *Heap {
	return &Heap{as: as, next: base}
}

// Space returns the underlying address space.
func (h *Heap) Space() *memsim.AddressSpace { return h.as }

func (h *Heap) align(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

func (h *Heap) alloc(name string, size uint64, site Site, kind Kind, pol memsim.Policy, huge bool) (ObjectID, error) {
	if size == 0 {
		return NoObject, fmt.Errorf("alloc: zero-size allocation for %q at %s", name, site)
	}
	pageSize := uint64(h.as.Machine().PageSize())
	if huge {
		pageSize = uint64(h.as.Machine().HugePageSize())
	}
	base := h.align(h.next, pageSize)
	if err := h.as.Map(base, size, pol, huge); err != nil {
		return NoObject, fmt.Errorf("alloc: mapping %q: %w", name, err)
	}
	mapped := h.align(size, pageSize)
	h.next = base + mapped
	id := ObjectID(len(h.objs))
	h.objs = append(h.objs, Object{
		ID: id, Name: name, Site: site, Kind: kind,
		Base: base, Size: size, Huge: huge,
	})
	return id, nil
}

// Malloc allocates size bytes attributed to site, placing its pages with pol.
func (h *Heap) Malloc(name string, size uint64, site Site, pol memsim.Policy) (ObjectID, error) {
	return h.alloc(name, size, site, Malloc, pol, false)
}

// Calloc allocates count*elem zeroed bytes. Because calloc touches the whole
// region at allocation time in a real program, first-touch placement is
// resolved immediately on the calling thread's node.
func (h *Heap) Calloc(name string, count, elem uint64, site Site, pol memsim.Policy, caller topology.NodeID) (ObjectID, error) {
	if count != 0 && elem != 0 && count > ^uint64(0)/elem {
		return NoObject, fmt.Errorf("alloc: calloc overflow %d*%d for %q", count, elem, name)
	}
	id, err := h.alloc(name, count*elem, site, Calloc, pol, false)
	if err != nil {
		return NoObject, err
	}
	o := h.objs[id]
	for addr := o.Base; addr < o.Base+o.Size; addr += uint64(h.as.Machine().PageSize()) {
		h.as.Touch(addr, caller)
	}
	return id, nil
}

// MallocHuge allocates size bytes backed by huge pages (the bandit micro
// benchmark needs huge pages for a deterministic offset→cache-set mapping).
func (h *Heap) MallocHuge(name string, size uint64, site Site, pol memsim.Policy) (ObjectID, error) {
	return h.alloc(name, size, site, Malloc, pol, true)
}

// Realloc grows or shrinks obj to newSize, keeping its site association the
// way the profiler does (the range table entry is replaced). The returned
// object may have a new base address.
func (h *Heap) Realloc(obj ObjectID, newSize uint64, pol memsim.Policy) (ObjectID, error) {
	o, err := h.object(obj)
	if err != nil {
		return NoObject, err
	}
	if o.Freed {
		return NoObject, fmt.Errorf("alloc: realloc of freed object %d (%s)", obj, o.Name)
	}
	if err := h.Free(obj); err != nil {
		return NoObject, err
	}
	return h.alloc(o.Name, newSize, o.Site, Realloc, pol, o.Huge)
}

// Free releases obj. Its range table entry is retired so later samples no
// longer attribute to it.
func (h *Heap) Free(obj ObjectID) error {
	o, err := h.object(obj)
	if err != nil {
		return err
	}
	if o.Freed {
		return fmt.Errorf("alloc: double free of object %d (%s)", obj, o.Name)
	}
	if err := h.as.Unmap(o.Base); err != nil {
		return err
	}
	h.objs[obj].Freed = true
	return nil
}

func (h *Heap) object(id ObjectID) (Object, error) {
	if id < 0 || int(id) >= len(h.objs) {
		return Object{}, fmt.Errorf("alloc: unknown object %d", id)
	}
	return h.objs[id], nil
}

// Object returns the descriptor of id. It panics on an ID that was never
// returned by this heap, which always indicates a caller bug.
func (h *Heap) Object(id ObjectID) Object {
	o, err := h.object(id)
	if err != nil {
		panic(err)
	}
	return o
}

// Objects returns all allocations ever made, live and freed, in allocation
// order.
func (h *Heap) Objects() []Object {
	out := make([]Object, len(h.objs))
	copy(out, h.objs)
	return out
}

// Live returns the currently live allocations in allocation order.
func (h *Heap) Live() []Object {
	var out []Object
	for _, o := range h.objs {
		if !o.Freed {
			out = append(out, o)
		}
	}
	return out
}

// Lookup attributes addr to a live data object — the query the profiler
// answers for every PEBS sample. It runs in O(log n) over the range table.
func (h *Heap) Lookup(addr uint64) (ObjectID, bool) {
	// Bases are strictly increasing in allocation order, so binary search
	// over the full table and check liveness afterwards.
	idx := sort.Search(len(h.objs), func(i int) bool { return h.objs[i].Base > addr })
	if idx == 0 {
		return NoObject, false
	}
	o := h.objs[idx-1]
	if !o.Contains(addr) {
		return NoObject, false
	}
	return o.ID, true
}

// Addr translates an (object, byte offset) pair into a simulated virtual
// address; workload generators use it to emit accesses.
func (h *Heap) Addr(obj ObjectID, offset uint64) uint64 {
	o := h.Object(obj)
	if offset >= o.Size {
		panic(fmt.Sprintf("alloc: offset %d out of range for object %s (size %d)", offset, o.Name, o.Size))
	}
	return o.Base + offset
}

// SetPolicy migrates the pages of obj to a new placement, the primitive the
// optimizer uses for interleave / co-locate / replicate fixes.
func (h *Heap) SetPolicy(obj ObjectID, pol memsim.Policy) error {
	o, err := h.object(obj)
	if err != nil {
		return err
	}
	if o.Freed {
		return fmt.Errorf("alloc: SetPolicy on freed object %d (%s)", obj, o.Name)
	}
	return h.as.SetPolicy(o.Base, pol)
}

// TouchAll resolves first-touch placement for every page of obj as if node
// had initialized it serially (the common "master thread memsets the array"
// pattern that causes contention in the first place).
func (h *Heap) TouchAll(obj ObjectID, node topology.NodeID) {
	o := h.Object(obj)
	step := uint64(h.as.Machine().PageSize())
	if o.Huge {
		step = uint64(h.as.Machine().HugePageSize())
	}
	for addr := o.Base; addr < o.Base+o.Size; addr += step {
		h.as.Touch(addr, node)
	}
}

// TouchPartitioned resolves first-touch placement as if the object were
// initialized by a parallel loop with a blocked partition over nodes — the
// co-located initialization the paper's fixes introduce.
func (h *Heap) TouchPartitioned(obj ObjectID, nodes []topology.NodeID) {
	if len(nodes) == 0 {
		return
	}
	o := h.Object(obj)
	step := uint64(h.as.Machine().PageSize())
	if o.Huge {
		step = uint64(h.as.Machine().HugePageSize())
	}
	pages := (o.Size + step - 1) / step
	per := (pages + uint64(len(nodes)) - 1) / uint64(len(nodes))
	for p := uint64(0); p < pages; p++ {
		n := nodes[min(int(p/per), len(nodes)-1)]
		h.as.Touch(o.Base+p*step, n)
	}
}
