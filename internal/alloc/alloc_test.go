package alloc

import (
	"testing"
	"testing/quick"

	"drbw/internal/memsim"
	"drbw/internal/topology"
)

func newHeap(t *testing.T) *Heap {
	t.Helper()
	as := memsim.NewAddressSpace(topology.Uniform(4, 4))
	return NewHeap(as, 0x10000000)
}

var testSite = Site{Func: "main", File: "main.c", Line: 42}

func TestMallocAndLookup(t *testing.T) {
	h := newHeap(t)
	a, err := h.Malloc("a", 1<<20, testSite, memsim.BindTo(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Malloc("b", 4096, testSite, memsim.BindTo(1))
	if err != nil {
		t.Fatal(err)
	}
	oa, ob := h.Object(a), h.Object(b)
	if oa.Base+oa.Size > ob.Base {
		t.Fatalf("objects overlap: a=[%#x,%#x) b starts %#x", oa.Base, oa.Base+oa.Size, ob.Base)
	}
	if id, ok := h.Lookup(oa.Base); !ok || id != a {
		t.Errorf("Lookup(base of a) = %d,%v", id, ok)
	}
	if id, ok := h.Lookup(oa.Base + oa.Size - 1); !ok || id != a {
		t.Errorf("Lookup(last byte of a) = %d,%v", id, ok)
	}
	if id, ok := h.Lookup(ob.Base + 100); !ok || id != b {
		t.Errorf("Lookup(inside b) = %d,%v", id, ok)
	}
	if _, ok := h.Lookup(0x1000); ok {
		t.Error("Lookup below heap should miss")
	}
	if _, ok := h.Lookup(ob.Base + ob.Size); ok {
		// One past the end of the last object: either unmapped or padding,
		// but never attributed to b.
		t.Error("Lookup past object end should miss")
	}
}

func TestLookupInPagePadding(t *testing.T) {
	h := newHeap(t)
	// 100-byte object occupies a full page; addresses in the padding are not
	// attributed to it.
	a, err := h.Malloc("small", 100, testSite, memsim.BindTo(0))
	if err != nil {
		t.Fatal(err)
	}
	o := h.Object(a)
	if _, ok := h.Lookup(o.Base + 100); ok {
		t.Error("address in page padding attributed to object")
	}
}

func TestZeroSizeRejected(t *testing.T) {
	h := newHeap(t)
	if _, err := h.Malloc("z", 0, testSite, memsim.BindTo(0)); err == nil {
		t.Error("zero-size malloc accepted")
	}
}

func TestFreeRetiresRange(t *testing.T) {
	h := newHeap(t)
	a, err := h.Malloc("a", 4096, testSite, memsim.BindTo(0))
	if err != nil {
		t.Fatal(err)
	}
	base := h.Object(a).Base
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Lookup(base); ok {
		t.Error("freed object still attributed")
	}
	if err := h.Free(a); err == nil {
		t.Error("double free accepted")
	}
	if len(h.Live()) != 0 {
		t.Errorf("Live() = %d objects after free", len(h.Live()))
	}
	if len(h.Objects()) != 1 {
		t.Errorf("Objects() should retain history, got %d", len(h.Objects()))
	}
}

func TestCallocTouchesPages(t *testing.T) {
	h := newHeap(t)
	a, err := h.Calloc("c", 16, 4096, testSite, memsim.FirstTouchPolicy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	o := h.Object(a)
	if o.Kind != Calloc {
		t.Errorf("kind = %v, want calloc", o.Kind)
	}
	for off := uint64(0); off < o.Size; off += 4096 {
		if n := h.Space().NodeOf(o.Base + off); n != 2 {
			t.Fatalf("calloc page +%#x on node %d, want 2 (first touch by caller)", off, n)
		}
	}
}

func TestCallocOverflow(t *testing.T) {
	h := newHeap(t)
	if _, err := h.Calloc("big", ^uint64(0), 2, testSite, memsim.BindTo(0), 0); err == nil {
		t.Error("calloc overflow accepted")
	}
}

func TestReallocPreservesSite(t *testing.T) {
	h := newHeap(t)
	a, err := h.Malloc("grow", 4096, testSite, memsim.BindTo(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Realloc(a, 8192, memsim.BindTo(1))
	if err != nil {
		t.Fatal(err)
	}
	ob := h.Object(b)
	if ob.Site != testSite || ob.Name != "grow" {
		t.Errorf("realloc lost identity: %+v", ob)
	}
	if ob.Kind != Realloc {
		t.Errorf("kind = %v, want realloc", ob.Kind)
	}
	if ob.Size != 8192 {
		t.Errorf("size = %d, want 8192", ob.Size)
	}
	if h.Object(a).Freed != true {
		t.Error("original object not freed by realloc")
	}
	if _, err := h.Realloc(a, 100, memsim.BindTo(0)); err == nil {
		t.Error("realloc of freed object accepted")
	}
}

func TestAddrTranslation(t *testing.T) {
	h := newHeap(t)
	a, _ := h.Malloc("arr", 1024, testSite, memsim.BindTo(0))
	o := h.Object(a)
	if got := h.Addr(a, 0); got != o.Base {
		t.Errorf("Addr(0) = %#x, want %#x", got, o.Base)
	}
	if got := h.Addr(a, 1023); got != o.Base+1023 {
		t.Errorf("Addr(1023) = %#x", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Addr did not panic")
		}
	}()
	h.Addr(a, 1024)
}

func TestMallocHuge(t *testing.T) {
	h := newHeap(t)
	a, err := h.MallocHuge("pages", 4<<20, testSite, memsim.BindTo(3))
	if err != nil {
		t.Fatal(err)
	}
	o := h.Object(a)
	if !o.Huge {
		t.Error("object not marked huge")
	}
	hp := uint64(h.Space().Machine().HugePageSize())
	if o.Base%hp != 0 {
		t.Errorf("huge allocation base %#x not huge-page aligned", o.Base)
	}
}

func TestTouchAllAndPartitioned(t *testing.T) {
	h := newHeap(t)
	a, _ := h.Malloc("ft", 16*4096, testSite, memsim.FirstTouchPolicy())
	h.TouchAll(a, 1)
	o := h.Object(a)
	for off := uint64(0); off < o.Size; off += 4096 {
		if n := h.Space().NodeOf(o.Base + off); n != 1 {
			t.Fatalf("TouchAll page +%#x on node %d", off, n)
		}
	}

	b, _ := h.Malloc("part", 16*4096, testSite, memsim.FirstTouchPolicy())
	h.TouchPartitioned(b, []topology.NodeID{0, 1, 2, 3})
	ob := h.Object(b)
	counts := map[topology.NodeID]int{}
	for off := uint64(0); off < ob.Size; off += 4096 {
		counts[h.Space().NodeOf(ob.Base+off)]++
	}
	for n := topology.NodeID(0); n < 4; n++ {
		if counts[n] != 4 {
			t.Fatalf("partitioned touch gave node %d %d pages: %v", n, counts[n], counts)
		}
	}
	// Empty node set is a no-op, not a panic.
	h.TouchPartitioned(b, nil)
}

func TestSetPolicyOnFreed(t *testing.T) {
	h := newHeap(t)
	a, _ := h.Malloc("a", 4096, testSite, memsim.BindTo(0))
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.SetPolicy(a, memsim.InterleaveAll()); err == nil {
		t.Error("SetPolicy on freed object accepted")
	}
}

func TestSiteAndKindStrings(t *testing.T) {
	if got := testSite.String(); got != "main (main.c:42)" {
		t.Errorf("Site.String() = %q", got)
	}
	if got := (Site{Func: "f"}).String(); got != "f" {
		t.Errorf("file-less Site.String() = %q", got)
	}
	for k, want := range map[Kind]string{Malloc: "malloc", Calloc: "calloc", Realloc: "realloc", Kind(7): "Kind(7)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

// Property: every byte of every live object attributes back to that object,
// for arbitrary allocation sequences.
func TestLookupTotalityProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		as := memsim.NewAddressSpace(topology.Uniform(2, 2))
		h := NewHeap(as, 0x10000000)
		var ids []ObjectID
		for i, s := range sizes {
			if i >= 12 {
				break
			}
			size := uint64(s%5000) + 1
			id, err := h.Malloc("o", size, testSite, memsim.BindTo(0))
			if err != nil {
				return false
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			o := h.Object(id)
			for _, off := range []uint64{0, o.Size / 2, o.Size - 1} {
				got, ok := h.Lookup(o.Base + off)
				if !ok || got != id {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
