package rcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func open(t *testing.T, opt Options) *Cache {
	t.Helper()
	c, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestKeyOfBoundaries(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("part boundaries are not part of the key")
	}
	if KeyOf("a") == KeyOf("a", "") {
		t.Fatal("empty trailing part does not change the key")
	}
	if KeyOf("a", "b") != KeyOf("a", "b") {
		t.Fatal("KeyOf is not deterministic")
	}
}

func TestMemoryOnlyPutGet(t *testing.T) {
	c := open(t, Options{})
	k := KeyOf("k")
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("value"))
	v, ok := c.Get(k)
	if !ok || string(v) != "value" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
	}
}

func TestDiskRoundTripAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	k := KeyOf("persisted")
	c1 := open(t, Options{Dir: dir})
	c1.Put(k, []byte("survives"))

	// A fresh instance has an empty memory tier; the value must come back
	// from disk, checksum-verified.
	c2 := open(t, Options{Dir: dir})
	v, ok := c2.Get(k)
	if !ok || string(v) != "survives" {
		t.Fatalf("disk Get = %q, %v", v, ok)
	}
	if st := c2.Stats(); st.DiskBytes == 0 {
		t.Fatal("Open did not account for the pre-existing entry")
	}
}

// entryFiles lists the .rc files under dir.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*"+entryExt))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCorruptEntriesAreMisses(t *testing.T) {
	for name, corrupt := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bitflip": func(b []byte) []byte {
			b[len(b)-1] ^= 0x40
			return b
		},
		"bitflip_header": func(b []byte) []byte {
			b[2] ^= 0x01
			return b
		},
		"empty": func(b []byte) []byte { return nil },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			k := KeyOf("victim", name)
			c1 := open(t, Options{Dir: dir})
			c1.Put(k, []byte("the real value"))
			files := entryFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("entry files = %v", files)
			}
			raw, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			c2 := open(t, Options{Dir: dir})
			if v, ok := c2.Get(k); ok {
				t.Fatalf("corrupt entry served as a hit: %q", v)
			}
			st := c2.Stats()
			if st.Corrupt != 1 {
				t.Fatalf("corrupt count = %d, want 1", st.Corrupt)
			}
			if rest := entryFiles(t, dir); len(rest) != 0 {
				t.Fatalf("corrupt entry not deleted: %v", rest)
			}
			// The slot is reusable: a recompute re-populates it.
			c2.Put(k, []byte("recomputed"))
			if v, ok := c2.Get(k); !ok || string(v) != "recomputed" {
				t.Fatalf("after recompute Get = %q, %v", v, ok)
			}
		})
	}
}

func TestMemEvictionBudget(t *testing.T) {
	c := open(t, Options{MemBytes: 100})
	for i := 0; i < 10; i++ {
		c.Put(KeyOf(fmt.Sprint(i)), bytes.Repeat([]byte{byte(i)}, 30))
	}
	st := c.Stats()
	if st.MemBytes > 100 {
		t.Fatalf("mem tier holds %d bytes, budget 100", st.MemBytes)
	}
	if st.MemEvictions == 0 {
		t.Fatal("no mem evictions under a 100-byte budget")
	}
	// The newest entries survive, the oldest are gone (LRU order).
	if _, ok := c.memGet(KeyOf("9")); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := c.memGet(KeyOf("0")); ok {
		t.Fatal("oldest entry survived a full budget cycle")
	}
}

func TestDiskEvictionBudget(t *testing.T) {
	dir := t.TempDir()
	// Each entry is entryHeaderLen (40) + 30 payload = 70 bytes; budget
	// fits three.
	c := open(t, Options{Dir: dir, DiskBytes: 220})
	for i := 0; i < 8; i++ {
		k := KeyOf("disk", fmt.Sprint(i))
		c.Put(k, bytes.Repeat([]byte{byte(i)}, 30))
		// mtime granularity is the disk LRU's clock; space the writes out.
		time.Sleep(2 * time.Millisecond)
	}
	var total int64
	for _, f := range entryFiles(t, dir) {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	if total > 220 {
		t.Fatalf("disk tier holds %d bytes, budget 220", total)
	}
	st := c.Stats()
	if st.DiskEvictions == 0 {
		t.Fatal("no disk evictions under budget pressure")
	}
	// The latest write is always spared.
	c2 := open(t, Options{Dir: dir})
	if _, ok := c2.Get(KeyOf("disk", "7")); !ok {
		t.Fatal("most recent entry evicted from disk")
	}
}

func TestDoSingleflight(t *testing.T) {
	c := open(t, Options{Dir: t.TempDir()})
	k := KeyOf("flight")
	var computes atomic.Int64
	release := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	vals := make([][]byte, callers)
	hits := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := c.Do(k, func() ([]byte, error) {
				computes.Add(1)
				<-release
				return []byte("computed once"), nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], hits[i] = v, hit
		}(i)
	}
	// Give every goroutine time to reach the flight, then release the leader.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	nhit := 0
	for i := range vals {
		if string(vals[i]) != "computed once" {
			t.Fatalf("caller %d got %q", i, vals[i])
		}
		if hits[i] {
			nhit++
		}
	}
	if nhit != callers-1 {
		t.Fatalf("%d callers reported hit, want %d (all but the leader)", nhit, callers-1)
	}
	// A later Do is a plain memory hit.
	if _, hit, err := c.Do(k, func() ([]byte, error) { t.Fatal("recompute"); return nil, nil }); err != nil || !hit {
		t.Fatalf("warm Do hit = %v, err = %v", hit, err)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := open(t, Options{Dir: t.TempDir()})
	k := KeyOf("err")
	boom := fmt.Errorf("boom")
	if _, _, err := c.Do(k, func() ([]byte, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure left nothing behind; the next Do computes and succeeds.
	v, hit, err := c.Do(k, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(v) != "ok" {
		t.Fatalf("after error: %q hit=%v err=%v", v, hit, err)
	}
}

func TestClear(t *testing.T) {
	dir := t.TempDir()
	c := open(t, Options{Dir: dir})
	k := KeyOf("gone")
	c.Put(k, []byte("x"))
	if err := c.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit after Clear")
	}
	if files := entryFiles(t, dir); len(files) != 0 {
		t.Fatalf("entries survive Clear: %v", files)
	}
}
