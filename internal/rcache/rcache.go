// Package rcache is a two-tier content-addressed result cache: an
// in-process byte-budgeted LRU in front of a persistent on-disk tier.
//
// Values are opaque byte payloads addressed by a SHA-256 key the caller
// derives from the *content* of every input (trace fingerprint, config
// fingerprint, schema version). Content addressing is what makes the cache
// safe without any invalidation protocol: a changed input or a changed
// result schema produces a different key, so stale entries are never hit —
// they merely age out of the LRU budgets.
//
// The disk tier is crash-safe and corruption-tolerant by construction:
// entries are written to a temp file and renamed into place (readers never
// see a partial write), and every load re-verifies an embedded SHA-256
// checksum. A damaged entry is a silent miss — it is deleted, a flight-
// recorder event is logged, and the caller recomputes — never a wrong
// result. The in-process tier adds singleflight: concurrent callers of Do
// with the same key share one computation.
package rcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"drbw/internal/obs"
)

// SchemaVersion names the cached-payload schema. Callers fold it into
// every key, so bumping it on an incompatible payload change orphans all
// old entries at once — invalidation by versioning, no migration code.
const SchemaVersion = "drbw.rcache/1"

// Key addresses one cached value. Derive it with KeyOf from every input
// that determines the value.
type Key [sha256.Size]byte

// KeyOf hashes the parts into a Key. Parts are length-prefixed, so the
// boundary between adjacent parts is part of the identity ("ab","c" and
// "a","bc" produce different keys).
func KeyOf(parts ...string) Key {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Options configures Open.
type Options struct {
	// Dir is the disk tier's directory, created if missing; empty keeps the
	// cache purely in-process.
	Dir string
	// MemBytes budgets the in-process LRU (payload bytes; <= 0 uses 64 MiB).
	MemBytes int64
	// DiskBytes budgets the disk tier (entry file bytes; <= 0 uses 1 GiB).
	// When a write pushes the tier past the budget, the least recently used
	// entries (by file mtime — loads refresh it) are evicted.
	DiskBytes int64
}

// Stats is a point-in-time counter snapshot, for tests and CLI summaries.
type Stats struct {
	// Hits counts Get/Do calls served from either tier; Shared counts Do
	// calls that piggybacked on another caller's in-flight computation
	// (a subset of neither Hits nor Misses).
	Hits, Misses, Shared int64
	// Corrupt counts disk entries that failed checksum or framing checks
	// and were dropped; each one is also a flight-recorder event.
	Corrupt int64
	// MemEvictions / DiskEvictions count entries pushed out by the budgets.
	MemEvictions, DiskEvictions int64
	// MemBytes / DiskBytes are the tiers' current payload footprints.
	MemBytes, DiskBytes int64
}

// entryMagic opens every disk entry file, distinct from every trace magic.
const entryMagic = "DRBWRC1\n"

// entryHeaderLen is magic + payload SHA-256.
const entryHeaderLen = len(entryMagic) + sha256.Size

// entryExt names disk entries; the evicter only ever touches *.rc files.
const entryExt = ".rc"

type memEntry struct {
	key Key
	val []byte
}

type flight struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// Cache is the two-tier cache. All methods are safe for concurrent use.
type Cache struct {
	dir       string
	memBudget int64
	diskBudge int64

	mu       sync.Mutex
	mem      map[Key]*list.Element
	lru      *list.List // front = most recently used
	memBytes int64
	flights  map[Key]*flight

	// diskMu serializes disk-tier accounting and eviction; entry reads and
	// writes themselves run outside it.
	diskMu    sync.Mutex
	diskBytes int64

	hits, misses, shared, corrupt, memEvict, diskEvict atomic.Int64

	obsHits, obsMisses, obsShared, obsCorrupt *obs.Counter
	obsMemEvict, obsDiskEvict                 *obs.Counter
	obsMemBytes, obsDiskBytes                 *obs.Gauge
}

// Open creates a cache. With Options.Dir set, the directory is created and
// scanned so the disk budget accounts for entries left by earlier runs.
func Open(opt Options) (*Cache, error) {
	if opt.MemBytes <= 0 {
		opt.MemBytes = 64 << 20
	}
	if opt.DiskBytes <= 0 {
		opt.DiskBytes = 1 << 30
	}
	c := &Cache{
		dir:       opt.Dir,
		memBudget: opt.MemBytes,
		diskBudge: opt.DiskBytes,
		mem:       map[Key]*list.Element{},
		lru:       list.New(),
		flights:   map[Key]*flight{},

		obsHits:      obs.Default.Counter("rcache.hits"),
		obsMisses:    obs.Default.Counter("rcache.misses"),
		obsShared:    obs.Default.Counter("rcache.shared"),
		obsCorrupt:   obs.Default.Counter("rcache.corrupt"),
		obsMemEvict:  obs.Default.Counter("rcache.evictions.mem"),
		obsDiskEvict: obs.Default.Counter("rcache.evictions.disk"),
		obsMemBytes:  obs.Default.Gauge("rcache.bytes.mem"),
		obsDiskBytes: obs.Default.Gauge("rcache.bytes.disk"),
	}
	if c.dir != "" {
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			return nil, fmt.Errorf("rcache: %w", err)
		}
		c.diskBytes = c.scanDisk()
		c.obsDiskBytes.Set(float64(c.diskBytes))
	}
	return c, nil
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	memBytes := c.memBytes
	c.mu.Unlock()
	c.diskMu.Lock()
	diskBytes := c.diskBytes
	c.diskMu.Unlock()
	return Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(), Shared: c.shared.Load(),
		Corrupt:      c.corrupt.Load(),
		MemEvictions: c.memEvict.Load(), DiskEvictions: c.diskEvict.Load(),
		MemBytes: memBytes, DiskBytes: diskBytes,
	}
}

// Get returns the cached payload for key, consulting memory then disk. The
// returned slice is shared — callers must not modify it.
func (c *Cache) Get(key Key) ([]byte, bool) {
	if v, ok := c.memGet(key); ok {
		c.hit()
		return v, true
	}
	if v, ok := c.diskGet(key); ok {
		c.memPut(key, v)
		c.hit()
		return v, true
	}
	c.miss()
	return nil, false
}

// Put stores val under key in both tiers. val is retained — callers must
// not modify it afterwards.
func (c *Cache) Put(key Key, val []byte) {
	c.memPut(key, val)
	c.diskPut(key, val)
}

// Do returns the cached payload for key, computing and caching it on a
// miss. Concurrent calls with the same key share one computation
// (singleflight); hit reports whether this caller avoided computing —
// served from a tier or from another caller's in-flight work. Compute
// errors are returned to every caller of the sharing group and are never
// cached. The returned slice is shared — callers must not modify it.
func (c *Cache) Do(key Key, compute func() ([]byte, error)) (val []byte, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.mem[key]; ok {
		c.lru.MoveToFront(e)
		v := e.Value.(*memEntry).val
		c.mu.Unlock()
		c.hit()
		return v, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		f.wg.Wait()
		if f.err != nil {
			return nil, false, f.err
		}
		c.shared.Add(1)
		c.obsShared.Inc()
		return f.val, true, nil
	}
	f := &flight{}
	f.wg.Add(1)
	c.flights[key] = f
	c.mu.Unlock()

	defer func() {
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		f.wg.Done()
	}()
	if v, ok := c.diskGet(key); ok {
		c.memPut(key, v)
		f.val = v
		c.hit()
		return v, true, nil
	}
	v, cerr := compute()
	if cerr != nil {
		f.err = cerr
		return nil, false, cerr
	}
	c.Put(key, v)
	f.val = v
	c.miss()
	return v, false, nil
}

// Clear drops every entry from both tiers (benchmarks use it to re-create
// the cold state).
func (c *Cache) Clear() error {
	c.mu.Lock()
	c.mem = map[Key]*list.Element{}
	c.lru = list.New()
	c.memBytes = 0
	c.mu.Unlock()
	c.obsMemBytes.Set(0)
	if c.dir == "" {
		return nil
	}
	c.diskMu.Lock()
	defer c.diskMu.Unlock()
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("rcache: %w", err)
	}
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == entryExt {
			os.Remove(filepath.Join(c.dir, e.Name()))
		}
	}
	c.diskBytes = 0
	c.obsDiskBytes.Set(0)
	return nil
}

func (c *Cache) hit() {
	c.hits.Add(1)
	c.obsHits.Inc()
}

func (c *Cache) miss() {
	c.misses.Add(1)
	c.obsMisses.Inc()
}

// --- in-process tier ---

func (c *Cache) memGet(key Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.mem[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e)
	return e.Value.(*memEntry).val, true
}

func (c *Cache) memPut(key Key, val []byte) {
	c.mu.Lock()
	if e, ok := c.mem[key]; ok {
		me := e.Value.(*memEntry)
		c.memBytes += int64(len(val)) - int64(len(me.val))
		me.val = val
		c.lru.MoveToFront(e)
	} else {
		c.mem[key] = c.lru.PushFront(&memEntry{key: key, val: val})
		c.memBytes += int64(len(val))
	}
	evicted := 0
	for c.memBytes > c.memBudget && c.lru.Len() > 0 {
		back := c.lru.Back()
		me := back.Value.(*memEntry)
		c.lru.Remove(back)
		delete(c.mem, me.key)
		c.memBytes -= int64(len(me.val))
		evicted++
	}
	memBytes := c.memBytes
	c.mu.Unlock()
	if evicted > 0 {
		c.memEvict.Add(int64(evicted))
		c.obsMemEvict.Add(int64(evicted))
	}
	c.obsMemBytes.Set(float64(memBytes))
}

// --- disk tier ---

func (c *Cache) entryPath(key Key) string {
	return filepath.Join(c.dir, hex.EncodeToString(key[:])+entryExt)
}

// diskGet loads and verifies one entry. Any framing or checksum failure —
// a torn write survived by rename somehow, bit rot, truncation, a foreign
// file wearing the right name — deletes the entry and reads as a miss,
// never as data.
func (c *Cache) diskGet(key Key) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	path := c.entryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if len(data) < entryHeaderLen || string(data[:len(entryMagic)]) != entryMagic {
		c.dropCorrupt(path, int64(len(data)))
		return nil, false
	}
	payload := data[entryHeaderLen:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(data[len(entryMagic):entryHeaderLen]) {
		c.dropCorrupt(path, int64(len(data)))
		return nil, false
	}
	// Refresh recency for the disk LRU; best effort.
	now := time.Now()
	os.Chtimes(path, now, now)
	return payload, true
}

func (c *Cache) dropCorrupt(path string, size int64) {
	if os.Remove(path) == nil {
		c.diskMu.Lock()
		if c.diskBytes -= size; c.diskBytes < 0 {
			c.diskBytes = 0
		}
		c.obsDiskBytes.Set(float64(c.diskBytes))
		c.diskMu.Unlock()
	}
	c.corrupt.Add(1)
	c.obsCorrupt.Inc()
	obs.RecordEvent(obs.EventError, "rcache.corrupt_entry", size, 0)
}

// diskPut writes one entry atomically: temp file in the same directory,
// fsync-free rename into place. A crash mid-write leaves only a temp file
// the next eviction sweep ignores; readers see the old entry or the new
// one, never a mix.
func (c *Cache) diskPut(key Key, val []byte) {
	if c.dir == "" {
		return
	}
	path := c.entryPath(key)
	var oldSize int64
	if fi, err := os.Stat(path); err == nil {
		oldSize = fi.Size()
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return // cache writes are best effort; the result is still returned
	}
	sum := sha256.Sum256(val)
	_, werr := tmp.Write([]byte(entryMagic))
	if werr == nil {
		_, werr = tmp.Write(sum[:])
	}
	if werr == nil {
		_, werr = tmp.Write(val)
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil || os.Rename(tmp.Name(), path) != nil {
		os.Remove(tmp.Name())
		return
	}
	size := int64(entryHeaderLen + len(val))
	c.diskMu.Lock()
	c.diskBytes += size - oldSize
	over := c.diskBytes > c.diskBudge
	c.obsDiskBytes.Set(float64(c.diskBytes))
	c.diskMu.Unlock()
	if over {
		c.evictDisk(key)
	}
}

// scanDisk sums the existing entry files (and sweeps stale temp files).
func (c *Cache) scanDisk() int64 {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if filepath.Ext(name) != entryExt {
			if len(name) > 4 && name[:4] == ".tmp" {
				os.Remove(filepath.Join(c.dir, name))
			}
			continue
		}
		if fi, err := e.Info(); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// evictDisk removes least-recently-used entries (oldest mtime first, names
// as a deterministic tiebreak) until the tier fits its budget again. The
// entry just written for keep is spared — evicting the value the caller is
// about to rely on would defeat the Put.
func (c *Cache) evictDisk(keep Key) {
	c.diskMu.Lock()
	defer c.diskMu.Unlock()
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	type entry struct {
		name  string
		size  int64
		mtime time.Time
	}
	var files []entry
	var total int64
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != entryExt {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, entry{name: e.Name(), size: fi.Size(), mtime: fi.ModTime()})
		total += fi.Size()
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].name < files[j].name
	})
	keepName := hex.EncodeToString(keep[:]) + entryExt
	evicted := 0
	for _, f := range files {
		if total <= c.diskBudge {
			break
		}
		if f.name == keepName {
			continue
		}
		if os.Remove(filepath.Join(c.dir, f.name)) == nil {
			total -= f.size
			evicted++
		}
	}
	c.diskBytes = total
	c.obsDiskBytes.Set(float64(total))
	if evicted > 0 {
		c.diskEvict.Add(int64(evicted))
		c.obsDiskEvict.Add(int64(evicted))
	}
}
