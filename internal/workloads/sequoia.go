package workloads

import (
	"fmt"

	"drbw/internal/alloc"
	"drbw/internal/program"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

// AMG2006: LLNL's algebraic multigrid solver. Three phases — init, setup,
// solve. The coarse-grid operator arrays (RAP_diag_j and friends) are
// allocated and filled during the serial parts of setup, so every page
// lands on node 0; the OpenMP solve loops then hammer them from all
// sockets. Class: rmc on all 8 cases (Table V), fixed by co-locating the
// four arrays Figure 4(a) blames.
func AMG2006() program.Builder {
	return program.Builder{
		Name:   "AMG2006",
		Inputs: []string{"30x30x30"},
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			if cfg.Input != "30x30x30" {
				return nil, errUnknownInput(cfg.Input)
			}
			mk := func(name string, sizeMB uint64, line int) (alloc.Object, error) {
				return masterAlloc(p, name, sizeMB*mb,
					site("hypre_CSRMatrixInitialize", "csr_matrix.c", line))
			}
			rap, err := mk("RAP_diag_j", 24, 230)
			if err != nil {
				return nil, err
			}
			diagJ, err := mk("diag_j", 16, 214)
			if err != nil {
				return nil, err
			}
			diagData, err := mk("diag_data", 12, 216)
			if err != nil {
				return nil, err
			}
			aDiagJ, err := mk("A_diag_j", 8, 198)
			if err != nil {
				return nil, err
			}
			rhs, err := parallelAlloc(p, cfg, "rhs", 4*mb,
				site("hypre_SeqVectorInitialize", "vector.c", 96))
			if err != nil {
				return nil, err
			}
			arrays := []alloc.Object{rap, diagJ, diagData, aDiagJ}

			init := serialInitPhase("init", append(arrays, rhs), cfg.Threads, 8)

			// Setup does blocked passes over the operator arrays with real
			// work in between: moderate pressure.
			setup := trace.Phase{Name: "setup"}
			for t := 0; t < cfg.Threads; t++ {
				var streams []trace.Stream
				for _, o := range arrays {
					sl := threadSlices(o, cfg.Threads)[t]
					streams = append(streams, &trace.Seq{Base: sl.Base, Len: sl.Len, Elem: 8, WriteEvery: 6})
				}
				setup.Threads = append(setup.Threads, trace.ThreadSpec{
					Stream:     &trace.Mix{Streams: streams, Weights: []int{1, 1, 1, 1}},
					Ops:        8e5,
					MLP:        4,
					WorkCycles: 7,
				})
			}

			// Solve: bandwidth-hungry sweeps weighted the way Figure 4(a)
			// reports CF: RAP_diag_j > diag_j > diag_data > A_diag_j.
			solve := trace.Phase{Name: "solve"}
			for t := 0; t < cfg.Threads; t++ {
				var streams []trace.Stream
				for _, o := range append(arrays, rhs) {
					sl := threadSlices(o, cfg.Threads)[t]
					streams = append(streams, &trace.Seq{Base: sl.Base, Len: sl.Len, Elem: 8})
				}
				solve.Threads = append(solve.Threads, trace.ThreadSpec{
					Stream:     &trace.Mix{Streams: streams, Weights: []int{8, 5, 4, 2, 1}},
					Ops:        3.2e6,
					MLP:        8,
					WorkCycles: 1.5,
				})
			}
			p.Phases = []trace.Phase{init, setup, solve}
			return p, nil
		},
	}
}

// IRSmk: LLNL's implicit radiation solver kernel — a 27-point stencil over
// a 3-D block-structured mesh touching 29 equally sized arrays (b, k and 27
// coefficient arrays), all initialized serially. With medium and large
// meshes the arrays stream from node 0 and contend; the small mesh is cache
// resident. Class: rmc (15/24 cases), fixed by co-locating all 29 arrays
// (Figure 6, up to 6.2x in the paper).
func IRSmk() program.Builder {
	return program.Builder{
		Name:   "IRSmk",
		Inputs: []string{"small", "medium", "large"},
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			var size uint64
			switch cfg.Input {
			case "small": // reduced mesh: 29 arrays x 32 KB, cache resident
				size = 32 * kb
			case "medium": // 64^3 mesh: 29 x 2 MB
				size = 2 * mb
			case "large": // 96^3 mesh: 29 x 7 MB
				size = 7 * mb
			default:
				return nil, errUnknownInput(cfg.Input)
			}
			names := []string{"b", "k"}
			for i := 0; i < 27; i++ {
				names = append(names, fmt.Sprintf("coef_%c%c%c",
					"dcu"[i%3], "bcf"[(i/3)%3], "lcr"[(i/9)%3]))
			}
			var objs []alloc.Object
			for i, n := range names {
				o, err := masterAlloc(p, n, size, site("AllocateMesh", "irsmk.c", 58+i))
				if err != nil {
					return nil, err
				}
				objs = append(objs, o)
			}
			ph := trace.Phase{Name: "rmatmult3"}
			for t := 0; t < cfg.Threads; t++ {
				var streams []trace.Stream
				var weights []int
				for _, o := range objs {
					sl := threadSlices(o, cfg.Threads)[t]
					streams = append(streams, &trace.Seq{Base: sl.Base, Len: sl.Len, Elem: 8})
					weights = append(weights, 1)
				}
				ph.Threads = append(ph.Threads, trace.ThreadSpec{
					Stream:     &trace.Mix{Streams: streams, Weights: weights},
					Ops:        2.4e6,
					MLP:        8,
					WorkCycles: 1.5,
				})
			}
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}

// LULESH: the Livermore shock-hydro proxy. Over 40 domain arrays are
// allocated back-to-back (lulesh.cc lines 2158-2238 in the paper's version)
// and initialized by the master thread; two large static objects add
// traffic the profiler cannot attribute. T16-N4 leaves each socket's links
// under-saturated — the paper's classifier calls that configuration good —
// while denser configurations contend. Class: rmc.
func LULESH() program.Builder {
	return program.Builder{
		Name:   "LULESH",
		Inputs: []string{"large"},
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			if cfg.Input != "large" {
				return nil, errUnknownInput(cfg.Input)
			}
			var objs []alloc.Object
			names := []string{
				"m_x", "m_y", "m_z", "m_xd", "m_yd", "m_zd",
				"m_fx", "m_fy", "m_fz", "m_e", "m_p", "m_q",
				"m_v", "m_volo", "m_delv", "m_arealg",
			}
			for i, n := range names {
				o, err := masterAlloc(p, n, 6*mb, site("Domain::Domain", "lulesh.cc", 2158+2*i))
				if err != nil {
					return nil, err
				}
				objs = append(objs, o)
			}
			// Static data: node lists and symmetry tables, ~20% of traffic.
			staticBase := uint64(0x7f0000000000)
			if _, err := staticAlloc(p, staticBase, 24*mb); err != nil {
				return nil, err
			}
			ph := trace.Phase{Name: "lagrange_leapfrog"}
			staticParts := program.PartitionSeq(24*mb, cfg.Threads)
			for t := 0; t < cfg.Threads; t++ {
				var streams []trace.Stream
				var weights []int
				for _, o := range objs {
					sl := threadSlices(o, cfg.Threads)[t]
					streams = append(streams, &trace.Seq{Base: sl.Base, Len: sl.Len, Elem: 8, WriteEvery: 5})
					weights = append(weights, 1)
				}
				streams = append(streams, &trace.Seq{
					Base: staticBase + staticParts[t].Off, Len: staticParts[t].Len, Elem: 8,
				})
				weights = append(weights, 4) // static share ~20% of 20 units
				ph.Threads = append(ph.Threads, trace.ThreadSpec{
					Stream:     &trace.Mix{Streams: streams, Weights: weights},
					Ops:        2.2e6,
					MLP:        6,
					WorkCycles: 4.5,
				})
			}
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}

// NW: Rodinia's Needleman-Wunsch sequence alignment. The score matrix
// (input_itemsets) and the reference matrix are both allocated and filled
// by the master thread, then swept in anti-diagonal wavefronts by all
// threads. Small inputs stay cache resident; the rest contend. Class: rmc
// (16/24 cases), fixed by co-locating both arrays (+32.6% in the paper).
func NW() program.Builder {
	return program.Builder{
		Name:   "NW",
		Inputs: []string{"small", "medium", "large"},
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			var n uint64
			switch cfg.Input {
			case "small":
				n = 128 // 2 x 64 KB: per-thread strips are cache resident
			case "medium":
				n = 4096 // 2 x 64 MB
			case "large":
				n = 8192 // 2 x 256 MB
			default:
				return nil, errUnknownInput(cfg.Input)
			}
			itemsets, err := masterAlloc(p, "input_itemsets", n*n*4,
				site("main", "needle.cpp", 148))
			if err != nil {
				return nil, err
			}
			reference, err := masterAlloc(p, "reference", n*n*4,
				site("main", "needle.cpp", 151))
			if err != nil {
				return nil, err
			}
			ph := trace.Phase{Name: "needle"}
			rows := n / uint64(cfg.Threads)
			if rows == 0 {
				rows = 1
			}
			for t := 0; t < cfg.Threads; t++ {
				first := uint64(t) * rows
				s := &trace.Mix{
					Streams: []trace.Stream{
						&trace.Wavefront{Base: itemsets.Base, N: n, Elem: 4, RowFirst: first, RowCount: rows},
						&trace.Seq{Base: reference.Base + first*n*4, Len: rows * n * 4, Elem: 4},
					},
					Weights: []int{4, 1},
				}
				ph.Threads = append(ph.Threads, trace.ThreadSpec{
					Stream: s, Ops: 1.8e6, MLP: 6, WorkCycles: 1,
				})
			}
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}
