package workloads

import (
	"drbw/internal/alloc"
	"drbw/internal/program"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

// PARSEC input sets, smallest to largest.
var parsecInputs = []string{"simSmall", "simMedium", "simLarge", "native"}

// parsecScale maps the four input sets to a footprint multiplier.
func parsecScale(input string) (uint64, error) {
	return inputScale(map[string]uint64{
		"simSmall": 1, "simMedium": 2, "simLarge": 4, "native": 8,
	}, input)
}

// Swaptions: Monte-Carlo swaption pricing — embarrassingly parallel,
// compute bound, tiny per-thread state. Class: good.
func Swaptions() program.Builder {
	return program.Builder{
		Name:   "Swaptions",
		Inputs: parsecInputs,
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			scale, err := parsecScale(cfg.Input)
			if err != nil {
				return nil, err
			}
			o, err := parallelAlloc(p, cfg, "pdSwaptionPrice", uint64(cfg.Threads)*64*kb,
				site("worker", "HJM_Securities.cpp", 112))
			if err != nil {
				return nil, err
			}
			p.Phases = []trace.Phase{blockedPhase("simulate",
				[]alloc.Object{o}, cfg.Threads, float64(scale)*4e5, 2, 25)}
			return p, nil
		},
	}
}

// Blackscholes: one big option buffer scanned in a blocked parallel-for,
// initialized in parallel (co-located first touch) and dominated by
// per-option math. Class: good — but its `buffer` carries the highest CF,
// the paper's Section VIII-G negative control.
func Blackscholes() program.Builder {
	return program.Builder{
		Name:   "Blackscholes",
		Inputs: parsecInputs,
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			scale, err := parsecScale(cfg.Input)
			if err != nil {
				return nil, err
			}
			buffer, err := parallelAlloc(p, cfg, "buffer", scale*32*mb,
				site("bs_thread", "blackscholes.c", 310))
			if err != nil {
				return nil, err
			}
			prices, err := parallelAlloc(p, cfg, "prices", scale*8*mb,
				site("main", "blackscholes.c", 392))
			if err != nil {
				return nil, err
			}
			ph := blockedPhase("price", []alloc.Object{buffer, buffer, buffer, prices},
				cfg.Threads, 2e6, 4, 12)
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}

// Bodytrack: particle-filter body tracking — a small shared read-only model
// plus per-thread particles; compute heavy. Class: good. The paper runs two
// input sets (16 cases).
func Bodytrack() program.Builder {
	return program.Builder{
		Name:   "Bodytrack",
		Inputs: []string{"simMedium", "simLarge"},
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			scale, err := parsecScale(cfg.Input)
			if err != nil {
				return nil, err
			}
			model, err := masterAlloc(p, "bodyModel", scale*2*mb,
				site("BodyGeometry::load", "BodyGeometry.cpp", 88))
			if err != nil {
				return nil, err
			}
			particles, err := parallelAlloc(p, cfg, "particles", uint64(cfg.Threads)*256*kb,
				site("ParticleFilter::init", "ParticleFilter.h", 140))
			if err != nil {
				return nil, err
			}
			ph := blockedPhase("track", []alloc.Object{particles, particles, model},
				cfg.Threads, 1.5e6, 3, 14)
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}

// Freqmine: FP-growth frequent itemset mining — pointer-heavy tree walks
// over a co-located database with good cache behaviour. Class: good.
func Freqmine() program.Builder {
	return program.Builder{
		Name:   "Freqmine",
		Inputs: parsecInputs,
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			scale, err := parsecScale(cfg.Input)
			if err != nil {
				return nil, err
			}
			tree, err := parallelAlloc(p, cfg, "fp_tree", scale*24*mb,
				site("FP_tree::scan2_DB", "fp_tree.cpp", 676))
			if err != nil {
				return nil, err
			}
			ph := blockedPhase("mine", []alloc.Object{tree}, cfg.Threads, 1.8e6, 3, 10)
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}

// Ferret: content-based similarity search; the image database is loaded by
// the parallel pipeline stages so its pages spread across nodes, and the
// ranking stage is compute heavy. Class: good.
func Ferret() program.Builder {
	return program.Builder{
		Name:   "Ferret",
		Inputs: parsecInputs,
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			scale, err := parsecScale(cfg.Input)
			if err != nil {
				return nil, err
			}
			db, err := parallelAlloc(p, cfg, "imageDB", scale*16*mb,
				site("cass_table_load", "cass_table.c", 209))
			if err != nil {
				return nil, err
			}
			ph := sharedRandomPhase("rank", []alloc.Object{db}, cfg.Threads, 1e6, 2, 26)
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}

// Fluidanimate: SPH fluid simulation. Particle arrays are co-located, but
// the shared cell grid is built by the master thread, so a quarter of the
// accesses aim at node 0. Near the largest configurations this drives the
// node-0 controller close to — not past — saturation: latencies inflate
// enough to trip the classifier on a few cases while interleaving gains
// under 10%. Class: good (the paper's 4 false-positive cases).
func Fluidanimate() program.Builder {
	return program.Builder{
		Name:   "Fluidanimate",
		Inputs: parsecInputs,
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			scale, err := parsecScale(cfg.Input)
			if err != nil {
				return nil, err
			}
			cells, err := masterAlloc(p, "cells", scale*24*mb,
				site("InitSim", "pthreads.cpp", 441))
			if err != nil {
				return nil, err
			}
			particles, err := parallelAlloc(p, cfg, "particles", scale*24*mb,
				site("InitSim", "pthreads.cpp", 476))
			if err != nil {
				return nil, err
			}
			ph := trace.Phase{Name: "advance"}
			slices := threadSlices(particles, cfg.Threads)
			for t := 0; t < cfg.Threads; t++ {
				s := &trace.Mix{
					Streams: []trace.Stream{
						&trace.Seq{Base: slices[t].Base, Len: slices[t].Len, Elem: 8, WriteEvery: 4},
						&trace.Rand{Base: cells.Base, Len: cells.Size, Elem: 8},
					},
					Weights: []int{9, 1},
				}
				ph.Threads = append(ph.Threads, trace.ThreadSpec{
					Stream: s, Ops: 1.6e6, MLP: 4, WorkCycles: 10,
				})
			}
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}

// Raytrace: read-only scene shared by all threads but small enough to stay
// cache resident; per-ray work dominates. Class: good. (Listed in Table IV
// only; the paper's Table V omits it.)
func Raytrace() program.Builder {
	return program.Builder{
		Name:   "Raytrace",
		Inputs: parsecInputs,
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			scale, err := parsecScale(cfg.Input)
			if err != nil {
				return nil, err
			}
			scene, err := masterAlloc(p, "scene", scale*1*mb,
				site("LoadScene", "RTTL.cxx", 1204))
			if err != nil {
				return nil, err
			}
			ph := sharedRandomPhase("render", []alloc.Object{scene}, cfg.Threads,
				float64(scale)*4e5, 2, 20)
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}

// X264: H.264 encoding — threads stream over their own frame slices
// (co-located) with motion-estimation compute in between. Class: good.
func X264() program.Builder {
	return program.Builder{
		Name:   "X264",
		Inputs: parsecInputs,
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			scale, err := parsecScale(cfg.Input)
			if err != nil {
				return nil, err
			}
			frames, err := parallelAlloc(p, cfg, "frames", scale*32*mb,
				site("x264_frame_new", "frame.c", 55))
			if err != nil {
				return nil, err
			}
			refs, err := parallelAlloc(p, cfg, "ref_frames", scale*16*mb,
				site("x264_frame_new", "frame.c", 71))
			if err != nil {
				return nil, err
			}
			ph := blockedPhase("encode", []alloc.Object{frames, refs},
				cfg.Threads, 2e6, 6, 10)
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}

// Streamcluster: online clustering. The `block` of input points is
// allocated and initialized by the main thread and then read at random by
// every worker for distance computations — the textbook remote-bandwidth
// pathology the paper verifies (13/16 cases actually contended; the fix is
// replication, Figure 7). Class: rmc.
func Streamcluster() program.Builder {
	return program.Builder{
		Name:   "Streamcluster",
		Inputs: []string{"simLarge", "native"},
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			var blockMB, pMB uint64
			switch cfg.Input {
			case "simLarge":
				blockMB, pMB = 48, 16
			case "native":
				blockMB, pMB = 192, 64
			default:
				return nil, errUnknownInput(cfg.Input)
			}
			block, err := masterAlloc(p, "block", blockMB*mb,
				site("main", "streamcluster.cpp", 1838))
			if err != nil {
				return nil, err
			}
			pointP, err := masterAlloc(p, "point.p", pMB*mb,
				site("SimStream::read", "streamcluster.cpp", 1120))
			if err != nil {
				return nil, err
			}
			centers, err := parallelAlloc(p, cfg, "centers", 2*mb,
				site("pkmedian", "streamcluster.cpp", 980))
			if err != nil {
				return nil, err
			}
			ph := trace.Phase{Name: "pgain"}
			pSlices := threadSlices(pointP, cfg.Threads)
			cSlices := threadSlices(centers, cfg.Threads)
			for t := 0; t < cfg.Threads; t++ {
				s := &trace.Mix{
					Streams: []trace.Stream{
						&trace.Rand{Base: block.Base, Len: block.Size, Elem: 8},
						&trace.Seq{Base: pSlices[t].Base, Len: pSlices[t].Len, Elem: 8},
						&trace.Seq{Base: cSlices[t].Base, Len: cSlices[t].Len, Elem: 8, WriteEvery: 2},
					},
					Weights: []int{6, 2, 2},
				}
				ph.Threads = append(ph.Threads, trace.ThreadSpec{
					Stream: s, Ops: 2e6, MLP: 6, WorkCycles: 2,
				})
			}
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}
