package workloads

import (
	"fmt"

	"drbw/internal/alloc"
	"drbw/internal/program"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

// NPB classes; DC runs A and B only (16 cases in Table V).
var npbInputs = []string{"A", "B", "C"}

// npbScale converts a class letter to a footprint multiplier.
func npbScale(input string) (uint64, error) {
	return inputScale(map[string]uint64{"A": 1, "B": 4, "C": 16}, input)
}

// npbStencil builds the common shape of the NPB structured-grid solvers
// (BT, LU, MG): several co-located field arrays swept in blocked
// parallel-for loops with real arithmetic between accesses. Class: good —
// parallel initialization co-locates every page.
func npbStencil(name string, arrays int, baseMB uint64, mlp, work float64) program.Builder {
	return program.Builder{
		Name:   name,
		Inputs: npbInputs,
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			scale, err := npbScale(cfg.Input)
			if err != nil {
				return nil, err
			}
			var objs []alloc.Object
			for i := 0; i < arrays; i++ {
				o, err := parallelAlloc(p, cfg, fmt.Sprintf("u%d", i),
					scale*baseMB*mb, site("initialize", name+".f", 120+10*i))
				if err != nil {
					return nil, err
				}
				objs = append(objs, o)
			}
			p.Phases = []trace.Phase{
				blockedPhase("solve", objs, cfg.Threads, 2e6, mlp, work),
			}
			return p, nil
		},
	}
}

// BT: block tri-diagonal solver. Class: good.
func BT() program.Builder { return npbStencil("BT", 5, 8, 4, 10) }

// LU: lower-upper Gauss-Seidel solver. Class: good.
func LU() program.Builder { return npbStencil("LU", 4, 8, 4, 9) }

// MG: multigrid. Class: good.
func MG() program.Builder { return npbStencil("MG", 3, 12, 5, 8) }

// BTArrays exposes BT's array count for tests.
const BTArrays = 5

// CG: conjugate gradient — CSR sparse matrix-vector products. The matrix
// rows are co-located; the gathered x vector is shared but small enough to
// stay cache resident. Class: good.
func CG() program.Builder {
	return program.Builder{
		Name:   "CG",
		Inputs: npbInputs,
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			scale, err := npbScale(cfg.Input)
			if err != nil {
				return nil, err
			}
			a, err := parallelAlloc(p, cfg, "a", scale*24*mb, site("makea", "cg.f", 855))
			if err != nil {
				return nil, err
			}
			colidx, err := parallelAlloc(p, cfg, "colidx", scale*12*mb, site("makea", "cg.f", 857))
			if err != nil {
				return nil, err
			}
			// The gathered x vector is small (1.2 MB even for class C) and
			// rewritten by all threads every iteration, so its pages spread
			// across the nodes.
			x, err := parallelAlloc(p, cfg, "x", scale*128*kb, site("main", "cg.f", 300))
			if err != nil {
				return nil, err
			}
			ph := trace.Phase{Name: "conj_grad"}
			aS := threadSlices(a, cfg.Threads)
			cS := threadSlices(colidx, cfg.Threads)
			for t := 0; t < cfg.Threads; t++ {
				s := &trace.Mix{
					Streams: []trace.Stream{
						&trace.Seq{Base: aS[t].Base, Len: aS[t].Len, Elem: 8},
						&trace.Seq{Base: cS[t].Base, Len: cS[t].Len, Elem: 4},
						&trace.Rand{Base: x.Base, Len: x.Size, Elem: 8},
					},
					Weights: []int{2, 1, 1},
				}
				ph.Threads = append(ph.Threads, trace.ThreadSpec{
					Stream: s, Ops: 2e6, MLP: 4, WorkCycles: 6,
				})
			}
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}

// DC: data cube operator — streaming aggregation over co-located tuples.
// Class: good. Runs classes A and B (16 cases).
func DC() program.Builder {
	b := npbStencil("DC", 2, 16, 4, 8)
	b.Inputs = []string{"A", "B"}
	return b
}

// EP: embarrassingly parallel random-number kernel; essentially no memory
// traffic. Class: good.
func EP() program.Builder {
	return program.Builder{
		Name:   "EP",
		Inputs: npbInputs,
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			scale, err := npbScale(cfg.Input)
			if err != nil {
				return nil, err
			}
			o, err := parallelAlloc(p, cfg, "qq", uint64(cfg.Threads)*16*kb,
				site("embar", "ep.f", 230))
			if err != nil {
				return nil, err
			}
			p.Phases = []trace.Phase{
				blockedPhase("gaussian", []alloc.Object{o}, cfg.Threads,
					float64(scale)*3e5, 1, 30),
			}
			return p, nil
		},
	}
}

// FT: 3-D FFT. The local FFT passes stream over co-located data; the
// transpose exchanges every thread's slice with every other thread's, so
// the traffic is all-to-all and *balanced*: per-channel load approaches —
// but does not pass — saturation on the largest class, inflating latencies
// without a bindable hot channel. Class: good (the paper's 2 FT
// false-positive cases).
func FT() program.Builder {
	return program.Builder{
		Name:   "FT",
		Inputs: npbInputs,
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			scale, err := npbScale(cfg.Input)
			if err != nil {
				return nil, err
			}
			u, err := parallelAlloc(p, cfg, "u0", scale*16*mb, site("setup", "ft.f", 210))
			if err != nil {
				return nil, err
			}
			scratch, err := parallelAlloc(p, cfg, "u1", scale*16*mb, site("setup", "ft.f", 212))
			if err != nil {
				return nil, err
			}
			local := blockedPhase("fft_local", []alloc.Object{u, scratch},
				cfg.Threads, 1.2e6, 6, 7)

			// Transpose: each thread reads the slices owned by one peer on
			// every *other* node (t + k·T/n for k = 1..n-1) and writes its
			// own scratch slice — deterministic all-to-all that loads every
			// inter-socket channel evenly.
			tp := trace.Phase{Name: "transpose"}
			uS := threadSlices(u, cfg.Threads)
			sS := threadSlices(scratch, cfg.Threads)
			for t := 0; t < cfg.Threads; t++ {
				streams := []trace.Stream{
					&trace.Seq{Base: sS[t].Base, Len: sS[t].Len, Elem: 8, WriteEvery: 1},
				}
				weights := []int{cfg.Nodes - 1}
				if cfg.Nodes == 1 {
					weights = []int{1}
				}
				for k := 1; k < cfg.Nodes; k++ {
					peer := (t + k*cfg.Threads/cfg.Nodes) % cfg.Threads
					streams = append(streams, &trace.Seq{Base: uS[peer].Base, Len: uS[peer].Len, Elem: 8})
					weights = append(weights, 1)
				}
				tp.Threads = append(tp.Threads, trace.ThreadSpec{
					Stream:     &trace.Mix{Streams: streams, Weights: weights},
					Ops:        1e6,
					MLP:        6,
					WorkCycles: 3.5,
				})
			}
			p.Phases = []trace.Phase{local, tp}
			return p, nil
		},
	}
}

// IS: integer bucket sort — sequential key scan plus scattered histogram
// updates into a co-located bucket array. Class: good.
func IS() program.Builder {
	return program.Builder{
		Name:   "IS",
		Inputs: npbInputs,
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			scale, err := npbScale(cfg.Input)
			if err != nil {
				return nil, err
			}
			keys, err := parallelAlloc(p, cfg, "key_array", scale*16*mb,
				site("create_seq", "is.c", 380))
			if err != nil {
				return nil, err
			}
			buckets, err := parallelAlloc(p, cfg, "bucket_ptrs", scale*1*mb,
				site("rank", "is.c", 510))
			if err != nil {
				return nil, err
			}
			ph := trace.Phase{Name: "rank"}
			kS := threadSlices(keys, cfg.Threads)
			for t := 0; t < cfg.Threads; t++ {
				s := &trace.Mix{
					Streams: []trace.Stream{
						&trace.Seq{Base: kS[t].Base, Len: kS[t].Len, Elem: 4},
						&trace.Rand{Base: buckets.Base, Len: buckets.Size, Elem: 4, WriteFrac: 0.5},
					},
					Weights: []int{5, 1},
				}
				ph.Threads = append(ph.Threads, trace.ThreadSpec{
					Stream: s, Ops: 1.6e6, MLP: 4, WorkCycles: 9,
				})
			}
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}

// UA: unstructured adaptive mesh — irregular gathers over a co-located
// mesh plus frequent visits to shared adaptivity tables built by the master
// thread. The shared share keeps the node-0 channels warm enough to trip
// the classifier on several cases while interleaving never gains 10%.
// Class: good (the paper's 9 UA false-positive cases).
func UA() program.Builder {
	return program.Builder{
		Name:   "UA",
		Inputs: npbInputs,
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			scale, err := npbScale(cfg.Input)
			if err != nil {
				return nil, err
			}
			mesh, err := parallelAlloc(p, cfg, "mesh", scale*24*mb, site("mesher", "ua.f", 540))
			if err != nil {
				return nil, err
			}
			tables, err := masterAlloc(p, "adapt_tables", scale*12*mb, site("setup", "ua.f", 118))
			if err != nil {
				return nil, err
			}
			ph := trace.Phase{Name: "adapt"}
			mS := threadSlices(mesh, cfg.Threads)
			for t := 0; t < cfg.Threads; t++ {
				s := &trace.Mix{
					Streams: []trace.Stream{
						&trace.Seq{Base: mS[t].Base, Len: mS[t].Len, Elem: 8},
						&trace.Rand{Base: tables.Base, Len: tables.Size, Elem: 8},
					},
					Weights: []int{11, 1},
				}
				ph.Threads = append(ph.Threads, trace.ThreadSpec{
					Stream: s, Ops: 1.8e6, MLP: 4, WorkCycles: 8,
				})
			}
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}

// SP: scalar penta-diagonal solver. Unlike the other NPB codes, SP's field
// arrays are statically allocated (Fortran COMMON blocks) and land on node
// 0 with the process image — the profiler cannot attribute samples to them
// (Section VIII-F), and interleaving the whole program is the only fix the
// paper applies (up to 1.75×). Class: rmc (11/24 cases).
func SP() program.Builder {
	return program.Builder{
		Name:   "SP",
		Inputs: npbInputs,
		Build: func(m *topology.Machine, cfg program.Config) (*program.Program, error) {
			p, err := build(m, cfg)
			if err != nil {
				return nil, err
			}
			var sizeMB uint64
			var mlp, work float64
			switch cfg.Input {
			case "A":
				// Class A fits the caches (reduced to keep per-thread
				// slices within a warmup pass).
				sizeMB, mlp, work = 1, 4, 8
			case "B":
				// Class B streams with moderate intensity: only the densest
				// thread-per-node configurations saturate the node-0 links.
				sizeMB, mlp, work = 96, 4, 11
			case "C":
				sizeMB, mlp, work = 256, 8, 3
			default:
				return nil, errUnknownInput(cfg.Input)
			}
			const staticBase = 0x7f0000000000
			base, err := staticAlloc(p, staticBase, sizeMB*mb)
			if err != nil {
				return nil, err
			}
			ph := trace.Phase{Name: "adi"}
			parts := program.PartitionSeq(sizeMB*mb, cfg.Threads)
			for t := 0; t < cfg.Threads; t++ {
				s := &trace.Seq{Base: base + parts[t].Off, Len: parts[t].Len, Elem: 8, WriteEvery: 3}
				ph.Threads = append(ph.Threads, trace.ThreadSpec{
					Stream: s, Ops: 2e6, MLP: mlp, WorkCycles: work,
				})
			}
			p.Phases = []trace.Phase{ph}
			return p, nil
		},
	}
}
