// Package workloads provides synthetic proxies for the 23 benchmarks of the
// paper's evaluation (Section VII): NPB, PARSEC, Rodinia NW, Sequoia
// (AMG2006, IRSmk) and LULESH.
//
// Each proxy reproduces the benchmark's *memory access pattern* — data
// objects and their allocation sites, sharing structure, footprint scaling
// with input size, initialization (and therefore first-touch placement),
// phase structure, compute intensity and memory-level parallelism — because
// those are what determine the sample statistics DR-BW classifies and the
// contention the engine models. Numeric kernels themselves are not
// reproduced; they are irrelevant to bandwidth behaviour.
//
// The decisive distinctions, mirroring the paper's findings:
//
//   - "good" benchmarks either fit in cache, are compute bound, or
//     initialize their data in parallel so first-touch co-locates pages
//     with the threads that use them;
//   - "rmc" benchmarks allocate or initialize their hot arrays on the
//     master thread, concentrating every page on node 0 and saturating the
//     channels into that node once enough threads run on other sockets;
//   - borderline benchmarks (Fluidanimate, FT, UA) drive shared channels
//     near — but not past — saturation, which inflates latencies enough to
//     trip the classifier while whole-program interleaving gains < 10%:
//     the paper's false-positive rows in Table V.
package workloads

import (
	"fmt"

	"drbw/internal/alloc"
	"drbw/internal/engine"
	"drbw/internal/memsim"
	"drbw/internal/program"
	"drbw/internal/topology"
	"drbw/internal/trace"
)

const (
	kb = 1 << 10
	mb = 1 << 20
)

// build is the common preamble of every proxy: an address space, heap and
// even thread binding.
func build(m *topology.Machine, cfg program.Config) (*program.Program, error) {
	bind, err := engine.EvenBinding(m, cfg.Threads, cfg.Nodes)
	if err != nil {
		return nil, err
	}
	as := memsim.NewAddressSpace(m)
	heap := alloc.NewHeap(as, 0x10000000)
	return &program.Program{
		Machine: m, Space: as, Heap: heap, Binding: bind,
	}, nil
}

// nodesOf lists the node IDs 0..n-1 used by a config.
func nodesOf(cfg program.Config) []topology.NodeID {
	out := make([]topology.NodeID, cfg.Nodes)
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

// masterAlloc allocates an object and first-touches every page on node 0 —
// the serial-initialization pattern that causes the paper's contention.
func masterAlloc(p *program.Program, name string, size uint64, site alloc.Site) (alloc.Object, error) {
	id, err := p.Heap.Malloc(name, size, site, memsim.FirstTouchPolicy())
	if err != nil {
		return alloc.Object{}, err
	}
	p.Heap.TouchAll(id, 0)
	return p.Heap.Object(id), nil
}

// parallelAlloc allocates an object whose pages are first-touched by a
// blocked parallel loop: each node gets the share its threads will use.
func parallelAlloc(p *program.Program, cfg program.Config, name string, size uint64, site alloc.Site) (alloc.Object, error) {
	id, err := p.Heap.Malloc(name, size, site, memsim.FirstTouchPolicy())
	if err != nil {
		return alloc.Object{}, err
	}
	p.Heap.TouchPartitioned(id, nodesOf(cfg))
	return p.Heap.Object(id), nil
}

// staticAlloc maps a region directly in the address space without a heap
// entry: the program's static/global data, which DR-BW's profiler does not
// track (SP and parts of LULESH). Pages land on node 0 like the data
// segment of a process started there.
func staticAlloc(p *program.Program, base, size uint64) (uint64, error) {
	if err := p.Space.Map(base, size, memsim.BindTo(0), false); err != nil {
		return 0, err
	}
	return base, nil
}

// threadSlices partitions an object across threads (blocked, like an OpenMP
// static schedule) and returns each thread's base address and length.
func threadSlices(o alloc.Object, threads int) []struct{ Base, Len uint64 } {
	parts := program.PartitionSeq(o.Size, threads)
	out := make([]struct{ Base, Len uint64 }, threads)
	for i, pt := range parts {
		out[i].Base = o.Base + pt.Off
		out[i].Len = pt.Len
	}
	return out
}

// blockedPhase builds a phase where every thread scans its own share of each
// listed object (weights equal), with opsPerThread accesses total.
func blockedPhase(name string, objs []alloc.Object, threads int, opsPerThread, mlp, work float64) trace.Phase {
	ph := trace.Phase{Name: name}
	for t := 0; t < threads; t++ {
		var streams []trace.Stream
		var weights []int
		for _, o := range objs {
			sl := threadSlices(o, threads)[t]
			streams = append(streams, &trace.Seq{Base: sl.Base, Len: sl.Len, Elem: 8})
			weights = append(weights, 1)
		}
		var s trace.Stream
		if len(streams) == 1 {
			s = streams[0]
		} else {
			s = &trace.Mix{Streams: streams, Weights: weights}
		}
		ph.Threads = append(ph.Threads, trace.ThreadSpec{
			Stream: s, Ops: opsPerThread, MLP: mlp, WorkCycles: work,
		})
	}
	return ph
}

// sharedRandomPhase builds a phase where every thread performs uniform
// random reads over the whole of each object (streamcluster's block).
func sharedRandomPhase(name string, objs []alloc.Object, threads int, opsPerThread, mlp, work float64) trace.Phase {
	ph := trace.Phase{Name: name}
	for t := 0; t < threads; t++ {
		var streams []trace.Stream
		var weights []int
		for _, o := range objs {
			streams = append(streams, &trace.Rand{Base: o.Base, Len: o.Size, Elem: 8})
			weights = append(weights, 1)
		}
		var s trace.Stream
		if len(streams) == 1 {
			s = streams[0]
		} else {
			s = &trace.Mix{Streams: streams, Weights: weights}
		}
		ph.Threads = append(ph.Threads, trace.ThreadSpec{
			Stream: s, Ops: opsPerThread, MLP: mlp, WorkCycles: work,
		})
	}
	return ph
}

// serialInitPhase models a master thread writing all objects once, the
// phase in which serial first-touch happens (AMG's init).
func serialInitPhase(name string, objs []alloc.Object, threads int, mlp float64) trace.Phase {
	ph := trace.Phase{Name: name, Threads: make([]trace.ThreadSpec, threads)}
	var streams []trace.Stream
	var weights []int
	var bytes uint64
	for _, o := range objs {
		streams = append(streams, &trace.Seq{Base: o.Base, Len: o.Size, Elem: 8, WriteEvery: 1})
		weights = append(weights, 1)
		bytes += o.Size
	}
	if len(streams) == 0 {
		return ph
	}
	var s trace.Stream
	if len(streams) == 1 {
		s = streams[0]
	} else {
		s = &trace.Mix{Streams: streams, Weights: weights}
	}
	ph.Threads[0] = trace.ThreadSpec{
		Stream: s, Ops: float64(bytes / 8), MLP: mlp, WorkCycles: 1,
	}
	return ph
}

// inputScale looks up an input name in a table, erroring on unknown names.
func inputScale(table map[string]uint64, input string) (uint64, error) {
	v, ok := table[input]
	if !ok {
		return 0, fmt.Errorf("unknown input %q", input)
	}
	return v, nil
}

// site builds an allocation site with the benchmark's source file.
func site(fn, file string, line int) alloc.Site { return alloc.Site{Func: fn, File: file, Line: line} }

// errUnknownInput reports an input name the benchmark does not define.
func errUnknownInput(input string) error { return fmt.Errorf("unknown input %q", input) }
