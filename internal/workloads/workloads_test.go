package workloads

import (
	"testing"

	"drbw/internal/engine"
	"drbw/internal/program"
	"drbw/internal/topology"
)

func ecfg(seed uint64) engine.Config {
	return engine.Config{Window: 2048, Warmup: 512, ReservoirSize: 256, Seed: seed}
}

// maxRemoteUtil runs one case and returns the highest peak utilization over
// remote channels and the node-0 controller (the resources remote
// contention saturates).
func maxRemoteUtil(t *testing.T, name, input string, threads, nodes int) float64 {
	t.Helper()
	e, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	m := topology.XeonE5_4650()
	p, err := e.Builder.New(m, program.Config{Threads: threads, Nodes: nodes, Input: input, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(ecfg(42))
	if err != nil {
		t.Fatal(err)
	}
	maxU := 0.0
	for _, ch := range m.RemoteChannels() {
		if u := res.Channel(ch).PeakUtil; u > maxU {
			maxU = u
		}
	}
	if u := res.Channel(topology.Channel{Src: 0, Dst: 0}).PeakUtil; u > maxU {
		maxU = u
	}
	return maxU
}

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 23 {
		t.Fatalf("registry has %d benchmarks, want 23", len(all))
	}
	if got := TotalCases(); got != 512 {
		t.Errorf("Table V cases = %d, want 512", got)
	}
	good, rmc := 0, 0
	for _, e := range all {
		if e.PaperClass == 0 {
			good++
		} else {
			rmc++
		}
	}
	if good != 17 || rmc != 6 {
		t.Errorf("paper classes: %d good / %d rmc, want 17/6", good, rmc)
	}
	if _, ok := ByName("Streamcluster"); !ok {
		t.Error("ByName failed for Streamcluster")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName invented a benchmark")
	}
	if len(Names()) != 23 {
		t.Error("Names() incomplete")
	}
}

// Every benchmark must build under every input × standard config without
// running (construction exercises allocation, placement and binding).
func TestAllBenchmarksBuildEverywhere(t *testing.T) {
	m := topology.XeonE5_4650()
	for _, e := range All() {
		for _, input := range e.Builder.Inputs {
			for _, cfg := range program.StandardConfigs() {
				c := cfg
				c.Input = input
				c.Seed = 1
				p, err := e.Builder.New(m, c)
				if err != nil {
					t.Fatalf("%s %s: %v", e.Name(), c, err)
				}
				if len(p.Binding) != cfg.Threads {
					t.Fatalf("%s %s: %d bound threads", e.Name(), c, len(p.Binding))
				}
				for _, ph := range p.Phases {
					if len(ph.Threads) != cfg.Threads {
						t.Fatalf("%s %s phase %s: %d thread specs", e.Name(), c, ph.Name, len(ph.Threads))
					}
				}
			}
		}
	}
}

func TestUnknownInputRejected(t *testing.T) {
	m := topology.XeonE5_4650()
	for _, name := range []string{"Streamcluster", "SP", "NW", "IRSmk", "Swaptions"} {
		e, _ := ByName(name)
		if _, err := e.Builder.New(m, program.Config{Threads: 16, Nodes: 2, Input: "bogus"}); err == nil {
			t.Errorf("%s accepted bogus input", name)
		}
	}
}

func TestStreamclusterContends(t *testing.T) {
	if u := maxRemoteUtil(t, "Streamcluster", "native", 32, 4); u < 1.2 {
		t.Errorf("streamcluster native T32-N4 max util %.2f, want saturated", u)
	}
}

func TestBlackscholesDoesNot(t *testing.T) {
	if u := maxRemoteUtil(t, "Blackscholes", "native", 64, 4); u > 0.9 {
		t.Errorf("blackscholes native T64-N4 max util %.2f, want < 0.9", u)
	}
}

func TestSwaptionsNearZeroTraffic(t *testing.T) {
	if u := maxRemoteUtil(t, "Swaptions", "native", 64, 4); u > 0.3 {
		t.Errorf("swaptions util %.2f, want ~0", u)
	}
}

func TestAMGContendsEverywhere(t *testing.T) {
	for _, cfg := range program.StandardConfigs() {
		if u := maxRemoteUtil(t, "AMG2006", "30x30x30", cfg.Threads, cfg.Nodes); u < 1.1 {
			t.Errorf("AMG %s max util %.2f, want saturated", cfg.Label(), u)
		}
	}
}

func TestNWSizeDependence(t *testing.T) {
	if u := maxRemoteUtilWindow(t, "NW", "small", 32, 4, 16384, 8192); u > 1.0 {
		t.Errorf("NW small input util %.2f, want cache-resident", u)
	}
	if u := maxRemoteUtil(t, "NW", "large", 32, 4); u < 1.2 {
		t.Errorf("NW large input util %.2f, want saturated", u)
	}
}

// maxRemoteUtilWindow is maxRemoteUtil with a window large enough to reveal
// cache residency of multi-array working sets.
func maxRemoteUtilWindow(t *testing.T, name, input string, threads, nodes int, window, warmup int) float64 {
	t.Helper()
	e, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	m := topology.XeonE5_4650()
	p, err := e.Builder.New(m, program.Config{Threads: threads, Nodes: nodes, Input: input, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(engine.Config{Window: window, Warmup: warmup, ReservoirSize: 256, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	maxU := 0.0
	for _, ch := range m.RemoteChannels() {
		if u := res.Channel(ch).PeakUtil; u > maxU {
			maxU = u
		}
	}
	if u := res.Channel(topology.Channel{Src: 0, Dst: 0}).PeakUtil; u > maxU {
		maxU = u
	}
	return maxU
}

func TestIRSmkSizeDependence(t *testing.T) {
	// IRSmk-small's 29-array working set needs a window covering two full
	// passes before its cache residency shows.
	if u := maxRemoteUtilWindow(t, "IRSmk", "small", 32, 4, 12288, 6144); u > 1.0 {
		t.Errorf("IRSmk small util %.2f, want friendly", u)
	}
	if u := maxRemoteUtil(t, "IRSmk", "large", 64, 4); u < 1.5 {
		t.Errorf("IRSmk large util %.2f, want heavily saturated", u)
	}
}

func TestSPClassDependence(t *testing.T) {
	if u := maxRemoteUtilWindow(t, "SP", "A", 32, 4, 16384, 8192); u > 1.0 {
		t.Errorf("SP class A util %.2f, want friendly", u)
	}
	if u := maxRemoteUtil(t, "SP", "C", 64, 4); u < 1.2 {
		t.Errorf("SP class C util %.2f, want saturated", u)
	}
	// Class B contends only at dense thread-per-node configs.
	if u := maxRemoteUtil(t, "SP", "B", 16, 4); u > 1.05 {
		t.Errorf("SP class B T16-N4 util %.2f, want below saturation", u)
	}
	if u := maxRemoteUtil(t, "SP", "B", 32, 2); u < 0.9 {
		t.Errorf("SP class B T32-N2 util %.2f, want near saturation", u)
	}
}

func TestLULESHConfigDependence(t *testing.T) {
	// The paper: T16-N4 is classified good; dense configs contend.
	if u := maxRemoteUtil(t, "LULESH", "large", 16, 4); u > 1.05 {
		t.Errorf("LULESH T16-N4 util %.2f, want below saturation", u)
	}
	if u := maxRemoteUtil(t, "LULESH", "large", 64, 4); u < 1.2 {
		t.Errorf("LULESH T64-N4 util %.2f, want saturated", u)
	}
}

func TestFluidanimateBorderline(t *testing.T) {
	u := maxRemoteUtil(t, "Fluidanimate", "native", 64, 4)
	if u < 0.6 || u > 1.15 {
		t.Errorf("fluidanimate native T64-N4 util %.2f, want borderline [0.6,1.15]", u)
	}
}

func TestFTBalancedTranspose(t *testing.T) {
	// FT's all-to-all is balanced: no remote channel should be far above
	// the others at class C T64-N4.
	e, _ := ByName("FT")
	m := topology.XeonE5_4650()
	p, err := e.Builder.New(m, program.Config{Threads: 64, Nodes: 4, Input: "C", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(ecfg(9))
	if err != nil {
		t.Fatal(err)
	}
	var minU, maxU = 1e9, 0.0
	for _, ch := range m.RemoteChannels() {
		u := res.Channel(ch).PeakUtil
		if u < minU {
			minU = u
		}
		if u > maxU {
			maxU = u
		}
	}
	if maxU > 2.5*minU+0.5 {
		t.Errorf("FT transpose imbalanced: remote peak utils in [%.2f, %.2f]", minU, maxU)
	}
}
