package workloads

import (
	"sort"

	"drbw/internal/features"
	"drbw/internal/program"
)

// Entry describes one benchmark of the evaluation suite.
type Entry struct {
	Builder program.Builder
	// Suite is the benchmark's origin: PARSEC, NPB, Rodinia, Sequoia, LLNL.
	Suite string
	// PaperClass is the class Table IV reports for the benchmark (the
	// overall result across all cases) — recorded for comparison, never
	// used by detection.
	PaperClass features.Label
	// InTableV reports whether the paper's Table V lists per-case counts
	// for this benchmark (Raytrace and LULESH are only in Table IV).
	InTableV bool
}

// Name returns the benchmark name.
func (e Entry) Name() string { return e.Builder.Name }

// Cases returns the number of evaluation cases: inputs × the eight
// standard Tt-Nn configurations.
func (e Entry) Cases() int { return len(e.Builder.Inputs) * len(program.StandardConfigs()) }

// All returns the 23 benchmarks of Section VII in a stable order.
func All() []Entry {
	entries := []Entry{
		{Builder: Swaptions(), Suite: "PARSEC", PaperClass: features.Good, InTableV: true},
		{Builder: Blackscholes(), Suite: "PARSEC", PaperClass: features.Good, InTableV: true},
		{Builder: Bodytrack(), Suite: "PARSEC", PaperClass: features.Good, InTableV: true},
		{Builder: Freqmine(), Suite: "PARSEC", PaperClass: features.Good, InTableV: true},
		{Builder: Ferret(), Suite: "PARSEC", PaperClass: features.Good, InTableV: true},
		{Builder: Fluidanimate(), Suite: "PARSEC", PaperClass: features.Good, InTableV: true},
		{Builder: Raytrace(), Suite: "PARSEC", PaperClass: features.Good, InTableV: false},
		{Builder: X264(), Suite: "PARSEC", PaperClass: features.Good, InTableV: true},
		{Builder: Streamcluster(), Suite: "PARSEC", PaperClass: features.RMC, InTableV: true},
		{Builder: BT(), Suite: "NPB", PaperClass: features.Good, InTableV: true},
		{Builder: CG(), Suite: "NPB", PaperClass: features.Good, InTableV: true},
		{Builder: DC(), Suite: "NPB", PaperClass: features.Good, InTableV: true},
		{Builder: EP(), Suite: "NPB", PaperClass: features.Good, InTableV: true},
		{Builder: FT(), Suite: "NPB", PaperClass: features.Good, InTableV: true},
		{Builder: IS(), Suite: "NPB", PaperClass: features.Good, InTableV: true},
		{Builder: LU(), Suite: "NPB", PaperClass: features.Good, InTableV: true},
		{Builder: MG(), Suite: "NPB", PaperClass: features.Good, InTableV: true},
		{Builder: UA(), Suite: "NPB", PaperClass: features.Good, InTableV: true},
		{Builder: SP(), Suite: "NPB", PaperClass: features.RMC, InTableV: true},
		{Builder: NW(), Suite: "Rodinia", PaperClass: features.RMC, InTableV: true},
		{Builder: AMG2006(), Suite: "Sequoia", PaperClass: features.RMC, InTableV: true},
		{Builder: IRSmk(), Suite: "Sequoia", PaperClass: features.RMC, InTableV: true},
		{Builder: LULESH(), Suite: "LLNL", PaperClass: features.RMC, InTableV: false},
	}
	return entries
}

// ByName finds a benchmark entry by (case-sensitive) name.
func ByName(name string) (Entry, bool) {
	for _, e := range All() {
		if e.Name() == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Names lists all benchmark names, sorted.
func Names() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out
}

// TotalCases returns the number of Table V cases (inputs × configs summed
// over the Table V benchmarks). The paper runs 512.
func TotalCases() int {
	n := 0
	for _, e := range All() {
		if e.InTableV {
			n += e.Cases()
		}
	}
	return n
}
