package profiledata

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"

	"drbw/internal/pebs"
)

// FuzzReadSamples drives the autodetecting decoder — CSV v1/v2 and binary
// v3 — with arbitrary bytes. Malformed or truncated input must come back
// as an error, never a panic, and anything that does decode must re-encode
// and decode to the same samples (the decoder accepts nothing it cannot
// represent).
func FuzzReadSamples(f *testing.F) {
	samples := testTrace(300, 21)

	var v2 bytes.Buffer
	if err := WriteSamples(&v2, samples, 2.5); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v2.Bytes()[bytes.IndexByte(v2.Bytes(), '\n')+1:]) // v1: no meta row
	f.Add(v2.Bytes()[:v2.Len()/2])                          // truncated CSV

	for _, opt := range []BinaryOptions{{}, {Compress: true}, {BlockSize: 16}, {Index: true}, {BlockSize: 16, Index: true}, {Compress: true, Index: true}} {
		var bin bytes.Buffer
		if err := WriteSamplesBinary(&bin, samples, 2.5, opt); err != nil {
			f.Fatal(err)
		}
		f.Add(bin.Bytes())
		f.Add(bin.Bytes()[:bin.Len()/2]) // truncated binary
		f.Add(bin.Bytes()[:12])          // truncated header
		if opt.Index && !opt.Compress {
			f.Add(bin.Bytes()[:bin.Len()-8])            // truncated index trailer
			f.Add(bin.Bytes()[:bin.Len()-indexTailLen]) // footerless tail
		}
	}
	// Footer-version seeds: the legacy DRBWIDX1 form, and targeted bit
	// flips in the DRBWIDX2 checksum region (damaged sums must read as
	// checksum errors or ErrNoIndex, never as silently different samples).
	{
		var bin bytes.Buffer
		if err := WriteSamplesBinary(&bin, samples, 2.5, BinaryOptions{BlockSize: 16, Index: true}); err != nil {
			f.Fatal(err)
		}
		data := bin.Bytes()
		idx, err := ReadBlockIndex(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			f.Fatal(err)
		}
		var v1 bytes.Buffer
		v1.Write(data[:idx.DataEnd+1])
		bw := bufio.NewWriter(&v1)
		if err := writeBlockIndexVersioned(bw, idx.Entries, false); err != nil {
			f.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			f.Fatal(err)
		}
		f.Add(v1.Bytes())
		for _, off := range []int{len(data) - indexTailLen - 1, len(data) - indexTailLen - 9, int(idx.DataEnd) + 2} {
			flipped := append([]byte(nil), data...)
			flipped[off] ^= 1
			f.Add(flipped)
		}
		// Lying-footer seeds: structurally valid DRBWIDX2 footers whose
		// MinTime/MaxTime claims disagree with the decoded samples. The
		// entry times are not covered by the block checksums, so these open
		// cleanly here; the single-pass analysis upstream must catch the
		// disagreement, and nothing at this layer may panic.
		forge := func(mutate func([]IndexEntry)) {
			entries := append([]IndexEntry(nil), idx.Entries...)
			mutate(entries)
			var forged bytes.Buffer
			forged.Write(data[:idx.DataEnd+1])
			if err := WriteBlockIndex(&forged, entries); err != nil {
				f.Fatal(err)
			}
			f.Add(forged.Bytes())
		}
		forge(func(entries []IndexEntry) { entries[0].MinTime += 1 })
		forge(func(entries []IndexEntry) { entries[len(entries)-1].MaxTime += 1e9 })
		forge(func(entries []IndexEntry) {
			for i := range entries {
				entries[i].MinTime, entries[i].MaxTime = 0, 1
			}
		})
	}
	f.Add([]byte(binaryMagic))
	f.Add([]byte("time,cpu\n1,2\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// The indexed opener must never panic on arbitrary bytes. A footer
		// forged onto valid blocks may carry wrong seed state — then ranges
		// decode to *different* (but structurally valid) samples or fail —
		// so the only invariants asserted on untrusted input are memory
		// safety and per-entry count agreement.
		if it, err := NewIndexedTrace(bytes.NewReader(data), int64(len(data))); err == nil {
			for b := 0; b < it.Blocks(); b++ {
				rr, err := it.RangeReader(b, b+1, nil)
				if err != nil {
					t.Fatalf("validated index rejected range [%d,%d): %v", b, b+1, err)
				}
				part, err := rr.appendRemaining(nil)
				if err == nil && len(part) != it.Entry(b).Count {
					t.Fatalf("range [%d,%d) decoded %d samples, index claims %d", b, b+1, len(part), it.Entry(b).Count)
				}
			}
		}

		got, weight, err := ReadSamples(bytes.NewReader(data))
		if err != nil {
			return
		}
		if !(weight > 0) {
			t.Fatalf("decoded weight %v is not positive", weight)
		}
		// Round-trip: whatever decoded must survive binary re-encoding
		// bit for bit.
		var buf bytes.Buffer
		if err := WriteSamplesBinary(&buf, got, weight, BinaryOptions{BlockSize: 32}); err != nil {
			t.Fatalf("re-encode of decoded samples failed: %v", err)
		}
		again, w2, err := ReadSamples(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if w2 != weight {
			t.Fatalf("weight changed across round-trip: %v != %v", w2, weight)
		}
		if len(again) != len(got) {
			t.Fatalf("sample count changed across round-trip: %d != %d", len(again), len(got))
		}
		for i := range got {
			if !sameSample(again[i], got[i]) {
				t.Fatalf("sample %d changed across round-trip", i)
			}
		}

		// Indexed round-trip: re-encode with the footer and decode back
		// through block ranges. Our own writer's index is trusted, so here
		// full equivalence holds (ErrNoIndex is legitimate: NaN times).
		var ibuf bytes.Buffer
		if err := WriteSamplesBinary(&ibuf, got, weight, BinaryOptions{BlockSize: 32, Index: true}); err != nil {
			t.Fatalf("indexed re-encode failed: %v", err)
		}
		it, err := NewIndexedTrace(bytes.NewReader(ibuf.Bytes()), int64(ibuf.Len()))
		if err != nil {
			if err == ErrNoIndex {
				return
			}
			t.Fatalf("opening our own indexed encoding failed: %v", err)
		}
		var ranged []pebs.Sample
		for b := 0; b < it.Blocks(); b++ {
			rr, err := it.RangeReader(b, b+1, nil)
			if err != nil {
				t.Fatalf("range [%d,%d): %v", b, b+1, err)
			}
			if ranged, err = rr.appendRemaining(ranged); err != nil {
				t.Fatalf("range [%d,%d): %v", b, b+1, err)
			}
		}
		if len(ranged) != len(got) {
			t.Fatalf("ranged decode yields %d samples, want %d", len(ranged), len(got))
		}
		for i := range got {
			if !sameSample(ranged[i], got[i]) {
				t.Fatalf("sample %d changed across the indexed round-trip", i)
			}
		}
	})
}

// sameSample is bit-level equality: NaN times or latencies (CSV accepts
// "NaN") still count as equal when their bits match.
func sameSample(a, b pebs.Sample) bool {
	a.Time, b.Time = float64frombitsNorm(a.Time), float64frombitsNorm(b.Time)
	a.Latency, b.Latency = float64frombitsNorm(a.Latency), float64frombitsNorm(b.Latency)
	return reflect.DeepEqual(a, b)
}

// float64frombitsNorm collapses every NaN payload to zero so DeepEqual can
// compare the rest of the struct.
func float64frombitsNorm(f float64) float64 {
	if f != f {
		return 0
	}
	return f
}
