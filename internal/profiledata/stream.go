package profiledata

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"slices"
	"strconv"

	"drbw/internal/pebs"
	"drbw/internal/topology"
)

// Buffers is reusable decode scratch. A batch pipeline that opens many
// recordings hands the same Buffers to each successive SampleReader, so the
// per-block sample slice and payload buffer are allocated once per worker
// instead of once per trace. A Buffers must not back two live readers at
// once.
type Buffers struct {
	samples []pebs.Sample
	payload []byte
	column  []uint64 // batched column-decode scratch, one value per sample
}

// SampleReader streams a sample recording block by block, autodetecting the
// format: binary columnar v3 by its magic, otherwise CSV (v2 with the meta
// row, or v1 starting directly at the header). Weight is available as soon
// as the reader is constructed; Next yields chunks of samples in trace
// order without ever materializing the whole trace, so analysis memory is
// bounded by the block size however long the recording is.
type SampleReader struct {
	weight float64
	format string
	bufs   *Buffers

	// Binary state.
	body    *bufio.Reader // header-stripped body, possibly behind flate
	dec     blockDecoder
	total   uint64 // header sample-count hint; 0 when the writer didn't know
	decoded uint64 // samples decoded so far, checked against total at the end
	avail   int64  // input byte size when cheaply knowable, else -1

	// Range-limited state (readers built by IndexedTrace.RangeReader): the
	// reader stops after blocksLeft blocks instead of at a terminator.
	limited    bool
	blocksLeft int
	// sums, when non-nil, holds the range's per-block payload checksums
	// (DRBWIDX2 indexes); every block read is verified against its entry.
	sums []uint64
	// ra, when non-nil, is the background read-ahead feeding body; stopped
	// on every terminal path and swept by IndexedTrace.Close.
	ra *prefetcher

	// CSV state.
	cr   *csv.Reader
	line int

	done bool
}

// csvBlockSize is the samples per Next chunk when streaming CSV.
const csvBlockSize = 8192

// Format names for SampleReader.Format.
const (
	FormatCSVv1    = "csv-v1"
	FormatCSVv2    = "csv-v2"
	FormatBinaryV3 = "binary-v3"
)

// NewSampleReader opens a recording for streaming, autodetecting the
// format from the first bytes.
func NewSampleReader(r io.Reader) (*SampleReader, error) {
	return NewSampleReaderBuffers(r, nil)
}

// NewSampleReaderBuffers is NewSampleReader with caller-owned decode
// scratch; pass nil to let the reader allocate its own.
func NewSampleReaderBuffers(r io.Reader, bufs *Buffers) (*SampleReader, error) {
	if bufs == nil {
		bufs = &Buffers{}
	}
	avail := inputSize(r)
	br := bufio.NewReaderSize(r, 64<<10)
	head, err := br.Peek(len(binaryMagic))
	if err == nil && string(head) == binaryMagic {
		br.Discard(len(binaryMagic))
		weight, total, levels, compressed, err := readBinaryHeader(br)
		if err != nil {
			return nil, err
		}
		sr := &SampleReader{weight: weight, format: FormatBinaryV3, bufs: bufs, total: total, avail: avail}
		sr.dec.levels = levels
		if compressed {
			// The input size bounds compressed bytes, not decoded ones, so
			// it says nothing useful about the sample count.
			sr.avail = -1
			sr.body = bufio.NewReaderSize(flate.NewReader(br), 64<<10)
		} else {
			sr.body = br
		}
		return sr, nil
	}
	// CSV v1/v2. csv.Reader does its own buffering on top of br, which
	// still holds the peeked bytes.
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = -1 // the meta row is shorter than the data rows
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("profiledata: reading header: %w", err)
	}
	sr := &SampleReader{weight: 1, format: FormatCSVv1, bufs: bufs, cr: cr, line: 2}
	if len(header) > 0 && header[0] == metaTag {
		if sr.weight, err = readMeta(header); err != nil {
			return nil, err
		}
		if header, err = cr.Read(); err != nil {
			return nil, fmt.Errorf("profiledata: reading header: %w", err)
		}
		sr.format = FormatCSVv2
		sr.line = 3
	}
	if len(header) != len(sampleHeader) {
		return nil, fmt.Errorf("profiledata: header has %d columns, want %d", len(header), len(sampleHeader))
	}
	for i, h := range sampleHeader {
		if header[i] != h {
			return nil, fmt.Errorf("profiledata: header column %d is %q, want %q", i, header[i], h)
		}
	}
	return sr, nil
}

// Weight returns the collector weight recorded in the file (1 for v1).
func (sr *SampleReader) Weight() float64 { return sr.weight }

// Format names the detected recording format: FormatCSVv1, FormatCSVv2 or
// FormatBinaryV3.
func (sr *SampleReader) Format() string { return sr.format }

// Next returns the next chunk of samples, or (nil, io.EOF) when the
// recording is exhausted. The returned slice is reused by the following
// Next call; callers that retain samples must copy them out.
func (sr *SampleReader) Next() ([]pebs.Sample, error) {
	if sr.done {
		return nil, io.EOF
	}
	if sr.cr != nil {
		return sr.nextCSV()
	}
	return sr.nextBinary()
}

// grow returns the shared sample buffer resized to n.
func (sr *SampleReader) grow(n int) []pebs.Sample {
	if cap(sr.bufs.samples) < n {
		sr.bufs.samples = make([]pebs.Sample, n)
	}
	return sr.bufs.samples[:n]
}

func (sr *SampleReader) nextBinary() ([]pebs.Sample, error) {
	count, payload, err := sr.readBlock()
	if err != nil {
		sr.stopPrefetch()
		return nil, err
	}
	out := sr.grow(count)
	if err := sr.dec.decode(payload, out, &sr.bufs.column); err != nil {
		sr.stopPrefetch()
		return nil, err
	}
	return out, nil
}

// stopPrefetch shuts down the reader's read-ahead goroutine, if any. Called
// on every terminal path (EOF or error) so an abandoned reader never leaves
// a prefetcher running; IndexedTrace.Close sweeps any that remain.
func (sr *SampleReader) stopPrefetch() {
	if sr.ra != nil {
		sr.ra.Stop()
		sr.ra = nil
	}
}

// readBlock reads the next block header and payload into the shared payload
// buffer, returning io.EOF at the zero-count terminator — or, for a
// range-limited reader, after the range's block count, with the decoded
// total verified against the index's claim.
func (sr *SampleReader) readBlock() (int, []byte, error) {
	if sr.limited && sr.blocksLeft == 0 {
		sr.done = true
		if sr.decoded != sr.total {
			return 0, nil, fmt.Errorf("profiledata: block range holds %d samples but its index claims %d", sr.decoded, sr.total)
		}
		return 0, nil, io.EOF
	}
	count, err := binary.ReadUvarint(sr.body)
	if err != nil {
		return 0, nil, fmt.Errorf("profiledata: reading block header: %w", corruptEOF(err))
	}
	if count == 0 {
		sr.done = true
		if sr.total != 0 && sr.decoded != sr.total {
			return 0, nil, fmt.Errorf("profiledata: recording holds %d samples but its header claims %d", sr.decoded, sr.total)
		}
		return 0, nil, io.EOF
	}
	if count > maxBlockSamples {
		return 0, nil, fmt.Errorf("profiledata: block claims %d samples (limit %d)", count, maxBlockSamples)
	}
	plen, err := binary.ReadUvarint(sr.body)
	if err != nil {
		return 0, nil, fmt.Errorf("profiledata: reading block header: %w", corruptEOF(err))
	}
	// A block's payload is at least minSampleEncoded and at most
	// maxSampleEncoded bytes per sample; anything outside is corrupt. The
	// lower bound also means a huge claimed count needs a proportionally
	// huge payload actually present in the file before the sample buffer
	// below is allocated, so truncated or malicious headers cannot force
	// large allocations.
	if plen < minSampleEncoded*count || plen > maxSampleEncoded*count+16 {
		return 0, nil, fmt.Errorf("profiledata: block payload of %d bytes is implausible for %d samples", plen, count)
	}
	if cap(sr.bufs.payload) < int(plen) {
		sr.bufs.payload = make([]byte, plen)
	}
	payload := sr.bufs.payload[:plen]
	if _, err := io.ReadFull(sr.body, payload); err != nil {
		return 0, nil, fmt.Errorf("profiledata: reading block payload: %w", corruptEOF(err))
	}
	if sr.sums != nil {
		i := len(sr.sums) - sr.blocksLeft
		if got := blockChecksum(payload); got != sr.sums[i] {
			return 0, nil, fmt.Errorf("profiledata: block %d of range fails its index checksum (%#x, index claims %#x): corrupt recording", i, got, sr.sums[i])
		}
	}
	sr.decoded += count
	if sr.limited {
		sr.blocksLeft--
	}
	return int(count), payload, nil
}

// appendRemaining decodes every remaining block directly onto dst. On the
// binary path this skips Next's intermediate block buffer — each block is
// decoded in place at the tail of the destination slice — which is what
// makes whole-trace loads cheap; streaming callers should keep using Next.
func (sr *SampleReader) appendRemaining(dst []pebs.Sample) ([]pebs.Sample, error) {
	if sr.cr != nil || sr.done {
		for {
			block, err := sr.Next()
			if err == io.EOF {
				return dst, nil
			}
			if err != nil {
				return dst, err
			}
			dst = append(dst, block...)
		}
	}
	// The header's count hint sizes the slice in one allocation — that is
	// the whole point of writing the total, so a multi-block trace must not
	// be clamped back to one block's worth and regrown. The hint still
	// cannot demand more memory than the input could plausibly hold: when
	// the input size is knowable it is capped at the bytes actually present
	// over the minimum encoded sample size (so a forged header over a tiny
	// file allocates almost nothing), otherwise at one block's worth — the
	// bound readBlock enforces per block anyway. A hint the blocks don't
	// live up to is rejected at the terminator.
	if hint := sr.total; hint > 0 && dst == nil {
		limit := uint64(maxBlockSamples)
		if sr.avail >= 0 {
			limit = uint64(sr.avail) / minSampleEncoded
		}
		if hint > limit {
			hint = limit
		}
		dst = make([]pebs.Sample, 0, hint)
	}
	for {
		count, payload, err := sr.readBlock()
		if err == io.EOF {
			sr.stopPrefetch()
			return dst, nil
		}
		if err != nil {
			sr.stopPrefetch()
			return dst, err
		}
		n := len(dst)
		dst = slices.Grow(dst, count)[:n+count]
		if err := sr.dec.decode(payload, dst[n:], &sr.bufs.column); err != nil {
			sr.stopPrefetch()
			return dst[:n], err
		}
	}
}

// inputSize reports the byte size of the underlying input when it is
// cheaply knowable — regular files and the in-memory readers — and -1
// otherwise. It is only an upper bound used to sanity-check allocation
// hints, so the full size (rather than the bytes left after the current
// read position) is good enough.
func inputSize(r io.Reader) int64 {
	switch v := r.(type) {
	case *os.File:
		if fi, err := v.Stat(); err == nil && fi.Mode().IsRegular() {
			return fi.Size()
		}
	case interface{ Size() int64 }: // bytes.Reader, strings.Reader, io.SectionReader
		return v.Size()
	}
	return -1
}

// corruptEOF upgrades a bare EOF inside a structure to ErrUnexpectedEOF so
// truncation is reported as corruption, not as a clean end.
func corruptEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func (sr *SampleReader) nextCSV() ([]pebs.Sample, error) {
	out := sr.grow(csvBlockSize)[:0]
	for len(out) < csvBlockSize {
		rec, err := sr.cr.Read()
		if err == io.EOF {
			sr.done = true
			if len(out) == 0 {
				return nil, io.EOF
			}
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("profiledata: line %d: %w", sr.line, err)
		}
		if len(rec) != len(sampleHeader) {
			return nil, fmt.Errorf("profiledata: line %d has %d fields, want %d", sr.line, len(rec), len(sampleHeader))
		}
		var s pebs.Sample
		if err := parseSampleRow(rec, sr.line, &s); err != nil {
			return nil, err
		}
		out = append(out, s)
		sr.line++
	}
	return out, nil
}

// parseSampleRow parses one CSV data row into s.
func parseSampleRow(rec []string, line int, s *pebs.Sample) error {
	var err error
	if s.Time, err = strconv.ParseFloat(rec[0], 64); err != nil {
		return fmt.Errorf("profiledata: line %d time: %w", line, err)
	}
	cpu, err := strconv.Atoi(rec[1])
	if err != nil {
		return fmt.Errorf("profiledata: line %d cpu: %w", line, err)
	}
	s.CPU = topology.CPUID(cpu)
	if s.Thread, err = strconv.Atoi(rec[2]); err != nil {
		return fmt.Errorf("profiledata: line %d thread: %w", line, err)
	}
	if s.Addr, err = parseAddr(rec[3]); err != nil {
		return fmt.Errorf("profiledata: line %d addr: %w", line, err)
	}
	if s.Level, err = parseLevel(rec[4]); err != nil {
		return fmt.Errorf("profiledata: line %d: %w", line, err)
	}
	if s.Latency, err = strconv.ParseFloat(rec[5], 64); err != nil {
		return fmt.Errorf("profiledata: line %d latency: %w", line, err)
	}
	if s.Write, err = strconv.ParseBool(rec[6]); err != nil {
		return fmt.Errorf("profiledata: line %d write: %w", line, err)
	}
	src, err := strconv.Atoi(rec[7])
	if err != nil {
		return fmt.Errorf("profiledata: line %d src_node: %w", line, err)
	}
	home, err := strconv.Atoi(rec[8])
	if err != nil {
		return fmt.Errorf("profiledata: line %d home_node: %w", line, err)
	}
	s.SrcNode, s.HomeNode = topology.NodeID(src), topology.NodeID(home)
	return nil
}
