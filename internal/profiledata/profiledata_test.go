package profiledata

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"drbw/internal/alloc"
	"drbw/internal/cache"
	"drbw/internal/pebs"
)

func sampleFixture() []pebs.Sample {
	return []pebs.Sample{
		{Time: 1000, CPU: 3, Thread: 1, Addr: 0x10000000, Level: cache.MEM, Latency: 612.5, Write: false, SrcNode: 1, HomeNode: 0},
		{Time: 2000, CPU: 17, Thread: 9, Addr: 0x10200040, Level: cache.L1, Latency: 4.2, Write: true, SrcNode: 2, HomeNode: 2},
		{Time: 3000, CPU: 0, Thread: 0, Addr: 0x10400080, Level: cache.LFB, Latency: 130, Write: false, SrcNode: 0, HomeNode: 3},
	}
}

func TestSampleRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleFixture()
	if err := WriteSamples(&buf, in, 3.5); err != nil {
		t.Fatal(err)
	}
	out, weight, err := ReadSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if weight != 3.5 {
		t.Errorf("weight round trip 3.5 -> %v", weight)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip %d -> %d samples", len(in), len(out))
	}
	for i := range in {
		if in[i].Addr != out[i].Addr || in[i].Level != out[i].Level ||
			in[i].CPU != out[i].CPU || in[i].SrcNode != out[i].SrcNode ||
			in[i].HomeNode != out[i].HomeNode || in[i].Write != out[i].Write {
			t.Errorf("sample %d changed: %+v -> %+v", i, in[i], out[i])
		}
		if diff := in[i].Latency - out[i].Latency; diff > 0.1 || diff < -0.1 {
			t.Errorf("sample %d latency %f -> %f", i, in[i].Latency, out[i].Latency)
		}
	}
}

func TestSampleCSVShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSamples(&buf, sampleFixture(), 1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines", len(lines))
	}
	if lines[0] != "#drbw-samples,v2,weight,1" {
		t.Errorf("meta row: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "time,cpu,thread,addr,level") {
		t.Errorf("header: %s", lines[1])
	}
	if !strings.Contains(lines[2], "0x10000000") || !strings.Contains(lines[2], "MEM") {
		t.Errorf("row: %s", lines[2])
	}
}

// Recordings from before the meta row (v1) start directly with the header
// and must still read, with weight 1.
func TestReadSamplesV1Compat(t *testing.T) {
	body := "time,cpu,thread,addr,level,latency,write,src_node,home_node\n" +
		"1000,3,1,0x10000000,MEM,612.5,false,1,0\n"
	out, weight, err := ReadSamples(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if weight != 1 {
		t.Errorf("v1 weight = %v, want 1", weight)
	}
	if len(out) != 1 || out[0].Addr != 0x10000000 {
		t.Errorf("v1 samples: %+v", out)
	}
}

// A non-positive weight never reaches disk: it would corrupt every count
// feature on reload, so WriteSamples clamps it to 1.
func TestWriteSamplesClampsWeight(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSamples(&buf, sampleFixture(), 0); err != nil {
		t.Fatal(err)
	}
	_, weight, err := ReadSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if weight != 1 {
		t.Errorf("weight 0 wrote back as %v, want 1", weight)
	}
}

func TestReadSamplesErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"wrong header": "a,b,c,d,e,f,g,h,i\n",
		"bad level":    "time,cpu,thread,addr,level,latency,write,src_node,home_node\n1,2,3,0x10,L9,5,false,0,0\n",
		"bad addr":     "time,cpu,thread,addr,level,latency,write,src_node,home_node\n1,2,3,zz,L1,5,false,0,0\n",
		"bad bool":     "time,cpu,thread,addr,level,latency,write,src_node,home_node\n1,2,3,0x10,L1,5,maybe,0,0\n",
		"short row":    "time,cpu,thread,addr,level,latency,write,src_node,home_node\n1,2,3\n",
		"short meta":   "#drbw-samples,v2\ntime,cpu,thread,addr,level,latency,write,src_node,home_node\n",
		"bad version":  "#drbw-samples,v9,weight,1\ntime,cpu,thread,addr,level,latency,write,src_node,home_node\n",
		"bad weight":   "#drbw-samples,v2,weight,zero\ntime,cpu,thread,addr,level,latency,write,src_node,home_node\n",
		"zero weight":  "#drbw-samples,v2,weight,0\ntime,cpu,thread,addr,level,latency,write,src_node,home_node\n",
		"meta only":    "#drbw-samples,v2,weight,2\n",
	}
	for name, body := range cases {
		if _, _, err := ReadSamples(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func objectFixture() []alloc.Object {
	return []alloc.Object{
		{ID: 0, Name: "block", Site: alloc.Site{Func: "main", File: "sc.cpp", Line: 1838}, Base: 0x10000000, Size: 1 << 20},
		{ID: 1, Name: "point.p", Site: alloc.Site{Func: "read", File: "sc.cpp", Line: 1120}, Base: 0x10200000, Size: 4096},
		{ID: 2, Name: "freed", Freed: true, Base: 0x10300000, Size: 4096},
	}
}

func TestObjectRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteObjects(&buf, objectFixture()); err != nil {
		t.Fatal(err)
	}
	out, err := ReadObjects(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("round trip kept %d objects, want 2 (freed skipped)", len(out))
	}
	if out[0].Name != "block" || out[0].Base != 0x10000000 || out[0].Site.Line != 1838 {
		t.Errorf("object 0 changed: %+v", out[0])
	}
}

func TestReadObjectsErrors(t *testing.T) {
	cases := map[string]string{
		"wrong header": "x,y,z,a,b,c,d\n",
		"zero size":    "id,name,func,file,line,base,size\n0,a,f,x.c,1,0x10,0\n",
		"bad base":     "id,name,func,file,line,base,size\n0,a,f,x.c,1,zz,10\n",
	}
	for name, body := range cases {
		if _, err := ReadObjects(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestTableAttribution(t *testing.T) {
	tb, err := NewTable(objectFixture()[:2])
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("table len %d", tb.Len())
	}
	id, ok := tb.Lookup(0x10000000 + 512)
	if !ok || id != 0 {
		t.Errorf("lookup inside block = %d,%v", id, ok)
	}
	if tb.Object(id).Name != "block" {
		t.Errorf("object name %q", tb.Object(id).Name)
	}
	if _, ok := tb.Lookup(0x10000000 + 1<<20); ok {
		t.Error("lookup past block end hit")
	}
	if _, ok := tb.Lookup(0x1); ok {
		t.Error("lookup below table hit")
	}
	if id, ok := tb.Lookup(0x10200000); !ok || id != 1 {
		t.Errorf("lookup point.p = %d,%v", id, ok)
	}
}

func TestTableValidation(t *testing.T) {
	overlap := []alloc.Object{
		{ID: 0, Name: "a", Base: 0x1000, Size: 0x2000},
		{ID: 1, Name: "b", Base: 0x2000, Size: 0x1000},
	}
	if _, err := NewTable(overlap); err == nil {
		t.Error("overlapping ranges accepted")
	}
	dup := []alloc.Object{
		{ID: 0, Name: "a", Base: 0x1000, Size: 0x100},
		{ID: 0, Name: "b", Base: 0x2000, Size: 0x100},
	}
	if _, err := NewTable(dup); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

// Property: any sample list round-trips byte-identically on the fields the
// analysis consumes.
func TestSampleRoundTripProperty(t *testing.T) {
	f := func(addrs []uint32, lvl uint8) bool {
		var in []pebs.Sample
		for i, a := range addrs {
			if i >= 16 {
				break
			}
			in = append(in, pebs.Sample{
				Time: float64(i * 100), CPU: 1, Thread: i,
				Addr:  uint64(a),
				Level: cache.Level(int(lvl) % 5), Latency: float64(a%1000) + 3,
				SrcNode: 0, HomeNode: 1,
			})
		}
		var buf bytes.Buffer
		if err := WriteSamples(&buf, in, 2); err != nil {
			return false
		}
		out, weight, err := ReadSamples(&buf)
		if err != nil || weight != 2 {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i].Addr != out[i].Addr || in[i].Level != out[i].Level {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
