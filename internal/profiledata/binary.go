package profiledata

// Binary columnar samples format (v3).
//
// CSV recordings (v1/v2) cost where it hurts at scale: every field is
// re-parsed through encoding/csv + strconv, and a 1M-sample trace is tens
// of megabytes of text. v3 stores the same nine sample fields as packed
// per-block columns:
//
//	header:  magic "DRBWPD3\n", version byte, flags byte,
//	         weight float64 LE, uvarint total sample count (0 when the
//	         writer did not know it), level dictionary (count, then
//	         length-prefixed level names in index order)
//	body:    blocks until a zero sample count; optionally one flate
//	         stream when the header flags bit 0 is set
//	block:   uvarint sampleCount, uvarint payloadLen, payload
//	payload: time column    tag byte (raw|delta), then either count
//	                        float64 LE or zigzag-varint deltas of the
//	                        integral cycle values (running across blocks)
//	         cpu column     zigzag varint per sample
//	         thread column  zigzag varint per sample
//	         addr column    zigzag varint delta per sample (running)
//	         level column   one dictionary index byte per sample
//	         latency column tag byte (raw|fixed ×10), then float64s or
//	                        zigzag-varint deltas of latency*10 (running)
//	         write column   ceil(count/8) bytes, LSB first
//	         src column     zigzag varint per sample
//	         home column    zigzag varint per sample
//
// The integer encodings are used only when they are exactly invertible
// (times integral, latencies on a 0.1-cycle grid — what the simulator and
// the CSV writer both produce); otherwise the column falls back to raw
// float64 bits, so any sample list round-trips bit-exactly. The level
// dictionary makes the format self-describing: indexes are resolved
// through the recorded names, not through cache.Level values.

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"drbw/internal/cache"
	"drbw/internal/pebs"
	"drbw/internal/topology"
)

// binaryMagic opens every v3 samples file. No CSV recording can collide:
// v2 starts with "#drbw-sa", v1 with "time,cpu".
const binaryMagic = "DRBWPD3\n"

// binaryVersion is the format version the writer emits and the only one
// the reader accepts.
const binaryVersion = 3

// flagCompressed marks a flate-compressed block stream.
const flagCompressed = 1 << 0

// Column encoding tags.
const (
	encRaw   = 0 // float64 bits, little endian
	encDelta = 1 // zigzag varints: integral deltas (time), fixed-point ×10 deltas (latency)
)

// DefaultBlockSize is the samples-per-block default of WriteSamplesBinary —
// large enough to amortize per-block overhead, small enough that a
// streaming reader holds only a few hundred KB per trace.
const DefaultBlockSize = 8192

// maxBlockSamples bounds the per-block sample count a reader will accept,
// so a corrupt or malicious count cannot make the decoder allocate an
// arbitrarily large block.
const maxBlockSamples = 1 << 20

// maxSampleEncoded is the worst-case encoded bytes per sample (nine
// columns, all at their widest), used to sanity-check payload lengths.
const maxSampleEncoded = 80

// minSampleEncoded is the fewest bytes one sample can occupy in a block
// payload (nine columns at their narrowest). It bounds both the payload
// plausibility check and the whole-trace allocation hint: a header cannot
// claim more samples than the bytes on hand divided by this.
const minSampleEncoded = 7

// levelNames is the dictionary written into the header, indexed by
// cache.Level. parseLevel inverts it on read.
var levelNames = []string{
	cache.L1.String(), cache.L2.String(), cache.L3.String(),
	cache.LFB.String(), cache.MEM.String(),
}

// BinaryOptions controls WriteSamplesBinary.
type BinaryOptions struct {
	// BlockSize is the samples per block; <= 0 uses DefaultBlockSize.
	BlockSize int
	// Compress flate-compresses the block stream. Roughly halves the file
	// again at a decode-speed cost; the uncompressed form is already
	// several times smaller than CSV.
	Compress bool
	// Index appends the block index footer (see index.go) after the body
	// terminator: per-block file offsets, sample counts, time ranges and
	// decoder seed state, discovered by a trailing magic. Streaming readers
	// stop at the terminator and never see it; indexed readers
	// (OpenIndexedTrace) use it to decode block ranges independently.
	// Ignored when Compress is set — a flate body has no seekable block
	// boundaries — and skipped when any block's time column defeats the
	// min/max scan (NaN times).
	Index bool
}

// WriteSamplesBinary writes samples in the binary columnar v3 format. A
// non-positive weight is written as 1, mirroring WriteSamples.
func WriteSamplesBinary(w io.Writer, samples []pebs.Sample, weight float64, opt BinaryOptions) error {
	if !(weight > 0) {
		weight = 1
	}
	blockSize := opt.BlockSize
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize > maxBlockSamples {
		blockSize = maxBlockSamples
	}

	bw := bufio.NewWriter(w)
	// Header.
	bw.WriteString(binaryMagic)
	bw.WriteByte(binaryVersion)
	flags := byte(0)
	if opt.Compress {
		flags |= flagCompressed
	}
	bw.WriteByte(flags)
	var f8 [8]byte
	binary.LittleEndian.PutUint64(f8[:], math.Float64bits(weight))
	bw.Write(f8[:])
	// Total sample count: lets the reader size its slice once instead of
	// growing through half a dozen reallocations on a large trace.
	var cnt [binary.MaxVarintLen64]byte
	ncnt := binary.PutUvarint(cnt[:], uint64(len(samples)))
	bw.Write(cnt[:ncnt])
	bw.WriteByte(byte(len(levelNames)))
	for _, name := range levelNames {
		bw.WriteByte(byte(len(name)))
		bw.WriteString(name)
	}

	// Body, optionally behind flate.
	body := io.Writer(bw)
	var fw *flate.Writer
	if opt.Compress {
		var err error
		if fw, err = flate.NewWriter(bw, flate.BestSpeed); err != nil {
			return fmt.Errorf("profiledata: %w", err)
		}
		body = fw
	}

	// Block offsets for the index are computed arithmetically — the header
	// length plus every block written so far — which only works for the
	// uncompressed body the index is defined on.
	writeIndex := opt.Index && !opt.Compress
	off := int64(len(binaryMagic)) + 2 + 8 + int64(ncnt) + 1
	for _, name := range levelNames {
		off += 1 + int64(len(name))
	}
	var entries []IndexEntry

	var enc blockEncoder
	var head [2 * binary.MaxVarintLen64]byte
	for start := 0; start < len(samples); start += blockSize {
		end := start + blockSize
		if end > len(samples) {
			end = len(samples)
		}
		block := samples[start:end]
		var e IndexEntry
		if writeIndex {
			// Decoder seed state is the encoder's running deltas as they
			// stand *before* this block.
			e = IndexEntry{
				Offset: off, Count: len(block),
				PrevTime: enc.prevTime, PrevAddr: enc.prevAddr, PrevLat: enc.prevLat,
				MinTime: block[0].Time, MaxTime: block[0].Time,
			}
			for i := range block {
				if math.IsNaN(block[i].Time) {
					// An unordered time defeats the range; without a
					// trustworthy range the index is not worth writing.
					writeIndex = false
					break
				}
				if block[i].Time < e.MinTime {
					e.MinTime = block[i].Time
				}
				if block[i].Time > e.MaxTime {
					e.MaxTime = block[i].Time
				}
			}
		}
		payload, err := enc.encode(block)
		if err != nil {
			return err
		}
		if writeIndex {
			// The entry checksums the payload bytes as written, so range
			// reads can verify blocks and FileFingerprint can identify the
			// recording's content from the index alone.
			e.Sum = blockChecksum(payload)
			entries = append(entries, e)
		}
		n := binary.PutUvarint(head[:], uint64(len(block)))
		n += binary.PutUvarint(head[n:], uint64(len(payload)))
		if _, err := body.Write(head[:n]); err != nil {
			return fmt.Errorf("profiledata: %w", err)
		}
		if _, err := body.Write(payload); err != nil {
			return fmt.Errorf("profiledata: %w", err)
		}
		off += int64(n) + int64(len(payload))
	}
	// Zero-count terminator.
	n := binary.PutUvarint(head[:], 0)
	if _, err := body.Write(head[:n]); err != nil {
		return fmt.Errorf("profiledata: %w", err)
	}
	if fw != nil {
		if err := fw.Close(); err != nil {
			return fmt.Errorf("profiledata: %w", err)
		}
	}
	if writeIndex {
		if err := writeBlockIndex(bw, entries); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("profiledata: %w", err)
	}
	return nil
}

// blockEncoder carries the running deltas and the scratch buffer across the
// blocks of one file.
type blockEncoder struct {
	prevTime int64  // last encoded integral time
	prevAddr uint64 // last encoded address
	prevLat  int64  // last encoded latency, fixed-point ×10
	buf      []byte
}

// zigzag maps signed to unsigned for varint encoding.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// integralTime reports whether t encodes exactly as an int64 cycle count.
func integralTime(t float64) (int64, bool) {
	if t != math.Trunc(t) || t < -(1<<62) || t > 1<<62 {
		return 0, false
	}
	v := int64(t)
	return v, float64(v) == t
}

// fixedLatency reports whether l encodes exactly on the 0.1-cycle grid.
func fixedLatency(l float64) (int64, bool) {
	f := math.Round(l * 10)
	if f < -(1<<62) || f > 1<<62 || math.IsNaN(f) {
		return 0, false
	}
	v := int64(f)
	return v, float64(v)/10 == l
}

// encode serializes one block's columns into the reused scratch buffer.
func (e *blockEncoder) encode(block []pebs.Sample) ([]byte, error) {
	buf := e.buf[:0]
	var v8 [binary.MaxVarintLen64]byte
	putUvarint := func(u uint64) {
		n := binary.PutUvarint(v8[:], u)
		buf = append(buf, v8[:n]...)
	}
	putFloat := func(f float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		buf = append(buf, b[:]...)
	}

	// time column: delta encoding only if every time in the block is
	// exactly integral.
	timesIntegral := true
	for i := range block {
		if _, ok := integralTime(block[i].Time); !ok {
			timesIntegral = false
			break
		}
	}
	if timesIntegral {
		buf = append(buf, encDelta)
		prev := e.prevTime
		for i := range block {
			v, _ := integralTime(block[i].Time)
			putUvarint(zigzag(v - prev))
			prev = v
		}
		e.prevTime = prev
	} else {
		buf = append(buf, encRaw)
		for i := range block {
			putFloat(block[i].Time)
		}
	}

	for i := range block {
		putUvarint(zigzag(int64(block[i].CPU)))
	}
	for i := range block {
		putUvarint(zigzag(int64(block[i].Thread)))
	}
	prevAddr := e.prevAddr
	for i := range block {
		putUvarint(zigzag(int64(block[i].Addr - prevAddr)))
		prevAddr = block[i].Addr
	}
	e.prevAddr = prevAddr
	for i := range block {
		lvl := int(block[i].Level)
		if lvl < 0 || lvl >= len(levelNames) {
			return nil, fmt.Errorf("profiledata: sample has unknown memory level %d", lvl)
		}
		buf = append(buf, byte(lvl))
	}

	// latency column: fixed-point ×10 only if every latency inverts exactly.
	latFixed := true
	for i := range block {
		if _, ok := fixedLatency(block[i].Latency); !ok {
			latFixed = false
			break
		}
	}
	if latFixed {
		buf = append(buf, encDelta)
		prev := e.prevLat
		for i := range block {
			v, _ := fixedLatency(block[i].Latency)
			putUvarint(zigzag(v - prev))
			prev = v
		}
		e.prevLat = prev
	} else {
		buf = append(buf, encRaw)
		for i := range block {
			putFloat(block[i].Latency)
		}
	}

	// write column, bit-packed LSB first.
	var bits byte
	for i := range block {
		if block[i].Write {
			bits |= 1 << (uint(i) & 7)
		}
		if i&7 == 7 {
			buf = append(buf, bits)
			bits = 0
		}
	}
	if len(block)&7 != 0 {
		buf = append(buf, bits)
	}

	for i := range block {
		putUvarint(zigzag(int64(block[i].SrcNode)))
	}
	for i := range block {
		putUvarint(zigzag(int64(block[i].HomeNode)))
	}

	e.buf = buf
	return buf, nil
}

// blockDecoder mirrors blockEncoder on the read side.
type blockDecoder struct {
	prevTime int64
	prevAddr uint64
	prevLat  int64
	levels   []cache.Level // dictionary index -> level
}

// payloadReader walks one block payload with bounds checking.
type payloadReader struct {
	buf []byte
	pos int
}

var errCorrupt = fmt.Errorf("profiledata: corrupt binary block")

func (p *payloadReader) uvarint() (uint64, error) {
	// Single-byte fast path: most columns (nodes, levels, cpu, small
	// deltas) encode in one byte, and this branch keeps the common case
	// free of the multi-byte loop.
	if pos := p.pos; pos < len(p.buf) && p.buf[pos] < 0x80 {
		p.pos = pos + 1
		return uint64(p.buf[pos]), nil
	}
	v, n := binary.Uvarint(p.buf[p.pos:])
	if n <= 0 {
		return 0, errCorrupt
	}
	p.pos += n
	return v, nil
}

// uvarints decodes len(dst) varints in one batched loop. The buffer and
// position live in locals for the whole column, and while a full worst-case
// varint fits in the remaining bytes the decode runs entirely inline — one
// load and compare per byte, no per-value function call or slice
// re-derivation. The tail (and truncated input) goes through binary.Uvarint,
// and the inline loop reports overflow for exactly the encodings
// binary.Uvarint rejects, so batched and scalar decodes accept the same
// byte strings.
func (p *payloadReader) uvarints(dst []uint64) error {
	buf, pos := p.buf, p.pos
	i := 0
	for i < len(dst) && pos+binary.MaxVarintLen64 <= len(buf) {
		b := buf[pos]
		pos++
		if b < 0x80 {
			dst[i] = uint64(b)
			i++
			continue
		}
		v := uint64(b & 0x7f)
		s := uint(7)
		for {
			b = buf[pos]
			pos++
			if b < 0x80 {
				if s == 63 && b > 1 {
					return errCorrupt // overflows uint64, as binary.Uvarint reports
				}
				v |= uint64(b) << s
				break
			}
			v |= uint64(b&0x7f) << s
			s += 7
			if s >= 64 {
				return errCorrupt // more than MaxVarintLen64 bytes
			}
		}
		dst[i] = v
		i++
	}
	for ; i < len(dst); i++ {
		if pos < len(buf) && buf[pos] < 0x80 {
			dst[i] = uint64(buf[pos])
			pos++
			continue
		}
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return errCorrupt
		}
		dst[i] = v
		pos += n
	}
	p.pos = pos
	return nil
}

// fixed64s reads len(dst) fixed-width little-endian uint64s (a raw float
// column) with one bounds check for the whole run.
func (p *payloadReader) fixed64s(dst []uint64) error {
	n := len(dst)
	if p.pos+8*n > len(p.buf) {
		return errCorrupt
	}
	buf := p.buf[p.pos:]
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	p.pos += 8 * n
	return nil
}

// bytes returns the next n payload bytes without copying.
func (p *payloadReader) bytes(n int) ([]byte, error) {
	if p.pos+n > len(p.buf) {
		return nil, errCorrupt
	}
	b := p.buf[p.pos : p.pos+n]
	p.pos += n
	return b, nil
}

func (p *payloadReader) byte() (byte, error) {
	if p.pos >= len(p.buf) {
		return 0, errCorrupt
	}
	b := p.buf[p.pos]
	p.pos++
	return b, nil
}

func (p *payloadReader) float() (float64, error) {
	if p.pos+8 > len(p.buf) {
		return 0, errCorrupt
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(p.buf[p.pos:]))
	p.pos += 8
	return v, nil
}

// decode fills out (already sized to the block's sample count) from one
// payload. Each column is decoded as a whole run — varints batched into the
// caller's reusable scratch, then converted in a second tight loop — so the
// per-sample cost is a couple of cache-resident array passes instead of
// nine bounds-checked method calls.
func (d *blockDecoder) decode(payload []byte, out []pebs.Sample, scratch *[]uint64) error {
	n := len(out)
	if cap(*scratch) < n {
		*scratch = make([]uint64, n)
	}
	col := (*scratch)[:n]
	out = out[:len(col)] // teach the bounds prover: every out[i] below is in range
	p := payloadReader{buf: payload}

	tag, err := p.byte()
	if err != nil {
		return err
	}
	switch tag {
	case encDelta:
		if err := p.uvarints(col); err != nil {
			return err
		}
		prev := d.prevTime
		for i, u := range col {
			prev += unzigzag(u)
			out[i].Time = float64(prev)
		}
		d.prevTime = prev
	case encRaw:
		if err := p.fixed64s(col); err != nil {
			return err
		}
		for i, u := range col {
			out[i].Time = math.Float64frombits(u)
		}
	default:
		return errCorrupt
	}

	if err := p.uvarints(col); err != nil {
		return err
	}
	for i, u := range col {
		out[i].CPU = topology.CPUID(unzigzag(u))
	}
	if err := p.uvarints(col); err != nil {
		return err
	}
	for i, u := range col {
		out[i].Thread = int(unzigzag(u))
	}
	if err := p.uvarints(col); err != nil {
		return err
	}
	prevAddr := d.prevAddr
	for i, u := range col {
		prevAddr += uint64(unzigzag(u))
		out[i].Addr = prevAddr
	}
	d.prevAddr = prevAddr

	lvls, err := p.bytes(n)
	if err != nil {
		return err
	}
	nlv := len(d.levels)
	for i, b := range lvls {
		if int(b) >= nlv {
			return fmt.Errorf("profiledata: level index %d outside the %d-entry dictionary", b, nlv)
		}
		out[i].Level = d.levels[b]
	}

	if tag, err = p.byte(); err != nil {
		return err
	}
	switch tag {
	case encDelta:
		if err := p.uvarints(col); err != nil {
			return err
		}
		prev := d.prevLat
		for i, u := range col {
			prev += unzigzag(u)
			out[i].Latency = float64(prev) / 10
		}
		d.prevLat = prev
	case encRaw:
		if err := p.fixed64s(col); err != nil {
			return err
		}
		for i, u := range col {
			out[i].Latency = math.Float64frombits(u)
		}
	default:
		return errCorrupt
	}

	bits, err := p.bytes((n + 7) / 8)
	if err != nil {
		return err
	}
	for i := range out {
		out[i].Write = bits[i>>3]&(1<<(uint(i)&7)) != 0
	}

	if err := p.uvarints(col); err != nil {
		return err
	}
	for i, u := range col {
		out[i].SrcNode = topology.NodeID(unzigzag(u))
	}
	if err := p.uvarints(col); err != nil {
		return err
	}
	for i, u := range col {
		out[i].HomeNode = topology.NodeID(unzigzag(u))
	}
	if p.pos != len(p.buf) {
		return fmt.Errorf("profiledata: %d trailing bytes in binary block", len(p.buf)-p.pos)
	}
	return nil
}

// readBinaryHeader parses everything after the magic (which the caller has
// already consumed) and returns the weight, the total sample count written
// by the encoder (0 when unknown), the level dictionary, and whether the
// body is flate-compressed.
func readBinaryHeader(r *bufio.Reader) (weight float64, total uint64, levels []cache.Level, compressed bool, err error) {
	version, err := r.ReadByte()
	if err != nil {
		return 0, 0, nil, false, fmt.Errorf("profiledata: reading binary header: %w", err)
	}
	if version != binaryVersion {
		return 0, 0, nil, false, fmt.Errorf("profiledata: unsupported binary samples version %d (this reader handles %d)", version, binaryVersion)
	}
	flags, err := r.ReadByte()
	if err != nil {
		return 0, 0, nil, false, fmt.Errorf("profiledata: reading binary header: %w", err)
	}
	if flags&^flagCompressed != 0 {
		return 0, 0, nil, false, fmt.Errorf("profiledata: unknown binary header flags %#x", flags)
	}
	var f8 [8]byte
	if _, err := io.ReadFull(r, f8[:]); err != nil {
		return 0, 0, nil, false, fmt.Errorf("profiledata: reading binary header: %w", err)
	}
	weight = math.Float64frombits(binary.LittleEndian.Uint64(f8[:]))
	if !(weight > 0) || math.IsInf(weight, 0) {
		return 0, 0, nil, false, fmt.Errorf("profiledata: binary header weight %v is not positive and finite", weight)
	}
	if total, err = binary.ReadUvarint(r); err != nil {
		return 0, 0, nil, false, fmt.Errorf("profiledata: reading binary header: %w", corruptEOF(err))
	}
	nlevels, err := r.ReadByte()
	if err != nil {
		return 0, 0, nil, false, fmt.Errorf("profiledata: reading binary header: %w", err)
	}
	if nlevels == 0 {
		return 0, 0, nil, false, fmt.Errorf("profiledata: binary header has an empty level dictionary")
	}
	var name [255]byte
	for i := 0; i < int(nlevels); i++ {
		n, err := r.ReadByte()
		if err != nil {
			return 0, 0, nil, false, fmt.Errorf("profiledata: reading level dictionary: %w", err)
		}
		if _, err := io.ReadFull(r, name[:n]); err != nil {
			return 0, 0, nil, false, fmt.Errorf("profiledata: reading level dictionary: %w", err)
		}
		lvl, err := parseLevel(string(name[:n]))
		if err != nil {
			return 0, 0, nil, false, fmt.Errorf("profiledata: level dictionary: %w", err)
		}
		levels = append(levels, lvl)
	}
	return weight, total, levels, flags&flagCompressed != 0, nil
}
