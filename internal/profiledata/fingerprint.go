package profiledata

// Content fingerprints for recordings.
//
// The result cache keys cached analyses by what a recording *contains*, not
// where it lives or when it was written. For an indexed recording with a
// DRBWIDX2 footer the content is already summarized: the header fields fix
// the weight, sample count and level dictionary, and every block's payload
// bytes are pinned by its index checksum. Hashing that summary identifies
// the recording in O(index bytes) — a few hundred bytes of I/O for a
// gigabyte trace — instead of rehashing the whole file. Everything else
// (CSV, compressed, unindexed, pre-checksum DRBWIDX1 files, objects tables)
// falls back to a streaming SHA-256 of the raw bytes.
//
// The two forms hash different material, so they carry distinct domain
// prefixes: the same file always fingerprints the same way through the same
// path, and the index form can never collide with the full form by
// construction.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"math"
	"os"
)

// Domain prefixes for the two fingerprint forms.
const (
	fingerprintIndexSchema = "drbw.tracefp.index/1\n"
	fingerprintFullSchema  = "drbw.tracefp.full/1\n"
)

// Fingerprint returns a stable hex identity of the recording's content,
// derived from the header and the per-block index checksums. It is only
// available for checksummed (DRBWIDX2) indexes: ok is false otherwise and
// the caller should hash the file in full.
func (it *IndexedTrace) Fingerprint() (fp string, ok bool) {
	if !it.idx.HasSums {
		return "", false
	}
	h := sha256.New()
	io.WriteString(h, fingerprintIndexSchema)
	writeU64(h, math.Float64bits(it.weight))
	writeU64(h, it.total)
	writeU64(h, uint64(len(it.levels)))
	for _, lvl := range it.levels {
		io.WriteString(h, lvl.String())
		io.WriteString(h, "\n")
	}
	writeU64(h, uint64(len(it.idx.Entries)))
	for i := range it.idx.Entries {
		e := &it.idx.Entries[i]
		writeU64(h, uint64(e.Count))
		writeU64(h, e.Sum)
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

func writeU64(h hash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}

// FileFingerprint returns a stable hex identity of the file's content: the
// O(index bytes) index fingerprint when the file is an indexed recording
// with block checksums, a streaming SHA-256 of the raw bytes otherwise
// (CSV, compressed, unindexed binary, objects tables, foreign files).
func FileFingerprint(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("profiledata: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return "", fmt.Errorf("profiledata: %w", err)
	}
	if fi.Mode().IsRegular() {
		// NewIndexedTrace reads via ReadAt, so the streaming fallback below
		// still starts from offset zero when it declines.
		if it, err := NewIndexedTrace(f, fi.Size()); err == nil {
			if fp, ok := it.Fingerprint(); ok {
				return fp, nil
			}
		}
	}
	h := sha256.New()
	io.WriteString(h, fingerprintFullSchema)
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("profiledata: fingerprinting %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
