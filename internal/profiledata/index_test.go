package profiledata

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"drbw/internal/pebs"
)

// TestIndexRoundTrip: every block range of an indexed recording decodes to
// exactly the corresponding slice of a front-to-back read — single blocks,
// arbitrary contiguous ranges, and the whole file.
func TestIndexRoundTrip(t *testing.T) {
	for _, n := range []int{1, 3, 100, 8192, 20000} {
		for _, blockSize := range []int{0, 1, 7, 4096} {
			samples := testTrace(n, int64(n)+int64(blockSize))
			var buf bytes.Buffer
			if err := WriteSamplesBinary(&buf, samples, 2.5, BinaryOptions{BlockSize: blockSize, Index: true}); err != nil {
				t.Fatalf("n=%d block=%d: %v", n, blockSize, err)
			}
			data := buf.Bytes()

			// The footer is invisible to the streaming reader.
			got, weight, err := ReadSamples(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("n=%d block=%d: streaming read of indexed file: %v", n, blockSize, err)
			}
			if weight != 2.5 || !reflect.DeepEqual(got, samples) {
				t.Fatalf("n=%d block=%d: streaming read differs", n, blockSize)
			}

			it, err := NewIndexedTrace(bytes.NewReader(data), int64(len(data)))
			if err != nil {
				t.Fatalf("n=%d block=%d: NewIndexedTrace: %v", n, blockSize, err)
			}
			if it.Weight() != 2.5 || it.TotalSamples() != n {
				t.Fatalf("n=%d block=%d: weight %v total %d", n, blockSize, it.Weight(), it.TotalSamples())
			}
			bs := blockSize
			if bs <= 0 {
				bs = DefaultBlockSize
			}
			wantBlocks := (n + bs - 1) / bs
			if it.Blocks() != wantBlocks {
				t.Fatalf("n=%d block=%d: %d index entries, want %d", n, blockSize, it.Blocks(), wantBlocks)
			}

			// Entry metadata matches the samples it describes.
			pos := 0
			for b := 0; b < it.Blocks(); b++ {
				e := it.Entry(b)
				end := pos + e.Count
				if end > n {
					t.Fatalf("n=%d block=%d: entry %d overruns the trace", n, blockSize, b)
				}
				minT, maxT := samples[pos].Time, samples[pos].Time
				for _, s := range samples[pos:end] {
					minT, maxT = math.Min(minT, s.Time), math.Max(maxT, s.Time)
				}
				if e.MinTime != minT || e.MaxTime != maxT {
					t.Fatalf("n=%d block=%d: entry %d time range [%v,%v], want [%v,%v]", n, blockSize, b, e.MinTime, e.MaxTime, minT, maxT)
				}
				pos = end
			}
			if pos != n {
				t.Fatalf("n=%d block=%d: index covers %d samples, want %d", n, blockSize, pos, n)
			}

			// Every single-block range decodes to its exact slice, despite the
			// cross-block running deltas.
			pos = 0
			for b := 0; b < it.Blocks(); b++ {
				rr, err := it.RangeReader(b, b+1, nil)
				if err != nil {
					t.Fatalf("n=%d block=%d: RangeReader(%d): %v", n, blockSize, b, err)
				}
				part, err := rr.appendRemaining(nil)
				if err != nil {
					t.Fatalf("n=%d block=%d: range [%d,%d): %v", n, blockSize, b, b+1, err)
				}
				if !reflect.DeepEqual(part, samples[pos:pos+it.Entry(b).Count]) {
					t.Fatalf("n=%d block=%d: block %d decodes differently from the serial read", n, blockSize, b)
				}
				pos += it.Entry(b).Count
			}

			// Arbitrary contiguous multi-block ranges, including the full one.
			if nb := it.Blocks(); nb > 1 {
				for _, r := range [][2]int{{0, nb}, {1, nb}, {0, nb - 1}, {nb / 2, nb/2 + 1}, {nb / 3, 2 * nb / 3}} {
					if r[0] >= r[1] {
						continue
					}
					lo := 0
					for b := 0; b < r[0]; b++ {
						lo += it.Entry(b).Count
					}
					hi := lo
					for b := r[0]; b < r[1]; b++ {
						hi += it.Entry(b).Count
					}
					rr, err := it.RangeReader(r[0], r[1], nil)
					if err != nil {
						t.Fatalf("n=%d block=%d: RangeReader%v: %v", n, blockSize, r, err)
					}
					part, err := rr.appendRemaining(nil)
					if err != nil {
						t.Fatalf("n=%d block=%d: range %v: %v", n, blockSize, r, err)
					}
					if !reflect.DeepEqual(part, samples[lo:hi]) {
						t.Fatalf("n=%d block=%d: range %v decodes differently from the serial read", n, blockSize, r)
					}
				}
			}
		}
	}
}

// TestOpenIndexedTrace: the path-based opener works end to end, and invalid
// ranges are rejected.
func TestOpenIndexedTrace(t *testing.T) {
	samples := testTrace(1000, 5)
	path := filepath.Join(t.TempDir(), "samples.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSamplesBinary(f, samples, 4, BinaryOptions{BlockSize: 128, Index: true}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	it, err := OpenIndexedTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	rr, err := it.RangeReader(0, it.Blocks(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rr.appendRemaining(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, samples) {
		t.Fatal("full range decode differs from the written samples")
	}
	for _, r := range [][2]int{{-1, 1}, {0, it.Blocks() + 1}, {2, 2}, {3, 1}} {
		if _, err := it.RangeReader(r[0], r[1], nil); err == nil {
			t.Errorf("range %v accepted", r)
		}
	}
}

// TestIndexAbsent: everything that legitimately has no footer reports
// ErrNoIndex — unindexed binary, compressed (even when Index was requested),
// CSV, and NaN-time recordings where the writer cannot vouch for ranges.
func TestIndexAbsent(t *testing.T) {
	samples := testTrace(500, 9)
	cases := map[string]func(*bytes.Buffer) error{
		"unindexed": func(b *bytes.Buffer) error {
			return WriteSamplesBinary(b, samples, 1, BinaryOptions{BlockSize: 64})
		},
		"compressed": func(b *bytes.Buffer) error {
			return WriteSamplesBinary(b, samples, 1, BinaryOptions{BlockSize: 64, Compress: true, Index: true})
		},
		"csv": func(b *bytes.Buffer) error {
			return WriteSamples(b, samples, 1)
		},
		"nan-times": func(b *bytes.Buffer) error {
			bad := append([]pebs.Sample(nil), samples...)
			bad[100].Time = math.NaN()
			return WriteSamplesBinary(b, bad, 1, BinaryOptions{BlockSize: 64, Index: true})
		},
	}
	for name, write := range cases {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := NewIndexedTrace(bytes.NewReader(buf.Bytes()), int64(buf.Len())); !errors.Is(err, ErrNoIndex) {
			t.Errorf("%s: got %v, want ErrNoIndex", name, err)
		}
		// And the recording itself still reads (NaN-time binary included).
		if _, _, err := ReadSamples(bytes.NewReader(buf.Bytes())); err != nil {
			t.Errorf("%s: streaming read: %v", name, err)
		}
	}
}

// TestIndexTruncatedFooter: cutting bytes off the end must never panic; the
// indexed open fails cleanly, and as long as the body survived, the
// streaming reader is untouched.
func TestIndexTruncatedFooter(t *testing.T) {
	samples := testTrace(300, 13)
	var buf bytes.Buffer
	if err := WriteSamplesBinary(&buf, samples, 1.5, BinaryOptions{BlockSize: 32, Index: true}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	var plain bytes.Buffer
	if err := WriteSamplesBinary(&plain, samples, 1.5, BinaryOptions{BlockSize: 32}); err != nil {
		t.Fatal(err)
	}
	footerLen := len(full) - plain.Len()
	if footerLen <= indexTailLen {
		t.Fatalf("footer is only %d bytes", footerLen)
	}
	for cut := 1; cut <= footerLen+8 && cut < len(full); cut++ {
		data := full[:len(full)-cut]
		if _, err := NewIndexedTrace(bytes.NewReader(data), int64(len(data))); err == nil {
			t.Fatalf("cut=%d: truncated footer accepted", cut)
		}
		if cut <= footerLen {
			// Body and terminator intact: streaming read still works.
			got, _, err := ReadSamples(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("cut=%d: streaming read: %v", cut, err)
			}
			if !reflect.DeepEqual(got, samples) {
				t.Fatalf("cut=%d: streaming read differs", cut)
			}
		}
	}
}

// TestIndexCorruptFooter: targeted footer forgeries are all rejected by
// validation instead of driving the range readers off the rails.
func TestIndexCorruptFooter(t *testing.T) {
	samples := testTrace(400, 17)
	var buf bytes.Buffer
	if err := WriteSamplesBinary(&buf, samples, 1, BinaryOptions{BlockSize: 32, Index: true}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	open := func(data []byte) error {
		_, err := NewIndexedTrace(bytes.NewReader(data), int64(len(data)))
		return err
	}

	// Payload length pointing outside the file.
	data := append([]byte(nil), full...)
	binary.LittleEndian.PutUint64(data[len(data)-indexTailLen:], uint64(len(data)))
	if open(data) == nil {
		t.Error("oversized payload length accepted")
	}

	// Entry count larger than the payload can hold.
	data = append([]byte(nil), full...)
	plen := binary.LittleEndian.Uint64(data[len(data)-indexTailLen:])
	payloadStart := len(data) - indexTailLen - int(plen)
	data[payloadStart] = 0xff
	data[payloadStart+1] = 0xff
	data[payloadStart+2] = 0x7f
	if open(data) == nil {
		t.Error("inflated entry count accepted")
	}

	// A zeroed payload region (offsets collapse to the header).
	data = append([]byte(nil), full...)
	for i := payloadStart; i < len(data)-indexTailLen; i++ {
		data[i] = 0
	}
	if open(data) == nil {
		t.Error("zeroed index payload accepted")
	}

	// Sum of counts disagreeing with the header total: rewrite a genuine
	// index whose first entry claims one sample too many.
	idx, err := ReadBlockIndex(bytes.NewReader(full), int64(len(full)))
	if err != nil {
		t.Fatal(err)
	}
	forged := append([]IndexEntry(nil), idx.Entries...)
	forged[0].Count++
	data = append([]byte(nil), full[:idx.DataEnd+1]...)
	rew := bytes.NewBuffer(data)
	bw := bufio.NewWriter(rew)
	if err := writeBlockIndex(bw, forged); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := open(rew.Bytes()); err == nil {
		t.Error("count/total mismatch accepted")
	} else if errors.Is(err, ErrNoIndex) {
		t.Error("count/total mismatch reported as ErrNoIndex")
	}
}

// TestAppendRemainingHintSizesWholeTrace is the regression test for the
// allocation hint clamp: a trace bigger than one block's worth of samples
// must still land in a single allocation when the input size vouches for
// the header's total. Pre-fix the hint was clamped to maxBlockSamples and
// the slice regrew through doubling.
func TestAppendRemainingHintSizesWholeTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a >1M-sample trace")
	}
	n := maxBlockSamples + 3
	samples := testTrace(n, 23)
	var buf bytes.Buffer
	if err := WriteSamplesBinary(&buf, samples, 1, BinaryOptions{}); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadSamples(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("decoded %d samples, want %d", len(got), n)
	}
	if cap(got) != n {
		t.Errorf("decoded slice capacity %d, want exactly %d (single hint-sized allocation)", cap(got), n)
	}
}

// TestAppendRemainingHintBoundsForgedHeader: a header claiming an enormous
// total over a tiny input must not allocate for the claim — the hint is
// bounded by the bytes actually present.
func TestAppendRemainingHintBoundsForgedHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSamplesBinary(&buf, testTrace(4, 1), 1, BinaryOptions{}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Forge the uvarint total (bytes 18..) to claim 2^40 samples. The
	// original total of 4 is a single byte; splice in a 6-byte varint.
	var forgedTotal [8]byte
	nn := binary.PutUvarint(forgedTotal[:], 1<<40)
	forged := append([]byte(nil), data[:18]...)
	forged = append(forged, forgedTotal[:nn]...)
	forged = append(forged, data[19:]...)

	sr, err := NewSampleReader(bytes.NewReader(forged))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sr.appendRemaining(nil)
	if err == nil {
		t.Fatal("forged total accepted")
	}
	if cap(out) > len(forged) {
		t.Errorf("forged header allocated capacity %d from a %d-byte input", cap(out), len(forged))
	}
}
