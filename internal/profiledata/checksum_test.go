package profiledata

// Tests for the DRBWIDX2 checksummed footer and the content fingerprints
// built on it: the v1 form must keep parsing (and reading it must behave as
// if no checksums exist), the v2 sums must pin the payload bytes exactly,
// and corruption must surface as a checksum error on the damaged block only.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// rewriteFooterV1 replaces a recording's DRBWIDX2 footer with the legacy
// DRBWIDX1 form carrying the same entries.
func rewriteFooterV1(t *testing.T, data []byte) []byte {
	t.Helper()
	idx, err := ReadBlockIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	out.Write(data[:idx.DataEnd+1])
	bw := bufio.NewWriter(&out)
	if err := writeBlockIndexVersioned(bw, idx.Entries, false); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// TestFooterV1Compat: a legacy DRBWIDX1 footer still parses — without
// checksums — and everything built on checksums degrades exactly as
// documented: no index fingerprint, no range verification, and
// FileFingerprint falls back to the full-content hash.
func TestFooterV1Compat(t *testing.T) {
	samples := testTrace(500, 31)
	var buf bytes.Buffer
	if err := WriteSamplesBinary(&buf, samples, 2, BinaryOptions{BlockSize: 64, Index: true}); err != nil {
		t.Fatal(err)
	}
	v2 := buf.Bytes()
	v1 := rewriteFooterV1(t, v2)

	idx2, err := ReadBlockIndex(bytes.NewReader(v2), int64(len(v2)))
	if err != nil {
		t.Fatal(err)
	}
	idx1, err := ReadBlockIndex(bytes.NewReader(v1), int64(len(v1)))
	if err != nil {
		t.Fatalf("v1 footer no longer parses: %v", err)
	}
	if !idx2.HasSums || idx1.HasSums {
		t.Fatalf("HasSums: v2=%v v1=%v, want true/false", idx2.HasSums, idx1.HasSums)
	}
	stripped := append([]IndexEntry(nil), idx2.Entries...)
	for i := range stripped {
		stripped[i].Sum = 0
	}
	if !reflect.DeepEqual(idx1.Entries, stripped) {
		t.Fatal("v1 entries differ from v2 entries beyond the checksum field")
	}

	// The v1 recording still range-reads in full (just unverified) ...
	it, err := NewIndexedTrace(bytes.NewReader(v1), int64(len(v1)))
	if err != nil {
		t.Fatal(err)
	}
	if it.HasChecksums() {
		t.Fatal("v1 trace claims checksums")
	}
	if _, ok := it.Fingerprint(); ok {
		t.Fatal("v1 trace produced an index fingerprint")
	}
	rr, err := it.RangeReader(0, it.Blocks(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rr.appendRemaining(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, samples) {
		t.Fatal("v1 range read differs from the written samples")
	}
	// ... and the streaming reader never cared about either footer.
	for name, data := range map[string][]byte{"v1": v1, "v2": v2} {
		dec, w, err := ReadSamples(bytes.NewReader(data))
		if err != nil || w != 2 || !reflect.DeepEqual(dec, samples) {
			t.Fatalf("%s: streaming read differs (err %v)", name, err)
		}
	}

	// FileFingerprint: index form for v2, full-hash fallback for v1.
	dir := t.TempDir()
	p2, p1 := filepath.Join(dir, "v2.bin"), filepath.Join(dir, "v1.bin")
	if err := os.WriteFile(p2, v2, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p1, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	fp2, err := FileFingerprint(p2)
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := FileFingerprint(p1)
	if err != nil {
		t.Fatal(err)
	}
	if fp1 == fp2 {
		t.Fatal("full-hash and index fingerprints collided")
	}
	it2, err := OpenIndexedTrace(p2)
	if err != nil {
		t.Fatal(err)
	}
	defer it2.Close()
	if fp, ok := it2.Fingerprint(); !ok || fp != fp2 {
		t.Fatalf("FileFingerprint(%s) = %s, want the index fingerprint %s", p2, fp2, fp)
	}
}

// TestFooterV2Sums: the written checksums are exactly the CRC-64 of each
// block's payload bytes as they sit in the file.
func TestFooterV2Sums(t *testing.T) {
	samples := testTrace(300, 37)
	var buf bytes.Buffer
	if err := WriteSamplesBinary(&buf, samples, 1, BinaryOptions{BlockSize: 32, Index: true}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	idx, err := ReadBlockIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range idx.Entries {
		p := data[e.Offset:]
		_, n1 := binary.Uvarint(p)
		plen, n2 := binary.Uvarint(p[n1:])
		payload := p[n1+n2 : n1+n2+int(plen)]
		if got := blockChecksum(payload); got != e.Sum {
			t.Fatalf("entry %d: recomputed checksum %#x, footer claims %#x", i, got, e.Sum)
		}
	}
}

// TestBlockChecksumDetectsCorruption: flipping one payload byte makes the
// damaged block's range read fail with a checksum error while every other
// block still reads cleanly.
func TestBlockChecksumDetectsCorruption(t *testing.T) {
	samples := testTrace(400, 41)
	var buf bytes.Buffer
	if err := WriteSamplesBinary(&buf, samples, 1, BinaryOptions{BlockSize: 64, Index: true}); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	idx, err := ReadBlockIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Entries) < 3 {
		t.Fatalf("want >= 3 blocks, got %d", len(idx.Entries))
	}
	victim := 1
	e := idx.Entries[victim]
	_, n1 := binary.Uvarint(data[e.Offset:])
	plen, n2 := binary.Uvarint(data[e.Offset+int64(n1):])
	data[e.Offset+int64(n1+n2)+int64(plen)/2] ^= 0x20

	it, err := NewIndexedTrace(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < it.Blocks(); b++ {
		rr, err := it.RangeReader(b, b+1, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, err = rr.appendRemaining(nil)
		if b == victim {
			if err == nil || !strings.Contains(err.Error(), "checksum") {
				t.Fatalf("block %d: corrupt payload read back as %v, want a checksum error", b, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("undamaged block %d: %v", b, err)
		}
	}
}

// TestFileFingerprintIdentity: the fingerprint is a function of content
// only — stable across identical writes and distinct paths, different the
// moment a sample or a byte changes, and defined for every input kind.
func TestFileFingerprintIdentity(t *testing.T) {
	samples := testTrace(200, 43)
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	var a bytes.Buffer
	if err := WriteSamplesBinary(&a, samples, 1, BinaryOptions{BlockSize: 32, Index: true}); err != nil {
		t.Fatal(err)
	}
	fpOf := func(name string, data []byte) string {
		t.Helper()
		fp, err := FileFingerprint(write(name, data))
		if err != nil {
			t.Fatal(err)
		}
		return fp
	}
	fpA := fpOf("a.bin", a.Bytes())
	if fpB := fpOf("b.bin", a.Bytes()); fpB != fpA {
		t.Fatal("identical content under a different path fingerprints differently")
	}

	changed := testTrace(200, 43)
	changed[100].Latency += 1
	var c bytes.Buffer
	if err := WriteSamplesBinary(&c, changed, 1, BinaryOptions{BlockSize: 32, Index: true}); err != nil {
		t.Fatal(err)
	}
	if fpOf("c.bin", c.Bytes()) == fpA {
		t.Fatal("a changed sample kept the same fingerprint")
	}

	var csv bytes.Buffer
	if err := WriteSamples(&csv, samples, 1); err != nil {
		t.Fatal(err)
	}
	fpCSV := fpOf("d.csv", csv.Bytes())
	if fpCSV == fpA {
		t.Fatal("CSV and indexed-binary encodings fingerprint identically")
	}
	if fpOf("e.csv", append(append([]byte(nil), csv.Bytes()...), '\n')) == fpCSV {
		t.Fatal("an appended byte kept the same full-hash fingerprint")
	}
}
