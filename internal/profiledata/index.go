package profiledata

// Block index footer (v3 extension).
//
// An indexed recording carries, after the body's zero-count terminator, a
// footer describing every block: its absolute file offset, sample count,
// time range, and the decoder seed state (the running time/addr/latency
// deltas as they stood before the block). The footer is discovered from the
// end of the file by a trailing magic, so it is invisible to streaming
// readers — they stop at the terminator and never reach it — and absent
// from CSV and compressed recordings:
//
//	footer:  payload, uint64 LE payload length, magic "DRBWIDX1" or
//	         "DRBWIDX2"
//	payload: uvarint entry count, then per entry:
//	         uvarint offset delta from the previous entry (first absolute),
//	         uvarint sample count,
//	         zigzag varint decoder prevTime,
//	         uvarint decoder prevAddr,
//	         zigzag varint decoder prevLat,
//	         min time float64 LE, max time float64 LE,
//	         (DRBWIDX2 only) block payload checksum uint64 LE
//
// The seed state is what makes blocks independently decodable: v3 columns
// delta-encode across block boundaries, so a reader seeked to block i can
// only invert the deltas if it knows where the encoder's running state
// stood. With it, any contiguous block range decodes to exactly the same
// samples a front-to-back read would produce, which is the foundation of
// the shard-parallel analysis path.
//
// DRBWIDX2 appends one fixed-width field per entry: a CRC-64 (ECMA) of the
// block's payload bytes, computed at encode time. It buys two things: range
// readers verify each block they decode against it, and the whole
// recording's content can be fingerprinted from the index alone — header
// fields plus per-block counts and checksums — in O(index bytes) instead of
// rehashing the file (see FileFingerprint). The writer always emits
// DRBWIDX2 now; this reader accepts both versions (a DRBWIDX1 footer simply
// has no checksums to verify or fingerprint from), and readers that predate
// DRBWIDX2 see an unknown trailing magic, report ErrNoIndex, and fall back
// to the streaming path — correct results, just no block fan-out. Streaming
// readers themselves stop at the body terminator and never parse either
// footer.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"runtime"
	"sync"

	"drbw/internal/cache"
)

// indexMagic closes every DRBWIDX1 recording (no per-block checksums).
// Distinct from binaryMagic so a truncated file can never present a stale
// footer as a header or vice versa.
const indexMagic = "DRBWIDX1"

// indexMagicV2 closes every checksummed recording — what the writer emits.
// Same length as indexMagic, so one trailer read resolves either version.
const indexMagicV2 = "DRBWIDX2"

// indexTailLen is the fixed-size trailer: uint64 payload length + magic.
const indexTailLen = 8 + len(indexMagic)

// minIndexEntryLen is the narrowest possible encoded DRBWIDX1 entry (five
// one-byte varints plus two float64 times), bounding the entry count a
// footer can plausibly claim; DRBWIDX2 entries add a fixed 8-byte checksum.
const minIndexEntryLen = 5 + 16

const minIndexEntryLenV2 = minIndexEntryLen + 8

// ErrNoIndex reports that a recording carries no block index footer — it is
// CSV, compressed, written without BinaryOptions.Index, or truncated before
// the trailing magic. Callers fall back to the streaming reader.
var ErrNoIndex = errors.New("profiledata: recording has no block index")

// IndexEntry describes one block of an indexed recording.
type IndexEntry struct {
	// Offset is the block's absolute file offset (its count uvarint).
	Offset int64
	// Count is the block's sample count.
	Count int
	// MinTime and MaxTime bound the block's sample times.
	MinTime, MaxTime float64
	// PrevTime, PrevAddr and PrevLat seed the block decoder with the
	// running deltas as they stood before this block.
	PrevTime int64
	PrevAddr uint64
	PrevLat  int64
	// Sum is the CRC-64 (ECMA) of the block's payload bytes. Only
	// meaningful when the index carries checksums (BlockIndex.HasSums);
	// zero otherwise.
	Sum uint64
}

// BlockIndex is a recording's decoded block index.
type BlockIndex struct {
	Entries []IndexEntry
	// DataEnd is the file offset of the body terminator — one past the last
	// block's final byte.
	DataEnd int64
	// HasSums reports a DRBWIDX2 footer: every entry carries a payload
	// checksum, range reads verify against it, and the recording can be
	// fingerprinted from the index alone.
	HasSums bool
}

// blockSumTable is the CRC-64 polynomial the per-block checksums use.
var blockSumTable = crc64.MakeTable(crc64.ECMA)

// blockChecksum is the DRBWIDX2 per-block payload checksum.
func blockChecksum(payload []byte) uint64 {
	return crc64.Checksum(payload, blockSumTable)
}

// writeBlockIndex appends the checksummed (DRBWIDX2) index footer.
func writeBlockIndex(w *bufio.Writer, entries []IndexEntry) error {
	return writeBlockIndexVersioned(w, entries, true)
}

// WriteBlockIndex appends a checksummed (DRBWIDX2) block index footer to w
// — the writing half of ReadBlockIndex, for tools and tests that rebuild or
// rewrite footers on an existing body. WriteSamplesBinary emits the same
// footer for every indexed recording it writes; entries it did not compute
// itself are the caller's responsibility to keep truthful (the single-pass
// analysis cross-checks them against the decoded samples).
func WriteBlockIndex(w io.Writer, entries []IndexEntry) error {
	bw := bufio.NewWriter(w)
	if err := writeBlockIndex(bw, entries); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("profiledata: writing block index: %w", err)
	}
	return nil
}

// writeBlockIndexVersioned writes either footer version. The DRBWIDX1 form
// exists for compatibility tests — the writer proper always emits DRBWIDX2.
func writeBlockIndexVersioned(w *bufio.Writer, entries []IndexEntry, withSums bool) error {
	var payload []byte
	var v8 [binary.MaxVarintLen64]byte
	putUvarint := func(u uint64) {
		n := binary.PutUvarint(v8[:], u)
		payload = append(payload, v8[:n]...)
	}
	putFloat := func(f float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
		payload = append(payload, b[:]...)
	}
	putUvarint(uint64(len(entries)))
	prevOff := int64(0)
	for _, e := range entries {
		putUvarint(uint64(e.Offset - prevOff))
		prevOff = e.Offset
		putUvarint(uint64(e.Count))
		putUvarint(zigzag(e.PrevTime))
		putUvarint(e.PrevAddr)
		putUvarint(zigzag(e.PrevLat))
		putFloat(e.MinTime)
		putFloat(e.MaxTime)
		if withSums {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], e.Sum)
			payload = append(payload, b[:]...)
		}
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("profiledata: writing block index: %w", err)
	}
	magic := indexMagic
	if withSums {
		magic = indexMagicV2
	}
	var tail [indexTailLen]byte
	binary.LittleEndian.PutUint64(tail[:8], uint64(len(payload)))
	copy(tail[8:], magic)
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("profiledata: writing block index: %w", err)
	}
	return nil
}

// ReadBlockIndex parses the block index footer of a recording of the given
// size. It returns ErrNoIndex when no trailing magic is present, and a
// descriptive error when a footer is present but does not validate: every
// structural invariant a forged or damaged footer could break — offsets out
// of order or out of bounds, implausible counts, inverted time ranges — is
// rejected here rather than trusted by the range readers.
func ReadBlockIndex(r io.ReaderAt, size int64) (*BlockIndex, error) {
	// The smallest indexed file: header (magic + version + flags + weight +
	// count + empty-ish dictionary), terminator, empty payload, tail.
	if size < int64(len(binaryMagic))+20+1+int64(indexTailLen) {
		return nil, ErrNoIndex
	}
	var tail [indexTailLen]byte
	if _, err := r.ReadAt(tail[:], size-int64(indexTailLen)); err != nil {
		return nil, fmt.Errorf("profiledata: reading index trailer: %w", corruptEOF(err))
	}
	hasSums := false
	entryLen := int64(minIndexEntryLen)
	switch string(tail[8:]) {
	case indexMagic:
	case indexMagicV2:
		hasSums = true
		entryLen = minIndexEntryLenV2
	default:
		return nil, ErrNoIndex
	}
	plen := binary.LittleEndian.Uint64(tail[:8])
	dataEnd := size - int64(indexTailLen) - 1 - int64(plen)
	if int64(plen) < 1 || dataEnd <= int64(len(binaryMagic)) {
		return nil, fmt.Errorf("profiledata: block index payload of %d bytes does not fit a %d-byte recording", plen, size)
	}
	payload := make([]byte, plen)
	if _, err := r.ReadAt(payload, size-int64(indexTailLen)-int64(plen)); err != nil {
		return nil, fmt.Errorf("profiledata: reading block index: %w", corruptEOF(err))
	}

	p := payloadReader{buf: payload}
	n, err := p.uvarint()
	if err != nil {
		return nil, fmt.Errorf("profiledata: corrupt block index: %w", err)
	}
	if n > plen/uint64(entryLen) {
		return nil, fmt.Errorf("profiledata: block index claims %d entries in %d bytes", n, plen)
	}
	idx := &BlockIndex{Entries: make([]IndexEntry, 0, n), DataEnd: dataEnd, HasSums: hasSums}
	prevOff := int64(0)
	for i := uint64(0); i < n; i++ {
		var e IndexEntry
		var u [5]uint64
		for j := range u {
			if u[j], err = p.uvarint(); err != nil {
				return nil, fmt.Errorf("profiledata: corrupt block index: %w", err)
			}
		}
		e.Offset = prevOff + int64(u[0])
		e.Count = int(u[1])
		e.PrevTime = unzigzag(u[2])
		e.PrevAddr = u[3]
		e.PrevLat = unzigzag(u[4])
		if e.MinTime, err = p.float(); err != nil {
			return nil, fmt.Errorf("profiledata: corrupt block index: %w", err)
		}
		if e.MaxTime, err = p.float(); err != nil {
			return nil, fmt.Errorf("profiledata: corrupt block index: %w", err)
		}
		if hasSums {
			if e.Sum, err = p.fixed64(); err != nil {
				return nil, fmt.Errorf("profiledata: corrupt block index: %w", err)
			}
		}
		if e.Offset <= prevOff && i > 0 || e.Offset >= dataEnd || e.Offset <= int64(len(binaryMagic)) {
			return nil, fmt.Errorf("profiledata: block index entry %d has offset %d outside (%d, %d)", i, e.Offset, prevOff, dataEnd)
		}
		if e.Count <= 0 || e.Count > maxBlockSamples {
			return nil, fmt.Errorf("profiledata: block index entry %d claims %d samples (limit %d)", i, e.Count, maxBlockSamples)
		}
		if !(e.MinTime <= e.MaxTime) {
			return nil, fmt.Errorf("profiledata: block index entry %d has inverted time range [%v, %v]", i, e.MinTime, e.MaxTime)
		}
		if i > 0 {
			prev := &idx.Entries[len(idx.Entries)-1]
			if span := e.Offset - prev.Offset; span > int64(prev.Count)*maxSampleEncoded+2*binary.MaxVarintLen64 {
				return nil, fmt.Errorf("profiledata: block index entry %d spans %d bytes for %d samples", i-1, span, prev.Count)
			}
		}
		prevOff = e.Offset
		idx.Entries = append(idx.Entries, e)
	}
	if p.pos != len(p.buf) {
		return nil, fmt.Errorf("profiledata: %d trailing bytes in block index", len(p.buf)-p.pos)
	}
	if len(idx.Entries) > 0 {
		last := &idx.Entries[len(idx.Entries)-1]
		if span := dataEnd - last.Offset; span > int64(last.Count)*maxSampleEncoded+2*binary.MaxVarintLen64 {
			return nil, fmt.Errorf("profiledata: final block index entry spans %d bytes for %d samples", span, last.Count)
		}
	}
	return idx, nil
}

// fixed64 reads a fixed-width little-endian uint64 (the DRBWIDX2 checksum
// field — varints would cost more than they save on hash-distributed bits).
func (p *payloadReader) fixed64() (uint64, error) {
	if p.pos+8 > len(p.buf) {
		return 0, errCorrupt
	}
	v := binary.LittleEndian.Uint64(p.buf[p.pos:])
	p.pos += 8
	return v, nil
}

// IndexedTrace is a binary v3 recording opened through its block index for
// random access to block ranges. The underlying reads go through ReadAt, so
// any number of RangeReaders over one IndexedTrace may run concurrently.
type IndexedTrace struct {
	r      io.ReaderAt
	f      *os.File // non-nil when opened from a path; closed by Close
	size   int64
	weight float64
	total  uint64
	levels []cache.Level
	idx    *BlockIndex

	// mu guards ras, the prefetchers handed out to range readers; Close
	// stops any a consumer abandoned mid-range.
	mu  sync.Mutex
	ras []*prefetcher
}

// NewIndexedTrace opens an indexed recording over an io.ReaderAt of the
// given size. It returns ErrNoIndex for anything without a valid v3 header
// and index footer pair (CSV, compressed, unindexed), and a descriptive
// error for a footer that fails validation; callers treat any error as
// "use the streaming path".
func NewIndexedTrace(r io.ReaderAt, size int64) (*IndexedTrace, error) {
	hr := bufio.NewReaderSize(io.NewSectionReader(r, 0, size), 4<<10)
	head, err := hr.Peek(len(binaryMagic))
	if err != nil || string(head) != binaryMagic {
		return nil, ErrNoIndex
	}
	hr.Discard(len(binaryMagic))
	weight, total, levels, compressed, err := readBinaryHeader(hr)
	if err != nil {
		return nil, err
	}
	if compressed {
		return nil, ErrNoIndex
	}
	idx, err := ReadBlockIndex(r, size)
	if err != nil {
		return nil, err
	}
	var sum uint64
	for i := range idx.Entries {
		sum += uint64(idx.Entries[i].Count)
	}
	if sum != total {
		return nil, fmt.Errorf("profiledata: block index holds %d samples but the header claims %d", sum, total)
	}
	return &IndexedTrace{r: r, size: size, weight: weight, total: total, levels: levels, idx: idx}, nil
}

// OpenIndexedTrace opens the recording at path through its block index.
// Close the returned trace when done.
func OpenIndexedTrace(path string) (*IndexedTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	it, err := NewIndexedTrace(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	it.f = f
	return it, nil
}

// Weight returns the collector weight recorded in the header.
func (it *IndexedTrace) Weight() float64 { return it.weight }

// TotalSamples returns the recording's sample count.
func (it *IndexedTrace) TotalSamples() int { return int(it.total) }

// Blocks returns the number of indexed blocks.
func (it *IndexedTrace) Blocks() int { return len(it.idx.Entries) }

// Entry returns the i-th block's index entry.
func (it *IndexedTrace) Entry(i int) IndexEntry { return it.idx.Entries[i] }

// HasChecksums reports a DRBWIDX2 index: per-block payload checksums are
// present, range reads verify them, and Fingerprint works from the index.
func (it *IndexedTrace) HasChecksums() bool { return it.idx.HasSums }

// TimeBounds returns the recording's global sample time range as recorded
// by the block index, in O(blocks) — no sample ever decodes. ok is false
// for an empty recording. The range is the index's claim; the single-pass
// analysis verifies it against the decoded samples.
func (it *IndexedTrace) TimeBounds() (minT, maxT float64, ok bool) {
	entries := it.idx.Entries
	if len(entries) == 0 {
		return 0, 0, false
	}
	minT, maxT = entries[0].MinTime, entries[0].MaxTime
	for i := 1; i < len(entries); i++ {
		e := &entries[i]
		if e.MinTime < minT {
			minT = e.MinTime
		}
		if e.MaxTime > maxT {
			maxT = e.MaxTime
		}
	}
	return minT, maxT, true
}

// Close stops any read-ahead still running for this trace's range readers
// and releases the underlying file when the trace was opened from a path.
func (it *IndexedTrace) Close() error {
	it.mu.Lock()
	ras := it.ras
	it.ras = nil
	it.mu.Unlock()
	for _, p := range ras {
		p.Stop()
	}
	if it.f != nil {
		return it.f.Close()
	}
	return nil
}

// RangeReader returns a SampleReader over blocks [from, to), seeded with
// the range's decoder state so it yields exactly the samples a front-to-
// back read would yield for those blocks. Each reader holds its own
// position (reads go through ReadAt), so per-worker readers over one
// IndexedTrace are safe to drive concurrently; bufs follows the usual
// Buffers contract of backing one live reader at a time.
func (it *IndexedTrace) RangeReader(from, to int, bufs *Buffers) (*SampleReader, error) {
	if from < 0 || to > len(it.idx.Entries) || from >= to {
		return nil, fmt.Errorf("profiledata: block range [%d, %d) outside the %d-block index", from, to, len(it.idx.Entries))
	}
	if bufs == nil {
		bufs = &Buffers{}
	}
	start := it.idx.Entries[from].Offset
	end := it.idx.DataEnd
	if to < len(it.idx.Entries) {
		end = it.idx.Entries[to].Offset
	}
	var total uint64
	for i := from; i < to; i++ {
		total += uint64(it.idx.Entries[i].Count)
	}
	e := &it.idx.Entries[from]
	sr := &SampleReader{
		weight: it.weight, format: FormatBinaryV3, bufs: bufs,
		total: total, avail: end - start,
		limited: true, blocksLeft: to - from,
	}
	if it.idx.HasSums {
		// Each decoded block is verified against its recorded checksum, so
		// silent payload corruption surfaces as an error instead of as
		// structurally-valid garbage samples.
		sr.sums = make([]uint64, 0, to-from)
		for i := from; i < to; i++ {
			sr.sums = append(sr.sums, it.idx.Entries[i].Sum)
		}
	}
	sr.dec = blockDecoder{prevTime: e.PrevTime, prevAddr: e.PrevAddr, prevLat: e.PrevLat, levels: it.levels}
	if size := end - start; size >= prefetchMinBytes && runtime.GOMAXPROCS(0) > 1 {
		// Large ranges read ahead on a background goroutine so block N+1's
		// bytes arrive while block N decodes — when a spare CPU exists to
		// run it; on one CPU the goroutine only adds a copy and scheduling
		// to the decode loop. The reader stops it at EOF or on error; Close
		// sweeps any abandoned mid-range.
		sr.ra = newPrefetcher(it.r, start, size)
		it.mu.Lock()
		it.ras = append(it.ras, sr.ra)
		it.mu.Unlock()
		sr.body = bufio.NewReaderSize(sr.ra, 64<<10)
	} else {
		sr.body = bufio.NewReaderSize(io.NewSectionReader(it.r, start, end-start), 64<<10)
	}
	return sr, nil
}
