// Package profiledata serializes DR-BW profiles — PEBS samples and the
// allocation range table — so collection and analysis can run separately,
// the way the real tool is used: profile a production run once, analyze
// the recording as many times as needed (or feed in samples collected by
// another tool entirely, e.g. converted `perf mem` output).
//
// Two sample formats are supported, autodetected on read, so old
// recordings and shell-produced files keep working while large traces get
// a compact encoding:
//
// CSV (v1/v2) is line-oriented with a header, chosen so recordings can be
// produced and consumed by shell tooling:
//
//	samples:  #drbw-samples,v2,weight,<w>
//	          time,cpu,thread,addr,level,latency,write,src_node,home_node
//	objects:  id,name,func,file,line,base,size
//
// The v2 samples file opens with a meta row naming the format version and
// the collector weight — the factor that scales the kept samples back to
// true counts when the collector bounded its memory (see
// pebs.Collector.Weight). Without it, a reloaded trace silently
// under-counts every count feature. v1 files, which lack the meta row and
// start directly with the header, are still read (their weight is taken as
// 1, matching collections that kept every sample). Addresses and bases are
// hexadecimal with an 0x prefix; levels are the strings L1, L2, L3, LFB,
// MEM. Source and home node are recorded at collection time (the profiler
// resolves them via the topology and the page tables while the process is
// alive; they cannot be reconstructed afterwards).
//
// Binary columnar (v3) is the compact format for large traces, written by
// WriteSamplesBinary and recognized on read by its "DRBWPD3\n" magic. The
// header carries the version, a flags byte (bit 0: flate-compressed body),
// the collector weight, and a dictionary of level names; the body is a
// sequence of blocks, each a sample count, a payload length, and a payload
// holding one column per field. Timestamps and addresses are delta-encoded
// zigzag varints with deltas running across block boundaries; latencies
// use fixed-point ×10 varints; levels are single dictionary indices; the
// write flags are packed eight to a byte. Columns that a block cannot
// represent losslessly (fractional timestamps, latencies that are not
// exact tenths) fall back to raw float64 bits for that block, so decoding
// always reproduces the samples bit for bit. A zero sample count
// terminates the body. The block structure is what makes streaming decode
// possible: SampleReader yields one block at a time and analysis memory
// stays bounded by the block size regardless of trace length.
package profiledata

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"drbw/internal/alloc"
	"drbw/internal/cache"
	"drbw/internal/pebs"
)

var sampleHeader = []string{"time", "cpu", "thread", "addr", "level", "latency", "write", "src_node", "home_node"}

// metaTag opens the meta row of a versioned samples file.
const metaTag = "#drbw-samples"

// sampleVersion is the format version WriteSamples emits.
const sampleVersion = "v2"

// WriteSamples writes samples as CSV, preceded by the v2 meta row carrying
// the collector weight. A non-positive weight is written as 1.
func WriteSamples(w io.Writer, samples []pebs.Sample, weight float64) error {
	if !(weight > 0) {
		weight = 1
	}
	cw := csv.NewWriter(w)
	meta := []string{metaTag, sampleVersion, "weight", strconv.FormatFloat(weight, 'g', -1, 64)}
	if err := cw.Write(meta); err != nil {
		return fmt.Errorf("profiledata: %w", err)
	}
	if err := cw.Write(sampleHeader); err != nil {
		return fmt.Errorf("profiledata: %w", err)
	}
	for _, s := range samples {
		rec := []string{
			strconv.FormatFloat(s.Time, 'f', 0, 64),
			strconv.Itoa(int(s.CPU)),
			strconv.Itoa(s.Thread),
			"0x" + strconv.FormatUint(s.Addr, 16),
			s.Level.String(),
			strconv.FormatFloat(s.Latency, 'f', 1, 64),
			strconv.FormatBool(s.Write),
			strconv.Itoa(int(s.SrcNode)),
			strconv.Itoa(int(s.HomeNode)),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("profiledata: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func parseLevel(s string) (cache.Level, error) {
	switch s {
	case "L1":
		return cache.L1, nil
	case "L2":
		return cache.L2, nil
	case "L3":
		return cache.L3, nil
	case "LFB":
		return cache.LFB, nil
	case "MEM":
		return cache.MEM, nil
	default:
		return 0, fmt.Errorf("unknown memory level %q", s)
	}
}

func parseAddr(s string) (uint64, error) {
	if len(s) > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

// readMeta parses the v2 meta row into the collector weight.
func readMeta(rec []string) (float64, error) {
	if len(rec) != 4 || rec[2] != "weight" {
		return 0, fmt.Errorf("profiledata: malformed meta row %v, want %s,<version>,weight,<w>", rec, metaTag)
	}
	if rec[1] != sampleVersion {
		return 0, fmt.Errorf("profiledata: unsupported samples format version %q (this reader handles v1 and %s)", rec[1], sampleVersion)
	}
	w, err := strconv.ParseFloat(rec[3], 64)
	if err != nil {
		return 0, fmt.Errorf("profiledata: meta weight: %w", err)
	}
	if !(w > 0) {
		return 0, fmt.Errorf("profiledata: meta weight %v is not positive", w)
	}
	return w, nil
}

// ReadSamples parses a sample recording — binary v3 or CSV v1/v2, detected
// from the first bytes — and returns the samples plus the collector weight.
// v1 recordings (no meta row) read with weight 1.
func ReadSamples(r io.Reader) ([]pebs.Sample, float64, error) {
	sr, err := NewSampleReader(r)
	if err != nil {
		return nil, 0, err
	}
	out, err := sr.appendRemaining(nil)
	if err != nil {
		return nil, 0, err
	}
	return out, sr.Weight(), nil
}

var objectHeader = []string{"id", "name", "func", "file", "line", "base", "size"}

// WriteObjects writes the allocation range table as CSV. Freed objects are
// skipped: their ranges no longer attribute.
func WriteObjects(w io.Writer, objects []alloc.Object) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(objectHeader); err != nil {
		return fmt.Errorf("profiledata: %w", err)
	}
	for _, o := range objects {
		if o.Freed {
			continue
		}
		rec := []string{
			strconv.Itoa(int(o.ID)),
			o.Name,
			o.Site.Func,
			o.Site.File,
			strconv.Itoa(o.Site.Line),
			"0x" + strconv.FormatUint(o.Base, 16),
			strconv.FormatUint(o.Size, 10),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("profiledata: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadObjects parses an allocation range table.
func ReadObjects(r io.Reader) ([]alloc.Object, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(objectHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("profiledata: reading header: %w", err)
	}
	for i, h := range objectHeader {
		if header[i] != h {
			return nil, fmt.Errorf("profiledata: header column %d is %q, want %q", i, header[i], h)
		}
	}
	var out []alloc.Object
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("profiledata: line %d: %w", line, err)
		}
		var o alloc.Object
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("profiledata: line %d id: %w", line, err)
		}
		o.ID = alloc.ObjectID(id)
		o.Name = rec[1]
		o.Site.Func = rec[2]
		o.Site.File = rec[3]
		if o.Site.Line, err = strconv.Atoi(rec[4]); err != nil {
			return nil, fmt.Errorf("profiledata: line %d line-number: %w", line, err)
		}
		if o.Base, err = parseAddr(rec[5]); err != nil {
			return nil, fmt.Errorf("profiledata: line %d base: %w", line, err)
		}
		if o.Size, err = strconv.ParseUint(rec[6], 10, 64); err != nil {
			return nil, fmt.Errorf("profiledata: line %d size: %w", line, err)
		}
		if o.Size == 0 {
			return nil, fmt.Errorf("profiledata: line %d: zero-size object", line)
		}
		out = append(out, o)
	}
	return out, nil
}

// Table is a standalone attribution range table built from a recorded
// object list; it satisfies diagnose.Attributor for offline analysis.
type Table struct {
	objects []alloc.Object // sorted by base
	byID    map[alloc.ObjectID]alloc.Object
}

// NewTable builds a table, rejecting overlapping ranges.
func NewTable(objects []alloc.Object) (*Table, error) {
	t := &Table{byID: make(map[alloc.ObjectID]alloc.Object, len(objects))}
	t.objects = append(t.objects, objects...)
	sort.Slice(t.objects, func(i, j int) bool { return t.objects[i].Base < t.objects[j].Base })
	for i, o := range t.objects {
		if _, dup := t.byID[o.ID]; dup {
			return nil, fmt.Errorf("profiledata: duplicate object id %d", o.ID)
		}
		t.byID[o.ID] = o
		if i > 0 {
			prev := t.objects[i-1]
			if prev.Base+prev.Size > o.Base {
				return nil, fmt.Errorf("profiledata: objects %q and %q overlap", prev.Name, o.Name)
			}
		}
	}
	return t, nil
}

// Lookup implements diagnose.Attributor.
func (t *Table) Lookup(addr uint64) (alloc.ObjectID, bool) {
	idx := sort.Search(len(t.objects), func(i int) bool { return t.objects[i].Base > addr })
	if idx == 0 {
		return alloc.NoObject, false
	}
	o := t.objects[idx-1]
	if addr >= o.Base+o.Size {
		return alloc.NoObject, false
	}
	return o.ID, true
}

// Object implements diagnose.Attributor.
func (t *Table) Object(id alloc.ObjectID) alloc.Object { return t.byID[id] }

// Len returns the number of ranges.
func (t *Table) Len() int { return len(t.objects) }

// LookupSlot resolves addr to the dense slot of its containing range.
// Slots number the table's ranges in base order, 0..Len()-1, so an
// accumulator can count per-slot into a flat array instead of per-ID into
// a map; SlotID recovers the object behind a slot. The map-free form of
// Lookup for hot attribution loops.
func (t *Table) LookupSlot(addr uint64) (int, bool) {
	idx := sort.Search(len(t.objects), func(i int) bool { return t.objects[i].Base > addr })
	if idx == 0 {
		return 0, false
	}
	o := &t.objects[idx-1]
	if addr >= o.Base+o.Size {
		return 0, false
	}
	return idx - 1, true
}

// SlotID returns the ID of the object occupying a slot LookupSlot returned.
func (t *Table) SlotID(slot int) alloc.ObjectID { return t.objects[slot].ID }
