package profiledata

// Read-ahead for indexed range reads.
//
// A range reader's consumer alternates between pulling bytes off the file
// and decoding them, so the disk (or page cache) sits idle while a block
// decodes. The prefetcher moves the reading onto a background goroutine
// that stays one or two chunks ahead: block N+1's bytes are already in
// memory by the time block N finishes decoding. Chunks come from a shared
// pool, so steady-state prefetching allocates nothing.
//
// Lifecycle is the hazardous part — an abandoned goroutine would pin its
// file handle and buffers forever. Two backstops close every path: the
// SampleReader stops its prefetcher on every terminal Next (EOF or error),
// and the owning IndexedTrace records every prefetcher it hands out and
// stops the stragglers in Close (covering readers abandoned mid-range when
// an analysis callback fails).

import (
	"io"
	"sync"
)

// prefetchChunkSize is the bytes fetched per background read: large enough
// to amortize the ReadAt and channel handoff over many blocks, small enough
// that two in-flight chunks stay cache-friendly.
const prefetchChunkSize = 512 << 10

// prefetchMinBytes is the smallest range worth a background goroutine;
// shorter ranges read synchronously through a section reader.
const prefetchMinBytes = 1 << 20

// prefetchPool recycles chunk buffers across prefetchers.
var prefetchPool = sync.Pool{New: func() any {
	b := make([]byte, prefetchChunkSize)
	return &b
}}

// prefetchMsg is one fetched chunk: n valid bytes in *buf, and the read
// error, if any, to surface after those bytes are consumed.
type prefetchMsg struct {
	buf *[]byte
	n   int
	err error
}

// prefetcher streams a fixed file section through a two-chunk channel,
// reading ahead of its consumer. It implements io.Reader for the consumer
// side; reads return the section's bytes in order, then io.EOF.
type prefetcher struct {
	chunks   chan prefetchMsg
	stop     chan struct{}
	stopOnce sync.Once

	cur    []byte  // unread tail of the chunk being consumed
	curBuf *[]byte // backing buffer, pooled again once drained
	err    error   // terminal state, served after buffered bytes
}

// newPrefetcher starts a background reader over r's bytes [off, off+n).
func newPrefetcher(r io.ReaderAt, off, n int64) *prefetcher {
	p := &prefetcher{chunks: make(chan prefetchMsg, 2), stop: make(chan struct{})}
	go func() {
		defer close(p.chunks)
		for n > 0 {
			buf := prefetchPool.Get().(*[]byte)
			sz := int64(len(*buf))
			if sz > n {
				sz = n
			}
			m, err := r.ReadAt((*buf)[:sz], off)
			off += int64(m)
			n -= int64(m)
			if err == nil && int64(m) < sz {
				err = io.ErrUnexpectedEOF
			}
			select {
			case p.chunks <- prefetchMsg{buf: buf, n: m, err: err}:
			case <-p.stop:
				prefetchPool.Put(buf)
				return
			}
			if err != nil {
				return
			}
		}
	}()
	return p
}

// Read implements io.Reader over the prefetched section.
func (p *prefetcher) Read(b []byte) (int, error) {
	for len(p.cur) == 0 {
		if p.curBuf != nil {
			prefetchPool.Put(p.curBuf)
			p.curBuf = nil
		}
		if p.err != nil {
			return 0, p.err
		}
		c, ok := <-p.chunks
		if !ok {
			p.err = io.EOF
			return 0, io.EOF
		}
		p.curBuf = c.buf
		p.cur = (*c.buf)[:c.n]
		if c.err != nil {
			// Serve the bytes that did arrive first; the error follows.
			p.err = c.err
		}
	}
	m := copy(b, p.cur)
	p.cur = p.cur[m:]
	return m, nil
}

// Stop terminates the background reader and returns every buffered chunk to
// the pool. Idempotent; must not race a concurrent Read (the consumer stops
// its own prefetcher, and IndexedTrace.Close runs after its readers).
func (p *prefetcher) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	for c := range p.chunks {
		prefetchPool.Put(c.buf)
	}
	if p.curBuf != nil {
		prefetchPool.Put(p.curBuf)
		p.curBuf, p.cur = nil, nil
	}
	if p.err == nil {
		p.err = io.EOF
	}
}
