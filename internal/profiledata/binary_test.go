package profiledata

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"drbw/internal/cache"
	"drbw/internal/pebs"
	"drbw/internal/topology"
)

// testTrace generates n samples shaped like real collector output:
// monotonically increasing integral times, clustered addresses, latencies
// on the 0.1-cycle grid.
func testTrace(n int, seed int64) []pebs.Sample {
	rng := rand.New(rand.NewSource(seed))
	levels := []cache.Level{cache.L1, cache.L2, cache.L3, cache.LFB, cache.MEM}
	out := make([]pebs.Sample, n)
	t := 0.0
	for i := range out {
		t += float64(rng.Intn(5000))
		out[i] = pebs.Sample{
			Time:     t,
			CPU:      topology.CPUID(rng.Intn(64)),
			Thread:   rng.Intn(32),
			Addr:     0x10000000 + uint64(rng.Intn(1<<26)),
			Level:    levels[rng.Intn(len(levels))],
			Latency:  float64(rng.Intn(6000)) / 10,
			Write:    rng.Intn(3) == 0,
			SrcNode:  topology.NodeID(rng.Intn(4)),
			HomeNode: topology.NodeID(rng.Intn(4)),
		}
	}
	return out
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 9, 8192, 20000} {
		for _, compress := range []bool{false, true} {
			for _, blockSize := range []int{0, 1, 7, 4096} {
				samples := testTrace(n, int64(n)+1)
				if n > 4 {
					// Force the raw-float fallbacks mid-trace.
					samples[2].Time = 1234.5
					samples[3].Latency = math.Pi
					samples[4].Time = math.Inf(1)
				}
				var buf bytes.Buffer
				opt := BinaryOptions{BlockSize: blockSize, Compress: compress}
				if err := WriteSamplesBinary(&buf, samples, 3.25, opt); err != nil {
					t.Fatalf("write n=%d compress=%v block=%d: %v", n, compress, blockSize, err)
				}
				got, weight, err := ReadSamples(&buf)
				if err != nil {
					t.Fatalf("read n=%d compress=%v block=%d: %v", n, compress, blockSize, err)
				}
				if weight != 3.25 {
					t.Fatalf("weight = %v, want 3.25", weight)
				}
				if len(got) != len(samples) {
					t.Fatalf("n=%d: decoded %d samples", n, len(got))
				}
				for i := range samples {
					if !reflect.DeepEqual(samples[i], got[i]) {
						t.Fatalf("n=%d compress=%v block=%d sample %d:\n got %+v\nwant %+v",
							n, compress, blockSize, i, got[i], samples[i])
					}
				}
			}
		}
	}
}

func TestBinaryPreservesNaNLatency(t *testing.T) {
	samples := testTrace(3, 7)
	samples[1].Latency = math.NaN()
	var buf bytes.Buffer
	if err := WriteSamplesBinary(&buf, samples, 1, BinaryOptions{}); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gb, wb := math.Float64bits(got[1].Latency), math.Float64bits(samples[1].Latency); gb != wb {
		t.Fatalf("NaN latency bits changed: %#x != %#x", gb, wb)
	}
}

func TestBinaryWeightClampedToOne(t *testing.T) {
	for _, w := range []float64{0, -3, math.Inf(-1)} {
		var buf bytes.Buffer
		if err := WriteSamplesBinary(&buf, testTrace(5, 1), w, BinaryOptions{}); err != nil {
			t.Fatal(err)
		}
		_, weight, err := ReadSamples(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if weight != 1 {
			t.Fatalf("weight %v written as %v, want 1", w, weight)
		}
	}
}

// TestBinaryCSVEquivalence is the cross-format property: any sample list
// the CSV writer can represent round-trips identically through both
// formats — same samples, same weight.
func TestBinaryCSVEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		samples := testTrace(997, seed)
		const weight = 16.5

		var csvBuf, binBuf bytes.Buffer
		if err := WriteSamples(&csvBuf, samples, weight); err != nil {
			t.Fatal(err)
		}
		if err := WriteSamplesBinary(&binBuf, samples, weight, BinaryOptions{}); err != nil {
			t.Fatal(err)
		}

		fromCSV, wc, err := ReadSamples(&csvBuf)
		if err != nil {
			t.Fatalf("csv read: %v", err)
		}
		fromBin, wb, err := ReadSamples(&binBuf)
		if err != nil {
			t.Fatalf("binary read: %v", err)
		}
		if wc != weight || wb != weight {
			t.Fatalf("weights: csv %v, binary %v, want %v", wc, wb, weight)
		}
		if !reflect.DeepEqual(fromCSV, fromBin) {
			t.Fatalf("seed %d: csv and binary decode differently", seed)
		}
		if !reflect.DeepEqual(fromBin, samples) {
			t.Fatalf("seed %d: binary decode differs from the original", seed)
		}
	}
}

// TestBinarySmallerThanCSV pins the acceptance bound: the columnar file is
// at least 2x smaller than the CSV on a realistic trace, and flate shrinks
// it further.
func TestBinarySmallerThanCSV(t *testing.T) {
	samples := testTrace(50000, 42)
	var csvBuf, binBuf, flateBuf bytes.Buffer
	if err := WriteSamples(&csvBuf, samples, 2); err != nil {
		t.Fatal(err)
	}
	if err := WriteSamplesBinary(&binBuf, samples, 2, BinaryOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSamplesBinary(&flateBuf, samples, 2, BinaryOptions{Compress: true}); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len()*2 > csvBuf.Len() {
		t.Fatalf("binary %d bytes vs csv %d bytes: less than 2x smaller", binBuf.Len(), csvBuf.Len())
	}
	if flateBuf.Len() >= binBuf.Len() {
		t.Fatalf("flate %d bytes >= uncompressed binary %d bytes", flateBuf.Len(), binBuf.Len())
	}
}

func TestSampleReaderFormats(t *testing.T) {
	samples := testTrace(10, 3)
	var v2, bin bytes.Buffer
	if err := WriteSamples(&v2, samples, 2); err != nil {
		t.Fatal(err)
	}
	if err := WriteSamplesBinary(&bin, samples, 2, BinaryOptions{}); err != nil {
		t.Fatal(err)
	}
	v1 := strings.SplitN(v2.String(), "\n", 2)[1] // drop the meta row

	cases := []struct {
		name, format string
		data         string
		weight       float64
	}{
		{"v1", FormatCSVv1, v1, 1},
		{"v2", FormatCSVv2, v2.String(), 2},
		{"binary", FormatBinaryV3, bin.String(), 2},
	}
	for _, tc := range cases {
		sr, err := NewSampleReader(strings.NewReader(tc.data))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if sr.Format() != tc.format {
			t.Errorf("%s: format %q, want %q", tc.name, sr.Format(), tc.format)
		}
		if sr.Weight() != tc.weight {
			t.Errorf("%s: weight %v, want %v", tc.name, sr.Weight(), tc.weight)
		}
		var total int
		for {
			block, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			total += len(block)
		}
		if total != len(samples) {
			t.Errorf("%s: streamed %d samples, want %d", tc.name, total, len(samples))
		}
	}
}

// binaryWithBlockHeader builds a valid header followed by a hand-written
// block header, for decoder hardening tests.
func binaryWithBlockHeader(count, payloadLen uint64, payload []byte) []byte {
	var buf bytes.Buffer
	WriteSamplesBinary(&buf, nil, 1, BinaryOptions{}) // header + terminator
	data := buf.Bytes()
	data = data[:len(data)-1] // drop the zero-count terminator
	var v8 [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(v8[:], count)
	data = append(data, v8[:n]...)
	n = binary.PutUvarint(v8[:], payloadLen)
	data = append(data, v8[:n]...)
	return append(data, payload...)
}

func TestBinaryReadErrors(t *testing.T) {
	var valid bytes.Buffer
	if err := WriteSamplesBinary(&valid, testTrace(100, 9), 2, BinaryOptions{}); err != nil {
		t.Fatal(err)
	}
	vb := valid.Bytes()

	cases := map[string][]byte{
		"magic only":           []byte(binaryMagic),
		"bad version":          append([]byte(binaryMagic), 9),
		"unknown flags":        append([]byte(binaryMagic), binaryVersion, 0xfe),
		"truncated weight":     append([]byte(binaryMagic), binaryVersion, 0, 1, 2, 3),
		"zero weight":          append([]byte(binaryMagic), binaryVersion, 0, 0, 0, 0, 0, 0, 0, 0, 0),
		"empty dictionary":     binaryHeaderWithDict(nil),
		"unknown level name":   binaryHeaderWithDict([]string{"L9"}),
		"truncated dictionary": append(binaryHeaderWithDict(nil)[:len(binaryMagic)+11], 2, 2, 'L'),
		"missing terminator":   vb[:len(vb)-1],
		"lying sample count":   lyingCount(vb),
		"truncated block":      vb[:len(vb)/2],
		"trailing payload byte": binaryWithBlockHeader(1, 11,
			[]byte{encDelta, 0, 0, 0, 0, 0, encDelta, 0, 0, 0, 0}),
		"bad time tag": binaryWithBlockHeader(1, 10,
			[]byte{7, 0, 0, 0, 0, 0, encDelta, 0, 0, 0}),
		"level outside dictionary": binaryWithBlockHeader(1, 10,
			[]byte{encDelta, 0, 0, 0, 0, 99, encDelta, 0, 0, 0}),
		"count over limit":    binaryWithBlockHeader(maxBlockSamples+1, 8*(maxBlockSamples+1), nil),
		"payload implausible": binaryWithBlockHeader(8, 3, []byte{1, 2, 3}),
		"payload oversized":   binaryWithBlockHeader(1, maxSampleEncoded*2+32, nil),
	}
	for name, data := range cases {
		if _, _, err := ReadSamples(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

// lyingCount rewrites a valid 100-sample file's header count hint to 99,
// which the reader must reject at the terminator.
func lyingCount(valid []byte) []byte {
	data := append([]byte(nil), valid...)
	off := len(binaryMagic) + 1 + 1 + 8 // version, flags, weight
	if data[off] != 100 {
		panic("lyingCount: expected a one-byte count of 100")
	}
	data[off] = 99
	return data
}

// binaryHeaderWithDict builds magic+version+flags+weight+count plus an
// arbitrary level dictionary.
func binaryHeaderWithDict(names []string) []byte {
	data := append([]byte(binaryMagic), binaryVersion, 0)
	var f8 [8]byte
	binary.LittleEndian.PutUint64(f8[:], math.Float64bits(1))
	data = append(data, f8[:]...)
	data = append(data, 0) // sample-count hint: unknown
	data = append(data, byte(len(names)))
	for _, n := range names {
		data = append(data, byte(len(n)))
		data = append(data, n...)
	}
	return data
}

// TestBinaryTruncationNeverOverAllocates feeds every prefix of a valid
// file to the reader: all must fail cleanly (or succeed, for the full
// file) without panicking, and a truncated prefix must never decode more
// samples than the bytes it contains can plausibly hold.
func TestBinaryTruncationNeverOverAllocates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSamplesBinary(&buf, testTrace(500, 11), 2, BinaryOptions{BlockSize: 64}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		samples, _, err := ReadSamples(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes read without error", cut, len(data))
		}
		if len(samples) != 0 {
			t.Fatalf("prefix of %d bytes returned %d samples alongside the error", cut, len(samples))
		}
	}
}

// TestSampleReaderBoundedAllocs pins the streaming property: re-reading a
// multi-block trace through shared Buffers costs a small constant number
// of allocations — the per-block sample and payload buffers are reused, so
// decode memory is bounded by the block size, not the trace.
func TestSampleReaderBoundedAllocs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSamplesBinary(&buf, testTrace(32*1024, 13), 2, BinaryOptions{BlockSize: 1024}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	bufs := &Buffers{}
	drain := func() {
		sr, err := NewSampleReaderBuffers(bytes.NewReader(data), bufs)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := sr.Next(); err == io.EOF {
				return
			} else if err != nil {
				t.Fatal(err)
			}
		}
	}
	drain() // warm the shared buffers
	allocs := testing.AllocsPerRun(5, drain)
	if allocs > 16 {
		t.Fatalf("streaming a 32-block trace with warm buffers cost %.0f allocs, want <= 16", allocs)
	}
}
