package profiledata

// Micro-benchmark isolating the block-decode kernel: the same in-memory
// blocks through the batched column decoder and through a copy of the
// scalar per-sample decoder it replaced. Running both in one process
// cancels host noise, so the ratio is trustworthy where absolute ns/op on
// a shared machine is not.

import (
	"bytes"
	"testing"

	"drbw/internal/cache"
	"drbw/internal/pebs"
	"drbw/internal/topology"
)

// benchBlocks encodes n samples and returns the per-block payloads with
// their decoder seed entries and level dictionary.
func benchBlocks(b *testing.B, n int) ([][]byte, []IndexEntry, []cache.Level) {
	samples := testTrace(n, 7)
	var buf bytes.Buffer
	if err := WriteSamplesBinary(&buf, samples, 2, BinaryOptions{Index: true}); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	it, err := NewIndexedTrace(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		b.Fatal(err)
	}
	payloads := make([][]byte, it.Blocks())
	entries := make([]IndexEntry, it.Blocks())
	for i := range payloads {
		e := it.Entry(i)
		entries[i] = e
		end := it.idx.DataEnd
		if i+1 < it.Blocks() {
			end = it.Entry(i + 1).Offset
		}
		blk := data[e.Offset:end]
		// Skip the two uvarint block-header fields to reach the payload.
		p := payloadReader{buf: blk}
		if _, err := p.uvarint(); err != nil {
			b.Fatal(err)
		}
		plen, err := p.uvarint()
		if err != nil {
			b.Fatal(err)
		}
		payloads[i] = blk[p.pos : p.pos+int(plen)]
	}
	return payloads, entries, it.levels
}

func BenchmarkBlockDecode(b *testing.B) {
	const n = 1 << 20
	payloads, entries, levels := benchBlocks(b, n)
	out := make([]pebs.Sample, DefaultBlockSize)
	var scratch []uint64
	b.Run("batched", func(b *testing.B) {
		b.SetBytes(int64(n))
		for i := 0; i < b.N; i++ {
			for j, payload := range payloads {
				e := &entries[j]
				d := blockDecoder{prevTime: e.PrevTime, prevAddr: e.PrevAddr, prevLat: e.PrevLat, levels: levels}
				if err := d.decode(payload, out[:e.Count], &scratch); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(int64(n))
		for i := 0; i < b.N; i++ {
			for j, payload := range payloads {
				e := &entries[j]
				d := blockDecoder{prevTime: e.PrevTime, prevAddr: e.PrevAddr, prevLat: e.PrevLat, levels: levels}
				if err := decodeScalar(&d, payload, out[:e.Count]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// decodeScalar is the pre-batching decoder, kept verbatim as the benchmark
// baseline for BenchmarkBlockDecode.
func decodeScalar(d *blockDecoder, payload []byte, out []pebs.Sample) error {
	p := payloadReader{buf: payload}

	tag, err := p.byte()
	if err != nil {
		return err
	}
	switch tag {
	case encDelta:
		prev := d.prevTime
		for i := range out {
			u, err := p.uvarint()
			if err != nil {
				return err
			}
			prev += unzigzag(u)
			out[i].Time = float64(prev)
		}
		d.prevTime = prev
	case encRaw:
		for i := range out {
			if out[i].Time, err = p.float(); err != nil {
				return err
			}
		}
	default:
		return errCorrupt
	}

	for i := range out {
		u, err := p.uvarint()
		if err != nil {
			return err
		}
		out[i].CPU = topology.CPUID(unzigzag(u))
	}
	for i := range out {
		u, err := p.uvarint()
		if err != nil {
			return err
		}
		out[i].Thread = int(unzigzag(u))
	}
	prevAddr := d.prevAddr
	for i := range out {
		u, err := p.uvarint()
		if err != nil {
			return err
		}
		prevAddr += uint64(unzigzag(u))
		out[i].Addr = prevAddr
	}
	d.prevAddr = prevAddr
	for i := range out {
		b, err := p.byte()
		if err != nil {
			return err
		}
		if int(b) >= len(d.levels) {
			return errCorrupt
		}
		out[i].Level = d.levels[b]
	}

	if tag, err = p.byte(); err != nil {
		return err
	}
	switch tag {
	case encDelta:
		prev := d.prevLat
		for i := range out {
			u, err := p.uvarint()
			if err != nil {
				return err
			}
			prev += unzigzag(u)
			out[i].Latency = float64(prev) / 10
		}
		d.prevLat = prev
	case encRaw:
		for i := range out {
			if out[i].Latency, err = p.float(); err != nil {
				return err
			}
		}
	default:
		return errCorrupt
	}

	for i := range out {
		if i&7 == 0 {
			if _, err = p.byte(); err != nil {
				return err
			}
		}
		out[i].Write = p.buf[p.pos-1]&(1<<(uint(i)&7)) != 0
	}

	for i := range out {
		u, err := p.uvarint()
		if err != nil {
			return err
		}
		out[i].SrcNode = topology.NodeID(unzigzag(u))
	}
	for i := range out {
		u, err := p.uvarint()
		if err != nil {
			return err
		}
		out[i].HomeNode = topology.NodeID(unzigzag(u))
	}
	return nil
}
