package chart

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRenderBasic(t *testing.T) {
	out := Render([]Bar{
		{Label: "block", Value: 0.95},
		{Label: "point.p", Value: 0.05},
	}, Options{Width: 20, Format: "%.0f%%", Max: 1})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "block") || !strings.Contains(lines[0], "1%") {
		t.Errorf("line 0: %q", lines[0])
	}
	// 95% of 20 = 19 filled cells.
	if n := strings.Count(lines[0], "█"); n != 19 {
		t.Errorf("big bar has %d cells, want 19", n)
	}
	// Non-zero values always show at least one cell.
	if n := strings.Count(lines[1], "█"); n != 1 {
		t.Errorf("small bar has %d cells, want 1", n)
	}
}

func TestRenderGroups(t *testing.T) {
	out := Render([]Bar{
		{Label: "T16-N4", Value: 1.7, Group: "replicate"},
		{Label: "T16-N4", Value: 1.2, Group: "interleave"},
	}, Options{Width: 10})
	if !strings.Contains(out, "legend:") {
		t.Errorf("grouped chart missing legend:\n%s", out)
	}
	if !strings.Contains(out, "█") || !strings.Contains(out, "▒") {
		t.Errorf("groups share a fill:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if Render(nil, Options{}) != "" {
		t.Error("empty chart should render empty")
	}
}

func TestRenderZeroValues(t *testing.T) {
	out := Render([]Bar{{Label: "a", Value: 0}}, Options{Width: 10})
	if strings.Contains(out, "█") {
		t.Errorf("zero bar rendered cells:\n%s", out)
	}
}

// Property: the fill never exceeds the configured width.
func TestRenderWidthProperty(t *testing.T) {
	f := func(vals []float64, width uint8) bool {
		w := int(width%60) + 5
		var bars []Bar
		for i, v := range vals {
			if i >= 10 {
				break
			}
			if v < 0 {
				v = -v
			}
			bars = append(bars, Bar{Label: "x", Value: v})
		}
		if len(bars) == 0 {
			return true
		}
		out := Render(bars, Options{Width: w})
		for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
			if strings.Count(line, "█") > w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
