// Package chart renders small horizontal bar charts as text, used by
// cmd/drbw-bench and the examples to make the figure reproductions
// readable in a terminal (the paper's Figures 4-8 are bar charts).
package chart

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labeled value.
type Bar struct {
	Label string
	Value float64
	// Group optionally tags the bar (e.g. the strategy); grouped bars are
	// rendered with distinct fill runes.
	Group string
}

// fills cycles per group, in first-seen order.
var fills = []rune{'█', '▒', '░', '▪'}

// Options controls rendering.
type Options struct {
	// Width is the maximum bar width in runes (default 40).
	Width int
	// Format renders the numeric value (default "%.2f").
	Format string
	// Max fixes the scale; 0 scales to the largest value.
	Max float64
}

// Render draws the bars, one per line, aligned and scaled.
func Render(bars []Bar, opts Options) string {
	if len(bars) == 0 {
		return ""
	}
	if opts.Width <= 0 {
		opts.Width = 40
	}
	if opts.Format == "" {
		opts.Format = "%.2f"
	}
	max := opts.Max
	for _, b := range bars {
		if b.Value > max {
			max = b.Value
		}
	}
	if max <= 0 {
		max = 1
	}
	labelW := 0
	groupOrder := map[string]int{}
	for _, b := range bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
		if _, ok := groupOrder[b.Group]; !ok {
			groupOrder[b.Group] = len(groupOrder)
		}
	}
	var out strings.Builder
	for _, b := range bars {
		fill := fills[groupOrder[b.Group]%len(fills)]
		n := int(math.Round(float64(opts.Width) * b.Value / max))
		if n < 0 {
			n = 0
		}
		if b.Value > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&out, "%-*s %s%s %s\n",
			labelW, b.Label,
			strings.Repeat(string(fill), n),
			strings.Repeat(" ", opts.Width-n),
			fmt.Sprintf(opts.Format, b.Value))
	}
	if len(groupOrder) > 1 {
		out.WriteString(legend(groupOrder))
	}
	return out.String()
}

func legend(groups map[string]int) string {
	ordered := make([]string, len(groups))
	for g, i := range groups {
		ordered[i] = g
	}
	var b strings.Builder
	b.WriteString("legend:")
	for i, g := range ordered {
		if g == "" {
			continue
		}
		fmt.Fprintf(&b, "  %c %s", fills[i%len(fills)], g)
	}
	b.WriteByte('\n')
	return b.String()
}
