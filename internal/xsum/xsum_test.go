package xsum

import (
	"math"
	"math/rand"
	"testing"
)

// naive is the plain left-to-right fold Sum replaces.
func naive(vs []float64) float64 {
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s
}

func sumOf(vs []float64) *Sum {
	var s Sum
	for _, v := range vs {
		s.Add(v)
	}
	return &s
}

// randomValues mixes magnitudes aggressively enough that naive folds of
// different orderings disagree, which is exactly the disagreement Sum must
// not show.
func randomValues(rng *rand.Rand, n int) []float64 {
	vs := make([]float64, n)
	for i := range vs {
		v := rng.NormFloat64() * math.Ldexp(1, rng.Intn(80)-40)
		if rng.Intn(8) == 0 {
			v = -v
		}
		vs[i] = v
	}
	return vs
}

// TestOrderIndependence is the core contract: any permutation and any
// chunk/merge tree produces bit-identical values.
func TestOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		vs := randomValues(rng, 1+rng.Intn(500))
		want := sumOf(vs).Value()

		shuffled := append([]float64(nil), vs...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		if got := sumOf(shuffled).Value(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: shuffled fold %x differs from serial %x", trial, got, want)
		}

		// Random partition into sub-sums merged in random order.
		parts := make([]*Sum, 1+rng.Intn(5))
		for i := range parts {
			parts[i] = &Sum{}
		}
		for _, v := range shuffled {
			parts[rng.Intn(len(parts))].Add(v)
		}
		merged := parts[0]
		for _, p := range parts[1:] {
			merged.Merge(p)
		}
		if got := merged.Value(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: merged partitions %x differ from serial %x", trial, got, want)
		}
	}
}

// TestExactness pins Value against exact references where the true sum is
// representable.
func TestExactness(t *testing.T) {
	cases := []struct {
		vs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0, -0.0}, 0},
		{[]float64{1, 2, 3}, 6},
		{[]float64{600, 400}, 1000},
		{[]float64{0.5, 0.25, 0.125}, 0.875},
		{[]float64{1e16, 1, -1e16}, 1},      // naive fold loses the 1
		{[]float64{1, 1e100, 1, -1e100}, 2}, // classic cancellation
		{[]float64{math.MaxFloat64, -math.MaxFloat64}, 0},
		{[]float64{5e-324, 5e-324}, 1e-323}, // subnormals
		{[]float64{2.5, 2.5, 2.5, 2.5}, 10},
	}
	for _, c := range cases {
		if got := sumOf(c.vs).Value(); math.Float64bits(got) != math.Float64bits(c.want) {
			t.Errorf("sum(%v) = %v, want %v", c.vs, got, c.want)
		}
	}
}

// TestMatchesNaiveWhenSafe: for same-magnitude positive values the naive
// fold is exact too, so the two must agree exactly — this is what keeps the
// pipeline's existing hand-computed test expectations valid.
func TestMatchesNaiveWhenSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		vs := make([]float64, 1+rng.Intn(100))
		for i := range vs {
			vs[i] = float64(rng.Intn(1 << 20)) // exactly representable, exact partial sums
		}
		if got, want := sumOf(vs).Value(), naive(vs); got != want {
			t.Fatalf("trial %d: %v != naive %v", trial, got, want)
		}
	}
}

// TestAccuracy: against arbitrary values the exact sum must be within one
// rounding of the true total; compare to a compensated reference.
func TestAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		vs := randomValues(rng, 1000)
		// Kahan-Babuska compensated sum as the high-accuracy reference.
		var ref, comp float64
		for _, v := range vs {
			tv := ref + v
			if math.Abs(ref) >= math.Abs(v) {
				comp += (ref - tv) + v
			} else {
				comp += (v - tv) + ref
			}
			ref = tv
		}
		ref += comp
		got := sumOf(vs).Value()
		if diff := math.Abs(got - ref); diff > 4*math.Abs(ref)*0x1p-52 && diff > 0x1p-1000 {
			t.Fatalf("trial %d: xsum %g vs compensated %g (diff %g)", trial, got, ref, diff)
		}
	}
}

func TestSpecialValues(t *testing.T) {
	cases := []struct {
		vs   []float64
		want float64
	}{
		{[]float64{1, math.Inf(1)}, math.Inf(1)},
		{[]float64{math.Inf(-1), -1}, math.Inf(-1)},
		{[]float64{math.Inf(1), math.Inf(-1)}, math.NaN()},
		{[]float64{math.NaN(), 1}, math.NaN()},
		{[]float64{math.Inf(1), math.NaN()}, math.NaN()},
	}
	for _, c := range cases {
		got := sumOf(c.vs).Value()
		if math.IsNaN(c.want) != math.IsNaN(got) || (!math.IsNaN(c.want) && got != c.want) {
			t.Errorf("sum(%v) = %v, want %v", c.vs, got, c.want)
		}
	}
	// Specials survive a merge.
	a, b := sumOf([]float64{math.Inf(1)}), sumOf([]float64{3})
	b.Merge(a)
	if got := b.Value(); !math.IsInf(got, 1) {
		t.Errorf("merged inf lost: %v", got)
	}
}

func TestResetAndIsZero(t *testing.T) {
	s := sumOf([]float64{1, -2, math.NaN()})
	if s.IsZero() {
		t.Error("nonempty sum reported zero")
	}
	s.Reset()
	if !s.IsZero() {
		t.Error("reset sum not zero")
	}
	if got := s.Value(); got != 0 {
		t.Errorf("reset sum values %v", got)
	}
	s.Add(7)
	if got := s.Value(); got != 7 {
		t.Errorf("reuse after reset: %v", got)
	}
	var empty Sum
	if !empty.IsZero() {
		t.Error("zero value not zero")
	}
}

// TestValueIdempotent: Value must not consume or perturb the sum.
func TestValueIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vs := randomValues(rng, 200)
	s := sumOf(vs)
	first := s.Value()
	for i := 0; i < 3; i++ {
		if got := s.Value(); math.Float64bits(got) != math.Float64bits(first) {
			t.Fatalf("Value changed across calls: %x vs %x", got, first)
		}
	}
	s.Add(1.5)
	want := sumOf(append(append([]float64(nil), vs...), 1.5)).Value()
	if got := s.Value(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("Add after Value diverged: %x vs %x", got, want)
	}
}

// TestCarrySaturation: enough max-magnitude mass overflows to the correct
// infinity instead of silently corrupting limbs.
func TestCarrySaturation(t *testing.T) {
	var s Sum
	// Drive the top limb over 2^32 via repeated merges that double the mass:
	// 2^14 copies of MaxFloat64 already exceed the representable 2^1038.
	s.Add(math.MaxFloat64)
	for i := 0; i < 80; i++ {
		c := s // copy shares no pointers when neg is nil
		s.Merge(&c)
	}
	if got := s.Value(); !math.IsInf(got, 1) {
		t.Errorf("2^80 * MaxFloat64 = %v, want +Inf", got)
	}
}

func BenchmarkAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	vs := randomValues(rng, 1024)
	var s Sum
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(vs[i&1023])
	}
	if s.Value() == 0 && b.N > 0 {
		b.Log("unexpected zero") // keep s live
	}
}
