// Package xsum provides exact, order-independent float64 summation.
//
// The shard-parallel trace pipeline splits one recording across workers and
// merges their partial accumulators, promising a report bit-identical to the
// serial walk. Plain float64 running sums cannot keep that promise: float
// addition is not associative, so the grouping imposed by a particular shard
// split leaks into the low bits of the result. Sum removes the grouping from
// the picture entirely by accumulating in fixed point.
//
// A Sum holds the running total as a wide binary integer: an array of 32-bit
// limbs (stored in uint64s for carry headroom) spanning every bit position a
// finite float64 can occupy, one array for positive inputs and one for
// negative. Adding a float deposits its 53-bit mantissa into the limbs at the
// exponent's offset — an integer add, exact and commutative. Merging two Sums
// adds their limb arrays — also exact. The canonical limb state is therefore
// a function of the multiset of added values only, never of the order or
// partitioning, and Value's deterministic low-to-high fold rounds that one
// exact total to the one nearest float64. Any split of a sample stream,
// summed in any order and merged in any shape, yields the same bits.
//
// This is the superaccumulator idea behind reproducible BLAS libraries,
// sized for float64: exactness costs a fixed ~600 B per Sum and a handful of
// integer ops per Add, which the trace pipeline pays only on its handful of
// per-channel latency sums.
package xsum

import "math"

const (
	// limbBits is the payload width of one limb; the upper 32 bits of the
	// uint64 are carry headroom.
	limbBits = 32
	// numLimbs spans bit positions 0..numLimbs*32-1 relative to 2^-1074, the
	// smallest subnormal. The largest finite float64 tops out at bit 2097;
	// the extra limbs absorb carries from astronomically long sums before
	// the saturation check in carry() fires.
	numLimbs = 68
	// carryEvery bounds how many Adds can land between carry propagations.
	// Each Add deposits < 2^32 into a limb, so after carryEvery Adds a limb
	// holds < 2^32 * (carryEvery + 1) < 2^63 and cannot have overflowed.
	carryEvery = 1 << 30
)

// Sum is an exact float64 accumulator. The zero value is an empty sum ready
// for use. A Sum is not safe for concurrent use.
type Sum struct {
	pos  [numLimbs]uint64
	neg  *[numLimbs]uint64 // lazily allocated: negative inputs are rare
	adds uint32

	nan    bool
	posInf bool
	negInf bool
}

// Add folds v into the sum exactly. NaN and infinities set sticky flags that
// Value reports the way a naive fold would (NaN wins, opposing infinities
// make NaN).
func (s *Sum) Add(v float64) {
	bits := math.Float64bits(v)
	exp := int(bits >> 52 & 0x7ff)
	frac := bits & (1<<52 - 1)
	if exp == 0x7ff {
		switch {
		case frac != 0:
			s.nan = true
		case bits>>63 == 0:
			s.posInf = true
		default:
			s.negInf = true
		}
		return
	}
	if exp == 0 && frac == 0 {
		return // ±0 contributes nothing
	}
	// v = mant * 2^(p-1074) with mant in [1, 2^53): the mantissa lands at
	// bit offset p of the limb array.
	mant, p := frac, 0
	if exp > 0 {
		mant |= 1 << 52
		p = exp - 1
	}
	limbs := &s.pos
	if bits>>63 != 0 {
		if s.neg == nil {
			s.neg = new([numLimbs]uint64)
		}
		limbs = s.neg
	}
	i, sh := p>>5, uint(p&31)
	lo := mant << sh
	limbs[i] += lo & (1<<limbBits - 1)
	limbs[i+1] += lo >> limbBits
	if sh > 11 { // mant<<sh spills past 64 bits once sh exceeds 64-53
		limbs[i+2] += mant >> (64 - sh)
	}
	if s.adds++; s.adds >= carryEvery {
		s.carry()
	}
}

// carry propagates limb overflow upward, restoring every limb to its 32-bit
// canonical range. A carry out of the top limb means the total left the
// range even the widened array can express (≥ 2^1102, reachable only after
// ~2^78 max-magnitude adds); it saturates to the matching infinity, exactly
// where a naive fold would long since have overflowed.
func (s *Sum) carry() {
	if !carryLimbs(&s.pos) {
		s.posInf = true
	}
	if s.neg != nil && !carryLimbs(s.neg) {
		s.negInf = true
	}
	s.adds = 0
}

func carryLimbs(l *[numLimbs]uint64) (ok bool) {
	var c uint64
	for i := range l {
		v := l[i] + c
		l[i] = v & (1<<limbBits - 1)
		c = v >> limbBits
	}
	return c == 0
}

// Merge folds o into s, exactly as if every value added to o had been added
// to s instead. Both sums are carry-normalized in the process; o's logical
// value is unchanged.
func (s *Sum) Merge(o *Sum) {
	s.carry()
	o.carry()
	for i := range s.pos {
		s.pos[i] += o.pos[i]
	}
	if o.neg != nil {
		if s.neg == nil {
			s.neg = new([numLimbs]uint64)
		}
		for i := range s.neg {
			s.neg[i] += o.neg[i]
		}
	}
	s.carry()
	s.nan = s.nan || o.nan
	s.posInf = s.posInf || o.posInf
	s.negInf = s.negInf || o.negInf
}

// Reset returns the sum to empty without touching other state.
func (s *Sum) Reset() {
	s.pos = [numLimbs]uint64{}
	if s.neg != nil {
		*s.neg = [numLimbs]uint64{}
	}
	s.adds = 0
	s.nan, s.posInf, s.negInf = false, false, false
}

// IsZero reports whether the sum is exactly empty (no finite mass and no
// special-value flags).
func (s *Sum) IsZero() bool {
	if s.nan || s.posInf || s.negInf {
		return false
	}
	for _, v := range s.pos {
		if v != 0 {
			return false
		}
	}
	if s.neg != nil {
		for _, v := range s.neg {
			if v != 0 {
				return false
			}
		}
	}
	return true
}

// Value rounds the exact total to float64. The result depends only on the
// multiset of added values: any insertion order, any chunking, any merge
// tree produces identical bits. Value does not consume the sum.
func (s *Sum) Value() float64 {
	switch {
	case s.nan, s.posInf && s.negInf:
		return math.NaN()
	case s.posInf:
		return math.Inf(1)
	case s.negInf:
		return math.Inf(-1)
	}
	s.carry()
	if s.neg == nil {
		return assemble(&s.pos)
	}
	// Mixed signs: subtract exactly in the limb domain, then round once.
	switch compareLimbs(&s.pos, s.neg) {
	case 0:
		return 0
	case 1:
		var d [numLimbs]uint64
		subLimbs(&d, &s.pos, s.neg)
		return assemble(&d)
	default:
		var d [numLimbs]uint64
		subLimbs(&d, s.neg, &s.pos)
		return -assemble(&d)
	}
}

// compareLimbs orders two canonical limb arrays as integers.
func compareLimbs(a, b *[numLimbs]uint64) int {
	for i := numLimbs - 1; i >= 0; i-- {
		if a[i] != b[i] {
			if a[i] > b[i] {
				return 1
			}
			return -1
		}
	}
	return 0
}

// subLimbs sets d = a - b on canonical limbs; a must not be below b.
func subLimbs(d, a, b *[numLimbs]uint64) {
	var borrow uint64
	for i := range d {
		sub := b[i] + borrow
		if a[i] >= sub {
			d[i] = a[i] - sub
			borrow = 0
		} else {
			d[i] = a[i] + (1 << limbBits) - sub
			borrow = 1
		}
	}
}

// assemble folds canonical limbs into a float64, low to high so each step
// only rounds bits that are already below the running total's precision.
// The input limbs are a pure function of the exact sum, so the fold is too.
func assemble(l *[numLimbs]uint64) float64 {
	v := 0.0
	for i := 0; i < numLimbs; i++ {
		if l[i] != 0 {
			v += math.Ldexp(float64(l[i]), limbBits*i-1074)
		}
	}
	return v
}
