package pebs

import (
	"testing"
	"testing/quick"

	"drbw/internal/cache"
	"drbw/internal/memsim"
	"drbw/internal/topology"
)

func sample(lat float64, lvl cache.Level, src, home topology.NodeID) Sample {
	return Sample{Latency: lat, Level: lvl, SrcNode: src, HomeNode: home}
}

func TestCollectorDefaults(t *testing.T) {
	c := NewCollector(Config{}, 1)
	if c.Period() != DefaultPeriod {
		t.Errorf("period = %d", c.Period())
	}
	if c.Config().LatencyThreshold != DefaultLatencyThreshold {
		t.Errorf("threshold = %g", c.Config().LatencyThreshold)
	}
	if c.OverheadCycles() != 0 {
		t.Errorf("default overhead = %g", c.OverheadCycles())
	}
}

func TestLatencyThresholdFilters(t *testing.T) {
	c := NewCollector(Config{LatencyThreshold: 50}, 1)
	c.Add(sample(49, cache.L1, 0, 0))
	c.Add(sample(50, cache.L3, 0, 0))
	c.Add(sample(400, cache.MEM, 0, 1))
	if c.Total() != 2 || len(c.Samples()) != 2 {
		t.Fatalf("total %d kept %d, want 2/2", c.Total(), len(c.Samples()))
	}
}

func TestReservoirBound(t *testing.T) {
	c := NewCollector(Config{MaxKept: 100, LatencyThreshold: 1}, 3)
	for i := 0; i < 1000; i++ {
		c.Add(sample(float64(10+i), cache.MEM, 0, 1))
	}
	if c.Total() != 1000 {
		t.Errorf("total = %d", c.Total())
	}
	if len(c.Samples()) != 100 {
		t.Errorf("kept = %d, want 100", len(c.Samples()))
	}
	if w := c.Weight(); w != 10 {
		t.Errorf("weight = %g, want 10", w)
	}
}

func TestWeightWithoutEviction(t *testing.T) {
	c := NewCollector(Config{}, 1)
	if c.Weight() != 1 {
		t.Errorf("empty collector weight = %g", c.Weight())
	}
	c.Add(sample(100, cache.MEM, 0, 0))
	if c.Weight() != 1 {
		t.Errorf("unevicted weight = %g", c.Weight())
	}
}

func TestSamplesSortedByTime(t *testing.T) {
	c := NewCollector(Config{}, 1)
	for _, tm := range []float64{30, 10, 20} {
		s := sample(100, cache.MEM, 0, 0)
		s.Time = tm
		c.Add(s)
	}
	got := c.Samples()
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("samples out of order: %v", got)
		}
	}
}

func TestReset(t *testing.T) {
	c := NewCollector(Config{}, 1)
	c.Add(sample(100, cache.MEM, 0, 0))
	c.Reset()
	if c.Total() != 0 || len(c.Samples()) != 0 {
		t.Error("reset did not clear collector")
	}
}

func TestSampleClassification(t *testing.T) {
	s := sample(300, cache.MEM, 1, 0)
	if !s.RemoteDRAM() || s.LocalDRAM() {
		t.Error("cross-node MEM sample should be remote DRAM")
	}
	if got := s.Channel(); got != (topology.Channel{Src: 1, Dst: 0}) {
		t.Errorf("channel = %v", got)
	}
	l := sample(200, cache.MEM, 2, 2)
	if l.RemoteDRAM() || !l.LocalDRAM() {
		t.Error("same-node MEM sample should be local DRAM")
	}
	lfb := sample(150, cache.LFB, 1, 0)
	if lfb.RemoteDRAM() || lfb.LocalDRAM() {
		t.Error("LFB sample is neither local nor remote DRAM")
	}
}

func TestResolve(t *testing.T) {
	m := topology.Uniform(4, 2)
	as := memsim.NewAddressSpace(m)
	if err := as.Map(0x100000, 4096, memsim.BindTo(3), false); err != nil {
		t.Fatal(err)
	}
	s := Sample{CPU: 2, Addr: 0x100000} // CPU 2 is on node 1 (2 cores/node)
	Resolve(&s, m, as)
	if s.SrcNode != 1 {
		t.Errorf("src = %d, want 1", s.SrcNode)
	}
	if s.HomeNode != 3 {
		t.Errorf("home = %d, want 3", s.HomeNode)
	}
	// Unmapped address falls back to local.
	u := Sample{CPU: 2, Addr: 0xdead0000}
	Resolve(&u, m, as)
	if u.HomeNode != u.SrcNode {
		t.Errorf("unmapped home = %d, want src %d", u.HomeNode, u.SrcNode)
	}
}

func TestAssociate(t *testing.T) {
	ss := []Sample{
		sample(300, cache.MEM, 0, 1), // channel 0->1
		sample(200, cache.MEM, 0, 0), // local 0
		sample(4, cache.L1, 0, 1),    // cache hit: grouped local 0
		sample(40, cache.L3, 2, 0),   // cache hit: grouped local 2
		sample(120, cache.LFB, 0, 1), // LFB travels 0->1
		sample(310, cache.MEM, 1, 0), // channel 1->0
	}
	g := Associate(ss)
	if n := len(g[topology.Channel{Src: 0, Dst: 1}]); n != 2 {
		t.Errorf("channel 0->1 has %d samples, want 2 (MEM+LFB)", n)
	}
	if n := len(g[topology.Channel{Src: 0, Dst: 0}]); n != 2 {
		t.Errorf("local 0 has %d samples, want 2 (local MEM + L1)", n)
	}
	if n := len(g[topology.Channel{Src: 2, Dst: 2}]); n != 1 {
		t.Errorf("local 2 has %d samples, want 1 (L3 hit)", n)
	}
	if n := len(g[topology.Channel{Src: 1, Dst: 0}]); n != 1 {
		t.Errorf("channel 1->0 has %d samples, want 1", n)
	}
}

func TestBySourceNode(t *testing.T) {
	ss := []Sample{
		sample(300, cache.MEM, 0, 1),
		sample(300, cache.MEM, 0, 2),
		sample(300, cache.MEM, 3, 0),
	}
	g := BySourceNode(ss)
	if len(g[0]) != 2 || len(g[3]) != 1 {
		t.Errorf("grouping wrong: %v", g)
	}
}

// Property: the reservoir keeps exactly min(total, MaxKept) samples and
// Weight()*kept ≈ Total.
func TestReservoirInvariantProperty(t *testing.T) {
	f := func(n uint16, keep uint8) bool {
		k := int(keep%50) + 1
		c := NewCollector(Config{MaxKept: k, LatencyThreshold: 1}, uint64(n))
		total := int(n % 500)
		for i := 0; i < total; i++ {
			c.Add(sample(100, cache.MEM, 0, 0))
		}
		want := total
		if want > k {
			want = k
		}
		if len(c.Samples()) != want || c.Total() != total {
			return false
		}
		if total > 0 && len(c.Samples()) > 0 {
			got := c.Weight() * float64(len(c.Samples()))
			if diff := got - float64(total); diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFlavorNames(t *testing.T) {
	if PEBS.String() != "PEBS" || IBS.String() != "IBS" {
		t.Error("flavor names wrong")
	}
	c := NewCollector(Config{}, 1)
	if c.Flavor() != PEBS {
		t.Error("default flavor should be PEBS")
	}
	c2 := NewCollector(Config{Flavor: IBS}, 1)
	if c2.Flavor() != IBS {
		t.Error("IBS flavor lost")
	}
}
