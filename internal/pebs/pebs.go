// Package pebs models precise event-based address sampling — the hardware
// mechanism DR-BW's profiler is built on (Intel PEBS with latency
// extensions; AMD IBS and IBM MRK are equivalent).
//
// The simulated PMU samples one of every Period memory accesses
// independently in each thread (the paper uses 1/2000 with the event
// MEM_TRANS_RETIRED:LATENCY_ABOVE_THRESHOLD). Each sample carries exactly
// the fields the real extension reports and DR-BW consumes:
//
//   - the effective address of the load/store,
//   - the memory layer that served it (L1/L2/L3/LFB/DRAM),
//   - the access latency in core cycles,
//   - the CPU (hardware thread) that executed the instruction.
//
// The source NUMA node of a sample is derived from the CPU via the machine
// topology; the home node of the data is derived from the address via the
// simulated page tables (the libnuma query). Associate groups samples into
// directed channels from those two nodes, which is DR-BW's per-channel
// detection granularity.
package pebs

import (
	"math/rand"
	"sort"

	"drbw/internal/cache"
	"drbw/internal/memsim"
	"drbw/internal/topology"
)

// DefaultPeriod is the paper's sampling period: one in 2000 accesses.
const DefaultPeriod = 2000

// DefaultLatencyThreshold mirrors the PEBS latency-above-threshold setting:
// loads faster than this many cycles are not eligible for sampling. Three
// cycles keeps every L1 hit visible, as the paper's feature set requires.
const DefaultLatencyThreshold = 3

// Sample is one address sample.
type Sample struct {
	Time    float64 // cycles since run start
	CPU     topology.CPUID
	Thread  int
	Addr    uint64
	Level   cache.Level // memory layer that served the access
	Latency float64     // cycles
	Write   bool
	// SrcNode is the NUMA node of the issuing CPU; HomeNode the node holding
	// the data. Both are resolved by the profiler, not reported by hardware.
	SrcNode  topology.NodeID
	HomeNode topology.NodeID
}

// Channel returns the directed channel this sample travelled.
func (s Sample) Channel() topology.Channel {
	return topology.Channel{Src: s.SrcNode, Dst: s.HomeNode}
}

// RemoteDRAM reports whether the sample was served by another socket's DRAM.
func (s Sample) RemoteDRAM() bool {
	return s.Level == cache.MEM && s.SrcNode != s.HomeNode
}

// LocalDRAM reports whether the sample was served by the local DRAM.
func (s Sample) LocalDRAM() bool {
	return s.Level == cache.MEM && s.SrcNode == s.HomeNode
}

// Flavor selects the sampling hardware being modeled.
type Flavor int

// Sampling flavors.
const (
	// PEBS models Intel precise event-based sampling with the latency
	// extension: the PMU counts *memory accesses* and tags every Period-th
	// one with its address, data source and access latency.
	PEBS Flavor = iota
	// IBS models AMD instruction-based sampling for micro-ops (IBS op,
	// Drongowski 2007): the PMU counts *micro-ops*, memory or not. The
	// expected number of memory samples per memory access is the same as
	// PEBS at equal period, but two observable differences follow:
	// compute-heavy code burns sampling interrupts on non-memory ops (the
	// profiling overhead scales with total micro-ops, not accesses), and
	// the tagged-load timing is noisier than PEBS's dedicated latency
	// counter.
	IBS
)

// String names the flavor.
func (f Flavor) String() string {
	if f == IBS {
		return "IBS"
	}
	return "PEBS"
}

// Config controls the sampler.
type Config struct {
	// Flavor selects PEBS (default) or IBS sampling semantics.
	Flavor Flavor
	// Period samples one in Period accesses per thread. <= 0 uses
	// DefaultPeriod.
	Period int
	// LatencyThreshold drops samples whose latency is below the threshold,
	// like the PEBS event's programmable threshold. <= 0 uses
	// DefaultLatencyThreshold.
	LatencyThreshold float64
	// MaxKept bounds memory: once more than MaxKept samples have been
	// collected, reservoir sampling keeps a uniform subset. <= 0 means
	// keep everything.
	MaxKept int
	// OverheadCycles is the profiling cost charged to the sampled thread per
	// recorded sample (PEBS micro-assist plus buffer drain, amortized).
	OverheadCycles float64
}

// Collector accumulates samples during a run.
type Collector struct {
	cfg     Config
	samples []Sample
	total   int
	// droppedThreshold counts samples rejected by the latency threshold;
	// with total and len(samples) it gives the full kept/dropped breakdown
	// the observability layer reports (Stats).
	droppedThreshold int
	rng              *rand.Rand
}

// NewCollector returns a collector with cfg (zero fields defaulted).
func NewCollector(cfg Config, seed uint64) *Collector {
	if cfg.Period <= 0 {
		cfg.Period = DefaultPeriod
	}
	if cfg.LatencyThreshold <= 0 {
		cfg.LatencyThreshold = DefaultLatencyThreshold
	}
	if cfg.OverheadCycles < 0 {
		cfg.OverheadCycles = 0
	}
	return &Collector{cfg: cfg, rng: rand.New(rand.NewSource(int64(seed) ^ 0x7f4a7c15))}
}

// Config returns the effective configuration.
func (c *Collector) Config() Config { return c.cfg }

// Flavor returns the modeled sampling hardware.
func (c *Collector) Flavor() Flavor { return c.cfg.Flavor }

// Period returns the sampling period in accesses.
func (c *Collector) Period() int { return c.cfg.Period }

// OverheadCycles returns the per-sample profiling cost.
func (c *Collector) OverheadCycles() float64 { return c.cfg.OverheadCycles }

// Add records one sample, applying the latency threshold and the reservoir
// bound.
func (c *Collector) Add(s Sample) {
	if s.Latency < c.cfg.LatencyThreshold {
		c.droppedThreshold++
		return
	}
	c.total++
	if c.cfg.MaxKept <= 0 || len(c.samples) < c.cfg.MaxKept {
		c.samples = append(c.samples, s)
		return
	}
	// Uniform reservoir replacement.
	if j := c.rng.Intn(c.total); j < c.cfg.MaxKept {
		c.samples[j] = s
	}
}

// Samples returns the kept samples ordered by time.
func (c *Collector) Samples() []Sample {
	out := make([]Sample, len(c.samples))
	copy(out, c.samples)
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// Total returns how many samples passed the threshold, including any that
// the reservoir later evicted.
func (c *Collector) Total() int { return c.total }

// Weight is the scale factor from kept samples to true sample counts
// (Total/kept); count-valued features multiply by it.
func (c *Collector) Weight() float64 {
	if len(c.samples) == 0 {
		return 1
	}
	return float64(c.total) / float64(len(c.samples))
}

// Reset discards all collected samples.
func (c *Collector) Reset() {
	c.samples = c.samples[:0]
	c.total = 0
	c.droppedThreshold = 0
}

// Stats is the collector's kept/dropped accounting, reported per run by
// the observability layer: sampler trustworthiness at scale requires the
// drop rates to be continuously visible.
type Stats struct {
	// Kept is the number of samples currently retained.
	Kept int
	// DroppedThreshold counts samples rejected by the latency threshold.
	DroppedThreshold int
	// Evicted counts samples that passed the threshold but were displaced
	// by the reservoir bound (Total - Kept).
	Evicted int
	// Total is every sample that passed the threshold, evicted or not.
	Total int
	// Weight is the kept→true scale factor (Total/Kept).
	Weight float64
}

// Stats returns the collector's current accounting.
func (c *Collector) Stats() Stats {
	return Stats{
		Kept:             len(c.samples),
		DroppedThreshold: c.droppedThreshold,
		Evicted:          c.total - len(c.samples),
		Total:            c.total,
		Weight:           c.Weight(),
	}
}

// Resolve fills SrcNode and HomeNode on a raw hardware sample the way the
// profiler does: CPU → node via the topology, address → node via the
// simulated page table (libnuma). Samples served by a cache level still
// resolve their home node — DR-BW needs it to place LFB traffic on a
// channel.
func Resolve(s *Sample, m *topology.Machine, as *memsim.AddressSpace) {
	s.SrcNode = m.NodeOfCPU(s.CPU)
	s.HomeNode = as.NodeOf(s.Addr)
	if s.HomeNode == topology.InvalidNode {
		// Page not resident anywhere the page table can see (e.g. stack or
		// never-touched page): treat as local, the kernel's fallback.
		s.HomeNode = s.SrcNode
	}
}

// Associate groups samples by directed channel. Samples that never left a
// core's private caches (L1/L2) do not travel a channel and are grouped
// under the source node's local channel, which is where their latency
// context belongs.
func Associate(samples []Sample) map[topology.Channel][]Sample {
	out := make(map[topology.Channel][]Sample)
	for _, s := range samples {
		ch := s.Channel()
		if s.Level == cache.L1 || s.Level == cache.L2 || s.Level == cache.L3 {
			ch = topology.Channel{Src: s.SrcNode, Dst: s.SrcNode}
		}
		out[ch] = append(out[ch], s)
	}
	return out
}

// BySourceNode groups samples by the socket that issued them; feature
// extraction evaluates each channel against its source socket's batch.
func BySourceNode(samples []Sample) map[topology.NodeID][]Sample {
	out := make(map[topology.NodeID][]Sample)
	for _, s := range samples {
		out[s.SrcNode] = append(out[s.SrcNode], s)
	}
	return out
}
