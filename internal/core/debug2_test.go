package core

import (
	"fmt"
	"os"
	"testing"

	"drbw/internal/features"
	"drbw/internal/micro"
	"drbw/internal/pebs"
	"drbw/internal/program"
	"drbw/internal/topology"
	"drbw/internal/workloads"
)

// TestDebugBenchVectors dumps per-channel feature vectors for selected
// benchmark cases. Run with DRBW_DEBUG_BENCH=1.
func TestDebugBenchVectors(t *testing.T) {
	if os.Getenv("DRBW_DEBUG_BENCH") == "" {
		t.Skip("set DRBW_DEBUG_BENCH=1 to dump benchmark vectors")
	}
	m := topology.XeonE5_4650()
	ecfg := DefaultEngineConfig(1)
	ecfg.Window = 16384
	ecfg.Warmup = 8192
	td, err := CollectTraining(m, ecfg, micro.TrainingSet()[:0]) // empty: no training needed
	_ = td
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, input string
		threads     int
	}{
		{"Ferret", "native", 64},
		{"IS", "C", 64},
		{"UA", "C", 64},
		{"Fluidanimate", "native", 64},
		{"SP", "B", 32},
	}
	for _, cs := range cases {
		e, _ := workloads.ByName(cs.name)
		cfg := program.Config{Threads: cs.threads, Nodes: 4, Input: cs.input, Seed: 999}
		p, err := e.Builder.New(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		col := pebs.NewCollector(DefaultCollectorConfig(), 1000)
		run := ecfg
		run.Collector = col
		res, err := p.Run(run)
		if err != nil {
			t.Fatal(err)
		}
		maxU := 0.0
		for _, ch := range m.Channels() {
			if u := res.Channel(ch).PeakUtil; u > maxU {
				maxU = u
			}
		}
		fmt.Printf("\n%s %s T%d-N4  maxUtil=%.2f\n", cs.name, cs.input, cs.threads, maxU)
		for ch, v := range features.ChannelVectors(m, col.Samples(), col.Weight(), 25) {
			fmt.Printf("  %-8v f1=%.4f f6=%7.0f f7=%6.0f f8=%7.0f f9=%6.0f f10=%8.0f\n",
				ch, v[0], v[5], v[6], v[7], v[8], v[9])
		}
	}
}
