package core

import (
	"time"

	"drbw/internal/features"
	"drbw/internal/obs"
	"drbw/internal/pebs"
)

// Pipeline observability. Worker-pool state is visible as gauges
// (pool.queue_depth, pool.inflight), every completed case lands in a
// per-pool latency histogram, sampler kept/dropped totals are merged after
// each profiled run, and the classifier's per-label verdict counts are
// tracked at prediction time.
var (
	mPoolQueue    = obs.Default.Gauge("pool.queue_depth")
	mPoolInflight = obs.Default.Gauge("pool.inflight")

	mSamplesKept    = obs.Default.Counter("pebs.samples.kept")
	mSamplesDropped = obs.Default.Counter("pebs.samples.dropped_threshold")
	mSamplesEvicted = obs.Default.Counter("pebs.samples.evicted")
	mWeightLast     = obs.Default.Gauge("pebs.weight.last")

	mPredictGood = obs.Default.Counter("dtree.predict." + features.Good.String())
	mPredictRMC  = obs.Default.Counter("dtree.predict." + features.RMC.String())
	mDetectCases = obs.Default.Counter("detect.cases")
	mDetectHits  = obs.Default.Counter("detect.contended_cases")
)

// mergeCollectorStats publishes one run's sampler accounting.
func mergeCollectorStats(col *pebs.Collector) {
	st := col.Stats()
	mSamplesKept.Add(int64(st.Kept))
	mSamplesDropped.Add(int64(st.DroppedThreshold))
	mSamplesEvicted.Add(int64(st.Evicted))
	mWeightLast.Set(st.Weight)
}

// CountPrediction tracks one channel classification. Exported so the
// offline trace-analysis path (package drbw's AnalyzeTrace) shares the
// same dtree.predict.* counters as the live detector.
func CountPrediction(label features.Label) {
	if label == features.RMC {
		mPredictRMC.Inc()
	} else {
		mPredictGood.Inc()
	}
}

// CountDetectCase tracks one detector invocation — live or offline — and
// whether it flagged contention.
func CountDetectCase(contended bool) {
	mDetectCases.Inc()
	if contended {
		mDetectHits.Inc()
	}
}

// ParallelForLabeled is ParallelFor wrapped in a named span with live pool
// metrics and per-case progress: the queue-depth and in-flight gauges
// track the pool in real time (visible on /metrics during long sweeps),
// "pool.<label>.case_seconds" collects the per-case latency distribution,
// and the span's progress line (N/M done, elapsed, ETA) goes to the
// configured progress writer.
func ParallelForLabeled(n int, label string, fn func(i int)) {
	ParallelForLabeledWorker(n, label, func(i, _ int) { fn(i) })
}

// ParallelForLabeledWorker is ParallelForLabeled over ParallelForWorker:
// the same span, gauges and histogram, with the worker index passed through
// so consumers can reuse per-worker scratch. When a tracer is installed the
// dispatch appears as a "pool.<label>" trace span with one "case" child per
// item, carrying index and worker-id attributes.
func ParallelForLabeledWorker(n int, label string, fn func(i, worker int)) {
	if n <= 0 {
		return
	}
	sp := obs.BeginSpan("pool." + label)
	ParallelForLabeledSpans(n, label, sp, func(i, w int, _ obs.SpanHandle) { fn(i, w) })
	sp.End()
}

// ParallelForLabeledSpans is ParallelForLabeledWorker with the causal
// tracing exposed: each item's trace span — a child of parent, annotated
// with the item index and worker id — is passed to fn so consumers can
// attach their own attributes (block ranges, shard paths, candidate keys).
// The parent handle is not ended here; the caller owns it. With no tracer
// installed every handle is a no-op and the dispatch allocates nothing for
// tracing.
func ParallelForLabeledSpans(n int, label string, parent obs.SpanHandle, fn func(i, worker int, sp obs.SpanHandle)) {
	if n <= 0 {
		return
	}
	prog := obs.StartProgress(label, n)
	hist := obs.Default.Histogram("pool." + label + ".case_seconds")
	mPoolQueue.Add(float64(n))
	ParallelForWorker(n, func(i, w int) {
		mPoolQueue.Add(-1)
		mPoolInflight.Add(1)
		cs := parent.Child("case")
		cs.SetInt("index", int64(i))
		cs.SetInt("worker", int64(w))
		start := time.Now()
		fn(i, w, cs)
		hist.Observe(time.Since(start).Seconds())
		cs.End()
		mPoolInflight.Add(-1)
		prog.Done()
	})
	prog.Finish()
}
