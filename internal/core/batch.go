package core

import (
	"fmt"

	"drbw/internal/features"
	"drbw/internal/program"
	"drbw/internal/topology"
)

// BatchJob names one case of a batch sweep: a benchmark builder plus the
// run configuration. Jobs may mix builders, so whole-suite sweeps (every
// benchmark × input × Tt-Nn) run through one pool.
type BatchJob struct {
	Builder program.Builder
	Cfg     program.Config
}

// BatchResult pairs one job's detection with its error. Batch runs never
// abort on a failing case: every job gets a result, and callers aggregate
// the errors while keeping the partial sweep.
type BatchResult struct {
	Detection *Detection
	Err       error
}

// DetectAll runs Detect over every job on a bounded GOMAXPROCS worker
// pool. Each job's randomness derives only from its own Cfg.Seed (the
// simulations share no state), so the results are identical to a serial
// loop in job order.
func (d *Detector) DetectAll(m *topology.Machine, jobs []BatchJob) []BatchResult {
	return d.batch(m, jobs, false)
}

// EvaluateAll is DetectAll plus the interleave ground-truth probe per job.
func (d *Detector) EvaluateAll(m *topology.Machine, jobs []BatchJob) []BatchResult {
	return d.batch(m, jobs, true)
}

func (d *Detector) batch(m *topology.Machine, jobs []BatchJob, evaluate bool) []BatchResult {
	label := "detect.sweep"
	if evaluate {
		label = "evaluate.sweep"
	}
	out := make([]BatchResult, len(jobs))
	// One feature accumulator per worker: extraction scratch is reused
	// across the cases a worker claims, so the sweep's allocation count
	// scales with the pool width, not the job count.
	accs := make([]*features.Accumulator, PoolWorkers())
	ParallelForLabeledWorker(len(jobs), label, func(i, w int) {
		var acc *features.Accumulator
		if w < len(accs) {
			if accs[w] == nil {
				accs[w] = features.NewAccumulator(m)
			}
			acc = accs[w]
		}
		j := jobs[i]
		dn, err := d.detect(j.Builder, m, j.Cfg, acc)
		if err == nil && evaluate {
			err = d.GroundTruth(dn)
		}
		if err != nil {
			out[i] = BatchResult{Err: fmt.Errorf("core: %s %s: %w", j.Builder.Name, j.Cfg, err)}
			return
		}
		out[i] = BatchResult{Detection: dn}
	})
	return out
}
