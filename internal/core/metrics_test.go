package core

import (
	"sync/atomic"
	"testing"

	"drbw/internal/obs"
)

// TestParallelForLabeledMetrics checks the pool instrumentation: every
// case lands in the latency histogram, the wrapping span records once, and
// the live queue/in-flight gauges return to their starting level.
func TestParallelForLabeledMetrics(t *testing.T) {
	const n = 24
	label := "test.pool"
	before := obs.Default.Snapshot()
	var ran atomic.Int64
	ParallelForLabeled(n, label, func(i int) { ran.Add(1) })
	after := obs.Default.Snapshot()

	if ran.Load() != n {
		t.Fatalf("ran %d of %d cases", ran.Load(), n)
	}
	hb := before.Histograms["pool."+label+".case_seconds"].Count
	ha := after.Histograms["pool."+label+".case_seconds"].Count
	if ha-hb != n {
		t.Fatalf("case_seconds count delta = %d, want %d", ha-hb, n)
	}
	if d := after.Counters["span."+label+".count"] - before.Counters["span."+label+".count"]; d != 1 {
		t.Fatalf("span count delta = %d, want 1", d)
	}
	if q := after.Gauges["pool.queue_depth"] - before.Gauges["pool.queue_depth"]; q != 0 {
		t.Fatalf("queue_depth did not drain: delta %g", q)
	}
	if f := after.Gauges["pool.inflight"] - before.Gauges["pool.inflight"]; f != 0 {
		t.Fatalf("inflight did not settle: delta %g", f)
	}

	// n = 0 must be a no-op (no span, no histogram entries).
	ParallelForLabeled(0, "test.pool.empty", func(i int) { t.Fatal("called") })
	if _, ok := obs.Default.Snapshot().Histograms["pool.test.pool.empty.case_seconds"]; ok {
		t.Fatal("empty pool registered a histogram")
	}
}
