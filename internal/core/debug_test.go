package core

import (
	"fmt"
	"os"
	"testing"

	"drbw/internal/micro"
	"drbw/internal/topology"
)

// TestDebugTrainingFeatures dumps per-run features 6/7 and peak util; run
// explicitly with: go test ./internal/core -run DebugTrainingFeatures -v -debug-train
func TestDebugTrainingFeatures(t *testing.T) {
	if os.Getenv("DRBW_DEBUG_TRAIN") == "" {
		t.Skip("set DRBW_DEBUG_TRAIN=1 to dump training features")
	}
	m := topology.XeonE5_4650()
	td, err := CollectTraining(m, DefaultEngineConfig(1), micro.TrainingSet())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range td.Runs {
		v := r.Vector
		fmt.Printf("%-22s %-10s %-4s f1=%.3f f2=%.3f f6=%7.0f f7=%6.0f f8=%7.0f f9=%6.0f f10=%8.0f f11=%6.0f util=%.2f ch=%v\n",
			r.Instance.Builder.Name, r.Instance.Cfg.Label(), r.Instance.Mode,
			v[0], v[1], v[5], v[6], v[7], v[8], v[9], v[10], r.PeakRemoteUtil, r.Channel)
	}
}
