// Package core is DR-BW's experiment driver: it wires the profiler
// (engine + PEBS collector), the feature extractor, the decision-tree
// classifier and the diagnoser into the pipelines the paper evaluates —
// training-set collection (Table II), classifier training and cross
// validation (Table III, Figure 3), and per-case detection with the
// interleave ground truth (Tables IV, V, VI).
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"drbw/internal/diagnose"
	"drbw/internal/dtree"
	"drbw/internal/engine"
	"drbw/internal/features"
	"drbw/internal/micro"
	"drbw/internal/optimize"
	"drbw/internal/pebs"
	"drbw/internal/program"
	"drbw/internal/topology"
)

// DefaultEngineConfig is the simulation fidelity used by the experiments:
// a window long enough to expose cache residency of the friendly inputs.
func DefaultEngineConfig(seed uint64) engine.Config {
	return engine.Config{
		Window:        24576,
		Warmup:        6144,
		ReservoirSize: 2048,
		Seed:          seed,
	}
}

// DefaultCollectorConfig mirrors the paper's sampling setup: period 1/2000,
// PEBS latency threshold, bounded memory, a small per-sample cost.
func DefaultCollectorConfig() pebs.Config {
	return pebs.Config{
		Period:  pebs.DefaultPeriod,
		MaxKept: 120000,
		// A PEBS assist plus buffer drain costs a few hundred nanoseconds;
		// at 2.7 GHz that is on the order of a thousand cycles per sample.
		OverheadCycles: 1200,
	}
}

// TrainingRun is one profiled mini-program run with its extracted features.
type TrainingRun struct {
	Instance micro.Instance
	// Channel is the remote channel whose feature vector represents the
	// run (the busiest one; contention, when present, lives there).
	Channel topology.Channel
	Vector  features.Vector
	// Candidates carries the full candidate statistics of the run's source
	// socket batch, for the Table I selection experiment.
	Candidates map[string]float64
	// PeakRemoteUtil is simulator ground truth used only for sanity checks.
	PeakRemoteUtil float64
}

// TrainingData is the collected Table II dataset.
type TrainingData struct {
	Runs    []TrainingRun
	Dataset *dtree.Dataset
}

// Summary counts runs per mini-program and mode, the content of Table II.
func (td *TrainingData) Summary() map[string]map[features.Label]int {
	out := map[string]map[features.Label]int{}
	for _, r := range td.Runs {
		name := baseName(r.Instance.Builder.Name)
		if out[name] == nil {
			out[name] = map[features.Label]int{}
		}
		out[name][r.Instance.Mode]++
	}
	return out
}

func baseName(name string) string {
	for _, b := range []string{"sumv", "dotv", "countv", "bandit"} {
		if len(name) >= len(b) && name[:len(b)] == b {
			return b
		}
	}
	return name
}

// busiestRemoteChannel picks the remote channel carrying the most samples;
// when no remote channel saw traffic it falls back to the channel leaving
// the source socket with the most samples, whose vector then has zero
// remote features — a clean "good" example.
func busiestRemoteChannel(m *topology.Machine, samples []pebs.Sample) topology.Channel {
	byChannel := pebs.Associate(samples)
	best := topology.Channel{Src: 0, Dst: topology.NodeID(1 % m.Nodes())}
	bestN := -1
	for _, ch := range m.RemoteChannels() {
		if n := len(byChannel[ch]); n > bestN {
			best, bestN = ch, n
		}
	}
	if bestN > 0 {
		return best
	}
	// No remote traffic at all: anchor on the busiest source socket.
	bySrc := pebs.BySourceNode(samples)
	bestSrc, n := topology.NodeID(0), -1
	for src, ss := range bySrc {
		if len(ss) > n {
			bestSrc, n = src, len(ss)
		}
	}
	return topology.Channel{Src: bestSrc, Dst: topology.NodeID((int(bestSrc) + 1) % m.Nodes())}
}

// peakRemoteUtil extracts the simulator's worst inter-socket link
// utilization (local controllers excluded: saturating your own node's
// controller is not *remote* contention).
func peakRemoteUtil(m *topology.Machine, res *engine.Result) float64 {
	maxU := 0.0
	for _, ch := range m.RemoteChannels() {
		if u := res.Channel(ch).PeakUtil; u > maxU {
			maxU = u
		}
	}
	return maxU
}

// poolWorkers overrides the batch-pool width when nonzero; see
// SetPoolWorkers.
var poolWorkers int32

// SetPoolWorkers sets the process-wide worker count used by ParallelFor
// (and so every batch pipeline in this package). 0 — the default — means
// GOMAXPROCS; negative values are treated as 0. The CLIs' -workers flags
// route here.
func SetPoolWorkers(n int) {
	if n < 0 {
		n = 0
	}
	atomic.StoreInt32(&poolWorkers, int32(n))
}

// PoolWorkers resolves the effective batch-pool width.
func PoolWorkers() int {
	if w := int(atomic.LoadInt32(&poolWorkers)); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelFor runs fn(i) for every i in [0, n) on a bounded pool of
// PoolWorkers workers — the fan-out every batch pipeline in this package
// shares. Work is claimed through a single atomic counter rather than a
// channel, so the dispatching goroutine never serializes the pool. fn must
// write only to its own index's state; ParallelFor returns once every call
// has finished.
func ParallelFor(n int, fn func(i int)) {
	ParallelForWorker(n, func(i, _ int) { fn(i) })
}

// ParallelForWorker is ParallelFor with the worker index exposed: fn(i, w)
// runs item i on worker w, where w is in [0, workers) and at most one item
// runs on a given w at a time. Batch consumers key reusable scratch —
// decode buffers, feature accumulators — by w, turning per-item allocations
// into per-worker ones without any locking.
func ParallelForWorker(n int, fn func(i, worker int)) {
	ParallelForWorkers(n, 0, fn)
}

// ParallelForWorkers is ParallelForWorker with an explicit pool width:
// callers that must bound their own fan-out independently of the
// process-wide pool (the placement search's worker-count-deterministic
// waves) pass workers > 0; workers <= 0 uses PoolWorkers.
func ParallelForWorkers(n, workers int, fn func(i, worker int)) {
	if workers <= 0 {
		workers = PoolWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	var wg sync.WaitGroup
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				fn(i, w)
			}
		}(w)
	}
	wg.Wait()
}

// CollectTraining profiles every instance of the training set and extracts
// its labeled feature vector. Instances are independent simulations and
// fan out over GOMAXPROCS workers; seeds come from the instances, so the
// result is identical to a serial collection.
func CollectTraining(m *topology.Machine, ecfg engine.Config, set []micro.Instance) (*TrainingData, error) {
	runs := make([]TrainingRun, len(set))
	errs := make([]error, len(set))
	ParallelForLabeled(len(set), "train.collect", func(i int) {
		runs[i], errs[i] = collectOne(m, ecfg, set[i])
	})

	td := &TrainingData{Dataset: &dtree.Dataset{
		FeatureNames: featureNames(),
		ClassNames:   []string{features.Good.String(), features.RMC.String()},
	}}
	for i := range set {
		if errs[i] != nil {
			return nil, fmt.Errorf("core: training instance %d (%s): %w", i, set[i].Builder.Name, errs[i])
		}
		td.Runs = append(td.Runs, runs[i])
		td.Dataset.Examples = append(td.Dataset.Examples, dtree.Example{
			X: runs[i].Vector[:], Y: int(set[i].Mode),
		})
	}
	return td, nil
}

// collectOne profiles one training instance.
func collectOne(m *topology.Machine, ecfg engine.Config, inst micro.Instance) (TrainingRun, error) {
	p, err := inst.Builder.New(m, inst.Cfg)
	if err != nil {
		return TrainingRun{}, err
	}
	ccfg := DefaultCollectorConfig()
	ccfg.Flavor = ecfg.SamplerFlavor
	col := pebs.NewCollector(ccfg, inst.Cfg.Seed+7)
	run := ecfg
	run.Collector = col
	run.Seed = inst.Cfg.Seed + 13
	res, err := p.Run(run)
	if err != nil {
		return TrainingRun{}, err
	}
	samples := col.Samples()
	mergeCollectorStats(col)
	ch := busiestRemoteChannel(m, samples)
	vec := features.Extract(samples, ch, col.Weight())

	// Candidate stats over the channel's source-socket batch.
	var batch []pebs.Sample
	for _, s := range samples {
		if s.SrcNode == ch.Src {
			batch = append(batch, s)
		}
	}
	return TrainingRun{
		Instance:       inst,
		Channel:        ch,
		Vector:         vec,
		Candidates:     features.Candidates(batch, col.Weight()),
		PeakRemoteUtil: peakRemoteUtil(m, res),
	}, nil
}

func featureNames() []string {
	out := make([]string, features.NumFeatures)
	copy(out, features.Names[:])
	return out
}

// DefaultTreeConfig matches the paper's compact tree (Figure 3 has depth 3).
func DefaultTreeConfig() dtree.Config {
	return dtree.Config{MaxDepth: 4, MinLeaf: 3}
}

// TrainClassifier fits the decision tree on the collected data.
func TrainClassifier(td *TrainingData, cfg dtree.Config) (*dtree.Tree, error) {
	return dtree.Train(td.Dataset, cfg)
}

// CrossValidate runs the paper's stratified 10-fold validation.
func CrossValidate(td *TrainingData, cfg dtree.Config) (*dtree.ConfusionMatrix, error) {
	return dtree.CrossValidate(td.Dataset, cfg, 10, 42)
}

// SelectionExperiment reproduces the Table I feature-selection filter from
// the collected candidate statistics.
func (td *TrainingData) SelectionExperiment() []string {
	var runs []features.LabeledCandidates
	for _, r := range td.Runs {
		runs = append(runs, features.LabeledCandidates{
			Program: baseName(r.Instance.Builder.Name),
			Mode:    r.Instance.Mode,
			Values:  r.Candidates,
		})
	}
	return features.SelectRelevant(runs, 0)
}

// Detector applies a trained classifier to benchmark runs.
type Detector struct {
	Tree *dtree.Tree
	// MinSamples is the minimum per-channel sample count needed to classify
	// a channel; sparser channels carry no usable signal.
	MinSamples int
	// Ecfg is the engine configuration for detection runs.
	Ecfg engine.Config
	// Ccfg configures the per-run PEBS collector; its Flavor is overridden
	// by Ecfg.SamplerFlavor at run time.
	Ccfg pebs.Config
}

// NewDetector builds a detector with the default thresholds.
func NewDetector(tree *dtree.Tree, ecfg engine.Config) *Detector {
	return &Detector{Tree: tree, MinSamples: 25, Ecfg: ecfg, Ccfg: DefaultCollectorConfig()}
}

// CaseResult is the outcome of one benchmark case (input × Tt-Nn config).
type CaseResult struct {
	Bench    string
	Cfg      program.Config
	Detected bool // classifier says rmc (rule 1 of Section VII-A)
	// Contended lists the channels classified rmc.
	Contended []topology.Channel
	// Actual is the interleave ground truth; valid when Evaluated.
	Actual    bool
	Evaluated bool
	// InterleaveSpeedup is the ground-truth probe's speedup.
	InterleaveSpeedup float64
}

// Detection is the single-pass outcome of profiling one case: the
// classification verdict plus everything later pipeline stages need — the
// simulated program (for its heap), the retained samples and the collector
// weight — so diagnosis, evaluation and reporting never re-run the
// simulation.
type Detection struct {
	CaseResult
	// Program is the simulated program the samples came from; its heap
	// drives object attribution.
	Program *program.Program
	// Samples are the collector's retained samples, scaled by Weight.
	Samples []pebs.Sample
	// Weight scales kept samples to true counts (1 unless the collector hit
	// its memory bound).
	Weight float64

	builder program.Builder
}

// Builder returns the builder that materialized the detection's program,
// so downstream stages (the placement search) can rebuild fresh instances
// of the same case for candidate runs.
func (dn *Detection) Builder() program.Builder { return dn.builder }

// Detect runs one case with profiling and classifies every remote channel;
// the case is rmc if at least one channel is (the paper's rule 1). This is
// the only simulation of the case the pipeline performs: the returned
// Detection carries the run's program, samples and weight for diagnosis.
func (d *Detector) Detect(b program.Builder, m *topology.Machine, cfg program.Config) (*Detection, error) {
	return d.detect(b, m, cfg, nil)
}

// detect is Detect with optional reusable feature-extraction scratch; the
// batch pipeline passes one accumulator per worker so a sweep allocates
// extraction state per worker, not per case. nil means allocate fresh.
func (d *Detector) detect(b program.Builder, m *topology.Machine, cfg program.Config, acc *features.Accumulator) (*Detection, error) {
	p, err := b.New(m, cfg)
	if err != nil {
		return nil, err
	}
	ccfg := d.Ccfg
	ccfg.Flavor = d.Ecfg.SamplerFlavor
	col := pebs.NewCollector(ccfg, cfg.Seed+101)
	run := d.Ecfg
	run.Collector = col
	run.Seed = cfg.Seed + 103
	if _, err := p.Run(run); err != nil {
		return nil, err
	}
	dn := &Detection{
		CaseResult: CaseResult{Bench: b.Name, Cfg: cfg},
		Program:    p,
		Samples:    col.Samples(),
		Weight:     col.Weight(),
		builder:    b,
	}
	mergeCollectorStats(col)
	if acc == nil {
		acc = features.NewAccumulator(m)
	} else {
		acc.Reset()
	}
	acc.Add(dn.Samples)
	for ch, vec := range acc.Vectors(dn.Weight, d.MinSamples) {
		v := vec
		label := features.Label(d.Tree.Predict(v[:]))
		CountPrediction(label)
		if label == features.RMC {
			dn.Detected = true
			dn.Contended = append(dn.Contended, ch)
		}
	}
	sortChannels(dn.Contended)
	CountDetectCase(dn.Detected)
	return dn, nil
}

func sortChannels(chs []topology.Channel) {
	sort.Slice(chs, func(i, j int) bool {
		return chs[i].Src < chs[j].Src ||
			(chs[i].Src == chs[j].Src && chs[i].Dst < chs[j].Dst)
	})
}

// Diagnose attributes the contended channels' samples to data objects using
// the detection's retained state — no re-simulation. It returns an empty
// report when nothing was detected.
func (dn *Detection) Diagnose() *diagnose.Report {
	if !dn.Detected {
		return &diagnose.Report{}
	}
	return diagnose.Analyze(dn.Program.Heap, dn.Samples, dn.Contended, dn.Weight)
}

// GroundTruth runs the paper's probe (whole-program interleave, ≥10%
// speedup ⇒ actually contended) and records the verdict in the detection.
// The probe simulates the interleaved variant; the profiled run itself is
// not repeated.
func (d *Detector) GroundTruth(dn *Detection) error {
	m := dn.Program.Machine
	ecfg := d.Ecfg
	ecfg.Seed = dn.Cfg.Seed + 211
	actual, comp, err := optimize.ActualRMC(dn.builder, m, dn.Cfg, ecfg)
	if err != nil {
		return err
	}
	dn.Actual = actual
	dn.Evaluated = true
	dn.InterleaveSpeedup = comp.Speedup()
	return nil
}

// Evaluate is Detect plus GroundTruth: one profiled simulation, then the
// interleave probe.
func (d *Detector) Evaluate(b program.Builder, m *topology.Machine, cfg program.Config) (*Detection, error) {
	dn, err := d.Detect(b, m, cfg)
	if err != nil {
		return nil, err
	}
	if err := d.GroundTruth(dn); err != nil {
		return nil, err
	}
	return dn, nil
}

// BenchmarkSummary aggregates one benchmark's cases (a Table V row).
type BenchmarkSummary struct {
	Name     string
	Cases    int
	Actual   int // ground-truth rmc cases
	Detected int // classifier rmc cases
	// Results carries the per-case detail.
	Results []CaseResult
}

// Class applies the paper's rule 2: a benchmark is rmc if any case is.
func (s BenchmarkSummary) Class() features.Label {
	if s.Detected > 0 {
		return features.RMC
	}
	return features.Good
}

// EvaluateBenchmark sweeps every input × standard configuration of one
// benchmark. seedBase decorrelates benchmarks.
func (d *Detector) EvaluateBenchmark(b program.Builder, m *topology.Machine, seedBase uint64) (BenchmarkSummary, error) {
	sum := BenchmarkSummary{Name: b.Name}
	seed := seedBase
	for _, input := range b.Inputs {
		for _, cfg := range program.StandardConfigs() {
			c := cfg
			c.Input = input
			c.Seed = seed
			seed += 17
			dn, err := d.Evaluate(b, m, c)
			if err != nil {
				return sum, fmt.Errorf("core: %s %s: %w", b.Name, c, err)
			}
			sum.Cases++
			if dn.Actual {
				sum.Actual++
			}
			if dn.Detected {
				sum.Detected++
			}
			sum.Results = append(sum.Results, dn.CaseResult)
		}
	}
	return sum, nil
}

// CaseStats holds the Table VI accuracy metrics.
type CaseStats struct {
	Correctness float64
	FPR         float64
	FNR         float64
}

// AccuracyMatrix pools per-case outcomes into the paper's Table VI
// confusion matrix (positive class: rmc).
func AccuracyMatrix(sums []BenchmarkSummary) *dtree.ConfusionMatrix {
	cm := dtree.NewConfusionMatrix([]string{"good", "rmc"})
	for _, s := range sums {
		for _, r := range s.Results {
			a, p := 0, 0
			if r.Actual {
				a = 1
			}
			if r.Detected {
				p = 1
			}
			cm.Add(a, p)
		}
	}
	return cm
}
