package core

import (
	"strings"
	"testing"

	"drbw/internal/engine"
	"drbw/internal/features"
	"drbw/internal/micro"
	"drbw/internal/program"
	"drbw/internal/topology"
	"drbw/internal/workloads"
)

func testEcfg() engine.Config {
	return engine.Config{Window: 4096, Warmup: 2048, ReservoirSize: 512, Seed: 3}
}

// reducedSet takes every stride-th training instance, preserving label mix.
func reducedSet(stride int) []micro.Instance {
	full := micro.TrainingSet()
	var out []micro.Instance
	for i := 0; i < len(full); i += stride {
		out = append(out, full[i])
	}
	return out
}

// trainReduced collects and trains on a 48-run subset; shared across tests
// via sync.Once-style caching in TestMain would be overkill — each caller
// pays ~2s.
func trainReduced(t *testing.T) (*TrainingData, *Detector) {
	t.Helper()
	m := topology.XeonE5_4650()
	td, err := CollectTraining(m, testEcfg(), reducedSet(4))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := TrainClassifier(td, DefaultTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	return td, NewDetector(tree, testEcfg())
}

func TestCollectTrainingShape(t *testing.T) {
	td, _ := trainReduced(t)
	if len(td.Runs) != 48 {
		t.Fatalf("reduced set has %d runs", len(td.Runs))
	}
	if len(td.Dataset.Examples) != 48 {
		t.Fatalf("dataset has %d examples", len(td.Dataset.Examples))
	}
	sum := td.Summary()
	for _, prog := range []string{"sumv", "dotv", "countv", "bandit"} {
		if sum[prog] == nil {
			t.Errorf("no runs for %s", prog)
		}
	}
	// Label sanity: every instance labeled rmc must show a saturated remote
	// path in the simulator, every good instance must not (the paper's
	// "manual examination" step).
	for _, r := range td.Runs {
		if r.Instance.Mode == features.RMC && r.PeakRemoteUtil < 0.9 {
			t.Errorf("%s %s labeled rmc but peak link util %.2f",
				r.Instance.Builder.Name, r.Instance.Cfg, r.PeakRemoteUtil)
		}
		if r.Instance.Mode == features.Good && r.PeakRemoteUtil > 1.0 {
			t.Errorf("%s %s labeled good but peak link util %.2f",
				r.Instance.Builder.Name, r.Instance.Cfg, r.PeakRemoteUtil)
		}
	}
}

func TestTrainedTreeSeparatesTrainingData(t *testing.T) {
	td, d := trainReduced(t)
	wrong := 0
	for i, e := range td.Dataset.Examples {
		if d.Tree.Predict(e.X) != e.Y {
			wrong++
			t.Logf("misclassified: %s %s", td.Runs[i].Instance.Builder.Name, td.Runs[i].Instance.Cfg)
		}
	}
	if wrong > 2 {
		t.Errorf("%d/48 training errors", wrong)
	}
	// The tree should lean on the remote-DRAM features the paper's tree
	// uses (feature 6: remote count, feature 7: remote latency — indices
	// 5/6 here) or the closely correlated latency-ratio features.
	used := d.Tree.UsedFeatures()
	relevant := false
	for _, f := range used {
		if f <= 6 { // latency ratios or remote count/latency
			relevant = true
		}
	}
	if !relevant {
		t.Errorf("tree uses features %v, none remote/latency related", used)
	}
}

func TestCrossValidationAccuracy(t *testing.T) {
	td, _ := trainReduced(t)
	cm, err := CrossValidate(td, DefaultTreeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() != 48 {
		t.Fatalf("CV total %d", cm.Total())
	}
	if acc := cm.Accuracy(); acc < 0.85 {
		t.Errorf("10-fold CV accuracy %.2f; paper reports 97.4%% on the full set", acc)
	}
}

func TestSelectionExperimentKeepsRemoteFeatures(t *testing.T) {
	td, _ := trainReduced(t)
	kept := td.SelectionExperiment()
	joined := strings.Join(kept, ",")
	if !strings.Contains(joined, "remote") && !strings.Contains(joined, "latency") {
		t.Errorf("selection kept %v; expected remote/latency features", kept)
	}
}

func TestDetectContendedBenchmark(t *testing.T) {
	_, d := trainReduced(t)
	m := topology.XeonE5_4650()
	sc, _ := workloads.ByName("Streamcluster")
	dn, err := d.Detect(sc.Builder, m, program.Config{
		Threads: 32, Nodes: 4, Input: "native", Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dn.Detected {
		t.Error("streamcluster native T32-N4 not detected as rmc")
	}
	if len(dn.Contended) == 0 {
		t.Error("no contended channels reported")
	}
	if dn.Program == nil || len(dn.Samples) == 0 || dn.Weight <= 0 {
		t.Error("detection did not retain the run's program/samples/weight")
	}
	for _, ch := range dn.Contended {
		if ch.Local() {
			t.Errorf("local channel %v flagged; detection is per remote channel", ch)
		}
	}
}

func TestDetectFriendlyBenchmark(t *testing.T) {
	_, d := trainReduced(t)
	m := topology.XeonE5_4650()
	bs, _ := workloads.ByName("Blackscholes")
	dn, err := d.Detect(bs.Builder, m, program.Config{
		Threads: 64, Nodes: 4, Input: "native", Seed: 78,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dn.Detected {
		t.Errorf("blackscholes detected rmc on channels %v", dn.Contended)
	}
	if rep := dn.Diagnose(); len(rep.Overall) != 0 {
		t.Error("diagnosis of an undetected case should be empty")
	}
}

func TestEvaluateCaseGroundTruth(t *testing.T) {
	_, d := trainReduced(t)
	m := topology.XeonE5_4650()
	sc, _ := workloads.ByName("Streamcluster")
	dn, err := d.Evaluate(sc.Builder, m, program.Config{
		Threads: 32, Nodes: 4, Input: "native", Seed: 79,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dn.Evaluated || !dn.Actual {
		t.Errorf("ground truth should confirm contention (speedup %.2f)", dn.InterleaveSpeedup)
	}
	if dn.Actual && !dn.Detected {
		t.Error("false negative: actually contended but not detected")
	}
}

func TestDiagnoseFindsBlock(t *testing.T) {
	_, d := trainReduced(t)
	m := topology.XeonE5_4650()
	sc, _ := workloads.ByName("Streamcluster")
	dn, err := d.Detect(sc.Builder, m, program.Config{
		Threads: 32, Nodes: 4, Input: "native", Seed: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dn.Detected {
		t.Fatal("contention not detected; cannot diagnose")
	}
	rep := dn.Diagnose()
	if len(rep.Overall) == 0 {
		t.Fatal("empty diagnosis")
	}
	if top := rep.Overall[0].Object.Name; top != "block" {
		t.Errorf("top CF object %q, want block (paper Figure 4b)", top)
	}
}

func TestAccuracyMatrix(t *testing.T) {
	sums := []BenchmarkSummary{{
		Name: "x",
		Results: []CaseResult{
			{Actual: true, Detected: true},
			{Actual: false, Detected: false},
			{Actual: false, Detected: true},
		},
	}}
	cm := AccuracyMatrix(sums)
	if cm.Total() != 3 {
		t.Fatalf("total %d", cm.Total())
	}
	if cm.Counts[0][1] != 1 || cm.Counts[1][1] != 1 || cm.Counts[0][0] != 1 {
		t.Errorf("matrix wrong: %v", cm.Counts)
	}
}

func TestBenchmarkSummaryClass(t *testing.T) {
	s := BenchmarkSummary{Detected: 0}
	if s.Class() != features.Good {
		t.Error("no detections should be good")
	}
	s.Detected = 1
	if s.Class() != features.RMC {
		t.Error("any detection should be rmc")
	}
}
