// Package obs is DR-BW's observability substrate: a zero-dependency
// metrics registry (counters, gauges, histograms), named timing spans for
// pipeline phases, leveled structured logging on log/slog, and live
// introspection (expvar publication plus an opt-in debug HTTP server with
// /metrics and net/http/pprof).
//
// Everything is safe for concurrent use. Recording is designed for the
// simulator's hot paths: counters stripe their cells across cache lines so
// concurrent batch workers do not serialize on one word, gauges and
// histogram buckets are single atomics, and the engine itself records into
// a plain per-run stats struct that is merged here only at phase
// boundaries (see DESIGN.md, "Observability"), so the per-access loop
// carries no instrumentation at all.
//
// Snapshots are deterministic: metric names are emitted in sorted order and
// every derived value (quantiles, averages) is a pure function of the
// recorded data, so two identical runs produce byte-identical /metrics
// output.
package obs

import (
	"encoding/json"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
)

// stripes is the number of independent cells a Counter spreads its
// increments over. Must be a power of two.
const stripes = 8

// cell is one cache-line-padded counter stripe.
type cell struct {
	v atomic.Int64
	_ [56]byte // pad to 64 bytes so stripes do not false-share
}

// Counter is a monotonically increasing striped atomic counter. The stripe
// is picked with the runtime's per-P random source, so concurrent writers
// mostly hit distinct cache lines; Value folds the stripes.
type Counter struct {
	cells [stripes]cell
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	c.cells[rand.Uint32()&(stripes-1)].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (compare-and-swap loop; gauges are written at
// job granularity, not per access, so contention is negligible).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Max raises the gauge to v if v exceeds the current value.
func (g *Gauge) Max(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bucket geometry: exponential base-2 boundaries starting at
// histFirstLE. The default geometry covers 1µs .. ~4295s, which spans
// everything the pipeline times (per-case latencies, phase spans) when
// observations are in seconds; raw counts (sample latencies in cycles)
// land in the overflow tail and are still summarized exactly by
// count/sum/min/max.
const (
	histBuckets = 33
	histFirstLE = 1e-6
)

// histLE returns the inclusive upper bound of bucket i.
func histLE(i int) float64 { return histFirstLE * float64(uint64(1)<<uint(i)) }

// Histogram records a distribution of float64 observations into fixed
// exponential buckets with atomic cells; the buckets themselves act as the
// sharding, and the scalar aggregates are CAS-maintained.
type Histogram struct {
	buckets [histBuckets + 1]atomic.Uint64 // last cell is the overflow tail
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // stored as math.Float64bits; valid when count > 0
	maxBits atomic.Uint64
	once    sync.Once
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.once.Do(func() {
		h.minBits.Store(math.Float64bits(math.Inf(1)))
		h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	})
	i := 0
	if v > histFirstLE {
		i = int(math.Ceil(math.Log2(v / histFirstLE)))
		if i > histBuckets {
			i = histBuckets
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bucket is one non-empty histogram bucket in a snapshot. LE is the
// inclusive upper bound; the overflow tail reports LE as +Inf.
type Bucket struct {
	LE float64 `json:"le"`
	N  uint64  `json:"n"`
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Avg     float64  `json:"avg"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// snapshot captures the histogram. Concurrent observers may land between
// the bucket reads; the result is still a valid recent state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.Sum()}
	if s.Count == 0 {
		return s
	}
	s.Min = math.Float64frombits(h.minBits.Load())
	s.Max = math.Float64frombits(h.maxBits.Load())
	s.Avg = s.Sum / float64(s.Count)
	var counts [histBuckets + 1]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
		if counts[i] > 0 {
			le := math.Inf(1)
			if i < histBuckets {
				le = histLE(i)
			}
			s.Buckets = append(s.Buckets, Bucket{LE: le, N: counts[i]})
		}
	}
	s.P50 = quantile(&counts, total, 0.50)
	s.P90 = quantile(&counts, total, 0.90)
	s.P99 = quantile(&counts, total, 0.99)
	return s
}

// quantile estimates the q-quantile from the bucket counts, interpolating
// linearly inside the containing bucket.
func quantile(counts *[histBuckets + 1]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo := 0.0
			if i > 0 {
				lo = histLE(i - 1)
			}
			hi := histLE(i)
			if i >= histBuckets {
				return lo // overflow tail: report its lower bound
			}
			frac := (rank - cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return histLE(histBuckets - 1)
}

// Registry holds named metrics. The zero value is not usable; use
// NewRegistry or the package-level Default.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Default is the process-wide registry every instrumented layer records
// into and the introspection endpoints expose.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use. Handles are
// stable: callers may cache them and Add without further lookups.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time export of a registry. encoding/json renders
// map keys sorted, so marshaling a snapshot is deterministic.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.histograms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Reset drops every registered metric. Cached handles keep recording into
// the detached metrics; intended for tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.histograms = map[string]*Histogram{}
}

// SnapshotJSON renders the default registry's snapshot as indented JSON —
// the payload of /metrics and of the CLIs' -metrics flag.
func SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(Default.Snapshot(), "", "  ")
}
