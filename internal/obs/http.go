package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar registration (expvar panics on duplicate
// names).
var publishOnce sync.Once

// PublishExpvar publishes the default registry's snapshot under the expvar
// name "drbw", alongside the standard "memstats"/"cmdline" vars, so any
// expvar scraper (or the stock /debug/vars handler) sees the pipeline
// metrics. Safe to call repeatedly.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("drbw", expvar.Func(func() any { return Default.Snapshot() }))
	})
}

// Handler returns the debug mux served by StartServer:
//
//	/metrics          JSON snapshot of the default registry
//	/metrics?format=prom  Prometheus text exposition of the same registry
//	/healthz          liveness probe
//	/debug/flight     flight-recorder dump (recent span/metric/error events)
//	/debug/vars       expvar (includes the "drbw" snapshot)
//	/debug/pprof/...  the standard pprof handlers (profile, heap, trace, ...)
func Handler() http.Handler {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write(PromText())
			return
		}
		b, err := SnapshotJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		DumpFlight(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer binds addr (e.g. "localhost:6060" or ":0") and serves
// Handler in a background goroutine. The caller owns the returned server
// and should Close it on shutdown; long batch runs leave it up so
// /metrics and /debug/pprof stay reachable for the whole sweep.
func StartServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler()}}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			Logger().Error("obs: debug server", "addr", ln.Addr().String(), "err", err)
		}
	}()
	Logger().Info("obs: debug server listening", "addr", ln.Addr().String())
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
