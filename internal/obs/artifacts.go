package obs

import (
	"fmt"
	"os"
)

// WriteTraceExport writes a stopped tracer's spans to path in the given
// format. CLIs call it from their artifact-flush path after StopTracing.
func WriteTraceExport(tr *Tracer, path string, format TraceExportFormat) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	if err := tr.Export(f, format); err != nil {
		f.Close()
		return fmt.Errorf("obs: write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	return nil
}
