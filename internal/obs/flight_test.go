package obs

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestFlightRingBounded overfills the recorder and checks that retention
// stays within the stripe capacity and events come back in sequence order.
func TestFlightRingBounded(t *testing.T) {
	const total = flightStripes*flightPerStripe + 500
	for i := 0; i < total; i++ {
		RecordEvent(EventMark, "fill", int64(i), 0)
	}
	events := FlightEvents()
	if len(events) == 0 || len(events) > flightStripes*flightPerStripe {
		t.Fatalf("%d retained events, want (0, %d]", len(events), flightStripes*flightPerStripe)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("events out of order at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
	// The newest event must have survived the overwrites.
	last := events[len(events)-1]
	if last.Name != "fill" || last.A != total-1 {
		t.Fatalf("newest retained event = %+v, want fill a=%d", last, total-1)
	}
}

// TestFlightRecordConcurrent hammers the ring from many goroutines under
// -race; every snapshot taken mid-stream must stay ordered.
func TestFlightRecordConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				RecordEvent(EventMetric, "conc", int64(i), 0)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			evs := FlightEvents()
			for j := 1; j < len(evs); j++ {
				if evs[j].Seq <= evs[j-1].Seq {
					t.Errorf("snapshot out of order")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
}

// TestFlightFailure: a nil error is a no-op, a real error is recorded with
// its text and dumped to the configured sink.
func TestFlightFailure(t *testing.T) {
	if err := FlightFailure("op", nil); err != nil {
		t.Fatalf("nil error returned %v", err)
	}

	var buf bytes.Buffer
	SetFlightSink(&buf)
	t.Cleanup(func() { SetFlightSink(nil) })

	in := errors.New("recording has no samples")
	if err := FlightFailure("analyze.trace_file", in); err != in {
		t.Fatalf("error not returned unchanged: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "analyze.trace_file failed: recording has no samples") {
		t.Fatalf("dump missing failure line:\n%s", out)
	}
	if !strings.Contains(out, "flight recorder:") {
		t.Fatalf("dump missing recorder header:\n%s", out)
	}
	if !strings.Contains(out, "error") || !strings.Contains(out, "recording has no samples") {
		t.Fatalf("dump missing the error event:\n%s", out)
	}

	// With the sink cleared, failures record but stay silent.
	SetFlightSink(nil)
	buf.Reset()
	FlightFailure("quiet.op", errors.New("x"))
	if buf.Len() != 0 {
		t.Fatalf("sink disabled but dump wrote %q", buf.String())
	}
}

// TestDumpFlightFormat spot-checks the dump's per-kind rendering.
func TestDumpFlightFormat(t *testing.T) {
	RecordEvent(EventSpan, "engine.phase", 1500, 7)
	var buf bytes.Buffer
	DumpFlight(&buf)
	if !strings.Contains(buf.String(), "engine.phase dur=1.5µs span=7") {
		t.Fatalf("span event not rendered:\n%s", lastLines(buf.String(), 5))
	}
}

func lastLines(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return fmt.Sprint(strings.Join(lines, "\n"))
}
