package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
)

// logger is the package-wide structured logger. The default writes
// warnings and errors to stderr as text, so library consumers and tests
// see nothing unless something is wrong; CLIs lower the level with
// ConfigureLogging.
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(newTextLogger(os.Stderr, slog.LevelWarn))
}

func newTextLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// Logger returns the current structured logger. Instrumented layers log
// through it with component attributes, e.g.
// obs.Logger().Info("msg", "component", "engine", ...).
func Logger() *slog.Logger { return logger.Load() }

// SetLogger replaces the package logger (nil restores the default).
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = newTextLogger(os.Stderr, slog.LevelWarn)
	}
	logger.Store(l)
}

// ParseLevel maps a CLI level name to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning", "":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", s)
	}
}

// ConfigureLogging installs a text handler on w at the named level — the
// one-call setup the CLIs use for their -log flag.
func ConfigureLogging(w io.Writer, level string) error {
	lv, err := ParseLevel(level)
	if err != nil {
		return err
	}
	logger.Store(newTextLogger(w, lv))
	return nil
}
