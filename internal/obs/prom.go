package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format 0.0.4) over the metrics registry, so
// standard scrapers work against the debug server without parsing the JSON
// snapshot. Rendering is deterministic: families emit in sorted name
// order, histogram buckets in ascending le order, and every number through
// strconv's shortest-round-trip formatting.

// promPrefix namespaces every exported metric.
const promPrefix = "drbw_"

// promName sanitizes a registry metric name into a legal Prometheus metric
// name: the drbw_ prefix plus the name with every run of characters
// outside [a-zA-Z0-9_:] collapsed to one underscore.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(name))
	b.WriteString(promPrefix)
	lastUnderscore := false
	for _, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		if r == '_' && lastUnderscore {
			continue
		}
		lastUnderscore = r == '_'
		b.WriteRune(r)
	}
	return b.String()
}

// promFloat renders a value in exposition syntax.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePromText renders a snapshot in the exposition format.
func WritePromText(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// Registry buckets are per-bucket counts; exposition buckets are
		// cumulative and must end at le="+Inf" equal to the total count.
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.N
			if math.IsInf(b.LE, 1) {
				continue // folded into the +Inf bucket below
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(b.LE), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// PromText renders the default registry in the exposition format — the
// payload of /metrics?format=prom.
func PromText() []byte {
	var b strings.Builder
	WritePromText(&b, Default.Snapshot()) // strings.Builder never errors
	return []byte(b.String())
}
