package obs

import (
	"math"
	"regexp"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"engine.runs":                 "drbw_engine_runs",
		"pool.analyze-x.case_seconds": "drbw_pool_analyze_x_case_seconds",
		"engine.channel.util.N1->N0":  "drbw_engine_channel_util_N1_N0",
		"weird..name__with--runs":     "drbw_weird_name_with_runs",
		"colons:are:legal":            "drbw_colons:are:legal",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// promLineRE is the exposition lint: every line is a comment or a
// `name{labels} value` sample. The same regex (modulo shell quoting) runs
// in CI against the live /metrics?format=prom endpoint.
var promLineRE = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]Inf|NaN))$`)

// TestPromExposition renders a mixed registry and checks counter suffixes,
// cumulative histogram buckets and that every line passes the lint.
func TestPromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.runs").Add(3)
	r.Gauge("pool.inflight").Set(2.5)
	h := r.Histogram("span.analyze.seconds")
	h.Observe(0.5e-6) // bucket 0
	h.Observe(0.5e-6)
	h.Observe(3e-6) // bucket 2 (le 4e-6)
	var b strings.Builder
	if err := WritePromText(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE drbw_engine_runs_total counter",
		"drbw_engine_runs_total 3",
		"# TYPE drbw_pool_inflight gauge",
		"drbw_pool_inflight 2.5",
		"# TYPE drbw_span_analyze_seconds histogram",
		`drbw_span_analyze_seconds_bucket{le="1e-06"} 2`,
		`drbw_span_analyze_seconds_bucket{le="4e-06"} 3`,
		`drbw_span_analyze_seconds_bucket{le="+Inf"} 3`,
		"drbw_span_analyze_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !promLineRE.MatchString(line) {
			t.Fatalf("line fails exposition lint: %q", line)
		}
	}
}

func TestPromFloat(t *testing.T) {
	for v, want := range map[float64]string{
		2.5:          "2.5",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0:            "0",
		1e-6:         "1e-06",
	} {
		if got := promFloat(v); got != want {
			t.Fatalf("promFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := promFloat(math.NaN()); got != "NaN" {
		t.Fatalf("promFloat(NaN) = %q", got)
	}
}
