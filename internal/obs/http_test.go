package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestDebugServer boots the debug server on an ephemeral port and checks
// every endpoint the CLIs advertise: /healthz, /metrics (valid JSON with
// the registered metrics), /debug/vars (expvar including the "drbw" var)
// and the pprof index.
func TestDebugServer(t *testing.T) {
	Default.Counter("test.http.counter").Add(5)
	srv, err := StartServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %q", body)
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics")), &snap); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if snap.Counters["test.http.counter"] < 5 {
		t.Fatalf("metrics missing test counter: %v", snap.Counters)
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("expvar not valid JSON: %v", err)
	}
	if _, ok := vars["drbw"]; !ok {
		t.Fatal("expvar missing the published drbw snapshot")
	}

	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index looks wrong: %.120q", body)
	}

	// Prometheus exposition of the same registry: counter with _total
	// suffix, every line passing the exposition lint.
	prom := get("/metrics?format=prom")
	if !strings.Contains(prom, "drbw_test_http_counter_total") {
		t.Fatalf("prom exposition missing counter:\n%.300s", prom)
	}
	for _, line := range strings.Split(strings.TrimRight(prom, "\n"), "\n") {
		if !promLineRE.MatchString(line) {
			t.Fatalf("prom line fails lint: %q", line)
		}
	}

	// Flight recorder dump over HTTP.
	RecordEvent(EventMark, "http.test.mark", 11, 22)
	flight := get("/debug/flight")
	if !strings.Contains(flight, "flight recorder:") || !strings.Contains(flight, "http.test.mark") {
		t.Fatalf("flight dump missing recent event:\n%.300s", flight)
	}
}
