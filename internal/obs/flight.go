package obs

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Flight recorder: a bounded, lock-striped ring of the most recent
// span/metric/error events, always armed. Recording an event is a
// sequence-counter fetch-add plus one short critical section writing a
// fixed-size struct — no allocation, no formatting — so the recorder stays
// on in the hot paths the allocation gate covers. The ring only turns into
// text when something goes wrong: an analysis error return, SIGQUIT, or a
// request to the debug server's /debug/flight endpoint, each of which dumps
// the recent history in global event order.

// EventKind classifies a flight-recorder event.
type EventKind uint8

// Flight event kinds.
const (
	// EventSpan is a completed trace span: A holds the duration in
	// nanoseconds, B the span id.
	EventSpan EventKind = iota
	// EventMetric is a metric milestone (engine run merged, progress
	// finished): A and B are kind-specific integers.
	EventMetric
	// EventError is a failure on an error-return path.
	EventError
	// EventMark is a free-form annotation (CLI start, phase switches).
	EventMark
)

// String names the kind for dumps.
func (k EventKind) String() string {
	switch k {
	case EventSpan:
		return "span"
	case EventMetric:
		return "metric"
	case EventError:
		return "error"
	case EventMark:
		return "mark"
	default:
		return "event"
	}
}

// flightStripes and flightPerStripe bound the recorder: at most
// flightStripes × flightPerStripe recent events are retained, overwriting
// the oldest per stripe. Both are powers of two.
const (
	flightStripes   = 8
	flightPerStripe = 256
)

// FlightEvent is one recorded event, exported by FlightEvents in global
// sequence order.
type FlightEvent struct {
	Seq  uint64
	Time time.Time
	Kind EventKind
	Name string
	// A and B are kind-specific payloads (see EventKind docs). Detail, when
	// non-empty, carries preformatted context (error text); hot-path events
	// leave it empty so recording never formats.
	A, B   int64
	Detail string
}

// flightStripe is one ring segment with its own lock, padded so stripes do
// not share cache lines.
type flightStripe struct {
	mu  sync.Mutex
	buf [flightPerStripe]FlightEvent
	n   uint64 // events ever written to this stripe
	_   [40]byte
}

// flightRing is the process-wide recorder. seq orders events globally and
// picks the stripe, spreading concurrent writers round-robin.
type flightRing struct {
	seq     atomic.Uint64
	stripes [flightStripes]flightStripe
}

var flight flightRing

// RecordEvent appends one event to the flight recorder. Safe for
// concurrent use from any goroutine; never allocates.
func RecordEvent(kind EventKind, name string, a, b int64) {
	recordEvent(kind, name, a, b, "")
}

func recordEvent(kind EventKind, name string, a, b int64, detail string) {
	seq := flight.seq.Add(1)
	s := &flight.stripes[seq&(flightStripes-1)]
	s.mu.Lock()
	s.buf[s.n&(flightPerStripe-1)] = FlightEvent{
		Seq: seq, Time: time.Now(), Kind: kind, Name: name,
		A: a, B: b, Detail: detail,
	}
	s.n++
	s.mu.Unlock()
}

// FlightEvents snapshots the retained events in global sequence order.
func FlightEvents() []FlightEvent {
	var out []FlightEvent
	for i := range flight.stripes {
		s := &flight.stripes[i]
		s.mu.Lock()
		kept := s.n
		if kept > flightPerStripe {
			kept = flightPerStripe
		}
		for j := uint64(0); j < kept; j++ {
			out = append(out, s.buf[j])
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// DumpFlight writes the retained events to w, oldest first: one line per
// event with wall time, kind, name and payloads.
func DumpFlight(w io.Writer) {
	events := FlightEvents()
	fmt.Fprintf(w, "== flight recorder: %d retained events ==\n", len(events))
	for _, e := range events {
		fmt.Fprintf(w, "%s %-6s %s", e.Time.Format("15:04:05.000000"), e.Kind, e.Name)
		switch e.Kind {
		case EventSpan:
			fmt.Fprintf(w, " dur=%s span=%d", time.Duration(e.A), e.B)
		default:
			if e.A != 0 || e.B != 0 {
				fmt.Fprintf(w, " a=%d b=%d", e.A, e.B)
			}
		}
		if e.Detail != "" {
			fmt.Fprintf(w, " %s", e.Detail)
		}
		fmt.Fprintln(w)
	}
}

// flightSink is where automatic dumps (error returns) go. Nil — the
// default — disables them so library consumers and tests stay quiet.
var flightSink atomic.Pointer[io.Writer]

// SetFlightSink directs automatic flight dumps to w (CLIs pass stderr or
// an opened file); nil disables them.
func SetFlightSink(w io.Writer) {
	if w == nil {
		flightSink.Store(nil)
		return
	}
	flightSink.Store(&w)
}

// FlightFailure records an error event and, when a sink is configured,
// dumps the recorder to it. Instrumented error-return paths call this with
// the operation name; the returned error is err unchanged, so call sites
// stay one-line.
func FlightFailure(op string, err error) error {
	if err == nil {
		return nil
	}
	recordEvent(EventError, op, 0, 0, err.Error())
	if w := flightSink.Load(); w != nil {
		fmt.Fprintf(*w, "drbw: %s failed: %v\n", op, err)
		DumpFlight(*w)
	}
	return err
}

// flightSignalOnce guards the SIGQUIT handler installation.
var flightSignalOnce sync.Once

// FlightDumpOnSignal installs a SIGQUIT handler that dumps the flight
// recorder and all goroutine stacks to stderr, then exits with status 2 —
// the moral equivalent of the JVM's thread dump, with causal history
// attached. CLIs call this once at startup; libraries never do (it takes
// over the process's SIGQUIT disposition).
func FlightDumpOnSignal() {
	flightSignalOnce.Do(func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGQUIT)
		go func() {
			<-ch
			DumpFlight(os.Stderr)
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			os.Stderr.Write(buf[:n])
			os.Exit(2)
		}()
	})
}
