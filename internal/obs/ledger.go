package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
)

// Run ledger: a machine-readable audit artifact one CLI invocation writes
// via -ledger. It captures what ran (tool, build provenance, hashed
// configuration), how long the tiers took, the final metrics snapshot, and
// what came out (verdicts, diagnosed objects, chosen placements), in a
// stable schema bench.sh and the future serving layer can parse.
//
// Determinism contract: the marshaled ledger is a pure function of its
// field values (structs marshal in declaration order, maps sorted by key),
// and the volatile sections — timings, metrics — are segregated from the
// reproducible ones. Fingerprint hashes only the reproducible subset
// (schema, tool, config, results), so two runs over the same trace with
// the same configuration produce byte-identical deterministic sections and
// equal fingerprints however long they took.

// LedgerSchema identifies the ledger format; bump on breaking changes.
const LedgerSchema = "drbw.ledger/1"

// BuildInfo is the binary's provenance, read from the Go build metadata.
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	Module      string `json:"module,omitempty"`
	Version     string `json:"version,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// readBuildInfo extracts provenance from the running binary.
func readBuildInfo() BuildInfo {
	out := BuildInfo{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.Module = bi.Main.Path
	out.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.VCSRevision = s.Value
		case "vcs.time":
			out.VCSTime = s.Value
		case "vcs.modified":
			out.VCSModified = s.Value == "true"
		}
	}
	return out
}

// LedgerObject is one diagnosed object in a result.
type LedgerObject struct {
	Name string  `json:"name"`
	CF   float64 `json:"cf"`
}

// LedgerResult is one analysis or optimization outcome.
type LedgerResult struct {
	// Name identifies the input: a trace path, a "bench input Tt-Nn" label.
	Name string `json:"name"`
	// Kind is "analysis", "optimization", or a tool-specific label.
	Kind string `json:"kind"`
	// Detected is the classifier verdict (nil when the result carries none,
	// e.g. a failed case).
	Detected *bool `json:"detected,omitempty"`
	// Channels lists contended channels in report order.
	Channels []string `json:"channels,omitempty"`
	// Samples counts the samples behind the verdict (retained samples for
	// live runs, streamed samples for trace analyses).
	Samples int64 `json:"samples,omitempty"`
	// Objects ranks diagnosed objects by CF.
	Objects []LedgerObject `json:"objects,omitempty"`
	// Placement and Speedup report a closed-loop optimization's choice.
	Placement string  `json:"placement,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
	// Error records a failed case without aborting the ledger.
	Error string `json:"error,omitempty"`
}

// Ledger is the full run artifact. Field order is the wire order.
type Ledger struct {
	Schema     string            `json:"schema"`
	Tool       string            `json:"tool"`
	ConfigHash string            `json:"config_hash"`
	Config     map[string]string `json:"config"`
	Results    []LedgerResult    `json:"results"`
	// Fingerprint is the hex SHA-256 of DeterministicBytes, filled by
	// Marshal/Write. Recomputable by any reader for tamper checks.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Volatile sections: excluded from Fingerprint.
	Build          BuildInfo          `json:"build"`
	TimingsSeconds map[string]float64 `json:"timings_seconds,omitempty"`
	Metrics        *Snapshot          `json:"metrics,omitempty"`
}

// NewLedger starts a ledger for one tool invocation. config is the
// effective flag/option set; its canonical hash pins the run configuration.
func NewLedger(tool string, config map[string]string) *Ledger {
	return &Ledger{
		Schema:     LedgerSchema,
		Tool:       tool,
		Config:     config,
		ConfigHash: HashConfig(config),
		Build:      readBuildInfo(),
	}
}

// HashConfig returns the hex SHA-256 of the canonical (sorted "k=v\n")
// rendering of a configuration map.
func HashConfig(config map[string]string) string {
	keys := make([]string, 0, len(config))
	for k := range config {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, config[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// AddResult appends one outcome.
func (l *Ledger) AddResult(r LedgerResult) { l.Results = append(l.Results, r) }

// AddTiming records one tier's wall-clock seconds (train, analyze, total).
func (l *Ledger) AddTiming(name string, seconds float64) {
	if l.TimingsSeconds == nil {
		l.TimingsSeconds = map[string]float64{}
	}
	l.TimingsSeconds[name] = seconds
}

// AttachMetrics embeds the default registry's final snapshot.
func (l *Ledger) AttachMetrics() {
	s := Default.Snapshot()
	l.Metrics = &s
}

// deterministicView is the reproducible subset of the ledger, marshaled
// for fingerprinting and for byte-determinism tests.
type deterministicView struct {
	Schema     string            `json:"schema"`
	Tool       string            `json:"tool"`
	ConfigHash string            `json:"config_hash"`
	Config     map[string]string `json:"config"`
	Results    []LedgerResult    `json:"results"`
}

// DeterministicBytes marshals the reproducible subset of the ledger:
// identical trace + configuration ⇒ identical bytes, regardless of
// timings, metrics, or the machine the run happened on.
func (l *Ledger) DeterministicBytes() ([]byte, error) {
	return json.MarshalIndent(deterministicView{
		Schema:     l.Schema,
		Tool:       l.Tool,
		ConfigHash: l.ConfigHash,
		Config:     l.Config,
		Results:    l.Results,
	}, "", "  ")
}

// Marshal renders the full ledger, computing the fingerprint first.
func (l *Ledger) Marshal() ([]byte, error) {
	det, err := l.DeterministicBytes()
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(det)
	l.Fingerprint = hex.EncodeToString(sum[:])
	b, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Write marshals the ledger to path.
func (l *Ledger) Write(path string) error {
	b, err := l.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("obs: write ledger: %w", err)
	}
	return nil
}
