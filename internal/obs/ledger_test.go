package obs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func boolPtr(b bool) *bool { return &b }

func sampleLedger() *Ledger {
	led := NewLedger("drbw-analyze", map[string]string{
		"samples": "run.samples.bin",
		"model":   "model.json",
		"workers": "0",
	})
	led.AddResult(LedgerResult{
		Name:     "run.samples.bin",
		Kind:     "analysis",
		Detected: boolPtr(true),
		Channels: []string{"N1->N0", "N2->N0"},
		Samples:  4096,
		Objects:  []LedgerObject{{Name: "block", CF: 0.71}, {Name: "points", CF: 0.22}},
	})
	return led
}

// TestLedgerRoundTrip: the written JSON parses back into a Ledger with the
// schema tag, config hash and results intact — the schema contract CI's
// smoke job relies on.
func TestLedgerRoundTrip(t *testing.T) {
	led := sampleLedger()
	led.AddTiming("analyze", 1.25)
	led.AttachMetrics()
	path := filepath.Join(t.TempDir(), "ledger.json")
	if err := led.Write(path); err != nil {
		t.Fatal(err)
	}

	var back Ledger
	b := mustRead(t, path)
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("ledger does not parse: %v", err)
	}
	if back.Schema != LedgerSchema {
		t.Fatalf("schema = %q, want %q", back.Schema, LedgerSchema)
	}
	if back.ConfigHash != led.ConfigHash || back.ConfigHash == "" {
		t.Fatalf("config hash lost: %q vs %q", back.ConfigHash, led.ConfigHash)
	}
	if len(back.Results) != 1 || back.Results[0].Samples != 4096 {
		t.Fatalf("results did not round-trip: %+v", back.Results)
	}
	if back.Results[0].Detected == nil || !*back.Results[0].Detected {
		t.Fatal("verdict did not round-trip")
	}
	if back.Build.GoVersion == "" {
		t.Fatal("build info missing")
	}
	if back.TimingsSeconds["analyze"] != 1.25 {
		t.Fatalf("timings did not round-trip: %v", back.TimingsSeconds)
	}
	// The fingerprint is recomputable from the deterministic section.
	det, err := back.DeterministicBytes()
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(det)
	if got := hex.EncodeToString(sum[:]); got != back.Fingerprint {
		t.Fatalf("fingerprint mismatch: file says %s, recomputed %s", back.Fingerprint, got)
	}
}

// TestLedgerDeterministicBytes: same inputs ⇒ identical bytes, even when
// the volatile sections (timings, metrics, build) differ.
func TestLedgerDeterministicBytes(t *testing.T) {
	a, b := sampleLedger(), sampleLedger()
	a.AddTiming("total", 10.0)
	b.AddTiming("total", 99.9)
	b.AttachMetrics()

	ab, err := a.DeterministicBytes()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.DeterministicBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("deterministic sections differ:\n%s\n%s", ab, bb)
	}

	// A different verdict must change the bytes (and hence the fingerprint).
	c := sampleLedger()
	c.Results[0].Samples++
	cb, err := c.DeterministicBytes()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ab, cb) {
		t.Fatal("different results produced identical deterministic bytes")
	}
}

// TestHashConfig: order-independent, content-sensitive.
func TestHashConfig(t *testing.T) {
	one := HashConfig(map[string]string{"a": "1", "b": "2"})
	two := HashConfig(map[string]string{"b": "2", "a": "1"})
	if one != two {
		t.Fatal("hash depends on map order")
	}
	if one == HashConfig(map[string]string{"a": "1", "b": "3"}) {
		t.Fatal("hash ignores values")
	}
	if len(one) != 64 {
		t.Fatalf("hash %q is not hex sha256", one)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
