package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestTraceZeroAllocWhenDisabled is the tentpole contract: with no tracer
// installed, the whole span API — begin, child, attributes, end — performs
// zero heap allocations, so tracing can be compiled into every hot path
// without moving the engine's allocation gate.
func TestTraceZeroAllocWhenDisabled(t *testing.T) {
	if tr := StopTracing(); tr != nil {
		t.Fatal("a tracer was installed entering the test")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := BeginSpan("test.root")
		sp.SetInt("worker", 3)
		sp.SetStr("file", "a.samples.bin")
		sp.SetFloat("cycles", 1.5)
		cs := sp.Child("test.child")
		cs.SetInt("index", 1)
		cs.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f times per op, want 0", allocs)
	}
}

// TestTraceParentChild checks ids, parent links and attribute recording.
func TestTraceParentChild(t *testing.T) {
	tr := StartTracing()
	defer StopTracing()

	root := BeginSpan("root")
	root.SetStr("file", "x.bin")
	c1 := root.Child("child")
	c1.SetInt("index", 0)
	c1.SetInt("worker", 2)
	c1.End()
	c2 := root.Child("child")
	c2.SetInt("index", 1)
	c2.End()
	root.End()
	StopTracing()

	if n := tr.SpanCount(); n != 3 {
		t.Fatalf("SpanCount = %d, want 3", n)
	}
	roots := tr.Tree()
	if len(roots) != 1 || roots[0].Name != "root" {
		t.Fatalf("tree roots = %+v, want single root", roots)
	}
	if got := roots[0].Attrs["file"]; got != "x.bin" {
		t.Fatalf("root file attr = %v", got)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(roots[0].Children))
	}
	for i, c := range roots[0].Children {
		if c.Name != "child" {
			t.Fatalf("child %d name = %q", i, c.Name)
		}
		// json numbers in Attrs are the original typed values pre-marshal.
		if got := c.Attrs["index"]; got != int64(i) {
			t.Fatalf("child %d index attr = %v (%T), want %d", i, got, got, i)
		}
	}
}

// TestTraceSpansSurviveStop: a span begun under a tracer records into that
// tracer even if it ends after StopTracing.
func TestTraceSpansSurviveStop(t *testing.T) {
	tr := StartTracing()
	sp := BeginSpan("late")
	StopTracing()
	sp.End()
	if n := tr.SpanCount(); n != 1 {
		t.Fatalf("SpanCount = %d, want 1 (in-flight span lost)", n)
	}
	if BeginSpan("after").Active() {
		t.Fatal("BeginSpan active after StopTracing")
	}
}

// TestChromeTraceExport validates the trace-event JSON: an envelope with
// one complete event per span, microsecond timestamps, worker-derived tids
// and parent ids in args.
func TestChromeTraceExport(t *testing.T) {
	tr := StartTracing()
	root := BeginSpan("analyze.trace_file")
	c := root.Child("case")
	c.SetInt("worker", 4)
	c.SetInt("from", 0)
	c.SetInt("to", 8)
	c.End()
	root.End()
	StopTracing()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("%d events, want 2", len(doc.TraceEvents))
	}
	var sawChild bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Name != "case" {
			continue
		}
		sawChild = true
		if ev.Tid != 5 {
			t.Fatalf("worker 4 should map to tid 5, got %d", ev.Tid)
		}
		if _, ok := ev.Args["parent_id"]; !ok {
			t.Fatalf("child event lost its parent_id: %v", ev.Args)
		}
		if ev.Args["from"] != float64(0) || ev.Args["to"] != float64(8) {
			t.Fatalf("block range attrs = %v", ev.Args)
		}
	}
	if !sawChild {
		t.Fatal("no case event in export")
	}
}

// TestTreeExportDeterministic: exporting the same tracer twice is
// byte-identical, and sibling order follows (start, id).
func TestTreeExportDeterministic(t *testing.T) {
	tr := StartTracing()
	root := BeginSpan("root")
	for i := 0; i < 5; i++ {
		c := root.Child("child")
		c.SetInt("index", int64(i))
		c.End()
	}
	root.End()
	StopTracing()

	var one, two bytes.Buffer
	if err := tr.WriteTreeJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteTreeJSON(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatalf("tree exports differ:\n%s\n%s", one.String(), two.String())
	}
	var roots []*SpanTree
	if err := json.Unmarshal(one.Bytes(), &roots); err != nil {
		t.Fatalf("tree export is not valid JSON: %v", err)
	}
	if len(roots) != 1 || len(roots[0].Children) != 5 {
		t.Fatalf("tree shape wrong: %+v", roots)
	}
}

func TestParseTraceFormat(t *testing.T) {
	for in, want := range map[string]TraceExportFormat{
		"":       TraceChrome,
		"chrome": TraceChrome,
		"Tree":   TraceTree,
		" tree ": TraceTree,
	} {
		got, err := ParseTraceFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseTraceFormat(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseTraceFormat("perfetto"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}
