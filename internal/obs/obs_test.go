package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one striped counter from many goroutines;
// the fold must account for every increment (run under -race in CI).
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.counter")
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	// The handle is stable: a second lookup returns the same counter.
	if r.Counter("test.counter") != c {
		t.Fatal("second lookup returned a different counter")
	}
}

// TestHistogramConcurrent checks that no observation is lost and the
// aggregates are exact under concurrency.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.hist")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w+1) * 1e-4)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	want := 0.0
	for w := 1; w <= workers; w++ {
		want += float64(w) * 1e-4 * per
	}
	if got := h.Sum(); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	s := h.snapshot()
	if s.Min != 1e-4 || s.Max != 8e-4 {
		t.Fatalf("min/max = %g/%g, want 1e-4/8e-4", s.Min, s.Max)
	}
	var bucketTotal uint64
	for _, b := range s.Buckets {
		bucketTotal += b.N
	}
	if bucketTotal != workers*per {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, workers*per)
	}
	// Quantiles must be ordered and inside the observed range's bucket
	// bounds (the estimator interpolates within a bucket).
	if !(s.P50 <= s.P90 && s.P90 <= s.P99) {
		t.Fatalf("quantiles out of order: p50=%g p90=%g p99=%g", s.P50, s.P90, s.P99)
	}
	if s.P99 > histLE(histBuckets-1) {
		t.Fatalf("p99 = %g beyond bucket range", s.P99)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test.gauge")
	g.Set(2.5)
	if v := g.Value(); v != 2.5 {
		t.Fatalf("Set/Value = %g", v)
	}
	g.Add(-1.5)
	if v := g.Value(); v != 1.0 {
		t.Fatalf("Add = %g", v)
	}
	g.Max(0.5) // lower: no-op
	g.Max(3.0)
	if v := g.Value(); v != 3.0 {
		t.Fatalf("Max = %g", v)
	}
}

// TestGaugeAddConcurrent exercises the CAS loop: balanced +1/-1 pairs must
// return the gauge to zero.
func TestGaugeAddConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test.gauge.add")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 0 {
		t.Fatalf("gauge = %g, want 0", v)
	}
}

// TestSnapshotDeterminism requires two marshals of the same state to be
// byte-identical — the /metrics contract.
func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.counter").Add(7)
	r.Counter("a.counter").Add(3)
	r.Gauge("z.gauge").Set(0.25)
	h := r.Histogram("m.hist")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 1e-5)
	}
	one, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	two, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, two) {
		t.Fatalf("snapshots differ:\n%s\n%s", one, two)
	}
	names := r.Names()
	want := []string{"a.counter", "b.counter", "m.hist", "z.gauge"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestSpanRecords(t *testing.T) {
	r := NewRegistry()
	s := r.StartSpan("phase")
	time.Sleep(time.Millisecond)
	d := s.End()
	if d <= 0 {
		t.Fatalf("duration = %v", d)
	}
	h := r.Histogram("span.phase.seconds")
	if h.Count() != 1 {
		t.Fatalf("span histogram count = %d", h.Count())
	}
	if h.Sum() < 0.001 {
		t.Fatalf("span histogram sum = %g, want >= 1ms", h.Sum())
	}
	if r.Counter("span.phase.count").Value() != 1 {
		t.Fatal("span counter not bumped")
	}
}

// TestProgress checks the N/M / elapsed / ETA reporting and that the
// default (no writer) stays silent.
func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	SetProgressWriter(&buf)
	t.Cleanup(func() { SetProgressWriter(nil) })

	p := StartProgress("test.batch", 3)
	p.Done()
	p.Done()
	p.Done()
	p.Finish()
	out := buf.String()
	if !strings.Contains(out, "test.batch: 3/3 (100%)") {
		t.Fatalf("missing final progress line in %q", out)
	}
	if !strings.Contains(out, "elapsed") {
		t.Fatalf("missing elapsed in %q", out)
	}

	SetProgressWriter(nil)
	buf.Reset()
	p = StartProgress("test.quiet", 1)
	p.Done()
	p.Finish()
	if buf.Len() != 0 {
		t.Fatalf("progress wrote %q with no writer configured", buf.String())
	}
}

// TestProgressConcurrent drives Done from many goroutines; every line must
// be well-formed and the final 64/64 line must appear.
func TestProgressConcurrent(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := lockedWriter{mu: &mu, w: &buf}
	SetProgressWriter(w)
	t.Cleanup(func() { SetProgressWriter(nil) })

	const n = 64
	p := StartProgress("test.parallel", n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Done()
		}()
	}
	wg.Wait()
	p.Finish()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "test.parallel: 64/64") {
		t.Fatalf("missing final line in %q", out)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestParseLevel(t *testing.T) {
	if _, err := ParseLevel("nope"); err == nil {
		t.Fatal("expected error for unknown level")
	}
	for _, s := range []string{"debug", "info", "warn", "error", "", "WARN"} {
		if _, err := ParseLevel(s); err != nil {
			t.Fatalf("ParseLevel(%q): %v", s, err)
		}
	}
}
