package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Causal tracing: hierarchical parent/child spans with typed attributes,
// recorded only while a Tracer is installed. The design constraint is the
// same one the metrics layer lives under — instrumentation must be free
// when nobody is looking. SpanHandle is a two-word value, Begin/Child/Set/
// End on a zero handle are branch-and-return, and no call in the disabled
// path allocates, so the engine's allocation gate holds with tracing
// compiled in everywhere (see TestTraceZeroAllocWhenDisabled).
//
// When a Tracer is installed, every ended span becomes one immutable
// record: id, parent id, name, start offset and duration relative to the
// tracer's epoch, plus its attributes. Records export two ways — Chrome
// trace-event JSON (load the file in chrome://tracing or Perfetto) and a
// nested tree sorted deterministically by (start, id) — and every span end
// also lands in the flight recorder ring.

// TraceAttr is one typed span attribute. Exactly one of the value fields
// is meaningful, selected by Kind.
type TraceAttr struct {
	Key  string
	Kind AttrKind
	Int  int64
	Flt  float64
	Str  string
}

// AttrKind discriminates TraceAttr's value field.
type AttrKind uint8

// Attribute kinds.
const (
	AttrInt AttrKind = iota
	AttrFloat
	AttrString
)

// value renders the attribute for JSON export.
func (a TraceAttr) value() any {
	switch a.Kind {
	case AttrFloat:
		return a.Flt
	case AttrString:
		return a.Str
	default:
		return a.Int
	}
}

// spanRecord is one completed span.
type spanRecord struct {
	id     uint64
	parent uint64
	name   string
	start  time.Duration // offset from the tracer epoch
	dur    time.Duration
	attrs  []TraceAttr
}

// Tracer collects one trace: a forest of spans recorded between
// StartTracing and StopTracing.
type Tracer struct {
	epoch  time.Time
	nextID atomic.Uint64

	mu   sync.Mutex
	done []spanRecord
}

// curTracer is the installed tracer; nil (the default) disables tracing.
var curTracer atomic.Pointer[Tracer]

// StartTracing installs a fresh tracer and returns it. Spans begun while
// it is installed are recorded; the caller exports via StopTracing.
func StartTracing() *Tracer {
	tr := &Tracer{epoch: time.Now()}
	curTracer.Store(tr)
	return tr
}

// StopTracing uninstalls the current tracer and returns it (nil when
// tracing was off). Spans still open keep their handle's tracer and record
// into it when ended, so in-flight work drains into the right trace.
func StopTracing() *Tracer {
	tr := curTracer.Swap(nil)
	return tr
}

// TracingEnabled reports whether a tracer is installed.
func TracingEnabled() bool { return curTracer.Load() != nil }

// SpanHandle addresses one live span. The zero value is a valid no-op
// handle: every method nil-checks the tracer and returns, allocation-free,
// so instrumented code calls unconditionally.
type SpanHandle struct {
	tr  *Tracer
	rec *spanRecord
}

// BeginSpan opens a root span on the installed tracer (no-op handle when
// tracing is off).
func BeginSpan(name string) SpanHandle {
	tr := curTracer.Load()
	if tr == nil {
		return SpanHandle{}
	}
	return tr.begin(0, name)
}

func (tr *Tracer) begin(parent uint64, name string) SpanHandle {
	rec := &spanRecord{
		id:     tr.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  time.Since(tr.epoch),
	}
	return SpanHandle{tr: tr, rec: rec}
}

// Child opens a span under h. A no-op handle begets no-op children, so a
// whole call tree stays silent when its root was begun with tracing off.
func (h SpanHandle) Child(name string) SpanHandle {
	if h.tr == nil {
		return SpanHandle{}
	}
	return h.tr.begin(h.rec.id, name)
}

// Active reports whether the handle records anywhere.
func (h SpanHandle) Active() bool { return h.tr != nil }

// SetInt attaches an integer attribute (worker id, block range bound,
// wave number). Attributes belong to the goroutine that owns the handle;
// set them before End.
func (h SpanHandle) SetInt(key string, v int64) {
	if h.tr == nil {
		return
	}
	h.rec.attrs = append(h.rec.attrs, TraceAttr{Key: key, Kind: AttrInt, Int: v})
}

// SetFloat attaches a float attribute (cycles, scores).
func (h SpanHandle) SetFloat(key string, v float64) {
	if h.tr == nil {
		return
	}
	h.rec.attrs = append(h.rec.attrs, TraceAttr{Key: key, Kind: AttrFloat, Flt: v})
}

// SetStr attaches a string attribute (trace file, candidate key).
func (h SpanHandle) SetStr(key, v string) {
	if h.tr == nil {
		return
	}
	h.rec.attrs = append(h.rec.attrs, TraceAttr{Key: key, Kind: AttrString, Str: v})
}

// End completes the span, committing its record to the tracer and one
// event to the flight recorder. Call exactly once per active handle.
func (h SpanHandle) End() {
	if h.tr == nil {
		return
	}
	h.rec.dur = time.Since(h.tr.epoch) - h.rec.start
	h.tr.mu.Lock()
	h.tr.done = append(h.tr.done, *h.rec)
	h.tr.mu.Unlock()
	RecordEvent(EventSpan, h.rec.name, h.rec.dur.Nanoseconds(), int64(h.rec.id))
}

// records returns the completed spans sorted by (start, id).
func (tr *Tracer) records() []spanRecord {
	tr.mu.Lock()
	out := make([]spanRecord, len(tr.done))
	copy(out, tr.done)
	tr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].id < out[j].id
	})
	return out
}

// SpanCount returns the number of completed spans.
func (tr *Tracer) SpanCount() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.done)
}

// WriteChromeTrace renders the completed spans as Chrome trace-event JSON
// ("X" complete events inside a traceEvents envelope), loadable in
// chrome://tracing and Perfetto. Spans with a "worker" attribute map it to
// the event's tid so worker lanes separate visually; span and parent ids
// ride in args alongside the remaining attributes.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	type chromeEvent struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"` // microseconds
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int64          `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	recs := tr.records()
	events := make([]chromeEvent, 0, len(recs))
	for _, r := range recs {
		ev := chromeEvent{
			Name: r.name,
			Cat:  "drbw",
			Ph:   "X",
			Ts:   float64(r.start) / float64(time.Microsecond),
			Dur:  float64(r.dur) / float64(time.Microsecond),
			Pid:  1,
			Args: map[string]any{"span_id": r.id},
		}
		if r.parent != 0 {
			ev.Args["parent_id"] = r.parent
		}
		for _, a := range r.attrs {
			ev.Args[a.Key] = a.value()
			if a.Key == "worker" && a.Kind == AttrInt {
				ev.Tid = a.Int + 1
			}
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

// SpanTree is one node of the exported span tree.
type SpanTree struct {
	Name            string         `json:"name"`
	StartSeconds    float64        `json:"start_seconds"`
	DurationSeconds float64        `json:"duration_seconds"`
	Attrs           map[string]any `json:"attrs,omitempty"`
	Children        []*SpanTree    `json:"children,omitempty"`
}

// Tree assembles the completed spans into their parent/child forest.
// Ordering is deterministic for a given set of records: siblings sort by
// (start offset, id), and attribute keys render sorted by encoding/json.
// Spans whose parent never completed surface as roots rather than
// disappearing.
func (tr *Tracer) Tree() []*SpanTree {
	recs := tr.records()
	nodes := make(map[uint64]*SpanTree, len(recs))
	for _, r := range recs {
		n := &SpanTree{
			Name:            r.name,
			StartSeconds:    r.start.Seconds(),
			DurationSeconds: r.dur.Seconds(),
		}
		if len(r.attrs) > 0 {
			n.Attrs = make(map[string]any, len(r.attrs))
			for _, a := range r.attrs {
				n.Attrs[a.Key] = a.value()
			}
		}
		nodes[r.id] = n
	}
	var roots []*SpanTree
	for _, r := range recs { // records() order keeps siblings sorted
		if p, ok := nodes[r.parent]; ok && r.parent != 0 {
			p.Children = append(p.Children, nodes[r.id])
		} else {
			roots = append(roots, nodes[r.id])
		}
	}
	return roots
}

// WriteTreeJSON renders the span forest as indented JSON.
func (tr *Tracer) WriteTreeJSON(w io.Writer) error {
	b, err := json.MarshalIndent(tr.Tree(), "", "  ")
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}

// TraceExportFormat names a trace export encoding.
type TraceExportFormat string

// Supported trace exports.
const (
	// TraceChrome is Chrome trace-event JSON (chrome://tracing, Perfetto).
	TraceChrome TraceExportFormat = "chrome"
	// TraceTree is the deterministic nested span tree.
	TraceTree TraceExportFormat = "tree"
)

// ParseTraceFormat maps a CLI -trace-format value to an export format.
func ParseTraceFormat(s string) (TraceExportFormat, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "chrome":
		return TraceChrome, nil
	case "tree":
		return TraceTree, nil
	default:
		return "", fmt.Errorf("obs: unknown trace format %q (chrome, tree)", s)
	}
}

// Export writes the trace in the given format.
func (tr *Tracer) Export(w io.Writer, format TraceExportFormat) error {
	switch format {
	case TraceChrome:
		return tr.WriteChromeTrace(w)
	case TraceTree:
		return tr.WriteTreeJSON(w)
	default:
		return fmt.Errorf("obs: unknown trace format %q", format)
	}
}
