package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestProgressZeroTotal is the regression test for the divide-by-zero in
// Progress.emit: a zero-total batch must report plain counts, never Inf or
// NaN percentages/ETAs.
func TestProgressZeroTotal(t *testing.T) {
	var buf bytes.Buffer
	SetProgressWriter(&buf)
	t.Cleanup(func() { SetProgressWriter(nil) })

	p := StartProgress("test.empty", 0)
	p.Done()
	p.Done()
	p.Finish()
	out := buf.String()
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Fatalf("zero-total progress printed Inf/NaN: %q", out)
	}
	if !strings.Contains(out, "test.empty: 2 done") {
		t.Fatalf("missing count-only line in %q", out)
	}
}

// TestHistogramEmpty: an unobserved histogram snapshots to all zeros.
func TestHistogramEmpty(t *testing.T) {
	r := NewRegistry()
	s := r.Histogram("test.empty").snapshot()
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 || s.P90 != 0 || s.P99 != 0 {
		t.Fatalf("empty histogram snapshot = %+v", s)
	}
	if len(s.Buckets) != 0 {
		t.Fatalf("empty histogram has buckets: %+v", s.Buckets)
	}
}

// TestHistogramSingleBucket: every observation in one bucket keeps all
// quantiles inside that bucket's bounds, ordered.
func TestHistogramSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.single")
	for i := 0; i < 1000; i++ {
		h.Observe(3e-6) // bucket with bounds (2e-6, 4e-6]
	}
	s := h.snapshot()
	if len(s.Buckets) != 1 {
		t.Fatalf("buckets = %+v, want exactly one", s.Buckets)
	}
	lo, hi := 2e-6, 4e-6
	for _, q := range []float64{s.P50, s.P90, s.P99} {
		if q < lo || q > hi {
			t.Fatalf("quantile %g outside bucket (%g, %g]", q, lo, hi)
		}
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P99) {
		t.Fatalf("quantiles out of order: %g %g %g", s.P50, s.P90, s.P99)
	}
	if s.Min != 3e-6 || s.Max != 3e-6 {
		t.Fatalf("min/max = %g/%g, want 3e-6", s.Min, s.Max)
	}
}

// TestHistogramAllSameValue: identical observations at the first bucket
// boundary; min == max == value and the average is exact.
func TestHistogramAllSameValue(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.same")
	const v = 1e-6 // exactly histFirstLE: bucket 0
	for i := 0; i < 64; i++ {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 64 || s.Min != v || s.Max != v {
		t.Fatalf("snapshot = %+v", s)
	}
	if math.Abs(s.Avg-v) > 1e-9*v {
		t.Fatalf("avg = %g, want ~%g", s.Avg, v)
	}
	if len(s.Buckets) != 1 || s.Buckets[0].LE != v || s.Buckets[0].N != 64 {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for _, q := range []float64{s.P50, s.P90, s.P99} {
		if q < 0 || q > v {
			t.Fatalf("quantile %g outside [0, %g]", q, v)
		}
	}
}

// TestSnapshotUnderConcurrentWriters marshals snapshots while writers
// hammer every metric type. Run under -race in CI; each snapshot must be
// valid JSON and internally consistent (bucket total == count is NOT
// guaranteed mid-write, but the marshal itself must never tear).
func TestSnapshotUnderConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("conc.counter")
			g := r.Gauge("conc.gauge")
			h := r.Histogram("conc.hist")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100+1) * 1e-6)
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		b, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatalf("marshal %d: %v", i, err)
		}
		var back Snapshot
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("snapshot %d does not parse: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: totals must now be exact.
	s := r.Snapshot()
	hs := s.Histograms["conc.hist"]
	var bucketTotal uint64
	for _, b := range hs.Buckets {
		bucketTotal += b.N
	}
	if int64(bucketTotal) != hs.Count {
		t.Fatalf("bucket total %d != count %d after quiesce", bucketTotal, hs.Count)
	}
	if s.Counters["conc.counter"] != hs.Count {
		t.Fatalf("counter %d != observations %d", s.Counters["conc.counter"], hs.Count)
	}
}
