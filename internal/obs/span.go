package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span times one named pipeline phase. Ending a span records its duration
// into the histogram "span.<name>.seconds" and bumps the counter
// "span.<name>.count", so repeated phases build a latency distribution;
// the end is also logged at debug level.
type Span struct {
	name  string
	reg   *Registry
	start time.Time
}

// StartSpan opens a span on the registry.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{name: name, reg: r, start: time.Now()}
}

// StartSpan opens a span on the default registry.
func StartSpan(name string) *Span { return Default.StartSpan(name) }

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// Elapsed returns the time since the span started.
func (s *Span) Elapsed() time.Duration { return time.Since(s.start) }

// End records the span and returns its duration. End is idempotent in
// effect only if called once; call it exactly once per span.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	s.reg.Histogram("span." + s.name + ".seconds").Observe(d.Seconds())
	s.reg.Counter("span." + s.name + ".count").Inc()
	RecordEvent(EventMetric, "span."+s.name, d.Nanoseconds(), 0)
	Logger().Debug("span end", "span", s.name, "seconds", d.Seconds())
	return d
}

// progressOut is where progress lines go. Nil disables progress output;
// metrics and spans are recorded regardless.
var progressOut atomic.Pointer[io.Writer]

// SetProgressWriter directs progress lines (N/M done, elapsed, ETA) to w.
// Passing nil disables them (the default, so library use and tests stay
// quiet). CLIs point this at stderr.
func SetProgressWriter(w io.Writer) {
	if w == nil {
		progressOut.Store(nil)
		return
	}
	progressOut.Store(&w)
}

// progressEvery throttles intermediate progress lines.
const progressEvery = 250 * time.Millisecond

// Progress tracks a batch of identical work items through a span and
// reports N/M, elapsed time and a linear-extrapolation ETA to the
// configured progress writer. Done may be called from many workers.
type Progress struct {
	span  *Span
	total int64
	done  atomic.Int64

	mu       sync.Mutex
	lastEmit time.Time
}

// StartProgress opens a span named name over total work items.
func StartProgress(name string, total int) *Progress {
	return &Progress{span: StartSpan(name), total: int64(total)}
}

// Done marks one item complete, emitting a throttled progress line.
func (p *Progress) Done() {
	n := p.done.Add(1)
	w := progressOut.Load()
	if w == nil {
		return
	}
	final := n >= p.total
	p.mu.Lock()
	now := time.Now()
	if !final && now.Sub(p.lastEmit) < progressEvery {
		p.mu.Unlock()
		return
	}
	p.lastEmit = now
	p.mu.Unlock()
	p.emit(*w, n)
}

// Finish ends the span and returns the total duration. It emits a final
// line if the work was cut short of total.
func (p *Progress) Finish() time.Duration {
	if w := progressOut.Load(); w != nil {
		if n := p.done.Load(); n < p.total {
			p.emit(*w, n)
		}
	}
	return p.span.End()
}

// emit writes one progress line: name, N/M, percent, elapsed, ETA. A
// non-positive total (an open-ended or degenerate batch) drops the percent
// and ETA — both divide by total — instead of printing Inf/NaN.
func (p *Progress) emit(w io.Writer, n int64) {
	elapsed := p.span.Elapsed()
	if p.total <= 0 {
		fmt.Fprintf(w, "%s: %d done, elapsed %s\n", p.span.Name(), n, roundDur(elapsed))
		return
	}
	line := fmt.Sprintf("%s: %d/%d (%.0f%%) elapsed %s",
		p.span.Name(), n, p.total, 100*float64(n)/float64(p.total), roundDur(elapsed))
	if n > 0 && n < p.total {
		eta := time.Duration(float64(elapsed) / float64(n) * float64(p.total-n))
		line += " eta " + roundDur(eta).String()
	}
	fmt.Fprintln(w, line)
}

// roundDur trims durations to a readable precision.
func roundDur(d time.Duration) time.Duration {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second)
	case d >= time.Second:
		return d.Round(100 * time.Millisecond)
	default:
		return d.Round(time.Millisecond)
	}
}
