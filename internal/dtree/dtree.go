// Package dtree implements the CART decision-tree classifier DR-BW trains
// on its micro-benchmark runs (the paper used MATLAB 2016a's Statistics and
// Machine Learning toolbox; this is the same algorithm family: binary
// splits, Gini impurity, greedy growth).
//
// The package also provides the evaluation machinery the paper reports:
// stratified k-fold cross validation (Section V-D uses stratified 10-fold)
// and confusion matrices (Tables III and VI).
package dtree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Example is one labeled feature vector.
type Example struct {
	X []float64
	Y int // class index
}

// Dataset is a labeled training set.
type Dataset struct {
	Examples     []Example
	FeatureNames []string // optional; indexes into Example.X
	ClassNames   []string // optional; indexes by class
}

func (d *Dataset) numClasses() int {
	n := len(d.ClassNames)
	for _, e := range d.Examples {
		if e.Y+1 > n {
			n = e.Y + 1
		}
	}
	return n
}

func (d *Dataset) featureName(i int) string {
	if i >= 0 && i < len(d.FeatureNames) && d.FeatureNames[i] != "" {
		return d.FeatureNames[i]
	}
	return fmt.Sprintf("feature %d", i+1)
}

func (d *Dataset) className(i int) string {
	if i >= 0 && i < len(d.ClassNames) && d.ClassNames[i] != "" {
		return d.ClassNames[i]
	}
	return fmt.Sprintf("class %d", i)
}

// Config controls tree growth.
type Config struct {
	// MaxDepth bounds the tree. <= 0 uses 8.
	MaxDepth int
	// MinLeaf is the minimum examples per leaf. <= 0 uses 2.
	MinLeaf int
	// MinImpurityDecrease prunes splits with negligible gain. < 0 treated
	// as 0; 0 uses 1e-7.
	MinImpurityDecrease float64
}

func (c Config) withDefaults() Config {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.MinImpurityDecrease <= 0 {
		c.MinImpurityDecrease = 1e-7
	}
	return c
}

type node struct {
	// Internal nodes.
	feature   int
	threshold float64
	left      *node // x[feature] <= threshold
	right     *node // x[feature] >  threshold
	// Leaves.
	leaf  bool
	class int
	// Diagnostics.
	n        int
	impurity float64
}

// Tree is a trained classifier.
type Tree struct {
	root       *node
	numFeat    int
	numClass   int
	ds         *Dataset // for names only
	importance []float64
}

// Train grows a tree on ds.
func Train(ds *Dataset, cfg Config) (*Tree, error) {
	if ds == nil || len(ds.Examples) == 0 {
		return nil, fmt.Errorf("dtree: empty dataset")
	}
	cfg = cfg.withDefaults()
	nf := len(ds.Examples[0].X)
	for i, e := range ds.Examples {
		if len(e.X) != nf {
			return nil, fmt.Errorf("dtree: example %d has %d features, want %d", i, len(e.X), nf)
		}
		if e.Y < 0 {
			return nil, fmt.Errorf("dtree: example %d has negative class %d", i, e.Y)
		}
	}
	nc := ds.numClasses()
	t := &Tree{numFeat: nf, numClass: nc, ds: ds, importance: make([]float64, nf)}
	idx := make([]int, len(ds.Examples))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(ds, idx, cfg, 0)
	return t, nil
}

func gini(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		g -= p * p
	}
	return g
}

func (t *Tree) classCounts(ds *Dataset, idx []int) []int {
	counts := make([]int, t.numClass)
	for _, i := range idx {
		counts[ds.Examples[i].Y]++
	}
	return counts
}

func majority(counts []int) int {
	best, bestC := 0, -1
	for c, n := range counts {
		if n > bestC {
			best, bestC = c, n
		}
	}
	return best
}

func (t *Tree) grow(ds *Dataset, idx []int, cfg Config, depth int) *node {
	counts := t.classCounts(ds, idx)
	imp := gini(counts, len(idx))
	nd := &node{n: len(idx), impurity: imp, class: majority(counts)}
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || imp == 0 {
		nd.leaf = true
		return nd
	}

	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	order := make([]int, len(idx))
	for f := 0; f < t.numFeat; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool {
			return ds.Examples[order[a]].X[f] < ds.Examples[order[b]].X[f]
		})
		leftCounts := make([]int, t.numClass)
		rightCounts := append([]int(nil), counts...)
		for k := 0; k < len(order)-1; k++ {
			y := ds.Examples[order[k]].Y
			leftCounts[y]++
			rightCounts[y]--
			xa := ds.Examples[order[k]].X[f]
			xb := ds.Examples[order[k+1]].X[f]
			if xa == xb {
				continue
			}
			nl, nr := k+1, len(order)-k-1
			if nl < cfg.MinLeaf || nr < cfg.MinLeaf {
				continue
			}
			w := float64(len(order))
			gain := imp - (float64(nl)/w)*gini(leftCounts, nl) - (float64(nr)/w)*gini(rightCounts, nr)
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (xa + xb) / 2
			}
		}
	}
	if bestFeat < 0 || bestGain < cfg.MinImpurityDecrease {
		nd.leaf = true
		return nd
	}

	var li, ri []int
	for _, i := range idx {
		if ds.Examples[i].X[bestFeat] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	nd.feature = bestFeat
	nd.threshold = bestThresh
	t.importance[bestFeat] += bestGain * float64(len(idx))
	nd.left = t.grow(ds, li, cfg, depth+1)
	nd.right = t.grow(ds, ri, cfg, depth+1)
	return nd
}

// Predict classifies x.
func (t *Tree) Predict(x []float64) int {
	nd := t.root
	for !nd.leaf {
		if x[nd.feature] <= nd.threshold {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.class
}

// Depth returns the tree depth (a lone leaf has depth 0).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves counts the leaf nodes.
func (t *Tree) Leaves() int { return leaves(t.root) }

func leaves(n *node) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	return leaves(n.left) + leaves(n.right)
}

// UsedFeatures lists the distinct feature indices appearing in splits,
// sorted. The paper's Figure 3 tree uses exactly two (features 6 and 7 of
// Table I).
func (t *Tree) UsedFeatures() []int {
	set := map[int]bool{}
	var walk func(*node)
	walk = func(n *node) {
		if n == nil || n.leaf {
			return
		}
		set[n.feature] = true
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	out := make([]int, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// Importance returns normalized impurity-decrease importances per feature.
func (t *Tree) Importance() []float64 {
	out := make([]float64, len(t.importance))
	var sum float64
	for _, v := range t.importance {
		sum += v
	}
	if sum == 0 {
		return out
	}
	for i, v := range t.importance {
		out[i] = v / sum
	}
	return out
}

// String renders the tree in the style of the paper's Figure 3: internal
// nodes labeled with features and thresholds, leaves with classes.
func (t *Tree) String() string {
	var b strings.Builder
	t.render(&b, t.root, "", true)
	return b.String()
}

func (t *Tree) render(b *strings.Builder, n *node, prefix string, root bool) {
	if n == nil {
		return
	}
	connector := ""
	if !root {
		connector = prefix
	}
	if n.leaf {
		fmt.Fprintf(b, "%s[%s] (n=%d)\n", connector, t.ds.className(n.class), n.n)
		return
	}
	fmt.Fprintf(b, "%s%s <= %.4g? (n=%d, gini=%.3f)\n", connector, t.ds.featureName(n.feature), n.threshold, n.n, n.impurity)
	childPrefix := strings.Repeat(" ", len(prefix))
	t.render(b, n.left, childPrefix+"  yes-> ", false)
	t.render(b, n.right, childPrefix+"  no--> ", false)
}

// --- Evaluation ---

// ConfusionMatrix counts predictions: M[actual][predicted].
type ConfusionMatrix struct {
	Counts     [][]int
	ClassNames []string
}

// NewConfusionMatrix returns a zeroed n-class matrix.
func NewConfusionMatrix(classNames []string) *ConfusionMatrix {
	n := len(classNames)
	m := &ConfusionMatrix{ClassNames: classNames, Counts: make([][]int, n)}
	for i := range m.Counts {
		m.Counts[i] = make([]int, n)
	}
	return m
}

// Add records one (actual, predicted) outcome.
func (m *ConfusionMatrix) Add(actual, predicted int) {
	m.Counts[actual][predicted]++
}

// Total returns the number of recorded outcomes.
func (m *ConfusionMatrix) Total() int {
	t := 0
	for _, row := range m.Counts {
		for _, c := range row {
			t += c
		}
	}
	return t
}

// Accuracy is the fraction of correct predictions.
func (m *ConfusionMatrix) Accuracy() float64 {
	total := m.Total()
	if total == 0 {
		return math.NaN()
	}
	correct := 0
	for i := range m.Counts {
		correct += m.Counts[i][i]
	}
	return float64(correct) / float64(total)
}

// FalsePositiveRate treats class positive as "positive": the fraction of
// actual negatives predicted positive (the paper's Table VI definition with
// rmc positive).
func (m *ConfusionMatrix) FalsePositiveRate(positive int) float64 {
	fp, n := 0, 0
	for actual := range m.Counts {
		if actual == positive {
			continue
		}
		for pred, c := range m.Counts[actual] {
			n += c
			if pred == positive {
				fp += c
			}
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return float64(fp) / float64(n)
}

// FalseNegativeRate is the fraction of actual positives predicted negative.
func (m *ConfusionMatrix) FalseNegativeRate(positive int) float64 {
	fn, p := 0, 0
	for pred, c := range m.Counts[positive] {
		p += c
		if pred != positive {
			fn += c
		}
	}
	if p == 0 {
		return math.NaN()
	}
	return float64(fn) / float64(p)
}

// String renders the matrix as an aligned table.
func (m *ConfusionMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "actual\\pred")
	for _, c := range m.ClassNames {
		fmt.Fprintf(&b, "%10s", c)
	}
	b.WriteByte('\n')
	for i, row := range m.Counts {
		fmt.Fprintf(&b, "%-12s", m.ClassNames[i])
		for _, c := range row {
			fmt.Fprintf(&b, "%10d", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// StratifiedKFold partitions example indices into k folds preserving class
// proportions, deterministically for a given seed.
func StratifiedKFold(ds *Dataset, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("dtree: k must be >= 2, got %d", k)
	}
	if len(ds.Examples) < k {
		return nil, fmt.Errorf("dtree: %d examples cannot fill %d folds", len(ds.Examples), k)
	}
	rng := rand.New(rand.NewSource(seed))
	byClass := map[int][]int{}
	for i, e := range ds.Examples {
		byClass[e.Y] = append(byClass[e.Y], i)
	}
	folds := make([][]int, k)
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	next := 0
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for _, i := range idx {
			folds[next%k] = append(folds[next%k], i)
			next++
		}
	}
	return folds, nil
}

// CrossValidate runs stratified k-fold cross validation and returns the
// pooled confusion matrix (the paper's Table III methodology).
func CrossValidate(ds *Dataset, cfg Config, k int, seed int64) (*ConfusionMatrix, error) {
	folds, err := StratifiedKFold(ds, k, seed)
	if err != nil {
		return nil, err
	}
	names := ds.ClassNames
	if len(names) == 0 {
		nc := ds.numClasses()
		for i := 0; i < nc; i++ {
			names = append(names, fmt.Sprintf("class %d", i))
		}
	}
	cm := NewConfusionMatrix(names)
	for f := 0; f < k; f++ {
		holdout := map[int]bool{}
		for _, i := range folds[f] {
			holdout[i] = true
		}
		train := &Dataset{FeatureNames: ds.FeatureNames, ClassNames: ds.ClassNames}
		for i, e := range ds.Examples {
			if !holdout[i] {
				train.Examples = append(train.Examples, e)
			}
		}
		tree, err := Train(train, cfg)
		if err != nil {
			return nil, fmt.Errorf("dtree: fold %d: %w", f, err)
		}
		for _, i := range folds[f] {
			cm.Add(ds.Examples[i].Y, tree.Predict(ds.Examples[i].X))
		}
	}
	return cm, nil
}
