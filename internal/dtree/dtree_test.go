package dtree

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// xorDataset is separable only by combining both features.
func xorDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{FeatureNames: []string{"a", "b"}, ClassNames: []string{"neg", "pos"}}
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		y := 0
		if (a > 0.5) != (b > 0.5) {
			y = 1
		}
		ds.Examples = append(ds.Examples, Example{X: []float64{a, b}, Y: y})
	}
	return ds
}

// linearDataset is separable on feature 0 alone.
func linearDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{FeatureNames: []string{"x", "junk"}, ClassNames: []string{"good", "rmc"}}
	for i := 0; i < n; i++ {
		x := rng.Float64()
		y := 0
		if x > 0.6 {
			y = 1
		}
		ds.Examples = append(ds.Examples, Example{X: []float64{x, rng.Float64()}, Y: y})
	}
	return ds
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := Train(&Dataset{}, Config{}); err == nil {
		t.Error("empty dataset accepted")
	}
	bad := &Dataset{Examples: []Example{{X: []float64{1}, Y: 0}, {X: []float64{1, 2}, Y: 0}}}
	if _, err := Train(bad, Config{}); err == nil {
		t.Error("ragged features accepted")
	}
	neg := &Dataset{Examples: []Example{{X: []float64{1}, Y: -1}}}
	if _, err := Train(neg, Config{}); err == nil {
		t.Error("negative class accepted")
	}
}

func TestLearnsLinearSplit(t *testing.T) {
	ds := linearDataset(200, 1)
	tree, err := Train(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	errors := 0
	for _, e := range ds.Examples {
		if tree.Predict(e.X) != e.Y {
			errors++
		}
	}
	if errors > 2 {
		t.Errorf("%d training errors on linearly separable data", errors)
	}
	used := tree.UsedFeatures()
	if len(used) == 0 || used[0] != 0 {
		t.Errorf("expected splits on feature 0, used %v", used)
	}
	imp := tree.Importance()
	if imp[0] < 0.9 {
		t.Errorf("feature 0 importance %.2f, want ~1", imp[0])
	}
}

func TestLearnsXOR(t *testing.T) {
	ds := xorDataset(400, 2)
	tree, err := Train(ds, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	errors := 0
	for _, e := range ds.Examples {
		if tree.Predict(e.X) != e.Y {
			errors++
		}
	}
	if float64(errors) > 0.05*float64(len(ds.Examples)) {
		t.Errorf("XOR training error %d/400", errors)
	}
	if len(tree.UsedFeatures()) != 2 {
		t.Errorf("XOR needs both features, used %v", tree.UsedFeatures())
	}
}

func TestPureLeafStopsGrowth(t *testing.T) {
	ds := &Dataset{Examples: []Example{
		{X: []float64{1}, Y: 0}, {X: []float64{2}, Y: 0}, {X: []float64{3}, Y: 0},
	}}
	tree, err := Train(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 || tree.Leaves() != 1 {
		t.Errorf("pure dataset should give a single leaf, got depth %d leaves %d", tree.Depth(), tree.Leaves())
	}
	if tree.Predict([]float64{99}) != 0 {
		t.Error("single-leaf prediction wrong")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	ds := xorDataset(400, 3)
	for _, d := range []int{1, 2, 3} {
		tree, err := Train(ds, Config{MaxDepth: d, MinLeaf: 1})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Depth() > d {
			t.Errorf("MaxDepth %d produced depth %d", d, tree.Depth())
		}
	}
}

func TestMinLeafRespected(t *testing.T) {
	ds := linearDataset(100, 4)
	tree, err := Train(ds, Config{MinLeaf: 20})
	if err != nil {
		t.Fatal(err)
	}
	var check func(n *node) bool
	check = func(n *node) bool {
		if n == nil {
			return true
		}
		if n.leaf {
			return n.n >= 20 || n.n == len(ds.Examples)
		}
		return check(n.left) && check(n.right)
	}
	if !check(tree.root) {
		t.Error("leaf smaller than MinLeaf")
	}
}

func TestStringRendering(t *testing.T) {
	ds := linearDataset(100, 5)
	tree, _ := Train(ds, Config{MaxDepth: 2})
	s := tree.String()
	if !strings.Contains(s, "x <=") {
		t.Errorf("rendering missing feature name:\n%s", s)
	}
	if !strings.Contains(s, "[good]") && !strings.Contains(s, "[rmc]") {
		t.Errorf("rendering missing class names:\n%s", s)
	}
}

func TestConfusionMatrix(t *testing.T) {
	m := NewConfusionMatrix([]string{"good", "rmc"})
	// Paper Table III: actual good: 118 predicted good, 2 predicted rmc;
	// actual rmc: 3 predicted good, 69 predicted rmc.
	for i := 0; i < 118; i++ {
		m.Add(0, 0)
	}
	for i := 0; i < 2; i++ {
		m.Add(0, 1)
	}
	for i := 0; i < 3; i++ {
		m.Add(1, 0)
	}
	for i := 0; i < 69; i++ {
		m.Add(1, 1)
	}
	if m.Total() != 192 {
		t.Fatalf("total = %d", m.Total())
	}
	if acc := m.Accuracy(); math.Abs(acc-187.0/192) > 1e-12 {
		t.Errorf("accuracy = %f, want 187/192", acc)
	}
	if fpr := m.FalsePositiveRate(1); math.Abs(fpr-2.0/120) > 1e-12 {
		t.Errorf("FPR = %f, want 2/120", fpr)
	}
	if fnr := m.FalseNegativeRate(1); math.Abs(fnr-3.0/72) > 1e-12 {
		t.Errorf("FNR = %f, want 3/72", fnr)
	}
	s := m.String()
	if !strings.Contains(s, "118") || !strings.Contains(s, "rmc") {
		t.Errorf("matrix rendering:\n%s", s)
	}
}

func TestConfusionMatrixEmpty(t *testing.T) {
	m := NewConfusionMatrix([]string{"a", "b"})
	if !math.IsNaN(m.Accuracy()) {
		t.Error("accuracy of empty matrix should be NaN")
	}
	if !math.IsNaN(m.FalsePositiveRate(1)) || !math.IsNaN(m.FalseNegativeRate(1)) {
		t.Error("rates of empty matrix should be NaN")
	}
}

func TestStratifiedKFold(t *testing.T) {
	ds := linearDataset(100, 6)
	folds, err := StratifiedKFold(ds, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 10 {
		t.Fatalf("%d folds", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		for _, i := range f {
			if seen[i] {
				t.Fatalf("example %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 100 {
		t.Fatalf("folds cover %d of 100", len(seen))
	}
	// Stratification: each fold's class balance within 2 of proportional.
	var totalPos int
	for _, e := range ds.Examples {
		totalPos += e.Y
	}
	for fi, f := range folds {
		pos := 0
		for _, i := range f {
			pos += ds.Examples[i].Y
		}
		expect := float64(totalPos) / 10
		if math.Abs(float64(pos)-expect) > 2 {
			t.Errorf("fold %d has %d positives, expect ~%.1f", fi, pos, expect)
		}
	}

	if _, err := StratifiedKFold(ds, 1, 0); err == nil {
		t.Error("k=1 accepted")
	}
	tiny := &Dataset{Examples: ds.Examples[:3]}
	if _, err := StratifiedKFold(tiny, 10, 0); err == nil {
		t.Error("more folds than examples accepted")
	}
}

func TestCrossValidateAccuracy(t *testing.T) {
	ds := linearDataset(200, 7)
	cm, err := CrossValidate(ds, Config{}, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() != 200 {
		t.Fatalf("CV total = %d", cm.Total())
	}
	if acc := cm.Accuracy(); acc < 0.93 {
		t.Errorf("CV accuracy %.3f on separable data", acc)
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	ds := xorDataset(150, 8)
	a, err := CrossValidate(ds, Config{}, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(ds, Config{}, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Counts {
		for j := range a.Counts[i] {
			if a.Counts[i][j] != b.Counts[i][j] {
				t.Fatal("same seed gave different CV results")
			}
		}
	}
}

// Property: predictions are always a class present in training data.
func TestPredictClosedWorldProperty(t *testing.T) {
	ds := linearDataset(80, 10)
	tree, err := Train(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		y := tree.Predict([]float64{a, b})
		return y == 0 || y == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: training is invariant to example order.
func TestOrderInvarianceProperty(t *testing.T) {
	ds := linearDataset(60, 11)
	t1, _ := Train(ds, Config{})
	shuffled := &Dataset{FeatureNames: ds.FeatureNames, ClassNames: ds.ClassNames}
	rng := rand.New(rand.NewSource(12))
	perm := rng.Perm(len(ds.Examples))
	for _, i := range perm {
		shuffled.Examples = append(shuffled.Examples, ds.Examples[i])
	}
	t2, _ := Train(shuffled, Config{})
	probe := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		x := []float64{probe.Float64(), probe.Float64()}
		if t1.Predict(x) != t2.Predict(x) {
			t.Fatalf("order-dependent prediction at %v", x)
		}
	}
}
