package dtree

import (
	"encoding/json"
	"fmt"
)

// jsonNode is the serialized form of one tree node.
type jsonNode struct {
	Leaf      bool      `json:"leaf"`
	Class     int       `json:"class,omitempty"`
	Feature   int       `json:"feature,omitempty"`
	Threshold float64   `json:"threshold,omitempty"`
	N         int       `json:"n,omitempty"`
	Impurity  float64   `json:"impurity,omitempty"`
	Left      *jsonNode `json:"left,omitempty"`
	Right     *jsonNode `json:"right,omitempty"`
}

// jsonTree is the serialized form of a trained classifier.
type jsonTree struct {
	NumFeatures  int       `json:"num_features"`
	NumClasses   int       `json:"num_classes"`
	FeatureNames []string  `json:"feature_names,omitempty"`
	ClassNames   []string  `json:"class_names,omitempty"`
	Importance   []float64 `json:"importance,omitempty"`
	Root         *jsonNode `json:"root"`
}

func encodeNode(n *node) *jsonNode {
	if n == nil {
		return nil
	}
	return &jsonNode{
		Leaf: n.leaf, Class: n.class,
		Feature: n.feature, Threshold: n.threshold,
		N: n.n, Impurity: n.impurity,
		Left: encodeNode(n.left), Right: encodeNode(n.right),
	}
}

func decodeNode(j *jsonNode, numFeat int) (*node, error) {
	if j == nil {
		return nil, nil
	}
	n := &node{
		leaf: j.Leaf, class: j.Class,
		feature: j.Feature, threshold: j.Threshold,
		n: j.N, impurity: j.Impurity,
	}
	if !n.leaf {
		if n.feature < 0 || n.feature >= numFeat {
			return nil, fmt.Errorf("dtree: split on feature %d of %d", n.feature, numFeat)
		}
		var err error
		if n.left, err = decodeNode(j.Left, numFeat); err != nil {
			return nil, err
		}
		if n.right, err = decodeNode(j.Right, numFeat); err != nil {
			return nil, err
		}
		if n.left == nil || n.right == nil {
			return nil, fmt.Errorf("dtree: internal node missing a child")
		}
	}
	return n, nil
}

// MarshalJSON serializes the trained tree, including the names needed to
// render it after loading.
func (t *Tree) MarshalJSON() ([]byte, error) {
	jt := jsonTree{
		NumFeatures: t.numFeat,
		NumClasses:  t.numClass,
		Importance:  t.importance,
		Root:        encodeNode(t.root),
	}
	if t.ds != nil {
		jt.FeatureNames = t.ds.FeatureNames
		jt.ClassNames = t.ds.ClassNames
	}
	return json.Marshal(jt)
}

// UnmarshalJSON restores a tree serialized by MarshalJSON. The restored
// tree predicts and renders identically; it carries no training examples.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var jt jsonTree
	if err := json.Unmarshal(data, &jt); err != nil {
		return fmt.Errorf("dtree: %w", err)
	}
	if jt.Root == nil {
		return fmt.Errorf("dtree: serialized tree has no root")
	}
	if jt.NumFeatures <= 0 {
		return fmt.Errorf("dtree: serialized tree has %d features", jt.NumFeatures)
	}
	root, err := decodeNode(jt.Root, jt.NumFeatures)
	if err != nil {
		return err
	}
	t.numFeat = jt.NumFeatures
	t.numClass = jt.NumClasses
	t.importance = jt.Importance
	if t.importance == nil {
		t.importance = make([]float64, jt.NumFeatures)
	}
	t.root = root
	t.ds = &Dataset{FeatureNames: jt.FeatureNames, ClassNames: jt.ClassNames}
	return nil
}
