package dtree

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestTreeJSONRoundTrip(t *testing.T) {
	ds := xorDataset(300, 21)
	orig, err := Train(ds, Config{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var restored Tree
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	// Identical predictions on a probe grid.
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 500; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if orig.Predict(x) != restored.Predict(x) {
			t.Fatalf("prediction diverged at %v", x)
		}
	}
	// Structure and rendering preserved.
	if orig.Depth() != restored.Depth() || orig.Leaves() != restored.Leaves() {
		t.Errorf("structure changed: depth %d/%d leaves %d/%d",
			orig.Depth(), restored.Depth(), orig.Leaves(), restored.Leaves())
	}
	if orig.String() != restored.String() {
		t.Errorf("rendering changed:\n%s\nvs\n%s", orig, &restored)
	}
	u1, u2 := orig.UsedFeatures(), restored.UsedFeatures()
	if len(u1) != len(u2) {
		t.Errorf("used features changed: %v vs %v", u1, u2)
	}
	imp := restored.Importance()
	if len(imp) != 2 {
		t.Errorf("importance lost: %v", imp)
	}
}

func TestTreeJSONValidation(t *testing.T) {
	var tr Tree
	if err := json.Unmarshal([]byte(`{}`), &tr); err == nil {
		t.Error("rootless tree accepted")
	}
	if err := json.Unmarshal([]byte(`{"num_features":2,"root":{"leaf":false,"feature":9,
		"left":{"leaf":true},"right":{"leaf":true}}}`), &tr); err == nil {
		t.Error("out-of-range feature accepted")
	}
	if err := json.Unmarshal([]byte(`{"num_features":2,"root":{"leaf":false,"feature":0,
		"left":{"leaf":true}}}`), &tr); err == nil {
		t.Error("missing child accepted")
	}
	if err := json.Unmarshal([]byte(`{"num_features":0,"root":{"leaf":true}}`), &tr); err == nil {
		t.Error("zero features accepted")
	}
	if err := json.Unmarshal([]byte(`not json`), &tr); err == nil {
		t.Error("garbage accepted")
	}
}

func TestTreeJSONSingleLeaf(t *testing.T) {
	ds := &Dataset{Examples: []Example{{X: []float64{1}, Y: 0}}}
	orig, err := Train(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var restored Tree
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Predict([]float64{42}) != 0 {
		t.Error("leaf-only tree prediction wrong")
	}
}
