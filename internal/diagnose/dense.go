package diagnose

// Dense all-channels CF accumulation for the fused single-pass analysis.
//
// The two-pass pipeline learns the contended channels between its passes:
// pass one classifies, pass two attributes CF for exactly those channels.
// A single-pass pipeline has no such luxury — classification needs the
// whole trace's features, so when a sample goes by, nobody yet knows which
// channels will matter. DenseCF resolves that by counting attribution for
// every remote node-to-node channel as the samples stream, into flat
// arrays indexed by (channel, table slot) — no maps, no branches on the
// contended set — and then projecting the counts onto whichever channels
// the classifier flags. Only remote channels (Src != Dst) are counted:
// classification runs over the machine's remote channels exclusively, so a
// local channel can never be contended, and skipping the samples that land
// on one (cache hits and node-local DRAM/LFB traffic — usually most of the
// trace) keeps the per-sample cost down. All state is integer counts, so
// for remote contended sets Restrict reproduces a directly-accumulated
// CFAccumulator bit for bit.

import (
	"fmt"

	"drbw/internal/alloc"
	"drbw/internal/cache"
	"drbw/internal/pebs"
	"drbw/internal/topology"
)

// SlotAttributor is an Attributor whose objects occupy dense slots
// 0..Len()-1 in ascending base-address order, so per-object counts can
// live in a flat array and lookups can binary-search the slot ranges.
// Object(SlotID(i)) must describe slot i's address range — DenseCF
// flattens those ranges for its per-sample search, and LookupSlot must
// agree with them. The offline range table (profiledata.Table) implements
// it.
type SlotAttributor interface {
	Attributor
	// LookupSlot resolves addr to the slot of its containing object.
	LookupSlot(addr uint64) (int, bool)
	// SlotID returns the ID of the object occupying slot.
	SlotID(slot int) alloc.ObjectID
	// Len returns the number of slots.
	Len() int
}

// DenseCF accumulates CF attribution counts for every channel of an
// n-node machine at once, before the contended set is known. State is
// O(nodes² × slots) integers — independent of trace length — and Merge is
// integer addition, so per-worker accumulators merge exactly in any order.
type DenseCF struct {
	heap   SlotAttributor
	weight float64
	nodes  int
	slots  int
	// bases and limits flatten the slot ranges ([bases[i], limits[i]) is
	// slot i) so the per-sample lookup is one inline binary search over a
	// packed array instead of an interface call per sample — this runs once
	// per sample on the analysis hot path.
	bases, limits []uint64
	// counts holds slots+1 int64s per channel — one per table slot plus a
	// trailing unattributed bucket — for channel index src*nodes+dst. Every
	// counted sample lands in exactly one bucket of its channel's row, so
	// the row sum is the channel's sample count; no separate total is kept.
	// Local-channel (src == dst) rows stay zero.
	counts []int64
}

// NewDenseCF prepares dense accumulation over an n-node machine's channels.
// weight scales kept samples to true counts; non-positive means 1.
func NewDenseCF(heap SlotAttributor, nodes int, weight float64) *DenseCF {
	if weight <= 0 {
		weight = 1
	}
	slots := heap.Len()
	nn := nodes * nodes
	d := &DenseCF{
		heap: heap, weight: weight, nodes: nodes, slots: slots,
		bases:  make([]uint64, slots),
		limits: make([]uint64, slots),
		counts: make([]int64, nn*(slots+1)),
	}
	for i := 0; i < slots; i++ {
		o := heap.Object(heap.SlotID(i))
		d.bases[i] = o.Base
		d.limits[i] = o.Base + o.Size
	}
	return d
}

// Add accounts one chunk of samples. Every sample's nodes must already be
// validated against the machine (the analysis pipeline checks each block
// before accumulating). Samples that CFAccumulator.Add would file under a
// local channel — cache-level hits, which charge the source node's own
// channel, and DRAM/LFB traffic homed on its source node — are skipped:
// Restrict only ever projects onto remote channels.
func (d *DenseCF) Add(samples []pebs.Sample) {
	nodes, stride := d.nodes, d.slots+1
	bases, limits, counts := d.bases, d.limits, d.counts
	// Consecutive samples tend to touch the same object; remembering the
	// previous hit skips the search for them.
	last := -1
	for i := range samples {
		s := &samples[i]
		// One unsigned compare covers s.Level ∈ {L1, L2, L3}: the levels
		// ascend from L1 = 0, and invalid negatives wrap past L3.
		if s.HomeNode == s.SrcNode || uint(s.Level) <= uint(cache.L3) {
			continue // lands on a local channel, which is never contended
		}
		ci := int(s.SrcNode)*nodes + int(s.HomeNode)
		addr := s.Addr
		if last >= 0 && addr >= bases[last] && addr < limits[last] {
			counts[ci*stride+last]++
			continue
		}
		// First index with base > addr, then bounds-check its
		// predecessor — the same range rule Table.LookupSlot applies.
		lo, hi := 0, len(bases)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if bases[mid] <= addr {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > 0 && addr < limits[lo-1] {
			last = lo - 1
			counts[ci*stride+last]++
		} else {
			counts[ci*stride+d.slots]++
		}
	}
}

// Merge folds o's counts into d. Both must have been built over the same
// machine, table and weight. o is unchanged.
func (d *DenseCF) Merge(o *DenseCF) error {
	if d.nodes != o.nodes || d.slots != o.slots || d.weight != o.weight {
		return fmt.Errorf("diagnose: cannot merge dense CF accumulators with different shape (%d/%d nodes, %d/%d slots, weight %v/%v)",
			d.nodes, o.nodes, d.slots, o.slots, d.weight, o.weight)
	}
	for i := range d.counts {
		d.counts[i] += o.counts[i]
	}
	return nil
}

// Restrict projects the dense counts onto the contended channels,
// returning a CFAccumulator holding exactly the state that
// NewCFAccumulator(heap, contended, weight) followed by Add over the same
// samples would hold — integer counts carry over unchanged, so the
// resulting Report is bit-identical to direct accumulation. That promise
// covers the channels classification can produce: remote channels of the
// machine the counts were built for. Local (Src == Dst) channels and
// channels outside the machine contribute nothing.
func (d *DenseCF) Restrict(contended []topology.Channel) *CFAccumulator {
	a := NewCFAccumulator(d.heap, contended, d.weight)
	stride := d.slots + 1
	for idx, ch := range a.channels {
		if ch.Src == ch.Dst || int(ch.Src) < 0 || int(ch.Src) >= d.nodes || int(ch.Dst) < 0 || int(ch.Dst) >= d.nodes {
			continue
		}
		ci := int(ch.Src)*d.nodes + int(ch.Dst)
		row := d.counts[ci*stride : ci*stride+stride]
		var total int64
		for _, n := range row {
			total += n
		}
		a.count[idx] = total
		for slot, n := range row[:d.slots] {
			if n != 0 {
				id := d.heap.SlotID(slot)
				a.byObj[idx][id] += n
				a.totalByObj[id] += n
			}
		}
		a.unattr += row[d.slots]
	}
	return a
}
