package diagnose

import (
	"fmt"
	"math"
	"strings"

	"drbw/internal/pebs"
	"drbw/internal/xsum"
)

// Bucket is one time slice of a profiled run.
type Bucket struct {
	Start, End float64 // cycles
	// Samples is the weighted sample count in the slice.
	Samples float64
	// RemoteSamples counts remote-DRAM samples.
	RemoteSamples float64
	// AvgRemoteLatency is the mean latency of the slice's remote samples
	// (0 when there are none).
	AvgRemoteLatency float64
}

// Timeline buckets a run's samples into n equal time slices — the
// profiler-style view of *when* remote pressure happened (AMG's solve phase
// lights up while init stays dark). weight scales kept samples to true
// counts. Timeline is the slice form of TimelineAccumulator and is defined
// as exactly that: observe, add, finalize.
func Timeline(samples []pebs.Sample, n int, weight float64) []Bucket {
	acc := NewTimelineAccumulator(n, weight)
	acc.Observe(samples)
	acc.Add(samples)
	return acc.Buckets()
}

// TimelineAccumulator is the two-pass streaming form of Timeline. Bucket
// boundaries need the global time range, so a streaming caller feeds every
// chunk to Observe first, then replays the recording through Add and reads
// Buckets.
//
// Both passes are mergeable for shard-parallel analysis: pass-one range
// state merges with Merge before any Add, and pass-two counting state
// merges across Fork clones afterwards. Counts are integers and the
// latency mass is an exact xsum total, so the result is a function of the
// sample multiset alone — chunk order, shard boundaries and merge shape
// never show in the output, and any streamed or sharded schedule is
// bit-identical to Timeline over the whole slice. State stays bounded by
// the bucket count.
type TimelineAccumulator struct {
	n          int
	weight     float64
	minT, maxT float64
	total      int

	// Pass-two state, built when the bucket geometry freezes.
	frozen  bool
	start   float64 // frozen minT
	span    float64
	samples []int64
	remote  []int64
	lat     []xsum.Sum
}

// NewTimelineAccumulator prepares an n-bucket timeline. weight scales kept
// samples to true counts; non-positive means 1.
func NewTimelineAccumulator(n int, weight float64) *TimelineAccumulator {
	if weight <= 0 {
		weight = 1
	}
	return &TimelineAccumulator{n: n, weight: weight, minT: math.Inf(1), maxT: math.Inf(-1)}
}

// Observe widens the time range to cover a chunk (pass one).
func (t *TimelineAccumulator) Observe(samples []pebs.Sample) {
	t.total += len(samples)
	for i := range samples {
		if samples[i].Time < t.minT {
			t.minT = samples[i].Time
		}
		if samples[i].Time > t.maxT {
			t.maxT = samples[i].Time
		}
	}
}

// ObserveRange folds an already-summarized chunk into pass one: n samples
// spanning [minT, maxT]. A sharded pass one reduces each worker's portion
// to exactly this triple.
func (t *TimelineAccumulator) ObserveRange(minT, maxT float64, n int) {
	if n <= 0 {
		return
	}
	t.total += n
	if minT < t.minT {
		t.minT = minT
	}
	if maxT > t.maxT {
		t.maxT = maxT
	}
}

// freeze fixes the bucket geometry from the observed range and allocates
// the counting state. After freeze, Observe/ObserveRange must not widen the
// range any further (Merge enforces this across accumulators).
func (t *TimelineAccumulator) freeze() {
	if t.frozen {
		return
	}
	maxT := t.maxT
	if maxT <= t.minT {
		maxT = t.minT + 1
	}
	t.start = t.minT
	t.span = maxT - t.minT
	t.samples = make([]int64, t.n)
	t.remote = make([]int64, t.n)
	t.lat = make([]xsum.Sum, t.n)
	t.frozen = true
}

// Add buckets a chunk (pass two). The first Add freezes the bucket
// geometry from everything observed so far. Samples outside the observed
// range clamp to the first or last bucket instead of indexing out of
// bounds — they can only appear when the recording changed between the
// passes, and the pipeline reports that separately.
func (t *TimelineAccumulator) Add(samples []pebs.Sample) {
	if t.n <= 0 {
		return
	}
	if !t.frozen {
		if t.total == 0 {
			return
		}
		t.freeze()
	}
	for idx := range samples {
		s := &samples[idx]
		i := int(float64(t.n) * (s.Time - t.start) / t.span)
		if i >= t.n {
			i = t.n - 1
		}
		if i < 0 {
			i = 0
		}
		t.samples[i]++
		if s.RemoteDRAM() {
			t.remote[i]++
			t.lat[i].Add(s.Latency)
		}
	}
}

// Fork returns an add-phase clone sharing this accumulator's frozen bucket
// geometry but holding no counts: one per worker in a sharded pass two,
// merged back with Merge. Fork freezes the parent's geometry, so all
// observation must be complete. Forking before any sample was observed
// returns nil (there is nothing to bucket).
func (t *TimelineAccumulator) Fork() *TimelineAccumulator {
	if t.n <= 0 || (!t.frozen && t.total == 0) {
		return nil
	}
	t.freeze()
	f := &TimelineAccumulator{
		n: t.n, weight: t.weight,
		minT: t.minT, maxT: t.maxT,
		start: t.start, span: t.span,
	}
	f.samples = make([]int64, f.n)
	f.remote = make([]int64, f.n)
	f.lat = make([]xsum.Sum, f.n)
	f.frozen = true
	return f
}

// Merge folds o into t. Before freezing, it merges pass-one range state
// (another shard's ObserveRange); after, it merges pass-two counts from a
// Fork clone. Both accumulators must be in the same phase with the same
// shape, and frozen ones must share their geometry — anything else is a
// pipeline bug, reported as an error rather than silently misbucketed. o is
// logically unchanged.
func (t *TimelineAccumulator) Merge(o *TimelineAccumulator) error {
	if t.n != o.n || t.weight != o.weight {
		return fmt.Errorf("diagnose: cannot merge timelines with different shape (%d/%d buckets, weight %v/%v)", t.n, o.n, t.weight, o.weight)
	}
	if t.frozen != o.frozen {
		return fmt.Errorf("diagnose: cannot merge timelines from different passes")
	}
	if !t.frozen {
		t.ObserveRange(o.minT, o.maxT, o.total)
		return nil
	}
	if t.start != o.start || t.span != o.span {
		return fmt.Errorf("diagnose: cannot merge timelines with different bucket geometry")
	}
	t.total += o.total
	for i := range t.samples {
		t.samples[i] += o.samples[i]
		t.remote[i] += o.remote[i]
		t.lat[i].Merge(&o.lat[i])
	}
	return nil
}

// Buckets finalizes and returns the timeline (nil when no samples were
// observed, matching Timeline). Weighted counts are count×weight products
// and the average latency is the exact latency mass over the exact count,
// so finalization is as order-blind as the accumulation.
func (t *TimelineAccumulator) Buckets() []Bucket {
	if t.total == 0 || t.n <= 0 {
		return nil
	}
	t.freeze()
	out := make([]Bucket, t.n)
	for i := range out {
		out[i].Start = t.start + t.span*float64(i)/float64(t.n)
		out[i].End = t.start + t.span*float64(i+1)/float64(t.n)
		out[i].Samples = float64(t.samples[i]) * t.weight
		out[i].RemoteSamples = float64(t.remote[i]) * t.weight
		if t.remote[i] > 0 {
			out[i].AvgRemoteLatency = t.lat[i].Value() / float64(t.remote[i])
		}
	}
	return out
}

// sparkRunes are the eight sparkline levels.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders one rune per bucket, scaled to the peak of the chosen
// metric. Buckets with no remote samples render as spaces.
func Sparkline(buckets []Bucket, metric func(Bucket) float64) string {
	if len(buckets) == 0 {
		return ""
	}
	peak := 0.0
	for _, b := range buckets {
		if v := metric(b); v > peak {
			peak = v
		}
	}
	if peak == 0 {
		return strings.Repeat(" ", len(buckets))
	}
	var sb strings.Builder
	for _, b := range buckets {
		v := metric(b)
		if v <= 0 {
			sb.WriteByte(' ')
			continue
		}
		i := int(v / peak * float64(len(sparkRunes)))
		if i >= len(sparkRunes) {
			i = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[i])
	}
	return sb.String()
}

// RemoteLatencyMetric selects the per-bucket mean remote latency.
func RemoteLatencyMetric(b Bucket) float64 { return b.AvgRemoteLatency }

// RemoteTrafficMetric selects the per-bucket remote sample count.
func RemoteTrafficMetric(b Bucket) float64 { return b.RemoteSamples }
