package diagnose

import (
	"math"
	"strings"

	"drbw/internal/pebs"
)

// Bucket is one time slice of a profiled run.
type Bucket struct {
	Start, End float64 // cycles
	// Samples is the weighted sample count in the slice.
	Samples float64
	// RemoteSamples counts remote-DRAM samples.
	RemoteSamples float64
	// AvgRemoteLatency is the mean latency of the slice's remote samples
	// (0 when there are none).
	AvgRemoteLatency float64
}

// Timeline buckets a run's samples into n equal time slices — the
// profiler-style view of *when* remote pressure happened (AMG's solve phase
// lights up while init stays dark). weight scales kept samples to true
// counts.
func Timeline(samples []pebs.Sample, n int, weight float64) []Bucket {
	if len(samples) == 0 || n <= 0 {
		return nil
	}
	if weight <= 0 {
		weight = 1
	}
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		if s.Time < minT {
			minT = s.Time
		}
		if s.Time > maxT {
			maxT = s.Time
		}
	}
	if maxT <= minT {
		maxT = minT + 1
	}
	span := maxT - minT
	out := make([]Bucket, n)
	lat := make([]float64, n)
	for i := range out {
		out[i].Start = minT + span*float64(i)/float64(n)
		out[i].End = minT + span*float64(i+1)/float64(n)
	}
	for _, s := range samples {
		i := int(float64(n) * (s.Time - minT) / span)
		if i >= n {
			i = n - 1
		}
		out[i].Samples += weight
		if s.RemoteDRAM() {
			out[i].RemoteSamples += weight
			lat[i] += s.Latency * weight
		}
	}
	for i := range out {
		if out[i].RemoteSamples > 0 {
			out[i].AvgRemoteLatency = lat[i] / out[i].RemoteSamples
		}
	}
	return out
}

// sparkRunes are the eight sparkline levels.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders one rune per bucket, scaled to the peak of the chosen
// metric. Buckets with no remote samples render as spaces.
func Sparkline(buckets []Bucket, metric func(Bucket) float64) string {
	if len(buckets) == 0 {
		return ""
	}
	peak := 0.0
	for _, b := range buckets {
		if v := metric(b); v > peak {
			peak = v
		}
	}
	if peak == 0 {
		return strings.Repeat(" ", len(buckets))
	}
	var sb strings.Builder
	for _, b := range buckets {
		v := metric(b)
		if v <= 0 {
			sb.WriteByte(' ')
			continue
		}
		i := int(v / peak * float64(len(sparkRunes)))
		if i >= len(sparkRunes) {
			i = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[i])
	}
	return sb.String()
}

// RemoteLatencyMetric selects the per-bucket mean remote latency.
func RemoteLatencyMetric(b Bucket) float64 { return b.AvgRemoteLatency }

// RemoteTrafficMetric selects the per-bucket remote sample count.
func RemoteTrafficMetric(b Bucket) float64 { return b.RemoteSamples }
