package diagnose

import (
	"math"
	"strings"

	"drbw/internal/pebs"
)

// Bucket is one time slice of a profiled run.
type Bucket struct {
	Start, End float64 // cycles
	// Samples is the weighted sample count in the slice.
	Samples float64
	// RemoteSamples counts remote-DRAM samples.
	RemoteSamples float64
	// AvgRemoteLatency is the mean latency of the slice's remote samples
	// (0 when there are none).
	AvgRemoteLatency float64
}

// Timeline buckets a run's samples into n equal time slices — the
// profiler-style view of *when* remote pressure happened (AMG's solve phase
// lights up while init stays dark). weight scales kept samples to true
// counts.
func Timeline(samples []pebs.Sample, n int, weight float64) []Bucket {
	if len(samples) == 0 || n <= 0 {
		return nil
	}
	if weight <= 0 {
		weight = 1
	}
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		if s.Time < minT {
			minT = s.Time
		}
		if s.Time > maxT {
			maxT = s.Time
		}
	}
	if maxT <= minT {
		maxT = minT + 1
	}
	span := maxT - minT
	out := make([]Bucket, n)
	lat := make([]float64, n)
	for i := range out {
		out[i].Start = minT + span*float64(i)/float64(n)
		out[i].End = minT + span*float64(i+1)/float64(n)
	}
	for _, s := range samples {
		i := int(float64(n) * (s.Time - minT) / span)
		if i >= n {
			i = n - 1
		}
		out[i].Samples += weight
		if s.RemoteDRAM() {
			out[i].RemoteSamples += weight
			lat[i] += s.Latency * weight
		}
	}
	for i := range out {
		if out[i].RemoteSamples > 0 {
			out[i].AvgRemoteLatency = lat[i] / out[i].RemoteSamples
		}
	}
	return out
}

// TimelineAccumulator is the two-pass streaming form of Timeline. Bucket
// boundaries need the global time range, so a streaming caller feeds every
// chunk to Observe first, then replays the recording through Add and reads
// Buckets. The result is bit-identical to Timeline over the concatenated
// chunks, while state stays bounded by the bucket count.
type TimelineAccumulator struct {
	n          int
	weight     float64
	minT, maxT float64
	span       float64
	total      int
	buckets    []Bucket
	lat        []float64
}

// NewTimelineAccumulator prepares an n-bucket timeline. weight scales kept
// samples to true counts; non-positive means 1.
func NewTimelineAccumulator(n int, weight float64) *TimelineAccumulator {
	if weight <= 0 {
		weight = 1
	}
	return &TimelineAccumulator{n: n, weight: weight, minT: math.Inf(1), maxT: math.Inf(-1)}
}

// Observe widens the time range to cover a chunk (pass one).
func (t *TimelineAccumulator) Observe(samples []pebs.Sample) {
	t.total += len(samples)
	for i := range samples {
		if samples[i].Time < t.minT {
			t.minT = samples[i].Time
		}
		if samples[i].Time > t.maxT {
			t.maxT = samples[i].Time
		}
	}
}

// Add buckets a chunk (pass two). Chunks must arrive in the same order as
// they were observed for the per-bucket latency sums to match Timeline bit
// for bit.
func (t *TimelineAccumulator) Add(samples []pebs.Sample) {
	if t.total == 0 || t.n <= 0 {
		return
	}
	if t.buckets == nil {
		maxT := t.maxT
		if maxT <= t.minT {
			maxT = t.minT + 1
		}
		t.span = maxT - t.minT
		t.buckets = make([]Bucket, t.n)
		t.lat = make([]float64, t.n)
		for i := range t.buckets {
			t.buckets[i].Start = t.minT + t.span*float64(i)/float64(t.n)
			t.buckets[i].End = t.minT + t.span*float64(i+1)/float64(t.n)
		}
	}
	for idx := range samples {
		s := &samples[idx]
		i := int(float64(t.n) * (s.Time - t.minT) / t.span)
		if i >= t.n {
			i = t.n - 1
		}
		t.buckets[i].Samples += t.weight
		if s.RemoteDRAM() {
			t.buckets[i].RemoteSamples += t.weight
			t.lat[i] += s.Latency * t.weight
		}
	}
}

// Buckets finalizes and returns the timeline (nil when no samples were
// observed, matching Timeline).
func (t *TimelineAccumulator) Buckets() []Bucket {
	if t.total == 0 || t.n <= 0 {
		return nil
	}
	if t.buckets == nil {
		// Observed samples but Add was never called with any: lazily build
		// empty buckets so the shape still matches Timeline.
		t.Add(nil)
	}
	for i := range t.buckets {
		if t.buckets[i].RemoteSamples > 0 {
			t.buckets[i].AvgRemoteLatency = t.lat[i] / t.buckets[i].RemoteSamples
		} else {
			t.buckets[i].AvgRemoteLatency = 0
		}
	}
	return t.buckets
}

// sparkRunes are the eight sparkline levels.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders one rune per bucket, scaled to the peak of the chosen
// metric. Buckets with no remote samples render as spaces.
func Sparkline(buckets []Bucket, metric func(Bucket) float64) string {
	if len(buckets) == 0 {
		return ""
	}
	peak := 0.0
	for _, b := range buckets {
		if v := metric(b); v > peak {
			peak = v
		}
	}
	if peak == 0 {
		return strings.Repeat(" ", len(buckets))
	}
	var sb strings.Builder
	for _, b := range buckets {
		v := metric(b)
		if v <= 0 {
			sb.WriteByte(' ')
			continue
		}
		i := int(v / peak * float64(len(sparkRunes)))
		if i >= len(sparkRunes) {
			i = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[i])
	}
	return sb.String()
}

// RemoteLatencyMetric selects the per-bucket mean remote latency.
func RemoteLatencyMetric(b Bucket) float64 { return b.AvgRemoteLatency }

// RemoteTrafficMetric selects the per-bucket remote sample count.
func RemoteTrafficMetric(b Bucket) float64 { return b.RemoteSamples }
