package diagnose

import (
	"math/rand"
	"reflect"
	"testing"

	"drbw/internal/alloc"
	"drbw/internal/cache"
	"drbw/internal/pebs"
	"drbw/internal/topology"
)

// slotTable is a minimal SlotAttributor: contiguous fixed-size ranges, one
// slot per object, mirroring how profiledata.Table numbers its ranges.
type slotTable struct {
	base, size uint64
	objects    []alloc.Object
}

func newSlotTable(n int) *slotTable {
	st := &slotTable{base: 0x1000, size: 0x100}
	for i := 0; i < n; i++ {
		st.objects = append(st.objects, alloc.Object{
			ID: alloc.ObjectID(i + 1), Name: "obj", Base: st.base + uint64(i)*st.size, Size: st.size,
		})
	}
	return st
}

func (st *slotTable) LookupSlot(addr uint64) (int, bool) {
	if addr < st.base {
		return 0, false
	}
	slot := int((addr - st.base) / st.size)
	if slot >= len(st.objects) {
		return 0, false
	}
	return slot, true
}

func (st *slotTable) Lookup(addr uint64) (alloc.ObjectID, bool) {
	slot, ok := st.LookupSlot(addr)
	if !ok {
		return alloc.NoObject, false
	}
	return st.objects[slot].ID, true
}

func (st *slotTable) Object(id alloc.ObjectID) alloc.Object { return st.objects[int(id)-1] }
func (st *slotTable) SlotID(slot int) alloc.ObjectID        { return st.objects[slot].ID }
func (st *slotTable) Len() int                              { return len(st.objects) }

// denseTrace builds samples across every channel of a 4-node machine, with
// cache-level folds and unattributed addresses mixed in.
func denseTrace(n int, seed int64) []pebs.Sample {
	rng := rand.New(rand.NewSource(seed))
	levels := []cache.Level{cache.L1, cache.L2, cache.L3, cache.LFB, cache.MEM}
	samples := make([]pebs.Sample, n)
	for i := range samples {
		addr := 0x1000 + uint64(rng.Intn(8*0x100))
		if rng.Intn(5) == 0 {
			addr = 0x10 // below every range: unattributed
		}
		samples[i] = pebs.Sample{
			Time: float64(i), Addr: addr,
			Level:   levels[rng.Intn(len(levels))],
			Latency: float64(100 + rng.Intn(500)),
			SrcNode: topology.NodeID(rng.Intn(4)), HomeNode: topology.NodeID(rng.Intn(4)),
		}
	}
	return samples
}

// TestDenseCFRestrictMatchesDirect pins the single-pass contract: dense
// accumulation over all remote channels, then Restrict to the contended
// set, is bit-identical to a CFAccumulator that knew the contended set up
// front. Contended sets are remote channels only — all the classifier can
// ever flag.
func TestDenseCFRestrictMatchesDirect(t *testing.T) {
	table := newSlotTable(8)
	samples := denseTrace(4000, 3)
	for _, contended := range [][]topology.Channel{
		{{Src: 1, Dst: 0}, {Src: 2, Dst: 0}, {Src: 3, Dst: 0}},
		{{Src: 0, Dst: 3}},
		{{Src: 2, Dst: 1}, {Src: 2, Dst: 1}}, // duplicate collapses
		nil,
	} {
		direct := NewCFAccumulator(table, contended, 2.5)
		direct.Add(samples)
		want := direct.Report()

		dense := NewDenseCF(table, 4, 2.5)
		dense.Add(samples)
		got := dense.Restrict(contended).Report()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("contended %v: restricted dense report differs from direct accumulation\ngot  %+v\nwant %+v", contended, got, want)
		}
	}
}

// TestDenseCFLocalChannelsContributeNothing pins the remote-only contract:
// classification can only flag remote channels, so DenseCF never counts
// local (Src == Dst) traffic and Restrict reports a local channel exactly
// as an accumulator that saw no samples would.
func TestDenseCFLocalChannelsContributeNothing(t *testing.T) {
	table := newSlotTable(8)
	contended := []topology.Channel{{Src: 1, Dst: 1}}
	empty := NewCFAccumulator(table, contended, 2.5)
	want := empty.Report()

	dense := NewDenseCF(table, 4, 2.5)
	dense.Add(denseTrace(4000, 9))
	if got := dense.Restrict(contended).Report(); !reflect.DeepEqual(got, want) {
		t.Fatalf("local channel picked up counts from Restrict\ngot  %+v\nwant %+v", got, want)
	}
}

// TestDenseCFMergeMatchesSerial pins exact mergeability: per-worker dense
// accumulators over a partition merge to the serial accumulator's state.
func TestDenseCFMergeMatchesSerial(t *testing.T) {
	table := newSlotTable(8)
	samples := denseTrace(4000, 5)
	contended := []topology.Channel{{Src: 1, Dst: 0}, {Src: 3, Dst: 1}}

	serial := NewDenseCF(table, 4, 2.5)
	serial.Add(samples)
	want := serial.Restrict(contended).Report()

	merged := NewDenseCF(table, 4, 2.5)
	for start := 0; start < len(samples); start += 777 {
		end := start + 777
		if end > len(samples) {
			end = len(samples)
		}
		part := NewDenseCF(table, 4, 2.5)
		part.Add(samples[start:end])
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	if got := merged.Restrict(contended).Report(); !reflect.DeepEqual(got, want) {
		t.Fatalf("merged dense report differs from serial")
	}
}

// TestDenseCFMergeRejectsMismatch pins the shape check.
func TestDenseCFMergeRejectsMismatch(t *testing.T) {
	table := newSlotTable(8)
	a := NewDenseCF(table, 4, 2.5)
	if err := a.Merge(NewDenseCF(table, 2, 2.5)); err == nil {
		t.Fatal("merging accumulators over different machines succeeded")
	}
	if err := a.Merge(NewDenseCF(table, 4, 1)); err == nil {
		t.Fatal("merging accumulators with different weights succeeded")
	}
	if err := a.Merge(NewDenseCF(newSlotTable(3), 4, 2.5)); err == nil {
		t.Fatal("merging accumulators over different tables succeeded")
	}
}
