package diagnose

import (
	"math/rand"
	"reflect"
	"testing"

	"drbw/internal/pebs"
)

// TestTimelineAddClampsBelowRange is the regression test for the negative
// bucket index panic: a pass-two sample earlier than anything pass one
// observed (shard merged out of order, or a file mutated between passes)
// used to index buckets[-something]. It must clamp into the first bucket
// instead.
func TestTimelineAddClampsBelowRange(t *testing.T) {
	acc := NewTimelineAccumulator(4, 1)
	observed := []pebs.Sample{mkSample(10, true, 100), mkSample(20, true, 100)}
	acc.Observe(observed)
	// Time 5 < minT 10: pre-fix this panicked with index out of range.
	stray := []pebs.Sample{mkSample(5, true, 700)}
	acc.Add(observed)
	acc.Add(stray)
	b := acc.Buckets()
	if len(b) != 4 {
		t.Fatalf("%d buckets", len(b))
	}
	if b[0].Samples != 2 {
		t.Errorf("first bucket holds %v samples, want 2 (observed + clamped stray)", b[0].Samples)
	}
	var total float64
	for _, x := range b {
		total += x.Samples
	}
	if total != 3 {
		t.Errorf("timeline holds %v samples, want all 3", total)
	}

	// The slice form clamps identically.
	all := append(append([]pebs.Sample{}, observed...), stray...)
	if got := Timeline(all, 4, 1); got == nil {
		t.Fatal("Timeline returned nil")
	}
}

// TestTimelineForkMergeMatchesSerial is the shard contract for the
// timeline: pass one merged from per-worker range summaries, pass two
// merged from Fork clones fed arbitrary disjoint chunks in arbitrary
// order, bit-identical to the serial two-pass accumulator.
func TestTimelineForkMergeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	samples := make([]pebs.Sample, 3000)
	for i := range samples {
		samples[i] = mkSample(float64(i), rng.Intn(3) > 0, (100+1400*rng.Float64())*(0.8+0.4*rng.Float64()))
	}
	const n, weight = 32, 2.5
	want := Timeline(samples, n, weight)

	for trial := 0; trial < 10; trial++ {
		// Split into arbitrary contiguous parts.
		nparts := 1 + rng.Intn(5)
		var parts [][]pebs.Sample
		start := 0
		for i := 0; i < nparts; i++ {
			end := len(samples)
			if i < nparts-1 {
				end = start + rng.Intn(len(samples)-start+1)
			}
			parts = append(parts, samples[start:end])
			start = end
		}

		// Pass one: each part observed by its own accumulator, merged in
		// shuffled order.
		parent := NewTimelineAccumulator(n, weight)
		order := rng.Perm(nparts)
		for _, p := range order {
			w := NewTimelineAccumulator(n, weight)
			w.Observe(parts[p])
			if err := parent.Merge(w); err != nil {
				t.Fatal(err)
			}
		}

		// Pass two: per-part forks, merged in a different shuffled order.
		forks := make([]*TimelineAccumulator, nparts)
		for i, part := range parts {
			forks[i] = parent.Fork()
			forks[i].Add(part)
		}
		for _, p := range rng.Perm(nparts) {
			if err := parent.Merge(forks[p]); err != nil {
				t.Fatal(err)
			}
		}
		if got := parent.Buckets(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: sharded timeline differs from serial", trial)
		}
	}
}

// TestTimelineMergeRejectsMismatch: shape and phase mismatches error out
// instead of misbucketing.
func TestTimelineMergeRejectsMismatch(t *testing.T) {
	a := NewTimelineAccumulator(8, 1)
	if err := a.Merge(NewTimelineAccumulator(4, 1)); err == nil {
		t.Error("bucket count mismatch accepted")
	}
	if err := a.Merge(NewTimelineAccumulator(8, 2)); err == nil {
		t.Error("weight mismatch accepted")
	}
	one := []pebs.Sample{mkSample(1, true, 100)}
	a.Observe(one)
	frozen := a.Fork()
	if err := a.Merge(frozen); err != nil {
		// a froze when Fork ran, so this merge is legal; sanity only.
		t.Errorf("fork merge failed: %v", err)
	}
	unfrozen := NewTimelineAccumulator(8, 1)
	if err := a.Merge(unfrozen); err == nil {
		t.Error("cross-phase merge accepted")
	}
}

// TestCFAccumulatorMergeMatchesSerial: CF attribution over merged partial
// accumulators is bit-identical to the serial fold, in any merge order.
func TestCFAccumulatorMergeMatchesSerial(t *testing.T) {
	samples, _, contended, heap := contentionTrace(t, 4000, 7)
	want := Analyze(heap, samples, contended, 2.5)

	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		nparts := 1 + rng.Intn(5)
		parts := make([]*CFAccumulator, nparts)
		for i := range parts {
			parts[i] = NewCFAccumulator(heap, contended, 2.5)
		}
		for _, s := range samples {
			parts[rng.Intn(nparts)].Add([]pebs.Sample{s})
		}
		merged := NewCFAccumulator(heap, contended, 2.5)
		for _, p := range rng.Perm(nparts) {
			if err := merged.Merge(parts[p]); err != nil {
				t.Fatal(err)
			}
		}
		if got := merged.Report(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged CF report differs from Analyze", trial)
		}
	}
}

// TestCFAccumulatorMergeRejectsMismatch: differing weight or channel sets
// refuse to merge.
func TestCFAccumulatorMergeRejectsMismatch(t *testing.T) {
	_, acc, contended, heap := contentionTrace(t, 10, 1)
	if err := acc.Merge(NewCFAccumulator(heap, contended, 99)); err == nil {
		t.Error("weight mismatch accepted")
	}
	if err := acc.Merge(NewCFAccumulator(heap, contended[:1], 2.5)); err == nil {
		t.Error("channel set mismatch accepted")
	}
}
