// Package diagnose implements DR-BW's root-cause diagnoser (Section VI):
// once the classifier flags contended channels, samples on those channels
// are attributed to heap data objects and each object is charged a
// Contribution Fraction (CF).
//
// For one contended channel c and data object A:
//
//	CF_c(A) = Samples(c, A) / Samples(c, ALL)
//
// and across all contended channels:
//
//	CF(A) = Σ_c Samples(c, A) / Σ_c Samples(c, ALL)
//
// The objects with the highest CF are the root causes; the paper's fixes
// (co-locate, interleave, replicate) target exactly those objects.
package diagnose

import (
	"fmt"
	"sort"
	"strings"

	"drbw/internal/alloc"
	"drbw/internal/pebs"
	"drbw/internal/topology"
)

// ObjectCF is one data object's contribution to contention.
type ObjectCF struct {
	Object  alloc.Object
	CF      float64
	Samples float64 // weighted sample count behind the CF
}

// Report is the diagnoser output for one profiled run.
type Report struct {
	// Contended lists the channels the classifier flagged, in input order.
	Contended []topology.Channel
	// PerChannel ranks objects within each contended channel.
	PerChannel map[topology.Channel][]ObjectCF
	// Overall ranks objects across all contended channels (CF sums to 1
	// together with UnattributedCF).
	Overall []ObjectCF
	// UnattributedCF is the fraction of contended-channel samples that hit
	// no live heap object — static or stack data the profiler does not
	// track (the paper leaves those to future work).
	UnattributedCF float64
}

// Attributor resolves addresses to data objects: the live profiler passes
// its *alloc.Heap; offline analysis passes a range table reconstructed from
// a recorded object list.
type Attributor interface {
	// Lookup attributes addr to a live data object.
	Lookup(addr uint64) (alloc.ObjectID, bool)
	// Object returns the descriptor of an ID Lookup returned.
	Object(id alloc.ObjectID) alloc.Object
}

// Analyze attributes the samples on the contended channels to heap objects.
// weight scales kept samples to true counts (pebs.Collector.Weight).
func Analyze(heap Attributor, samples []pebs.Sample, contended []topology.Channel, weight float64) *Report {
	if weight <= 0 {
		weight = 1
	}
	rep := &Report{
		Contended:  append([]topology.Channel(nil), contended...),
		PerChannel: make(map[topology.Channel][]ObjectCF),
	}
	want := make(map[topology.Channel]bool, len(contended))
	for _, ch := range contended {
		want[ch] = true
	}

	byChannel := pebs.Associate(samples)
	totalAll := 0.0
	totalByObj := map[alloc.ObjectID]float64{}
	unattr := 0.0
	for ch := range want {
		chSamples := byChannel[ch]
		if len(chSamples) == 0 {
			continue
		}
		chTotal := float64(len(chSamples)) * weight
		chByObj := map[alloc.ObjectID]float64{}
		chUnattr := 0.0
		for _, s := range chSamples {
			if id, ok := heap.Lookup(s.Addr); ok {
				chByObj[id] += weight
				totalByObj[id] += weight
			} else {
				chUnattr += weight
				unattr += weight
			}
		}
		totalAll += chTotal
		rep.PerChannel[ch] = rank(heap, chByObj, chTotal)
	}
	if totalAll > 0 {
		rep.Overall = rank(heap, totalByObj, totalAll)
		rep.UnattributedCF = unattr / totalAll
	}
	return rep
}

func rank(heap Attributor, byObj map[alloc.ObjectID]float64, total float64) []ObjectCF {
	out := make([]ObjectCF, 0, len(byObj))
	for id, n := range byObj {
		out = append(out, ObjectCF{Object: heap.Object(id), CF: n / total, Samples: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CF != out[j].CF {
			return out[i].CF > out[j].CF
		}
		return out[i].Object.ID < out[j].Object.ID
	})
	return out
}

// Top returns the highest-CF objects covering at least fraction `cover` of
// the contended samples (and at least one object if any exist).
func (r *Report) Top(cover float64) []ObjectCF {
	var out []ObjectCF
	acc := 0.0
	for _, o := range r.Overall {
		out = append(out, o)
		acc += o.CF
		if acc >= cover {
			break
		}
	}
	return out
}

// String renders the overall ranking like the paper's Figure 4 data.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "contended channels: ")
	if len(r.Contended) == 0 {
		b.WriteString("none\n")
		return b.String()
	}
	for i, ch := range r.Contended {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(ch.String())
	}
	b.WriteByte('\n')
	for _, o := range r.Overall {
		fmt.Fprintf(&b, "  CF %5.1f%%  %-20s %s\n", 100*o.CF, o.Object.Name, o.Object.Site)
	}
	if r.UnattributedCF > 0 {
		fmt.Fprintf(&b, "  CF %5.1f%%  %-20s (static/stack data, not tracked)\n", 100*r.UnattributedCF, "<unattributed>")
	}
	return b.String()
}
