// Package diagnose implements DR-BW's root-cause diagnoser (Section VI):
// once the classifier flags contended channels, samples on those channels
// are attributed to heap data objects and each object is charged a
// Contribution Fraction (CF).
//
// For one contended channel c and data object A:
//
//	CF_c(A) = Samples(c, A) / Samples(c, ALL)
//
// and across all contended channels:
//
//	CF(A) = Σ_c Samples(c, A) / Σ_c Samples(c, ALL)
//
// The objects with the highest CF are the root causes; the paper's fixes
// (co-locate, interleave, replicate) target exactly those objects.
package diagnose

import (
	"fmt"
	"sort"
	"strings"

	"drbw/internal/alloc"
	"drbw/internal/cache"
	"drbw/internal/pebs"
	"drbw/internal/topology"
)

// ObjectCF is one data object's contribution to contention.
type ObjectCF struct {
	Object  alloc.Object
	CF      float64
	Samples float64 // weighted sample count behind the CF
}

// Report is the diagnoser output for one profiled run.
type Report struct {
	// Contended lists the channels the classifier flagged, in input order.
	Contended []topology.Channel
	// PerChannel ranks objects within each contended channel.
	PerChannel map[topology.Channel][]ObjectCF
	// Overall ranks objects across all contended channels (CF sums to 1
	// together with UnattributedCF).
	Overall []ObjectCF
	// UnattributedCF is the fraction of contended-channel samples that hit
	// no live heap object — static or stack data the profiler does not
	// track (the paper leaves those to future work).
	UnattributedCF float64
}

// Attributor resolves addresses to data objects: the live profiler passes
// its *alloc.Heap; offline analysis passes a range table reconstructed from
// a recorded object list.
type Attributor interface {
	// Lookup attributes addr to a live data object.
	Lookup(addr uint64) (alloc.ObjectID, bool)
	// Object returns the descriptor of an ID Lookup returned.
	Object(id alloc.ObjectID) alloc.Object
}

// Analyze attributes the samples on the contended channels to heap objects.
// weight scales kept samples to true counts (pebs.Collector.Weight).
// Channels are processed in input order (duplicates collapsed), so the
// report is deterministic and matches the streaming CFAccumulator bit for
// bit.
func Analyze(heap Attributor, samples []pebs.Sample, contended []topology.Channel, weight float64) *Report {
	acc := NewCFAccumulator(heap, contended, weight)
	acc.Add(samples)
	return acc.Report()
}

// CFAccumulator is the incremental form of Analyze: feed sample chunks with
// Add as they stream off a recording, then call Report. State is bounded by
// the number of contended channels and live objects, never by the trace
// length. All state is integer sample counts — weights are applied as
// count×weight products at Report time — so accumulation is exact and
// commutative: the report is bit-identical to Analyze over the same sample
// multiset no matter how the trace was chunked, ordered, or split across
// Merge-d accumulators.
type CFAccumulator struct {
	heap       Attributor
	weight     float64
	channels   []topology.Channel       // deduped, input order
	index      map[topology.Channel]int // channel → position in channels
	count      []int64                  // per-channel sample count
	byObj      []map[alloc.ObjectID]int64
	totalByObj map[alloc.ObjectID]int64
	unattr     int64
}

// NewCFAccumulator prepares CF attribution for the given contended
// channels. weight scales kept samples to true counts; non-positive means 1.
func NewCFAccumulator(heap Attributor, contended []topology.Channel, weight float64) *CFAccumulator {
	if weight <= 0 {
		weight = 1
	}
	a := &CFAccumulator{
		heap:       heap,
		weight:     weight,
		index:      make(map[topology.Channel]int, len(contended)),
		totalByObj: map[alloc.ObjectID]int64{},
	}
	for _, ch := range contended {
		if _, dup := a.index[ch]; dup {
			continue
		}
		a.index[ch] = len(a.channels)
		a.channels = append(a.channels, ch)
		a.count = append(a.count, 0)
		a.byObj = append(a.byObj, map[alloc.ObjectID]int64{})
	}
	return a
}

// Add accounts one chunk of samples. Samples off the contended channels are
// ignored, exactly as Analyze ignores them.
func (a *CFAccumulator) Add(samples []pebs.Sample) {
	for i := range samples {
		s := &samples[i]
		ch := topology.Channel{Src: s.SrcNode, Dst: s.HomeNode}
		if s.Level == cache.L1 || s.Level == cache.L2 || s.Level == cache.L3 {
			ch.Dst = s.SrcNode
		}
		idx, ok := a.index[ch]
		if !ok {
			continue
		}
		a.count[idx]++
		if id, ok := a.heap.Lookup(s.Addr); ok {
			a.byObj[idx][id]++
			a.totalByObj[id]++
		} else {
			a.unattr++
		}
	}
}

// Merge folds o's counts into a, exactly as if o's samples had been Added
// to a — integer addition, so any partition and merge order reproduces the
// serial accumulator bit for bit. Both accumulators must have been built
// for the same contended channels and weight (and the same attributor,
// which Merge cannot check). o is unchanged.
func (a *CFAccumulator) Merge(o *CFAccumulator) error {
	if a.weight != o.weight || len(a.channels) != len(o.channels) {
		return fmt.Errorf("diagnose: cannot merge CF accumulators with different shape (weight %v/%v, %d/%d channels)", a.weight, o.weight, len(a.channels), len(o.channels))
	}
	for i, ch := range a.channels {
		if o.channels[i] != ch {
			return fmt.Errorf("diagnose: cannot merge CF accumulators over different channel sets (%v vs %v)", ch, o.channels[i])
		}
	}
	for i := range a.count {
		a.count[i] += o.count[i]
		for id, n := range o.byObj[i] {
			a.byObj[i][id] += n
		}
	}
	for id, n := range o.totalByObj {
		a.totalByObj[id] += n
	}
	a.unattr += o.unattr
	return nil
}

// Report assembles the accumulated state into the same Report Analyze
// returns.
func (a *CFAccumulator) Report() *Report {
	rep := &Report{
		Contended:  append([]topology.Channel(nil), a.channels...),
		PerChannel: make(map[topology.Channel][]ObjectCF),
	}
	totalAll := 0.0
	for i, ch := range a.channels {
		if a.count[i] == 0 {
			continue
		}
		chTotal := float64(a.count[i]) * a.weight
		totalAll += chTotal
		rep.PerChannel[ch] = rank(a.heap, a.byObj[i], chTotal, a.weight)
	}
	if totalAll > 0 {
		rep.Overall = rank(a.heap, a.totalByObj, totalAll, a.weight)
		rep.UnattributedCF = float64(a.unattr) * a.weight / totalAll
	}
	return rep
}

func rank(heap Attributor, byObj map[alloc.ObjectID]int64, total, weight float64) []ObjectCF {
	out := make([]ObjectCF, 0, len(byObj))
	for id, cnt := range byObj {
		n := float64(cnt) * weight
		out = append(out, ObjectCF{Object: heap.Object(id), CF: n / total, Samples: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CF != out[j].CF {
			return out[i].CF > out[j].CF
		}
		return out[i].Object.ID < out[j].Object.ID
	})
	return out
}

// Top returns the highest-CF objects covering at least fraction `cover` of
// the contended samples (and at least one object if any exist).
func (r *Report) Top(cover float64) []ObjectCF {
	var out []ObjectCF
	acc := 0.0
	for _, o := range r.Overall {
		out = append(out, o)
		acc += o.CF
		if acc >= cover {
			break
		}
	}
	return out
}

// String renders the overall ranking like the paper's Figure 4 data.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "contended channels: ")
	if len(r.Contended) == 0 {
		b.WriteString("none\n")
		return b.String()
	}
	for i, ch := range r.Contended {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(ch.String())
	}
	b.WriteByte('\n')
	for _, o := range r.Overall {
		fmt.Fprintf(&b, "  CF %5.1f%%  %-20s %s\n", 100*o.CF, o.Object.Name, o.Object.Site)
	}
	if r.UnattributedCF > 0 {
		fmt.Fprintf(&b, "  CF %5.1f%%  %-20s (static/stack data, not tracked)\n", 100*r.UnattributedCF, "<unattributed>")
	}
	return b.String()
}
