package diagnose

import (
	"math"
	"strings"
	"testing"

	"drbw/internal/alloc"
	"drbw/internal/cache"
	"drbw/internal/memsim"
	"drbw/internal/pebs"
	"drbw/internal/topology"
)

func setup(t *testing.T) (*alloc.Heap, []alloc.ObjectID) {
	t.Helper()
	as := memsim.NewAddressSpace(topology.Uniform(4, 2))
	h := alloc.NewHeap(as, 0x10000000)
	var ids []alloc.ObjectID
	for _, name := range []string{"block", "points", "weights"} {
		id, err := h.Malloc(name, 1<<20, alloc.Site{Func: "init", File: "main.c", Line: 10}, memsim.BindTo(0))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return h, ids
}

func memSample(h *alloc.Heap, obj alloc.ObjectID, off uint64, src, home topology.NodeID) pebs.Sample {
	return pebs.Sample{
		Addr: h.Addr(obj, off), Level: cache.MEM, Latency: 500,
		SrcNode: src, HomeNode: home,
	}
}

func TestCFPerChannel(t *testing.T) {
	h, ids := setup(t)
	ch := topology.Channel{Src: 1, Dst: 0}
	var samples []pebs.Sample
	for i := 0; i < 9; i++ {
		samples = append(samples, memSample(h, ids[0], uint64(i*64), 1, 0))
	}
	for i := 0; i < 3; i++ {
		samples = append(samples, memSample(h, ids[1], uint64(i*64), 1, 0))
	}
	// Samples on an unflagged channel must be ignored.
	samples = append(samples, memSample(h, ids[2], 0, 2, 0))

	rep := Analyze(h, samples, []topology.Channel{ch}, 1)
	ranked := rep.PerChannel[ch]
	if len(ranked) != 2 {
		t.Fatalf("ranked %d objects, want 2", len(ranked))
	}
	if ranked[0].Object.Name != "block" || math.Abs(ranked[0].CF-0.75) > 1e-12 {
		t.Errorf("top object %s CF %.3f, want block 0.75", ranked[0].Object.Name, ranked[0].CF)
	}
	if ranked[1].Object.Name != "points" || math.Abs(ranked[1].CF-0.25) > 1e-12 {
		t.Errorf("second object %s CF %.3f, want points 0.25", ranked[1].Object.Name, ranked[1].CF)
	}
	// weights got no samples on the contended channel.
	for _, o := range rep.Overall {
		if o.Object.Name == "weights" {
			t.Error("weights should not appear in the ranking")
		}
	}
}

func TestCFSumsToOneAcrossChannels(t *testing.T) {
	h, ids := setup(t)
	chans := []topology.Channel{{Src: 1, Dst: 0}, {Src: 2, Dst: 0}}
	var samples []pebs.Sample
	for i := 0; i < 6; i++ {
		samples = append(samples, memSample(h, ids[0], uint64(i*64), 1, 0))
	}
	for i := 0; i < 4; i++ {
		samples = append(samples, memSample(h, ids[1], uint64(i*64), 2, 0))
	}
	rep := Analyze(h, samples, chans, 1)
	sum := rep.UnattributedCF
	for _, o := range rep.Overall {
		sum += o.CF
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("CF sum = %f, want 1", sum)
	}
	if rep.Overall[0].Object.Name != "block" || math.Abs(rep.Overall[0].CF-0.6) > 1e-12 {
		t.Errorf("overall top %s %.2f, want block 0.6", rep.Overall[0].Object.Name, rep.Overall[0].CF)
	}
}

func TestUnattributedSamples(t *testing.T) {
	h, _ := setup(t)
	ch := topology.Channel{Src: 1, Dst: 0}
	samples := []pebs.Sample{
		{Addr: 0x10, Level: cache.MEM, Latency: 400, SrcNode: 1, HomeNode: 0}, // static data
		memSample(h, 0, 0, 1, 0),
	}
	rep := Analyze(h, samples, []topology.Channel{ch}, 1)
	if math.Abs(rep.UnattributedCF-0.5) > 1e-12 {
		t.Errorf("unattributed CF = %f, want 0.5", rep.UnattributedCF)
	}
	if !strings.Contains(rep.String(), "<unattributed>") {
		t.Error("rendering should mention unattributed share")
	}
}

func TestWeightScaling(t *testing.T) {
	h, ids := setup(t)
	ch := topology.Channel{Src: 1, Dst: 0}
	samples := []pebs.Sample{memSample(h, ids[0], 0, 1, 0)}
	rep := Analyze(h, samples, []topology.Channel{ch}, 20)
	if rep.Overall[0].Samples != 20 {
		t.Errorf("weighted samples = %f, want 20", rep.Overall[0].Samples)
	}
	if rep.Overall[0].CF != 1 {
		t.Errorf("CF = %f, want 1 (weights cancel)", rep.Overall[0].CF)
	}
}

func TestEmptyReport(t *testing.T) {
	h, _ := setup(t)
	rep := Analyze(h, nil, nil, 1)
	if len(rep.Overall) != 0 || rep.UnattributedCF != 0 {
		t.Error("empty input should give empty report")
	}
	if !strings.Contains(rep.String(), "none") {
		t.Error("empty rendering should say none")
	}
}

func TestLFBSamplesCountTowardCF(t *testing.T) {
	h, ids := setup(t)
	ch := topology.Channel{Src: 1, Dst: 0}
	s := memSample(h, ids[0], 0, 1, 0)
	s.Level = cache.LFB
	rep := Analyze(h, []pebs.Sample{s}, []topology.Channel{ch}, 1)
	if len(rep.Overall) != 1 {
		t.Fatal("LFB sample on contended channel should be attributed")
	}
}

func TestTopCoverage(t *testing.T) {
	h, ids := setup(t)
	ch := topology.Channel{Src: 1, Dst: 0}
	var samples []pebs.Sample
	counts := []int{60, 30, 10}
	for oi, n := range counts {
		for i := 0; i < n; i++ {
			samples = append(samples, memSample(h, ids[oi], uint64(i*64), 1, 0))
		}
	}
	rep := Analyze(h, samples, []topology.Channel{ch}, 1)
	top := rep.Top(0.85)
	if len(top) != 2 {
		t.Fatalf("Top(0.85) returned %d objects, want 2 (0.6+0.3)", len(top))
	}
	if top[0].Object.Name != "block" {
		t.Errorf("top object %s", top[0].Object.Name)
	}
	if got := rep.Top(0.1); len(got) != 1 {
		t.Errorf("Top(0.1) returned %d, want 1", len(got))
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	h, ids := setup(t)
	ch := topology.Channel{Src: 1, Dst: 0}
	samples := []pebs.Sample{
		memSample(h, ids[1], 0, 1, 0),
		memSample(h, ids[0], 0, 1, 0),
	}
	rep := Analyze(h, samples, []topology.Channel{ch}, 1)
	if rep.Overall[0].Object.ID > rep.Overall[1].Object.ID {
		t.Error("equal CF should break ties by object ID")
	}
}
