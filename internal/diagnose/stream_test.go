package diagnose

import (
	"math/rand"
	"reflect"
	"testing"

	"drbw/internal/cache"
	"drbw/internal/pebs"
	"drbw/internal/topology"
)

// contentionTrace builds a stream with traffic on several channels, some
// attributed to heap objects and some not.
func contentionTrace(t *testing.T, n int, seed int64) ([]pebs.Sample, *CFAccumulator, []topology.Channel, Attributor) {
	t.Helper()
	h, ids := setup(t)
	rng := rand.New(rand.NewSource(seed))
	samples := make([]pebs.Sample, n)
	for i := range samples {
		s := memSample(h, ids[rng.Intn(len(ids))], uint64(rng.Intn(1<<20)), topology.NodeID(rng.Intn(4)), 0)
		s.Time = float64(i * 50)
		s.Latency = float64(200 + rng.Intn(700))
		if rng.Intn(5) == 0 {
			s.Addr = 0x10 // below the heap: unattributed
		}
		if rng.Intn(7) == 0 {
			s.Level = cache.L2 // folds onto the local channel
		}
		samples[i] = s
	}
	contended := []topology.Channel{{Src: 1, Dst: 0}, {Src: 2, Dst: 0}, {Src: 3, Dst: 3}}
	return samples, NewCFAccumulator(h, contended, 2.5), contended, h
}

// TestCFAccumulatorChunkedMatchesAnalyze pins the streaming contract: any
// chunking of the trace produces a report bit-identical to Analyze on the
// whole slice.
func TestCFAccumulatorChunkedMatchesAnalyze(t *testing.T) {
	samples, _, contended, heap := contentionTrace(t, 4000, 1)
	want := Analyze(heap, samples, contended, 2.5)

	for _, chunk := range []int{1, 13, 256, len(samples)} {
		acc := NewCFAccumulator(heap, contended, 2.5)
		for start := 0; start < len(samples); start += chunk {
			end := start + chunk
			if end > len(samples) {
				end = len(samples)
			}
			acc.Add(samples[start:end])
		}
		got := acc.Report()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: streamed report differs from Analyze", chunk)
		}
	}
}

// TestAnalyzeDeterministicAcrossDuplicates pins the input-order channel
// processing: duplicated contended channels collapse, and repeated calls
// yield identical reports.
func TestAnalyzeDeterministicAcrossDuplicates(t *testing.T) {
	samples, _, contended, heap := contentionTrace(t, 1000, 2)
	dup := append(append([]topology.Channel{}, contended...), contended[0], contended[1])
	want := Analyze(heap, samples, contended, 2.5)
	got := Analyze(heap, samples, dup, 2.5)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("duplicated contended channels changed the report")
	}
	for i := 0; i < 5; i++ {
		if !reflect.DeepEqual(Analyze(heap, samples, contended, 2.5), want) {
			t.Fatal("Analyze is not deterministic")
		}
	}
}

// TestTimelineAccumulatorMatchesTimeline pins the two-pass streaming
// timeline against the slice implementation, bit for bit, across
// chunkings.
func TestTimelineAccumulatorMatchesTimeline(t *testing.T) {
	samples, _, _, _ := contentionTrace(t, 3000, 3)
	const n, weight = 32, 2.5
	want := Timeline(samples, n, weight)

	for _, chunk := range []int{1, 17, 512, len(samples)} {
		acc := NewTimelineAccumulator(n, weight)
		feed := func(fn func([]pebs.Sample)) {
			for start := 0; start < len(samples); start += chunk {
				end := start + chunk
				if end > len(samples) {
					end = len(samples)
				}
				fn(samples[start:end])
			}
		}
		feed(acc.Observe)
		feed(acc.Add)
		got := acc.Buckets()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: streamed timeline differs", chunk)
		}
	}
}

// TestTimelineAccumulatorEdgeCases mirrors Timeline's nil returns.
func TestTimelineAccumulatorEdgeCases(t *testing.T) {
	if got := NewTimelineAccumulator(8, 1).Buckets(); got != nil {
		t.Fatalf("no samples: got %v, want nil", got)
	}
	if got := NewTimelineAccumulator(0, 1).Buckets(); got != nil {
		t.Fatalf("zero buckets: got %v, want nil", got)
	}
	// One sample: single bucket span fallback, same as Timeline.
	one := []pebs.Sample{{Time: 42, Level: cache.MEM, SrcNode: 0, HomeNode: 1, Latency: 300}}
	acc := NewTimelineAccumulator(4, 1)
	acc.Observe(one)
	acc.Add(one)
	if !reflect.DeepEqual(acc.Buckets(), Timeline(one, 4, 1)) {
		t.Fatal("single-sample timeline differs")
	}
}
