package diagnose

import (
	"testing"
	"unicode/utf8"

	"drbw/internal/cache"
	"drbw/internal/pebs"
)

func mkSample(t float64, remote bool, lat float64) pebs.Sample {
	s := pebs.Sample{Time: t, Latency: lat, Level: cache.MEM, SrcNode: 1, HomeNode: 1}
	if remote {
		s.HomeNode = 0
	}
	return s
}

func TestTimelineBuckets(t *testing.T) {
	// Remote pressure only in the second half of the run.
	var samples []pebs.Sample
	for i := 0; i < 50; i++ {
		samples = append(samples, mkSample(float64(i), false, 200))
	}
	for i := 50; i < 100; i++ {
		samples = append(samples, mkSample(float64(i), true, 900))
	}
	buckets := Timeline(samples, 4, 1)
	if len(buckets) != 4 {
		t.Fatalf("%d buckets", len(buckets))
	}
	if buckets[0].RemoteSamples != 0 || buckets[1].RemoteSamples != 0 {
		t.Errorf("first half should have no remote samples: %+v", buckets[:2])
	}
	if buckets[2].RemoteSamples == 0 || buckets[3].RemoteSamples == 0 {
		t.Errorf("second half should be remote: %+v", buckets[2:])
	}
	if buckets[3].AvgRemoteLatency < 890 || buckets[3].AvgRemoteLatency > 910 {
		t.Errorf("remote latency %f, want ~900", buckets[3].AvgRemoteLatency)
	}
	var total float64
	for _, b := range buckets {
		total += b.Samples
	}
	if total != 100 {
		t.Errorf("buckets hold %f samples, want 100", total)
	}
	// Contiguous, ordered slices.
	for i := 1; i < len(buckets); i++ {
		if buckets[i].Start != buckets[i-1].End {
			t.Errorf("bucket %d not contiguous", i)
		}
	}
}

func TestTimelineWeight(t *testing.T) {
	samples := []pebs.Sample{mkSample(0, true, 500), mkSample(1, true, 500)}
	buckets := Timeline(samples, 1, 10)
	if buckets[0].Samples != 20 || buckets[0].RemoteSamples != 20 {
		t.Errorf("weighted counts: %+v", buckets[0])
	}
	if buckets[0].AvgRemoteLatency != 500 {
		t.Errorf("latency must not scale with weight: %f", buckets[0].AvgRemoteLatency)
	}
}

func TestTimelineEdgeCases(t *testing.T) {
	if Timeline(nil, 4, 1) != nil {
		t.Error("empty samples should give nil")
	}
	if Timeline([]pebs.Sample{mkSample(5, true, 100)}, 0, 1) != nil {
		t.Error("zero buckets should give nil")
	}
	// Single instant: still a valid bucket.
	b := Timeline([]pebs.Sample{mkSample(5, true, 100)}, 3, 1)
	if len(b) != 3 {
		t.Fatalf("%d buckets", len(b))
	}
	var total float64
	for _, x := range b {
		total += x.Samples
	}
	if total != 1 {
		t.Errorf("sample lost: %f", total)
	}
}

func TestSparkline(t *testing.T) {
	buckets := []Bucket{
		{AvgRemoteLatency: 0},
		{AvgRemoteLatency: 100, RemoteSamples: 1},
		{AvgRemoteLatency: 800, RemoteSamples: 1},
	}
	s := Sparkline(buckets, RemoteLatencyMetric)
	if utf8.RuneCountInString(s) != 3 {
		t.Fatalf("sparkline %q has %d runes", s, utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != ' ' {
		t.Errorf("zero bucket rendered %q", runes[0])
	}
	if runes[2] != '█' {
		t.Errorf("peak bucket rendered %q, want full block", runes[2])
	}
	if runes[1] == ' ' || runes[1] == '█' {
		t.Errorf("mid bucket rendered %q", runes[1])
	}
	// All-zero timeline renders spaces, not a panic.
	blank := Sparkline([]Bucket{{}, {}}, RemoteTrafficMetric)
	if blank != "  " {
		t.Errorf("blank sparkline %q", blank)
	}
	if Sparkline(nil, RemoteLatencyMetric) != "" {
		t.Error("empty sparkline should be empty")
	}
}
