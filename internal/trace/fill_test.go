package trace

import (
	"reflect"
	"testing"
)

// drainFill mirrors drain but pulls accesses through the batch Fill path,
// resetting across window boundaries with the same seed discipline.
func drainFill(s Stream, limit, maxWindows, bufSize int) []Access {
	var out []Access
	windows := 0
	s.Reset(1)
	buf := make([]Access, bufSize)
	for len(out) < limit && windows < maxWindows {
		want := limit - len(out)
		if want > bufSize {
			want = bufSize
		}
		n := Fill(s, buf[:want])
		out = append(out, buf[:n]...)
		if n < want {
			windows++
			s.Reset(uint64(windows + 1))
		}
	}
	return out
}

// TestFillMatchesNext drives two identical stream instances, one access at a
// time via Next and batched via Fill, across several window boundaries, and
// requires byte-identical sequences for every buffer size. This pins the
// Filler contract: a native Fill must stop at the window boundary with the
// same side effects as Next's ok=false return.
func TestFillMatchesNext(t *testing.T) {
	chaseAddrs := []uint64{0x1000, 0x1040, 0x1080, 0x10c0, 0x1100}
	cases := []struct {
		name string
		mk   func() Stream
	}{
		{"seq-dense", func() Stream { return &Seq{Base: 4096, Len: 23 * 8, Elem: 8} }},
		{"seq-stride-writes", func() Stream { return &Seq{Base: 4096, Len: 41 * 8, Elem: 8, Stride: 3, WriteEvery: 4} }},
		{"rand", func() Stream { return &Rand{Base: 1 << 20, Len: 1 << 12, Elem: 8, WriteFrac: 0.3} }},
		{"chase", func() Stream { return &Chase{Addrs: chaseAddrs} }},
		{"gather", func() Stream {
			return &Gather{IndexBase: 0, IndexLen: 17 * 4, IndexElem: 4, DataBase: 1 << 16, DataLen: 1 << 10, DataElem: 8}
		}},
		{"stencil", func() Stream { return &Stencil{InBase: 0, OutBase: 1 << 20, X: 3, Y: 2, Z: 2, Elem: 8} }},
		{"wavefront", func() Stream { return &Wavefront{Base: 0, N: 5, Elem: 8, RowFirst: 1, RowCount: 2} }},
		{"mix", func() Stream {
			return &Mix{
				Streams: []Stream{&Seq{Base: 0, Len: 9 * 8, Elem: 8}, &Chase{Addrs: chaseAddrs}},
				Weights: []int{3, 1},
			}
		}},
	}
	for _, tc := range cases {
		want := drain(tc.mk(), 500, 6)
		for _, bufSize := range []int{1, 3, 7, 64, 500} {
			got := drainFill(tc.mk(), 500, 6, bufSize)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: Fill(buf=%d) sequence diverges from Next (len %d vs %d)",
					tc.name, bufSize, len(got), len(want))
			}
		}
	}
}

// TestFillShortCountMeansBoundary checks that a short Fill return corresponds
// exactly to the position where Next would return ok=false, and that the
// stream state after the short return matches Next's boundary side effects.
func TestFillShortCountMeansBoundary(t *testing.T) {
	s := &Seq{Base: 0, Len: 5 * 8, Elem: 8, WriteEvery: 2}
	s.Reset(1)
	buf := make([]Access, 8)
	if n := Fill(s, buf); n != 5 {
		t.Fatalf("first Fill returned %d, want 5 (window length)", n)
	}
	// After the boundary, the next pass must continue the write cadence:
	// Next's boundary return rewinds pos but preserves count.
	a, ok := s.Next()
	if !ok {
		t.Fatal("stream did not rewind at boundary")
	}
	// 5 accesses consumed, so access #6 has count=6, divisible by WriteEvery=2.
	if !a.Write {
		t.Error("write cadence reset at boundary: Fill must preserve count like Next")
	}
	if a.Addr != 0 {
		t.Errorf("post-boundary address = %#x, want 0 (rewound)", a.Addr)
	}
}
