// Package trace defines the access-stream abstraction that connects
// workloads to the execution engine.
//
// A profiled program is modeled as a set of phases; each phase gives every
// thread a Stream — a deterministic generator of the thread's representative
// memory-access sequence — plus three scalars that characterize how the
// thread executes it:
//
//   - Ops: how many memory accesses the thread performs over the whole phase
//     (the stream itself is only sampled for a window; Ops scales it up).
//   - MLP: memory-level parallelism — how many misses the core keeps in
//     flight. Streaming vector code sustains MLP near the LFB count (~10 on
//     Sandy Bridge); dependent pointer chasing is stuck at 1. MLP is what
//     separates bandwidth-bound code (high DRAM demand, causes contention)
//     from latency-bound code (high remote-access count, no contention) —
//     the distinction at the heart of the paper's bandit micro benchmark.
//   - WorkCycles: non-memory compute cycles per access.
//
// Streams are pure address generators; cache behaviour, page placement and
// contention are applied by the engine.
package trace

import "math/rand"

// Access is one memory reference.
type Access struct {
	Addr  uint64
	Write bool
}

// Stream generates a thread's representative access sequence. Implementations
// must be deterministic for a given Reset seed.
type Stream interface {
	// Next returns the next access. ok is false when the stream's natural
	// window is exhausted; the engine then Resets it and keeps going, so
	// finite streams behave as cyclic patterns.
	Next() (a Access, ok bool)
	// Reset rewinds the stream and reseeds its randomness.
	Reset(seed uint64)
}

// Filler is an optional Stream extension: streams that can refill a whole
// buffer in one call, skipping the per-access interface dispatch of Next.
// Fill must be observably identical to calling Next len(buf) times: it stops
// early (returning n < len(buf)) exactly when the n+1-th Next would have
// returned ok=false, with the same internal side effects as that boundary
// return.
type Filler interface {
	Fill(buf []Access) int
}

// Fill copies up to len(buf) accesses from s into buf, using the stream's
// native batch path when it has one. It returns the number of accesses
// produced; a short count means the stream hit its window boundary and the
// caller should Reset it, exactly as for a Next that returned ok=false.
func Fill(s Stream, buf []Access) int {
	if f, ok := s.(Filler); ok {
		return f.Fill(buf)
	}
	for i := range buf {
		a, ok := s.Next()
		if !ok {
			return i
		}
		buf[i] = a
	}
	return len(buf)
}

// ThreadSpec describes one thread of one phase.
type ThreadSpec struct {
	Stream     Stream
	Ops        float64 // total accesses in the full phase execution
	MLP        float64 // sustained memory-level parallelism (>= 1)
	WorkCycles float64 // compute cycles per access (>= 0)
}

// Phase is one timed region of a workload (e.g. AMG's init/setup/solve).
type Phase struct {
	Name    string
	Threads []ThreadSpec // indexed by thread ID
}

// --- Stream implementations ---

// Seq scans [Base, Base+Len) with the given element size and stride,
// wrapping at the end. It models blocked parallel-for loops: give each
// thread its own sub-range.
type Seq struct {
	Base       uint64
	Len        uint64 // bytes
	Elem       uint64 // element size in bytes (e.g. 8 for doubles)
	Stride     uint64 // elements to advance per access (1 = dense)
	WriteEvery int    // every k-th access is a write; 0 = read-only

	pos   uint64
	count int
}

// Next implements Stream.
func (s *Seq) Next() (Access, bool) {
	if s.Len == 0 || s.Elem == 0 {
		return Access{}, false
	}
	if s.pos+s.Elem > s.Len {
		s.pos = 0
		return Access{}, false // window boundary: one full pass done
	}
	a := Access{Addr: s.Base + s.pos}
	s.count++
	if s.WriteEvery > 0 && s.count%s.WriteEvery == 0 {
		a.Write = true
	}
	stride := s.Stride
	if stride == 0 {
		stride = 1
	}
	s.pos += s.Elem * stride
	return a, true
}

// Fill implements Filler with the loop body of Next inlined.
func (s *Seq) Fill(buf []Access) int {
	if s.Len == 0 || s.Elem == 0 {
		return 0
	}
	stride := s.Stride
	if stride == 0 {
		stride = 1
	}
	step := s.Elem * stride
	// Stream state lives in locals for the duration of the batch; the write
	// back below keeps the struct consistent at every return.
	pos, count := s.pos, s.count
	base, elem, limit, we := s.Base, s.Elem, s.Len, s.WriteEvery
	for i := range buf {
		if pos+elem > limit {
			s.pos, s.count = 0, count
			return i
		}
		a := Access{Addr: base + pos}
		count++
		if we > 0 && count%we == 0 {
			a.Write = true
		}
		pos += step
		buf[i] = a
	}
	s.pos, s.count = pos, count
	return len(buf)
}

// Reset implements Stream.
func (s *Seq) Reset(uint64) { s.pos, s.count = 0, 0 }

// Rand reads uniformly random elements of [Base, Base+Len). It models
// irregular gather-style access (hash tables, streamcluster's point block).
type Rand struct {
	Base      uint64
	Len       uint64
	Elem      uint64
	WriteFrac float64 // probability an access is a write

	rng *rand.Rand
}

// Next implements Stream.
func (r *Rand) Next() (Access, bool) {
	if r.rng == nil {
		r.Reset(1)
	}
	if r.Len == 0 || r.Elem == 0 {
		return Access{}, false
	}
	elems := r.Len / r.Elem
	if elems == 0 {
		return Access{}, false
	}
	idx := uint64(r.rng.Int63n(int64(elems)))
	a := Access{Addr: r.Base + idx*r.Elem}
	if r.WriteFrac > 0 && r.rng.Float64() < r.WriteFrac {
		a.Write = true
	}
	return a, true
}

// Fill implements Filler. Rand never hits a window boundary, so Fill always
// returns len(buf); the rng call order matches Next exactly.
func (r *Rand) Fill(buf []Access) int {
	if r.rng == nil {
		r.Reset(1)
	}
	if r.Len == 0 || r.Elem == 0 {
		return 0
	}
	elems := r.Len / r.Elem
	if elems == 0 {
		return 0
	}
	for i := range buf {
		a := Access{Addr: r.Base + uint64(r.rng.Int63n(int64(elems)))*r.Elem}
		if r.WriteFrac > 0 && r.rng.Float64() < r.WriteFrac {
			a.Write = true
		}
		buf[i] = a
	}
	return len(buf)
}

// Reset implements Stream.
func (r *Rand) Reset(seed uint64) { r.rng = rand.New(rand.NewSource(int64(seed) ^ 0x9e3779b9)) }

// Chase is a pointer-chasing stream over an explicit list of addresses in a
// fixed pseudo-random permutation order. The bandit micro benchmark builds
// its address list so every access maps to the same cache sets, forcing
// conflict misses that always reach DRAM.
type Chase struct {
	Addrs []uint64

	order []int
	pos   int
}

// Next implements Stream.
func (c *Chase) Next() (Access, bool) {
	if len(c.Addrs) == 0 {
		return Access{}, false
	}
	if c.order == nil {
		c.Reset(1)
	}
	if c.pos >= len(c.order) {
		c.pos = 0
		return Access{}, false
	}
	a := Access{Addr: c.Addrs[c.order[c.pos]]}
	c.pos++
	return a, true
}

// Fill implements Filler.
func (c *Chase) Fill(buf []Access) int {
	if len(c.Addrs) == 0 {
		return 0
	}
	if c.order == nil {
		c.Reset(1)
	}
	for i := range buf {
		if c.pos >= len(c.order) {
			c.pos = 0
			return i
		}
		buf[i] = Access{Addr: c.Addrs[c.order[c.pos]]}
		c.pos++
	}
	return len(buf)
}

// Reset implements Stream.
func (c *Chase) Reset(seed uint64) {
	rng := rand.New(rand.NewSource(int64(seed) ^ 0x5bf03635))
	c.order = rng.Perm(len(c.Addrs))
	c.pos = 0
}

// Gather models indexed indirection: each operation reads one element of an
// index range sequentially, then one random element of a data range — the
// CSR sparse-matrix pattern of CG and AMG.
type Gather struct {
	IndexBase, IndexLen uint64 // scanned sequentially, IndexElem-sized
	IndexElem           uint64
	DataBase, DataLen   uint64 // gathered randomly, DataElem-sized
	DataElem            uint64

	pos uint64
	rng *rand.Rand
	// phase alternates index/data access.
	dataNext bool
	pending  uint64
}

// Next implements Stream.
func (g *Gather) Next() (Access, bool) {
	if g.rng == nil {
		g.Reset(1)
	}
	if g.dataNext {
		g.dataNext = false
		return Access{Addr: g.pending}, true
	}
	if g.IndexElem == 0 || g.DataElem == 0 || g.DataLen < g.DataElem {
		return Access{}, false
	}
	if g.pos+g.IndexElem > g.IndexLen {
		g.pos = 0
		return Access{}, false
	}
	idx := Access{Addr: g.IndexBase + g.pos}
	g.pos += g.IndexElem
	elems := g.DataLen / g.DataElem
	g.pending = g.DataBase + uint64(g.rng.Int63n(int64(elems)))*g.DataElem
	g.dataNext = true
	return idx, true
}

// Reset implements Stream.
func (g *Gather) Reset(seed uint64) {
	g.pos, g.dataNext = 0, false
	g.rng = rand.New(rand.NewSource(int64(seed) ^ 0x2545f491))
}

// Stencil walks a 3D block [X,Y,Z] of Elem-sized cells owned by one thread
// and touches the 7-point neighbourhood of each cell, reading from In and
// writing the centre to Out. It models IRSmk/LULESH-style structured kernels.
type Stencil struct {
	InBase, OutBase uint64
	X, Y, Z         uint64 // dimensions of this thread's block, in elements
	Elem            uint64

	i, j, k uint64
	point   int
}

// offsets of a 7-point stencil in (dx,dy,dz).
var stencilOffsets = [7][3]int64{
	{0, 0, 0}, {-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1},
}

// Next implements Stream.
func (s *Stencil) Next() (Access, bool) {
	if s.X == 0 || s.Y == 0 || s.Z == 0 || s.Elem == 0 {
		return Access{}, false
	}
	if s.k >= s.Z {
		s.i, s.j, s.k, s.point = 0, 0, 0, 0
		return Access{}, false
	}
	if s.point < len(stencilOffsets) {
		off := stencilOffsets[s.point]
		s.point++
		x := clampIdx(int64(s.i)+off[0], s.X)
		y := clampIdx(int64(s.j)+off[1], s.Y)
		z := clampIdx(int64(s.k)+off[2], s.Z)
		lin := (z*s.Y+y)*s.X + x
		return Access{Addr: s.InBase + lin*s.Elem}, true
	}
	// Write the centre cell to Out, then advance.
	lin := (s.k*s.Y+s.j)*s.X + s.i
	a := Access{Addr: s.OutBase + lin*s.Elem, Write: true}
	s.point = 0
	s.i++
	if s.i >= s.X {
		s.i = 0
		s.j++
		if s.j >= s.Y {
			s.j = 0
			s.k++
		}
	}
	return a, true
}

// Reset implements Stream.
func (s *Stencil) Reset(uint64) { s.i, s.j, s.k, s.point = 0, 0, 0, 0 }

func clampIdx(v int64, n uint64) uint64 {
	if v < 0 {
		return 0
	}
	if v >= int64(n) {
		return n - 1
	}
	return uint64(v)
}

// Mix interleaves several streams with integer weights: out of
// sum(weights) consecutive accesses, stream i contributes Weights[i].
// Sub-streams with different window lengths recycle independently: when one
// exhausts its window it is Reset alone, so a short stream (a per-thread
// scratch buffer, say) can loop many times per pass of a long one.
type Mix struct {
	Streams []Stream
	Weights []int

	pos, within int
	seed        uint64
	recycles    uint64
}

// Next implements Stream.
func (m *Mix) Next() (Access, bool) {
	if len(m.Streams) == 0 || len(m.Streams) != len(m.Weights) {
		return Access{}, false
	}
	for tries := 0; tries < 4*len(m.Streams); tries++ {
		w := m.Weights[m.pos]
		if m.within >= w {
			m.within = 0
			m.pos = (m.pos + 1) % len(m.Streams)
			continue
		}
		a, ok := m.Streams[m.pos].Next()
		if !ok {
			// Recycle just this sub-stream and try it again.
			m.recycles++
			m.Streams[m.pos].Reset(m.seed + m.recycles*0x9e3779b97f4a7c15)
			a, ok = m.Streams[m.pos].Next()
			if !ok {
				// Degenerate sub-stream: skip it permanently this round.
				m.within = 0
				m.pos = (m.pos + 1) % len(m.Streams)
				continue
			}
		}
		m.within++
		return a, true
	}
	return Access{}, false
}

// Reset implements Stream.
func (m *Mix) Reset(seed uint64) {
	m.pos, m.within = 0, 0
	m.seed = seed
	m.recycles = 0
	for i, s := range m.Streams {
		s.Reset(seed + uint64(i)*0x9e3779b97f4a7c15)
	}
}

// Wavefront models the Needleman-Wunsch anti-diagonal sweep over an N×N
// score matrix: each step reads the west, north and north-west neighbours
// and writes the cell. Threads share the matrix; each instance walks its own
// strip of rows.
type Wavefront struct {
	Base     uint64
	N        uint64 // matrix is N×N Elem-sized cells
	Elem     uint64
	RowFirst uint64 // first row of this thread's strip
	RowCount uint64

	row, col uint64
	point    int
}

// Next implements Stream.
func (w *Wavefront) Next() (Access, bool) {
	if w.N == 0 || w.Elem == 0 || w.RowCount == 0 {
		return Access{}, false
	}
	if w.row >= w.RowCount {
		w.row, w.col, w.point = 0, 0, 0
		return Access{}, false
	}
	r := w.RowFirst + w.row
	cell := func(rr, cc uint64) uint64 { return w.Base + (rr*w.N+cc)*w.Elem }
	var a Access
	switch w.point {
	case 0: // west
		a = Access{Addr: cell(r, sub1(w.col))}
	case 1: // north
		a = Access{Addr: cell(sub1(r), w.col)}
	case 2: // north-west
		a = Access{Addr: cell(sub1(r), sub1(w.col))}
	case 3: // write self
		a = Access{Addr: cell(r, w.col), Write: true}
	}
	w.point++
	if w.point == 4 {
		w.point = 0
		w.col++
		if w.col >= w.N {
			w.col = 0
			w.row++
		}
	}
	return a, true
}

// Reset implements Stream.
func (w *Wavefront) Reset(uint64) { w.row, w.col, w.point = 0, 0, 0 }

func sub1(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	return v - 1
}
