package trace

import (
	"testing"
	"testing/quick"
)

// drain pulls up to limit accesses, resetting across window boundaries at
// most maxWindows times.
func drain(s Stream, limit, maxWindows int) []Access {
	var out []Access
	windows := 0
	s.Reset(1)
	for len(out) < limit && windows < maxWindows {
		a, ok := s.Next()
		if !ok {
			windows++
			s.Reset(uint64(windows + 1))
			continue
		}
		out = append(out, a)
	}
	return out
}

func TestSeqDense(t *testing.T) {
	s := &Seq{Base: 1000, Len: 64, Elem: 8}
	got := drain(s, 8, 1)
	if len(got) != 8 {
		t.Fatalf("got %d accesses, want 8", len(got))
	}
	for i, a := range got {
		if want := uint64(1000 + i*8); a.Addr != want {
			t.Fatalf("access %d addr %d, want %d", i, a.Addr, want)
		}
		if a.Write {
			t.Fatalf("read-only Seq produced a write at %d", i)
		}
	}
	// Window boundary then wrap-around.
	if _, ok := s.Next(); ok {
		t.Fatal("expected window boundary after full pass")
	}
	a, ok := s.Next()
	if !ok || a.Addr != 1000 {
		t.Fatalf("after boundary got %+v,%v; want wrap to base", a, ok)
	}
}

func TestSeqStrideAndWrites(t *testing.T) {
	s := &Seq{Base: 0, Len: 640, Elem: 8, Stride: 4, WriteEvery: 2}
	got := drain(s, 10, 1)
	if got[1].Addr != 32 {
		t.Fatalf("stride 4 advanced to %d, want 32", got[1].Addr)
	}
	writes := 0
	for _, a := range got {
		if a.Write {
			writes++
		}
	}
	if writes != 5 {
		t.Fatalf("WriteEvery=2 gave %d writes of 10, want 5", writes)
	}
}

func TestSeqDegenerate(t *testing.T) {
	s := &Seq{}
	if _, ok := s.Next(); ok {
		t.Fatal("zero-length Seq produced an access")
	}
}

func TestRandStaysInRange(t *testing.T) {
	r := &Rand{Base: 4096, Len: 8192, Elem: 8, WriteFrac: 0.3}
	got := drain(r, 2000, 1)
	if len(got) != 2000 {
		t.Fatalf("Rand should be unbounded, got %d", len(got))
	}
	writes := 0
	for _, a := range got {
		if a.Addr < 4096 || a.Addr >= 4096+8192 {
			t.Fatalf("address %d out of range", a.Addr)
		}
		if (a.Addr-4096)%8 != 0 {
			t.Fatalf("address %d not element-aligned", a.Addr)
		}
		if a.Write {
			writes++
		}
	}
	if writes < 400 || writes > 800 {
		t.Errorf("write fraction off: %d/2000 writes for 0.3", writes)
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	a := &Rand{Base: 0, Len: 1 << 20, Elem: 8}
	b := &Rand{Base: 0, Len: 1 << 20, Elem: 8}
	a.Reset(7)
	b.Reset(7)
	for i := 0; i < 100; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x != y {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, x, y)
		}
	}
	b.Reset(8)
	same := true
	a.Reset(7)
	for i := 0; i < 100; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x != y {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestChaseVisitsAllOnce(t *testing.T) {
	addrs := []uint64{10, 20, 30, 40, 50}
	c := &Chase{Addrs: addrs}
	c.Reset(3)
	seen := map[uint64]int{}
	for i := 0; i < len(addrs); i++ {
		a, ok := c.Next()
		if !ok {
			t.Fatalf("stream ended early at %d", i)
		}
		seen[a.Addr]++
	}
	for _, addr := range addrs {
		if seen[addr] != 1 {
			t.Fatalf("address %d visited %d times", addr, seen[addr])
		}
	}
	if _, ok := c.Next(); ok {
		t.Fatal("expected window boundary after full permutation")
	}
	if a, ok := c.Next(); !ok || seen[a.Addr] == 0 {
		t.Fatal("chase did not wrap after boundary")
	}
}

func TestChaseEmpty(t *testing.T) {
	c := &Chase{}
	if _, ok := c.Next(); ok {
		t.Fatal("empty chase produced an access")
	}
}

func TestGatherAlternates(t *testing.T) {
	g := &Gather{
		IndexBase: 0, IndexLen: 800, IndexElem: 4,
		DataBase: 1 << 20, DataLen: 1 << 16, DataElem: 8,
	}
	got := drain(g, 20, 1)
	for i := 0; i < 20; i += 2 {
		if got[i].Addr >= 1<<20 {
			t.Fatalf("access %d should be an index read, got data addr %#x", i, got[i].Addr)
		}
		if got[i+1].Addr < 1<<20 {
			t.Fatalf("access %d should be a data gather, got %#x", i+1, got[i+1].Addr)
		}
	}
	// Index reads advance sequentially.
	if got[2].Addr != got[0].Addr+4 {
		t.Errorf("index scan not sequential: %d then %d", got[0].Addr, got[2].Addr)
	}
}

func TestStencilTouchesNeighbours(t *testing.T) {
	s := &Stencil{InBase: 0, OutBase: 1 << 20, X: 4, Y: 4, Z: 4, Elem: 8}
	got := drain(s, 8, 1)
	// First cell (0,0,0): 7 reads (clamped at boundaries) then 1 write.
	for i := 0; i < 7; i++ {
		if got[i].Write || got[i].Addr >= 1<<20 {
			t.Fatalf("access %d should be an In read: %+v", i, got[i])
		}
	}
	if !got[7].Write || got[7].Addr != 1<<20 {
		t.Fatalf("access 7 should write Out[0]: %+v", got[7])
	}
	// Full pass visits X*Y*Z cells × 8 accesses.
	s.Reset(0)
	count := 0
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 4*4*4*8 {
		t.Fatalf("full stencil pass = %d accesses, want %d", count, 4*4*4*8)
	}
}

func TestWavefrontPattern(t *testing.T) {
	w := &Wavefront{Base: 0, N: 8, Elem: 4, RowFirst: 2, RowCount: 2}
	got := drain(w, 8, 1)
	// Cell (2,0): west clamps to col 0, north is row 1, etc.
	cell := func(r, c uint64) uint64 { return (r*8 + c) * 4 }
	want := []struct {
		addr  uint64
		write bool
	}{
		{cell(2, 0), false}, {cell(1, 0), false}, {cell(1, 0), false}, {cell(2, 0), true},
		{cell(2, 0), false}, {cell(1, 1), false}, {cell(1, 0), false}, {cell(2, 1), true},
	}
	for i, wa := range want {
		if got[i].Addr != wa.addr || got[i].Write != wa.write {
			t.Fatalf("access %d = %+v, want addr %d write %v", i, got[i], wa.addr, wa.write)
		}
	}
	// Full strip = RowCount*N cells × 4 accesses.
	w.Reset(0)
	count := 0
	for {
		_, ok := w.Next()
		if !ok {
			break
		}
		count++
	}
	if count != 2*8*4 {
		t.Fatalf("wavefront strip = %d accesses, want %d", count, 2*8*4)
	}
}

func TestMixRespectsWeights(t *testing.T) {
	a := &Seq{Base: 0, Len: 1 << 20, Elem: 8}
	b := &Seq{Base: 1 << 30, Len: 1 << 20, Elem: 8}
	m := &Mix{Streams: []Stream{a, b}, Weights: []int{3, 1}}
	got := drain(m, 400, 1)
	var fromA int
	for _, acc := range got {
		if acc.Addr < 1<<30 {
			fromA++
		}
	}
	if fromA != 300 {
		t.Fatalf("stream A contributed %d of 400, want 300", fromA)
	}
}

func TestMixMismatchedWeights(t *testing.T) {
	m := &Mix{Streams: []Stream{&Seq{Base: 0, Len: 64, Elem: 8}}, Weights: nil}
	if _, ok := m.Next(); ok {
		t.Fatal("mismatched Mix produced an access")
	}
}

// Property: Seq addresses are always within [Base, Base+Len) and aligned.
func TestSeqBoundsProperty(t *testing.T) {
	f := func(lenSel uint16, elemSel, strideSel uint8) bool {
		elem := uint64(elemSel%16) + 1
		length := uint64(lenSel%4096) + elem
		s := &Seq{Base: 1 << 20, Len: length, Elem: elem, Stride: uint64(strideSel % 8)}
		s.Reset(0)
		for i := 0; i < 1000; i++ {
			a, ok := s.Next()
			if !ok {
				s.Reset(0)
				continue
			}
			if a.Addr < 1<<20 || a.Addr+elem > 1<<20+length {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Chase permutation covers every address exactly once per window
// for any seed.
func TestChasePermutationProperty(t *testing.T) {
	f := func(seed uint16, nSel uint8) bool {
		n := int(nSel%32) + 1
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = uint64(i) * 64
		}
		c := &Chase{Addrs: addrs}
		c.Reset(uint64(seed))
		seen := make(map[uint64]bool)
		for i := 0; i < n; i++ {
			a, ok := c.Next()
			if !ok || seen[a.Addr] {
				return false
			}
			seen[a.Addr] = true
		}
		_, ok := c.Next()
		return !ok && len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
