// Package search closes DR-BW's loop: from a detection (classifier verdict,
// retained samples, diagnosed objects) it finds the placement fix to apply,
// instead of leaving the choice to the analyst as the paper does.
//
// The search is a branch-and-bound over candidate placements:
//
//  1. Enumerate — the diagnoser's top-CF objects, each assigned one of
//     {keep, interleave, co-locate, replicate}, singly and in combination,
//     plus the whole-program interleave probe.
//  2. Score — an analytic cost function ranks every candidate from the
//     detection's retained samples and the machine topology alone; no
//     simulation. The score combines distance-weighted locality with a
//     convex channel-pressure term that punishes piling traffic onto few
//     channels (see score()).
//  3. Simulate — only the top-scoring frontier runs in the simulator, in
//     parallel over core.ParallelForWorkers; per-run engines draw their
//     cache hierarchies from the engine's bounded recycle pool, so a wave
//     of candidate runs allocates hierarchy state per worker, not per run.
//  4. Bound — the shared baseline is measured exactly once; each wave of
//     candidate runs executes under engine.Config.CycleBudget set to the
//     best cycle count any *completed* wave achieved, so losing candidates
//     abort at the first epoch boundary past the incumbent instead of
//     simulating to completion.
//
// Determinism: candidate order is (analytic score, canonical key); waves
// have a fixed size independent of the worker count; the budget for wave i
// depends only on waves < i; and the best pick breaks cycle ties by
// canonical key. The chosen placement is therefore bit-identical at any
// Workers setting.
package search

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"drbw/internal/cache"
	"drbw/internal/core"
	"drbw/internal/diagnose"
	"drbw/internal/engine"
	"drbw/internal/obs"
	"drbw/internal/optimize"
	"drbw/internal/pebs"
	"drbw/internal/program"
	"drbw/internal/topology"
)

// Assignment fixes one object's placement strategy in a candidate.
type Assignment struct {
	Object   string
	Strategy optimize.Strategy
}

// Candidate is one placement under consideration: per-object strategy
// assignments (sorted by object name), or the whole-program interleave.
type Candidate struct {
	Assignments []Assignment
	// WholeProgramInterleave models `numactl --interleave=all`, the paper's
	// ground-truth probe; Assignments is empty when set.
	WholeProgramInterleave bool
}

// Key is the candidate's canonical identity: assignments joined in object
// order. Two candidates are the same placement iff their keys are equal,
// and all tie-breaking in the search orders by this string.
func (c Candidate) Key() string {
	if c.WholeProgramInterleave {
		return "*=interleave"
	}
	parts := make([]string, len(c.Assignments))
	for i, a := range c.Assignments {
		parts[i] = a.Object + "=" + a.Strategy.String()
	}
	return strings.Join(parts, ",")
}

// String renders the candidate for reports.
func (c Candidate) String() string {
	if c.WholeProgramInterleave {
		return "interleave whole program"
	}
	return c.Key()
}

// Transform builds the optimize.Transform that applies this candidate to a
// freshly built program.
func (c Candidate) Transform() optimize.Transform {
	if c.WholeProgramInterleave {
		return optimize.WholeProgram(optimize.Interleave)
	}
	as := c.Assignments
	return func(p *program.Program) error {
		for _, a := range as {
			if err := optimize.ApplyByName(p, a.Strategy, a.Object); err != nil {
				return err
			}
		}
		return nil
	}
}

// Input is everything the search needs about one detected case. Samples,
// Weight, Heap and Contended normally come from a core.Detection (see
// FromDetection); when Samples is nil the search profiles the case itself
// with one collector-instrumented run.
type Input struct {
	Builder program.Builder
	Machine *topology.Machine
	Cfg     program.Config
	// Heap attributes sample addresses to objects (the profiled program's
	// heap, or an offline range table).
	Heap diagnose.Attributor
	// Samples are the retained profile samples; Weight scales them to true
	// counts.
	Samples []pebs.Sample
	Weight  float64
	// Contended lists the channels to attribute over. Empty with non-nil
	// Samples means "derive from the samples": every remote channel whose
	// DRAM sample count clears a small floor.
	Contended []topology.Channel
}

// DefaultWaveSize is the fixed number of candidate simulations per
// branch-and-bound wave. It is a constant — never derived from the worker
// count — so the budget each candidate runs under, and hence the search
// outcome, does not depend on available parallelism.
const DefaultWaveSize = 4

// Config tunes the search.
type Config struct {
	// TopObjects caps how many of the diagnoser's top-CF objects the
	// enumeration draws from. <= 0 uses 3.
	TopObjects int
	// Cover is the CF mass the top objects must cover. <= 0 uses 0.9.
	Cover float64
	// MaxCombo caps how many objects one candidate may assign (combination
	// depth). <= 0 means no cap beyond TopObjects.
	MaxCombo int
	// Frontier is how many top-scoring candidates are simulated. 0 uses 12;
	// negative simulates every candidate (exhaustive — the benchmark
	// baseline).
	Frontier int
	// WaveSize overrides DefaultWaveSize when > 0.
	WaveSize int
	// Workers bounds the simulation fan-out; 0 uses core.PoolWorkers().
	// The chosen placement is identical at any setting.
	Workers int
	// DisableBudget turns off the cycle-budget bound, simulating every
	// frontier candidate to completion (the no-pruning benchmark baseline).
	DisableBudget bool
	// LocalityWeight balances the locality term against channel pressure in
	// the analytic score. <= 0 uses 0.5.
	LocalityWeight float64
	// Baseline, when non-nil, is used as the unmodified case's measurement
	// instead of simulating it. Callers (the result cache) supply a prior
	// run's baseline for the identical case and engine config; because runs
	// are bit-reproducible, the search outcome is identical to remeasuring.
	Baseline *engine.Result
}

func (c Config) withDefaults() Config {
	if c.TopObjects <= 0 {
		c.TopObjects = 3
	}
	if c.Cover <= 0 {
		c.Cover = 0.9
	}
	if c.MaxCombo <= 0 || c.MaxCombo > c.TopObjects {
		c.MaxCombo = c.TopObjects
	}
	if c.Frontier == 0 {
		c.Frontier = 12
	}
	if c.WaveSize <= 0 {
		c.WaveSize = DefaultWaveSize
	}
	if c.LocalityWeight <= 0 {
		c.LocalityWeight = 0.5
	}
	return c
}

// Outcome is one candidate's fate in the search.
type Outcome struct {
	Candidate Candidate
	// Score is the analytic cost (lower is better) that ranked the
	// candidate before any simulation.
	Score float64
	// Simulated is false for candidates pruned by the frontier cut.
	Simulated bool
	// Aborted marks simulated candidates cut off by the cycle budget; their
	// Cycles is the abort point, not a completion time.
	Aborted bool
	Cycles  float64
	// Comparison against the shared baseline; valid when Simulated and not
	// Aborted.
	Comparison optimize.Comparison
}

// Result is the search outcome.
type Result struct {
	// Baseline is the unmodified case's single shared measurement.
	Baseline *engine.Result
	// Report is the diagnosis the enumeration drew from.
	Report *diagnose.Report
	// Outcomes lists every candidate in analytic-score order.
	Outcomes []Outcome
	// Best points into Outcomes at the fastest completed candidate; nil
	// when no candidate completed (empty enumeration).
	Best *Outcome
	// Explored counts simulated candidates; Pruned those cut by the
	// frontier; AbortedRuns those the budget cut short.
	Explored, Pruned, AbortedRuns int
}

// Speedup is the baseline-to-best cycle ratio (>1: the fix helps).
func (r *Result) Speedup() float64 {
	if r.Best == nil || r.Best.Cycles == 0 {
		return 0
	}
	return r.Baseline.Cycles / r.Best.Cycles
}

// FromDetection runs the search for a detected case, reusing the
// detection's program heap, retained samples and contended channels — no
// re-profiling.
func FromDetection(dn *core.Detection, ecfg engine.Config, cfg Config) (*Result, error) {
	return Run(Input{
		Builder:   dn.Builder(),
		Machine:   dn.Program.Machine,
		Cfg:       dn.Cfg,
		Heap:      dn.Program.Heap,
		Samples:   dn.Samples,
		Weight:    dn.Weight,
		Contended: dn.Contended,
	}, ecfg, cfg)
}

// Run executes the full search: diagnose, enumerate, score, then simulate
// the frontier under the branch-and-bound budget. ecfg configures every
// simulation (baseline and candidates alike); its CycleBudget field is
// overwritten by the bound.
func Run(in Input, ecfg engine.Config, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	m := in.Machine
	if m == nil {
		return nil, fmt.Errorf("search: no machine")
	}
	if in.Samples == nil {
		if err := profile(&in, ecfg); err != nil {
			return nil, err
		}
	}
	if len(in.Contended) == 0 {
		in.Contended = deriveContended(m, in.Samples)
	}
	rep := diagnose.Analyze(in.Heap, in.Samples, in.Contended, in.Weight)
	top := rep.Top(cfg.Cover)
	if len(top) > cfg.TopObjects {
		top = top[:cfg.TopObjects]
	}

	cands := enumerate(top, cfg.MaxCombo)
	model := newCostModel(m, in.Samples, top, cfg.LocalityWeight)
	outs := make([]Outcome, len(cands))
	for i, c := range cands {
		outs[i] = Outcome{Candidate: c, Score: model.score(c)}
	}
	sort.Slice(outs, func(i, j int) bool {
		if outs[i].Score != outs[j].Score {
			return outs[i].Score < outs[j].Score
		}
		return outs[i].Candidate.Key() < outs[j].Candidate.Key()
	})

	frontier := len(outs)
	if cfg.Frontier > 0 && cfg.Frontier < frontier {
		frontier = cfg.Frontier
	}

	sp := obs.BeginSpan("search.run")
	sp.SetInt("candidates", int64(len(outs)))
	sp.SetInt("frontier", int64(frontier))
	defer sp.End()

	// The shared baseline: measured exactly once, never per candidate —
	// or not at all when the caller carries one over from a cached run.
	base := cfg.Baseline
	if base == nil {
		var err error
		if base, err = optimize.MeasureBase(in.Builder, m, in.Cfg, ecfg); err != nil {
			return nil, err
		}
	}
	res := &Result{Baseline: base, Report: rep, Pruned: len(outs) - frontier}

	// Branch and bound over fixed-size waves. The incumbent entering wave i
	// is min(baseline, best completed cycles in waves < i) — a function of
	// the deterministic candidate order only, never of which worker ran
	// what, so any Workers setting sees identical budgets and outcomes.
	// When a tracer is installed, each wave is a "search.wave" child span
	// (wave number, cycle budget) and each candidate run a "search.candidate"
	// grandchild carrying its canonical key and worker id.
	incumbent := base.Cycles
	for lo := 0; lo < frontier; lo += cfg.WaveSize {
		hi := lo + cfg.WaveSize
		if hi > frontier {
			hi = frontier
		}
		run := ecfg
		if !cfg.DisableBudget {
			run.CycleBudget = incumbent
		}
		ws := sp.Child("search.wave")
		ws.SetInt("wave", int64(lo/cfg.WaveSize))
		ws.SetInt("size", int64(hi-lo))
		ws.SetFloat("budget", run.CycleBudget)
		errs := make([]error, hi-lo)
		core.ParallelForWorkers(hi-lo, cfg.Workers, func(i, w int) {
			cs := ws.Child("search.candidate")
			cs.SetStr("key", outs[lo+i].Candidate.Key())
			cs.SetInt("worker", int64(w))
			errs[i] = simulate(&outs[lo+i], in, run, base)
			cs.SetFloat("cycles", outs[lo+i].Cycles)
			cs.End()
		})
		for _, e := range errs {
			if e != nil {
				ws.End()
				return nil, obs.FlightFailure("search.run", e)
			}
		}
		for i := lo; i < hi; i++ {
			res.Explored++
			if outs[i].Aborted {
				res.AbortedRuns++
			} else if outs[i].Cycles < incumbent {
				incumbent = outs[i].Cycles
			}
		}
		ws.SetFloat("incumbent", incumbent)
		ws.End()
	}
	res.Outcomes = outs

	for i := range outs {
		o := &outs[i]
		if !o.Simulated || o.Aborted {
			continue
		}
		if res.Best == nil || o.Cycles < res.Best.Cycles ||
			(o.Cycles == res.Best.Cycles && o.Candidate.Key() < res.Best.Candidate.Key()) {
			res.Best = o
		}
	}
	return res, nil
}

// simulate runs one candidate and records its outcome.
func simulate(o *Outcome, in Input, ecfg engine.Config, base *engine.Result) error {
	p, err := in.Builder.New(in.Machine, in.Cfg)
	if err != nil {
		return err
	}
	if err := o.Candidate.Transform()(p); err != nil {
		return err
	}
	r, err := p.Run(ecfg)
	if err != nil {
		return err
	}
	o.Simulated = true
	o.Cycles = r.Cycles
	o.Aborted = r.Aborted
	if !r.Aborted {
		o.Comparison = optimize.Compare(base, r)
	}
	return nil
}

// profile runs the case once with a PEBS collector to obtain the samples a
// caller without a detection (benchmarks, ad-hoc tuning) did not supply.
func profile(in *Input, ecfg engine.Config) error {
	p, err := in.Builder.New(in.Machine, in.Cfg)
	if err != nil {
		return err
	}
	ccfg := core.DefaultCollectorConfig()
	ccfg.Flavor = ecfg.SamplerFlavor
	col := pebs.NewCollector(ccfg, in.Cfg.Seed+101)
	run := ecfg
	run.Collector = col
	run.Seed = in.Cfg.Seed + 103
	if _, err := p.Run(run); err != nil {
		return err
	}
	in.Heap = p.Heap
	in.Samples = col.Samples()
	in.Weight = col.Weight()
	return nil
}

// deriveContended picks the channels to diagnose over when no classifier
// verdict is supplied: every remote channel whose DRAM sample count clears
// a floor of max(25, 1% of remote DRAM samples), in canonical order.
func deriveContended(m *topology.Machine, samples []pebs.Sample) []topology.Channel {
	counts := make([]int, m.NumChannels())
	remote := 0
	for i := range samples {
		s := &samples[i]
		if s.Level != cache.MEM || s.SrcNode == s.HomeNode {
			continue
		}
		counts[m.ChannelIndex(s.Channel())]++
		remote++
	}
	floor := remote / 100
	if floor < 25 {
		floor = 25
	}
	var out []topology.Channel
	for ci := 0; ci < m.NumChannels(); ci++ {
		ch := m.ChannelAt(ci)
		if !ch.Local() && counts[ci] >= floor {
			out = append(out, ch)
		}
	}
	return out
}

// enumerate builds the candidate set: every assignment of the strategies
// {keep, interleave, co-locate, replicate} to the top objects — all-keep
// excluded, at most maxCombo non-keep assignments — plus the whole-program
// interleave.
func enumerate(top []diagnose.ObjectCF, maxCombo int) []Candidate {
	names := make([]string, len(top))
	for i, o := range top {
		names[i] = o.Object.Name
	}
	sort.Strings(names)

	strategies := []optimize.Strategy{optimize.Interleave, optimize.Colocate, optimize.Replicate}
	var out []Candidate
	// Each object takes one of 4 states: 0 = keep, 1..3 = a strategy.
	total := 1
	for range names {
		total *= 4
	}
	for code := 1; code < total; code++ {
		var as []Assignment
		c := code
		for _, n := range names {
			if st := c & 3; st != 0 {
				as = append(as, Assignment{Object: n, Strategy: strategies[st-1]})
			}
			c >>= 2
		}
		if len(as) == 0 || len(as) > maxCombo {
			continue
		}
		out = append(out, Candidate{Assignments: as})
	}
	out = append(out, Candidate{WholeProgramInterleave: true})
	return out
}

// costModel holds the per-object traffic statistics the analytic score is
// computed from. All traffic is counted in DRAM (cache.MEM) samples; cache
// hits generate no channel traffic.
type costModel struct {
	m  *topology.Machine
	nn int
	// fixed is per-channel traffic of everything outside the top objects —
	// it is the same under every candidate.
	fixed []float64
	// recorded[k], bySrc[k], writesBySrc[k] describe top object k: its
	// observed per-channel traffic, and its per-source-node totals and
	// write counts (for the strategy predictions).
	recorded    [][]float64
	bySrc       [][]float64
	writesBySrc [][]float64
	// rowTotal is all traffic per source node (whole-program interleave).
	rowTotal []float64
	// dist is the per-channel latency distance: 1 local, the remote/local
	// unloaded-latency ratio for remote channels.
	dist []float64
	// cap is each channel's share of total machine bandwidth.
	cap []float64

	byName         map[string]int
	localityWeight float64
}

func newCostModel(m *topology.Machine, samples []pebs.Sample, top []diagnose.ObjectCF, localityWeight float64) *costModel {
	nc := m.NumChannels()
	cm := &costModel{
		m: m, nn: m.Nodes(),
		fixed:          make([]float64, nc),
		rowTotal:       make([]float64, m.Nodes()),
		dist:           make([]float64, nc),
		cap:            make([]float64, nc),
		byName:         map[string]int{},
		localityWeight: localityWeight,
	}
	type span struct{ base, end uint64 }
	spans := make([]span, len(top))
	for k, o := range top {
		cm.byName[o.Object.Name] = k
		spans[k] = span{o.Object.Base, o.Object.Base + o.Object.Size}
		cm.recorded = append(cm.recorded, make([]float64, nc))
		cm.bySrc = append(cm.bySrc, make([]float64, m.Nodes()))
		cm.writesBySrc = append(cm.writesBySrc, make([]float64, m.Nodes()))
	}
	for i := range samples {
		s := &samples[i]
		if s.Level != cache.MEM {
			continue
		}
		ci := m.ChannelIndex(s.Channel())
		cm.rowTotal[s.SrcNode]++
		obj := -1
		for k, sp := range spans {
			if s.Addr >= sp.base && s.Addr < sp.end {
				obj = k
				break
			}
		}
		if obj < 0 {
			cm.fixed[ci]++
			continue
		}
		cm.recorded[obj][ci]++
		cm.bySrc[obj][s.SrcNode]++
		if s.Write {
			cm.writesBySrc[obj][s.SrcNode]++
		}
	}
	lat := m.Latencies()
	remoteDist := 1.0
	if lat.LocalDRAM > 0 {
		remoteDist = lat.RemoteDRAM / lat.LocalDRAM
	}
	bwTotal := 0.0
	bw := m.BandwidthTable()
	for ci := 0; ci < nc; ci++ {
		bwTotal += bw[ci]
	}
	for ci := 0; ci < nc; ci++ {
		if m.ChannelAt(ci).Local() {
			cm.dist[ci] = 1
		} else {
			cm.dist[ci] = remoteDist
		}
		cm.cap[ci] = bw[ci] / bwTotal
	}
	return cm
}

// score is the analytic cost of a candidate, lower is better:
//
//	score = Σ_c frac_c²/cap_c  +  w · Σ_c frac_c·dist_c
//
// where frac_c is the channel's share of predicted traffic and cap_c its
// share of machine bandwidth. The first term is a convex pressure measure:
// it is minimized when traffic spreads in proportion to bandwidth and grows
// quadratically as traffic piles onto few channels — the remote-bandwidth
// saturation DR-BW detects. The second charges each access its latency
// distance, so all-remote placements (plain interleave) rank below
// data-computation co-location exactly as in the paper's Table IV. Channel
// iteration order is fixed (ChannelIndex order), so the floating-point sum
// is reproducible.
//
// Predicted traffic per strategy: keep uses the recorded channels;
// interleave spreads each source's accesses uniformly over all nodes;
// co-locate makes them local; replicate makes reads local but broadcasts
// every write to all nodes (the consistency cost that rules it out for
// write-shared data).
func (cm *costModel) score(c Candidate) float64 {
	nc := len(cm.fixed)
	t := make([]float64, nc)
	if c.WholeProgramInterleave {
		for src := 0; src < cm.nn; src++ {
			share := cm.rowTotal[src] / float64(cm.nn)
			for dst := 0; dst < cm.nn; dst++ {
				t[cm.index(src, dst)] += share
			}
		}
	} else {
		copy(t, cm.fixed)
		assigned := make([]bool, len(cm.recorded))
		for _, a := range c.Assignments {
			k, ok := cm.byName[a.Object]
			if !ok {
				continue
			}
			assigned[k] = true
			switch a.Strategy {
			case optimize.Interleave:
				for src := 0; src < cm.nn; src++ {
					share := cm.bySrc[k][src] / float64(cm.nn)
					for dst := 0; dst < cm.nn; dst++ {
						t[cm.index(src, dst)] += share
					}
				}
			case optimize.Colocate:
				for src := 0; src < cm.nn; src++ {
					t[cm.index(src, src)] += cm.bySrc[k][src]
				}
			case optimize.Replicate:
				for src := 0; src < cm.nn; src++ {
					t[cm.index(src, src)] += cm.bySrc[k][src] - cm.writesBySrc[k][src]
					for dst := 0; dst < cm.nn; dst++ {
						t[cm.index(src, dst)] += cm.writesBySrc[k][src]
					}
				}
			}
		}
		for k, done := range assigned {
			if !done {
				for ci := 0; ci < nc; ci++ {
					t[ci] += cm.recorded[k][ci]
				}
			}
		}
	}
	total := 0.0
	for ci := 0; ci < nc; ci++ {
		total += t[ci]
	}
	if total == 0 {
		return math.Inf(1)
	}
	pressure, locality := 0.0, 0.0
	for ci := 0; ci < nc; ci++ {
		frac := t[ci] / total
		if cm.cap[ci] > 0 {
			pressure += frac * frac / cm.cap[ci]
		}
		locality += frac * cm.dist[ci]
	}
	return pressure + cm.localityWeight*locality
}

func (cm *costModel) index(src, dst int) int {
	return src*cm.nn + dst
}
