package search

import (
	"reflect"
	"runtime"
	"testing"

	"drbw/internal/diagnose"
	"drbw/internal/engine"
	"drbw/internal/micro"
	"drbw/internal/optimize"
	"drbw/internal/program"
	"drbw/internal/topology"
)

func ecfgT() engine.Config {
	return engine.Config{Window: 2048, Warmup: 512, ReservoirSize: 256, Seed: 21}
}

func contendedInput(b program.Builder, seed uint64) Input {
	return Input{
		Builder: b,
		Machine: topology.XeonE5_4650(),
		Cfg:     program.Config{Threads: 32, Nodes: 4, Seed: seed},
	}
}

func TestCandidateKey(t *testing.T) {
	c := Candidate{Assignments: []Assignment{
		{Object: "vec_a", Strategy: optimize.Colocate},
		{Object: "vec_b", Strategy: optimize.Interleave},
	}}
	if got := c.Key(); got != "vec_a=co-locate,vec_b=interleave" {
		t.Errorf("key = %q", got)
	}
	w := Candidate{WholeProgramInterleave: true}
	if w.Key() != "*=interleave" || w.String() != "interleave whole program" {
		t.Errorf("whole-program key %q / string %q", w.Key(), w.String())
	}
}

func TestEnumerate(t *testing.T) {
	top := topCFs("a", "b")
	// 4^2 - 1 assignments plus the whole-program interleave.
	cands := enumerate(top, 2)
	if len(cands) != 16 {
		t.Fatalf("2 objects enumerate %d candidates, want 16", len(cands))
	}
	seen := map[string]bool{}
	for _, c := range cands {
		k := c.Key()
		if seen[k] {
			t.Errorf("duplicate candidate %q", k)
		}
		seen[k] = true
		if !c.WholeProgramInterleave && len(c.Assignments) == 0 {
			t.Error("all-keep candidate enumerated")
		}
	}
	// maxCombo 1: 2 objects × 3 strategies + whole-program.
	if got := enumerate(top, 1); len(got) != 7 {
		t.Errorf("maxCombo 1 enumerates %d, want 7", len(got))
	}
}

func topCFs(names ...string) []diagnose.ObjectCF {
	var out []diagnose.ObjectCF
	for i, n := range names {
		cf := diagnose.ObjectCF{}
		cf.Object.Name = n
		cf.Object.Base = uint64(0x1000 * (i + 1))
		cf.Object.Size = 0x100
		out = append(out, cf)
	}
	return out
}

func TestSearchFindsSpeedupOnContended(t *testing.T) {
	for _, tc := range []struct {
		name string
		b    program.Builder
		seed uint64
	}{
		{"sumv", micro.Sumv(micro.BigCentralized, 0), 41},
		{"dotv", micro.Dotv(micro.BigCentralized, 0), 43},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(contendedInput(tc.b, tc.seed), ecfgT(), Config{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Best == nil {
				t.Fatal("no best candidate")
			}
			if s := res.Speedup(); s < optimize.GroundTruthThreshold {
				t.Errorf("best placement %q speeds up only %.3fx, want >= %.2f",
					res.Best.Candidate, s, optimize.GroundTruthThreshold)
			}
			if got := res.Best.Comparison.Speedup(); got != res.Speedup() {
				t.Errorf("comparison speedup %.4f != result speedup %.4f", got, res.Speedup())
			}
			if res.Explored == 0 || res.Explored > len(res.Outcomes) {
				t.Errorf("explored %d of %d outcomes", res.Explored, len(res.Outcomes))
			}
		})
	}
}

func TestSearchCleanCaseNoRegression(t *testing.T) {
	in := Input{
		Builder: micro.Sumv(micro.SmallShared, 0),
		Machine: topology.XeonE5_4650(),
		Cfg:     program.Config{Threads: 16, Nodes: 4, Seed: 47},
	}
	res, err := Run(in, ecfgT(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil && res.Speedup() >= optimize.GroundTruthThreshold {
		t.Errorf("clean case reports %.3fx speedup from %q", res.Speedup(), res.Best.Candidate)
	}
}

// TestSearchDeterministicAcrossWorkers pins the branch-and-bound design
// requirement: any worker count must produce a bit-identical Result —
// same chosen placement, same cycle counts, same abort set.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	workers := []int{1, 2, runtime.GOMAXPROCS(0)}
	var ref *Result
	for _, w := range workers {
		res, err := Run(contendedInput(micro.Sumv(micro.BigCentralized, 0), 53), ecfgT(), Config{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("workers=%d: result differs from workers=%d", w, workers[0])
		}
	}
	if ref != nil && ref.Best == nil {
		t.Fatal("no best candidate on contended case")
	}
}

// TestPrunedMatchesExhaustive checks that the frontier cut plus the cycle
// budget still finds the same winner the exhaustive search does on the
// contended micro case.
func TestPrunedMatchesExhaustive(t *testing.T) {
	in := contendedInput(micro.Dotv(micro.BigCentralized, 0), 59)
	exh, err := Run(in, ecfgT(), Config{Frontier: -1, DisableBudget: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Run(in, ecfgT(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if exh.Best == nil || pruned.Best == nil {
		t.Fatal("missing best candidate")
	}
	if exh.Best.Candidate.Key() != pruned.Best.Candidate.Key() {
		t.Errorf("pruned best %q != exhaustive best %q",
			pruned.Best.Candidate.Key(), exh.Best.Candidate.Key())
	}
	if exh.Best.Cycles != pruned.Best.Cycles {
		t.Errorf("pruned best cycles %.0f != exhaustive %.0f", pruned.Best.Cycles, exh.Best.Cycles)
	}
	if exh.Pruned != 0 || exh.AbortedRuns != 0 {
		t.Errorf("exhaustive search pruned %d / aborted %d", exh.Pruned, exh.AbortedRuns)
	}
	if pruned.Pruned == 0 {
		t.Error("default config pruned nothing")
	}
	if pruned.Explored >= exh.Explored {
		t.Errorf("pruned explored %d, exhaustive %d", pruned.Explored, exh.Explored)
	}
}

// TestBudgetAbortsLosers checks the bound actually fires: with pruning on,
// later-wave runs that cannot beat the incumbent should abort. Dotv has two
// hot objects, so the frontier spans several waves.
func TestBudgetAbortsLosers(t *testing.T) {
	res, err := Run(contendedInput(micro.Dotv(micro.BigCentralized, 0), 61), ecfgT(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AbortedRuns == 0 {
		t.Error("no candidate run was cut by the cycle budget")
	}
	for _, o := range res.Outcomes {
		if o.Aborted && o.Comparison.OptCycles != 0 {
			t.Errorf("aborted candidate %q carries a comparison", o.Candidate)
		}
	}
}
