package search

import (
	"testing"

	"drbw/internal/experiments"
	"drbw/internal/micro"
	"drbw/internal/program"
)

// TestFromDetection drives the full closed loop: train the classifier,
// detect a contended case, then search for its fix from the detection's
// retained state — no re-profiling between detect and search.
func TestFromDetection(t *testing.T) {
	ctx, err := experiments.NewContext(true, 77)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := ctx.Detector.Detect(micro.Sumv(micro.BigCentralized, 0), ctx.Machine,
		program.Config{Threads: 32, Nodes: 4, Seed: 79})
	if err != nil {
		t.Fatal(err)
	}
	if !dn.Detected {
		t.Fatal("classifier missed the centralized T32-N4 case")
	}
	res, err := FromDetection(dn, ecfgT(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("search found no placement")
	}
	if s := res.Speedup(); s < 1.10 {
		t.Errorf("closed loop found only %.3fx (placement %q)", s, res.Best.Candidate)
	}
	if len(res.Report.Overall) == 0 {
		t.Error("detection-driven search produced no diagnosis")
	}
}
