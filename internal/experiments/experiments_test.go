package experiments

import (
	"strings"
	"sync"
	"testing"
)

var (
	ctxOnce sync.Once
	testCtx *Context
	ctxErr  error
)

// quickCtx trains once per test binary.
func quickCtx(t *testing.T) *Context {
	t.Helper()
	ctxOnce.Do(func() { testCtx, ctxErr = NewContext(true, 2) })
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return testCtx
}

func TestTableFormatter(t *testing.T) {
	tb := &table{header: []string{"a", "long-header"}}
	tb.add("x", "1")
	tb.add("longer-cell", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table rendered %d lines:\n%s", len(lines), out)
	}
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestFormatHelpers(t *testing.T) {
	if f2(1.2345) != "1.23" || pct(0.123) != "12.3%" || itoa(7) != "7" ||
		spd(2.5) != "2.50x" || f0(3.7) != "4" {
		t.Error("format helpers wrong")
	}
}

func TestTrainingSections(t *testing.T) {
	c := quickCtx(t)
	if !strings.Contains(c.TableI(), "remote") {
		t.Error("Table I missing remote features")
	}
	t2 := c.TableII()
	if !strings.Contains(t2, "sumv") || !strings.Contains(t2, "bandit") {
		t.Errorf("Table II incomplete:\n%s", t2)
	}
	body, acc, err := c.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Errorf("CV accuracy %.2f", acc)
	}
	if !strings.Contains(body, "confusion") {
		t.Errorf("Table III rendering:\n%s", body)
	}
	fig3 := c.Fig3()
	if !strings.Contains(fig3, "decision tree") || !strings.Contains(fig3, "#") {
		t.Errorf("Fig 3 rendering:\n%s", fig3)
	}
}

func TestQuickSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation sweep is slow")
	}
	c := quickCtx(t)
	ev, err := c.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Summaries) != 21 {
		t.Fatalf("%d Table V benchmarks, want 21", len(ev.Summaries))
	}
	_, stats := c.TableVI(ev)
	if stats.FNR > 0.01 {
		t.Errorf("false negative rate %.1f%%; paper reports 0%%", 100*stats.FNR)
	}
	if stats.Correctness < 0.85 {
		t.Errorf("correctness %.1f%%", 100*stats.Correctness)
	}
	// The headline contended benchmarks must be detected.
	for _, s := range ev.Summaries {
		switch s.Name {
		case "Streamcluster", "AMG2006", "IRSmk":
			if s.Detected == 0 {
				t.Errorf("%s never detected", s.Name)
			}
		case "Swaptions", "Blackscholes", "EP":
			if s.Detected != 0 {
				t.Errorf("%s detected %d times", s.Name, s.Detected)
			}
		}
	}
	tableV := c.TableV(ev)
	if !strings.Contains(tableV, "Streamcluster") {
		t.Error("Table V missing rows")
	}
	tableIV, err := c.TableIV(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tableIV, "rmc") {
		t.Error("Table IV missing classes")
	}
}

func TestTableVII(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead measurement is slow")
	}
	c := quickCtx(t)
	body, avg, err := c.TableVII()
	if err != nil {
		t.Fatal(err)
	}
	if avg < -0.02 || avg > 0.12 {
		t.Errorf("average overhead %.1f%% outside the paper's band", 100*avg)
	}
	if !strings.Contains(body, "LULESH") {
		t.Error("Table VII missing rows")
	}
}

func TestFig4ReproducesRankings(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnosis runs are slow")
	}
	c := quickCtx(t)
	body, err := c.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// AMG's ranking must start with RAP_diag_j; streamcluster's with block.
	iRAP := strings.Index(body, "RAP_diag_j")
	iDiag := strings.Index(body, "diag_j ") // trailing space avoids RAP_diag_j
	if iRAP < 0 || iDiag < 0 || iRAP > iDiag {
		t.Errorf("AMG CF order wrong in:\n%s", body)
	}
	if !strings.Contains(body, "block") {
		t.Errorf("streamcluster block missing:\n%s", body)
	}
	if !strings.Contains(body, "<static/stack>") {
		t.Errorf("LULESH static share missing:\n%s", body)
	}
}

func TestMaskDataset(t *testing.T) {
	c := quickCtx(t)
	ds := maskDataset(c.Training.Dataset, []int{6, 7})
	if len(ds.Examples) != len(c.Training.Dataset.Examples) {
		t.Fatal("mask changed example count")
	}
	if len(ds.Examples[0].X) != 2 {
		t.Fatalf("masked width %d", len(ds.Examples[0].X))
	}
	if len(ds.FeatureNames) != 2 || !strings.Contains(ds.FeatureNames[0], "remote") {
		t.Errorf("masked names %v", ds.FeatureNames)
	}
}
