package experiments

import (
	"strings"
	"testing"

	"drbw/internal/program"
	"drbw/internal/workloads"
)

func TestFiguresRender(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps are slow")
	}
	c := quickCtx(t)

	fig5, err := c.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig5, "init") || !strings.Contains(fig5, "solve") {
		t.Errorf("Fig5 missing phases:\n%s", fig5)
	}
	fig6, err := c.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig6, "medium mesh") || !strings.Contains(fig6, "co-locate") {
		t.Errorf("Fig6 incomplete:\n%s", fig6)
	}
	fig7, err := c.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig7, "replicate") || !strings.Contains(fig7, "native") {
		t.Errorf("Fig7 incomplete:\n%s", fig7)
	}
	fig8, err := c.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig8, "T16-N4") {
		t.Errorf("Fig8 incomplete:\n%s", fig8)
	}
}

func TestCaseStudiesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("case studies are slow")
	}
	c := quickCtx(t)
	sp, err := c.SPStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sp, "static") {
		t.Errorf("SP study missing the static-data note:\n%s", sp)
	}
	bs, err := c.BlackscholesStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bs, "false") {
		t.Errorf("blackscholes should never be detected:\n%s", bs)
	}
	llc, err := c.LLCStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(llc, "thrash") || !strings.Contains(llc, "CV accuracy") {
		t.Errorf("LLC study incomplete:\n%s", llc)
	}
}

func TestBaselineStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline study is slow")
	}
	c := quickCtx(t)
	out, err := c.BaselineStudy()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"AMG2006", "object rules", "page coverage", "n/a*"} {
		if !strings.Contains(out, want) {
			t.Errorf("baseline study missing %q:\n%s", want, out)
		}
	}
}

func TestCheapAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	c := quickCtx(t)
	feats, err := c.AblationFeatures()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(feats, "Table I") {
		t.Errorf("feature ablation incomplete:\n%s", feats)
	}
	depth, err := c.AblationTreeDepth()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(depth, "leaves") {
		t.Errorf("depth ablation incomplete:\n%s", depth)
	}
	pf, err := c.AblationPrefetcher()
	if err != nil {
		t.Fatal(err)
	}
	// The random-access case must be prefetch-immune; detection never flips.
	if !strings.Contains(pf, "Streamcluster") {
		t.Errorf("prefetcher ablation incomplete:\n%s", pf)
	}
	gran, err := c.AblationChannelGranularity()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gran, "agreement with ground truth") {
		t.Errorf("granularity ablation incomplete:\n%s", gran)
	}
}

// TestAllContendedBenchmarksDetected guards the paper's headline property
// at the benchmark level: every Table IV rmc benchmark must be detected at
// its densest configuration — including LULESH, which Table V's sweep
// does not cover.
func TestAllContendedBenchmarksDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("detection runs are slow")
	}
	c := quickCtx(t)
	cases := []struct {
		name, input string
	}{
		{"Streamcluster", "native"},
		{"AMG2006", "30x30x30"},
		{"IRSmk", "large"},
		{"NW", "large"},
		{"SP", "C"},
		{"LULESH", "large"},
	}
	for i, cs := range cases {
		e, ok := workloads.ByName(cs.name)
		if !ok {
			t.Fatalf("missing %s", cs.name)
		}
		cfg := program.Config{Threads: 64, Nodes: 4, Input: cs.input, Seed: uint64(99000 + i*7)}
		dn, err := c.Detector.Detect(e.Builder, c.Machine, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !dn.Detected {
			t.Errorf("%s %s T64-N4 not detected (false negative)", cs.name, cs.input)
		}
	}
}
