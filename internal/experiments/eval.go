package experiments

import (
	"errors"
	"fmt"
	"strings"

	"drbw/internal/core"
	"drbw/internal/features"
	"drbw/internal/optimize"
	"drbw/internal/pebs"
	"drbw/internal/program"
	"drbw/internal/workloads"
)

// paperTableV records the paper's per-benchmark (actual, detected) counts
// for side-by-side reporting.
var paperTableV = map[string][2]int{
	"Swaptions": {0, 0}, "Blackscholes": {0, 0}, "Bodytrack": {0, 0},
	"Freqmine": {0, 0}, "Ferret": {0, 0}, "Fluidanimate": {0, 4},
	"X264": {0, 0}, "Streamcluster": {13, 16}, "IRSmk": {15, 15},
	"AMG2006": {8, 8}, "NW": {16, 17}, "BT": {0, 0}, "CG": {0, 0},
	"DC": {0, 0}, "EP": {0, 0}, "FT": {0, 2}, "IS": {0, 0}, "LU": {0, 0},
	"MG": {0, 0}, "UA": {0, 9}, "SP": {11, 11},
}

// Evaluation is the outcome of the full Table IV/V/VI sweep.
type Evaluation struct {
	Summaries []core.BenchmarkSummary
}

// quickCases reduces a builder's sweep when running in quick mode: the
// largest input only, four configurations.
func (c *Context) sweepConfigs() []program.Config {
	cfgs := program.StandardConfigs()
	if !c.Quick {
		return cfgs
	}
	return []program.Config{cfgs[0], cfgs[3], cfgs[5], cfgs[7]} // T16-N4, T64-N4, T16-N2, T32-N2
}

func (c *Context) sweepInputs(inputs []string) []string {
	if !c.Quick || len(inputs) <= 1 {
		return inputs
	}
	return []string{inputs[0], inputs[len(inputs)-1]}
}

// Evaluate sweeps every Table V benchmark over its inputs × configurations,
// with detection and the interleave ground truth per case, through the
// detector's parallel batch API: cases fan out over GOMAXPROCS workers with
// seeds assigned up front, so the result is identical to a serial sweep.
// Failing cases do not abort the sweep — their errors are aggregated into
// the returned error while the Evaluation keeps every successful case.
func (c *Context) Evaluate() (*Evaluation, error) {
	var jobs []core.BatchJob
	var bench []int // jobs[i] belongs to ev.Summaries[bench[i]]
	ev := &Evaluation{}
	seed := uint64(50000)
	for _, e := range workloads.All() {
		if !e.InTableV {
			continue
		}
		bi := len(ev.Summaries)
		ev.Summaries = append(ev.Summaries, core.BenchmarkSummary{Name: e.Name()})
		for _, input := range c.sweepInputs(e.Builder.Inputs) {
			for _, cfg := range c.sweepConfigs() {
				cc := cfg
				cc.Input = input
				cc.Seed = seed
				seed += 31
				jobs = append(jobs, core.BatchJob{Builder: e.Builder, Cfg: cc})
				bench = append(bench, bi)
			}
		}
	}

	var errs []error
	for i, r := range c.Detector.EvaluateAll(c.Machine, jobs) {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("experiments: %w", r.Err))
			continue
		}
		sum := &ev.Summaries[bench[i]]
		sum.Cases++
		if r.Detection.Actual {
			sum.Actual++
		}
		if r.Detection.Detected {
			sum.Detected++
		}
		sum.Results = append(sum.Results, r.Detection.CaseResult)
	}
	if len(errs) > 0 {
		return ev, errors.Join(errs...)
	}
	return ev, nil
}

// TableIV renders the benchmark classification. The paper's Table IV
// groups benchmarks by whether contention actually occurs in any case (its
// ground truth), not by raw detection — Fluidanimate, FT and UA keep their
// "good" class despite a few detected cases in Table V. Raytrace and
// LULESH, absent from Table V, are classified from probe cases.
func (c *Context) TableIV(ev *Evaluation) (string, error) {
	class := map[string]features.Label{}
	for _, s := range ev.Summaries {
		if s.Actual > 0 {
			class[s.Name] = features.RMC
		} else {
			class[s.Name] = features.Good
		}
	}
	// The two Table-IV-only benchmarks.
	for _, extra := range []struct {
		name, input string
	}{{"Raytrace", "native"}, {"LULESH", "large"}} {
		e, ok := workloads.ByName(extra.name)
		if !ok {
			return "", fmt.Errorf("experiments: missing %s", extra.name)
		}
		actual := false
		for _, cfg := range c.sweepConfigs() {
			cc := cfg
			cc.Input = extra.input
			cc.Seed = uint64(90000 + cfg.Threads*cfg.Nodes)
			ecfg := c.Ecfg
			ecfg.Seed = cc.Seed + 211
			rmc, _, err := optimize.ActualRMC(e.Builder, c.Machine, cc, ecfg)
			if err != nil {
				return "", err
			}
			if rmc {
				actual = true
				break
			}
		}
		if actual {
			class[extra.name] = features.RMC
		} else {
			class[extra.name] = features.Good
		}
	}

	var good, rmc []string
	for _, e := range workloads.All() {
		switch class[e.Name()] {
		case features.RMC:
			rmc = append(rmc, e.Name())
		default:
			good = append(good, e.Name())
		}
	}
	var b strings.Builder
	b.WriteString("Table IV — benchmark classification (overall, all cases)\n\n")
	fmt.Fprintf(&b, "good (%d): %s\n", len(good), strings.Join(good, ", "))
	fmt.Fprintf(&b, "rmc  (%d): %s\n", len(rmc), strings.Join(rmc, ", "))
	b.WriteString("[paper: 17 good / 6 rmc — SP, Streamcluster, NW, AMG2006, IRSmk, LULESH]\n")

	// Agreement with the paper's classes.
	agree := 0
	for _, e := range workloads.All() {
		if class[e.Name()] == e.PaperClass {
			agree++
		}
	}
	fmt.Fprintf(&b, "agreement with the paper's classes: %d/%d\n", agree, len(workloads.All()))
	return b.String(), nil
}

// TableV renders the per-benchmark case counts next to the paper's.
func (c *Context) TableV(ev *Evaluation) string {
	t := &table{header: []string{
		"Benchmark", "#cases", "actual RMC", "detected RMC", "paper actual", "paper detected",
	}}
	var cases, act, det int
	for _, s := range ev.Summaries {
		p := paperTableV[s.Name]
		t.add(s.Name, itoa(s.Cases), itoa(s.Actual), itoa(s.Detected), itoa(p[0]), itoa(p[1]))
		cases += s.Cases
		act += s.Actual
		det += s.Detected
	}
	t.add("Total", itoa(cases), itoa(act), itoa(det), "63", "82")
	note := ""
	if c.Quick {
		note = "(quick mode: reduced inputs/configs; paper columns refer to the full 512-case sweep)\n"
	}
	return "Table V — per-case detection vs interleave ground truth\n\n" + note + t.String()
}

// TableVI renders the pooled accuracy metrics.
func (c *Context) TableVI(ev *Evaluation) (string, *core.CaseStats) {
	cm := core.AccuracyMatrix(ev.Summaries)
	stats := &core.CaseStats{
		Correctness: cm.Accuracy(),
		FPR:         cm.FalsePositiveRate(1),
		FNR:         cm.FalseNegativeRate(1),
	}
	var b strings.Builder
	b.WriteString("Table VI — detection accuracy over all cases\n\n")
	b.WriteString(cm.String())
	fmt.Fprintf(&b, "\ncorrectness %.1f%%  false positive rate %.1f%%  false negative rate %.1f%%\n",
		100*stats.Correctness, 100*stats.FPR, 100*stats.FNR)
	b.WriteString("[paper: 96.3% correctness, 4.2% FPR, 0% FNR]\n")
	return b.String(), stats
}

// TableVII measures profiling overhead on the six contended benchmarks at
// T64-N4 (profiling on vs off).
func (c *Context) TableVII() (string, float64, error) {
	rows := []struct {
		name, input string
	}{
		{"IRSmk", "large"},
		{"AMG2006", "30x30x30"},
		{"Streamcluster", "native"},
		{"NW", "large"},
		{"SP", "C"},
		{"LULESH", "large"},
	}
	t := &table{header: []string{"Code", "without profiling", "with profiling", "overhead"}}
	var sum float64
	for i, r := range rows {
		e, ok := workloads.ByName(r.name)
		if !ok {
			return "", 0, fmt.Errorf("experiments: missing %s", r.name)
		}
		cfg := program.Config{Threads: 64, Nodes: 4, Input: r.input, Seed: uint64(70000 + i)}
		p, err := e.Builder.New(c.Machine, cfg)
		if err != nil {
			return "", 0, err
		}
		plain := c.Ecfg
		plain.Seed = cfg.Seed + 1
		base, err := p.Run(plain)
		if err != nil {
			return "", 0, err
		}
		p2, err := e.Builder.New(c.Machine, cfg)
		if err != nil {
			return "", 0, err
		}
		prof := c.Ecfg
		prof.Seed = cfg.Seed + 1
		prof.Collector = pebs.NewCollector(core.DefaultCollectorConfig(), cfg.Seed+2)
		withProf, err := p2.Run(prof)
		if err != nil {
			return "", 0, err
		}
		over := withProf.Cycles/base.Cycles - 1
		sum += over
		t.add(r.name, f0(base.Cycles/1e6)+" Mcyc", f0(withProf.Cycles/1e6)+" Mcyc",
			fmt.Sprintf("%+.1f%%", 100*over))
	}
	avg := sum / float64(len(rows))
	out := "Table VII — DR-BW runtime overhead at T64-N4\n\n" + t.String() +
		fmt.Sprintf("average overhead: %+.1f%%  [paper: +3.3%% average, +10.0%% max]\n", 100*avg)
	return out, avg, nil
}
