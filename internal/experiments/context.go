// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables I-VII, Figures 3-8, and the SP/Blackscholes case
// studies), plus ablations of the design choices DESIGN.md calls out. It is
// shared by cmd/drbw-bench and the root bench_test.go harness.
package experiments

import (
	"fmt"
	"strings"

	"drbw/internal/core"
	"drbw/internal/dtree"
	"drbw/internal/engine"
	"drbw/internal/micro"
	"drbw/internal/topology"
)

// Context holds a trained classifier and the configuration every
// experiment runs under.
type Context struct {
	Machine  *topology.Machine
	Training *core.TrainingData
	Tree     *dtree.Tree
	Detector *core.Detector
	Ecfg     engine.Config
	Quick    bool
}

// NewContext trains DR-BW. quick trains on a quarter of the 192 runs with a
// reduced simulation window; experiments then also shrink their sweeps.
func NewContext(quick bool, seed uint64) (*Context, error) {
	return NewContextWorkers(quick, seed, 0)
}

// NewContextWorkers is NewContext with an explicit per-run worker bound for
// the simulation window (engine.Config.Workers; 0 = GOMAXPROCS, 1 = serial).
// Worker count never changes results — the parallel window is bit-identical
// to the serial interleave — only how many cores one run may occupy.
func NewContextWorkers(quick bool, seed uint64, workers int) (*Context, error) {
	ecfg := core.DefaultEngineConfig(seed)
	ecfg.Workers = workers
	if quick {
		// Keep the warmup long enough that cache-resident inputs reveal
		// themselves; shrinking it below one working-set pass turns every
		// friendly small input into a cold-miss stream.
		ecfg.Window = 16384
		ecfg.Warmup = 8192
	}
	set := micro.TrainingSet()
	if quick {
		var reduced []micro.Instance
		for i := 0; i < len(set); i += 4 {
			reduced = append(reduced, set[i])
		}
		set = reduced
	}
	m := topology.XeonE5_4650()
	td, err := core.CollectTraining(m, ecfg, set)
	if err != nil {
		return nil, err
	}
	tree, err := core.TrainClassifier(td, core.DefaultTreeConfig())
	if err != nil {
		return nil, err
	}
	return &Context{
		Machine:  m,
		Training: td,
		Tree:     tree,
		Detector: core.NewDetector(tree, ecfg),
		Ecfg:     ecfg,
		Quick:    quick,
	}, nil
}

// table is a tiny fixed-width table formatter.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func spd(v float64) string { return fmt.Sprintf("%.2fx", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
