package experiments

import (
	"fmt"
	"strings"

	"drbw/internal/autoplace"
	"drbw/internal/optimize"
	"drbw/internal/program"
	"drbw/internal/workloads"
)

// BaselineStudy compares DR-BW-guided fixes against the heuristic
// traffic-management baseline of Section II-B (Carrefour-style rules, at
// object and page granularity) on three contended benchmarks. The paper's
// argument, quantified: fixed placement rules either misfire on
// block-partitioned arrays (object granularity sees "shared", interleaves)
// or cover almost nothing at profiler sampling rates (page granularity).
func (c *Context) BaselineStudy() (string, error) {
	cases := []struct {
		bench, input string
		threads      int
		fix          optimize.Transform
		fixName      string
		// pageFair: page-rule speedups are only measured where sampling is
		// spatially unbiased (random access). For sequential scans the
		// simulation window and the sampled pages coincide, which would
		// over-credit page migration; those rows report coverage only.
		pageFair bool
	}{
		{"AMG2006", "30x30x30", 64,
			optimize.Objects(optimize.Colocate, "RAP_diag_j", "diag_j", "diag_data", "A_diag_j"),
			"co-locate(4 arrays)", false},
		{"Streamcluster", "native", 32,
			optimize.Objects(optimize.Replicate, "block", "point.p"),
			"replicate(block,point.p)", true},
		{"NW", "large", 32,
			optimize.Objects(optimize.Colocate, "input_itemsets", "reference"),
			"co-locate(2 arrays)", false},
	}
	t := &table{header: []string{"benchmark", "DR-BW fix", "interleave-all", "object rules", "page rules", "page coverage"}}
	var notes strings.Builder
	for i, cs := range cases {
		e, ok := workloads.ByName(cs.bench)
		if !ok {
			return "", fmt.Errorf("experiments: missing %s", cs.bench)
		}
		cfg := program.Config{Threads: cs.threads, Nodes: 4, Input: cs.input, Seed: uint64(97000 + i*19)}

		// One profiled run supplies the samples every strategy plans from.
		dn, err := c.Detector.Detect(e.Builder, c.Machine, cfg)
		if err != nil {
			return "", err
		}
		prof, samples := dn.Program, dn.Samples

		ecfg := c.Ecfg
		ecfg.Seed = cfg.Seed + 7

		base, err := e.Builder.New(c.Machine, cfg)
		if err != nil {
			return "", err
		}
		baseRes, err := base.Run(ecfg)
		if err != nil {
			return "", err
		}

		speedup := func(tr func(*program.Program) error) (float64, error) {
			p, err := e.Builder.New(c.Machine, cfg)
			if err != nil {
				return 0, err
			}
			if err := tr(p); err != nil {
				return 0, err
			}
			res, err := p.Run(ecfg)
			if err != nil {
				return 0, err
			}
			return baseRes.Cycles / res.Cycles, nil
		}

		drbwS, err := speedup(cs.fix)
		if err != nil {
			return "", err
		}
		interS, err := speedup(optimize.WholeProgram(optimize.Interleave))
		if err != nil {
			return "", err
		}

		objActions := autoplace.PlanObjects(prof.Heap, samples, autoplace.Config{})
		objS, err := speedup(func(p *program.Program) error {
			return autoplace.ApplyObjects(p, objActions)
		})
		if err != nil {
			return "", err
		}

		pageActions, coverage := autoplace.PlanPages(c.Machine, prof.Heap, samples, autoplace.Config{})
		pageCell := "n/a*"
		if cs.pageFair {
			pageS, err := speedup(func(p *program.Program) error {
				return autoplace.ApplyPages(p, pageActions)
			})
			if err != nil {
				return "", err
			}
			pageCell = spd(pageS)
		}

		t.add(cs.bench, spd(drbwS), spd(interS), spd(objS), pageCell, pct(coverage))
		fmt.Fprintf(&notes, "\n%s — object rules chose:\n%s", cs.bench, autoplace.Summary(objActions))
	}
	out := "Baseline study — DR-BW-guided fixes vs traffic-management heuristics (§II-B)\n" +
		"[fixed rules misfire on block-partitioned arrays; page rules cover ~nothing at 1/2000 sampling]\n\n" +
		t.String() +
		"\n* page-rule speedups are reported only for randomly-accessed data, where the\n" +
		"  sampler's spatial coverage is unbiased; for sequential scans the windowed\n" +
		"  simulator cannot evaluate per-page migration faithfully (coverage column\n" +
		"  still shows how little of the footprint 1/2000 sampling can decide on).\n" +
		notes.String()
	return out, nil
}
