package experiments

import (
	"fmt"
	"sort"
	"strings"

	"drbw/internal/core"
	"drbw/internal/dtree"
	"drbw/internal/features"
)

// TableI reruns the feature-selection filter over the candidate statistics
// of the training runs and renders the kept features next to the paper's
// Table I list.
func (c *Context) TableI() string {
	kept := c.Training.SelectionExperiment()
	var b strings.Builder
	b.WriteString("Table I — features kept by the selection filter (candidate list -> selected)\n\n")
	b.WriteString("paper's selected features:\n")
	for i, n := range features.Names {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, n)
	}
	b.WriteString("\nfilter keeps (significant good-vs-rmc difference for a majority of mini-programs):\n")
	for _, n := range kept {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

// TableII renders the training-set summary.
func (c *Context) TableII() string {
	sum := c.Training.Summary()
	t := &table{header: []string{"mini-programs", "good", "rmc", "total"}}
	order := []string{"sumv", "dotv", "countv", "bandit"}
	tg, tr := 0, 0
	for _, prog := range order {
		g := sum[prog][features.Good]
		r := sum[prog][features.RMC]
		tg += g
		tr += r
		rmc := itoa(r)
		if r == 0 {
			rmc = "-"
		}
		t.add(prog, itoa(g), rmc, itoa(g+r))
	}
	t.add("Full training data set", itoa(tg), itoa(tr), itoa(tg+tr))
	return "Table II — collected training data\n\n" + t.String()
}

// TableIII runs stratified 10-fold cross validation and renders the pooled
// confusion matrix.
func (c *Context) TableIII() (string, float64, error) {
	cm, err := c.CrossValidate()
	if err != nil {
		return "", 0, err
	}
	var b strings.Builder
	b.WriteString("Table III — confusion matrix, stratified 10-fold cross validation\n\n")
	b.WriteString(cm.String())
	fmt.Fprintf(&b, "\noverall success rate: %d/%d (%.1f%%)  [paper: 187/192 = 97.4%%]\n",
		correct(cm.Counts), cm.Total(), 100*cm.Accuracy())
	return b.String(), cm.Accuracy(), nil
}

func correct(counts [][]int) int {
	n := 0
	for i := range counts {
		n += counts[i][i]
	}
	return n
}

// CrossValidate exposes the raw CV matrix.
func (c *Context) CrossValidate() (*dtree.ConfusionMatrix, error) {
	return core.CrossValidate(c.Training, core.DefaultTreeConfig())
}

// Fig3 renders the trained decision tree with the Table I feature indices
// it splits on.
func (c *Context) Fig3() string {
	var b strings.Builder
	b.WriteString("Figure 3 — the decision tree used by DR-BW\n\n")
	b.WriteString(c.Tree.String())
	b.WriteString("\nsplits on Table I features: ")
	var parts []string
	for _, f := range c.Tree.UsedFeatures() {
		parts = append(parts, fmt.Sprintf("#%d (%s)", f+1, features.Names[f]))
	}
	sort.Strings(parts)
	b.WriteString(strings.Join(parts, ", "))
	b.WriteString("\n[paper: features #6 (num remote dram samples) and #7 (avg remote dram latency)]\n")
	return b.String()
}
