package experiments

import (
	"fmt"

	"drbw/internal/cache"
	"drbw/internal/core"
	"drbw/internal/dtree"
	"drbw/internal/features"
	"drbw/internal/micro"
	"drbw/internal/optimize"
	"drbw/internal/pebs"
	"drbw/internal/program"
	"drbw/internal/topology"
	"drbw/internal/workloads"
)

// maskDataset projects the training set onto a feature subset (1-based
// Table I indices).
func maskDataset(ds *dtree.Dataset, keep []int) *dtree.Dataset {
	out := &dtree.Dataset{ClassNames: ds.ClassNames}
	for _, k := range keep {
		out.FeatureNames = append(out.FeatureNames, ds.FeatureNames[k-1])
	}
	for _, e := range ds.Examples {
		x := make([]float64, len(keep))
		for i, k := range keep {
			x[i] = e.X[k-1]
		}
		out.Examples = append(out.Examples, dtree.Example{X: x, Y: e.Y})
	}
	return out
}

// AblationFeatures compares classifier accuracy across feature subsets:
// the full Table I vector, latency ratios only, remote-DRAM features only,
// and counts only.
func (c *Context) AblationFeatures() (string, error) {
	sets := []struct {
		name string
		keep []int
	}{
		{"all 13 (Table I)", []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}},
		{"latency ratios (1-5)", []int{1, 2, 3, 4, 5}},
		{"remote count+latency (6-7)", []int{6, 7}},
		{"remote count only (6)", []int{6}},
		{"counts only (6,8,10,12)", []int{6, 8, 10, 12}},
	}
	t := &table{header: []string{"feature set", "10-fold CV accuracy"}}
	for _, s := range sets {
		ds := maskDataset(c.Training.Dataset, s.keep)
		cm, err := dtree.CrossValidate(ds, core.DefaultTreeConfig(), 10, 42)
		if err != nil {
			return "", err
		}
		t.add(s.name, pct(cm.Accuracy()))
	}
	return "Ablation — feature sets\n[expected: count-only features cannot separate bandit from contention]\n\n" + t.String(), nil
}

// AblationTreeDepth sweeps the tree depth limit.
func (c *Context) AblationTreeDepth() (string, error) {
	t := &table{header: []string{"max depth", "CV accuracy", "leaves"}}
	for _, d := range []int{1, 2, 3, 4, 6, 8} {
		cfg := dtree.Config{MaxDepth: d, MinLeaf: 3}
		cm, err := dtree.CrossValidate(c.Training.Dataset, cfg, 10, 42)
		if err != nil {
			return "", err
		}
		tree, err := dtree.Train(c.Training.Dataset, cfg)
		if err != nil {
			return "", err
		}
		t.add(itoa(d), pct(cm.Accuracy()), itoa(tree.Leaves()))
	}
	return "Ablation — decision-tree depth\n\n" + t.String(), nil
}

// AblationSamplingPeriod re-collects a reduced training set at several
// sampling periods and reports CV accuracy: sparser sampling loses signal.
func (c *Context) AblationSamplingPeriod() (string, error) {
	var reduced []micro.Instance
	set := micro.TrainingSet()
	for i := 0; i < len(set); i += 8 {
		reduced = append(reduced, set[i])
	}
	t := &table{header: []string{"period (1/n accesses)", "CV accuracy", "avg samples/run"}}
	for _, period := range []int{500, 2000, 8000, 32000} {
		td := &dtree.Dataset{
			FeatureNames: features.Names[:],
			ClassNames:   []string{"good", "rmc"},
		}
		var totalSamples int
		for _, inst := range reduced {
			p, err := inst.Builder.New(c.Machine, inst.Cfg)
			if err != nil {
				return "", err
			}
			col := pebs.NewCollector(pebs.Config{Period: period, MaxKept: 120000}, inst.Cfg.Seed+3)
			run := c.Ecfg
			run.Collector = col
			run.Seed = inst.Cfg.Seed + 5
			if _, err := p.Run(run); err != nil {
				return "", err
			}
			samples := col.Samples()
			totalSamples += col.Total()
			ch := busiest(c, samples)
			vec := features.Extract(samples, ch, col.Weight())
			td.Examples = append(td.Examples, dtree.Example{X: vec[:], Y: int(inst.Mode)})
		}
		cm, err := dtree.CrossValidate(td, core.DefaultTreeConfig(), 6, 42)
		if err != nil {
			return "", err
		}
		t.add(itoa(period), pct(cm.Accuracy()), itoa(totalSamples/len(reduced)))
	}
	return "Ablation — PEBS sampling period (paper uses 1/2000)\n\n" + t.String(), nil
}

func busiest(c *Context, samples []pebs.Sample) topology.Channel {
	byChannel := pebs.Associate(samples)
	best := topology.Channel{Src: 0, Dst: 1}
	bestN := -1
	for _, ch := range c.Machine.RemoteChannels() {
		if n := len(byChannel[ch]); n > bestN {
			best, bestN = ch, n
		}
	}
	return best
}

// AblationChannelGranularity compares the paper's per-channel detection
// against whole-run classification on a benchmark subset: whole-run
// vectors blur the contended channel's signal with idle sockets' samples.
func (c *Context) AblationChannelGranularity() (string, error) {
	subset := []struct {
		name, input string
		threads     int
		nodes       int
	}{
		{"Streamcluster", "native", 32, 4},
		{"AMG2006", "30x30x30", 64, 4},
		{"NW", "large", 32, 4},
		{"Blackscholes", "native", 64, 4},
		{"Swaptions", "native", 32, 4},
		{"CG", "C", 32, 4},
		{"Fluidanimate", "native", 16, 4},
		{"SP", "C", 64, 4},
	}
	t := &table{header: []string{"case", "actual", "per-channel", "whole-run"}}
	agreeCh, agreeWhole := 0, 0
	for i, s := range subset {
		e, ok := workloads.ByName(s.name)
		if !ok {
			return "", fmt.Errorf("experiments: missing %s", s.name)
		}
		cfg := program.Config{Threads: s.threads, Nodes: s.nodes, Input: s.input, Seed: uint64(81000 + i*41)}
		dn, err := c.Detector.Detect(e.Builder, c.Machine, cfg)
		if err != nil {
			return "", err
		}
		// Whole-run vector: all samples against the busiest channel.
		ch := busiest(c, dn.Samples)
		vec := features.Extract(dn.Samples, ch, dn.Weight)
		whole := c.Tree.Predict(vec[:]) == 1

		ecfg := c.Ecfg
		ecfg.Seed = cfg.Seed + 211
		actual, _, err := optimize.ActualRMC(e.Builder, c.Machine, cfg, ecfg)
		if err != nil {
			return "", err
		}
		if dn.Detected == actual {
			agreeCh++
		}
		if whole == actual {
			agreeWhole++
		}
		t.add(fmt.Sprintf("%s/%s %s", s.name, s.input, cfg.Label()),
			fmt.Sprintf("%v", actual), fmt.Sprintf("%v", dn.Detected), fmt.Sprintf("%v", whole))
	}
	out := "Ablation — per-channel vs whole-run classification\n\n" + t.String() +
		fmt.Sprintf("\nagreement with ground truth: per-channel %d/%d, whole-run %d/%d\n",
			agreeCh, len(subset), agreeWhole, len(subset))
	return out, nil
}

// AblationPrefetcher quantifies the paper's motivating observation about
// hardware prefetching (Section II-B): a prefetcher converts demand DRAM
// hits into line-fill-buffer hits, shrinking the remote-access *count* a
// heuristic would rely on, while the bandwidth — and therefore the latency
// inflation under contention — is unchanged. The classifier's verdict must
// survive the prefetcher being switched on or off.
func (c *Context) AblationPrefetcher() (string, error) {
	cases := []struct {
		name, input string
		threads     int
	}{
		// SP streams one clean sequential pattern per thread: the stream
		// prefetcher locks on and hides most demand DRAM hits.
		{"SP", "C", 64},
		// Streamcluster's block is read at random: unprefetchable, counts
		// must not move.
		{"Streamcluster", "native", 64},
	}
	t := &table{header: []string{"case", "prefetch", "remote MEM samples", "LFB samples", "detected"}}
	for i, cs := range cases {
		e, ok := workloads.ByName(cs.name)
		if !ok {
			return "", fmt.Errorf("experiments: missing %s", cs.name)
		}
		for _, pf := range []bool{true, false} {
			cfg := program.Config{Threads: cs.threads, Nodes: 4, Input: cs.input, Seed: uint64(87000 + i*13)}
			p, err := e.Builder.New(c.Machine, cfg)
			if err != nil {
				return "", err
			}
			if !pf {
				cc := cache.DefaultConfig()
				cc.PrefetchDepth = -1
				p.CacheConfig = cc
			}
			col := pebs.NewCollector(core.DefaultCollectorConfig(), cfg.Seed+3)
			run := c.Ecfg
			run.Collector = col
			run.Seed = cfg.Seed + 5
			if _, err := p.Run(run); err != nil {
				return "", err
			}
			samples := col.Samples()
			var remoteMEM, lfb float64
			for _, s := range samples {
				if s.RemoteDRAM() {
					remoteMEM += col.Weight()
				}
				if s.Level == cache.LFB {
					lfb += col.Weight()
				}
			}
			detected := false
			for ch, vec := range features.ChannelVectors(c.Machine, samples, col.Weight(), c.Detector.MinSamples) {
				_ = ch
				v := vec
				if c.Tree.Predict(v[:]) == 1 {
					detected = true
				}
			}
			t.add(fmt.Sprintf("%s/%s", cs.name, cs.input),
				fmt.Sprintf("%v", pf), f0(remoteMEM), f0(lfb), fmt.Sprintf("%v", detected))
		}
	}
	return "Ablation — hardware prefetcher on/off\n" +
		"[prefetching shifts DRAM samples into the LFB, shrinking raw remote counts;\n detection must not flip]\n\n" + t.String(), nil
}

// AblationLatencyModel re-trains with different queueing-coefficient
// settings in the engine's latency model and reports separability.
func (c *Context) AblationLatencyModel() (string, error) {
	var reduced []micro.Instance
	set := micro.TrainingSet()
	for i := 0; i < len(set); i += 8 {
		reduced = append(reduced, set[i])
	}
	t := &table{header: []string{"queue coefficient", "CV accuracy"}}
	for _, k := range []float64{0.25, 0.5, 1, 2} {
		ecfg := c.Ecfg
		ecfg.QueueCoeff = k
		td, err := core.CollectTraining(c.Machine, ecfg, reduced)
		if err != nil {
			return "", err
		}
		cm, err := dtree.CrossValidate(td.Dataset, core.DefaultTreeConfig(), 6, 42)
		if err != nil {
			return "", err
		}
		t.add(fmt.Sprintf("%.2f", k), pct(cm.Accuracy()))
	}
	return "Ablation — latency-inflation model (engine QueueCoeff)\n" +
		"[weaker inflation shrinks the latency gap the classifier learns from]\n\n" + t.String(), nil
}
