package experiments

import (
	"fmt"
	"strings"

	"drbw/internal/llc"
	"drbw/internal/program"
)

// LLCStudy runs the future-work extension: train the shared-cache
// contention detector, cross-validate it, and analyze a thrashing and a
// fitting run.
func (c *Context) LLCStudy() (string, error) {
	det, err := llc.Train(c.Machine, c.Quick, 77)
	if err != nil {
		return "", err
	}
	cm, err := det.CrossValidate(5)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Extension (paper §IX) — shared-cache contention detection\n\n")
	fmt.Fprintf(&b, "training runs: %d socket examples, 5-fold CV accuracy %.1f%%\n\n",
		len(det.Dataset.Examples), 100*cm.Accuracy())
	b.WriteString("learned tree:\n")
	b.WriteString(det.Tree.String())

	cases := []struct {
		name    string
		ws      uint64
		threads int
		nodes   int
		expect  llc.Mode
	}{
		{"thrash: 8x550KB on one socket", 550 << 10, 8, 1, llc.Thrash},
		{"fit: 2x550KB per socket", 550 << 10, 8, 4, llc.Fit},
		{"fit: L2-resident sets", 24 << 10, 16, 2, llc.Fit},
	}
	b.WriteString("\nprobe runs:\n")
	for i, cs := range cases {
		res, err := det.Analyze(c.Machine, llc.Wset(cs.ws),
			program.Config{Threads: cs.threads, Nodes: cs.nodes, Input: "default", Seed: uint64(95000 + i)})
		if err != nil {
			return "", err
		}
		verdict := "fit"
		if res.Detected() {
			verdict = fmt.Sprintf("thrash on %v", res.Contended)
		}
		fmt.Fprintf(&b, "  %-32s -> %-18s (expected %s)\n", cs.name, verdict, cs.expect)
	}
	return b.String(), nil
}
