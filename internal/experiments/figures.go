package experiments

import (
	"fmt"
	"strings"

	"drbw/internal/chart"
	"drbw/internal/optimize"
	"drbw/internal/program"
	"drbw/internal/workloads"
)

// indent prefixes every line of s.
func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// Fig4 diagnoses the four case-study benchmarks at a contended
// configuration and renders their Contribution-Fraction distributions.
func (c *Context) Fig4() (string, error) {
	cases := []struct {
		name, input string
		threads     int
		paperTop    string
	}{
		{"AMG2006", "30x30x30", 64, "RAP_diag_j"},
		{"Streamcluster", "native", 64, "block"},
		{"LULESH", "large", 64, "m_* arrays + static data"},
		{"NW", "large", 64, "reference / input_itemsets"},
	}
	var b strings.Builder
	b.WriteString("Figure 4 — Contribution Fraction (CF) across data objects\n")
	for i, cs := range cases {
		e, ok := workloads.ByName(cs.name)
		if !ok {
			return "", fmt.Errorf("experiments: missing %s", cs.name)
		}
		cfg := program.Config{Threads: cs.threads, Nodes: 4, Input: cs.input, Seed: uint64(60000 + i*7)}
		dn, err := c.Detector.Detect(e.Builder, c.Machine, cfg)
		if err != nil {
			return "", err
		}
		rep := dn.Diagnose()
		fmt.Fprintf(&b, "\n(%c) %s %s %s — detected=%v  [paper top: %s]\n",
			'a'+i, cs.name, cs.input, cfg.Label(), dn.Detected, cs.paperTop)
		if len(rep.Overall) == 0 {
			b.WriteString("  (no contended samples)\n")
			continue
		}
		var bars []chart.Bar
		shown := 0
		for _, o := range rep.Overall {
			if shown >= 8 && o.CF < 0.03 {
				break
			}
			bars = append(bars, chart.Bar{Label: o.Object.Name, Value: 100 * o.CF})
			shown++
		}
		if rep.UnattributedCF > 0.005 {
			bars = append(bars, chart.Bar{Label: "<static/stack>", Value: 100 * rep.UnattributedCF})
		}
		b.WriteString(indent(chart.Render(bars, chart.Options{Width: 36, Format: "%.1f%%", Max: 100}), "  "))
	}
	return b.String(), nil
}

// speedupSweep measures a per-object transform vs whole-program interleave
// over configurations, one row per config, with per-phase columns when the
// benchmark has phases.
func (c *Context) speedupSweep(bench, input string, cfgs []program.Config, fix optimize.Transform, fixName string, perPhase bool) (string, map[string]float64, error) {
	e, ok := workloads.ByName(bench)
	if !ok {
		return "", nil, fmt.Errorf("experiments: unknown benchmark %s", bench)
	}
	header := []string{"config", fixName, "interleave"}
	if perPhase {
		header = []string{"config", "strategy", "init", "setup", "solve", "total"}
	}
	t := &table{header: header}
	best := map[string]float64{}
	var bars []chart.Bar
	for i, cfg := range cfgs {
		cc := cfg
		cc.Input = input
		cc.Seed = uint64(61000 + i*13)
		fixCmp, err := optimize.Measure(e.Builder, c.Machine, cc, c.Ecfg, fix)
		if err != nil {
			return "", nil, err
		}
		interCmp, err := optimize.Measure(e.Builder, c.Machine, cc, c.Ecfg, optimize.WholeProgram(optimize.Interleave))
		if err != nil {
			return "", nil, err
		}
		if s := fixCmp.Speedup(); s > best[fixName] {
			best[fixName] = s
		}
		if s := interCmp.Speedup(); s > best["interleave"] {
			best["interleave"] = s
		}
		if perPhase {
			t.add(append([]string{cc.Label(), fixName}, phaseCells(fixCmp)...)...)
			t.add(append([]string{cc.Label(), "interleave"}, phaseCells(interCmp)...)...)
		} else {
			t.add(cc.Label(), spd(fixCmp.Speedup()), spd(interCmp.Speedup()))
			bars = append(bars,
				chart.Bar{Label: cc.Label(), Value: fixCmp.Speedup(), Group: fixName},
				chart.Bar{Label: cc.Label(), Value: interCmp.Speedup(), Group: "interleave"})
		}
	}
	out := t.String()
	if len(bars) > 0 {
		out += "\n" + chart.Render(bars, chart.Options{Width: 36, Format: "%.2fx"})
	}
	return out, best, nil
}

func phaseCells(cmp optimize.Comparison) []string {
	var out []string
	for _, s := range cmp.PhaseSpeedups {
		out = append(out, spd(s))
	}
	for len(out) < 3 {
		out = append(out, "-")
	}
	out = append(out, spd(cmp.Speedup()))
	return out
}

func (c *Context) figConfigs() []program.Config {
	if c.Quick {
		return []program.Config{
			{Threads: 16, Nodes: 4}, {Threads: 64, Nodes: 4}, {Threads: 32, Nodes: 2},
		}
	}
	return program.StandardConfigs()
}

// Fig5 compares co-locating AMG's four blamed arrays against interleaving,
// per phase.
func (c *Context) Fig5() (string, error) {
	body, _, err := c.speedupSweep("AMG2006", "30x30x30", c.figConfigs(),
		optimize.Objects(optimize.Colocate, "RAP_diag_j", "diag_j", "diag_data", "A_diag_j"),
		"co-locate", true)
	if err != nil {
		return "", err
	}
	return "Figure 5 — AMG2006 speedups per phase, co-locate (4 arrays) vs interleave\n" +
		"[paper: solver ~1.5x avg; interleave hurts init/setup, co-locate does not]\n\n" + body, nil
}

// Fig6 sweeps IRSmk over medium and large meshes.
func (c *Context) Fig6() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 6 — IRSmk speedups, co-locate (29 arrays) vs interleave\n")
	b.WriteString("[paper: up to 6.2x; co-locate beats interleave at fewer nodes]\n")
	for _, input := range []string{"medium", "large"} {
		body, best, err := c.speedupSweep("IRSmk", input, c.figConfigs(),
			optimize.WholeProgram(optimize.Colocate), "co-locate", false)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\n%s mesh (max co-locate %.2fx, max interleave %.2fx):\n%s",
			input, best["co-locate"], best["interleave"], body)
	}
	return b.String(), nil
}

// Fig7 sweeps streamcluster with replication of block/point.p.
func (c *Context) Fig7() (string, error) {
	var b strings.Builder
	b.WriteString("Figure 7 — Streamcluster speedups, replicate (block, point.p) vs interleave\n")
	b.WriteString("[paper: similar at 3-4 nodes; replicate wins at fewer nodes/threads]\n")
	for _, input := range []string{"simLarge", "native"} {
		body, _, err := c.speedupSweep("Streamcluster", input, c.figConfigs(),
			optimize.Objects(optimize.Replicate, "block", "point.p"), "replicate", false)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\n%s:\n%s", input, body)
	}
	return b.String(), nil
}

// Fig8 sweeps LULESH with co-location of its heap arrays.
func (c *Context) Fig8() (string, error) {
	body, _, err := c.speedupSweep("LULESH", "large", c.figConfigs(),
		optimize.WholeProgram(optimize.Colocate), "co-locate", false)
	if err != nil {
		return "", err
	}
	return "Figure 8 — LULESH speedups, co-locate vs interleave\n" +
		"[paper: co-locate > interleave; no speedup at T16-N4 (classified good)]\n\n" + body, nil
}

// SPStudy measures the interleave-only fix on SP (Section VIII-F).
func (c *Context) SPStudy() (string, error) {
	var b strings.Builder
	b.WriteString("SP case study — static data, whole-program interleave only\n")
	b.WriteString("[paper: up to 1.75x at >8 threads/node with 64 threads]\n\n")
	t := &table{header: []string{"class", "config", "interleave"}}
	for i, cls := range []string{"B", "C"} {
		for _, cfg := range c.figConfigs() {
			cc := cfg
			cc.Input = cls
			cc.Seed = uint64(64000 + i*29)
			e, _ := workloads.ByName("SP")
			cmp, err := optimize.Measure(e.Builder, c.Machine, cc, c.Ecfg,
				optimize.WholeProgram(optimize.Interleave))
			if err != nil {
				return "", err
			}
			t.add(cls, cc.Label(), spd(cmp.Speedup()))
		}
	}
	b.WriteString(t.String())
	b.WriteString("\nnote: SP's arrays are static; the profiler attributes their samples to\n<unattributed>, and interleaving the heap cannot move them. The speedups\nabove interleave the static region itself (numactl --interleave does).\n")
	return b.String(), nil
}

// BlackscholesStudy is the negative control (Section VIII-G).
func (c *Context) BlackscholesStudy() (string, error) {
	e, _ := workloads.ByName("Blackscholes")
	var b strings.Builder
	b.WriteString("Blackscholes case study — negative control\n")
	b.WriteString("[paper: classified good; co-locating `buffer` gains < 1%]\n\n")
	t := &table{header: []string{"config", "detected", "co-locate buffer", "interleave"}}
	for i, cfg := range c.figConfigs() {
		cc := cfg
		cc.Input = "native"
		cc.Seed = uint64(65000 + i*31)
		dn, err := c.Detector.Detect(e.Builder, c.Machine, cc)
		if err != nil {
			return "", err
		}
		colo, err := optimize.Measure(e.Builder, c.Machine, cc, c.Ecfg,
			optimize.Objects(optimize.Colocate, "buffer"))
		if err != nil {
			return "", err
		}
		inter, err := optimize.Measure(e.Builder, c.Machine, cc, c.Ecfg,
			optimize.WholeProgram(optimize.Interleave))
		if err != nil {
			return "", err
		}
		t.add(cc.Label(), fmt.Sprintf("%v", dn.Detected), spd(colo.Speedup()), spd(inter.Speedup()))
	}
	b.WriteString(t.String())
	return b.String(), nil
}
