// Package optimize implements the placement fixes the paper applies to the
// data objects DR-BW's diagnoser blames, and the speedup methodology used
// throughout the evaluation:
//
//   - Interleave — spread an object's (or the whole program's) pages
//     round-robin over all nodes; the coarse baseline (numactl --interleave).
//     Interleaving the entire program is also the paper's ground-truth
//     probe: a benchmark whose interleaved run is ≥ 10% faster is considered
//     to actually suffer remote bandwidth contention (Section VII-B).
//   - Colocate — re-place an object so each thread's share sits on the
//     thread's own node (the data-computation co-location fix applied to
//     AMG2006, IRSmk, LULESH and NW).
//   - Replicate — duplicate a read-only object on every node the program
//     uses (the streamcluster fix).
package optimize

import (
	"fmt"
	"runtime"

	"drbw/internal/alloc"
	"drbw/internal/engine"
	"drbw/internal/memsim"
	"drbw/internal/program"
	"drbw/internal/topology"
)

// Strategy is one placement fix.
type Strategy int

// The paper's placement strategies.
const (
	Interleave Strategy = iota
	Colocate
	Replicate
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Interleave:
		return "interleave"
	case Colocate:
		return "co-locate"
	case Replicate:
		return "replicate"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Apply re-places the named objects of p according to the strategy. An
// empty objects list means the whole program: every live heap object, and —
// for Interleave, which models `numactl --interleave=all` — every static
// region as well.
func Apply(p *program.Program, s Strategy, objects []alloc.ObjectID) error {
	if len(objects) == 0 {
		if s == Interleave {
			// numactl affects the entire address space, static data
			// included; re-place every mapped region directly.
			for _, base := range p.Space.RegionBases() {
				if err := p.Space.SetPolicy(base, memsim.InterleaveAll()); err != nil {
					return fmt.Errorf("optimize: interleave region %#x: %w", base, err)
				}
			}
			return nil
		}
		for _, o := range p.Heap.Live() {
			objects = append(objects, o.ID)
		}
	}
	nodes := p.NodesUsed()
	if len(nodes) == 0 {
		return fmt.Errorf("optimize: program has no bound threads")
	}
	for _, id := range objects {
		var err error
		switch s {
		case Interleave:
			err = p.Heap.SetPolicy(id, memsim.InterleaveAll())
		case Colocate:
			// Fresh first-touch state, then touch in the blocked partition
			// the threads use, so each share is local to its accessors.
			if err = p.Heap.SetPolicy(id, memsim.FirstTouchPolicy()); err == nil {
				p.Heap.TouchPartitioned(id, nodes)
			}
		case Replicate:
			err = p.Heap.SetPolicy(id, memsim.Policy{Kind: memsim.Replicate, Nodes: nodes})
		default:
			err = fmt.Errorf("unknown strategy %d", int(s))
		}
		if err != nil {
			return fmt.Errorf("optimize: %s on object %d: %w", s, id, err)
		}
	}
	return nil
}

// ApplyByName is Apply with object names (the form the diagnoser reports).
func ApplyByName(p *program.Program, s Strategy, names ...string) error {
	var ids []alloc.ObjectID
	for _, n := range names {
		o, ok := p.Object(n)
		if !ok {
			return fmt.Errorf("optimize: no live object named %q", n)
		}
		ids = append(ids, o.ID)
	}
	return Apply(p, s, ids)
}

// Comparison is the outcome of one base-vs-optimized measurement.
type Comparison struct {
	BaseCycles float64
	OptCycles  float64
	// PhaseSpeedups reports per-phase speedups when phase counts match.
	PhaseSpeedups []float64
	// Remote access and latency reductions, as fractions (0.878 = -87.8%).
	RemoteReduction  float64
	LatencyReduction float64
}

// Speedup is BaseCycles/OptCycles (>1 means the fix helped).
func (c Comparison) Speedup() float64 {
	if c.OptCycles == 0 {
		return 0
	}
	return c.BaseCycles / c.OptCycles
}

// Transform mutates a freshly built program before its optimized run.
type Transform func(*program.Program) error

// WholeProgram returns a Transform applying s to every live object.
func WholeProgram(s Strategy) Transform {
	return func(p *program.Program) error { return Apply(p, s, nil) }
}

// Objects returns a Transform applying s to the named objects.
func Objects(s Strategy, names ...string) Transform {
	return func(p *program.Program) error { return ApplyByName(p, s, names...) }
}

// Compare builds the Comparison between a base and an optimized run.
func Compare(baseRes, optRes *engine.Result) Comparison {
	c := Comparison{BaseCycles: baseRes.Cycles, OptCycles: optRes.Cycles}
	if len(baseRes.Phases) == len(optRes.Phases) {
		for i := range baseRes.Phases {
			if optRes.Phases[i].Cycles > 0 {
				c.PhaseSpeedups = append(c.PhaseSpeedups, baseRes.Phases[i].Cycles/optRes.Phases[i].Cycles)
			} else {
				c.PhaseSpeedups = append(c.PhaseSpeedups, 1)
			}
		}
	}
	if br := baseRes.RemoteDRAMAccesses(); br > 0 {
		c.RemoteReduction = 1 - optRes.RemoteDRAMAccesses()/br
	}
	if bl := baseRes.AvgDRAMLatency(); bl > 0 {
		c.LatencyReduction = 1 - optRes.AvgDRAMLatency()/bl
	}
	return c
}

// MeasureBase builds the program unmodified and runs it once: the shared
// baseline every optimized variant of the same case compares against.
func MeasureBase(b program.Builder, m *topology.Machine, cfg program.Config, ecfg engine.Config) (*engine.Result, error) {
	base, err := b.New(m, cfg)
	if err != nil {
		return nil, err
	}
	return base.Run(ecfg)
}

// measureOpt builds a fresh program, applies the transform and runs it.
func measureOpt(b program.Builder, m *topology.Machine, cfg program.Config, ecfg engine.Config, t Transform) (*engine.Result, error) {
	opt, err := b.New(m, cfg)
	if err != nil {
		return nil, err
	}
	if err := t(opt); err != nil {
		return nil, err
	}
	return opt.Run(ecfg)
}

// MeasureAgainst runs the transform's optimized variant and compares it to
// an already-measured base run of the same case and engine configuration.
func MeasureAgainst(baseRes *engine.Result, b program.Builder, m *topology.Machine, cfg program.Config, ecfg engine.Config, t Transform) (Comparison, error) {
	optRes, err := measureOpt(b, m, cfg, ecfg, t)
	if err != nil {
		return Comparison{}, err
	}
	return Compare(baseRes, optRes), nil
}

// MeasureAll measures every transform against one shared base run: the
// unmodified program is simulated exactly once, then each transform's
// variant once — len(ts)+1 runs instead of Measure's 2×len(ts). The base
// result is returned for callers that keep comparing against it.
func MeasureAll(b program.Builder, m *topology.Machine, cfg program.Config, ecfg engine.Config, ts []Transform) (*engine.Result, []Comparison, error) {
	baseRes, err := MeasureBase(b, m, cfg, ecfg)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Comparison, len(ts))
	for i, t := range ts {
		out[i], err = MeasureAgainst(baseRes, b, m, cfg, ecfg, t)
		if err != nil {
			return nil, nil, err
		}
	}
	return baseRes, out, nil
}

// Measure builds the program twice — once unmodified, once with the
// transform applied — runs both with ecfg, and reports the comparison.
// The two runs are independent seeded simulations, so when ecfg permits
// parallelism (Workers != 1) and the host has spare cores they execute
// concurrently; results are bit-identical either way. Callers measuring
// several transforms of one case should use MeasureAll, which shares a
// single base run.
func Measure(b program.Builder, m *topology.Machine, cfg program.Config, ecfg engine.Config, t Transform) (Comparison, error) {
	if ecfg.Workers == 1 || runtime.GOMAXPROCS(0) < 2 {
		baseRes, err := MeasureBase(b, m, cfg, ecfg)
		if err != nil {
			return Comparison{}, err
		}
		return MeasureAgainst(baseRes, b, m, cfg, ecfg, t)
	}
	var baseRes, optRes *engine.Result
	var baseErr, optErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		baseRes, baseErr = MeasureBase(b, m, cfg, ecfg)
	}()
	optRes, optErr = measureOpt(b, m, cfg, ecfg, t)
	<-done
	if baseErr != nil {
		return Comparison{}, baseErr
	}
	if optErr != nil {
		return Comparison{}, optErr
	}
	return Compare(baseRes, optRes), nil
}

// GroundTruthThreshold is the paper's criterion: a case is actually
// contended when whole-program interleaving speeds it up by at least 10%.
const GroundTruthThreshold = 1.10

// ActualRMC runs the paper's ground-truth probe for one case.
func ActualRMC(b program.Builder, m *topology.Machine, cfg program.Config, ecfg engine.Config) (bool, Comparison, error) {
	c, err := Measure(b, m, cfg, ecfg, WholeProgram(Interleave))
	if err != nil {
		return false, Comparison{}, err
	}
	return c.Speedup() >= GroundTruthThreshold, c, nil
}
