package optimize

import (
	"testing"

	"drbw/internal/engine"
	"drbw/internal/memsim"
	"drbw/internal/micro"
	"drbw/internal/program"
	"drbw/internal/topology"
)

func ecfg() engine.Config {
	return engine.Config{Window: 2048, Warmup: 512, ReservoirSize: 256, Seed: 21}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		Interleave: "interleave", Colocate: "co-locate", Replicate: "replicate",
		Strategy(9): "Strategy(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d = %q, want %q", int(s), got, want)
		}
	}
}

func TestApplyInterleaveMovesPages(t *testing.T) {
	m := topology.XeonE5_4650()
	p, err := micro.Sumv(micro.BigCentralized, 0).New(m, program.Config{Threads: 16, Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(p, Interleave, nil); err != nil {
		t.Fatal(err)
	}
	hist := p.Space.ResidencyHistogram()
	if len(hist) < 4 {
		t.Fatalf("interleave left pages on %d nodes: %v", len(hist), hist)
	}
	for n, c := range hist {
		if c == 0 {
			t.Errorf("node %d holds no pages after interleave", n)
		}
	}
}

func TestApplyColocateMatchesThreads(t *testing.T) {
	m := topology.XeonE5_4650()
	p, err := micro.Sumv(micro.BigCentralized, 0).New(m, program.Config{Threads: 32, Nodes: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyByName(p, Colocate, "vec_a"); err != nil {
		t.Fatal(err)
	}
	o, _ := p.Object("vec_a")
	// First page should be on node 0 (threads 0-7), last page on node 3.
	if n := p.Space.NodeOf(o.Base); n != 0 {
		t.Errorf("first page on node %d", n)
	}
	if n := p.Space.NodeOf(o.Base + o.Size - 1); n != 3 {
		t.Errorf("last page on node %d", n)
	}
}

func TestApplyReplicate(t *testing.T) {
	m := topology.XeonE5_4650()
	p, err := micro.Sumv(micro.BigCentralized, 0).New(m, program.Config{Threads: 16, Nodes: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyByName(p, Replicate, "vec_a"); err != nil {
		t.Fatal(err)
	}
	o, _ := p.Object("vec_a")
	pol, ok := p.Space.PolicyOf(o.Base)
	if !ok || pol.Kind != memsim.Replicate {
		t.Fatalf("policy after replicate: %+v", pol)
	}
	// Readers on both used nodes get local copies.
	if home := p.Space.HomeFor(o.Base, 1); home != 1 {
		t.Errorf("node-1 reader served from node %d", home)
	}
}

func TestApplyByNameUnknownObject(t *testing.T) {
	m := topology.XeonE5_4650()
	p, _ := micro.Sumv(micro.BigCentralized, 0).New(m, program.Config{Threads: 16, Nodes: 2, Seed: 4})
	if err := ApplyByName(p, Colocate, "no_such_array"); err == nil {
		t.Error("unknown object accepted")
	}
}

func TestMeasureContendedCaseSpeedsUp(t *testing.T) {
	m := topology.XeonE5_4650()
	cfg := program.Config{Threads: 32, Nodes: 4, Seed: 5}
	b := micro.Sumv(micro.BigCentralized, 0)

	inter, err := Measure(b, m, cfg, ecfg(), WholeProgram(Interleave))
	if err != nil {
		t.Fatal(err)
	}
	if inter.Speedup() < 1.3 {
		t.Errorf("interleave speedup %.2f on contended case, want > 1.3", inter.Speedup())
	}
	colo, err := Measure(b, m, cfg, ecfg(), WholeProgram(Colocate))
	if err != nil {
		t.Fatal(err)
	}
	if colo.Speedup() < inter.Speedup() {
		t.Errorf("co-locate (%.2f) should beat interleave (%.2f) on blocked scans",
			colo.Speedup(), inter.Speedup())
	}
	if colo.RemoteReduction < 0.5 {
		t.Errorf("co-locate removed only %.0f%% of remote accesses", 100*colo.RemoteReduction)
	}
	if colo.LatencyReduction <= 0 {
		t.Errorf("co-locate latency reduction %.2f, want positive", colo.LatencyReduction)
	}
}

func TestMeasureFriendlyCaseUnchanged(t *testing.T) {
	m := topology.XeonE5_4650()
	cfg := program.Config{Threads: 16, Nodes: 4, Seed: 6}
	b := micro.Sumv(micro.SmallShared, 0)
	c, err := Measure(b, m, cfg, ecfg(), WholeProgram(Interleave))
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Speedup(); s > 1.05 || s < 0.9 {
		t.Errorf("interleave on cache-resident run changed time by %.2fx", s)
	}
}

func TestActualRMCGroundTruth(t *testing.T) {
	m := topology.XeonE5_4650()
	rmc, _, err := ActualRMC(micro.Sumv(micro.BigCentralized, 0), m,
		program.Config{Threads: 32, Nodes: 4, Seed: 7}, ecfg())
	if err != nil {
		t.Fatal(err)
	}
	if !rmc {
		t.Error("centralized T32-N4 should be ground-truth rmc")
	}
	good, _, err := ActualRMC(micro.Sumv(micro.BigColocated, 0), m,
		program.Config{Threads: 16, Nodes: 4, Seed: 8}, ecfg())
	if err != nil {
		t.Fatal(err)
	}
	if good {
		t.Error("colocated run misdetected as rmc by ground truth")
	}
}

func TestPhaseSpeedupsPopulated(t *testing.T) {
	m := topology.XeonE5_4650()
	c, err := Measure(micro.Sumv(micro.BigCentralized, 0), m,
		program.Config{Threads: 16, Nodes: 2, Seed: 9}, ecfg(), WholeProgram(Interleave))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PhaseSpeedups) != 1 {
		t.Fatalf("phase speedups = %v", c.PhaseSpeedups)
	}
	if c.PhaseSpeedups[0] <= 0 {
		t.Error("phase speedup must be positive")
	}
}
