package optimize

import (
	"reflect"
	"testing"

	"drbw/internal/engine"
	"drbw/internal/memsim"
	"drbw/internal/micro"
	"drbw/internal/program"
	"drbw/internal/topology"
)

func ecfg() engine.Config {
	return engine.Config{Window: 2048, Warmup: 512, ReservoirSize: 256, Seed: 21}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		Interleave: "interleave", Colocate: "co-locate", Replicate: "replicate",
		Strategy(9): "Strategy(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d = %q, want %q", int(s), got, want)
		}
	}
}

func TestApplyInterleaveMovesPages(t *testing.T) {
	m := topology.XeonE5_4650()
	p, err := micro.Sumv(micro.BigCentralized, 0).New(m, program.Config{Threads: 16, Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(p, Interleave, nil); err != nil {
		t.Fatal(err)
	}
	hist := p.Space.ResidencyHistogram()
	if len(hist) < 4 {
		t.Fatalf("interleave left pages on %d nodes: %v", len(hist), hist)
	}
	for n, c := range hist {
		if c == 0 {
			t.Errorf("node %d holds no pages after interleave", n)
		}
	}
}

func TestApplyColocateMatchesThreads(t *testing.T) {
	m := topology.XeonE5_4650()
	p, err := micro.Sumv(micro.BigCentralized, 0).New(m, program.Config{Threads: 32, Nodes: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyByName(p, Colocate, "vec_a"); err != nil {
		t.Fatal(err)
	}
	o, _ := p.Object("vec_a")
	// First page should be on node 0 (threads 0-7), last page on node 3.
	if n := p.Space.NodeOf(o.Base); n != 0 {
		t.Errorf("first page on node %d", n)
	}
	if n := p.Space.NodeOf(o.Base + o.Size - 1); n != 3 {
		t.Errorf("last page on node %d", n)
	}
}

func TestApplyReplicate(t *testing.T) {
	m := topology.XeonE5_4650()
	p, err := micro.Sumv(micro.BigCentralized, 0).New(m, program.Config{Threads: 16, Nodes: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyByName(p, Replicate, "vec_a"); err != nil {
		t.Fatal(err)
	}
	o, _ := p.Object("vec_a")
	pol, ok := p.Space.PolicyOf(o.Base)
	if !ok || pol.Kind != memsim.Replicate {
		t.Fatalf("policy after replicate: %+v", pol)
	}
	// Readers on both used nodes get local copies.
	if home := p.Space.HomeFor(o.Base, 1); home != 1 {
		t.Errorf("node-1 reader served from node %d", home)
	}
}

func TestApplyByNameUnknownObject(t *testing.T) {
	m := topology.XeonE5_4650()
	p, _ := micro.Sumv(micro.BigCentralized, 0).New(m, program.Config{Threads: 16, Nodes: 2, Seed: 4})
	if err := ApplyByName(p, Colocate, "no_such_array"); err == nil {
		t.Error("unknown object accepted")
	}
}

func TestMeasureContendedCaseSpeedsUp(t *testing.T) {
	m := topology.XeonE5_4650()
	cfg := program.Config{Threads: 32, Nodes: 4, Seed: 5}
	b := micro.Sumv(micro.BigCentralized, 0)

	inter, err := Measure(b, m, cfg, ecfg(), WholeProgram(Interleave))
	if err != nil {
		t.Fatal(err)
	}
	if inter.Speedup() < 1.3 {
		t.Errorf("interleave speedup %.2f on contended case, want > 1.3", inter.Speedup())
	}
	colo, err := Measure(b, m, cfg, ecfg(), WholeProgram(Colocate))
	if err != nil {
		t.Fatal(err)
	}
	if colo.Speedup() < inter.Speedup() {
		t.Errorf("co-locate (%.2f) should beat interleave (%.2f) on blocked scans",
			colo.Speedup(), inter.Speedup())
	}
	if colo.RemoteReduction < 0.5 {
		t.Errorf("co-locate removed only %.0f%% of remote accesses", 100*colo.RemoteReduction)
	}
	if colo.LatencyReduction <= 0 {
		t.Errorf("co-locate latency reduction %.2f, want positive", colo.LatencyReduction)
	}
}

func TestMeasureFriendlyCaseUnchanged(t *testing.T) {
	m := topology.XeonE5_4650()
	cfg := program.Config{Threads: 16, Nodes: 4, Seed: 6}
	b := micro.Sumv(micro.SmallShared, 0)
	c, err := Measure(b, m, cfg, ecfg(), WholeProgram(Interleave))
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Speedup(); s > 1.05 || s < 0.9 {
		t.Errorf("interleave on cache-resident run changed time by %.2fx", s)
	}
}

func TestActualRMCGroundTruth(t *testing.T) {
	m := topology.XeonE5_4650()
	rmc, _, err := ActualRMC(micro.Sumv(micro.BigCentralized, 0), m,
		program.Config{Threads: 32, Nodes: 4, Seed: 7}, ecfg())
	if err != nil {
		t.Fatal(err)
	}
	if !rmc {
		t.Error("centralized T32-N4 should be ground-truth rmc")
	}
	good, _, err := ActualRMC(micro.Sumv(micro.BigColocated, 0), m,
		program.Config{Threads: 16, Nodes: 4, Seed: 8}, ecfg())
	if err != nil {
		t.Fatal(err)
	}
	if good {
		t.Error("colocated run misdetected as rmc by ground truth")
	}
}

func TestMeasureAllSharesBaseline(t *testing.T) {
	m := topology.XeonE5_4650()
	cfg := program.Config{Threads: 32, Nodes: 4, Seed: 10}
	b := micro.Sumv(micro.BigCentralized, 0)
	ts := []Transform{WholeProgram(Interleave), Objects(Colocate, "vec_a")}

	baseRes, all, err := MeasureAll(b, m, cfg, ecfg(), ts)
	if err != nil {
		t.Fatal(err)
	}
	if baseRes == nil || baseRes.Cycles <= 0 {
		t.Fatal("MeasureAll returned no base run")
	}
	if len(all) != len(ts) {
		t.Fatalf("MeasureAll returned %d comparisons for %d transforms", len(all), len(ts))
	}
	// The shared-baseline path must reproduce per-transform Measure exactly.
	serial := ecfg()
	serial.Workers = 1
	for i, tr := range ts {
		want, err := Measure(b, m, cfg, serial, tr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(all[i], want) {
			t.Errorf("transform %d: MeasureAll %+v != Measure %+v", i, all[i], want)
		}
		if all[i].BaseCycles != baseRes.Cycles {
			t.Errorf("transform %d compared against cycles %.0f, base run has %.0f", i, all[i].BaseCycles, baseRes.Cycles)
		}
	}
}

func TestMeasureConcurrentMatchesSerial(t *testing.T) {
	m := topology.XeonE5_4650()
	cfg := program.Config{Threads: 32, Nodes: 4, Seed: 11}
	b := micro.Dotv(micro.BigCentralized, 0)
	serial := ecfg()
	serial.Workers = 1
	concurrent := ecfg() // Workers 0: base and optimized runs overlap
	want, err := Measure(b, m, cfg, serial, WholeProgram(Colocate))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Measure(b, m, cfg, concurrent, WholeProgram(Colocate))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("concurrent Measure %+v != serial %+v", got, want)
	}
}

// TestActualRMCKnownCases pins the ground-truth probe on one known-contended
// and one known-clean micro workload, including the comparison it reports.
func TestActualRMCKnownCases(t *testing.T) {
	m := topology.XeonE5_4650()
	rmc, comp, err := ActualRMC(micro.Dotv(micro.BigCentralized, 0), m,
		program.Config{Threads: 32, Nodes: 4, Seed: 12}, ecfg())
	if err != nil {
		t.Fatal(err)
	}
	if !rmc {
		t.Error("centralized dotv T32-N4 should be ground-truth rmc")
	}
	if comp.Speedup() < GroundTruthThreshold {
		t.Errorf("contended probe speedup %.2f below the %.2f threshold", comp.Speedup(), GroundTruthThreshold)
	}
	if comp.RemoteReduction <= 0 {
		t.Errorf("interleave on a centralized run should cut remote accesses, got %.2f", comp.RemoteReduction)
	}

	clean, comp, err := ActualRMC(micro.Sumv(micro.SmallShared, 0), m,
		program.Config{Threads: 16, Nodes: 4, Seed: 13}, ecfg())
	if err != nil {
		t.Fatal(err)
	}
	if clean {
		t.Error("cache-resident sumv misdetected as rmc by ground truth")
	}
	if s := comp.Speedup(); s >= GroundTruthThreshold {
		t.Errorf("clean probe speedup %.2f crossed the threshold", s)
	}
}

func TestPhaseSpeedupsPopulated(t *testing.T) {
	m := topology.XeonE5_4650()
	c, err := Measure(micro.Sumv(micro.BigCentralized, 0), m,
		program.Config{Threads: 16, Nodes: 2, Seed: 9}, ecfg(), WholeProgram(Interleave))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PhaseSpeedups) != 1 {
		t.Fatalf("phase speedups = %v", c.PhaseSpeedups)
	}
	if c.PhaseSpeedups[0] <= 0 {
		t.Error("phase speedup must be positive")
	}
}
