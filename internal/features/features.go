// Package features turns batches of PEBS samples into the statistical
// feature vectors DR-BW's classifier consumes.
//
// The paper derives a large candidate list of per-batch statistics
// (identification, location and latency categories — Section V-B), then
// keeps the 13 features of Table I that differ significantly between the
// "good" and "rmc" modes of the training mini-programs. This package
// implements both the selected Table I vector (Extract) and the full
// candidate list plus the selection filter (Candidates, SelectRelevant) so
// the selection experiment is reproducible.
//
// A feature vector always describes one directed remote channel S→T,
// evaluated against the batch of samples issued by socket S: remote-DRAM
// features count the samples that travelled S→T, local-DRAM features count
// S's local samples, and the latency-ratio features summarize S's whole
// batch. This is the paper's per-channel detection granularity.
package features

import (
	"fmt"
	"math"
	"sort"

	"drbw/internal/cache"
	"drbw/internal/pebs"
	"drbw/internal/topology"
	"drbw/internal/xsum"
)

// Label is the training/detection class of one run or channel.
type Label int

// The two modes the paper defines for every run.
const (
	Good Label = iota // no remote memory bandwidth contention
	RMC               // remote memory bandwidth contention
)

// String names the label like the paper does.
func (l Label) String() string {
	switch l {
	case Good:
		return "good"
	case RMC:
		return "rmc"
	default:
		return fmt.Sprintf("Label(%d)", int(l))
	}
}

// NumFeatures is the size of the selected vector (Table I).
const NumFeatures = 13

// Vector is one Table I feature vector.
type Vector [NumFeatures]float64

// Names describes each selected feature, in Table I order.
var Names = [NumFeatures]string{
	"ratio of latency above 1000",
	"ratio of latency above 500",
	"ratio of latency above 200",
	"ratio of latency above 100",
	"ratio of latency above 50",
	"num remote dram access samples",
	"avg remote dram access latency",
	"num local dram access samples",
	"avg local dram access latency",
	"total num memory access samples",
	"avg memory access latency",
	"num line fill buffer access samples",
	"line fill buffer access latency",
}

// latencyThresholds backs features 1-5.
var latencyThresholds = [5]float64{1000, 500, 200, 100, 50}

// Extract computes the Table I vector for remote channel ch from the full
// sample set of a run. weight scales sample counts back to true totals when
// the collector used a reservoir (pebs.Collector.Weight).
//
// Latency sums run through xsum, like every analysis-path accumulator, so
// the vector is a function of the sample multiset alone — the same bits as
// the streaming Accumulator regardless of how either side chunks the trace.
func Extract(samples []pebs.Sample, ch topology.Channel, weight float64) Vector {
	if weight <= 0 {
		weight = 1
	}
	var v Vector
	var batch, remote, local, lfb float64
	var latSum, remoteLat, localLat, lfbLat xsum.Sum
	var above [5]float64
	for _, s := range samples {
		if s.SrcNode != ch.Src {
			continue
		}
		batch++
		latSum.Add(s.Latency)
		for i, th := range latencyThresholds {
			if s.Latency > th {
				above[i]++
			}
		}
		switch {
		case s.Level == cache.MEM && s.HomeNode == ch.Dst && !ch.Local():
			remote++
			remoteLat.Add(s.Latency)
		case s.Level == cache.MEM && s.HomeNode == s.SrcNode:
			local++
			localLat.Add(s.Latency)
		case s.Level == cache.LFB:
			lfb++
			lfbLat.Add(s.Latency)
		}
	}
	if batch == 0 {
		return v
	}
	for i := range above {
		v[i] = above[i] / batch
	}
	v[5] = remote * weight
	if remote > 0 {
		v[6] = remoteLat.Value() / remote
	}
	v[7] = local * weight
	if local > 0 {
		v[8] = localLat.Value() / local
	}
	v[9] = batch * weight
	v[10] = latSum.Value() / batch
	v[11] = lfb * weight
	if lfb > 0 {
		v[12] = lfbLat.Value() / lfb
	}
	return v
}

// ChannelVectors computes one vector per remote channel that has at least
// minSamples samples, over the whole machine.
//
// It is a single dense pass over the samples: every Table I statistic is
// either per-source-socket (shared by all channels of that socket) or per
// directed channel, so one walk accumulates both and the vectors assemble at
// the end — O(samples + channels) instead of Extract's O(channels × samples).
// The output is bit-identical to calling Extract per channel: each
// accumulator adds the same floats in the same (global sample) order.
func ChannelVectors(m *topology.Machine, samples []pebs.Sample, weight float64, minSamples int) map[topology.Channel]Vector {
	acc := NewAccumulator(m)
	acc.Add(samples)
	return acc.Vectors(weight, minSamples)
}

// Accumulator builds Table I channel vectors incrementally — the streaming
// form of ChannelVectors. Feed it sample chunks with Add (a block iterator's
// output, or one whole slice) and finish with Vectors. Counts are int64
// (converted to float64 exactly at assembly time) and latency sums are
// exact xsum accumulators, so the
// result is bit-identical to a single ChannelVectors call over the same
// sample multiset — chunking, ordering and Merge trees do not matter —
// while peak memory stays O(nodes²) regardless of trace length. An
// Accumulator is not safe for concurrent use; Reset recycles one between
// traces without reallocating.
type Accumulator struct {
	m  *topology.Machine
	nn int
	// Per-source-socket aggregates.
	batch    []int64
	latSum   []xsum.Sum
	above    [][5]int64
	local    []int64
	localLat []xsum.Sum
	lfb      []int64
	lfbLat   []xsum.Sum
	// Per directed channel: remote-DRAM terms and the minSamples gate (the
	// gate mirrors pebs.Associate, which files MEM/LFB samples under their
	// src→home channel).
	remote    []int64
	remoteLat []xsum.Sum
	assoc     []int
}

// NewAccumulator returns an empty accumulator for machine m.
func NewAccumulator(m *topology.Machine) *Accumulator {
	nn := m.Nodes()
	nch := m.NumChannels()
	return &Accumulator{
		m: m, nn: nn,
		batch:  make([]int64, nn),
		latSum: make([]xsum.Sum, nn),
		above:  make([][5]int64, nn),
		local:  make([]int64, nn), localLat: make([]xsum.Sum, nn),
		lfb: make([]int64, nn), lfbLat: make([]xsum.Sum, nn),
		remote: make([]int64, nch), remoteLat: make([]xsum.Sum, nch),
		assoc: make([]int, nch),
	}
}

// Reset clears the running sums so the accumulator can take the next trace.
func (a *Accumulator) Reset() {
	for i := range a.batch {
		a.batch[i] = 0
		a.latSum[i].Reset()
		a.above[i] = [5]int64{}
		a.local[i], a.lfb[i] = 0, 0
		a.localLat[i].Reset()
		a.lfbLat[i].Reset()
	}
	for i := range a.remote {
		a.remote[i], a.assoc[i] = 0, 0
		a.remoteLat[i].Reset()
	}
}

// Merge folds other's running statistics into a, exactly as if other's
// samples had been Added to a directly — the accumulator half of the
// shard-parallel pipeline. Summation order is immaterial by construction:
// counts are exact integer arithmetic and latency mass merges through
// xsum's exact limb addition, so any merge tree over any partition of a
// trace reproduces the serial accumulator bit for bit. other is logically
// unchanged. Both accumulators must describe the same machine shape.
func (a *Accumulator) Merge(other *Accumulator) error {
	if a.nn != other.nn || len(a.remote) != len(other.remote) {
		return fmt.Errorf("features: cannot merge accumulators for different machine shapes (%d/%d nodes)", a.nn, other.nn)
	}
	for i := range a.batch {
		a.batch[i] += other.batch[i]
		a.latSum[i].Merge(&other.latSum[i])
		for j := range a.above[i] {
			a.above[i][j] += other.above[i][j]
		}
		a.local[i] += other.local[i]
		a.localLat[i].Merge(&other.localLat[i])
		a.lfb[i] += other.lfb[i]
		a.lfbLat[i].Merge(&other.lfbLat[i])
	}
	for i := range a.remote {
		a.remote[i] += other.remote[i]
		a.remoteLat[i].Merge(&other.remoteLat[i])
		a.assoc[i] += other.assoc[i]
	}
	return nil
}

// Add folds a chunk of samples into the running statistics. This loop runs
// once per sample on the analysis hot path, so it leans on the thresholds
// descending (walk from the smallest up and stop at the first one the
// latency does not clear) and dispatches on the level once.
func (a *Accumulator) Add(samples []pebs.Sample) {
	nn := a.nn
	for i := range samples {
		s := &samples[i]
		src := int(s.SrcNode)
		if src < 0 || src >= nn {
			continue // cannot belong to any channel's source batch
		}
		lat := s.Latency
		a.batch[src]++
		a.latSum[src].Add(lat)
		ab := &a.above[src]
		for j := len(latencyThresholds) - 1; j >= 0 && lat > latencyThresholds[j]; j-- {
			ab[j]++
		}
		home := int(s.HomeNode)
		homeValid := home >= 0 && home < nn
		switch s.Level {
		case cache.MEM:
			if homeValid && home != src {
				ci := src*nn + home
				a.remote[ci]++
				a.remoteLat[ci].Add(lat)
			} else if s.HomeNode == s.SrcNode {
				a.local[src]++
				a.localLat[src].Add(lat)
			}
			if homeValid {
				a.assoc[src*nn+home]++
			}
		case cache.LFB:
			a.lfb[src]++
			a.lfbLat[src].Add(lat)
			if homeValid {
				a.assoc[src*nn+home]++
			}
		}
	}
}

// SampleCount reports how many samples have landed in any socket's batch.
func (a *Accumulator) SampleCount() float64 {
	var n int64
	for _, b := range a.batch {
		n += b
	}
	return float64(n)
}

// Vectors assembles the per-channel Table I vectors from the running sums.
// weight scales count features (non-positive means 1); channels whose
// MEM/LFB sample count is below minSamples are omitted. Vectors does not
// consume the sums: the accumulator remains usable and appendable.
func (a *Accumulator) Vectors(weight float64, minSamples int) map[topology.Channel]Vector {
	if weight <= 0 {
		weight = 1
	}
	out := make(map[topology.Channel]Vector)
	for _, ch := range a.m.RemoteChannels() {
		ci := a.m.ChannelIndex(ch)
		if a.assoc[ci] < minSamples {
			continue
		}
		var v Vector
		src := int(ch.Src)
		if a.batch[src] == 0 {
			out[ch] = v
			continue
		}
		batch := float64(a.batch[src])
		for i := 0; i < 5; i++ {
			v[i] = float64(a.above[src][i]) / batch
		}
		v[5] = float64(a.remote[ci]) * weight
		if a.remote[ci] > 0 {
			v[6] = a.remoteLat[ci].Value() / float64(a.remote[ci])
		}
		v[7] = float64(a.local[src]) * weight
		if a.local[src] > 0 {
			v[8] = a.localLat[src].Value() / float64(a.local[src])
		}
		v[9] = batch * weight
		v[10] = a.latSum[src].Value() / batch
		v[11] = float64(a.lfb[src]) * weight
		if a.lfb[src] > 0 {
			v[12] = a.lfbLat[src].Value() / float64(a.lfb[src])
		}
		out[ch] = v
	}
	return out
}

// Candidates computes the full candidate statistics list of Section V-B for
// one sample batch (typically the batch of one source socket). Keys are
// stable; SelectRelevant consumes them.
func Candidates(samples []pebs.Sample, weight float64) map[string]float64 {
	if weight <= 0 {
		weight = 1
	}
	out := make(map[string]float64)
	if len(samples) == 0 {
		return out
	}
	var latSum float64
	levelCount := map[cache.Level]float64{}
	levelLat := map[cache.Level]float64{}
	var remote, remoteLat, local, localLat float64
	cpus := map[topology.CPUID]float64{}
	threads := map[int]float64{}
	nodes := map[topology.NodeID]float64{}
	var above [5]float64
	for _, s := range samples {
		latSum += s.Latency
		levelCount[s.Level]++
		levelLat[s.Level] += s.Latency
		cpus[s.CPU]++
		threads[s.Thread]++
		nodes[s.SrcNode]++
		if s.RemoteDRAM() {
			remote++
			remoteLat += s.Latency
		}
		if s.LocalDRAM() {
			local++
			localLat += s.Latency
		}
		for i, th := range latencyThresholds {
			if s.Latency > th {
				above[i]++
			}
		}
	}
	n := float64(len(samples))

	// Statistics Latency.
	for i, th := range latencyThresholds {
		out[fmt.Sprintf("ratio_latency_above_%d", int(th))] = above[i] / n
	}
	out["avg_latency"] = latSum / n
	for lvl, c := range levelCount {
		if c > 0 {
			out["avg_latency_"+lvl.String()] = levelLat[lvl] / c
		}
	}
	if remote > 0 {
		out["avg_latency_remote_dram"] = remoteLat / remote
	} else {
		out["avg_latency_remote_dram"] = 0
	}
	if local > 0 {
		out["avg_latency_local_dram"] = localLat / local
	} else {
		out["avg_latency_local_dram"] = 0
	}

	// Statistics Location.
	out["num_l1_hit"] = levelCount[cache.L1] * weight
	out["num_l2_hit"] = levelCount[cache.L2] * weight
	out["num_l3_hit"] = levelCount[cache.L3] * weight
	out["num_lfb"] = levelCount[cache.LFB] * weight
	out["num_l3_miss"] = (levelCount[cache.LFB] + levelCount[cache.MEM]) * weight
	out["num_dram"] = levelCount[cache.MEM] * weight
	out["num_remote_dram"] = remote * weight
	out["num_local_dram"] = local * weight
	out["total_samples"] = n * weight

	// Statistics Identification.
	out["num_cpus"] = float64(len(cpus))
	out["num_threads"] = float64(len(threads))
	out["num_nodes"] = float64(len(nodes))
	maxPerCPU := 0.0
	for _, c := range cpus {
		if c > maxPerCPU {
			maxPerCPU = c
		}
	}
	out["max_share_per_cpu"] = maxPerCPU / n
	return out
}

// LabeledCandidates is the candidate statistics of one training run with its
// mini-program name and mode, the unit of the selection experiment.
type LabeledCandidates struct {
	Program string
	Mode    Label
	Values  map[string]float64
}

// SelectRelevant reproduces the paper's feature-selection filter: a
// candidate feature is kept when its statistics differ significantly between
// "good" and "rmc" runs for a majority of the mini-programs. Significance is
// a two-sample effect-size test: |mean(good) − mean(rmc)| > effectSize ×
// pooled standard deviation. Returns the kept feature names sorted.
func SelectRelevant(runs []LabeledCandidates, effectSize float64) []string {
	if effectSize <= 0 {
		effectSize = 0.8 // Cohen's d: "large effect"
	}
	programs := map[string][]LabeledCandidates{}
	for _, r := range runs {
		programs[r.Program] = append(programs[r.Program], r)
	}
	// Only programs with both classes can vote.
	voters := 0
	votes := map[string]int{}
	allKeys := map[string]bool{}
	for _, rs := range programs {
		var good, rmc []LabeledCandidates
		for _, r := range rs {
			if r.Mode == Good {
				good = append(good, r)
			} else {
				rmc = append(rmc, r)
			}
		}
		if len(good) == 0 || len(rmc) == 0 {
			continue
		}
		voters++
		keys := map[string]bool{}
		for _, r := range rs {
			for k := range r.Values {
				keys[k] = true
				allKeys[k] = true
			}
		}
		for k := range keys {
			mg, sg := meanStd(good, k)
			mr, sr := meanStd(rmc, k)
			pooled := math.Sqrt((sg*sg + sr*sr) / 2)
			if pooled == 0 {
				if mg != mr {
					votes[k]++
				}
				continue
			}
			if math.Abs(mg-mr) > effectSize*pooled {
				votes[k]++
			}
		}
	}
	var kept []string
	for k := range allKeys {
		if voters > 0 && votes[k]*2 > voters {
			kept = append(kept, k)
		}
	}
	sort.Strings(kept)
	return kept
}

func meanStd(runs []LabeledCandidates, key string) (mean, std float64) {
	n := 0.0
	for _, r := range runs {
		if v, ok := r.Values[key]; ok {
			mean += v
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	mean /= n
	for _, r := range runs {
		if v, ok := r.Values[key]; ok {
			d := v - mean
			std += d * d
		}
	}
	std = math.Sqrt(std / n)
	return mean, std
}
