package features

import (
	"math/rand"
	"testing"

	"drbw/internal/topology"
)

// TestAccumulatorMergeMatchesSerial is the shard contract: partition the
// trace at arbitrary boundaries, accumulate each part independently, merge
// in arbitrary order, and the vectors must be bit-identical to one serial
// accumulator — including with off-grid latencies where naive summation
// would drift.
func TestAccumulatorMergeMatchesSerial(t *testing.T) {
	m := topology.Uniform(4, 2)
	rng := rand.New(rand.NewSource(11))
	samples := randomSamples(6000, 2)
	for i := range samples {
		samples[i].Latency *= 0.8 + 0.4*rng.Float64() // off the 0.1 grid
	}
	serial := NewAccumulator(m)
	serial.Add(samples)
	want := serial.Vectors(2.75, 10)

	for trial := 0; trial < 10; trial++ {
		nparts := 1 + rng.Intn(6)
		parts := make([]*Accumulator, nparts)
		for i := range parts {
			parts[i] = NewAccumulator(m)
		}
		// Split at arbitrary boundaries.
		start := 0
		for i := 0; i < nparts; i++ {
			end := len(samples)
			if i < nparts-1 {
				end = start + rng.Intn(len(samples)-start+1)
			}
			parts[i].Add(samples[start:end])
			start = end
		}
		// Merge in a shuffled order onto a fresh target.
		order := rng.Perm(nparts)
		merged := NewAccumulator(m)
		for _, p := range order {
			if err := merged.Merge(parts[p]); err != nil {
				t.Fatal(err)
			}
		}
		got := merged.Vectors(2.75, 10)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d channels, want %d", trial, len(got), len(want))
		}
		for ch, wv := range want {
			if gv := got[ch]; gv != wv {
				t.Fatalf("trial %d: channel %v merged vector differs:\n got %v\nwant %v", trial, ch, gv, wv)
			}
		}
		if gs, ws := merged.SampleCount(), serial.SampleCount(); gs != ws {
			t.Fatalf("trial %d: merged SampleCount %v, serial %v", trial, gs, ws)
		}
	}
}

// TestAccumulatorMergeShapeMismatch rejects accumulators from different
// machines instead of silently mixing indices.
func TestAccumulatorMergeShapeMismatch(t *testing.T) {
	a := NewAccumulator(topology.Uniform(4, 2))
	b := NewAccumulator(topology.Uniform(2, 2))
	if err := a.Merge(b); err == nil {
		t.Fatal("merging 4-node into 2-node accumulator should fail")
	}
}

// TestAccumulatorMergeLeavesSourceUsable: merging must not consume the
// source — a worker's accumulator can be inspected after the merge.
func TestAccumulatorMergeLeavesSourceUsable(t *testing.T) {
	m := topology.Uniform(4, 2)
	samples := randomSamples(2000, 3)
	src := NewAccumulator(m)
	src.Add(samples)
	want := src.Vectors(1, 0)

	dst := NewAccumulator(m)
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
	got := src.Vectors(1, 0)
	if len(got) != len(want) {
		t.Fatalf("source channel set changed after merge")
	}
	for ch, wv := range want {
		if gv := got[ch]; gv != wv {
			t.Fatalf("channel %v: source vector changed after merge:\n got %v\nwant %v", ch, gv, wv)
		}
	}
}
