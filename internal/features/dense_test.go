package features

import (
	"math/rand"
	"testing"

	"drbw/internal/cache"
	"drbw/internal/pebs"
	"drbw/internal/topology"
)

// channelVectorsSlow is the original O(channels × samples) implementation:
// associate for the gate, then one full Extract scan per remote channel. The
// dense single-pass ChannelVectors must match it bit for bit.
func channelVectorsSlow(m *topology.Machine, samples []pebs.Sample, weight float64, minSamples int) map[topology.Channel]Vector {
	perChannel := pebs.Associate(samples)
	out := make(map[topology.Channel]Vector)
	for _, ch := range m.RemoteChannels() {
		if len(perChannel[ch]) < minSamples {
			continue
		}
		out[ch] = Extract(samples, ch, weight)
	}
	return out
}

// TestChannelVectorsMatchesExtract fuzzes random sample batches over a 4-node
// machine and requires exact (==, not approximate) equality between the dense
// single-pass ChannelVectors and the per-channel Extract reference, for every
// channel and feature, across several minSamples gates.
func TestChannelVectorsMatchesExtract(t *testing.T) {
	m := topology.XeonE5_4650()
	rng := rand.New(rand.NewSource(9))
	levels := []cache.Level{cache.L1, cache.L2, cache.L3, cache.LFB, cache.MEM}
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(4000)
		samples := make([]pebs.Sample, n)
		for i := range samples {
			src := topology.NodeID(rng.Intn(m.Nodes()))
			home := topology.NodeID(rng.Intn(m.Nodes()))
			if rng.Intn(20) == 0 {
				home = topology.InvalidNode // untouched page in profiler view
			}
			samples[i] = pebs.Sample{
				Latency:  10 + 1500*rng.Float64(),
				Level:    levels[rng.Intn(len(levels))],
				SrcNode:  src,
				HomeNode: home,
			}
		}
		weight := 1 + 50*rng.Float64()
		for _, minSamples := range []int{0, 1, 25, 100} {
			want := channelVectorsSlow(m, samples, weight, minSamples)
			got := ChannelVectors(m, samples, weight, minSamples)
			if len(want) != len(got) {
				t.Fatalf("trial %d minSamples %d: channel set %d vs %d", trial, minSamples, len(got), len(want))
			}
			for ch, wv := range want {
				gv, ok := got[ch]
				if !ok {
					t.Fatalf("trial %d: channel %v missing from dense result", trial, ch)
				}
				if gv != wv {
					t.Fatalf("trial %d minSamples %d channel %v:\ndense %v\nslow  %v", trial, minSamples, ch, gv, wv)
				}
			}
		}
	}
}
